#include "sppnet/adaptive/local_rules.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

class LocalRulesTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();
};

TEST_F(LocalRulesTest, RunsAndRecordsHistory) {
  Configuration initial;
  initial.graph_size = 1000;
  initial.cluster_size = 5;
  initial.avg_outdegree = 3.1;
  initial.ttl = 7;
  LocalPolicy policy;
  policy.max_rounds = 6;
  Rng rng(1);
  const AdaptiveOutcome outcome =
      RunLocalAdaptation(initial, inputs_, policy, rng);
  ASSERT_FALSE(outcome.history.empty());
  EXPECT_LE(outcome.history.size(), 6u);
  EXPECT_GE(outcome.final_instance.NumClusters(), 1u);
  for (const auto& round : outcome.history) {
    EXPECT_GT(round.num_clusters, 0u);
    EXPECT_GT(round.aggregate_bandwidth_bps, 0.0);
  }
}

TEST_F(LocalRulesTest, RuleIIIGrowsOutdegreeTowardSuggestion) {
  Configuration initial;
  initial.graph_size = 1000;
  initial.cluster_size = 5;
  initial.avg_outdegree = 3.1;
  initial.ttl = 7;
  LocalPolicy policy;
  policy.suggested_outdegree = 8.0;
  policy.max_rounds = 10;
  Rng rng(2);
  const AdaptiveOutcome outcome =
      RunLocalAdaptation(initial, inputs_, policy, rng);
  const AdaptiveRound& last = outcome.history.back();
  EXPECT_GT(last.avg_outdegree, outcome.history.front().avg_outdegree);
  EXPECT_GT(last.avg_outdegree, 6.0);
  // Coalescing merges neighbor sets, so the mean can overshoot the
  // suggestion somewhat — but not unboundedly.
  EXPECT_LE(last.avg_outdegree, 2.0 * policy.suggested_outdegree);
}

TEST_F(LocalRulesTest, TtlDecreasesWhenReachUnaffected) {
  Configuration initial;
  initial.graph_size = 500;
  initial.cluster_size = 10;
  initial.avg_outdegree = 6.0;
  initial.ttl = 10;  // Deliberately excessive for 50 clusters.
  LocalPolicy policy;
  policy.max_rounds = 10;
  Rng rng(3);
  const AdaptiveOutcome outcome =
      RunLocalAdaptation(initial, inputs_, policy, rng);
  EXPECT_LT(outcome.final_config.ttl, 10);
  // Coverage must not have collapsed: compare the fraction of clusters
  // reached (coalescing legitimately shrinks the absolute cluster
  // count, so raw reach numbers are not comparable across rounds).
  const AdaptiveRound& first = outcome.history.front();
  const AdaptiveRound& last = outcome.history.back();
  const double frac_before =
      first.mean_reach / static_cast<double>(first.num_clusters);
  const double frac_after =
      last.mean_reach / static_cast<double>(last.num_clusters);
  EXPECT_GE(frac_after, 0.9 * frac_before);
}

TEST_F(LocalRulesTest, OverloadedClustersSplit) {
  Configuration initial;
  initial.graph_size = 600;
  initial.cluster_size = 60;  // 10 big clusters.
  initial.avg_outdegree = 3.0;
  initial.ttl = 4;
  LocalPolicy policy;
  // Force overload: tiny limits.
  policy.max_bandwidth_bps = 1e3;
  policy.max_proc_hz = 1e4;
  policy.max_rounds = 3;
  Rng rng(4);
  const AdaptiveOutcome outcome =
      RunLocalAdaptation(initial, inputs_, policy, rng);
  EXPECT_GT(outcome.history.front().splits, 0u);
  EXPECT_GT(outcome.final_instance.NumClusters(), 10u);
}

TEST_F(LocalRulesTest, UnderloadedClustersCoalesce) {
  Configuration initial;
  initial.graph_size = 400;
  initial.cluster_size = 2;  // 200 tiny clusters.
  initial.avg_outdegree = 4.0;
  initial.ttl = 5;
  LocalPolicy policy;
  // Generous limits: everything is underloaded.
  policy.max_bandwidth_bps = 1e9;
  policy.max_proc_hz = 1e12;
  policy.max_rounds = 4;
  Rng rng(5);
  const AdaptiveOutcome outcome =
      RunLocalAdaptation(initial, inputs_, policy, rng);
  std::size_t coalesces = 0;
  for (const auto& round : outcome.history) coalesces += round.coalesces;
  EXPECT_GT(coalesces, 0u);
  EXPECT_LT(outcome.final_instance.NumClusters(), 200u);
}

TEST_F(LocalRulesTest, AdaptationReducesMaxIndividualLoad) {
  // Start from a Gnutella-like bad topology: the rules should flatten
  // the worst super-peer load substantially (the Section 5.3 goal).
  Configuration initial;
  initial.graph_size = 2000;
  initial.cluster_size = 4;
  initial.avg_outdegree = 3.1;
  initial.ttl = 7;
  LocalPolicy policy;
  policy.max_rounds = 12;
  Rng rng(6);
  const AdaptiveOutcome outcome =
      RunLocalAdaptation(initial, inputs_, policy, rng);
  const double before = outcome.history.front().max_partner_bandwidth_bps;
  const double after = outcome.history.back().max_partner_bandwidth_bps;
  EXPECT_LT(after, 0.8 * before);
}

TEST_F(LocalRulesTest, ConservesUserPopulation) {
  Configuration initial;
  initial.graph_size = 800;
  initial.cluster_size = 8;
  initial.avg_outdegree = 3.1;
  initial.ttl = 6;
  LocalPolicy policy;
  policy.max_rounds = 8;
  Rng rng(7);

  Rng probe(7);
  const NetworkInstance seed_inst = GenerateInstance(initial, inputs_, probe);
  const std::size_t users_before = seed_inst.TotalUsers();

  const AdaptiveOutcome outcome =
      RunLocalAdaptation(initial, inputs_, policy, rng);
  // Splits and coalesces move users between roles but never create or
  // destroy them.
  EXPECT_EQ(outcome.final_instance.TotalUsers(), users_before);
}

TEST(LocalPolicyDeathTest, ValidateRejectsOutOfRangeValues) {
  {
    LocalPolicy p;
    p.max_bandwidth_bps = 0.0;
    EXPECT_DEATH(p.Validate(), "bandwidth limit must be > 0");
  }
  {
    LocalPolicy p;
    p.max_proc_hz = -1.0;
    EXPECT_DEATH(p.Validate(), "processing limit must be > 0");
  }
  {
    LocalPolicy p;
    p.low_utilization = 0.0;
    EXPECT_DEATH(p.Validate(), "low-utilization fraction must be in");
  }
  {
    LocalPolicy p;
    p.low_utilization = 1.0;
    EXPECT_DEATH(p.Validate(), "low-utilization fraction must be in");
  }
  {
    LocalPolicy p;
    p.suggested_outdegree = 0.5;
    EXPECT_DEATH(p.Validate(), "suggested outdegree must be >= 1");
  }
  {
    LocalPolicy p;
    p.max_rounds = 0;
    EXPECT_DEATH(p.Validate(), "round budget must be >= 1");
  }
}

TEST(LocalPolicyTest, DefaultsValidate) {
  LocalPolicy p;
  p.Validate();  // Must not abort.
}

TEST(LocalPolicyTest, OverloadPredicateTripsOnEitherAxis) {
  LocalPolicy p;
  p.max_bandwidth_bps = 100.0;
  p.max_proc_hz = 10.0;
  EXPECT_FALSE(p.Overloaded(100.0, 10.0));  // Exactly at the limit: fine.
  EXPECT_TRUE(p.Overloaded(100.1, 0.0));
  EXPECT_TRUE(p.Overloaded(0.0, 10.1));
  EXPECT_FALSE(p.Overloaded(50.0, 5.0));
}

TEST(LocalPolicyTest, UnderloadPredicateRequiresBothAxes) {
  LocalPolicy p;
  p.max_bandwidth_bps = 100.0;
  p.max_proc_hz = 10.0;
  p.low_utilization = 0.25;
  EXPECT_TRUE(p.Underloaded(24.9, 2.4));
  EXPECT_FALSE(p.Underloaded(25.0, 2.4));  // Bandwidth at the floor.
  EXPECT_FALSE(p.Underloaded(24.9, 2.5));  // Processing at the floor.
  EXPECT_FALSE(p.Underloaded(80.0, 8.0));
}

TEST(LocalPolicyTest, CoalesceFitsIsBandwidthOnly) {
  LocalPolicy p;
  p.max_bandwidth_bps = 100.0;
  EXPECT_TRUE(p.CoalesceFits(100.0));
  EXPECT_FALSE(p.CoalesceFits(100.1));
}

TEST(LocalPolicyTest, WantsMoreNeighborsStopsAtSuggestion) {
  LocalPolicy p;
  p.suggested_outdegree = 10.0;
  EXPECT_TRUE(p.WantsMoreNeighbors(9));
  EXPECT_FALSE(p.WantsMoreNeighbors(10));
  EXPECT_FALSE(p.WantsMoreNeighbors(11));
}

TEST(LocalPolicyTest, NoiseFloorScalesWithNetwork) {
  EXPECT_EQ(LocalPolicy::NoiseFloor(1), 1u);
  EXPECT_EQ(LocalPolicy::NoiseFloor(99), 1u);
  EXPECT_EQ(LocalPolicy::NoiseFloor(100), 1u);
  EXPECT_EQ(LocalPolicy::NoiseFloor(250), 2u);
  EXPECT_EQ(LocalPolicy::NoiseFloor(1000), 10u);
}

TEST(LocalPolicyTest, RoundQuiescentToleratesNoiseFloorActivity) {
  const LocalPolicy p;
  // A perfectly still round is quiescent.
  EXPECT_TRUE(p.RoundQuiescent(0, 0, 0, false, 100));
  // Membership churn and edge growth at the floor still count as
  // quiescent; a TTL decrease never does.
  EXPECT_TRUE(p.RoundQuiescent(1, 0, 1, false, 100));
  EXPECT_TRUE(p.RoundQuiescent(0, 1, 1, false, 100));
  EXPECT_FALSE(p.RoundQuiescent(0, 0, 0, true, 100));
  // One past the floor on either axis is activity.
  EXPECT_FALSE(p.RoundQuiescent(1, 1, 0, false, 100));
  EXPECT_FALSE(p.RoundQuiescent(0, 0, 2, false, 100));
  // Larger networks get a proportionally larger floor.
  EXPECT_TRUE(p.RoundQuiescent(2, 3, 5, false, 500));
  EXPECT_FALSE(p.RoundQuiescent(3, 3, 5, false, 500));
}

TEST_F(LocalRulesTest, RejectsRedundantConfigurations) {
  Configuration initial;
  initial.redundancy = true;
  LocalPolicy policy;
  Rng rng(8);
  EXPECT_DEATH(RunLocalAdaptation(initial, inputs_, policy, rng),
               "non-redundant");
}

}  // namespace
}  // namespace sppnet
