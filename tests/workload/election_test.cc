#include "sppnet/workload/election.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sppnet/common/rng.h"
#include "sppnet/workload/capacity.h"

namespace sppnet {
namespace {

PeerCapacity Cap(double up, double proc = 0.0, double down = 0.0) {
  PeerCapacity c;
  c.up_bps = up;
  c.proc_hz = proc;
  c.down_bps = down;
  return c;
}

TEST(CapacityRankHigherTest, UplinkIsThePrimaryKey) {
  EXPECT_TRUE(CapacityRankHigher(Cap(200.0, 1.0), Cap(100.0, 999.0)));
  EXPECT_FALSE(CapacityRankHigher(Cap(100.0, 999.0), Cap(200.0, 1.0)));
}

TEST(CapacityRankHigherTest, ProcessingThenDownstreamBreakTies) {
  EXPECT_TRUE(CapacityRankHigher(Cap(100.0, 50.0), Cap(100.0, 40.0)));
  EXPECT_TRUE(
      CapacityRankHigher(Cap(100.0, 50.0, 9.0), Cap(100.0, 50.0, 8.0)));
}

TEST(CapacityRankHigherTest, ExactTiesRankNeitherHigher) {
  const PeerCapacity a = Cap(100.0, 50.0, 9.0);
  EXPECT_FALSE(CapacityRankHigher(a, a));
}

TEST(RankByCapacityTest, OrdersMostCapableFirstAndIsStableOnTies) {
  const std::vector<PeerCapacity> caps = {Cap(10.0), Cap(30.0), Cap(20.0),
                                          Cap(30.0)};
  const std::vector<std::uint32_t> order = RankByCapacity(caps);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // First of the tied maxima keeps its spot.
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
}

TEST(RankByCapacityTest, IsAPermutation) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(7);
  const std::vector<PeerCapacity> caps = SampleNodeCapacities(dist, rng, 300);
  const std::vector<std::uint32_t> order = RankByCapacity(caps);
  std::vector<bool> seen(caps.size(), false);
  for (const std::uint32_t i : order) {
    ASSERT_LT(i, caps.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_FALSE(CapacityRankHigher(caps[order[i + 1]], caps[order[i]]));
  }
}

TEST(BestCandidateTest, PicksTheTopRankedCandidate) {
  const std::vector<PeerCapacity> caps = {Cap(10.0), Cap(30.0), Cap(20.0)};
  const std::vector<std::uint32_t> candidates = {0, 2, 1};
  EXPECT_EQ(BestCandidate(candidates, caps), 2u);  // Position of node 1.
}

TEST(BestCandidateTest, FirstMaximumWinsOnExactTies) {
  const std::vector<PeerCapacity> caps = {Cap(30.0), Cap(30.0)};
  const std::vector<std::uint32_t> candidates = {1, 0};
  EXPECT_EQ(BestCandidate(candidates, caps), 0u);
}

TEST(BestCandidateDeathTest, RejectsEmptyCandidateSets) {
  const std::vector<PeerCapacity> caps = {Cap(10.0)};
  const std::vector<std::uint32_t> empty;
  EXPECT_DEATH(BestCandidate(empty, caps), "");
}

}  // namespace
}  // namespace sppnet
