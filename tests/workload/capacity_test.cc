#include "sppnet/workload/capacity.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(CapacityDistributionTest, FractionsSumToOne) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  double total = 0.0;
  for (const auto& c : dist.classes()) total += c.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CapacityDistributionTest, ClassFrequenciesMatchFractions) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(1);
  // Classify samples by nearest nominal uplink.
  std::size_t modem_like = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    if (cap.up_bps < 10e3) ++modem_like;  // Only the 56k class fits.
  }
  EXPECT_NEAR(static_cast<double>(modem_like) / kSamples, 0.25, 0.01);
}

TEST(CapacityDistributionTest, ThreeOrdersOfMagnitudeSpread) {
  // The paper cites "up to 3 orders of magnitude difference in
  // bandwidth" across peers; the default mixture must reproduce that.
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(2);
  double min_up = 1e300, max_up = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    min_up = std::min(min_up, cap.up_bps);
    max_up = std::max(max_up, cap.up_bps);
  }
  EXPECT_GT(max_up / min_up, 1000.0);
}

TEST(CapacityDistributionTest, JitterStaysBounded) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    EXPECT_GE(cap.up_bps, 7e3 * 0.75);       // Weakest class, min jitter.
    EXPECT_LE(cap.down_bps, 9e6 * 1.25);     // Strongest class, max jitter.
    EXPECT_GT(cap.proc_hz, 0.0);
  }
}

TEST(CapacityDistributionTest, RejectsBadFractions) {
  EXPECT_DEATH(CapacityDistribution({{"only", 0.5, {1, 1, 1}}}), "sum to 1");
}

TEST(FitsWithinTest, AllAxesChecked) {
  const PeerCapacity cap{100.0, 50.0, 1000.0};
  EXPECT_TRUE(FitsWithin(cap, 100.0, 50.0, 1000.0));
  EXPECT_FALSE(FitsWithin(cap, 101.0, 10.0, 10.0));
  EXPECT_FALSE(FitsWithin(cap, 10.0, 51.0, 10.0));
  EXPECT_FALSE(FitsWithin(cap, 10.0, 10.0, 1001.0));
}

TEST(CapacityDistributionTest, Deterministic) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    const PeerCapacity x = dist.Sample(a);
    const PeerCapacity y = dist.Sample(b);
    EXPECT_DOUBLE_EQ(x.up_bps, y.up_bps);
  }
}

}  // namespace
}  // namespace sppnet
