#include "sppnet/workload/capacity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sppnet {
namespace {

TEST(CapacityDistributionTest, FractionsSumToOne) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  double total = 0.0;
  for (const auto& c : dist.classes()) total += c.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CapacityDistributionTest, ClassFrequenciesMatchFractions) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(1);
  // Classify samples by nearest nominal uplink.
  std::size_t modem_like = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    if (cap.up_bps < 10e3) ++modem_like;  // Only the 56k class fits.
  }
  EXPECT_NEAR(static_cast<double>(modem_like) / kSamples, 0.25, 0.01);
}

TEST(CapacityDistributionTest, ThreeOrdersOfMagnitudeSpread) {
  // The paper cites "up to 3 orders of magnitude difference in
  // bandwidth" across peers; the default mixture must reproduce that.
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(2);
  double min_up = 1e300, max_up = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    min_up = std::min(min_up, cap.up_bps);
    max_up = std::max(max_up, cap.up_bps);
  }
  EXPECT_GT(max_up / min_up, 1000.0);
}

TEST(CapacityDistributionTest, JitterStaysBounded) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    EXPECT_GE(cap.up_bps, 7e3 * 0.75);       // Weakest class, min jitter.
    EXPECT_LE(cap.down_bps, 9e6 * 1.25);     // Strongest class, max jitter.
    EXPECT_GT(cap.proc_hz, 0.0);
  }
}

TEST(CapacityDistributionTest, RejectsBadFractions) {
  EXPECT_DEATH(CapacityDistribution({{"only", 0.5, {1, 1, 1}}}), "sum to 1");
}

TEST(FitsWithinTest, AllAxesChecked) {
  const PeerCapacity cap{100.0, 50.0, 1000.0};
  EXPECT_TRUE(FitsWithin(cap, 100.0, 50.0, 1000.0));
  EXPECT_FALSE(FitsWithin(cap, 101.0, 10.0, 10.0));
  EXPECT_FALSE(FitsWithin(cap, 10.0, 51.0, 10.0));
  EXPECT_FALSE(FitsWithin(cap, 10.0, 10.0, 1001.0));
}

TEST(CapacityDistributionTest, Deterministic) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    const PeerCapacity x = dist.Sample(a);
    const PeerCapacity y = dist.Sample(b);
    EXPECT_DOUBLE_EQ(x.up_bps, y.up_bps);
  }
}

TEST(CapacityDistributionTest, EveryClassFrequencyMatchesItsFraction) {
  // Mixture-fraction conservation across the whole default mixture:
  // classify each sample by the nominal uplink it can only have come
  // from (the +-25 % jitter bands of the five classes do not overlap
  // on the uplink axis) and check each class's empirical share.
  const CapacityDistribution dist = CapacityDistribution::Default();
  std::vector<std::size_t> counts(dist.classes().size(), 0);
  Rng rng(4);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    bool classified = false;
    for (std::size_t k = 0; k < dist.classes().size(); ++k) {
      const double nominal = dist.classes()[k].capacity.up_bps;
      if (cap.up_bps >= nominal * 0.75 && cap.up_bps <= nominal * 1.25) {
        ++counts[k];
        classified = true;
        break;
      }
    }
    ASSERT_TRUE(classified) << "sample outside every jitter band";
  }
  for (std::size_t k = 0; k < dist.classes().size(); ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kSamples,
                dist.classes()[k].fraction, 0.01)
        << dist.classes()[k].name;
  }
}

TEST(CapacityDistributionTest, JitterScalesAllAxesTogether) {
  // One jitter draw scales every axis, so within-class axis ratios are
  // exactly the nominal ratios (capacities stay internally coherent).
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    bool matched = false;
    for (const auto& c : dist.classes()) {
      const double scale = cap.up_bps / c.capacity.up_bps;
      if (scale < 0.75 || scale > 1.25) continue;
      EXPECT_NEAR(cap.down_bps, c.capacity.down_bps * scale,
                  1e-9 * cap.down_bps);
      EXPECT_NEAR(cap.proc_hz, c.capacity.proc_hz * scale,
                  1e-9 * cap.proc_hz);
      matched = true;
      break;
    }
    EXPECT_TRUE(matched);
  }
}

TEST(SampleNodeCapacitiesTest, SeedReproducible) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng a(42), b(42);
  const std::vector<PeerCapacity> x = SampleNodeCapacities(dist, a, 500);
  const std::vector<PeerCapacity> y = SampleNodeCapacities(dist, b, 500);
  ASSERT_EQ(x.size(), 500u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i].down_bps, y[i].down_bps);
    EXPECT_DOUBLE_EQ(x[i].up_bps, y[i].up_bps);
    EXPECT_DOUBLE_EQ(x[i].proc_hz, y[i].proc_hz);
  }
}

TEST(SampleNodeCapacitiesTest, PrefixStableInCount) {
  // Index-order sampling: node i's capacity depends only on the stream
  // position, so growing the population never re-rolls existing nodes.
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng a(43), b(43);
  const std::vector<PeerCapacity> small = SampleNodeCapacities(dist, a, 50);
  const std::vector<PeerCapacity> big = SampleNodeCapacities(dist, b, 200);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_DOUBLE_EQ(small[i].up_bps, big[i].up_bps);
  }
}

TEST(UtilizationOfTest, ReportsTheBindingAxis) {
  const PeerCapacity cap{1000.0, 500.0, 2000.0};
  EXPECT_DOUBLE_EQ(UtilizationOf(cap, 500.0, 50.0, 200.0), 0.5);   // in.
  EXPECT_DOUBLE_EQ(UtilizationOf(cap, 100.0, 400.0, 200.0), 0.8);  // out.
  EXPECT_DOUBLE_EQ(UtilizationOf(cap, 100.0, 50.0, 3000.0), 1.5);  // proc.
  EXPECT_DOUBLE_EQ(UtilizationOf(cap, 0.0, 0.0, 0.0), 0.0);
}

TEST(UtilizationOfTest, AgreesWithFitsWithin) {
  const CapacityDistribution dist = CapacityDistribution::Default();
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const PeerCapacity cap = dist.Sample(rng);
    const double in = rng.NextDouble(0.0, 2.0 * cap.down_bps);
    const double out = rng.NextDouble(0.0, 2.0 * cap.up_bps);
    const double proc = rng.NextDouble(0.0, 2.0 * cap.proc_hz);
    EXPECT_EQ(UtilizationOf(cap, in, out, proc) <= 1.0,
              FitsWithin(cap, in, out, proc));
  }
}

TEST(UtilizationOfTest, ZeroBudgetWithLoadIsInfinite) {
  const PeerCapacity cap{0.0, 100.0, 100.0};
  EXPECT_TRUE(std::isinf(UtilizationOf(cap, 1.0, 0.0, 0.0)));
}

}  // namespace
}  // namespace sppnet
