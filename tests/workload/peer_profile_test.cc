#include "sppnet/workload/peer_profile.h"

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(FileCountDistributionTest, MeanMatchesTarget) {
  const FileCountDistribution dist = FileCountDistribution::Default();
  Rng rng(1);
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sum += dist.Sample(rng);
  EXPECT_NEAR(sum / kSamples, dist.Mean(), 0.05 * dist.Mean());
}

TEST(FileCountDistributionTest, FreeRiderFraction) {
  const FileCountDistribution dist = FileCountDistribution::Default();
  Rng rng(3);
  int zeros = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (dist.Sample(rng) == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / kSamples,
              dist.params().free_rider_fraction, 0.01);
}

TEST(FileCountDistributionTest, SharersOwnAtLeastOneFile) {
  FileCountDistribution::Params params;
  params.free_rider_fraction = 0.0;
  const FileCountDistribution dist(params);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(dist.Sample(rng), 1u);
}

TEST(FileCountDistributionTest, CustomMeanRespected) {
  FileCountDistribution::Params params;
  params.target_mean = 340.0;
  const FileCountDistribution dist(params);
  Rng rng(7);
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sum += dist.Sample(rng);
  EXPECT_NEAR(sum / kSamples, 340.0, 0.05 * 340.0);
}

TEST(FileCountDistributionTest, HeavyTailPresent) {
  const FileCountDistribution dist = FileCountDistribution::Default();
  Rng rng(9);
  std::uint32_t max_seen = 0;
  for (int i = 0; i < 200000; ++i) {
    max_seen = std::max(max_seen, dist.Sample(rng));
  }
  // Some peer should share far more than the mean of 168 files.
  EXPECT_GT(max_seen, 2000u);
}

TEST(LifespanDistributionTest, ArithmeticMeanMatchesTarget) {
  const LifespanDistribution dist = LifespanDistribution::Default();
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sum += dist.Sample(rng);
  EXPECT_NEAR(sum / kSamples, dist.Mean(), 0.04 * dist.Mean());
}

TEST(LifespanDistributionTest, QueriesPerSessionIsTen) {
  // Appendix C: a user submits ~10 queries per session on average under
  // the default query rate: query_rate * E[L] = 10.
  const LifespanDistribution dist = LifespanDistribution::Default();
  EXPECT_NEAR(9.26e-3 * dist.Mean(), 10.0, 0.01);
}

TEST(LifespanDistributionTest, EffectiveJoinRateMatchesClosedForm) {
  // Per-node join rates are 1/L_i; the class documents that their mean
  // E[1/L] is ~3x the naive 1/E[L] because sessions are short-skewed.
  const LifespanDistribution dist = LifespanDistribution::Default();
  Rng rng(12);
  double inv_sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) inv_sum += 1.0 / dist.Sample(rng);
  EXPECT_NEAR(inv_sum / kSamples, dist.JoinRate(), 0.04 * dist.JoinRate());
  EXPECT_GT(dist.JoinRate(), 2.0 / dist.Mean());
}

TEST(LifespanDistributionTest, SamplesPositive) {
  const LifespanDistribution dist = LifespanDistribution::Default();
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(dist.Sample(rng), 0.0);
}

}  // namespace
}  // namespace sppnet
