#include "sppnet/workload/query_model.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"

namespace sppnet {
namespace {

TEST(QueryModelTest, MatchProbabilityHitsCalibrationTarget) {
  const QueryModel model = QueryModel::Default();
  EXPECT_NEAR(model.MatchProbability(),
              model.params().target_match_probability,
              1e-9 * model.params().target_match_probability);
}

TEST(QueryModelTest, SelectionPowersRespectClamp) {
  const QueryModel model = QueryModel::Default();
  for (std::size_t j = 0; j < model.num_query_classes(); ++j) {
    EXPECT_GT(model.SelectionPower(j), 0.0);
    EXPECT_LE(model.SelectionPower(j), model.params().max_selection_power);
  }
}

TEST(QueryModelTest, SelectionPowersMonotoneDecreasing) {
  const QueryModel model = QueryModel::Default();
  for (std::size_t j = 1; j < model.num_query_classes(); ++j) {
    EXPECT_LE(model.SelectionPower(j), model.SelectionPower(j - 1));
  }
}

TEST(QueryModelTest, ExpectedResultsLinearInIndexSize) {
  const QueryModel model = QueryModel::Default();
  const double r1 = model.ExpectedResults(1000.0);
  const double r2 = model.ExpectedResults(2000.0);
  EXPECT_NEAR(r2, 2.0 * r1, 1e-9);
}

TEST(QueryModelTest, PaperResultCountsReproduced) {
  // The calibration must reproduce the paper's own numbers: ~270 results
  // at reach 3000 peers and ~890 at full reach 10000, with the default
  // mean of 168 files per peer (Figures 8 and 11; see DESIGN.md).
  const QueryModel model = QueryModel::Default();
  EXPECT_NEAR(model.ExpectedResults(3000.0 * 168.0), 267.0, 15.0);
  EXPECT_NEAR(model.ExpectedResults(10000.0 * 168.0), 890.0, 50.0);
}

TEST(QueryModelTest, NoMatchProbabilityBoundsAndMonotonicity) {
  const QueryModel model = QueryModel::Default();
  EXPECT_DOUBLE_EQ(model.NoMatchProbability(0.0), 1.0);
  double prev = 1.0;
  for (const double x : {1.0, 10.0, 100.0, 1000.0, 1e4, 1e5, 1e6}) {
    const double phi = model.NoMatchProbability(x);
    EXPECT_GT(phi, 0.0);
    EXPECT_LE(phi, prev);
    prev = phi;
  }
}

TEST(QueryModelTest, InterpolationMatchesExactEvaluation) {
  const QueryModel model = QueryModel::Default();
  for (const double x : {1.0, 7.0, 50.0, 168.0, 1234.0, 9999.0, 123456.0}) {
    const double exact = model.NoMatchProbabilityExact(x);
    const double fast = model.NoMatchProbability(x);
    EXPECT_NEAR(fast, exact, 2e-3) << "x=" << x;
  }
}

TEST(QueryModelTest, ResponseProbabilityComplementsNoMatch) {
  const QueryModel model = QueryModel::Default();
  for (const double x : {0.0, 10.0, 500.0}) {
    EXPECT_DOUBLE_EQ(model.ResponseProbability(x),
                     1.0 - model.NoMatchProbability(x));
  }
}

TEST(QueryModelTest, SampleQueryClassFollowsPopularity) {
  const QueryModel model = QueryModel::Default();
  Rng rng(3);
  std::vector<int> counts(model.num_query_classes(), 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[model.SampleQueryClass(rng)];
  const double expected0 = model.Popularity(0) * kSamples;
  EXPECT_NEAR(static_cast<double>(counts[0]), expected0, 0.05 * expected0);
}

// Property sweep: calibration holds across model sizes and exponents.
class QueryModelCalibrationTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, double>> {
};

TEST_P(QueryModelCalibrationTest, TargetAlwaysHit) {
  const auto [classes, pop_exp, sel_exp] = GetParam();
  QueryModel::Params params;
  params.num_query_classes = classes;
  params.popularity_exponent = pop_exp;
  params.selection_exponent = sel_exp;
  const QueryModel model(params);
  EXPECT_NEAR(model.MatchProbability(), params.target_match_probability,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QueryModelCalibrationTest,
    ::testing::Values(std::make_tuple(std::size_t{100}, 1.0, 0.5),
                      std::make_tuple(std::size_t{2000}, 0.8, 0.5),
                      std::make_tuple(std::size_t{2000}, 1.2, 1.0),
                      std::make_tuple(std::size_t{5000}, 1.0, 0.0),
                      std::make_tuple(std::size_t{500}, 0.0, 0.5)));

TEST(QueryModelTest, ExpectedResultsConsistentWithPerClassSum) {
  // E[N] must equal sum_j g(j) * x * f(j) by definition (equation 5).
  const QueryModel model = QueryModel::Default();
  const double x = 5000.0;
  double direct = 0.0;
  for (std::size_t j = 0; j < model.num_query_classes(); ++j) {
    direct += model.Popularity(j) * x * model.SelectionPower(j);
  }
  EXPECT_NEAR(model.ExpectedResults(x), direct, 1e-6 * direct);
}

}  // namespace
}  // namespace sppnet
