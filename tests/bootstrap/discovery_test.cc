#include "sppnet/bootstrap/discovery.h"

#include <numeric>

#include <gtest/gtest.h>

#include "sppnet/model/evaluator.h"

namespace sppnet {
namespace {

TEST(AssignClientsTest, ExactTotalsForAssigningPolicies) {
  Rng rng(1);
  for (const auto policy :
       {AssignmentPolicy::kUniformRandom, AssignmentPolicy::kPowerOfTwoChoices,
        AssignmentPolicy::kLeastLoaded}) {
    const auto counts = AssignClients(100, 937, policy, rng);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 937u);
  }
}

TEST(AssignClientsTest, NormalModelApproximatesTotal) {
  Rng rng(2);
  const auto counts =
      AssignClients(200, 2000, AssignmentPolicy::kNormalModel, rng);
  const auto total = std::accumulate(counts.begin(), counts.end(), 0u);
  EXPECT_NEAR(static_cast<double>(total), 2000.0, 200.0);
}

TEST(AssignClientsTest, LeastLoadedIsPerfectlyBalanced) {
  Rng rng(3);
  const auto counts =
      AssignClients(7, 100, AssignmentPolicy::kLeastLoaded, rng);
  const AssignmentStats stats = SummarizeAssignment(counts);
  EXPECT_LE(stats.max - stats.min, 1.0);
}

TEST(AssignClientsTest, BalanceOrderingAcrossPolicies) {
  // Classic balls-into-bins: least-loaded < power-of-two < uniform in
  // imbalance (coefficient of variation).
  Rng a(4), b(4), c(4);
  const auto uniform =
      AssignClients(500, 10000, AssignmentPolicy::kUniformRandom, a);
  const auto po2 =
      AssignClients(500, 10000, AssignmentPolicy::kPowerOfTwoChoices, b);
  const auto least =
      AssignClients(500, 10000, AssignmentPolicy::kLeastLoaded, c);
  const double cv_uniform = SummarizeAssignment(uniform).cv;
  const double cv_po2 = SummarizeAssignment(po2).cv;
  const double cv_least = SummarizeAssignment(least).cv;
  EXPECT_LT(cv_po2, cv_uniform);
  EXPECT_LT(cv_least, cv_po2);
}

TEST(AssignClientsTest, NormalModelMatchesPaperSpread) {
  // The paper's N(c, .2c) has CV ~ 0.2 by construction.
  Rng rng(5);
  const auto counts =
      AssignClients(1000, 20000, AssignmentPolicy::kNormalModel, rng);
  const AssignmentStats stats = SummarizeAssignment(counts);
  EXPECT_NEAR(stats.cv, 0.2, 0.03);
}

TEST(GenerateInstanceWithPolicyTest, ProducesConsistentInstance) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 1000;
  config.cluster_size = 10;
  Rng rng(6);
  const NetworkInstance inst = GenerateInstanceWithPolicy(
      config, inputs, AssignmentPolicy::kPowerOfTwoChoices, rng);
  EXPECT_EQ(inst.NumClusters(), 100u);
  EXPECT_EQ(inst.TotalClients(), 900u);
  // Derived quantities must be populated.
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    EXPECT_GE(inst.response_prob[i], 0.0);
    EXPECT_LE(inst.response_prob[i], 1.0);
  }
}

TEST(GenerateInstanceWithPolicyTest, EvaluableByTheEngine) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 500;
  config.cluster_size = 10;
  Rng rng(7);
  const NetworkInstance inst = GenerateInstanceWithPolicy(
      config, inputs, AssignmentPolicy::kLeastLoaded, rng);
  const InstanceLoads loads = EvaluateInstance(inst, config, inputs);
  EXPECT_GT(loads.aggregate.TotalBps(), 0.0);
  EXPECT_NEAR(loads.aggregate.in_bps, loads.aggregate.out_bps,
              1e-9 * loads.aggregate.in_bps);
}

}  // namespace
}  // namespace sppnet
