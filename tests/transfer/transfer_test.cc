#include "sppnet/transfer/transfer.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TransferOptions FastOptions() {
  TransferOptions options;
  options.duration_seconds = 2000.0;
  options.download_rate_per_user = 5e-3;  // Busy enough to queue.
  return options;
}

TEST(TransferTest, CompletesTransfers) {
  const CapacityDistribution caps = CapacityDistribution::Default();
  const TransferReport r = SimulateTransfers(300, caps, FastOptions());
  EXPECT_GT(r.requests, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.completion_seconds.mean, 0.0);
  EXPECT_GT(r.mean_upload_bps, 0.0);
  EXPECT_GE(r.max_upload_bps, r.mean_upload_bps);
}

TEST(TransferTest, DeterministicForSameSeed) {
  const CapacityDistribution caps = CapacityDistribution::Default();
  const TransferReport a = SimulateTransfers(200, caps, FastOptions());
  const TransferReport b = SimulateTransfers(200, caps, FastOptions());
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.completion_seconds.mean, b.completion_seconds.mean);
}

TEST(TransferTest, WaitsShrinkWithMoreSlots) {
  const CapacityDistribution caps = CapacityDistribution::Default();
  TransferOptions few = FastOptions();
  few.upload_slots = 1;
  TransferOptions many = FastOptions();
  many.upload_slots = 8;
  const TransferReport r_few = SimulateTransfers(300, caps, few);
  const TransferReport r_many = SimulateTransfers(300, caps, many);
  EXPECT_GT(r_few.wait_seconds.mean, r_many.wait_seconds.mean);
}

TEST(TransferTest, BiggerFilesTakeLonger) {
  // Compare the uncensored planned service times: completion stats are
  // right-censored by the window (huge files never finish inside it).
  const CapacityDistribution caps = CapacityDistribution::Default();
  TransferOptions small = FastOptions();
  small.mean_file_mb = 1.0;
  TransferOptions large = FastOptions();
  large.mean_file_mb = 16.0;
  const TransferReport r_small = SimulateTransfers(300, caps, small);
  const TransferReport r_large = SimulateTransfers(300, caps, large);
  EXPECT_GT(r_large.planned_duration_seconds.median,
            8.0 * r_small.planned_duration_seconds.median);
}

TEST(TransferTest, ImpatientRequestersAbandon) {
  const CapacityDistribution caps = CapacityDistribution::Default();
  TransferOptions overloaded = FastOptions();
  overloaded.download_rate_per_user = 0.05;  // Far beyond capacity.
  overloaded.upload_slots = 1;
  overloaded.patience_seconds = 120.0;
  const TransferReport r = SimulateTransfers(200, caps, overloaded);
  EXPECT_GT(r.abandoned, 0u);
  EXPECT_GT(r.often_saturated_fraction, 0.0);
}

TEST(TransferTest, AccountingIsConsistent) {
  const CapacityDistribution caps = CapacityDistribution::Default();
  const TransferReport r = SimulateTransfers(250, caps, FastOptions());
  // Every completed transfer waited first; counts line up.
  EXPECT_EQ(r.wait_seconds.count >= r.completion_seconds.count, true);
  EXPECT_LE(r.completed + r.abandoned, r.requests);
}

}  // namespace
}  // namespace sppnet
