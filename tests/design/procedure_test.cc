#include "sppnet/design/procedure.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(RequiredOutdegreeTest, TtlOneIsExact) {
  EXPECT_EQ(RequiredOutdegree(1, 150.0), 150);
  EXPECT_EQ(RequiredOutdegree(1, 1.0), 1);
}

TEST(RequiredOutdegreeTest, PaperExampleAtTtlTwo) {
  // Section 5.2: reaching 300 super-peers at TTL 2 needs ~18 neighbors
  // (18^2 + 18 = 342 covers the target with margin).
  EXPECT_EQ(RequiredOutdegree(2, 300.0), 18);
}

TEST(RequiredOutdegreeTest, CoverageActuallySuffices) {
  for (const int ttl : {1, 2, 3, 4}) {
    for (const double reach : {10.0, 100.0, 1000.0}) {
      const int d = RequiredOutdegree(ttl, reach);
      double coverage = 0.0;
      double term = 1.0;
      for (int i = 0; i < ttl; ++i) {
        term *= d;
        coverage += term;
      }
      EXPECT_GE(coverage, reach) << "ttl=" << ttl << " reach=" << reach;
    }
  }
}

TEST(RequiredOutdegreeTest, MonotoneInReachAndTtl) {
  EXPECT_LE(RequiredOutdegree(2, 100.0), RequiredOutdegree(2, 500.0));
  EXPECT_GE(RequiredOutdegree(1, 500.0), RequiredOutdegree(2, 500.0));
  EXPECT_GE(RequiredOutdegree(2, 500.0), RequiredOutdegree(3, 500.0));
}

TEST(SuggestTtlTest, SmallReachIsOneHop) {
  EXPECT_EQ(SuggestTtl(10.0, 5.0), 1);
  EXPECT_EQ(SuggestTtl(10.0, 10.0), 1);
}

TEST(SuggestTtlTest, MatchesLogApproximation) {
  // log_20(500) ~ 2.07 -> padded and rounded up to 3 (Appendix F says
  // TTL too close to the EPL under-reaches).
  EXPECT_EQ(SuggestTtl(20.0, 500.0), 3);
  // log_10(500) = 2.7 -> 3.
  EXPECT_EQ(SuggestTtl(10.0, 500.0), 3);
}

class ProcedureTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();
};

TEST_F(ProcedureTest, PaperScenarioProducesEfficientDesign) {
  // Section 5.2: 20000 users, reach 3000, 100 Kbps / 10 MHz / 100
  // connections per super-peer.
  DesignGoals goals;
  goals.num_users = 20000;
  goals.desired_reach_peers = 3000.0;
  DesignConstraints constraints;
  const DesignResult result = RunGlobalDesign(goals, constraints, inputs_);

  ASSERT_TRUE(result.feasible) << result.note;
  // The paper's design lands at cluster size ~10, TTL 2. Ours must land
  // in the same neighborhood: a short TTL and a moderate cluster size.
  EXPECT_LE(result.config.ttl, 3);
  EXPECT_GE(result.config.cluster_size, 2.0);
  EXPECT_LE(result.config.cluster_size, 50.0);
  // Constraints must actually hold.
  EXPECT_LE(result.report.sp_in_bps.Mean(), constraints.max_individual_in_bps);
  EXPECT_LE(result.report.sp_out_bps.Mean(),
            constraints.max_individual_out_bps);
  EXPECT_LE(result.report.sp_proc_hz.Mean(),
            constraints.max_individual_proc_hz);
  EXPECT_LE(result.total_connections, constraints.max_connections);
  // And the reach goal must be met (in peers).
  const double peers_reached =
      result.report.reach.Mean() * result.config.cluster_size;
  EXPECT_GE(peers_reached, 0.9 * goals.desired_reach_peers);
}

TEST_F(ProcedureTest, ImpossibleConstraintsReportedInfeasible) {
  DesignGoals goals;
  goals.num_users = 5000;
  goals.desired_reach_peers = 5000.0;
  DesignConstraints constraints;
  constraints.max_individual_in_bps = 10.0;  // 10 bps: absurd.
  constraints.max_individual_out_bps = 10.0;
  DesignOptions options;
  options.trials_per_candidate = 1;
  options.min_cluster_size = 20.0;  // Keep the sweep fast.
  const DesignResult result =
      RunGlobalDesign(goals, constraints, inputs_, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.note.empty());
}

TEST_F(ProcedureTest, RedundancyUnlocksTighterIndividualLimits) {
  DesignGoals goals;
  goals.num_users = 4000;
  goals.desired_reach_peers = 1000.0;
  DesignOptions options;
  options.trials_per_candidate = 1;

  // Find a limit that the plain design just meets, then halve it.
  DesignConstraints loose;
  const DesignResult base = RunGlobalDesign(goals, loose, inputs_, options);
  ASSERT_TRUE(base.feasible);

  DesignConstraints tight;
  tight.max_individual_in_bps = 0.6 * base.report.sp_in_bps.Mean();
  tight.max_individual_out_bps = 0.6 * base.report.sp_out_bps.Mean();
  tight.max_individual_proc_hz = 0.6 * base.report.sp_proc_hz.Mean();
  tight.allow_redundancy = false;
  const DesignResult without = RunGlobalDesign(goals, tight, inputs_, options);

  tight.allow_redundancy = true;
  const DesignResult with_red = RunGlobalDesign(goals, tight, inputs_, options);

  // Redundancy can only widen the feasible set; in this scenario it
  // must produce a design at least as good.
  if (without.feasible) {
    EXPECT_TRUE(with_red.feasible);
  } else {
    EXPECT_TRUE(with_red.feasible);
    EXPECT_TRUE(with_red.config.redundancy);
  }
}

TEST_F(ProcedureTest, TraceContainsThePaperWaypoint) {
  // Section 5.2's walkthrough hits a famous intermediate point: at
  // TTL 1 with cluster size 20, reaching 3000 peers needs outdegree
  // 150, i.e. 169 open connections — "far exceeding our limit". The
  // decision trace must contain exactly that rejected candidate.
  DesignGoals goals;
  goals.num_users = 20000;
  goals.desired_reach_peers = 3000.0;
  DesignOptions options;
  options.trials_per_candidate = 1;
  const DesignResult result =
      RunGlobalDesign(goals, DesignConstraints{}, inputs_, options);
  bool found = false;
  for (const DesignStep& step : result.trace) {
    if (step.k == 1 && step.ttl == 1 && step.cluster_size == 20.0 &&
        step.outdegree == 150 && step.connections == 169.0) {
      found = true;
      EXPECT_NE(step.verdict.find("connection budget"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
  // And the trace ends with an accepted candidate when feasible.
  ASSERT_TRUE(result.feasible);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_NE(result.trace.back().verdict.find("accepted"), std::string::npos);
}

TEST_F(ProcedureTest, DesignIsDeterministic) {
  DesignGoals goals;
  goals.num_users = 4000;
  goals.desired_reach_peers = 800.0;
  DesignConstraints constraints;
  DesignOptions options;
  options.trials_per_candidate = 1;
  const DesignResult a = RunGlobalDesign(goals, constraints, inputs_, options);
  const DesignResult b = RunGlobalDesign(goals, constraints, inputs_, options);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_DOUBLE_EQ(a.config.cluster_size, b.config.cluster_size);
  EXPECT_EQ(a.config.ttl, b.config.ttl);
  EXPECT_DOUBLE_EQ(a.required_outdegree, b.required_outdegree);
}

}  // namespace
}  // namespace sppnet
