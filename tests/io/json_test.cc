#include "sppnet/io/json.h"

#include <charconv>
#include <clocale>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace sppnet {
namespace {

std::string Compact(const std::string& pretty) {
  // Strip the indentation whitespace so shape assertions stay readable.
  std::string out;
  bool in_string = false;
  bool escaped = false;
  for (const char c : pretty) {
    if (in_string) {
      out += c;
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      out += c;
      continue;
    }
    if (c == '\n' || c == ' ') continue;
    out += c;
  }
  return out;
}

TEST(JsonWriterTest, EmptyObjectAndArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject().EndObject();
  EXPECT_TRUE(w.Done());
  EXPECT_EQ(os.str(), "{}");

  std::ostringstream os2;
  JsonWriter w2(os2);
  w2.BeginArray().EndArray();
  EXPECT_EQ(os2.str(), "[]");
}

TEST(JsonWriterTest, NestedStructure) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("name").String("sppnet");
  w.Key("values").BeginArray().Number(std::int64_t{1}).Number(std::int64_t{2})
      .EndArray();
  w.Key("nested").BeginObject().Key("flag").Bool(true).EndObject();
  w.Key("none").Null();
  w.EndObject();
  EXPECT_TRUE(w.Done());
  EXPECT_EQ(Compact(os.str()),
            "{\"name\":\"sppnet\",\"values\":[1,2],"
            "\"nested\":{\"flag\":true},\"none\":null}");
}

TEST(JsonWriterTest, StringEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.String("a\"b\\c\nd\te\x01");
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");

  std::string out;
  AppendJsonEscaped("plain", out);
  EXPECT_EQ(out, "plain");
}

TEST(JsonWriterTest, IntegralDoublesPrintAsIntegers) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  w.Number(400.0).Number(-3.0).Number(0.0).Number(1e6);
  w.EndArray();
  EXPECT_EQ(Compact(os.str()), "[400,-3,0,1000000]");
}

TEST(JsonWriterTest, DoublesRoundTripShortest) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  w.Number(0.5).Number(3.14).Number(1.0 / 3.0);
  w.EndArray();
  const std::string json = Compact(os.str());
  EXPECT_EQ(json.substr(0, 10), "[0.5,3.14,");
  // The 1/3 representation must parse back to exactly the same double.
  double parsed = 0.0;
  std::sscanf(json.c_str() + 10, "%lf", &parsed);
  EXPECT_EQ(parsed, 1.0 / 3.0);
}

// Regression: Number(double) used to format through snprintf("%.17g"),
// which honours the global C locale — under a comma-decimal locale
// (de_DE and friends) the output became "0,5" and every BENCH_*.json
// was silently invalid. std::to_chars never consults the locale.
TEST(JsonWriterTest, DoublesIgnoreCommaDecimalLocale) {
  const char* const kCommaLocales[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                       "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"};
  const char* previous = std::setlocale(LC_ALL, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  bool locale_set = false;
  for (const char* name : kCommaLocales) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      locale_set = true;
      break;
    }
  }
  if (!locale_set) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  // Confirm the chosen locale really uses ',' — otherwise the test
  // would pass vacuously.
  char probe[32];
  std::snprintf(probe, sizeof(probe), "%.1f", 0.5);
  const bool comma_locale = std::string(probe).find(',') != std::string::npos;

  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  w.Number(0.5).Number(3.14).Number(1.0 / 3.0);
  w.EndArray();
  const std::string json = Compact(os.str());
  std::setlocale(LC_ALL, saved.c_str());

  if (!comma_locale) {
    GTEST_SKIP() << "locale does not use a comma decimal separator";
  }
  EXPECT_EQ(json.substr(0, 10), "[0.5,3.14,");
  // Values must be '.'-separated and round-trip exactly; from_chars is
  // locale-independent, so a comma would fail the parse.
  double parsed = 0.0;
  const char* begin = json.c_str() + 10;
  const auto res = std::from_chars(begin, json.c_str() + json.size(), parsed);
  EXPECT_EQ(res.ec, std::errc());
  EXPECT_EQ(parsed, 1.0 / 3.0);
  EXPECT_EQ(*res.ptr, ']') << "number not fully consumed: " << json;
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  w.Number(std::numeric_limits<double>::infinity());
  w.Number(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(Compact(os.str()), "[null,null]");
}

TEST(JsonWriterTest, LargeUnsignedIsExact) {
  std::ostringstream os;
  JsonWriter w(os);
  w.Number(std::uint64_t{18446744073709551615u});
  EXPECT_EQ(os.str(), "18446744073709551615");
}

TEST(JsonWriterTest, KeyEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject().Key("a\"b").String("v").EndObject();
  EXPECT_EQ(Compact(os.str()), "{\"a\\\"b\":\"v\"}");
}

TEST(JsonWriterTest, DoneIsFalseWhileOpen) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_FALSE(w.Done());
  w.BeginObject();
  EXPECT_FALSE(w.Done());
  w.EndObject();
  EXPECT_TRUE(w.Done());
}

TEST(JsonWriterDeathTest, ValueWithoutKeyAborts) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  EXPECT_DEATH(w.Number(std::int64_t{1}), "preceding Key");
}

TEST(JsonWriterDeathTest, KeyOutsideObjectAborts) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_DEATH(w.Key("k"), "outside an object");
}

TEST(JsonWriterDeathTest, MismatchedEndAborts) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  EXPECT_DEATH(w.EndObject(), "without an open object");
}

TEST(JsonWriterDeathTest, SecondRootAborts) {
  std::ostringstream os;
  JsonWriter w(os);
  w.Number(std::int64_t{1});
  EXPECT_DEATH(w.Number(std::int64_t{2}), "second root");
}

}  // namespace
}  // namespace sppnet
