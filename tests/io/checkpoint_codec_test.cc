// Hardening suite for the length-framed checkpoint codec
// (io/checkpoint.*): a checkpoint that survived the disk or the wire
// intact round-trips bit-exactly, and EVERY corrupted variant —
// truncation at any byte offset, any single bit flip, a foreign magic
// or version — is rejected up front by CheckpointReader::Open, before
// a single field is decoded. Malformed field-level payloads (huge
// vector counts, tag drift, over-reads) fail cleanly through ok(),
// never through a crash or a huge allocation.

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/io/checkpoint.h"
#include "sppnet/sim/stream.h"

namespace sppnet {
namespace {

constexpr std::uint32_t kMagic = 0x74736554u;  // "Test"
constexpr std::uint16_t kVersion = 3;
constexpr std::uint32_t kTagA = 0x61616161u;
constexpr std::uint32_t kTagB = 0x62626262u;

std::vector<std::uint8_t> SampleCheckpoint() {
  CheckpointWriter w(kMagic, kVersion);
  w.BeginSection(kTagA);
  w.PutU8(0x5a);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefull);
  w.PutBool(true);
  w.PutBool(false);
  w.PutDouble(-0.0);
  w.PutDouble(1.0 / 3.0);
  w.PutString("query trace");
  w.PutString("");
  w.BeginSection(kTagB);
  w.PutU8Vector({1, 2, 3});
  w.PutU32Vector({});
  w.PutU64Vector({0xffffffffffffffffull, 0});
  w.PutDoubleVector({3.5, -2.25, 0.0});
  return w.Finish();
}

TEST(CheckpointCodecTest, RoundTripsBitExactly) {
  const std::vector<std::uint8_t> bytes = SampleCheckpoint();
  std::optional<CheckpointReader> opened =
      CheckpointReader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(opened.has_value());
  CheckpointReader& r = *opened;
  EXPECT_TRUE(r.BeginSection(kTagA));
  EXPECT_EQ(r.GetU8(), 0x5a);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.GetBool());
  EXPECT_FALSE(r.GetBool());
  const double neg_zero = r.GetDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // Bit pattern, not a text trip.
  EXPECT_EQ(r.GetDouble(), 1.0 / 3.0);
  EXPECT_EQ(r.GetString(), "query trace");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_TRUE(r.BeginSection(kTagB));
  EXPECT_EQ(r.GetU8Vector(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.GetU32Vector(), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(r.GetU64Vector(),
            (std::vector<std::uint64_t>{0xffffffffffffffffull, 0}));
  EXPECT_EQ(r.GetDoubleVector(), (std::vector<double>{3.5, -2.25, 0.0}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CheckpointCodecTest, TruncationAtEveryByteOffsetIsRejected) {
  const std::vector<std::uint8_t> bytes = SampleCheckpoint();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_FALSE(CheckpointReader::Open(prefix, kMagic, kVersion).has_value())
        << "truncated to " << len << " of " << bytes.size() << " bytes";
  }
}

TEST(CheckpointCodecTest, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> bytes = SampleCheckpoint();
  bytes.push_back(0x00);
  EXPECT_FALSE(CheckpointReader::Open(bytes, kMagic, kVersion).has_value());
}

TEST(CheckpointCodecTest, EverySingleBitFlipIsRejected) {
  const std::vector<std::uint8_t> pristine = SampleCheckpoint();
  // Every bit of every byte — header, payload and the checksum trailer
  // itself all participate in the integrity check.
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = pristine;
      bytes[i] = static_cast<std::uint8_t>(bytes[i] ^ (1u << bit));
      EXPECT_FALSE(CheckpointReader::Open(bytes, kMagic, kVersion).has_value())
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(CheckpointCodecTest, WrongMagicAndVersionAreRejected) {
  const std::vector<std::uint8_t> bytes = SampleCheckpoint();
  EXPECT_FALSE(
      CheckpointReader::Open(bytes, kMagic + 1, kVersion).has_value());
  EXPECT_FALSE(
      CheckpointReader::Open(bytes, kMagic, kVersion + 1).has_value());
  // A stream checkpoint's own identity is enforced the same way.
  EXPECT_FALSE(CheckpointReader::Open(bytes, kStreamCheckpointMagic,
                                      kStreamCheckpointVersion)
                   .has_value());
}

TEST(CheckpointCodecTest, EmptyBufferIsRejected) {
  EXPECT_FALSE(CheckpointReader::Open({}, kMagic, kVersion).has_value());
}

TEST(CheckpointCodecTest, SectionTagMismatchPoisonsTheReader) {
  CheckpointWriter w(kMagic, kVersion);
  w.BeginSection(kTagA);
  w.PutU64(42);
  const std::vector<std::uint8_t> bytes = w.Finish();
  std::optional<CheckpointReader> opened =
      CheckpointReader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(opened.has_value());
  EXPECT_FALSE(opened->BeginSection(kTagB));
  EXPECT_FALSE(opened->ok());
  // Poisoned readers keep returning zero values, never trap.
  EXPECT_EQ(opened->GetU64(), 0u);
}

TEST(CheckpointCodecTest, OverReadFailsCleanlyWithZeroValues) {
  CheckpointWriter w(kMagic, kVersion);
  w.PutU32(7);
  const std::vector<std::uint8_t> bytes = w.Finish();
  std::optional<CheckpointReader> opened =
      CheckpointReader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->GetU32(), 7u);
  EXPECT_TRUE(opened->AtEnd());
  EXPECT_EQ(opened->GetU64(), 0u);
  EXPECT_FALSE(opened->ok());
  EXPECT_EQ(opened->GetString(), "");
  EXPECT_TRUE(opened->GetDoubleVector().empty());
}

TEST(CheckpointCodecTest, HugeVectorCountFailsWithoutAllocating) {
  // A checksum-valid envelope whose payload CLAIMS a vector of 2^61
  // doubles: the element count passes the frame check only if the
  // reader multiplies it out before allocating.
  CheckpointWriter w(kMagic, kVersion);
  w.PutU64(1ull << 61);  // Vector length prefix with no elements behind it.
  const std::vector<std::uint8_t> bytes = w.Finish();
  std::optional<CheckpointReader> opened =
      CheckpointReader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->GetDoubleVector().empty());
  EXPECT_FALSE(opened->ok());
}

TEST(CheckpointCodecTest, HugeStringLengthFailsWithoutAllocating) {
  CheckpointWriter w(kMagic, kVersion);
  w.PutU64(1ull << 61);
  const std::vector<std::uint8_t> bytes = w.Finish();
  std::optional<CheckpointReader> opened =
      CheckpointReader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->GetString(), "");
  EXPECT_FALSE(opened->ok());
}

TEST(CheckpointCodecTest, PayloadSizeMatchesWriterAccounting) {
  CheckpointWriter w(kMagic, kVersion);
  EXPECT_EQ(w.payload_size(), 0u);
  w.PutU8(1);
  w.PutU32(2);
  w.PutU64(3);
  w.PutDouble(4.0);
  EXPECT_EQ(w.payload_size(), 1u + 4u + 8u + 8u);
  const std::vector<std::uint8_t> bytes = w.Finish();
  // magic(4) + version(2) + size(8) + payload + checksum(8).
  EXPECT_EQ(bytes.size(), 4u + 2u + 8u + 21u + 8u);
}

TEST(CheckpointCodecDeathTest, MalformedStreamOptionsAbort) {
  {
    StreamOptions o;
    o.window_seconds = 0.0;
    EXPECT_DEATH(o.Validate(), "stream window must be finite and > 0");
  }
  {
    StreamOptions o;
    o.window_seconds = -5.0;
    EXPECT_DEATH(o.Validate(), "stream window must be finite and > 0");
  }
  {
    StreamOptions o;
    o.window_seconds = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DEATH(o.Validate(), "stream window must be finite and > 0");
  }
  {
    StreamOptions o;
    o.window_seconds = std::numeric_limits<double>::infinity();
    EXPECT_DEATH(o.Validate(), "stream window must be finite and > 0");
  }
  {
    StreamOptions o;
    o.state_retention_seconds = -1.0;
    EXPECT_DEATH(o.Validate(), "state retention must be finite and >= 0");
  }
  {
    StreamOptions o;
    o.state_retention_seconds = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DEATH(o.Validate(), "state retention must be finite and >= 0");
  }
}

TEST(CheckpointCodecTest, Fnv1aPrimitivesMatchEachOther) {
  // Fnv1aMix64 must equal Fnv1a64 over the value's little-endian bytes
  // — the stream layer relies on mixing scalars and byte spans into
  // one digest interchangeably.
  const std::uint64_t v = 0x1122334455667788ull;
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu);
  }
  EXPECT_EQ(Fnv1aMix64(kFnv1aOffset, v), Fnv1a64(le, kFnv1aOffset));
}

}  // namespace
}  // namespace sppnet
