#include "sppnet/io/table.h"

#include <algorithm>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace sppnet {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(TableWriterTest, PrintsHeaderRuleAndRows) {
  TableWriter t({"A", "LongHeader"});
  t.AddRow({"x", "1"});
  t.AddRow({"longvalue", "2"});
  std::ostringstream os;
  t.Print(os);
  const auto lines = Lines(os.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("LongHeader"), std::string::npos);
  EXPECT_EQ(lines[1].find_first_not_of('-'), std::string::npos);
  EXPECT_NE(lines[2].find('x'), std::string::npos);
  EXPECT_NE(lines[3].find("longvalue"), std::string::npos);
}

TEST(TableWriterTest, ColumnsAligned) {
  TableWriter t({"A", "B"});
  t.AddRow({"x", "1"});
  t.AddRow({"longvalue", "2"});
  std::ostringstream os;
  t.Print(os);
  const auto lines = Lines(os.str());
  // Second column starts at the same offset in every data line.
  const auto col_b_header = lines[0].find('B');
  EXPECT_EQ(lines[2].find('1'), col_b_header);
  EXPECT_EQ(lines[3].find('2'), col_b_header);
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(FormatTest, GeneralFormat) {
  EXPECT_EQ(Format(3.14159, 3), "3.14");
  EXPECT_EQ(Format(1000000.0, 4), "1e+06");
  EXPECT_EQ(Format(std::size_t{42}), "42");
  EXPECT_EQ(Format(-7), "-7");
}

TEST(FormatTest, ScientificMatchesPaperStyle) {
  EXPECT_EQ(FormatSci(9.08e8), "9.08e+08");
  EXPECT_EQ(FormatSci(0.0), "0.00e+00");
}

}  // namespace
}  // namespace sppnet
