#include "sppnet/common/rng.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedIsWellMixed) {
  Rng rng(0);
  // SplitMix seeding must not produce a degenerate all-zero state.
  std::uint64_t all_or = 0;
  for (int i = 0; i < 10; ++i) all_or |= rng.NextUint64();
  EXPECT_NE(all_or, 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(42);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t x = rng.NextBounded(kBound);
    ASSERT_LT(x, kBound);
    ++counts[x];
  }
  // Each bucket should be within 10% of the expected count.
  const double expected = static_cast<double>(kSamples) / kBound;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 0.1 * expected);
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.NextInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Split();
  // The child stream must differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace sppnet
