#include "sppnet/common/distributions.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"

namespace sppnet {
namespace {

TEST(ZipfDistributionTest, PmfSumsToOne) {
  const ZipfDistribution zipf(1000, 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfDistributionTest, PmfIsMonotoneDecreasing) {
  const ZipfDistribution zipf(500, 0.8);
  for (std::size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_LE(zipf.Pmf(i), zipf.Pmf(i - 1));
  }
}

TEST(ZipfDistributionTest, ExponentZeroIsUniform) {
  const ZipfDistribution zipf(100, 0.0);
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 0.01, 1e-12);
  }
}

TEST(ZipfDistributionTest, SingleRankAlwaysSampled) {
  const ZipfDistribution zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfDistributionTest, SampleFrequenciesMatchPmf) {
  const ZipfDistribution zipf(50, 1.0);
  Rng rng(7);
  std::vector<int> counts(50, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  // Check the head ranks where counts are large enough for tight bounds.
  for (std::size_t i = 0; i < 5; ++i) {
    const double expected = zipf.Pmf(i) * kSamples;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 0.05 * expected)
        << "rank " << i;
  }
}

// Property sweep: Zipf ratios between consecutive ranks follow (i+1/i)^s.
class ZipfRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfRatioTest, ConsecutiveRankRatio) {
  const double s = GetParam();
  const ZipfDistribution zipf(64, s);
  for (std::size_t i = 1; i < 10; ++i) {
    const double expect =
        std::pow(static_cast<double>(i + 1) / static_cast<double>(i), s);
    EXPECT_NEAR(zipf.Pmf(i - 1) / zipf.Pmf(i), expect, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfRatioTest,
                         ::testing::Values(0.25, 0.5, 1.0, 1.5, 2.0));

TEST(LogNormalDistributionTest, FromMeanAndMedianRecoversMoments) {
  const auto dist = LogNormalDistribution::FromMeanAndMedian(1080.0, 600.0);
  EXPECT_NEAR(dist.Mean(), 1080.0, 1e-6);
  // Median of samples should approximate 600.
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(dist.Sample(rng));
  std::nth_element(samples.begin(), samples.begin() + 50000, samples.end());
  EXPECT_NEAR(samples[50000], 600.0, 25.0);
}

TEST(LogNormalDistributionTest, SampleMeanConverges) {
  const auto dist = LogNormalDistribution::FromMeanAndMedian(1080.0, 600.0);
  Rng rng(5);
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sum += dist.Sample(rng);
  EXPECT_NEAR(sum / kSamples, 1080.0, 40.0);
}

TEST(LogNormalDistributionTest, SamplesArePositive) {
  const auto dist = LogNormalDistribution::FromMeanAndMedian(10.0, 2.0);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(dist.Sample(rng), 0.0);
}

// Property sweep over bounded-Pareto parameters: the analytic mean must
// match the empirical mean.
class BoundedParetoMeanTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(BoundedParetoMeanTest, AnalyticMeanMatchesEmpirical) {
  const auto [lo, hi, alpha] = GetParam();
  const BoundedParetoDistribution dist(lo, hi, alpha);
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = dist.Sample(rng);
    ASSERT_GE(x, lo);
    ASSERT_LE(x, hi);
    sum += x;
  }
  const double empirical = sum / kSamples;
  EXPECT_NEAR(empirical, dist.Mean(), 0.05 * dist.Mean());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundedParetoMeanTest,
    ::testing::Values(std::make_tuple(8.0, 20000.0, 1.2),
                      std::make_tuple(1.0, 100.0, 0.5),
                      std::make_tuple(1.0, 100.0, 1.0),  // alpha == 1 branch
                      std::make_tuple(10.0, 1000.0, 2.0),
                      std::make_tuple(2.0, 50.0, 1.5)));

TEST(TruncatedNormalTest, NeverBelowMinimum) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(SampleTruncatedNormal(rng, 1.0, 5.0, 0.0), 0.0);
  }
}

TEST(TruncatedNormalTest, MeanApproximatelyPreservedWhenFarFromBound) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += SampleTruncatedNormal(rng, 100.0, 5.0, 0.0);
  }
  EXPECT_NEAR(sum / kSamples, 100.0, 0.5);
}

}  // namespace
}  // namespace sppnet
