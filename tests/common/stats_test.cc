#include "sppnet/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.Mean(), 0.0);
  EXPECT_EQ(rs.Variance(), 0.0);
  EXPECT_EQ(rs.StdError(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 5.0);
  EXPECT_EQ(rs.Variance(), 0.0);
}

TEST(RunningStatTest, KnownMeanAndVariance) {
  RunningStat rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.Mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(rs.Variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i));
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-12);
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  const double mean = a.Mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Mean(), mean);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.Mean(), mean);
}

TEST(RunningStatTest, ConfidenceIntervalShrinksWithSamples) {
  RunningStat small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.Add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.ConfidenceHalfWidth95(), large.ConfidenceHalfWidth95());
}

TEST(SummarizeTest, EmptyInput) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, BasicStatistics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0), 10.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(PercentileSorted({42.0}, 0.7), 42.0);
}

TEST(GroupedStatTest, GroupsAreIndependent) {
  GroupedStat g;
  g.Add(2, 10.0);
  g.Add(2, 20.0);
  g.Add(5, 7.0);
  EXPECT_DOUBLE_EQ(g.Group(2).Mean(), 15.0);
  EXPECT_DOUBLE_EQ(g.Group(5).Mean(), 7.0);
  EXPECT_EQ(g.Group(3).count(), 0u);
  EXPECT_EQ(g.Group(100).count(), 0u);  // Out of range -> empty.
  EXPECT_EQ(g.KeyUpperBound(), 6);
}

}  // namespace
}  // namespace sppnet
