// Robustness sweep over the wire codecs: decoding must never crash or
// mis-size on truncated, padded or bit-flipped buffers — it either
// returns a well-formed message or std::nullopt.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/proto/messages.h"

namespace sppnet {
namespace {

std::vector<std::uint8_t> SampleEncoded(Rng& rng) {
  switch (rng.NextBounded(4)) {
    case 0: {
      QueryMessage m;
      m.header.guid = GuidFromSeed(rng.NextUint64());
      m.header.ttl = static_cast<std::uint8_t>(rng.NextBounded(10));
      m.query.assign(rng.NextBounded(40), 'q');
      return m.Encode();
    }
    case 1: {
      ResponseMessage m;
      m.addresses.resize(rng.NextBounded(5));
      m.results.resize(rng.NextBounded(8));
      for (auto& r : m.results) r.title = "some file title";
      return m.Encode();
    }
    case 2: {
      JoinMessage m;
      m.files.resize(rng.NextBounded(6));
      for (auto& f : m.files) f.title = "join title";
      return m.Encode();
    }
    default: {
      UpdateMessage m;
      m.file.title = "update title";
      return m.Encode();
    }
  }
}

void TryAllDecoders(const std::vector<std::uint8_t>& bytes) {
  // None of these may crash; results are unchecked on purpose.
  (void)QueryMessage::Decode(bytes);
  (void)ResponseMessage::Decode(bytes);
  (void)JoinMessage::Decode(bytes);
  (void)UpdateMessage::Decode(bytes);
}

TEST(DecodeRobustnessTest, TruncationsNeverCrash) {
  Rng rng(1);
  for (int round = 0; round < 50; ++round) {
    const auto bytes = SampleEncoded(rng);
    for (std::size_t len = 0; len <= bytes.size(); ++len) {
      TryAllDecoders({bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    }
  }
}

TEST(DecodeRobustnessTest, BitFlipsNeverCrash) {
  Rng rng(2);
  for (int round = 0; round < 300; ++round) {
    auto bytes = SampleEncoded(rng);
    if (bytes.empty()) continue;
    // Flip up to 4 random bits.
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] = static_cast<std::uint8_t>(
          bytes[pos] ^ static_cast<std::uint8_t>(1u << rng.NextBounded(8)));
    }
    TryAllDecoders(bytes);
  }
}

TEST(DecodeRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(3);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> garbage(rng.NextBounded(200));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    TryAllDecoders(garbage);
  }
}

TEST(DecodeRobustnessTest, PaddingIsRejected) {
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    auto bytes = SampleEncoded(rng);
    bytes.push_back(0xab);  // One trailing byte breaks record framing.
    // Typed decoders that check record alignment must reject it.
    EXPECT_FALSE(QueryMessage::Decode(bytes).has_value() &&
                 bytes[16] == static_cast<std::uint8_t>(MessageType::kQuery));
    (void)ResponseMessage::Decode(bytes);
    (void)JoinMessage::Decode(bytes);
    (void)UpdateMessage::Decode(bytes);
  }
}

TEST(DecodeRobustnessTest, EncodeDecodeIsIdempotent) {
  Rng rng(5);
  for (int round = 0; round < 100; ++round) {
    QueryMessage m;
    m.header.guid = GuidFromSeed(rng.NextUint64());
    m.flags = static_cast<std::uint16_t>(rng.NextBounded(65536));
    m.query.assign(rng.NextBounded(60), 'x');
    const auto once = m.Encode();
    const auto decoded = QueryMessage::Decode(once);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->Encode(), once);
  }
}

}  // namespace
}  // namespace sppnet
