// Robustness sweep over the wire codecs: decoding must never crash or
// mis-size on truncated, padded or bit-flipped buffers — it either
// returns a well-formed message or std::nullopt.

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/proto/messages.h"

namespace sppnet {
namespace {

std::vector<std::uint8_t> SampleEncoded(Rng& rng) {
  switch (rng.NextBounded(4)) {
    case 0: {
      QueryMessage m;
      m.header.guid = GuidFromSeed(rng.NextUint64());
      m.header.ttl = static_cast<std::uint8_t>(rng.NextBounded(10));
      m.query.assign(rng.NextBounded(40), 'q');
      return m.Encode();
    }
    case 1: {
      ResponseMessage m;
      m.addresses.resize(rng.NextBounded(5));
      m.results.resize(rng.NextBounded(8));
      for (auto& r : m.results) r.title = "some file title";
      return m.Encode();
    }
    case 2: {
      JoinMessage m;
      m.files.resize(rng.NextBounded(6));
      for (auto& f : m.files) f.title = "join title";
      return m.Encode();
    }
    default: {
      UpdateMessage m;
      m.file.title = "update title";
      return m.Encode();
    }
  }
}

void TryAllDecoders(const std::vector<std::uint8_t>& bytes) {
  // None of these may crash; results are unchecked on purpose.
  (void)QueryMessage::Decode(bytes);
  (void)ResponseMessage::Decode(bytes);
  (void)JoinMessage::Decode(bytes);
  (void)UpdateMessage::Decode(bytes);
}

TEST(DecodeRobustnessTest, TruncationsNeverCrash) {
  Rng rng(1);
  for (int round = 0; round < 50; ++round) {
    const auto bytes = SampleEncoded(rng);
    for (std::size_t len = 0; len <= bytes.size(); ++len) {
      TryAllDecoders({bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    }
  }
}

TEST(DecodeRobustnessTest, BitFlipsNeverCrash) {
  Rng rng(2);
  for (int round = 0; round < 300; ++round) {
    auto bytes = SampleEncoded(rng);
    if (bytes.empty()) continue;
    // Flip up to 4 random bits.
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] = static_cast<std::uint8_t>(
          bytes[pos] ^ static_cast<std::uint8_t>(1u << rng.NextBounded(8)));
    }
    TryAllDecoders(bytes);
  }
}

TEST(DecodeRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(3);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> garbage(rng.NextBounded(200));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    TryAllDecoders(garbage);
  }
}

TEST(DecodeRobustnessTest, PaddingIsRejected) {
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    auto bytes = SampleEncoded(rng);
    bytes.push_back(0xab);  // One trailing byte breaks record framing.
    // Typed decoders that check record alignment must reject it.
    EXPECT_FALSE(QueryMessage::Decode(bytes).has_value() &&
                 bytes[16] == static_cast<std::uint8_t>(MessageType::kQuery));
    (void)ResponseMessage::Decode(bytes);
    (void)JoinMessage::Decode(bytes);
    (void)UpdateMessage::Decode(bytes);
  }
}

TEST(DecodeRobustnessTest, EncodeDecodeIsIdempotent) {
  Rng rng(5);
  for (int round = 0; round < 100; ++round) {
    QueryMessage m;
    m.header.guid = GuidFromSeed(rng.NextUint64());
    m.flags = static_cast<std::uint16_t>(rng.NextBounded(65536));
    m.query.assign(rng.NextBounded(60), 'x');
    const auto once = m.Encode();
    const auto decoded = QueryMessage::Decode(once);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->Encode(), once);
  }
}

// --- Per-type seeded rejection sweep -----------------------------------
//
// The tests above prove "never crashes"; these prove "cleanly
// rejects": for EVERY message type in proto/messages.h, every strict
// truncation of a valid encoding must decode to std::nullopt (the
// decoders frame-check with AtEnd()), and a bit-flipped buffer either
// decodes to std::nullopt or to a well-formed message whose
// re-encoding preserves the wire size. Each generator round is seeded,
// so a failure reproduces from the round number alone.

template <typename Message, typename MakeFn>
void SweepType(const char* type_name, std::uint64_t seed, MakeFn make) {
  SCOPED_TRACE(type_name);
  Rng rng(seed);
  for (int round = 0; round < 40; ++round) {
    SCOPED_TRACE(round);
    const Message original = make(rng);
    const std::vector<std::uint8_t> bytes = original.Encode();

    // The untouched encoding must decode.
    ASSERT_TRUE(Message::Decode(bytes).has_value());

    // Every strict truncation is cleanly rejected.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix(bytes.data(), len);
      EXPECT_FALSE(Message::Decode(prefix).has_value())
          << "truncation to " << len << " of " << bytes.size()
          << " bytes decoded";
    }

    // Random bit flips: rejected, or decoded into a message that still
    // frames to the same wire size (a flip can land in string content,
    // which is legitimately tolerated).
    for (int f = 0; f < 16; ++f) {
      std::vector<std::uint8_t> flipped = bytes;
      const std::size_t pos = rng.NextBounded(flipped.size());
      flipped[pos] = static_cast<std::uint8_t>(
          flipped[pos] ^
          static_cast<std::uint8_t>(1u << rng.NextBounded(8)));
      const auto decoded = Message::Decode(flipped);
      if (decoded.has_value()) {
        EXPECT_EQ(decoded->Encode().size(), bytes.size())
            << "bit flip at byte " << pos << " changed the framed size";
      }
    }
  }
}

TEST(DecodeRejectionSweepTest, QueryMessage) {
  SweepType<QueryMessage>("QueryMessage", 101, [](Rng& rng) {
    QueryMessage m;
    m.header.guid = GuidFromSeed(rng.NextUint64());
    m.header.ttl = static_cast<std::uint8_t>(rng.NextBounded(10));
    m.header.hops = static_cast<std::uint8_t>(rng.NextBounded(10));
    m.flags = static_cast<std::uint16_t>(rng.NextBounded(65536));
    m.query.assign(rng.NextBounded(60), 'q');
    return m;
  });
}

TEST(DecodeRejectionSweepTest, ResponseMessage) {
  SweepType<ResponseMessage>("ResponseMessage", 102, [](Rng& rng) {
    ResponseMessage m;
    m.header.guid = GuidFromSeed(rng.NextUint64());
    m.addresses.resize(rng.NextBounded(6));
    for (auto& a : m.addresses) {
      a.owner = static_cast<std::uint32_t>(rng.NextUint64());
      a.port = static_cast<std::uint16_t>(rng.NextBounded(65536));
    }
    m.results.resize(rng.NextBounded(9));
    for (auto& r : m.results) {
      r.file_id = rng.NextUint64();
      r.title = "a response title";
    }
    return m;
  });
}

TEST(DecodeRejectionSweepTest, JoinMessage) {
  SweepType<JoinMessage>("JoinMessage", 103, [](Rng& rng) {
    JoinMessage m;
    m.header.guid = GuidFromSeed(rng.NextUint64());
    m.files.resize(rng.NextBounded(7));
    for (auto& f : m.files) {
      f.file_id = rng.NextUint64();
      f.title = "a join title";
    }
    return m;
  });
}

TEST(DecodeRejectionSweepTest, UpdateMessage) {
  SweepType<UpdateMessage>("UpdateMessage", 104, [](Rng& rng) {
    UpdateMessage m;
    m.header.guid = GuidFromSeed(rng.NextUint64());
    m.file.file_id = rng.NextUint64();
    m.file.title = "an update title";
    return m;
  });
}

}  // namespace
}  // namespace sppnet
