#include "sppnet/proto/wire.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(ByteWriterTest, LittleEndianLayout) {
  ByteWriter w;
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x34);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0xef);
  EXPECT_EQ(b[3], 0xbe);
  EXPECT_EQ(b[4], 0xad);
  EXPECT_EQ(b[5], 0xde);
}

TEST(ByteWriterTest, CStringAppendsTerminator) {
  ByteWriter w;
  w.PutCString("abc");
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[3], 0u);
}

TEST(ByteWriterTest, ZerosAndSize) {
  ByteWriter w;
  w.PutZeros(5);
  w.PutU8(1);
  EXPECT_EQ(w.size(), 6u);
}

TEST(WireRoundTripTest, AllScalarTypes) {
  ByteWriter w;
  w.PutU8(0x7f);
  w.PutU16(0xbeef);
  w.PutU32(0x12345678);
  w.PutU64(0xfedcba9876543210ULL);
  w.PutCString("hello world");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0x7f);
  EXPECT_EQ(r.GetU16(), 0xbeef);
  EXPECT_EQ(r.GetU32(), 0x12345678u);
  EXPECT_EQ(r.GetU64(), 0xfedcba9876543210ULL);
  EXPECT_EQ(r.GetCString(), "hello world");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteReaderTest, TruncatedReadsFail) {
  const std::uint8_t data[] = {1, 2, 3};
  ByteReader r({data, 3});
  EXPECT_TRUE(r.GetU16().has_value());
  EXPECT_FALSE(r.GetU16().has_value());  // Only 1 byte left.
  EXPECT_TRUE(r.GetU8().has_value());
  EXPECT_FALSE(r.GetU8().has_value());
}

TEST(ByteReaderTest, UnterminatedCStringFails) {
  const std::uint8_t data[] = {'a', 'b', 'c'};
  ByteReader r({data, 3});
  EXPECT_FALSE(r.GetCString().has_value());
}

TEST(ByteReaderTest, SkipBounds) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  ByteReader r({data, 4});
  EXPECT_TRUE(r.Skip(3));
  EXPECT_FALSE(r.Skip(2));
  EXPECT_TRUE(r.Skip(1));
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace sppnet
