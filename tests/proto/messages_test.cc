#include "sppnet/proto/messages.h"

#include <gtest/gtest.h>

#include "sppnet/cost/cost_table.h"

namespace sppnet {
namespace {

TEST(MessageHeaderTest, SerializesToTwentyTwoBytes) {
  ByteWriter w;
  MessageHeader h;
  h.guid = GuidFromSeed(1);
  h.Encode(w);
  EXPECT_EQ(w.size(), kHeaderBytes);
}

TEST(MessageHeaderTest, RoundTrip) {
  MessageHeader h;
  h.guid = GuidFromSeed(42);
  h.type = MessageType::kResponse;
  h.ttl = 7;
  h.hops = 3;
  h.payload_length = 512;
  ByteWriter w;
  h.Encode(w);
  ByteReader r(w.bytes());
  const auto decoded = MessageHeader::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->guid, h.guid);
  EXPECT_EQ(decoded->type, MessageType::kResponse);
  EXPECT_EQ(decoded->ttl, 7);
  EXPECT_EQ(decoded->hops, 3);
  EXPECT_EQ(decoded->payload_length, 512);
}

TEST(QueryMessageTest, RoundTrip) {
  QueryMessage m;
  m.header.guid = GuidFromSeed(5);
  m.header.ttl = 7;
  m.flags = 0x0102;
  m.query = "blue moon rising";
  const auto bytes = m.Encode();
  const auto decoded = QueryMessage::Decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->query, m.query);
  EXPECT_EQ(decoded->flags, m.flags);
  EXPECT_EQ(decoded->header.ttl, 7);
}

TEST(QueryMessageTest, WireSizeMatchesCostTable) {
  // The codec and Table 2 must agree byte for byte: 82 + query length.
  const CostTable costs;
  for (const std::size_t len : {0u, 1u, 12u, 40u, 200u}) {
    QueryMessage m;
    m.query.assign(len, 'q');
    EXPECT_EQ(static_cast<double>(m.WireSizeBytes()),
              costs.QueryBytes(static_cast<double>(len)))
        << "len=" << len;
    // Encoded payload size + transport framing == WireSizeBytes.
    EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  }
}

TEST(ResponseMessageTest, RoundTrip) {
  ResponseMessage m;
  m.header.guid = GuidFromSeed(9);
  for (std::uint32_t i = 0; i < 3; ++i) {
    AddressRecord a;
    a.owner = 100 + i;
    a.ipv4 = 0x0a000001 + i;
    a.port = static_cast<std::uint16_t>(6346 + i);
    a.speed_kbps = 768;
    a.results_from_owner = static_cast<std::uint16_t>(i + 1);
    m.addresses.push_back(a);
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    ResultRecord r;
    r.file_id = 1000 + i;
    r.owner = 100 + static_cast<std::uint32_t>(i % 3);
    r.size_kb = 4096;
    r.title = std::string("result number ") + std::to_string(i);
    m.results.push_back(r);
  }
  const auto bytes = m.Encode();
  const auto decoded = ResponseMessage::Decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->addresses.size(), 3u);
  ASSERT_EQ(decoded->results.size(), 5u);
  EXPECT_EQ(decoded->addresses[2].owner, 102u);
  EXPECT_EQ(decoded->results[4].title, "result number 4");
  EXPECT_EQ(decoded->results[4].file_id, 1004u);
}

TEST(ResponseMessageTest, WireSizeMatchesCostTable) {
  const CostTable costs;
  for (const std::size_t addrs : {0u, 1u, 4u, 20u}) {
    for (const std::size_t results : {0u, 1u, 10u}) {
      ResponseMessage m;
      m.addresses.resize(addrs);
      m.results.resize(results);
      EXPECT_EQ(static_cast<double>(m.WireSizeBytes()),
                costs.ResponseBytes(static_cast<double>(addrs),
                                    static_cast<double>(results)));
      EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes,
                m.WireSizeBytes());
    }
  }
}

TEST(ResultRecordTest, LongTitleTruncatedOnWire) {
  ResultRecord r;
  r.title.assign(200, 'x');
  ByteWriter w;
  r.Encode(w);
  EXPECT_EQ(w.size(), kResultRecordBytes);
  ByteReader reader(w.bytes());
  const auto decoded = ResultRecord::Decode(reader);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->title.size(), ResultRecord::kTitleBytes);
}

TEST(JoinMessageTest, RoundTrip) {
  JoinMessage m;
  m.header.guid = GuidFromSeed(11);
  for (std::uint64_t i = 0; i < 7; ++i) {
    JoinMessage::Metadata meta;
    meta.file_id = i;
    meta.size_kb = static_cast<std::uint32_t>(100 * i);
    meta.title = std::string("file ") + std::to_string(i);
    m.files.push_back(meta);
  }
  const auto decoded = JoinMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->files.size(), 7u);
  EXPECT_EQ(decoded->files[3].title, "file 3");
  EXPECT_EQ(decoded->files[6].size_kb, 600u);
}

TEST(JoinMessageTest, WireSizeMatchesCostTable) {
  const CostTable costs;
  for (const std::size_t files : {0u, 1u, 10u, 168u}) {
    JoinMessage m;
    m.files.resize(files);
    EXPECT_EQ(static_cast<double>(m.WireSizeBytes()),
              costs.JoinBytes(static_cast<double>(files)));
    EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  }
}

TEST(UpdateMessageTest, RoundTripAndFixedSize) {
  const CostTable costs;
  UpdateMessage m;
  m.header.guid = GuidFromSeed(13);
  m.op = UpdateMessage::Op::kErase;
  m.file.file_id = 777;
  m.file.title = "gone";
  EXPECT_EQ(static_cast<double>(m.WireSizeBytes()), costs.UpdateBytes());
  const auto decoded = UpdateMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, UpdateMessage::Op::kErase);
  EXPECT_EQ(decoded->file.file_id, 777u);
  EXPECT_EQ(decoded->file.title, "gone");
}

TEST(LoadProbeMessageTest, RoundTripAndFixedSize) {
  const CostTable costs;
  LoadProbeMessage m;
  m.header.guid = GuidFromSeed(17);
  m.cluster = 4242;
  EXPECT_EQ(static_cast<double>(m.WireSizeBytes()), costs.LoadProbeBytes());
  EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  const auto decoded = LoadProbeMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->cluster, 4242u);
}

TEST(LoadReportMessageTest, RoundTripAndFixedSize) {
  const CostTable costs;
  LoadReportMessage m;
  m.header.guid = GuidFromSeed(19);
  m.cluster = 77;
  m.total_bps = 123456.75f;
  m.proc_hz = 9.5e6f;
  m.window_ms = 30000;
  EXPECT_EQ(static_cast<double>(m.WireSizeBytes()), costs.LoadReportBytes());
  EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  const auto decoded = LoadReportMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->cluster, 77u);
  EXPECT_EQ(decoded->total_bps, 123456.75f);  // Bit-exact via bit_cast.
  EXPECT_EQ(decoded->proc_hz, 9.5e6f);
  EXPECT_EQ(decoded->window_ms, 30000u);
}

TEST(TtlUpdateMessageTest, RoundTripAndFixedSize) {
  const CostTable costs;
  TtlUpdateMessage m;
  m.header.guid = GuidFromSeed(23);
  m.new_ttl = 5;
  EXPECT_EQ(static_cast<double>(m.WireSizeBytes()), costs.TtlUpdateBytes());
  EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  const auto decoded = TtlUpdateMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->new_ttl, 5);
}

TEST(DigestAnnounceMessageTest, RoundTripAndCostTableSize) {
  const CostTable costs;
  for (const std::uint16_t bits : {64u, 512u, 2048u}) {
    DigestAnnounceMessage m;
    m.header.guid = GuidFromSeed(29);
    m.cluster = 314;
    m.digest_bits = bits;
    m.num_hashes = 3;
    m.radius = 2;
    m.digest.resize(bits / 8);
    for (std::size_t i = 0; i < m.digest.size(); ++i) {
      m.digest[i] = static_cast<std::uint8_t>(i * 37 + 1);
    }
    EXPECT_EQ(static_cast<double>(m.WireSizeBytes()),
              costs.DigestAnnounceBytes(static_cast<double>(bits / 8)))
        << "bits=" << bits;
    EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
    const auto decoded = DigestAnnounceMessage::Decode(m.Encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->cluster, 314u);
    EXPECT_EQ(decoded->digest_bits, bits);
    EXPECT_EQ(decoded->num_hashes, 3);
    EXPECT_EQ(decoded->radius, 2);
    EXPECT_EQ(decoded->digest, m.digest);
  }
}

TEST(DigestAnnounceMessageTest, RejectsMalformedWidths) {
  DigestAnnounceMessage m;
  m.digest_bits = 128;
  m.num_hashes = 2;
  m.radius = 1;
  m.digest.resize(16, 0xAB);
  auto bytes = m.Encode();
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(DigestAnnounceMessage::Decode(truncated).has_value());
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(DigestAnnounceMessage::Decode(padded).has_value());
  // Declared width disagreeing with the bitmap length must be rejected
  // even when the overall payload framing is consistent.
  auto lying = bytes;
  lying[kHeaderBytes + 4] = 64;  // digest_bits low byte: 128 -> 64.
  EXPECT_FALSE(DigestAnnounceMessage::Decode(lying).has_value());
}

TEST(DecodeTest, RejectsWrongType) {
  QueryMessage q;
  q.query = "x";
  const auto bytes = q.Encode();
  EXPECT_FALSE(ResponseMessage::Decode(bytes).has_value());
  EXPECT_FALSE(JoinMessage::Decode(bytes).has_value());
  EXPECT_FALSE(UpdateMessage::Decode(bytes).has_value());
  EXPECT_FALSE(LoadProbeMessage::Decode(bytes).has_value());
  EXPECT_FALSE(LoadReportMessage::Decode(bytes).has_value());
  EXPECT_FALSE(TtlUpdateMessage::Decode(bytes).has_value());
  EXPECT_FALSE(DigestAnnounceMessage::Decode(bytes).has_value());
}

TEST(DecodeTest, ControlMessagesRejectTruncationAndPadding) {
  LoadReportMessage m;
  m.cluster = 9;
  auto bytes = m.Encode();
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(LoadReportMessage::Decode(truncated).has_value());
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(LoadReportMessage::Decode(padded).has_value());

  TtlUpdateMessage t;
  auto tb = t.Encode();
  tb.pop_back();
  EXPECT_FALSE(TtlUpdateMessage::Decode(tb).has_value());

  LoadProbeMessage p;
  auto pb = p.Encode();
  pb.pop_back();
  EXPECT_FALSE(LoadProbeMessage::Decode(pb).has_value());
}

TEST(DecodeTest, RejectsTruncatedBuffers) {
  ResponseMessage m;
  m.addresses.resize(2);
  m.results.resize(2);
  auto bytes = m.Encode();
  bytes.pop_back();
  EXPECT_FALSE(ResponseMessage::Decode(bytes).has_value());
  bytes.resize(10);
  EXPECT_FALSE(ResponseMessage::Decode(bytes).has_value());
}

TEST(GuidTest, DeterministicAndDistinct) {
  EXPECT_EQ(GuidFromSeed(1), GuidFromSeed(1));
  EXPECT_NE(GuidFromSeed(1), GuidFromSeed(2));
}

// --- Consistency-protocol messages (DESIGN.md §14) ------------------
//
// Beyond round-trip + CostTable agreement, every consistency message
// carries a trailing payload checksum, so each one gets the strongest
// decode-rejection treatment in the suite: truncation at EVERY byte
// boundary and a single bit flip at EVERY position must both fail.

template <typename M>
void ExpectRejectsEveryTruncationAndBitFlip(const M& m) {
  const auto bytes = m.Encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(M::Decode(cut).has_value()) << "truncated to " << len;
  }
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(M::Decode(padded).has_value()) << "one padding byte";
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[i] = static_cast<std::uint8_t>(flipped[i] ^ (1u << bit));
      EXPECT_FALSE(M::Decode(flipped).has_value())
          << "bit " << bit << " of byte " << i;
    }
  }
}

TEST(InvalidateMessageTest, RoundTripAndFixedSize) {
  const CostTable costs;
  InvalidateMessage m;
  m.header.guid = GuidFromSeed(31);
  m.client = 9001;
  m.query_class = 17;
  EXPECT_EQ(static_cast<double>(m.WireSizeBytes()), costs.InvalidateBytes());
  EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  const auto decoded = InvalidateMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->client, 9001u);
  EXPECT_EQ(decoded->query_class, 17u);
}

TEST(InvalidateMessageTest, RejectsEveryTruncationAndBitFlip) {
  InvalidateMessage m;
  m.header.guid = GuidFromSeed(37);
  m.client = 12345;
  m.query_class = 3;
  ExpectRejectsEveryTruncationAndBitFlip(m);
}

TEST(RefreshPollMessageTest, RoundTripAndFixedSize) {
  const CostTable costs;
  RefreshPollMessage m;
  m.header.guid = GuidFromSeed(41);
  m.cluster = 321;
  m.poll_seq = 999;
  EXPECT_EQ(static_cast<double>(m.WireSizeBytes()), costs.RefreshPollBytes());
  EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  const auto decoded = RefreshPollMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->cluster, 321u);
  EXPECT_EQ(decoded->poll_seq, 999u);
}

TEST(RefreshPollMessageTest, RejectsEveryTruncationAndBitFlip) {
  RefreshPollMessage m;
  m.header.guid = GuidFromSeed(43);
  m.cluster = 7;
  m.poll_seq = 2;
  ExpectRejectsEveryTruncationAndBitFlip(m);
}

TEST(RefreshReplyMessageTest, RoundTripAndFixedSize) {
  const CostTable costs;
  RefreshReplyMessage m;
  m.header.guid = GuidFromSeed(47);
  m.client = 65000;
  m.poll_seq = 12;
  m.changed_records = 5;
  EXPECT_EQ(static_cast<double>(m.WireSizeBytes()), costs.RefreshReplyBytes());
  EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
  const auto decoded = RefreshReplyMessage::Decode(m.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->client, 65000u);
  EXPECT_EQ(decoded->poll_seq, 12u);
  EXPECT_EQ(decoded->changed_records, 5u);
}

TEST(RefreshReplyMessageTest, RejectsEveryTruncationAndBitFlip) {
  RefreshReplyMessage m;
  m.header.guid = GuidFromSeed(53);
  m.client = 1;
  m.changed_records = 8;
  ExpectRejectsEveryTruncationAndBitFlip(m);
}

TEST(ReplicaPushMessageTest, RoundTripAndCostTableSize) {
  const CostTable costs;
  for (const std::size_t n : {0u, 1u, 4u}) {
    ReplicaPushMessage m;
    m.header.guid = GuidFromSeed(59);
    m.origin_cluster = 88;
    m.query_class = 6;
    for (std::size_t i = 0; i < n; ++i) {
      JoinMessage::Metadata rec;
      rec.file_id = 1000 + i;
      rec.size_kb = static_cast<std::uint32_t>(64 * (i + 1));
      rec.title = "replica record";
      m.records.push_back(rec);
    }
    EXPECT_EQ(static_cast<double>(m.WireSizeBytes()),
              costs.ReplicaPushBytes(static_cast<double>(n)))
        << "records=" << n;
    EXPECT_EQ(m.Encode().size() + kTransportOverheadBytes, m.WireSizeBytes());
    const auto decoded = ReplicaPushMessage::Decode(m.Encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->origin_cluster, 88u);
    EXPECT_EQ(decoded->query_class, 6u);
    ASSERT_EQ(decoded->records.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(decoded->records[i].file_id, 1000 + i);
      EXPECT_EQ(decoded->records[i].title, "replica record");
    }
  }
}

TEST(ReplicaPushMessageTest, RejectsEveryTruncationAndBitFlip) {
  ReplicaPushMessage m;
  m.header.guid = GuidFromSeed(61);
  m.origin_cluster = 2;
  m.query_class = 4;
  JoinMessage::Metadata rec;
  rec.file_id = 99;
  rec.size_kb = 7;
  rec.title = "r";
  m.records.push_back(rec);
  ExpectRejectsEveryTruncationAndBitFlip(m);
}

TEST(ConsistencyMessagesTest, RejectWrongType) {
  InvalidateMessage inv;
  const auto bytes = inv.Encode();
  EXPECT_FALSE(RefreshPollMessage::Decode(bytes).has_value());
  EXPECT_FALSE(RefreshReplyMessage::Decode(bytes).has_value());
  EXPECT_FALSE(ReplicaPushMessage::Decode(bytes).has_value());
  EXPECT_FALSE(QueryMessage::Decode(bytes).has_value());
  RefreshPollMessage poll;
  EXPECT_FALSE(InvalidateMessage::Decode(poll.Encode()).has_value());
}

}  // namespace
}  // namespace sppnet
