#include "sppnet/topology/bfs.h"

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/topology/plod.h"

namespace sppnet {
namespace {

/// Path graph 0-1-2-...-(n-1).
Topology MakePath(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return Topology::FromGraph(builder.Build());
}

/// Cycle graph.
Topology MakeCycle(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.AddEdge(u, static_cast<NodeId>((u + 1) % n));
  }
  return Topology::FromGraph(builder.Build());
}

/// Star: node 0 is the hub.
Topology MakeStar(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId u = 1; u < n; ++u) builder.AddEdge(0, u);
  return Topology::FromGraph(builder.Build());
}

TEST(FloodBfsTest, PathDepthsAndReach) {
  const Topology path = MakePath(6);
  FloodScratch scratch;
  const FloodStats stats = FloodBfs(path, 0, 3, scratch);
  EXPECT_EQ(stats.reached, 4u);  // Nodes 0..3 within 3 hops.
  EXPECT_EQ(scratch.Depth(0), 0);
  EXPECT_EQ(scratch.Depth(3), 3);
  EXPECT_FALSE(scratch.Visited(4));
  // A path has no cycles: no duplicates.
  EXPECT_EQ(stats.duplicates, 0.0);
  // Transmissions: node 0 sends 1, node 1 sends 1, node 2 sends 1
  // (node 3 is at depth == TTL and does not forward).
  EXPECT_EQ(stats.transmissions, 3.0);
  EXPECT_EQ(stats.depth_sum, 0.0 + 1 + 2 + 3);
}

TEST(FloodBfsTest, ZeroTtlReachesOnlySource) {
  const Topology path = MakePath(4);
  FloodScratch scratch;
  const FloodStats stats = FloodBfs(path, 1, 0, scratch);
  EXPECT_EQ(stats.reached, 1u);
  EXPECT_EQ(stats.transmissions, 0.0);
}

TEST(FloodBfsTest, CycleProducesDuplicates) {
  // In a cycle of 5 with TTL 5, the two flood fronts meet: redundant
  // messages are received and dropped.
  const Topology cycle = MakeCycle(5);
  FloodScratch scratch;
  const FloodStats stats = FloodBfs(cycle, 0, 5, scratch);
  EXPECT_EQ(stats.reached, 5u);
  EXPECT_GT(stats.duplicates, 0.0);
  // Conservation: every transmission is either a fresh visit or a dup.
  EXPECT_DOUBLE_EQ(stats.transmissions,
                   static_cast<double>(stats.reached - 1) + stats.duplicates);
}

TEST(FloodBfsTest, StarHubForwardsToAll) {
  const Topology star = MakeStar(8);
  FloodScratch scratch;
  const FloodStats stats = FloodBfs(star, 0, 1, scratch);
  EXPECT_EQ(stats.reached, 8u);
  EXPECT_EQ(stats.transmissions, 7.0);
  EXPECT_EQ(scratch.Transmissions(0), 7u);
  for (NodeId u = 1; u < 8; ++u) {
    EXPECT_EQ(scratch.Receptions(u), 1u);
    EXPECT_EQ(scratch.Parent(u), 0u);
  }
}

TEST(FloodBfsTest, LeafDoesNotSendBackOnArrivalEdge) {
  // Star flood from a leaf with TTL 2: leaf -> hub -> other leaves.
  // The hub must not send the query back to the originating leaf.
  const Topology star = MakeStar(5);
  FloodScratch scratch;
  const FloodStats stats = FloodBfs(star, 1, 2, scratch);
  EXPECT_EQ(stats.reached, 5u);
  EXPECT_EQ(scratch.Receptions(1), 0u);  // Source receives nothing back.
  EXPECT_EQ(scratch.Transmissions(0), 3u);  // Hub skips the arrival edge.
  EXPECT_EQ(stats.duplicates, 0.0);
}

TEST(FloodBfsTest, CompleteTopologyTtlOne) {
  const Topology full = Topology::Complete(10);
  FloodScratch scratch;
  const FloodStats stats = FloodBfs(full, 3, 1, scratch);
  EXPECT_EQ(stats.reached, 10u);
  EXPECT_EQ(stats.transmissions, 9.0);
  EXPECT_EQ(stats.duplicates, 0.0);
  for (NodeId u = 0; u < 10; ++u) {
    if (u == 3) continue;
    EXPECT_EQ(scratch.Depth(u), 1);
    EXPECT_EQ(scratch.Parent(u), 3u);
  }
}

TEST(FloodBfsTest, CompleteTopologyTtlTwoAddsDuplicates) {
  const Topology full = Topology::Complete(10);
  FloodScratch scratch;
  const FloodStats stats = FloodBfs(full, 0, 2, scratch);
  EXPECT_EQ(stats.reached, 10u);
  // Every depth-1 node sends n-2 = 8 redundant messages.
  EXPECT_DOUBLE_EQ(stats.duplicates, 9.0 * 8.0);
  EXPECT_DOUBLE_EQ(stats.transmissions, 9.0 + 9.0 * 8.0);
  EXPECT_EQ(scratch.Receptions(0), 0u);  // Source gets nothing back.
  EXPECT_EQ(scratch.Receptions(5), 9u);  // 1 fresh + 8 duplicates.
}

TEST(FloodBfsTest, ScratchReuseAcrossSources) {
  const Topology path = MakePath(10);
  FloodScratch scratch;
  FloodBfs(path, 0, 9, scratch);
  const FloodStats second = FloodBfs(path, 9, 2, scratch);
  EXPECT_EQ(second.reached, 3u);
  EXPECT_TRUE(scratch.Visited(9));
  EXPECT_TRUE(scratch.Visited(7));
  EXPECT_FALSE(scratch.Visited(0));  // Stale state must not leak.
}

// Invariant sweep on random power-law graphs: conservation between
// transmissions, fresh visits and duplicates; parent depths consistent.
class FloodInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(FloodInvariantTest, ConservationAndTreeConsistency) {
  const int ttl = GetParam();
  Rng rng(101);
  PlodParams params;
  params.target_avg_degree = 4.0;
  const Graph g = GeneratePlod(400, params, rng);
  const Topology topo = Topology::FromGraph(g);
  FloodScratch scratch;
  for (NodeId source = 0; source < 20; ++source) {
    const FloodStats stats = FloodBfs(topo, source, ttl, scratch);
    EXPECT_DOUBLE_EQ(
        stats.transmissions,
        static_cast<double>(stats.reached - 1) + stats.duplicates);
    double recomputed_depth_sum = 0.0;
    double total_receptions = 0.0;
    for (const NodeId u : scratch.order()) {
      recomputed_depth_sum += scratch.Depth(u);
      total_receptions += scratch.Receptions(u);
      if (u != source) {
        EXPECT_EQ(scratch.Depth(u), scratch.Depth(scratch.Parent(u)) + 1);
        EXPECT_LE(scratch.Depth(u), ttl);
      }
    }
    EXPECT_DOUBLE_EQ(recomputed_depth_sum, stats.depth_sum);
    // Every transmission is received by exactly one node.
    EXPECT_DOUBLE_EQ(total_receptions, stats.transmissions);
  }
}

INSTANTIATE_TEST_SUITE_P(Ttls, FloodInvariantTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(EplForReachTest, PathGraph) {
  const Topology path = MakePath(10);
  FloodScratch scratch;
  // Nearest 3 nodes from node 0 sit at depths 1, 2, 3.
  const auto epl = EplForReach(path, 0, 3, scratch);
  ASSERT_TRUE(epl.has_value());
  EXPECT_DOUBLE_EQ(*epl, 2.0);
}

TEST(EplForReachTest, UnreachableReach) {
  const Topology path = MakePath(5);
  FloodScratch scratch;
  EXPECT_FALSE(EplForReach(path, 0, 5, scratch).has_value());
  EXPECT_TRUE(EplForReach(path, 0, 4, scratch).has_value());
}

TEST(EplForReachTest, CompleteIsOneHop) {
  const Topology full = Topology::Complete(50);
  FloodScratch scratch;
  const auto epl = EplForReach(full, 0, 20, scratch);
  ASSERT_TRUE(epl.has_value());
  EXPECT_DOUBLE_EQ(*epl, 1.0);
}

TEST(MinTtlForFullReachTest, PathEccentricity) {
  const Topology path = MakePath(7);
  FloodScratch scratch;
  EXPECT_EQ(MinTtlForFullReach(path, 0, scratch), 6);
  EXPECT_EQ(MinTtlForFullReach(path, 3, scratch), 3);
}

TEST(MinTtlForFullReachTest, DisconnectedReturnsNullopt) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  const Topology topo = Topology::FromGraph(builder.Build());
  FloodScratch scratch;
  EXPECT_FALSE(MinTtlForFullReach(topo, 0, scratch).has_value());
}

}  // namespace
}  // namespace sppnet
