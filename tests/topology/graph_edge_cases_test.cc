// Edge cases of Graph/GraphBuilder that the generator-driven tests never
// hit: duplicate edges inserted across batches and in both orientations,
// a maximum-degree hub, out-of-range node ids near 2^32, and HasEdge
// queries against absent/self/out-of-range endpoints.

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "sppnet/topology/graph.h"

namespace sppnet {
namespace {

TEST(GraphBuilderEdgeCasesTest, DuplicateEdgesAcrossBatchesDeduplicate) {
  GraphBuilder builder(6);
  // Batch 1.
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_TRUE(builder.AddEdge(1, 2));
  EXPECT_TRUE(builder.AddEdge(4, 5));
  // Batch 2 repeats batch 1's edges, some in the reverse orientation,
  // interleaved with new ones.
  EXPECT_TRUE(builder.AddEdge(1, 0));
  EXPECT_TRUE(builder.AddEdge(2, 3));
  EXPECT_TRUE(builder.AddEdge(2, 1));
  EXPECT_TRUE(builder.AddEdge(5, 4));
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_EQ(builder.num_pending_edges(), 8u);  // Dedup happens at Build().

  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.Degree(3), 1u);
  EXPECT_EQ(g.Degree(4), 1u);
  EXPECT_EQ(g.Degree(5), 1u);
  // HasEdge is orientation-agnostic.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(5, 4));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(3, 4));
  // Neighbor spans are sorted and duplicate-free.
  for (NodeId u = 0; u < 6; ++u) {
    const auto nbrs = g.Neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
  }
}

TEST(GraphBuilderEdgeCasesTest, MaxDegreeHub) {
  constexpr std::size_t kNodes = 300;
  GraphBuilder builder(kNodes);
  // Every leaf connects to hub 0, half of them inserted twice in
  // opposite orientations.
  for (NodeId v = 1; v < kNodes; ++v) {
    EXPECT_TRUE(builder.AddEdge(0, v));
    if (v % 2 == 0) {
      EXPECT_TRUE(builder.AddEdge(v, 0));
    }
  }
  const Graph g = builder.Build();
  EXPECT_EQ(g.Degree(0), kNodes - 1);  // Maximum possible degree.
  EXPECT_EQ(g.num_edges(), kNodes - 1);
  for (NodeId v = 1; v < kNodes; ++v) {
    EXPECT_TRUE(g.HasEdge(0, v));
    EXPECT_TRUE(g.HasEdge(v, 0));
    EXPECT_EQ(g.Degree(v), 1u);
  }
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_NEAR(g.AverageDegree(),
              2.0 * static_cast<double>(kNodes - 1) / kNodes, 1e-12);
}

TEST(GraphBuilderEdgeCasesTest, NodeIdNearUint32MaxRejected) {
  constexpr NodeId kHuge = std::numeric_limits<NodeId>::max();  // 2^32 - 1
  GraphBuilder builder(8);
  EXPECT_DEATH(builder.AddEdge(0, kHuge), "num_nodes");
  EXPECT_DEATH(builder.AddEdge(kHuge, 0), "num_nodes");
  EXPECT_DEATH(builder.AddEdge(kHuge - 1, kHuge), "num_nodes");
  // The first in-range id past the boundary is also rejected.
  EXPECT_DEATH(builder.AddEdge(0, 8), "num_nodes");
  // In-range ids still work afterwards.
  EXPECT_TRUE(builder.AddEdge(0, 7));
  const Graph g = builder.Build();
  EXPECT_TRUE(g.HasEdge(0, 7));
}

TEST(GraphBuilderEdgeCasesTest, SelfLoopsIgnored) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(1, 1));
  EXPECT_EQ(builder.num_pending_edges(), 0u);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderEdgeCasesTest, BuilderIsEmptyAfterBuild) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const Graph first = builder.Build();
  EXPECT_EQ(first.num_edges(), 2u);
  EXPECT_EQ(builder.num_pending_edges(), 0u);
  const Graph second = builder.Build();
  EXPECT_EQ(second.num_nodes(), 4u);
  EXPECT_EQ(second.num_edges(), 0u);
  EXPECT_EQ(second.Degree(0), 0u);
}

TEST(GraphEdgeCasesTest, HasEdgeOnIsolatedAndEmptyGraphs) {
  const Graph empty(0);
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);

  const Graph isolated(5);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(isolated.Degree(u), 0u);
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_FALSE(isolated.HasEdge(u, v));
    }
  }
  EXPECT_EQ(isolated.AverageDegree(), 0.0);
}

TEST(GraphEdgeCasesTest, HasEdgeAgainstAbsentHighTarget) {
  // The target id is only searched for inside u's neighbor span, so a
  // query against an id beyond num_nodes is well-defined and false.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_FALSE(g.HasEdge(0, std::numeric_limits<NodeId>::max()));
  EXPECT_FALSE(g.HasEdge(0, 1000));
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(GraphEdgeCasesTest, WordHelpers) {
  EXPECT_EQ(kBfsWordBits, 64u);
  EXPECT_EQ(WordsForBits(0), 0u);
  EXPECT_EQ(WordsForBits(1), 1u);
  EXPECT_EQ(WordsForBits(64), 1u);
  EXPECT_EQ(WordsForBits(65), 2u);
  EXPECT_EQ(WordsForBits(1u << 20), (1u << 20) / 64);
}

TEST(GraphEdgeCasesTest, RawCsrSpansMatchNeighborView) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 4);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  const auto offsets = g.offsets();
  const auto adjacency = g.adjacency();
  ASSERT_EQ(offsets.size(), g.num_nodes() + 1);
  ASSERT_EQ(adjacency.size(), 2 * g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.Neighbors(u);
    ASSERT_EQ(nbrs.size(), offsets[u + 1] - offsets[u]);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(adjacency[offsets[u] + i], nbrs[i]);
    }
  }
}

}  // namespace
}  // namespace sppnet
