#include "sppnet/topology/plod.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"

namespace sppnet {
namespace {

TEST(PlodTest, DeterministicForSameSeed) {
  PlodParams params;
  Rng a(1), b(1);
  const Graph ga = GeneratePlod(200, params, a);
  const Graph gb = GeneratePlod(200, params, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (NodeId u = 0; u < 200; ++u) {
    ASSERT_EQ(ga.Degree(u), gb.Degree(u));
  }
}

TEST(PlodTest, ConnectedWhenRequested) {
  PlodParams params;
  params.ensure_connected = true;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const Graph g = GeneratePlod(500, params, rng);
    EXPECT_EQ(CountComponents(g), 1u) << "seed " << seed;
  }
}

TEST(PlodTest, NoIsolatedNodesAfterRepair) {
  PlodParams params;
  Rng rng(3);
  const Graph g = GeneratePlod(1000, params, rng);
  for (NodeId u = 0; u < 1000; ++u) {
    EXPECT_GE(g.Degree(u), 1u) << "node " << u;
  }
}

TEST(PlodTest, DegreeCapRespected) {
  PlodParams params;
  params.max_degree = 6;
  params.ensure_connected = false;  // Repair edges may exceed the cap.
  Rng rng(5);
  const Graph g = GeneratePlod(2000, params, rng);
  for (NodeId u = 0; u < 2000; ++u) {
    EXPECT_LE(g.Degree(u), 6u);
  }
}

TEST(PlodTest, DegreeDistributionIsSkewed) {
  PlodParams params;
  params.target_avg_degree = 3.1;
  params.max_degree = 32;
  Rng rng(7);
  const Graph g = GeneratePlod(5000, params, rng);
  // A power law should produce both leaves and hubs well above the mean.
  std::size_t leaves = 0;
  std::size_t hubs = 0;
  for (NodeId u = 0; u < 5000; ++u) {
    if (g.Degree(u) <= 1) ++leaves;
    if (g.Degree(u) >= 10) ++hubs;
  }
  EXPECT_GT(leaves, 500u);
  EXPECT_GT(hubs, 20u);
}

// Property sweep: the achieved mean degree tracks the target across
// targets and sizes.
class PlodMeanDegreeTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(PlodMeanDegreeTest, MeanDegreeNearTarget) {
  const auto [n, target] = GetParam();
  PlodParams params;
  params.target_avg_degree = target;
  params.max_degree =
      static_cast<std::uint32_t>(std::max(32.0, 6.0 * target));
  Rng rng(11);
  const Graph g = GeneratePlod(n, params, rng);
  // Stub matching drops collisions, so allow 15% slack.
  EXPECT_NEAR(g.AverageDegree(), target, 0.15 * target)
      << "n=" << n << " target=" << target;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PlodMeanDegreeTest,
    ::testing::Values(std::make_tuple(std::size_t{500}, 3.1),
                      std::make_tuple(std::size_t{2000}, 3.1),
                      std::make_tuple(std::size_t{2000}, 10.0),
                      std::make_tuple(std::size_t{1000}, 20.0),
                      std::make_tuple(std::size_t{500}, 50.0)));

TEST(CountComponentsTest, DisconnectedGraph) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  // Components: {0,1}, {2,3}, {4}, {5}.
  EXPECT_EQ(CountComponents(g), 4u);
}

}  // namespace
}  // namespace sppnet
