#include "sppnet/topology/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sppnet/topology/topology.h"

namespace sppnet {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder(5);
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.Degree(u), 0u);
}

TEST(GraphBuilderTest, SelfLoopsRejected) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(1, 1));
  EXPECT_TRUE(builder.AddEdge(0, 1));
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, DuplicateEdgesDeduplicated) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);  // Same edge, reversed.
  builder.AddEdge(0, 1);  // Same edge again.
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphTest, NeighborsAreSortedAndSymmetric) {
  GraphBuilder builder(6);
  builder.AddEdge(3, 1);
  builder.AddEdge(3, 5);
  builder.AddEdge(3, 0);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  const auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  for (const NodeId v : nbrs) {
    EXPECT_TRUE(g.HasEdge(v, 3)) << "edge symmetry broken at " << v;
  }
}

TEST(GraphTest, HasEdge) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(GraphTest, AverageDegree) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build();
  // 2 edges over 4 nodes: mean degree = 2*2/4 = 1.
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(TopologyTest, CompleteDegrees) {
  const Topology t = Topology::Complete(10);
  EXPECT_TRUE(t.is_complete());
  EXPECT_EQ(t.num_nodes(), 10u);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(t.Degree(u), 9u);
  EXPECT_DOUBLE_EQ(t.AverageDegree(), 9.0);
}

TEST(TopologyTest, CompleteSingleton) {
  const Topology t = Topology::Complete(1);
  EXPECT_EQ(t.Degree(0), 0u);
  EXPECT_DOUBLE_EQ(t.AverageDegree(), 0.0);
}

TEST(TopologyTest, SparseWrapsGraph) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Topology t = Topology::FromGraph(builder.Build());
  EXPECT_FALSE(t.is_complete());
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.Degree(0), 1u);
  EXPECT_EQ(t.Degree(2), 0u);
}

TEST(TopologyTest, DefaultIsEmpty) {
  const Topology t;
  EXPECT_EQ(t.num_nodes(), 0u);
}

}  // namespace
}  // namespace sppnet
