#include "sppnet/topology/generators.h"

#include <gtest/gtest.h>

#include "sppnet/topology/metrics.h"
#include "sppnet/topology/plod.h"

namespace sppnet {
namespace {

TEST(RandomRegularTest, DegreesAreNearlyUniform) {
  Rng rng(1);
  const Graph g = GenerateRandomRegular(500, 6, rng);
  std::size_t at_target = 0;
  for (NodeId u = 0; u < 500; ++u) {
    EXPECT_LE(g.Degree(u), 6u);
    if (g.Degree(u) == 6) ++at_target;
  }
  // Stub matching loses a few stubs; nearly all nodes hit the target.
  EXPECT_GT(at_target, 450u);
  EXPECT_NEAR(g.AverageDegree(), 6.0, 0.2);
}

TEST(RandomRegularTest, NoHubs) {
  Rng rng(2);
  const Graph g = GenerateRandomRegular(1000, 4, rng);
  for (NodeId u = 0; u < 1000; ++u) {
    EXPECT_LE(g.Degree(u), 4u);
  }
}

TEST(RandomRegularTest, UsuallyConnectedAtModerateDegree) {
  // A random 6-regular graph on 500 nodes is connected w.h.p.
  Rng rng(3);
  const Graph g = GenerateRandomRegular(500, 6, rng);
  EXPECT_EQ(CountComponents(g), 1u);
}

TEST(RandomRegularTest, Deterministic) {
  Rng a(7), b(7);
  const Graph ga = GenerateRandomRegular(300, 5, a);
  const Graph gb = GenerateRandomRegular(300, 5, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (NodeId u = 0; u < 300; ++u) EXPECT_EQ(ga.Degree(u), gb.Degree(u));
}

TEST(SmallWorldTest, LatticeWhenBetaZero) {
  Rng rng(4);
  const Graph g = GenerateSmallWorld(100, 4, 0.0, rng);
  // Pure ring lattice: every node has exactly `degree` neighbors, and
  // they are the nearest ring neighbors.
  for (NodeId u = 0; u < 100; ++u) {
    ASSERT_EQ(g.Degree(u), 4u);
    EXPECT_TRUE(g.HasEdge(u, (u + 1) % 100));
    EXPECT_TRUE(g.HasEdge(u, (u + 2) % 100));
  }
  EXPECT_EQ(CountComponents(g), 1u);
}

TEST(SmallWorldTest, RewiringShortensPaths) {
  // The defining small-world effect: a little rewiring collapses the
  // lattice's long paths.
  Rng a(5), b(5);
  const Topology lattice =
      Topology::FromGraph(GenerateSmallWorld(600, 6, 0.0, a));
  const Topology rewired =
      Topology::FromGraph(GenerateSmallWorld(600, 6, 0.2, b));
  Rng sample_a(9), sample_b(9);
  const auto epl_lattice = MeasureEplForReach(lattice, 300, 50, sample_a);
  const auto epl_rewired = MeasureEplForReach(rewired, 300, 50, sample_b);
  ASSERT_TRUE(epl_lattice.has_value());
  ASSERT_TRUE(epl_rewired.has_value());
  EXPECT_LT(*epl_rewired, 0.5 * *epl_lattice);
}

TEST(SmallWorldTest, MeanDegreePreservedUnderRewiring) {
  Rng rng(6);
  const Graph g = GenerateSmallWorld(400, 6, 0.5, rng);
  EXPECT_NEAR(g.AverageDegree(), 6.0, 0.3);
}

TEST(SmallWorldTest, FullRewirePlausiblyRandom) {
  Rng rng(8);
  const Graph g = GenerateSmallWorld(500, 4, 1.0, rng);
  // Degrees now vary (not all exactly 4) but the mean holds.
  EXPECT_NEAR(g.AverageDegree(), 4.0, 0.3);
  bool varies = false;
  for (NodeId u = 1; u < 500; ++u) {
    if (g.Degree(u) != g.Degree(0)) varies = true;
  }
  EXPECT_TRUE(varies);
}

}  // namespace
}  // namespace sppnet
