// Differential property test for the batched BFS kernel: on every graph
// family the evaluator meets (seeded PLOD, complete, degenerate), the
// bit-parallel kernel must produce bit-identical per-level output to the
// scalar reference kernel, and both must agree exactly with the
// single-source flood depths of FloodBfs — including batch-remainder
// sizes (N % 64 != 0), duplicate sources, and scratch reuse.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/topology/bfs.h"
#include "sppnet/topology/plod.h"

namespace sppnet {
namespace {

Graph MakePath(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return builder.Build();
}

Graph MakeComplete(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph MakeStar(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId u = 1; u < n; ++u) builder.AddEdge(0, u);
  return builder.Build();
}

/// Two disjoint paths plus trailing isolated nodes.
Graph MakeDisconnected(std::size_t n) {
  GraphBuilder builder(n);
  const std::size_t half = n / 2;
  for (NodeId u = 0; u + 1 < half; ++u) builder.AddEdge(u, u + 1);
  for (NodeId u = static_cast<NodeId>(half);
       u + 2 < n; ++u) {
    builder.AddEdge(u, u + 1);
  }
  return builder.Build();
}

Graph MakeSingleEdge() {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  return builder.Build();
}

Graph MakePlod(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  PlodParams params;
  params.target_avg_degree = 3.1;
  return GeneratePlod(n, params, rng);
}

/// Runs both kernels on the same batch and requires bit-identical levels.
void ExpectKernelsIdentical(const Graph& graph,
                            std::span<const NodeId> sources, int max_depth,
                            BatchedBfs& a, BatchedBfs& b) {
  a.Run(graph, sources, max_depth, BatchedBfs::Kernel::kBitParallel);
  b.Run(graph, sources, max_depth, BatchedBfs::Kernel::kScalarReference);
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (int d = 0; d < a.num_levels(); ++d) {
    const auto la = a.Level(d);
    const auto lb = b.Level(d);
    ASSERT_EQ(la.size(), lb.size()) << "level " << d;
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i].node, lb[i].node) << "level " << d << " entry " << i;
      ASSERT_EQ(la[i].word, lb[i].word) << "level " << d << " entry " << i;
    }
  }
}

/// Sweeps every source of `graph` in natural 64-wide batches (the last
/// one a remainder unless n % 64 == 0) and checks, for every source,
/// that both kernels agree with each other and with FloodBfs depths.
void ExpectMatchesScalarFlood(Graph graph, int ttl) {
  const std::size_t n = graph.num_nodes();
  BatchedBfs bit_parallel;
  BatchedBfs reference;
  const Topology topo = Topology::FromGraph(std::move(graph));
  const Graph& g = topo.graph();
  FloodScratch scratch;
  for (std::size_t begin = 0; begin < n; begin += kBfsWordBits) {
    std::vector<NodeId> sources;
    for (std::size_t s = begin; s < std::min(n, begin + kBfsWordBits); ++s) {
      sources.push_back(static_cast<NodeId>(s));
    }
    ExpectKernelsIdentical(g, sources, ttl, bit_parallel, reference);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      FloodBfs(topo, sources[i], ttl, scratch);
      for (NodeId u = 0; u < n; ++u) {
        const int expected = scratch.Visited(u) ? scratch.Depth(u) : -1;
        ASSERT_EQ(bit_parallel.Depth(i, u), expected)
            << "source " << sources[i] << " node " << u;
      }
    }
  }
}

TEST(BatchedBfsTest, PlodMatchesScalarFloodEverySource) {
  ExpectMatchesScalarFlood(MakePlod(300, 12345), 7);
}

TEST(BatchedBfsTest, PlodRemainderBatch) {
  // 130 % 64 = 2: exercises a 2-source remainder batch.
  ExpectMatchesScalarFlood(MakePlod(130, 999), 4);
}

TEST(BatchedBfsTest, PlodShortTtl) {
  ExpectMatchesScalarFlood(MakePlod(200, 77), 1);
}

TEST(BatchedBfsTest, CompleteGraph) {
  ExpectMatchesScalarFlood(MakeComplete(70), 3);
}

TEST(BatchedBfsTest, PathGraph) { ExpectMatchesScalarFlood(MakePath(90), 5); }

TEST(BatchedBfsTest, StarGraph) { ExpectMatchesScalarFlood(MakeStar(67), 7); }

TEST(BatchedBfsTest, SingleEdge) {
  ExpectMatchesScalarFlood(MakeSingleEdge(), 7);
}

TEST(BatchedBfsTest, DisconnectedWithIsolatedNodes) {
  ExpectMatchesScalarFlood(MakeDisconnected(75), 6);
}

TEST(BatchedBfsTest, IsolatedOnlyGraph) {
  ExpectMatchesScalarFlood(Graph(10), 7);
}

TEST(BatchedBfsTest, ZeroTtlIsLevelZeroOnly) {
  const Graph g = MakePlod(100, 5);
  BatchedBfs bfs;
  const std::vector<NodeId> sources = {0, 1, 2, 3};
  bfs.Run(g, sources, 0);
  ASSERT_EQ(bfs.num_levels(), 1);
  EXPECT_EQ(bfs.Level(0).size(), 4u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(bfs.Depth(i, sources[i]), 0);
    EXPECT_EQ(bfs.Depth(i, 50), -1);
  }
}

TEST(BatchedBfsTest, DuplicateSourcesFloodIndependently) {
  const Graph g = MakePath(10);
  BatchedBfs bit_parallel;
  BatchedBfs reference;
  const std::vector<NodeId> sources = {3, 3, 7};
  ExpectKernelsIdentical(g, sources, 4, bit_parallel, reference);
  ASSERT_EQ(bit_parallel.Level(0).size(), 2u);  // Two distinct nodes.
  EXPECT_EQ(bit_parallel.Level(0)[0].node, 3u);
  EXPECT_EQ(bit_parallel.Level(0)[0].word, 0b011u);  // Bits 0 and 1.
  EXPECT_EQ(bit_parallel.Depth(0, 0), 3);
  EXPECT_EQ(bit_parallel.Depth(1, 0), 3);
  EXPECT_EQ(bit_parallel.Depth(2, 9), 2);
}

TEST(BatchedBfsTest, ScratchReuseAcrossGraphSizes) {
  // The same BatchedBfs instances, reused across runs on different
  // graphs (including a size change and a re-run on the first graph),
  // must not leak state between runs.
  const Graph a = MakePlod(150, 42);
  const Graph b = MakeComplete(40);
  BatchedBfs bit_parallel;
  BatchedBfs reference;
  const std::vector<NodeId> batch_a = {0, 5, 9, 149, 64};
  const std::vector<NodeId> batch_b = {1, 2, 3};
  for (int round = 0; round < 3; ++round) {
    ExpectKernelsIdentical(a, batch_a, 6, bit_parallel, reference);
    ExpectKernelsIdentical(b, batch_b, 2, bit_parallel, reference);
  }
}

}  // namespace
}  // namespace sppnet
