#include "sppnet/topology/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sppnet/topology/plod.h"

namespace sppnet {
namespace {

Topology MakePlod(std::size_t n, double avg_degree, std::uint64_t seed) {
  Rng rng(seed);
  PlodParams params;
  params.target_avg_degree = avg_degree;
  return Topology::FromGraph(GeneratePlod(n, params, rng));
}

TEST(MeasureReachTest, CompleteTopologyFullReach) {
  const Topology full = Topology::Complete(30);
  Rng rng(1);
  const ReachSummary summary = MeasureReach(full, 1, 10, rng);
  EXPECT_DOUBLE_EQ(summary.mean_reach, 30.0);
  EXPECT_DOUBLE_EQ(summary.mean_epl, 1.0);
  EXPECT_DOUBLE_EQ(summary.mean_duplicates, 0.0);
}

TEST(MeasureReachTest, ReachGrowsWithTtl) {
  const Topology topo = MakePlod(2000, 3.1, 42);
  Rng rng(2);
  double prev = 0.0;
  for (int ttl = 1; ttl <= 6; ++ttl) {
    Rng local(2);  // Same sources for comparability.
    const ReachSummary s = MeasureReach(topo, ttl, 50, local);
    EXPECT_GE(s.mean_reach, prev) << "ttl " << ttl;
    prev = s.mean_reach;
  }
}

TEST(MeasureReachTest, ConnectedGraphEventuallyFullReach) {
  const Topology topo = MakePlod(500, 4.0, 7);
  Rng rng(3);
  const ReachSummary s = MeasureReach(topo, 32, 20, rng);
  EXPECT_DOUBLE_EQ(s.mean_reach, 500.0);
}

TEST(MeasureEplForReachTest, GrowsWithReach) {
  const Topology topo = MakePlod(2000, 10.0, 11);
  Rng a(5), b(5);
  const auto epl_small = MeasureEplForReach(topo, 20, 50, a);
  const auto epl_large = MeasureEplForReach(topo, 1000, 50, b);
  ASSERT_TRUE(epl_small.has_value());
  ASSERT_TRUE(epl_large.has_value());
  EXPECT_LT(*epl_small, *epl_large);
}

TEST(MeasureEplForReachTest, ShrinksWithOutdegree) {
  // Rule #3: higher average outdegree reduces the EPL for a fixed reach.
  const Topology sparse = MakePlod(2000, 3.1, 13);
  const Topology dense = MakePlod(2000, 10.0, 13);
  Rng a(7), b(7);
  const auto epl_sparse = MeasureEplForReach(sparse, 500, 60, a);
  const auto epl_dense = MeasureEplForReach(dense, 500, 60, b);
  ASSERT_TRUE(epl_sparse.has_value());
  ASSERT_TRUE(epl_dense.has_value());
  EXPECT_GT(*epl_sparse, *epl_dense);
}

TEST(MeasureEplForReachTest, UnreachableReachIsNullopt) {
  const Topology topo = MakePlod(100, 3.1, 17);
  Rng rng(9);
  EXPECT_FALSE(MeasureEplForReach(topo, 100, 10, rng).has_value());
}

TEST(EplLogApproximationTest, MatchesClosedForm) {
  EXPECT_NEAR(EplLogApproximation(10.0, 1000.0), 3.0, 1e-12);
  EXPECT_NEAR(EplLogApproximation(20.0, 400.0), 2.0, 1e-12);
}

TEST(EplLogApproximationTest, IsLowerBoundOnMeasuredEpl) {
  // Appendix F: log_d(reach) is a lower bound in a graph because cycles
  // reduce the effective outdegree.
  const Topology topo = MakePlod(3000, 10.0, 19);
  Rng rng(11);
  const auto measured = MeasureEplForReach(topo, 500, 60, rng);
  ASSERT_TRUE(measured.has_value());
  const double bound = EplLogApproximation(topo.AverageDegree(), 500.0);
  EXPECT_GE(*measured, bound - 0.05);
}

TEST(MeasureMinTtlForFullReachTest, CompleteIsOne) {
  const Topology full = Topology::Complete(20);
  Rng rng(13);
  EXPECT_EQ(MeasureMinTtlForFullReach(full, 5, rng), 1);
}

TEST(MeasureMinTtlForFullReachTest, ConsistentWithReach) {
  const Topology topo = MakePlod(500, 6.0, 23);
  Rng a(15);
  const auto min_ttl = MeasureMinTtlForFullReach(topo, 30, a);
  ASSERT_TRUE(min_ttl.has_value());
  Rng b(15);
  const ReachSummary at_min = MeasureReach(topo, *min_ttl, 30, b);
  EXPECT_DOUBLE_EQ(at_min.mean_reach, 500.0);
}

}  // namespace
}  // namespace sppnet
