#include "sppnet/model/trials.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

class TrialsTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();
};

TEST_F(TrialsTest, CollectsRequestedNumberOfTrials) {
  Configuration c;
  c.graph_size = 300;
  c.cluster_size = 10;
  TrialOptions options;
  options.num_trials = 4;
  const ConfigurationReport report = RunTrials(c, inputs_, options);
  EXPECT_EQ(report.aggregate_in_bps.count(), 4u);
  EXPECT_EQ(report.results_per_query.count(), 4u);
  EXPECT_EQ(report.sp_connections.count(), 4u);
}

TEST_F(TrialsTest, DeterministicForSameSeed) {
  Configuration c;
  c.graph_size = 300;
  c.cluster_size = 10;
  TrialOptions options;
  options.num_trials = 3;
  options.seed = 99;
  const ConfigurationReport a = RunTrials(c, inputs_, options);
  const ConfigurationReport b = RunTrials(c, inputs_, options);
  EXPECT_DOUBLE_EQ(a.aggregate_in_bps.Mean(), b.aggregate_in_bps.Mean());
  EXPECT_DOUBLE_EQ(a.epl.Mean(), b.epl.Mean());
}

TEST_F(TrialsTest, DifferentSeedsVary) {
  Configuration c;
  c.graph_size = 300;
  c.cluster_size = 10;
  TrialOptions a_opt, b_opt;
  a_opt.num_trials = b_opt.num_trials = 2;
  a_opt.seed = 1;
  b_opt.seed = 2;
  const ConfigurationReport a = RunTrials(c, inputs_, a_opt);
  const ConfigurationReport b = RunTrials(c, inputs_, b_opt);
  EXPECT_NE(a.aggregate_in_bps.Mean(), b.aggregate_in_bps.Mean());
}

TEST_F(TrialsTest, ConfidenceIntervalsAvailable) {
  Configuration c;
  c.graph_size = 300;
  c.cluster_size = 10;
  TrialOptions options;
  options.num_trials = 5;
  const ConfigurationReport report = RunTrials(c, inputs_, options);
  EXPECT_GT(report.aggregate_in_bps.ConfidenceHalfWidth95(), 0.0);
  // The CI should be small relative to the mean for this stable metric.
  EXPECT_LT(report.aggregate_in_bps.ConfidenceHalfWidth95(),
            0.25 * report.aggregate_in_bps.Mean());
}

TEST_F(TrialsTest, OutdegreeHistogramsOnRequest) {
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 20;
  TrialOptions options;
  options.num_trials = 2;
  options.collect_outdegree_histograms = true;
  const ConfigurationReport report = RunTrials(c, inputs_, options);
  // Some outdegree bucket must hold samples, and bucket counts must sum
  // to the number of clusters times trials.
  std::size_t total = 0;
  for (int d = 0; d < report.results_by_outdegree.KeyUpperBound(); ++d) {
    total += report.results_by_outdegree.Group(d).count();
  }
  EXPECT_EQ(total, 20u * 2u);  // 400/20 clusters per trial, 2 trials.
}

TEST_F(TrialsTest, HistogramsSkippedByDefault) {
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 20;
  TrialOptions options;
  options.num_trials = 1;
  const ConfigurationReport report = RunTrials(c, inputs_, options);
  EXPECT_EQ(report.sp_out_bps_by_outdegree.KeyUpperBound(), 0);
}

TEST_F(TrialsTest, AllNodeLoadsFlattensPartnersAndClients) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  c.redundancy = true;
  Rng rng(5);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  const auto flat = AllNodeLoads(loads, LoadMetric::kOutBps);
  EXPECT_EQ(flat.size(), loads.partner_load.size() + loads.client_load.size());
  EXPECT_DOUBLE_EQ(flat[0], loads.partner_load[0].out_bps);
  const auto total = AllNodeLoads(loads, LoadMetric::kTotalBps);
  EXPECT_DOUBLE_EQ(total[0], loads.partner_load[0].TotalBps());
}

TEST_F(TrialsTest, AggregateBandwidthMeanCombinesInAndOut) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  TrialOptions options;
  options.num_trials = 2;
  const ConfigurationReport report = RunTrials(c, inputs_, options);
  EXPECT_DOUBLE_EQ(report.AggregateBandwidthMean(),
                   report.aggregate_in_bps.Mean() +
                       report.aggregate_out_bps.Mean());
}

}  // namespace
}  // namespace sppnet
