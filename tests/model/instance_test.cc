#include "sppnet/model/instance.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace sppnet {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();
};

TEST_F(InstanceTest, ClusterCountMatchesConfiguration) {
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  Rng rng(1);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  EXPECT_EQ(inst.NumClusters(), 100u);
  EXPECT_EQ(inst.TotalPartners(), 100u);
  EXPECT_EQ(inst.redundancy_k, 1);
}

TEST_F(InstanceTest, RedundantInstanceHasTwoPartnersPerCluster) {
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  c.redundancy = true;
  Rng rng(2);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  EXPECT_EQ(inst.redundancy_k, 2);
  EXPECT_EQ(inst.TotalPartners(), 2 * inst.NumClusters());
  // Mean clients per cluster should be ~8 (cluster size 10, k = 2).
  const double mean_clients = static_cast<double>(inst.TotalClients()) /
                              static_cast<double>(inst.NumClusters());
  EXPECT_NEAR(mean_clients, 8.0, 0.5);
}

TEST_F(InstanceTest, ClientCountsFollowNormalDistribution) {
  Configuration c;
  c.graph_size = 20000;
  c.cluster_size = 20;
  Rng rng(3);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  // Mean 19, stddev .2*19: nearly all clusters within [19 - 4*3.8, ...].
  double sum = 0.0;
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    sum += static_cast<double>(inst.NumClients(i));
  }
  const double mean = sum / static_cast<double>(inst.NumClusters());
  EXPECT_NEAR(mean, 19.0, 1.0);
  // There must be spread (not all clusters identical).
  bool varies = false;
  for (std::size_t i = 1; i < inst.NumClusters(); ++i) {
    if (inst.NumClients(i) != inst.NumClients(0)) varies = true;
  }
  EXPECT_TRUE(varies);
}

TEST_F(InstanceTest, PureNetworkDegeneratesToClusterSizeOne) {
  Configuration c;
  c.graph_size = 500;
  c.cluster_size = 1;
  Rng rng(4);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  EXPECT_EQ(inst.TotalClients(), 0u);
  EXPECT_EQ(inst.ClusterUsers(0), 1u);
}

TEST_F(InstanceTest, StronglyConnectedUsesCompleteTopology) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 1000;
  c.cluster_size = 10;
  Rng rng(5);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  EXPECT_TRUE(inst.topology.is_complete());
  EXPECT_EQ(inst.topology.Degree(0), 99u);
}

TEST_F(InstanceTest, SingleClusterIsComplete) {
  Configuration c;
  c.graph_size = 100;
  c.cluster_size = 100;
  Rng rng(6);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  EXPECT_EQ(inst.NumClusters(), 1u);
  EXPECT_TRUE(inst.topology.is_complete());
}

TEST_F(InstanceTest, IndexedFilesEqualsMemberSum) {
  Configuration c;
  c.graph_size = 500;
  c.cluster_size = 10;
  c.redundancy = true;
  Rng rng(7);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    double sum = 0.0;
    for (const std::uint32_t x : inst.ClientFiles(i)) sum += x;
    sum += inst.partner_files[i * 2];
    sum += inst.partner_files[i * 2 + 1];
    EXPECT_DOUBLE_EQ(inst.indexed_files[i], sum);
  }
}

TEST_F(InstanceTest, DerivedQuantitiesAreConsistent) {
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  Rng rng(8);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    EXPECT_NEAR(inst.expected_results[i],
                inputs_.query_model.ExpectedResults(inst.indexed_files[i]),
                1e-9);
    EXPECT_GE(inst.response_prob[i], 0.0);
    EXPECT_LE(inst.response_prob[i], 1.0);
    // E[K] <= cluster members; >= response probability of the whole index.
    EXPECT_LE(inst.expected_addrs[i],
              static_cast<double>(inst.ClusterUsers(i)));
    EXPECT_GE(inst.expected_addrs[i], 0.0);
  }
}

TEST_F(InstanceTest, PartnerConnectionsFormula) {
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 10;
  c.redundancy = true;
  Rng rng(9);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  for (std::size_t i = 0; i < std::min<std::size_t>(inst.NumClusters(), 10);
       ++i) {
    const double expected =
        static_cast<double>(inst.NumClients(i)) + 1.0 +
        2.0 * static_cast<double>(inst.topology.Degree(
                  static_cast<NodeId>(i)));
    EXPECT_DOUBLE_EQ(inst.PartnerConnections(i), expected);
  }
  EXPECT_DOUBLE_EQ(inst.ClientConnections(), 2.0);
}

TEST_F(InstanceTest, GenerationIsDeterministic) {
  Configuration c;
  c.graph_size = 500;
  c.cluster_size = 5;
  Rng a(42), b(42);
  const NetworkInstance ia = GenerateInstance(c, inputs_, a);
  const NetworkInstance ib = GenerateInstance(c, inputs_, b);
  ASSERT_EQ(ia.TotalClients(), ib.TotalClients());
  EXPECT_EQ(ia.client_files, ib.client_files);
  EXPECT_EQ(ia.partner_files, ib.partner_files);
}

TEST_F(InstanceTest, RecomputeDerivedAfterMutation) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  Rng rng(10);
  NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  const double before = inst.indexed_files[0];
  inst.client_files[inst.client_offset[0]] += 500;
  ComputeDerivedQuantities(inst, inputs_.query_model);
  EXPECT_DOUBLE_EQ(inst.indexed_files[0], before + 500.0);
}

}  // namespace
}  // namespace sppnet
