// Integration tests: the paper's four "rules of thumb" (Section 5.1)
// must emerge from the evaluation engine on scaled-down networks.

#include <gtest/gtest.h>

#include "sppnet/model/trials.h"

namespace sppnet {
namespace {

class RulesOfThumbTest : public ::testing::Test {
 protected:
  ConfigurationReport Run(const Configuration& c, std::size_t trials = 3) {
    TrialOptions options;
    options.num_trials = trials;
    options.seed = 4242;
    return RunTrials(c, inputs_, options);
  }

  const ModelInputs inputs_ = ModelInputs::Default();
};

// Rule #1a: increasing cluster size decreases aggregate load.
TEST_F(RulesOfThumbTest, LargerClustersReduceAggregateLoad) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 2000;
  c.ttl = 1;
  double prev = 1e300;
  for (const double cs : {1.0, 10.0, 100.0}) {
    c.cluster_size = cs;
    const double agg = Run(c).AggregateBandwidthMean();
    EXPECT_LT(agg, prev) << "cluster size " << cs;
    prev = agg;
  }
}

// Rule #1b: increasing cluster size increases individual load.
TEST_F(RulesOfThumbTest, LargerClustersIncreaseIndividualLoad) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 2000;
  c.ttl = 1;
  double prev = 0.0;
  for (const double cs : {10.0, 50.0, 100.0, 200.0}) {
    c.cluster_size = cs;
    const ConfigurationReport r = Run(c);
    const double individual = r.sp_in_bps.Mean() + r.sp_out_bps.Mean();
    EXPECT_GT(individual, prev) << "cluster size " << cs;
    prev = individual;
  }
}

// Rule #1 exception: incoming bandwidth peaks near half the network and
// dips at a single cluster (Figure 5).
TEST_F(RulesOfThumbTest, IncomingBandwidthExceptionAtFullCluster) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 10000;  // Paper scale: the dip needs queries >> joins.
  c.ttl = 1;
  c.cluster_size = 5000.0;
  const double at_half = Run(c).sp_in_bps.Mean();
  c.cluster_size = 10000.0;
  const double at_full = Run(c).sp_in_bps.Mean();
  EXPECT_LT(at_full, at_half);
}

// Rule #2: redundancy roughly halves individual load at tiny aggregate
// bandwidth cost but raises aggregate processing.
TEST_F(RulesOfThumbTest, RedundancyTradeoffs) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 10000;  // The paper's Section 5.1 numbers use 10000.
  c.cluster_size = 100;
  c.ttl = 1;
  const ConfigurationReport plain = Run(c);
  c.redundancy = true;
  const ConfigurationReport red = Run(c);

  // Individual incoming bandwidth drops substantially (paper: ~48%).
  EXPECT_LT(red.sp_in_bps.Mean(), 0.65 * plain.sp_in_bps.Mean());
  // Aggregate bandwidth within a few percent (paper: +2.5%).
  EXPECT_NEAR(red.AggregateBandwidthMean(), plain.AggregateBandwidthMean(),
              0.08 * plain.AggregateBandwidthMean());
  // Aggregate processing increases (paper: ~17%).
  EXPECT_GT(red.aggregate_proc_hz.Mean(), plain.aggregate_proc_hz.Mean());
  // Individual processing decreases (paper: ~41%).
  EXPECT_LT(red.sp_proc_hz.Mean(), 0.75 * plain.sp_proc_hz.Mean());
}

// Rule #3: raising everyone's outdegree shortens the EPL.
TEST_F(RulesOfThumbTest, HigherOutdegreeShortensEpl) {
  Configuration c;
  c.graph_size = 2000;
  c.cluster_size = 10;
  c.ttl = 7;
  c.avg_outdegree = 3.1;
  const ConfigurationReport sparse = Run(c);
  c.avg_outdegree = 10.0;
  const ConfigurationReport dense = Run(c);
  EXPECT_LT(dense.epl.Mean(), sparse.epl.Mean());
  EXPECT_GE(dense.results_per_query.Mean(),
            0.95 * sparse.results_per_query.Mean());
}

// Rule #3 caveat (Appendix E): beyond the EPL knee, more outdegree only
// adds redundant queries and load.
TEST_F(RulesOfThumbTest, ExcessOutdegreeHurts) {
  Configuration c;
  c.graph_size = 2000;
  c.cluster_size = 20;  // 100 super-peers.
  c.ttl = 2;
  c.avg_outdegree = 30.0;
  const ConfigurationReport moderate = Run(c);
  c.avg_outdegree = 60.0;
  const ConfigurationReport excessive = Run(c);
  // Both reach everything...
  EXPECT_NEAR(moderate.reach.Mean(), 100.0, 3.0);
  EXPECT_NEAR(excessive.reach.Mean(), 100.0, 3.0);
  // ...but the denser overlay pays more.
  EXPECT_GT(excessive.sp_out_bps.Mean(), moderate.sp_out_bps.Mean());
  EXPECT_GT(excessive.duplicate_msgs_per_sec.Mean(),
            moderate.duplicate_msgs_per_sec.Mean());
}

// Rule #4: past full reach, lower TTL saves load without losing results.
TEST_F(RulesOfThumbTest, MinimizeTtl) {
  Configuration c;
  c.graph_size = 2000;
  c.cluster_size = 10;
  c.avg_outdegree = 20.0;
  c.ttl = 3;
  const ConfigurationReport lean = Run(c);
  c.ttl = 5;
  const ConfigurationReport fat = Run(c);
  EXPECT_NEAR(lean.results_per_query.Mean(), fat.results_per_query.Mean(),
              0.02 * fat.results_per_query.Mean());
  EXPECT_LT(lean.aggregate_in_bps.Mean(), fat.aggregate_in_bps.Mean());
}

// Appendix C: with a join-heavy workload, redundancy's aggregate cost
// grows and its individual benefit shrinks, but both effects keep their
// sign.
TEST_F(RulesOfThumbTest, LowQueryRateWeakensRedundancyBenefit) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 2000;
  c.cluster_size = 100;
  c.ttl = 1;

  Configuration red = c;
  red.redundancy = true;
  const double gain_high_rate =
      Run(c).sp_in_bps.Mean() / Run(red).sp_in_bps.Mean();

  c.query_rate = 9.26e-4;  // Queries:joins ~ 1 instead of ~10.
  red.query_rate = 9.26e-4;
  const double gain_low_rate =
      Run(c).sp_in_bps.Mean() / Run(red).sp_in_bps.Mean();

  EXPECT_GT(gain_high_rate, 1.0);
  EXPECT_GT(gain_low_rate, 1.0);
  EXPECT_LT(gain_low_rate, gain_high_rate);
}

}  // namespace
}  // namespace sppnet
