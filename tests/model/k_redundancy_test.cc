// Tests for generalized k-redundancy (k > 2): an extension the paper
// names but does not analyze.

#include <gtest/gtest.h>

#include "sppnet/model/trials.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

class KRedundancyTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();

  Configuration MakeConfig(int k) const {
    Configuration c;
    c.graph_type = GraphType::kStronglyConnected;
    c.graph_size = 2000;
    c.cluster_size = 50;
    c.ttl = 1;
    c.redundancy_k = k;
    return c;
  }
};

TEST_F(KRedundancyTest, RedundancyKOverridesBool) {
  Configuration c;
  EXPECT_EQ(c.RedundancyK(), 1);
  c.redundancy = true;
  EXPECT_EQ(c.RedundancyK(), 2);
  c.redundancy_k = 3;
  EXPECT_EQ(c.RedundancyK(), 3);
  c.redundancy = false;
  EXPECT_EQ(c.RedundancyK(), 3);
  c.redundancy_k = 1;
  EXPECT_EQ(c.RedundancyK(), 1);
}

TEST_F(KRedundancyTest, InstanceHasKPartnersPerCluster) {
  Rng rng(1);
  const NetworkInstance inst = GenerateInstance(MakeConfig(3), inputs_, rng);
  EXPECT_EQ(inst.redundancy_k, 3);
  EXPECT_EQ(inst.TotalPartners(), 3 * inst.NumClusters());
  // Mean clients per cluster = cluster size - k.
  const double mean_clients = static_cast<double>(inst.TotalClients()) /
                              static_cast<double>(inst.NumClusters());
  EXPECT_NEAR(mean_clients, 47.0, 1.5);
}

TEST_F(KRedundancyTest, ConnectionsGrowQuadratically) {
  // Inter-super-peer connections per partner grow linearly in k, so the
  // *total* across a virtual super-peer pair of neighbors grows as k^2
  // (Section 3.2).
  Rng rng(2);
  Configuration c2 = MakeConfig(2);
  c2.graph_type = GraphType::kPowerLaw;
  c2.avg_outdegree = 4.0;
  c2.ttl = 3;
  Configuration c4 = c2;
  c4.redundancy_k = 4;
  const NetworkInstance i2 = GenerateInstance(c2, inputs_, rng);
  Rng rng2(2);
  const NetworkInstance i4 = GenerateInstance(c4, inputs_, rng2);
  // Per-partner overlay connections: k * degree (+ clients + k-1).
  const double overlay2 =
      2.0 * static_cast<double>(i2.topology.Degree(0));
  const double overlay4 =
      4.0 * static_cast<double>(i4.topology.Degree(0));
  EXPECT_GT(overlay4, overlay2);
  // Per virtual super-peer: k partners x k links per neighbor = k^2.
  EXPECT_DOUBLE_EQ(2.0 * overlay2 / static_cast<double>(i2.topology.Degree(0)),
                   4.0);
  EXPECT_DOUBLE_EQ(4.0 * overlay4 / static_cast<double>(i4.topology.Degree(0)),
                   16.0);
}

TEST_F(KRedundancyTest, IndividualQueryLoadFallsWithK) {
  TrialOptions options;
  options.num_trials = 3;
  double prev = 1e300;
  for (int k = 1; k <= 4; ++k) {
    const ConfigurationReport r = RunTrials(MakeConfig(k), inputs_, options);
    EXPECT_LT(r.sp_in_bps.Mean(), prev) << "k=" << k;
    prev = r.sp_in_bps.Mean();
  }
}

TEST_F(KRedundancyTest, AggregateJoinCostGrowsWithK) {
  // Client joins are duplicated to every partner: with queries switched
  // off, aggregate load must grow roughly linearly in k.
  TrialOptions options;
  options.num_trials = 3;
  Configuration c1 = MakeConfig(1);
  c1.query_rate = 0.0;
  c1.update_rate = 0.0;
  Configuration c3 = MakeConfig(3);
  c3.query_rate = 0.0;
  c3.update_rate = 0.0;
  const double agg1 =
      RunTrials(c1, inputs_, options).AggregateBandwidthMean();
  const double agg3 =
      RunTrials(c3, inputs_, options).AggregateBandwidthMean();
  EXPECT_GT(agg3, 2.0 * agg1);
  EXPECT_LT(agg3, 4.5 * agg1);
}

TEST_F(KRedundancyTest, SystemBytesConserveAtK3) {
  Configuration c = MakeConfig(3);
  Rng rng(3);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  EXPECT_NEAR(loads.aggregate.in_bps, loads.aggregate.out_bps,
              1e-9 * loads.aggregate.in_bps);
}

TEST_F(KRedundancyTest, SimulatorHandlesK3) {
  Configuration c;
  c.graph_size = 300;
  c.cluster_size = 10;
  c.ttl = 4;
  c.avg_outdegree = 4.0;
  c.redundancy_k = 3;
  Rng rng(4);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions options;
  options.duration_seconds = 200;
  options.warmup_seconds = 20;
  Simulator sim(inst, c, inputs_, options);
  const SimReport r = sim.Run();
  EXPECT_GT(r.mean_results_per_query, 0.0);
  EXPECT_NEAR(r.aggregate.in_bps, r.aggregate.out_bps,
              0.03 * r.aggregate.out_bps);
}

TEST_F(KRedundancyTest, AvailabilityImprovesWithK) {
  SimOptions churn;
  churn.duration_seconds = 1200;
  churn.warmup_seconds = 60;
  churn.churn.enable = true;
  churn.churn.partner_recovery_seconds = 60.0;
  double prev = 1.0;
  for (int k = 1; k <= 3; ++k) {
    Configuration c;
    c.graph_size = 300;
    c.cluster_size = 10;
    c.ttl = 3;
    c.redundancy_k = k;
    Rng rng(5);
    const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
    Simulator sim(inst, c, inputs_, churn);
    const SimReport r = sim.Run();
    EXPECT_LT(r.client_disconnected_fraction, prev) << "k=" << k;
    prev = r.client_disconnected_fraction;
  }
}

}  // namespace
}  // namespace sppnet
