// ctest-label: threaded
// Bit-identity of the evaluation engines: the batched (bit-parallel)
// and scalar-reference kernels must produce EXACTLY the same
// InstanceLoads — every double bitwise equal — at every evaluation
// parallelism level. The engines share all floating-point accumulation
// and differ only in how the integer flood structures are computed, so
// any mismatch means a kernel bug, not an acceptable rounding wiggle;
// EXPECT_EQ (not EXPECT_DOUBLE_EQ / NEAR) is deliberate.

#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/evaluator.h"
#include "sppnet/model/trials.h"
#include "sppnet/obs/metrics.h"

namespace sppnet {
namespace {

void ExpectLoadVectorIdentical(const LoadVector& a, const LoadVector& b,
                               const char* what, std::size_t index) {
  SCOPED_TRACE(testing::Message() << what << "[" << index << "]");
  EXPECT_EQ(a.in_bps, b.in_bps);
  EXPECT_EQ(a.out_bps, b.out_bps);
  EXPECT_EQ(a.proc_hz, b.proc_hz);
}

void ExpectVectorIdentical(const std::vector<double>& a,
                           const std::vector<double>& b, const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "index " << i;
  }
}

/// Every field of InstanceLoads, bitwise.
void ExpectLoadsIdentical(const InstanceLoads& a, const InstanceLoads& b) {
  ASSERT_EQ(a.partner_load.size(), b.partner_load.size());
  for (std::size_t i = 0; i < a.partner_load.size(); ++i) {
    ExpectLoadVectorIdentical(a.partner_load[i], b.partner_load[i],
                              "partner_load", i);
  }
  ASSERT_EQ(a.client_load.size(), b.client_load.size());
  for (std::size_t i = 0; i < a.client_load.size(); ++i) {
    ExpectLoadVectorIdentical(a.client_load[i], b.client_load[i],
                              "client_load", i);
  }
  ExpectVectorIdentical(a.results_per_query, b.results_per_query,
                        "results_per_query");
  ExpectVectorIdentical(a.epl_per_source, b.epl_per_source, "epl_per_source");
  ExpectVectorIdentical(a.reach_per_source, b.reach_per_source,
                        "reach_per_source");
  ExpectLoadVectorIdentical(a.aggregate, b.aggregate, "aggregate", 0);
  EXPECT_EQ(a.mean_results, b.mean_results);
  EXPECT_EQ(a.mean_epl, b.mean_epl);
  EXPECT_EQ(a.mean_reach, b.mean_reach);
  EXPECT_EQ(a.duplicate_msgs_per_sec, b.duplicate_msgs_per_sec);
}

struct IdentityCase {
  std::size_t graph_size;
  double cluster_size;
  int redundancy_k;
  int ttl;
  double outdegree;
  GraphType graph_type;
};

class EvalIdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(EvalIdentityTest, EnginesAndParallelismBitIdentical) {
  const IdentityCase param = GetParam();
  Configuration config;
  config.graph_type = param.graph_type;
  config.graph_size = param.graph_size;
  config.cluster_size = param.cluster_size;
  config.redundancy_k = param.redundancy_k;
  config.ttl = param.ttl;
  config.avg_outdegree = param.outdegree;
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(4242);
  const NetworkInstance inst = GenerateInstance(config, inputs, rng);

  std::vector<InstanceLoads> all;
  for (const EvalEngine engine :
       {EvalEngine::kBatched, EvalEngine::kScalarReference}) {
    for (const std::size_t parallelism : {1u, 2u, 8u}) {
      EvalOptions options;
      options.engine = engine;
      options.parallelism = parallelism;
      all.push_back(EvaluateInstance(inst, config, inputs, options));
    }
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    SCOPED_TRACE(testing::Message()
                 << "variant " << i << " (engine " << i / 3 << ", parallelism "
                 << (i % 3 == 0 ? 1 : i % 3 == 1 ? 2 : 8) << ")");
    ExpectLoadsIdentical(all[0], all[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EvalIdentityTest,
    ::testing::Values(
        // 500 % 64 != 0: remainder batch. Multi-client clusters.
        IdentityCase{500, 10, 1, 5, 3.1, GraphType::kPowerLaw},
        // Exactly two full batches.
        IdentityCase{128, 4, 1, 7, 3.1, GraphType::kPowerLaw},
        // Fewer sources than one batch, with redundancy.
        IdentityCase{50, 5, 2, 3, 6.0, GraphType::kPowerLaw},
        // Dense overlay, short TTL.
        IdentityCase{300, 20, 1, 2, 10.0, GraphType::kPowerLaw},
        // cluster_size 1: pure super-peer network, no clients.
        IdentityCase{200, 1, 1, 7, 3.1, GraphType::kPowerLaw},
        // Complete topology: closed form, engines trivially identical.
        IdentityCase{400, 10, 2, 2, 0.0, GraphType::kStronglyConnected}));

/// The same identity must survive the trial runner with its own
/// parallelism on top: engine choice and both parallelism knobs may not
/// move a single bit of any report statistic.
TEST(EvalIdentityTest, TrialReportsBitIdenticalAcrossEngineAndParallelism) {
  Configuration config;
  config.graph_type = GraphType::kPowerLaw;
  config.graph_size = 300;
  config.cluster_size = 10;
  config.ttl = 5;
  config.avg_outdegree = 3.1;
  const ModelInputs inputs = ModelInputs::Default();

  std::vector<ConfigurationReport> reports;
  for (const EvalEngine engine :
       {EvalEngine::kBatched, EvalEngine::kScalarReference}) {
    for (const std::size_t eval_parallelism : {1u, 2u, 8u}) {
      TrialOptions options;
      options.num_trials = 3;
      options.seed = 2026;
      options.collect_outdegree_histograms = true;
      options.parallelism = 2;
      options.eval_engine = engine;
      options.eval_parallelism = eval_parallelism;
      reports.push_back(RunTrials(config, inputs, options));
    }
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "variant " << i);
    EXPECT_EQ(reports[0].aggregate_in_bps.Mean(),
              reports[i].aggregate_in_bps.Mean());
    EXPECT_EQ(reports[0].aggregate_in_bps.Variance(),
              reports[i].aggregate_in_bps.Variance());
    EXPECT_EQ(reports[0].aggregate_out_bps.Mean(),
              reports[i].aggregate_out_bps.Mean());
    EXPECT_EQ(reports[0].aggregate_proc_hz.Mean(),
              reports[i].aggregate_proc_hz.Mean());
    EXPECT_EQ(reports[0].sp_out_bps.Mean(), reports[i].sp_out_bps.Mean());
    EXPECT_EQ(reports[0].client_in_bps.Mean(),
              reports[i].client_in_bps.Mean());
    EXPECT_EQ(reports[0].results_per_query.Mean(),
              reports[i].results_per_query.Mean());
    EXPECT_EQ(reports[0].epl.Mean(), reports[i].epl.Mean());
    EXPECT_EQ(reports[0].reach.Mean(), reports[i].reach.Mean());
    EXPECT_EQ(reports[0].duplicate_msgs_per_sec.Mean(),
              reports[i].duplicate_msgs_per_sec.Mean());
  }
}

/// The deterministic kernel counters must also be identical across
/// parallelism (the trials.cc fold contract extended to eval.bfs.*).
TEST(EvalIdentityTest, KernelCountersIdenticalAcrossParallelism) {
  Configuration config;
  config.graph_type = GraphType::kPowerLaw;
  config.graph_size = 200;
  config.cluster_size = 5;
  config.ttl = 4;
  config.avg_outdegree = 3.1;
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(7);
  const NetworkInstance inst = GenerateInstance(config, inputs, rng);

  std::vector<MetricsRegistry> registries(3);
  const std::size_t parallelisms[] = {1, 2, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    EvalOptions options;
    options.parallelism = parallelisms[i];
    options.metrics = &registries[i];
    EvaluateInstance(inst, config, inputs, options);
  }
  for (const char* name :
       {"eval.sources", "eval.bfs.batches", "eval.bfs.levels",
        "eval.bfs.frontier_entries", "eval.reached"}) {
    SCOPED_TRACE(name);
    EXPECT_GT(registries[0].CounterValue(name), 0u);
    EXPECT_EQ(registries[0].CounterValue(name),
              registries[1].CounterValue(name));
    EXPECT_EQ(registries[0].CounterValue(name),
              registries[2].CounterValue(name));
  }
  EXPECT_GT(registries[0].GaugeValue("eval.scratch.bytes"), 0.0);
  EXPECT_EQ(registries[0].GaugeValue("eval.scratch.bytes"),
            registries[1].GaugeValue("eval.scratch.bytes"));
  EXPECT_EQ(registries[0].GaugeValue("eval.scratch.bytes"),
            registries[2].GaugeValue("eval.scratch.bytes"));
}

}  // namespace
}  // namespace sppnet
