#include "sppnet/model/evaluator.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "sppnet/topology/bfs.h"
#include "sppnet/topology/graph.h"

namespace sppnet {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();

  NetworkInstance Make(const Configuration& c, std::uint64_t seed) {
    Rng rng(seed);
    return GenerateInstance(c, inputs_, rng);
  }
};

TEST_F(EvaluatorTest, AggregateEqualsSumOfNodeLoads) {
  Configuration c;
  c.graph_size = 500;
  c.cluster_size = 10;
  c.ttl = 4;
  const NetworkInstance inst = Make(c, 1);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  LoadVector sum;
  for (const auto& lv : loads.partner_load) sum += lv;
  for (const auto& lv : loads.client_load) sum += lv;
  EXPECT_NEAR(sum.in_bps, loads.aggregate.in_bps, 1e-6 * sum.in_bps);
  EXPECT_NEAR(sum.out_bps, loads.aggregate.out_bps, 1e-6 * sum.out_bps);
  EXPECT_NEAR(sum.proc_hz, loads.aggregate.proc_hz, 1e-6 * sum.proc_hz);
}

TEST_F(EvaluatorTest, BytesSentEqualBytesReceivedSystemWide) {
  // Every message has exactly one sender and one receiver accounting the
  // same byte count, so aggregate incoming == aggregate outgoing.
  for (const bool redundancy : {false, true}) {
    Configuration c;
    c.graph_size = 600;
    c.cluster_size = 12;
    c.redundancy = redundancy;
    c.ttl = 5;
    const NetworkInstance inst = Make(c, 2);
    const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
    EXPECT_NEAR(loads.aggregate.in_bps, loads.aggregate.out_bps,
                1e-9 * loads.aggregate.in_bps)
        << "redundancy=" << redundancy;
  }
}

TEST_F(EvaluatorTest, CompleteClosedFormMatchesGenericSparseEvaluation) {
  // Evaluate the same instance twice: once through the O(n) closed form
  // for complete topologies, once through the generic per-source BFS over
  // an explicitly materialized complete graph. They must agree.
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 300;
  c.cluster_size = 15;
  c.ttl = 1;
  for (const int ttl : {1, 2}) {
    c.ttl = ttl;
    NetworkInstance inst = Make(c, 3);
    ASSERT_TRUE(inst.topology.is_complete());
    const std::size_t n = inst.NumClusters();

    NetworkInstance sparse = inst;
    GraphBuilder builder(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
    }
    sparse.topology = Topology::FromGraph(builder.Build());

    const InstanceLoads closed = EvaluateInstance(inst, c, inputs_);
    const InstanceLoads generic = EvaluateInstance(sparse, c, inputs_);

    EXPECT_NEAR(closed.aggregate.in_bps, generic.aggregate.in_bps,
                1e-6 * generic.aggregate.in_bps)
        << "ttl=" << ttl;
    EXPECT_NEAR(closed.aggregate.proc_hz, generic.aggregate.proc_hz,
                1e-6 * generic.aggregate.proc_hz);
    EXPECT_NEAR(closed.mean_results, generic.mean_results,
                1e-6 * generic.mean_results);
    EXPECT_NEAR(closed.duplicate_msgs_per_sec, generic.duplicate_msgs_per_sec,
                1e-6 * std::max(1.0, generic.duplicate_msgs_per_sec));
    ASSERT_EQ(closed.partner_load.size(), generic.partner_load.size());
    for (std::size_t p = 0; p < closed.partner_load.size(); ++p) {
      EXPECT_NEAR(closed.partner_load[p].in_bps,
                  generic.partner_load[p].in_bps,
                  1e-6 * generic.partner_load[p].in_bps + 1e-9);
      EXPECT_NEAR(closed.partner_load[p].proc_hz,
                  generic.partner_load[p].proc_hz,
                  1e-6 * generic.partner_load[p].proc_hz + 1e-9);
    }
  }
}

TEST_F(EvaluatorTest, CompleteTopologyMetrics) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 400;
  c.cluster_size = 20;
  c.ttl = 1;
  const NetworkInstance inst = Make(c, 4);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  EXPECT_DOUBLE_EQ(loads.mean_epl, 1.0);
  EXPECT_DOUBLE_EQ(loads.mean_reach, 20.0);
  EXPECT_DOUBLE_EQ(loads.duplicate_msgs_per_sec, 0.0);  // TTL 1: no dups.
}

TEST_F(EvaluatorTest, TtlOneHasNoDuplicatesOnSparseGraphs) {
  Configuration c;
  c.graph_size = 500;
  c.cluster_size = 5;
  c.ttl = 1;
  const NetworkInstance inst = Make(c, 5);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  EXPECT_DOUBLE_EQ(loads.duplicate_msgs_per_sec, 0.0);
}

TEST_F(EvaluatorTest, PureNetworkHasNoClientLoads) {
  Configuration c;
  c.graph_size = 300;
  c.cluster_size = 1;
  c.ttl = 5;
  const NetworkInstance inst = Make(c, 6);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  EXPECT_TRUE(loads.client_load.empty());
  EXPECT_GT(loads.aggregate.proc_hz, 0.0);
}

TEST_F(EvaluatorTest, RedundancyHalvesQueryDrivenPartnerLoad) {
  // With a query-dominated workload, each partner of a 2-redundant
  // super-peer carries roughly half the query traffic (Section 5.1,
  // rule #2). Compare identical cluster sizes.
  Configuration base;
  base.graph_type = GraphType::kStronglyConnected;
  base.graph_size = 2000;
  base.cluster_size = 100;
  base.ttl = 1;
  Configuration red = base;
  red.redundancy = true;

  const InstanceLoads plain = EvaluateInstance(Make(base, 7), base, inputs_);
  const InstanceLoads redundant = EvaluateInstance(Make(red, 7), red, inputs_);
  const LoadVector sp_plain = InstanceLoads::MeanOf(plain.partner_load);
  const LoadVector sp_red = InstanceLoads::MeanOf(redundant.partner_load);
  // Expect a substantial drop; the paper reports ~48% for incoming
  // bandwidth in this configuration.
  EXPECT_LT(sp_red.in_bps, 0.65 * sp_plain.in_bps);
  EXPECT_GT(sp_red.in_bps, 0.35 * sp_plain.in_bps);
}

TEST_F(EvaluatorTest, RedundancyBarelyChangesAggregateBandwidth) {
  Configuration base;
  base.graph_type = GraphType::kStronglyConnected;
  base.graph_size = 2000;
  base.cluster_size = 100;
  base.ttl = 1;
  Configuration red = base;
  red.redundancy = true;
  const InstanceLoads plain = EvaluateInstance(Make(base, 8), base, inputs_);
  const InstanceLoads redundant = EvaluateInstance(Make(red, 8), red, inputs_);
  const double plain_bw = plain.aggregate.TotalBps();
  const double red_bw = redundant.aggregate.TotalBps();
  EXPECT_NEAR(red_bw, plain_bw, 0.10 * plain_bw);
}

TEST_F(EvaluatorTest, ResultsProportionalToReach) {
  // Expected results per query are proportional to the files covered by
  // the flood; full reach must beat a truncated one.
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  c.avg_outdegree = 4.0;
  const NetworkInstance inst = Make(c, 9);
  Configuration shallow = c;
  shallow.ttl = 2;
  Configuration deep = c;
  deep.ttl = 10;
  const InstanceLoads near = EvaluateInstance(inst, shallow, inputs_);
  const InstanceLoads far = EvaluateInstance(inst, deep, inputs_);
  EXPECT_LT(near.mean_reach, far.mean_reach);
  EXPECT_LT(near.mean_results, far.mean_results);
  // At full reach, results approach total-files * match-probability.
  double total_files = 0.0;
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    total_files += inst.indexed_files[i];
  }
  const double cap = total_files * inputs_.query_model.MatchProbability();
  EXPECT_LE(far.mean_results, cap * (1.0 + 1e-9));
  EXPECT_GT(far.mean_results, 0.9 * cap);
}

TEST_F(EvaluatorTest, ExcessTtlAddsLoadButNoResults) {
  // Rule #4: once reach is full, a higher TTL only adds redundant
  // messages. Compare TTL = max eccentricity (minimum for full reach
  // from every source) against TTL = eccentricity + 1: reach and
  // results are identical but the padding costs real bandwidth.
  // Beyond eccentricity + 1 flooding saturates (nodes only forward on
  // first reception), so the plateau is also checked.
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  c.avg_outdegree = 10.0;
  const NetworkInstance inst = Make(c, 10);

  // Max eccentricity over every source.
  FloodScratch scratch;
  int ecc = 0;
  for (NodeId s = 0; s < inst.NumClusters(); ++s) {
    const auto e = MinTtlForFullReach(inst.topology, s, scratch);
    ASSERT_TRUE(e.has_value());
    ecc = std::max(ecc, *e);
  }

  Configuration just_enough = c;
  just_enough.ttl = ecc;
  Configuration padded = c;
  padded.ttl = ecc + 1;
  Configuration very_padded = c;
  very_padded.ttl = ecc + 5;
  const InstanceLoads lo = EvaluateInstance(inst, just_enough, inputs_);
  const InstanceLoads hi = EvaluateInstance(inst, padded, inputs_);
  const InstanceLoads plateau = EvaluateInstance(inst, very_padded, inputs_);
  ASSERT_DOUBLE_EQ(lo.mean_reach, hi.mean_reach);  // Both full reach.
  EXPECT_NEAR(lo.mean_results, hi.mean_results, 1e-9);
  EXPECT_GT(hi.duplicate_msgs_per_sec, lo.duplicate_msgs_per_sec);
  EXPECT_GT(hi.aggregate.TotalBps(), lo.aggregate.TotalBps());
  // Once every node has seen the query, further TTL changes nothing.
  EXPECT_DOUBLE_EQ(plateau.aggregate.TotalBps(), hi.aggregate.TotalBps());
}

TEST_F(EvaluatorTest, IncomingBandwidthDipAtSingleCluster) {
  // The Figure 5 exception: a lone super-peer receives no inter-cluster
  // responses, so its incoming bandwidth is far below the half-network
  // maximum.
  // Paper scale matters here: response traffic grows with network size
  // while join traffic only grows with cluster size, so the dip is
  // clearest at the paper's 10000 peers (complete topology: O(n) eval).
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 10000;
  c.ttl = 1;
  Configuration half = c;
  half.cluster_size = 5000;
  Configuration whole = c;
  whole.cluster_size = 10000;
  const InstanceLoads at_half = EvaluateInstance(Make(half, 11), half, inputs_);
  const InstanceLoads at_whole =
      EvaluateInstance(Make(whole, 11), whole, inputs_);
  const double in_half = InstanceLoads::MeanOf(at_half.partner_load).in_bps;
  const double in_whole = InstanceLoads::MeanOf(at_whole.partner_load).in_bps;
  EXPECT_LT(in_whole, 0.6 * in_half);
}

TEST_F(EvaluatorTest, EvaluationIsDeterministic) {
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 8;
  const NetworkInstance inst = Make(c, 12);
  const InstanceLoads a = EvaluateInstance(inst, c, inputs_);
  const InstanceLoads b = EvaluateInstance(inst, c, inputs_);
  EXPECT_DOUBLE_EQ(a.aggregate.in_bps, b.aggregate.in_bps);
  EXPECT_DOUBLE_EQ(a.mean_results, b.mean_results);
  ASSERT_EQ(a.partner_load.size(), b.partner_load.size());
  for (std::size_t i = 0; i < a.partner_load.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.partner_load[i].proc_hz, b.partner_load[i].proc_hz);
  }
}

TEST_F(EvaluatorTest, AllLoadsNonNegative) {
  Configuration c;
  c.graph_size = 500;
  c.cluster_size = 10;
  c.redundancy = true;
  const NetworkInstance inst = Make(c, 13);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  for (const auto& lv : loads.partner_load) {
    EXPECT_GE(lv.in_bps, 0.0);
    EXPECT_GE(lv.out_bps, 0.0);
    EXPECT_GE(lv.proc_hz, 0.0);
  }
  for (const auto& lv : loads.client_load) {
    EXPECT_GE(lv.in_bps, 0.0);
    EXPECT_GE(lv.out_bps, 0.0);
    EXPECT_GE(lv.proc_hz, 0.0);
  }
}

TEST_F(EvaluatorTest, ClientLoadTinyComparedToSuperPeer) {
  // Clients are shielded from query processing and forwarding traffic.
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  const NetworkInstance inst = Make(c, 14);
  const InstanceLoads loads = EvaluateInstance(inst, c, inputs_);
  const LoadVector sp = InstanceLoads::MeanOf(loads.partner_load);
  const LoadVector cl = InstanceLoads::MeanOf(loads.client_load);
  EXPECT_LT(cl.proc_hz, 0.05 * sp.proc_hz);
  EXPECT_LT(cl.out_bps, 0.05 * sp.out_bps);
}

}  // namespace
}  // namespace sppnet
