#include "sppnet/model/config.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(ConfigurationTest, DefaultsMatchTableOne) {
  const Configuration c = Configuration::Defaults();
  EXPECT_EQ(c.graph_type, GraphType::kPowerLaw);
  EXPECT_EQ(c.graph_size, 10000u);
  EXPECT_DOUBLE_EQ(c.cluster_size, 10.0);
  EXPECT_FALSE(c.redundancy);
  EXPECT_DOUBLE_EQ(c.avg_outdegree, 3.1);
  EXPECT_EQ(c.ttl, 7);
  EXPECT_DOUBLE_EQ(c.query_rate, 9.26e-3);
  EXPECT_DOUBLE_EQ(c.update_rate, 1.85e-3);
}

TEST(ConfigurationTest, NumClustersDividesGraphSize) {
  Configuration c;
  c.graph_size = 10000;
  c.cluster_size = 10.0;
  EXPECT_EQ(c.NumClusters(), 1000u);
  c.cluster_size = 10000.0;
  EXPECT_EQ(c.NumClusters(), 1u);
  c.cluster_size = 1.0;
  EXPECT_EQ(c.NumClusters(), 10000u);
}

TEST(ConfigurationTest, NumClustersRoundsToNearest) {
  Configuration c;
  c.graph_size = 100;
  c.cluster_size = 3.0;
  EXPECT_EQ(c.NumClusters(), 33u);
}

TEST(ConfigurationTest, RedundancyDegree) {
  Configuration c;
  EXPECT_EQ(c.RedundancyK(), 1);
  c.redundancy = true;
  EXPECT_EQ(c.RedundancyK(), 2);
}

TEST(ConfigurationTest, MeanClientsAccountsForPartners) {
  Configuration c;
  c.cluster_size = 10.0;
  EXPECT_DOUBLE_EQ(c.MeanClientsPerCluster(), 9.0);
  c.redundancy = true;
  EXPECT_DOUBLE_EQ(c.MeanClientsPerCluster(), 8.0);
}

TEST(ConfigurationTest, PureNetworkHasNoClients) {
  Configuration c;
  c.cluster_size = 1.0;
  EXPECT_DOUBLE_EQ(c.MeanClientsPerCluster(), 0.0);
}

TEST(ConfigurationTest, ToStringMentionsKeyParameters) {
  Configuration c;
  c.redundancy = true;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("power-law"), std::string::npos);
  EXPECT_NE(s.find("redundancy=yes"), std::string::npos);
  EXPECT_NE(s.find("ttl=7"), std::string::npos);
}

TEST(ModelInputsTest, DefaultBundleIsConsistent) {
  const ModelInputs inputs = ModelInputs::Default();
  EXPECT_DOUBLE_EQ(inputs.stats.query_rate_per_user, 9.26e-3);
  EXPECT_GT(inputs.query_model.MatchProbability(), 0.0);
  EXPECT_GT(inputs.file_counts.Mean(), 0.0);
  EXPECT_GT(inputs.lifespans.Mean(), 0.0);
}

}  // namespace
}  // namespace sppnet
