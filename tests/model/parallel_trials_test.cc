// ctest-label: threaded
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/model/trials.h"

namespace sppnet {
namespace {

/// Bitwise comparison of two accumulators: parallel runs must fold the
/// observations in trial order, so even the floating-point error terms
/// (Welford's M2) match exactly — EXPECT_DOUBLE_EQ would hide an
/// ordering bug that happens to round the same way.
void ExpectStatIdentical(const RunningStat& a, const RunningStat& b,
                         const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.Mean(), b.Mean());
  EXPECT_EQ(a.Variance(), b.Variance());
  EXPECT_EQ(a.StdDev(), b.StdDev());
  EXPECT_EQ(a.StdError(), b.StdError());
  EXPECT_EQ(a.ConfidenceHalfWidth95(), b.ConfidenceHalfWidth95());
}

/// Every RunningStat of the report, by name.
void ExpectReportIdentical(const ConfigurationReport& a,
                           const ConfigurationReport& b) {
  ExpectStatIdentical(a.aggregate_in_bps, b.aggregate_in_bps,
                      "aggregate_in_bps");
  ExpectStatIdentical(a.aggregate_out_bps, b.aggregate_out_bps,
                      "aggregate_out_bps");
  ExpectStatIdentical(a.aggregate_proc_hz, b.aggregate_proc_hz,
                      "aggregate_proc_hz");
  ExpectStatIdentical(a.sp_in_bps, b.sp_in_bps, "sp_in_bps");
  ExpectStatIdentical(a.sp_out_bps, b.sp_out_bps, "sp_out_bps");
  ExpectStatIdentical(a.sp_proc_hz, b.sp_proc_hz, "sp_proc_hz");
  ExpectStatIdentical(a.client_in_bps, b.client_in_bps, "client_in_bps");
  ExpectStatIdentical(a.client_out_bps, b.client_out_bps, "client_out_bps");
  ExpectStatIdentical(a.client_proc_hz, b.client_proc_hz, "client_proc_hz");
  ExpectStatIdentical(a.results_per_query, b.results_per_query,
                      "results_per_query");
  ExpectStatIdentical(a.epl, b.epl, "epl");
  ExpectStatIdentical(a.reach, b.reach, "reach");
  ExpectStatIdentical(a.duplicate_msgs_per_sec, b.duplicate_msgs_per_sec,
                      "duplicate_msgs_per_sec");
  ExpectStatIdentical(a.sp_connections, b.sp_connections, "sp_connections");

  ASSERT_EQ(a.sp_out_bps_by_outdegree.KeyUpperBound(),
            b.sp_out_bps_by_outdegree.KeyUpperBound());
  ASSERT_EQ(a.results_by_outdegree.KeyUpperBound(),
            b.results_by_outdegree.KeyUpperBound());
  for (int d = 0; d < a.sp_out_bps_by_outdegree.KeyUpperBound(); ++d) {
    ExpectStatIdentical(a.sp_out_bps_by_outdegree.Group(d),
                        b.sp_out_bps_by_outdegree.Group(d),
                        "sp_out_bps_by_outdegree");
  }
  for (int d = 0; d < a.results_by_outdegree.KeyUpperBound(); ++d) {
    ExpectStatIdentical(a.results_by_outdegree.Group(d),
                        b.results_by_outdegree.Group(d),
                        "results_by_outdegree");
  }
}

TEST(ParallelTrialsTest, BitIdenticalToSerial) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 600;
  config.cluster_size = 10;
  config.ttl = 5;

  TrialOptions serial;
  serial.num_trials = 6;
  serial.seed = 31337;
  TrialOptions parallel = serial;
  parallel.parallelism = 4;

  const ConfigurationReport a = RunTrials(config, inputs, serial);
  const ConfigurationReport b = RunTrials(config, inputs, parallel);

  EXPECT_DOUBLE_EQ(a.aggregate_in_bps.Mean(), b.aggregate_in_bps.Mean());
  EXPECT_DOUBLE_EQ(a.aggregate_in_bps.Variance(),
                   b.aggregate_in_bps.Variance());
  EXPECT_DOUBLE_EQ(a.sp_proc_hz.Mean(), b.sp_proc_hz.Mean());
  EXPECT_DOUBLE_EQ(a.results_per_query.Mean(), b.results_per_query.Mean());
  EXPECT_DOUBLE_EQ(a.epl.Mean(), b.epl.Mean());
  EXPECT_DOUBLE_EQ(a.sp_connections.Mean(), b.sp_connections.Mean());
}

TEST(ParallelTrialsTest, HistogramsIdenticalToSerial) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 400;
  config.cluster_size = 20;
  TrialOptions serial;
  serial.num_trials = 4;
  serial.collect_outdegree_histograms = true;
  TrialOptions parallel = serial;
  parallel.parallelism = 3;

  const ConfigurationReport a = RunTrials(config, inputs, serial);
  const ConfigurationReport b = RunTrials(config, inputs, parallel);
  ASSERT_EQ(a.results_by_outdegree.KeyUpperBound(),
            b.results_by_outdegree.KeyUpperBound());
  for (int d = 0; d < a.results_by_outdegree.KeyUpperBound(); ++d) {
    EXPECT_EQ(a.results_by_outdegree.Group(d).count(),
              b.results_by_outdegree.Group(d).count());
    EXPECT_DOUBLE_EQ(a.results_by_outdegree.Group(d).Mean(),
                     b.results_by_outdegree.Group(d).Mean());
    EXPECT_DOUBLE_EQ(a.sp_out_bps_by_outdegree.Group(d).Mean(),
                     b.sp_out_bps_by_outdegree.Group(d).Mean());
  }
}

TEST(ParallelTrialsTest, FullReportIdenticalAcrossParallelism128) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 500;
  config.cluster_size = 10;
  config.ttl = 5;
  config.graph_type = GraphType::kPowerLaw;
  config.avg_outdegree = 3.1;

  std::vector<ConfigurationReport> reports;
  for (const std::size_t parallelism : {1u, 2u, 8u}) {
    TrialOptions options;
    options.num_trials = 7;
    options.seed = 777;
    options.collect_outdegree_histograms = true;
    options.parallelism = parallelism;
    reports.push_back(RunTrials(config, inputs, options));
  }
  ExpectReportIdentical(reports[0], reports[1]);
  ExpectReportIdentical(reports[0], reports[2]);
}

TEST(ParallelTrialsTest, MoreWorkersThanTrials) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 200;
  config.cluster_size = 10;
  TrialOptions options;
  options.num_trials = 2;
  options.parallelism = 16;
  const ConfigurationReport r = RunTrials(config, inputs, options);
  EXPECT_EQ(r.aggregate_in_bps.count(), 2u);
}

}  // namespace
}  // namespace sppnet
