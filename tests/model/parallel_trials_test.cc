#include <gtest/gtest.h>

#include "sppnet/model/trials.h"

namespace sppnet {
namespace {

TEST(ParallelTrialsTest, BitIdenticalToSerial) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 600;
  config.cluster_size = 10;
  config.ttl = 5;

  TrialOptions serial;
  serial.num_trials = 6;
  serial.seed = 31337;
  TrialOptions parallel = serial;
  parallel.parallelism = 4;

  const ConfigurationReport a = RunTrials(config, inputs, serial);
  const ConfigurationReport b = RunTrials(config, inputs, parallel);

  EXPECT_DOUBLE_EQ(a.aggregate_in_bps.Mean(), b.aggregate_in_bps.Mean());
  EXPECT_DOUBLE_EQ(a.aggregate_in_bps.Variance(),
                   b.aggregate_in_bps.Variance());
  EXPECT_DOUBLE_EQ(a.sp_proc_hz.Mean(), b.sp_proc_hz.Mean());
  EXPECT_DOUBLE_EQ(a.results_per_query.Mean(), b.results_per_query.Mean());
  EXPECT_DOUBLE_EQ(a.epl.Mean(), b.epl.Mean());
  EXPECT_DOUBLE_EQ(a.sp_connections.Mean(), b.sp_connections.Mean());
}

TEST(ParallelTrialsTest, HistogramsIdenticalToSerial) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 400;
  config.cluster_size = 20;
  TrialOptions serial;
  serial.num_trials = 4;
  serial.collect_outdegree_histograms = true;
  TrialOptions parallel = serial;
  parallel.parallelism = 3;

  const ConfigurationReport a = RunTrials(config, inputs, serial);
  const ConfigurationReport b = RunTrials(config, inputs, parallel);
  ASSERT_EQ(a.results_by_outdegree.KeyUpperBound(),
            b.results_by_outdegree.KeyUpperBound());
  for (int d = 0; d < a.results_by_outdegree.KeyUpperBound(); ++d) {
    EXPECT_EQ(a.results_by_outdegree.Group(d).count(),
              b.results_by_outdegree.Group(d).count());
    EXPECT_DOUBLE_EQ(a.results_by_outdegree.Group(d).Mean(),
                     b.results_by_outdegree.Group(d).Mean());
    EXPECT_DOUBLE_EQ(a.sp_out_bps_by_outdegree.Group(d).Mean(),
                     b.sp_out_bps_by_outdegree.Group(d).Mean());
  }
}

TEST(ParallelTrialsTest, MoreWorkersThanTrials) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 200;
  config.cluster_size = 10;
  TrialOptions options;
  options.num_trials = 2;
  options.parallelism = 16;
  const ConfigurationReport r = RunTrials(config, inputs, options);
  EXPECT_EQ(r.aggregate_in_bps.count(), 2u);
}

}  // namespace
}  // namespace sppnet
