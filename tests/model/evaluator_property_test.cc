// Property sweep over the evaluation engine: structural invariants
// that must hold for every configuration, checked across a grid of
// topologies, cluster sizes, redundancy degrees and TTLs.

#include <tuple>

#include <gtest/gtest.h>

#include "sppnet/model/evaluator.h"

namespace sppnet {
namespace {

struct GridPoint {
  GraphType graph_type;
  std::size_t graph_size;
  double cluster_size;
  int redundancy_k;
  int ttl;
  double outdegree;
};

class EvaluatorPropertyTest : public ::testing::TestWithParam<GridPoint> {
 protected:
  static const ModelInputs& Inputs() {
    static const ModelInputs* inputs = new ModelInputs(ModelInputs::Default());
    return *inputs;
  }
};

TEST_P(EvaluatorPropertyTest, StructuralInvariants) {
  const GridPoint point = GetParam();
  Configuration config;
  config.graph_type = point.graph_type;
  config.graph_size = point.graph_size;
  config.cluster_size = point.cluster_size;
  config.redundancy_k = point.redundancy_k;
  config.ttl = point.ttl;
  config.avg_outdegree = point.outdegree;

  Rng rng(2024);
  const NetworkInstance inst = GenerateInstance(config, Inputs(), rng);
  const InstanceLoads loads = EvaluateInstance(inst, config, Inputs());

  // (1) Conservation: every byte sent is received by exactly one node.
  ASSERT_GT(loads.aggregate.in_bps, 0.0);
  EXPECT_NEAR(loads.aggregate.in_bps, loads.aggregate.out_bps,
              1e-9 * loads.aggregate.in_bps);

  // (2) Aggregate equals the sum over all nodes.
  LoadVector sum;
  for (const auto& lv : loads.partner_load) sum += lv;
  for (const auto& lv : loads.client_load) sum += lv;
  EXPECT_NEAR(sum.proc_hz, loads.aggregate.proc_hz,
              1e-6 * loads.aggregate.proc_hz);

  // (3) Non-negativity of every per-node component.
  for (const auto& lv : loads.partner_load) {
    ASSERT_GE(lv.in_bps, 0.0);
    ASSERT_GE(lv.out_bps, 0.0);
    ASSERT_GE(lv.proc_hz, 0.0);
  }
  for (const auto& lv : loads.client_load) {
    ASSERT_GE(lv.in_bps, 0.0);
    ASSERT_GE(lv.out_bps, 0.0);
    ASSERT_GE(lv.proc_hz, 0.0);
  }

  // (4) Results are bounded by the full-network expectation and
  //     consistent with the per-source vector.
  double total_files = 0.0;
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    total_files += inst.indexed_files[i];
  }
  const double cap = total_files * Inputs().query_model.MatchProbability();
  EXPECT_LE(loads.mean_results, cap * (1.0 + 1e-9));
  for (const double r : loads.results_per_query) {
    ASSERT_GE(r, 0.0);
    ASSERT_LE(r, cap * (1.0 + 1e-9));
  }

  // (5) Reach bounded by the cluster count; EPL bounded by the TTL.
  EXPECT_LE(loads.mean_reach,
            static_cast<double>(inst.NumClusters()) * (1.0 + 1e-9));
  EXPECT_GE(loads.mean_reach, 1.0);
  EXPECT_LE(loads.mean_epl, static_cast<double>(config.ttl) + 1e-9);
  EXPECT_GE(loads.mean_epl, 0.0);

  // (6) Partner/client array shapes match the instance.
  EXPECT_EQ(loads.partner_load.size(), inst.TotalPartners());
  EXPECT_EQ(loads.client_load.size(), inst.TotalClients());
  EXPECT_EQ(loads.results_per_query.size(), inst.NumClusters());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EvaluatorPropertyTest,
    ::testing::Values(
        GridPoint{GraphType::kStronglyConnected, 1000, 1, 1, 1, 0},
        GridPoint{GraphType::kStronglyConnected, 1000, 10, 1, 1, 0},
        GridPoint{GraphType::kStronglyConnected, 1000, 10, 2, 2, 0},
        GridPoint{GraphType::kStronglyConnected, 1000, 50, 3, 1, 0},
        GridPoint{GraphType::kStronglyConnected, 1000, 1000, 1, 1, 0},
        GridPoint{GraphType::kStronglyConnected, 500, 250, 2, 3, 0},
        GridPoint{GraphType::kPowerLaw, 1000, 1, 1, 7, 3.1},
        GridPoint{GraphType::kPowerLaw, 1000, 10, 1, 7, 3.1},
        GridPoint{GraphType::kPowerLaw, 1000, 10, 2, 4, 6.0},
        GridPoint{GraphType::kPowerLaw, 1000, 20, 3, 2, 10.0},
        GridPoint{GraphType::kPowerLaw, 2000, 10, 1, 1, 20.0},
        GridPoint{GraphType::kPowerLaw, 2000, 40, 4, 3, 8.0}));

}  // namespace
}  // namespace sppnet
