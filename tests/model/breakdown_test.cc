#include "sppnet/model/breakdown.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

class BreakdownTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();

  NetworkInstance Make(const Configuration& c, std::uint64_t seed) {
    Rng rng(seed);
    return GenerateInstance(c, inputs_, rng);
  }
};

TEST_F(BreakdownTest, ComponentsSumToTotal) {
  Configuration c;
  c.graph_size = 600;
  c.cluster_size = 10;
  c.ttl = 5;
  const NetworkInstance inst = Make(c, 1);
  const ActionBreakdown b = ComputeActionBreakdown(inst, c, inputs_);
  // Linearity of the mean-value analysis makes the decomposition exact.
  EXPECT_NEAR(b.aggregate_query.TotalBps() + b.aggregate_join.TotalBps() +
                  b.aggregate_update.TotalBps(),
              b.aggregate_total.TotalBps(),
              1e-6 * b.aggregate_total.TotalBps());
  EXPECT_NEAR(b.aggregate_query.proc_hz + b.aggregate_join.proc_hz +
                  b.aggregate_update.proc_hz,
              b.aggregate_total.proc_hz, 1e-6 * b.aggregate_total.proc_hz);
  EXPECT_NEAR(b.sp_query.in_bps + b.sp_join.in_bps + b.sp_update.in_bps,
              b.sp_total.in_bps, 1e-6 * b.sp_total.in_bps);
}

TEST_F(BreakdownTest, SharesSumToOne) {
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 10;
  const NetworkInstance inst = Make(c, 2);
  const ActionBreakdown b = ComputeActionBreakdown(inst, c, inputs_);
  EXPECT_NEAR(b.QueryBandwidthShare() + b.JoinBandwidthShare() +
                  b.UpdateBandwidthShare(),
              1.0, 1e-6);
}

TEST_F(BreakdownTest, UpdatesAreNegligibleAtDefaults) {
  // Section 4.1: "the cost of updates is low relative to the cost of
  // queries and joins, [so] the overall performance of the system is
  // not sensitive to the value of the update rate."
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  const NetworkInstance inst = Make(c, 3);
  const ActionBreakdown b = ComputeActionBreakdown(inst, c, inputs_);
  EXPECT_LT(b.UpdateBandwidthShare(), 0.05);
  EXPECT_GT(b.QueryBandwidthShare(), 0.5);
}

TEST_F(BreakdownTest, QueriesDominateAtDefaultRates) {
  Configuration c;
  c.graph_size = 1000;
  c.cluster_size = 10;
  const NetworkInstance inst = Make(c, 4);
  const ActionBreakdown b = ComputeActionBreakdown(inst, c, inputs_);
  EXPECT_GT(b.aggregate_query.TotalBps(), b.aggregate_join.TotalBps());
  EXPECT_GT(b.aggregate_join.TotalBps(), b.aggregate_update.TotalBps());
}

TEST_F(BreakdownTest, LowQueryRateMakesJoinsDominant) {
  Configuration c;
  c.graph_type = GraphType::kStronglyConnected;
  c.graph_size = 1000;
  c.cluster_size = 100;
  c.ttl = 1;
  c.query_rate = 9.26e-5;  // Queries:joins ~ 0.1.
  const NetworkInstance inst = Make(c, 5);
  const ActionBreakdown b = ComputeActionBreakdown(inst, c, inputs_);
  EXPECT_GT(b.JoinBandwidthShare(), b.QueryBandwidthShare());
}

TEST_F(BreakdownTest, AllComponentsNonNegative) {
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 8;
  c.redundancy = true;
  const NetworkInstance inst = Make(c, 6);
  const ActionBreakdown b = ComputeActionBreakdown(inst, c, inputs_);
  for (const LoadVector* lv :
       {&b.aggregate_query, &b.aggregate_join, &b.aggregate_update,
        &b.sp_query, &b.sp_join, &b.sp_update}) {
    EXPECT_GE(lv->in_bps, -1e-9);
    EXPECT_GE(lv->out_bps, -1e-9);
    EXPECT_GE(lv->proc_hz, -1e-9);
  }
}

}  // namespace
}  // namespace sppnet
