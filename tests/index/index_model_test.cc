// Model-based test of InvertedIndex: a long random sequence of
// insert / erase / erase-owner / query operations is replayed against
// a trivially correct reference implementation (linear scan over a
// map); every query result must match exactly.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/index/inverted_index.h"

namespace sppnet {
namespace {

/// The reference: stores (id -> record), answers queries by scanning.
class ReferenceIndex {
 public:
  bool Insert(const FileRecord& record) {
    return files_.emplace(record.id, record).second;
  }

  bool Erase(FileId id) { return files_.erase(id) > 0; }

  std::size_t EraseOwner(OwnerId owner) {
    std::size_t erased = 0;
    for (auto it = files_.begin(); it != files_.end();) {
      if (it->second.owner == owner) {
        it = files_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  std::vector<FileId> Query(const std::string& query) const {
    const auto terms = InvertedIndex::Tokenize(query);
    std::vector<FileId> hits;
    if (terms.empty()) return hits;
    for (const auto& [id, record] : files_) {
      const auto title_terms = InvertedIndex::Tokenize(record.title);
      bool all = true;
      for (const auto& term : terms) {
        if (std::find(title_terms.begin(), title_terms.end(), term) ==
            title_terms.end()) {
          all = false;
          break;
        }
      }
      if (all) hits.push_back(id);
    }
    return hits;  // std::map iteration is already id-sorted.
  }

  std::size_t size() const { return files_.size(); }

 private:
  std::map<FileId, FileRecord> files_;
};

std::string RandomTitle(Rng& rng) {
  // Small vocabulary so queries frequently hit and collide.
  static constexpr const char* kWords[] = {"red",  "blue", "moon", "sun",
                                           "wolf", "sea",  "rock", "song"};
  const int n = static_cast<int>(rng.NextInt(1, 4));
  std::string title;
  for (int i = 0; i < n; ++i) {
    if (i > 0) title.push_back(' ');
    title += kWords[rng.NextBounded(8)];
  }
  return title;
}

TEST(IndexModelTest, RandomOperationsMatchReference) {
  Rng rng(321);
  InvertedIndex index;
  ReferenceIndex reference;
  std::vector<FileId> live_ids;
  FileId next_id = 1;

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.NextBounded(10);
    if (op < 5) {  // Insert.
      FileRecord record;
      record.id = next_id++;
      record.owner = static_cast<OwnerId>(rng.NextBounded(6));
      record.title = RandomTitle(rng);
      ASSERT_EQ(index.Insert(record), reference.Insert(record));
      live_ids.push_back(record.id);
    } else if (op < 7 && !live_ids.empty()) {  // Erase one file.
      const std::size_t pick = rng.NextBounded(live_ids.size());
      const FileId id = live_ids[pick];
      ASSERT_EQ(index.Erase(id), reference.Erase(id));
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (op == 7) {  // Erase a whole owner.
      const auto owner = static_cast<OwnerId>(rng.NextBounded(6));
      ASSERT_EQ(index.EraseOwner(owner), reference.EraseOwner(owner));
      live_ids.clear();  // Rebuild the live list lazily below.
    } else {  // Query.
      const std::string q = RandomTitle(rng);
      const QueryResult got = index.Query(q);
      const std::vector<FileId> want = reference.Query(q);
      ASSERT_EQ(got.hits.size(), want.size()) << "query " << q;
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got.hits[i].file, want[i]) << "query " << q;
      }
    }
    ASSERT_EQ(index.num_files(), reference.size());
    if (live_ids.empty() && reference.size() > 0) {
      // Refresh the live-id list after EraseOwner invalidated it.
      const QueryResult all_red = index.Query("red");
      for (const QueryHit& hit : all_red.hits) live_ids.push_back(hit.file);
      if (live_ids.empty()) {
        const QueryResult all_blue = index.Query("blue");
        for (const QueryHit& hit : all_blue.hits) {
          live_ids.push_back(hit.file);
        }
      }
    }
  }
}

TEST(IndexModelTest, DistinctOwnersMatchesReference) {
  Rng rng(654);
  InvertedIndex index;
  ReferenceIndex reference;
  FileId next_id = 1;
  for (int i = 0; i < 500; ++i) {
    FileRecord record;
    record.id = next_id++;
    record.owner = static_cast<OwnerId>(rng.NextBounded(4));
    record.title = RandomTitle(rng);
    index.Insert(record);
    reference.Insert(record);
  }
  for (const char* q : {"red", "blue moon", "wolf sea", "sun"}) {
    const QueryResult got = index.Query(q);
    std::vector<OwnerId> owners;
    for (const QueryHit& hit : got.hits) owners.push_back(hit.owner);
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
    EXPECT_EQ(got.distinct_owners, owners.size()) << q;
  }
}

}  // namespace
}  // namespace sppnet
