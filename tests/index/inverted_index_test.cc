#include "sppnet/index/inverted_index.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

FileRecord Rec(FileId id, OwnerId owner, std::string title) {
  return FileRecord{id, owner, std::move(title)};
}

TEST(TokenizeTest, LowercasesAndSplits) {
  const auto tokens = InvertedIndex::Tokenize("The Quick-Brown FOX_42!");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[1], "quick");
  EXPECT_EQ(tokens[2], "brown");
  EXPECT_EQ(tokens[3], "fox");
  EXPECT_EQ(tokens[4], "42");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(InvertedIndex::Tokenize("").empty());
  EXPECT_TRUE(InvertedIndex::Tokenize("--- !!! ---").empty());
}

TEST(InvertedIndexTest, SingleTermQuery) {
  InvertedIndex index;
  index.Insert(Rec(1, 10, "blue moon rising"));
  index.Insert(Rec(2, 11, "red moon"));
  index.Insert(Rec(3, 10, "blue sky"));
  const QueryResult r = index.Query("moon");
  ASSERT_EQ(r.hits.size(), 2u);
  EXPECT_EQ(r.distinct_owners, 2u);
}

TEST(InvertedIndexTest, ConjunctiveQueryIntersects) {
  InvertedIndex index;
  index.Insert(Rec(1, 1, "blue moon rising"));
  index.Insert(Rec(2, 1, "red moon"));
  index.Insert(Rec(3, 2, "blue sky moon"));
  const QueryResult r = index.Query("blue moon");
  ASSERT_EQ(r.hits.size(), 2u);
  EXPECT_EQ(r.hits[0].file, 1u);
  EXPECT_EQ(r.hits[1].file, 3u);
  EXPECT_EQ(r.distinct_owners, 2u);
}

TEST(InvertedIndexTest, UnknownTermYieldsNothing) {
  InvertedIndex index;
  index.Insert(Rec(1, 1, "alpha beta"));
  EXPECT_TRUE(index.Query("gamma").hits.empty());
  EXPECT_TRUE(index.Query("alpha gamma").hits.empty());
  EXPECT_TRUE(index.Query("").hits.empty());
}

TEST(InvertedIndexTest, QueryIsCaseInsensitive) {
  InvertedIndex index;
  index.Insert(Rec(1, 1, "Blue Moon"));
  EXPECT_EQ(index.Query("BLUE moon").hits.size(), 1u);
}

TEST(InvertedIndexTest, DuplicateIdRejected) {
  InvertedIndex index;
  EXPECT_TRUE(index.Insert(Rec(1, 1, "a b")));
  EXPECT_FALSE(index.Insert(Rec(1, 2, "c d")));
  EXPECT_EQ(index.num_files(), 1u);
}

TEST(InvertedIndexTest, RepeatedTermInTitleCountsOnce) {
  InvertedIndex index;
  index.Insert(Rec(1, 1, "moon moon moon"));
  EXPECT_EQ(index.Query("moon").hits.size(), 1u);
  // Erasing must fully clean up despite the repeated term.
  EXPECT_TRUE(index.Erase(1));
  EXPECT_EQ(index.num_terms(), 0u);
}

TEST(InvertedIndexTest, EraseRemovesPostings) {
  InvertedIndex index;
  index.Insert(Rec(1, 1, "alpha beta"));
  index.Insert(Rec(2, 1, "alpha gamma"));
  EXPECT_TRUE(index.Erase(1));
  EXPECT_FALSE(index.Erase(1));
  EXPECT_EQ(index.Query("alpha").hits.size(), 1u);
  EXPECT_TRUE(index.Query("beta").hits.empty());
  EXPECT_EQ(index.num_files(), 1u);
}

TEST(InvertedIndexTest, EraseOwnerRemovesWholeCollection) {
  InvertedIndex index;
  index.Insert(Rec(1, 7, "a x"));
  index.Insert(Rec(2, 7, "b x"));
  index.Insert(Rec(3, 8, "c x"));
  EXPECT_EQ(index.EraseOwner(7), 2u);
  EXPECT_EQ(index.num_files(), 1u);
  const QueryResult r = index.Query("x");
  ASSERT_EQ(r.hits.size(), 1u);
  EXPECT_EQ(r.hits[0].owner, 8u);
}

TEST(InvertedIndexTest, InsertCollectionBulkLoads) {
  InvertedIndex index;
  std::vector<FileRecord> records;
  for (FileId id = 1; id <= 50; ++id) {
    records.push_back(Rec(id, static_cast<OwnerId>(id % 5), "shared title"));
  }
  index.InsertCollection(records);
  EXPECT_EQ(index.num_files(), 50u);
  const QueryResult r = index.Query("shared");
  EXPECT_EQ(r.hits.size(), 50u);
  EXPECT_EQ(r.distinct_owners, 5u);
}

TEST(InvertedIndexTest, MemoryAccountingGrowsAndShrinks) {
  InvertedIndex index;
  const std::size_t empty = index.ApproximateMemoryBytes();
  for (FileId id = 1; id <= 100; ++id) {
    index.Insert(Rec(id, 1, "some reasonably long file title " +
                                std::to_string(id)));
  }
  const std::size_t full = index.ApproximateMemoryBytes();
  EXPECT_GT(full, empty + 100 * 40);
  index.EraseOwner(1);
  EXPECT_LT(index.ApproximateMemoryBytes(), full / 2);
}

TEST(InvertedIndexTest, HitsAreSortedByFileId) {
  InvertedIndex index;
  index.Insert(Rec(30, 1, "z"));
  index.Insert(Rec(10, 1, "z"));
  index.Insert(Rec(20, 1, "z"));
  const QueryResult r = index.Query("z");
  ASSERT_EQ(r.hits.size(), 3u);
  EXPECT_EQ(r.hits[0].file, 10u);
  EXPECT_EQ(r.hits[1].file, 20u);
  EXPECT_EQ(r.hits[2].file, 30u);
}

}  // namespace
}  // namespace sppnet
