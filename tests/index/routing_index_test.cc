// Content-aware routing indices (index/routing_index.h): Bloom digest
// soundness (no false negatives, bounded false positives), the
// persistent content realization shared by the simulator and the
// analytical model, and the realized per-edge digest table on both
// sparse and complete topologies. DESIGN.md §13.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/index/routing_index.h"
#include "sppnet/topology/plod.h"
#include "sppnet/topology/topology.h"
#include "sppnet/workload/query_model.h"

namespace sppnet {
namespace {

const QueryModel& Model() {
  static const QueryModel model = QueryModel::Default();
  return model;
}

TEST(BloomDigestTest, NoFalseNegatives) {
  BloomDigest digest(512, 3);
  for (std::uint64_t key = 0; key < 7000; key += 7) digest.Insert(key);
  for (std::uint64_t key = 0; key < 7000; key += 7) {
    EXPECT_TRUE(digest.MaybeContains(key)) << key;
  }
}

TEST(BloomDigestTest, FalsePositiveRateNearEstimate) {
  BloomDigest digest(1024, 3);
  for (std::uint64_t key = 0; key < 60; ++key) digest.Insert(key);
  const double estimate = digest.EstimatedFalsePositiveRate();
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(estimate, 0.10);

  std::size_t positives = 0;
  constexpr std::size_t kProbes = 20000;
  for (std::uint64_t key = 1000; key < 1000 + kProbes; ++key) {
    if (digest.MaybeContains(key)) ++positives;
  }
  const double measured =
      static_cast<double>(positives) / static_cast<double>(kProbes);
  // fill^k is the standard estimate; hold the measurement loosely to it.
  EXPECT_NEAR(measured, estimate, 0.5 * estimate + 0.005);
}

TEST(BloomDigestTest, UnionIsSuperset) {
  BloomDigest a(512, 3);
  BloomDigest b(512, 3);
  for (std::uint64_t key = 0; key < 40; ++key) a.Insert(key);
  for (std::uint64_t key = 100; key < 140; ++key) b.Insert(key);
  a.UnionWith(b);
  for (std::uint64_t key = 0; key < 40; ++key) EXPECT_TRUE(a.MaybeContains(key));
  for (std::uint64_t key = 100; key < 140; ++key) {
    EXPECT_TRUE(a.MaybeContains(key));
  }
  EXPECT_GE(a.FillFraction(), b.FillFraction());
}

TEST(RoutedMatchCountTest, PureFunctionOfArguments) {
  const QueryModel& qm = Model();
  for (std::uint32_t u = 0; u < 8; ++u) {
    for (std::uint32_t c = 0; c < 64; ++c) {
      const std::uint32_t first = RoutedMatchCount(qm, 120.0, 42, u, c);
      const std::uint32_t second = RoutedMatchCount(qm, 120.0, 42, u, c);
      EXPECT_EQ(first, second);
      EXPECT_LE(first, 120u);
    }
  }
}

TEST(RoutedMatchCountTest, SeedChangesRealization) {
  const QueryModel& qm = Model();
  std::size_t differs = 0;
  for (std::uint32_t c = 0; c < 200; ++c) {
    if (RoutedMatchCount(qm, 200.0, 1, 0, c) !=
        RoutedMatchCount(qm, 200.0, 2, 0, c)) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST(RoutedMatchCountTest, TracksExpectedMatchesOverClasses) {
  const QueryModel& qm = Model();
  const double files = 200.0;
  constexpr std::uint32_t kClusters = 64;
  double expected = 0.0;
  double realized = 0.0;
  for (std::uint32_t u = 0; u < kClusters; ++u) {
    for (std::size_t c = 0; c < qm.num_query_classes(); ++c) {
      expected += files * qm.SelectionPower(c);
      realized += RoutedMatchCount(qm, files, 7, u,
                                   static_cast<std::uint32_t>(c));
    }
  }
  // A sum of ~128k independent binomials with mean ~1900: the relative
  // deviation from the mean is a few percent.
  EXPECT_NEAR(realized, expected, 0.1 * expected);
}

/// Advertised query classes of `cluster` (RoutedMatchCount >= 1) among
/// the first `scan` classes.
std::set<std::uint32_t> Advertised(double files, std::uint64_t seed,
                                   std::uint32_t cluster, std::uint32_t scan) {
  std::set<std::uint32_t> out;
  for (std::uint32_t c = 0; c < scan; ++c) {
    if (RoutedMatchCount(Model(), files, seed, cluster, c) >= 1) out.insert(c);
  }
  return out;
}

TEST(RoutingTableTest, SparseDigestsHaveNoFalseNegatives) {
  Rng rng(5);
  const Graph graph = GeneratePlod(24, PlodParams{}, rng);
  const Topology topo = Topology::FromGraph(graph);
  std::vector<double> files(topo.num_nodes(), 60.0);
  RoutingOptions options;
  options.enable = true;
  options.radius = 2;
  const std::uint64_t seed = 99;
  const RoutingTable table =
      BuildRoutingTable(topo, files, Model(), options, seed);
  ASSERT_FALSE(table.is_complete());

  constexpr std::uint32_t kScan = 400;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto nbrs = graph.Neighbors(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const NodeId w = nbrs[e];
      // Radius 2: digest(u -> w) covers w and w's neighbors minus u.
      std::set<std::uint32_t> covered = Advertised(files[w], seed, w, kScan);
      for (const NodeId z : graph.Neighbors(w)) {
        if (z == u) continue;
        const auto adv = Advertised(files[z], seed, z, kScan);
        covered.insert(adv.begin(), adv.end());
      }
      for (const std::uint32_t c : covered) {
        EXPECT_TRUE(table.EdgeMayLead(u, e, c))
            << "edge " << u << "->" << w << " class " << c;
      }
    }
  }
}

TEST(RoutingTableTest, SparseDigestsPruneSomething) {
  Rng rng(5);
  const Graph graph = GeneratePlod(24, PlodParams{}, rng);
  const Topology topo = Topology::FromGraph(graph);
  std::vector<double> files(topo.num_nodes(), 60.0);
  RoutingOptions options;
  options.enable = true;
  const RoutingTable table =
      BuildRoutingTable(topo, files, Model(), options, 99);

  // With ~60 files per cluster only a small fraction of the 2000 query
  // classes is advertised per radius-2 neighborhood: most membership
  // probes must come back negative, or routed strategies prune nothing.
  std::size_t probes = 0;
  std::size_t negatives = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (std::size_t e = 0; e < graph.Degree(u); ++e) {
      for (std::uint32_t c = 0; c < 100; ++c) {
        ++probes;
        if (!table.EdgeMayLead(u, e, c)) ++negatives;
      }
    }
  }
  EXPECT_GT(negatives, probes / 4);
  EXPECT_GT(table.MeanFillFraction(), 0.0);
  EXPECT_LT(table.MeanFillFraction(), 1.0);
  EXPECT_LT(table.MeanFalsePositiveRate(), 0.5);
}

TEST(RoutingTableTest, CompleteTableAdvertisesOwnIndexOnly) {
  const std::size_t n = 16;
  const Topology topo = Topology::Complete(n);
  std::vector<double> files(n, 80.0);
  RoutingOptions options;
  options.enable = true;
  options.radius = 2;  // Effective radius on complete graphs is 1.
  const std::uint64_t seed = 31;
  const RoutingTable table =
      BuildRoutingTable(topo, files, Model(), options, seed);
  ASSERT_TRUE(table.is_complete());
  EXPECT_EQ(table.NumDigests(), n);
  EXPECT_EQ(table.AnnouncesPerRound(), n * (n - 1));

  for (std::uint32_t w = 0; w < n; ++w) {
    for (const std::uint32_t c : Advertised(files[w], seed, w, 400)) {
      EXPECT_TRUE(table.DestMayLead(w, c)) << "dest " << w << " class " << c;
    }
  }
}

TEST(RoutingTableTest, BuildIsDeterministic) {
  Rng rng(8);
  const Graph graph = GeneratePlod(20, PlodParams{}, rng);
  const Topology topo = Topology::FromGraph(graph);
  std::vector<double> files(topo.num_nodes(), 45.0);
  RoutingOptions options;
  options.enable = true;
  const RoutingTable a = BuildRoutingTable(topo, files, Model(), options, 77);
  const RoutingTable b = BuildRoutingTable(topo, files, Model(), options, 77);
  EXPECT_EQ(a.NumDigests(), b.NumDigests());
  EXPECT_EQ(a.MeanFillFraction(), b.MeanFillFraction());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (std::size_t e = 0; e < graph.Degree(u); ++e) {
      for (std::uint32_t c = 0; c < 256; ++c) {
        EXPECT_EQ(a.EdgeMayLead(u, e, c), b.EdgeMayLead(u, e, c));
      }
    }
  }
}

TEST(RoutingOptionsTest, PayloadBytesMatchGeometry) {
  RoutingOptions options;
  options.digest_bits = 512;
  EXPECT_EQ(options.DigestPayloadBytes(), 64u);
  options.digest_bits = 1024;
  EXPECT_EQ(options.DigestPayloadBytes(), 128u);
}

}  // namespace
}  // namespace sppnet
