#include "sppnet/index/corpus.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(TitleCorpusTest, TitlesRespectTermCountBounds) {
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto tokens = InvertedIndex::Tokenize(corpus.SampleTitle(rng));
    EXPECT_GE(tokens.size(), corpus.params().min_title_terms);
    EXPECT_LE(tokens.size(), corpus.params().max_title_terms);
  }
}

TEST(TitleCorpusTest, QueriesRespectTermCountBounds) {
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto tokens = InvertedIndex::Tokenize(corpus.SampleQuery(rng));
    EXPECT_GE(tokens.size(), corpus.params().min_query_terms);
    EXPECT_LE(tokens.size(), corpus.params().max_query_terms);
  }
}

TEST(TitleCorpusTest, VocabularyIsZipfSkewed) {
  // The most popular term should appear in far more titles than a
  // mid-rank term.
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng rng(3);
  int top = 0, mid = 0;
  const std::string& top_term = corpus.Term(0);
  const std::string& mid_term = corpus.Term(500);
  for (int i = 0; i < 20000; ++i) {
    const auto tokens = InvertedIndex::Tokenize(corpus.SampleTitle(rng));
    for (const std::string& token : tokens) {
      if (token == top_term) {
        ++top;
        break;
      }
    }
    for (const std::string& token : tokens) {
      if (token == mid_term) {
        ++mid;
        break;
      }
    }
  }
  EXPECT_GT(top, 20 * std::max(mid, 1));
}

TEST(TitleCorpusTest, SampleCollectionAdvancesIds) {
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng rng(4);
  FileId next = 100;
  const auto records = corpus.SampleCollection(7, 20, &next, rng);
  ASSERT_EQ(records.size(), 20u);
  EXPECT_EQ(next, 120u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, 100 + i);
    EXPECT_EQ(records[i].owner, 7u);
    EXPECT_FALSE(records[i].title.empty());
  }
}

TEST(MeasureCorpusModelTest, ProbabilitiesAreSane) {
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng rng(5);
  const CorpusModelEstimate est =
      MeasureCorpusModel(corpus, 5000, 50, 2000, rng);
  EXPECT_GT(est.match_probability, 0.0);
  EXPECT_LT(est.match_probability, 0.1);
  EXPECT_GE(est.response_probability, 0.0);
  EXPECT_LE(est.response_probability, 1.0);
  // A 50-file collection responding is much likelier than any single
  // file matching.
  EXPECT_GT(est.response_probability, est.match_probability);
  EXPECT_EQ(est.files_sampled, 5000u);
}

TEST(MeasureCorpusModelTest, ResponseProbabilityGrowsWithCollectionSize) {
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng a(6), b(6);
  const auto small = MeasureCorpusModel(corpus, 4000, 20, 1500, a);
  const auto large = MeasureCorpusModel(corpus, 4000, 200, 1500, b);
  EXPECT_LT(small.response_probability, large.response_probability);
}

TEST(QueryModelParamsFromCorpusTest, CalibratesAnalyticalModel) {
  // The analytical QueryModel calibrated from a measured corpus must
  // reproduce the corpus's match probability and imply consistent
  // expected result counts.
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng rng(7);
  const CorpusModelEstimate est =
      MeasureCorpusModel(corpus, 6000, 60, 3000, rng);
  const QueryModel model(QueryModelParamsFromCorpus(est));
  EXPECT_NEAR(model.MatchProbability(), est.match_probability,
              1e-9 * est.match_probability);
  // E[N] for the sampled index size ~ measured hits per query.
  const double expected_hits =
      model.ExpectedResults(static_cast<double>(est.files_sampled));
  EXPECT_NEAR(expected_hits,
              est.match_probability * static_cast<double>(est.files_sampled),
              1e-6 * expected_hits);
}

TEST(MeasureCorpusModelTest, DeterministicForSameSeed) {
  const TitleCorpus corpus = TitleCorpus::Default();
  Rng a(8), b(8);
  const auto ea = MeasureCorpusModel(corpus, 2000, 40, 500, a);
  const auto eb = MeasureCorpusModel(corpus, 2000, 40, 500, b);
  EXPECT_DOUBLE_EQ(ea.match_probability, eb.match_probability);
  EXPECT_DOUBLE_EQ(ea.response_probability, eb.response_probability);
}

}  // namespace
}  // namespace sppnet
