#include "sppnet/obs/metrics.h"

#include <sstream>

#include <gtest/gtest.h>

#include "sppnet/obs/export.h"

namespace sppnet {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndSetMax) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(2.0);  // Lower: no change.
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.SetMax(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(HistogramTest, BucketsByInclusiveUpperBound) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // Bucket 0 (<= 1).
  h.Observe(1.0);   // Bucket 0 (inclusive).
  h.Observe(1.5);   // Bucket 1.
  h.Observe(4.0);   // Bucket 2.
  h.Observe(100.0); // Overflow.
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  EXPECT_DOUBLE_EQ(h.Mean(), h.sum() / 5.0);
}

TEST(HistogramTest, MergeAddsCountsAndSum) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.Observe(0.5);
  b.Observe(1.5);
  b.Observe(9.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 1u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 11.0);
}

TEST(WallTimerTest, AccumulatesSpans) {
  WallTimer t;
  t.Record(0.25);
  t.Record(0.5);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.75);
}

TEST(ScopedTimerTest, RecordsNonNegativeSpan) {
  WallTimer t;
  { ScopedTimer scope(&t); }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.total_seconds(), 0.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("a");
  // Interleave enough registrations to force rebalancing if storage
  // were not node-based.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    registry.GetCounter(name);
  }
  Counter& a_again = registry.GetCounter("a");
  EXPECT_EQ(&a, &a_again);
  a.Increment(5);
  EXPECT_EQ(registry.CounterValue("a"), 5u);
  EXPECT_EQ(registry.CounterValue("missing"), 0u);
}

TEST(MetricsRegistryTest, HistogramReRegistrationReturnsSameInstance) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h", {1.0, 2.0});
  h.Observe(0.5);
  Histogram& again = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.count(), 1u);
}

TEST(MetricsRegistryTest, IterationIsNameOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(MetricsExportTest, JsonIsDeterministicForEqualContents) {
  const auto fill = [](MetricsRegistry& r) {
    r.GetCounter("b").Increment(2);
    r.GetCounter("a").Increment(1);
    r.GetGauge("g").Set(1.25);
    r.GetHistogram("h", {1.0, 2.0}).Observe(1.5);
  };
  MetricsRegistry r1, r2;
  fill(r1);
  fill(r2);
  std::ostringstream s1, s2;
  WriteMetricsJson(s1, r1);
  WriteMetricsJson(s2, r2);
  EXPECT_EQ(s1.str(), s2.str());
  // Spot-check shape.
  EXPECT_NE(s1.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(s1.str().find("\"a\": 1"), std::string::npos);
  EXPECT_NE(s1.str().find("\"bucket_counts\""), std::string::npos);
}

TEST(MetricsExportTest, CsvListsEveryInstrument) {
  MetricsRegistry r;
  r.GetCounter("c").Increment(3);
  r.GetGauge("g").Set(0.5);
  r.GetHistogram("h", {1.0}).Observe(2.0);
  r.GetTimer("t").Record(0.1);
  std::ostringstream os;
  WriteMetricsCsv(os, r);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,value,0.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,le_inf,1"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,count,1"), std::string::npos);
}

}  // namespace
}  // namespace sppnet
