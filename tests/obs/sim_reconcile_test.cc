// ctest-label: threaded
// Reconciliation between the observability layer and the primary
// outputs it shadows: every sim counter published by
// Simulator::PublishMetrics must agree with the corresponding
// SimReport field, and the trial-runner counter must be bit-identical
// across parallelism settings. This is the guard that keeps the
// metrics registry an *observation* of the protocol rather than a
// second, driftable implementation of its bookkeeping.

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/model/trials.h"
#include "sppnet/obs/export.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/simulator.h"
#include "sppnet/sim/stream.h"

namespace sppnet {
namespace {

struct SimSetup {
  Configuration config;
  ModelInputs inputs = ModelInputs::Default();
  NetworkInstance instance;
};

SimSetup MakeSetup(std::uint64_t instance_seed) {
  SimSetup s;
  s.config.graph_size = 300;
  s.config.cluster_size = 10;
  s.config.ttl = 4;
  s.config.avg_outdegree = 4.0;
  Rng rng(instance_seed);
  s.instance = GenerateInstance(s.config, s.inputs, rng);
  return s;
}

SimReport RunWithMetrics(const SimSetup& s, SimOptions options,
                         MetricsRegistry& metrics) {
  options.metrics = &metrics;
  Simulator sim(s.instance, s.config, s.inputs, options);
  return sim.Run();
}

TEST(SimReconcileTest, ReliabilityRunCountersMatchReport) {
  const SimSetup s = MakeSetup(11);
  SimOptions options;
  options.duration_seconds = 120.0;
  options.warmup_seconds = 10.0;
  options.seed = 5;
  options.churn.enable = true;
  options.churn.partner_recovery_seconds = 20.0;

  MetricsRegistry m;
  const SimReport report = RunWithMetrics(s, options, m);

  // Churn actually happened — otherwise the test proves nothing.
  ASSERT_GT(report.partner_failures, 0u);
  ASSERT_GT(report.cluster_outages, 0u);

  EXPECT_EQ(m.CounterValue("sim.churn.partner_failures"),
            report.partner_failures);
  EXPECT_EQ(m.CounterValue("sim.churn.cluster_outages"),
            report.cluster_outages);
  EXPECT_EQ(m.CounterValue("sim.queries.submitted"),
            report.queries_submitted);
  EXPECT_EQ(m.CounterValue("sim.responses.delivered"),
            report.responses_delivered);
  EXPECT_EQ(m.CounterValue("sim.queries.duplicate"),
            report.duplicate_queries);
  EXPECT_EQ(m.CounterValue("sim.cache.hits"), report.cache_hits);

  // Every recovery follows a failure within the same run; at most the
  // tail failures can still be pending when the clock stops.
  EXPECT_LE(m.CounterValue("sim.churn.partner_recoveries"),
            m.CounterValue("sim.churn.partner_failures"));

  // Join traffic (client re-uploads on recovery) exists in churn mode.
  EXPECT_GT(m.CounterValue("sim.msg.join.sent"), 0u);
  EXPECT_GT(m.CounterValue("sim.events.dispatched"), 0u);
  EXPECT_GT(m.GaugeValue("sim.event_queue.depth_hwm"), 0.0);

  // Event-queue totals are reconciled 1:1 with the report's whole-run
  // fields; every dispatched event was scheduled first.
  ASSERT_GT(report.events_scheduled, 0u);
  ASSERT_GT(report.events_dispatched, 0u);
  ASSERT_GT(report.queue_depth_hwm, 0u);
  EXPECT_EQ(m.CounterValue("sim.queue.scheduled"), report.events_scheduled);
  EXPECT_EQ(m.CounterValue("sim.events.dispatched"),
            report.events_dispatched);
  EXPECT_EQ(m.GaugeValue("sim.event_queue.depth_hwm"),
            static_cast<double>(report.queue_depth_hwm));
  EXPECT_LE(report.events_dispatched, report.events_scheduled);
  EXPECT_LE(report.queue_depth_hwm, report.events_scheduled);

  // Per-query state instruments observed real protocol activity.
  EXPECT_GT(m.CounterValue("sim.state.duplicate_entries"), 0u);
  EXPECT_GT(m.GaugeValue("sim.state.scratch_bytes"), 0.0);
}

TEST(SimReconcileTest, ChurnRecoveriesCounterMatchesReport) {
  const SimSetup s = MakeSetup(16);
  SimOptions options;
  options.duration_seconds = 150.0;
  options.warmup_seconds = 10.0;
  options.seed = 4;
  options.churn.enable = true;
  options.churn.partner_recovery_seconds = 15.0;

  MetricsRegistry m;
  const SimReport report = RunWithMetrics(s, options, m);

  // partner_failures / partner_recoveries are 1:1 between the report
  // and the registry — the reconciliation the fault layer also relies
  // on when it reuses the churn bookkeeping.
  ASSERT_GT(report.partner_recoveries, 0u);
  EXPECT_EQ(m.CounterValue("sim.churn.partner_failures"),
            report.partner_failures);
  EXPECT_EQ(m.CounterValue("sim.churn.partner_recoveries"),
            report.partner_recoveries);
  EXPECT_LE(report.partner_recoveries, report.partner_failures);
}

TEST(SimReconcileTest, FaultRunCountersMatchReport) {
  const SimSetup s = MakeSetup(17);
  SimOptions options;
  options.duration_seconds = 200.0;
  options.warmup_seconds = 10.0;
  options.seed = 3;
  options.faults.crash_rate_per_partner = 8.0e-3;
  options.faults.crash_recovery_seconds = 20.0;
  options.faults.message_drop_probability = 0.01;
  options.faults.max_delay_jitter_seconds = 0.05;
  options.faults.request_timeout_seconds = 2.0;

  MetricsRegistry m;
  const SimReport report = RunWithMetrics(s, options, m);

  // Faults actually happened — otherwise the test proves nothing.
  ASSERT_GT(report.faults_crashes, 0u);
  ASSERT_GT(report.faults_messages_dropped, 0u);
  ASSERT_GT(report.queries_succeeded, 0u);

  EXPECT_EQ(m.CounterValue("sim.faults.crashes"), report.faults_crashes);
  EXPECT_EQ(m.CounterValue("sim.faults.messages_dropped"),
            report.faults_messages_dropped);
  EXPECT_EQ(m.CounterValue("sim.faults.request_timeouts"),
            report.faults_request_timeouts);
  EXPECT_EQ(m.CounterValue("sim.faults.retries"), report.faults_retries);
  EXPECT_EQ(m.CounterValue("sim.faults.failover_episodes"),
            report.faults_failover_episodes);
  EXPECT_EQ(m.CounterValue("sim.faults.client_rejoins"),
            report.faults_client_rejoins);
  EXPECT_EQ(m.CounterValue("sim.faults.queries.succeeded"),
            report.queries_succeeded);
  EXPECT_EQ(m.CounterValue("sim.faults.queries.failed"),
            report.queries_failed);
  // Crash-driven failures flow through the shared churn bookkeeping.
  EXPECT_EQ(m.CounterValue("sim.churn.partner_failures"),
            report.partner_failures);
  EXPECT_EQ(m.CounterValue("sim.churn.partner_recoveries"),
            report.partner_recoveries);

  // The recovery-latency histogram observes completed recovery
  // episodes; its mean is the report's summary statistic.
  const auto& histograms = m.histograms();
  const auto it = histograms.find("sim.faults.recovery_latency_seconds");
  ASSERT_NE(it, histograms.end());
  if (it->second.count() > 0) {
    EXPECT_NEAR(it->second.Mean(), report.mean_recovery_latency_seconds,
                1e-12);
  }
}

TEST(SimReconcileTest, CacheRunHitCounterMatchesReport) {
  const SimSetup s = MakeSetup(12);
  SimOptions options;
  options.duration_seconds = 120.0;
  options.warmup_seconds = 10.0;
  options.seed = 6;
  options.result_cache_ttl_seconds = 30.0;

  MetricsRegistry m;
  const SimReport report = RunWithMetrics(s, options, m);

  ASSERT_GT(report.cache_hits, 0u);
  EXPECT_EQ(m.CounterValue("sim.cache.hits"), report.cache_hits);
  // Hits and misses partition the measured submissions.
  EXPECT_EQ(m.CounterValue("sim.cache.hits") +
                m.CounterValue("sim.cache.misses"),
            report.queries_submitted);
}

TEST(SimReconcileTest, HopHistogramMatchesReportMoments) {
  const SimSetup s = MakeSetup(13);
  SimOptions options;
  options.duration_seconds = 60.0;
  options.warmup_seconds = 10.0;
  options.seed = 7;

  MetricsRegistry m;
  const SimReport report = RunWithMetrics(s, options, m);
  ASSERT_GT(report.responses_delivered, 0u);

  const auto& histograms = m.histograms();
  const auto it = histograms.find("sim.response.hops");
  ASSERT_NE(it, histograms.end());
  const Histogram& hops = it->second;
  EXPECT_EQ(hops.count(), report.responses_delivered);
  EXPECT_NEAR(hops.Mean(), report.mean_response_hops, 1e-12);
}

TEST(SimReconcileTest, CountersBitIdenticalAcrossRepeatedRuns) {
  const SimSetup s = MakeSetup(14);
  SimOptions options;
  options.duration_seconds = 90.0;
  options.warmup_seconds = 10.0;
  options.seed = 8;
  options.churn.enable = true;

  MetricsRegistry first, second;
  RunWithMetrics(s, options, first);
  RunWithMetrics(s, options, second);

  // Counters, the gauge and the histogram are all deterministic, so
  // the deterministic sections of the export must match byte for byte.
  // The simulator additionally publishes wall-clock phase timers
  // (sim.time.*) — present in both registries but excluded from the
  // comparison, which is exactly what WriteDeterministicMetricsJson is
  // for.
  ASSERT_NE(first.timers().find("sim.time.run_seconds"),
            first.timers().end());
  ASSERT_NE(first.timers().find("sim.time.init_seconds"),
            first.timers().end());
  std::ostringstream a, b;
  WriteDeterministicMetricsJson(a, first);
  WriteDeterministicMetricsJson(b, second);
  EXPECT_EQ(a.str(), b.str());
}

TEST(SimReconcileTest, SharedRegistryAccumulatesAcrossRuns) {
  const SimSetup s = MakeSetup(15);
  SimOptions options;
  options.duration_seconds = 60.0;
  options.warmup_seconds = 10.0;
  options.seed = 9;

  MetricsRegistry once, twice;
  const SimReport r1 = RunWithMetrics(s, options, once);
  RunWithMetrics(s, options, twice);
  RunWithMetrics(s, options, twice);
  EXPECT_EQ(twice.CounterValue("sim.queries.submitted"),
            2 * r1.queries_submitted);
  const auto it = twice.histograms().find("sim.response.hops");
  ASSERT_NE(it, twice.histograms().end());
  EXPECT_EQ(it->second.count(), 2 * r1.responses_delivered);
}

TEST(SimReconcileTest, AdaptiveRunCountersMatchReport) {
  // The Section 5.3 bad topology, so every adaptation rule fires.
  SimSetup s;
  s.config.graph_size = 400;
  s.config.cluster_size = 4;
  s.config.ttl = 5;
  s.config.avg_outdegree = 3.1;
  Rng rng(25);
  s.instance = GenerateInstance(s.config, s.inputs, rng);

  SimOptions options;
  options.duration_seconds = 300.0;
  options.warmup_seconds = 200.0;
  options.seed = 34;
  options.adaptive.probe_interval_seconds = 2.0;
  options.adaptive.decision_interval_seconds = 10.0;
  options.adaptive.policy.max_bandwidth_bps = 1.0e7;
  options.adaptive.policy.max_proc_hz = 2.0e6;

  MetricsRegistry m;
  const SimReport report = RunWithMetrics(s, options, m);

  // Adaptation actually happened — otherwise the test proves nothing.
  ASSERT_GT(report.adapt_rounds, 0u);
  ASSERT_GT(report.adapt_coalesces, 0u);
  ASSERT_GT(report.adapt_probes_sent, 0u);

  // Every sim.adaptive.* instrument is reconciled 1:1 with its
  // SimReport field.
  EXPECT_EQ(m.CounterValue("sim.adaptive.rounds"), report.adapt_rounds);
  EXPECT_EQ(m.CounterValue("sim.adaptive.splits"), report.adapt_splits);
  EXPECT_EQ(m.CounterValue("sim.adaptive.coalesces"),
            report.adapt_coalesces);
  EXPECT_EQ(m.CounterValue("sim.adaptive.edges_added"),
            report.adapt_edges_added);
  EXPECT_EQ(m.CounterValue("sim.adaptive.ttl_decreases"),
            report.adapt_ttl_decreases);
  EXPECT_EQ(m.CounterValue("sim.adaptive.probes_sent"),
            report.adapt_probes_sent);
  EXPECT_EQ(m.CounterValue("sim.adaptive.reports_received"),
            report.adapt_reports_received);
  EXPECT_EQ(m.CounterValue("sim.adaptive.client_moves"),
            report.adapt_client_moves);
  EXPECT_EQ(m.GaugeValue("sim.adaptive.converged"),
            report.adapt_converged ? 1.0 : 0.0);
  EXPECT_EQ(m.GaugeValue("sim.adaptive.converged_round"),
            static_cast<double>(report.adapt_converged_round));
  EXPECT_EQ(m.GaugeValue("sim.adaptive.final_clusters"),
            static_cast<double>(report.final_clusters));
  EXPECT_EQ(m.GaugeValue("sim.adaptive.final_ttl"),
            static_cast<double>(report.final_ttl));

  // The adaptation message classes are published and saw measured-
  // window traffic. (They are NOT equal to the adapt_* tallies: the
  // msg counters cover the measurement window only, while the
  // adaptation trajectory mostly runs during warmup.)
  EXPECT_GT(m.CounterValue("sim.msg.probe.sent"), 0u);
  EXPECT_GT(m.CounterValue("sim.msg.probe.received"), 0u);
  EXPECT_GT(m.CounterValue("sim.msg.report.sent"), 0u);
  EXPECT_GT(m.CounterValue("sim.msg.report.received"), 0u);
}

// --- Windowed-snapshot reconciliation (the streaming serving layer) ---
//
// The property that makes windowed deltas trustworthy as a serving
// surface: for EVERY published sim.* counter, the sum of the per-window
// increments over a streamed run equals the end-of-run cumulative value
// exactly — no window double-counts, drops or resets a single
// increment, on any strategy and with any combination of churn, faults
// and in-sim adaptation active.

struct WindowedScenario {
  const char* name;
  SearchStrategy strategy = SearchStrategy::kFlood;
  bool churn = false;
  bool faults = false;
  bool adaptive = false;
};

TEST(SimReconcileTest, WindowedDeltasSumToEndOfRunTotals) {
  const WindowedScenario scenarios[] = {
      {"flood_churn_faults", SearchStrategy::kFlood, true, true, false},
      {"flood_adaptive", SearchStrategy::kFlood, false, false, true},
      {"ring_churn", SearchStrategy::kExpandingRing, true, false, false},
      {"ring_faults", SearchStrategy::kExpandingRing, false, true, false},
      {"walk_churn_faults", SearchStrategy::kRandomWalk, true, true, false},
      {"walk_plain", SearchStrategy::kRandomWalk, false, false, false},
  };
  for (const WindowedScenario& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    SimSetup s;
    s.config.graph_size = 300;
    s.config.cluster_size = sc.adaptive ? 4.0 : 10.0;
    s.config.redundancy = sc.faults;
    s.config.ttl = 4;
    s.config.avg_outdegree = sc.adaptive ? 3.1 : 4.0;
    Rng rng(61);
    s.instance = GenerateInstance(s.config, s.inputs, rng);

    SimOptions options;
    options.seed = 29;
    options.duration_seconds = 36.0;
    options.warmup_seconds = 12.0;
    options.strategy = sc.strategy;
    if (sc.strategy == SearchStrategy::kExpandingRing) {
      options.ring_satisfaction_results = 30;
    }
    if (sc.strategy == SearchStrategy::kRandomWalk) {
      options.num_walkers = 8;
      options.walk_ttl = 32;
    }
    if (sc.churn) {
      options.churn.enable = true;
      options.churn.partner_recovery_seconds = 20.0;
    }
    if (sc.faults) {
      options.faults.crash_rate_per_partner = 4e-3;
      options.faults.crash_recovery_seconds = 15.0;
      options.faults.message_drop_probability = 0.01;
      options.faults.max_delay_jitter_seconds = 0.05;
      options.faults.request_timeout_seconds = 2.0;
      options.faults.max_retries = 3;
    }
    if (sc.adaptive) {
      options.adaptive.probe_interval_seconds = 2.0;
      options.adaptive.decision_interval_seconds = 10.0;
      options.adaptive.policy.max_bandwidth_bps = 1.0e7;
      options.adaptive.policy.max_proc_hz = 2.0e6;
    }
    MetricsRegistry final_metrics;
    options.metrics = &final_metrics;

    StreamOptions stream;
    stream.window_seconds = 6.0;
    StreamDriver driver(s.instance, s.config, s.inputs, options, stream);
    std::map<std::string, std::uint64_t> summed;
    for (int w = 0; w < 8; ++w) {
      const StreamSnapshot snap = driver.AdvanceWindow();
      for (const auto& [name, delta] : snap.counter_deltas) {
        summed[name] += delta;
      }
    }
    driver.Finish();

    // Every counter of the final publish is covered by the windows, and
    // nothing else was ever emitted. (CounterValues is name-ordered,
    // summed is a name-ordered map: compare wholesale.)
    const auto final_values = final_metrics.CounterValues();
    ASSERT_GT(final_values.size(), 0u);
    EXPECT_TRUE(std::equal(final_values.begin(), final_values.end(),
                           summed.begin(), summed.end()))
        << "windowed deltas disagree with the end-of-run totals";
    // Spot-check the headline instruments by name, for a readable
    // failure when the wholesale comparison ever trips.
    EXPECT_EQ(summed["sim.queries.submitted"],
              final_metrics.CounterValue("sim.queries.submitted"));
    EXPECT_EQ(summed["sim.events.dispatched"],
              final_metrics.CounterValue("sim.events.dispatched"));
    ASSERT_GT(summed["sim.queries.submitted"], 0u);
  }
}

TEST(TrialMetricsTest, CompletedCounterIdenticalAcrossParallelism) {
  Configuration config;
  config.graph_size = 500;
  config.cluster_size = 20;
  config.ttl = 4;
  config.avg_outdegree = 3.1;
  config.graph_type = GraphType::kPowerLaw;
  const ModelInputs inputs = ModelInputs::Default();

  std::vector<std::uint64_t> completed;
  for (const std::size_t parallelism : {1u, 2u, 8u}) {
    TrialOptions options;
    options.num_trials = 6;
    options.seed = 99;
    options.parallelism = parallelism;
    MetricsRegistry m;
    options.metrics = &m;
    RunTrials(config, inputs, options);
    completed.push_back(m.CounterValue("trials.completed"));
    // Wall-clock phase timers recorded one span per trial.
    const auto& timers = m.timers();
    const auto gen = timers.find("trials.generate");
    const auto eval = timers.find("trials.evaluate");
    ASSERT_NE(gen, timers.end());
    ASSERT_NE(eval, timers.end());
    EXPECT_EQ(gen->second.count(), options.num_trials);
    EXPECT_EQ(eval->second.count(), options.num_trials);
    EXPECT_GE(gen->second.total_seconds(), 0.0);
  }
  EXPECT_EQ(completed[0], 6u);
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(completed[0], completed[2]);
}

}  // namespace
}  // namespace sppnet
