// Model-validation integration test: the discrete-event simulator and
// the analytical mean-value engine must agree on per-class loads,
// result counts and path lengths (the sim_validation experiment in
// DESIGN.md). Agreement within ~15% over a few hundred simulated
// seconds validates both the closed-form accounting and the protocol
// implementation against each other.

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/model/capacity_plane.h"
#include "sppnet/model/consistency.h"
#include "sppnet/model/evaluator.h"
#include "sppnet/model/routing.h"
#include "sppnet/sim/simulator.h"
#include "sppnet/workload/capacity.h"

namespace sppnet {
namespace {

struct Scenario {
  std::size_t graph_size;
  double cluster_size;
  bool redundancy;
  int ttl;
  double outdegree;
};

class SimVsModelTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SimVsModelTest, LoadsAgree) {
  const Scenario s = GetParam();
  const ModelInputs inputs = ModelInputs::Default();
  Configuration c;
  c.graph_size = s.graph_size;
  c.cluster_size = s.cluster_size;
  c.redundancy = s.redundancy;
  c.ttl = s.ttl;
  c.avg_outdegree = s.outdegree;

  Rng rng(17);
  const NetworkInstance inst = GenerateInstance(c, inputs, rng);
  const InstanceLoads analytic = EvaluateInstance(inst, c, inputs);

  SimOptions options;
  options.duration_seconds = 500;
  options.warmup_seconds = 50;
  options.seed = 23;
  Simulator sim(inst, c, inputs, options);
  const SimReport measured = sim.Run();

  const LoadVector sp_model = InstanceLoads::MeanOf(analytic.partner_load);
  const LoadVector sp_sim = InstanceLoads::MeanOf(measured.partner_load);

  EXPECT_NEAR(sp_sim.in_bps, sp_model.in_bps, 0.15 * sp_model.in_bps);
  EXPECT_NEAR(sp_sim.out_bps, sp_model.out_bps, 0.15 * sp_model.out_bps);
  EXPECT_NEAR(sp_sim.proc_hz, sp_model.proc_hz, 0.15 * sp_model.proc_hz);
  EXPECT_NEAR(measured.aggregate.TotalBps(), analytic.aggregate.TotalBps(),
              0.15 * analytic.aggregate.TotalBps());
  EXPECT_NEAR(measured.mean_results_per_query, analytic.mean_results,
              0.2 * analytic.mean_results);
  EXPECT_NEAR(measured.mean_response_hops, analytic.mean_epl,
              0.2 * analytic.mean_epl + 0.1);

  if (!inst.client_files.empty()) {
    // Client outgoing traffic is dominated by join uploads, whose rate
    // is driven by the rare (large-library, short-session) tail — a few
    // hundred simulated seconds only see a handful of those events, so
    // the client-side tolerance is wider than the super-peer one.
    const LoadVector cl_model = InstanceLoads::MeanOf(analytic.client_load);
    const LoadVector cl_sim = InstanceLoads::MeanOf(measured.client_load);
    EXPECT_NEAR(cl_sim.out_bps, cl_model.out_bps, 0.30 * cl_model.out_bps);
    EXPECT_NEAR(cl_sim.in_bps, cl_model.in_bps, 0.25 * cl_model.in_bps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SimVsModelTest,
    ::testing::Values(
        Scenario{400, 10.0, false, 4, 4.0},   // Paper-like defaults, small.
        Scenario{400, 10.0, true, 4, 4.0},    // With 2-redundancy.
        Scenario{200, 1.0, false, 3, 3.1},    // Pure P2P degenerate case.
        Scenario{300, 20.0, false, 7, 3.1},   // Deep TTL, Gnutella degree.
        Scenario{400, 20.0, false, 2, 10.0}   // Short TTL, high degree.
        ));

// --- Content-aware routing (ISSUE 8): routed strategies vs the routed
// query-plane model. The model replays the exact flood evaluator's
// aggregate corrected by a common-random-numbers strategy delta over the
// SAME realized content (RoutedMatchCount is a pure function of
// instance + seed shared by both engines) plus the digest control
// plane, so the 15% cross-validation band of the flood suite carries
// over to every routed strategy.

struct RoutedScenario {
  SearchStrategy strategy;
  GraphType graph_type;
  std::size_t graph_size;
  double cluster_size;
  int ttl;
  double outdegree;
};

class RoutedSimVsModelTest : public ::testing::TestWithParam<RoutedScenario> {};

TEST_P(RoutedSimVsModelTest, RoutedLoadsAgree) {
  const RoutedScenario s = GetParam();
  const ModelInputs inputs = ModelInputs::Default();
  Configuration c;
  c.graph_type = s.graph_type;
  c.graph_size = s.graph_size;
  c.cluster_size = s.cluster_size;
  c.ttl = s.ttl;
  c.avg_outdegree = s.outdegree;

  Rng rng(17);
  const NetworkInstance inst = GenerateInstance(c, inputs, rng);
  const InstanceLoads analytic = EvaluateInstance(inst, c, inputs);

  SimOptions options;
  options.duration_seconds = 500;
  options.warmup_seconds = 50;
  options.seed = 23;
  options.strategy = s.strategy;
  options.routing.enable = true;
  options.num_walkers = 8;
  options.walk_ttl = 16;
  options.ring_satisfaction_results = 10;
  Simulator sim(inst, c, inputs, options);
  const SimReport measured = sim.Run();

  RoutingEvalOptions model_options;
  switch (s.strategy) {
    case SearchStrategy::kRoutedFlood:
      model_options.strategy = RoutedModelStrategy::kRoutedFlood;
      break;
    case SearchStrategy::kWalker:
      model_options.strategy = RoutedModelStrategy::kWalker;
      break;
    case SearchStrategy::kExpandingRing:
      model_options.strategy = RoutedModelStrategy::kExpandingRing;
      break;
    default:
      FAIL() << "not a routed scenario strategy";
  }
  model_options.routing = options.routing;
  model_options.seed = options.seed;
  model_options.num_walkers = options.num_walkers;
  model_options.walk_ttl = options.walk_ttl;
  model_options.ring_satisfaction_results = options.ring_satisfaction_results;
  model_options.classes_per_source = 96;
  const RoutingModelReport routed =
      EvaluateRoutedQueryPlane(inst, c, inputs, model_options);
  const LoadVector composed = routed.ComposeAggregate(analytic.aggregate);

  EXPECT_NEAR(measured.aggregate.TotalBps(), composed.TotalBps(),
              0.15 * composed.TotalBps());
  EXPECT_NEAR(measured.aggregate.proc_hz, composed.proc_hz,
              0.15 * composed.proc_hz);
  EXPECT_NEAR(measured.mean_results_per_query, routed.routed.mean_results,
              0.2 * routed.routed.mean_results + 0.05);

  // The routed strategies exist to prune: the digest layer must have
  // been consulted, and the sim's realized content must have produced
  // results somewhere (the persistent realization is shared, so the
  // model sees the same network).
  if (s.strategy == SearchStrategy::kWalker) {
    EXPECT_GT(measured.routing_biased_hops, 0u);
  } else {
    EXPECT_GT(measured.routing_suppressed_forwards, 0u);
  }
  EXPECT_GT(measured.routing_digest_refreshes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RoutedScenarios, RoutedSimVsModelTest,
    ::testing::Values(
        // Content-pruned flood over the Gnutella-like overlay.
        RoutedScenario{SearchStrategy::kRoutedFlood, GraphType::kPowerLaw, 400,
                       10.0, 4, 4.0},
        // Content-pruned flood over the strongly connected best case.
        RoutedScenario{SearchStrategy::kRoutedFlood,
                       GraphType::kStronglyConnected, 400, 10.0, 2, 4.0},
        // Digest-biased k-walker (complete topologies only; the model's
        // mean-field occupancy needs the all-pairs symmetry).
        RoutedScenario{SearchStrategy::kWalker, GraphType::kStronglyConnected,
                       400, 10.0, 2, 4.0},
        // Routed expanding ring: digest pruning on the refinement waves.
        RoutedScenario{SearchStrategy::kExpandingRing, GraphType::kPowerLaw,
                       400, 10.0, 5, 4.0}));

// --- Index consistency (ISSUE 9): the simulator's event-driven
// staleness bookkeeping vs the closed-form consistency plane
// (model/consistency.h). Both engines price the same maintenance
// protocol from CostTable, so stale-hit rate and maintenance
// bandwidth must agree within the 15% cross-validation band (small
// absolute epsilons absorb finite-run noise near zero).

struct ConsistencyScenario {
  ConsistencyScheme scheme;
  double change_rate;
  double ttr_seconds;
};

class ConsistencySimVsModelTest
    : public ::testing::TestWithParam<ConsistencyScenario> {};

TEST_P(ConsistencySimVsModelTest, StalenessAndMaintenanceAgree) {
  const ConsistencyScenario s = GetParam();
  const ModelInputs inputs = ModelInputs::Default();
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 10.0;
  c.ttl = 4;
  c.avg_outdegree = 4.0;

  Rng rng(17);
  const NetworkInstance inst = GenerateInstance(c, inputs, rng);

  SimOptions options;
  options.duration_seconds = 500;
  options.warmup_seconds = 50;
  options.seed = 23;
  options.consistency.change_rate_per_client = s.change_rate;
  options.consistency.scheme = s.scheme;
  options.consistency.ttr_seconds = s.ttr_seconds;
  Simulator sim(inst, c, inputs, options);
  const SimReport measured = sim.Run();

  ConsistencyEvalOptions eval;
  eval.plan = options.consistency;
  eval.hop_latency_seconds = options.hop_latency_seconds;
  eval.warmup_seconds = options.warmup_seconds;
  eval.duration_seconds = options.duration_seconds;
  const ConsistencyModelReport model =
      EvaluateConsistencyPlane(inst, c, inputs, eval);

  EXPECT_NEAR(measured.consistency_stale_hit_rate, model.stale_hit_rate,
              0.15 * model.stale_hit_rate + 0.01);
  EXPECT_NEAR(measured.consistency_maintenance_bytes_per_sec,
              model.maintenance_bytes_per_sec,
              0.15 * model.maintenance_bytes_per_sec + 1.0);

  const double t = options.duration_seconds - options.warmup_seconds;
  if (s.scheme == ConsistencyScheme::kPushInvalidate) {
    EXPECT_NEAR(static_cast<double>(measured.consistency_invalidations) / t,
                model.invalidations_per_sec,
                0.15 * model.invalidations_per_sec);
  }
  if (s.scheme == ConsistencyScheme::kPullTtr) {
    EXPECT_NEAR(static_cast<double>(measured.consistency_polls) / t,
                model.polls_per_sec, 0.15 * model.polls_per_sec);
    // Mean freshness latency tracks the model's staleness window.
    EXPECT_NEAR(measured.consistency_mean_freshness_seconds,
                model.mean_staleness_seconds,
                0.15 * model.mean_staleness_seconds + 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConsistencyScenarios, ConsistencySimVsModelTest,
    ::testing::Values(
        // Push-invalidation at a moderate mutation rate.
        ConsistencyScenario{ConsistencyScheme::kPushInvalidate, 0.05, 60.0},
        // Pull at a tight and a loose TTR (traffic is rate-independent).
        ConsistencyScenario{ConsistencyScheme::kPullTtr, 0.05, 30.0},
        ConsistencyScenario{ConsistencyScheme::kPullTtr, 0.02, 120.0},
        // No maintenance: staleness accumulates from t = 0.
        ConsistencyScenario{ConsistencyScheme::kNone, 0.01, 60.0}));

// --- Heterogeneous capacities (ISSUE 10): the simulator's windowed
// utilization bookkeeping vs the analytical capacity plane
// (model/capacity_plane.h). Both sides sample the SAME per-node
// capacities (SampleNodeCapacities on the plan's salted stream), so
// the comparison isolates the load accounting: sim utilization is
// windowed traffic over capacity, model utilization is the mean-value
// steady-state load over the same capacity.

// The simulator's histogram buckets (sim.capacity.sp_utilization);
// its p99 is a bucket upper bound, so the model's exact p99 is
// compared after quantizing to the same grid.
std::vector<double> SimUtilizationBounds() {
  return {0.0625, 0.125, 0.25, 0.5, 0.75, 1.0,  1.25, 1.5,
          2.0,    3.0,   4.0,  6.0, 8.0,  12.0, 16.0};
}

std::size_t BucketOf(double value, const std::vector<double>& bounds) {
  std::size_t b = 0;
  while (b < bounds.size() && value > bounds[b]) ++b;
  return b;
}

TEST(CapacitySimVsModelTest, UtilizationPlanesAgree) {
  const ModelInputs inputs = ModelInputs::Default();
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 10.0;
  c.ttl = 4;
  c.avg_outdegree = 4.0;

  Rng rng(17);
  const NetworkInstance inst = GenerateInstance(c, inputs, rng);
  const InstanceLoads analytic = EvaluateInstance(inst, c, inputs);

  SimOptions options;
  options.duration_seconds = 500;
  options.warmup_seconds = 50;
  options.seed = 23;
  options.capacity.enable = true;
  Simulator sim(inst, c, inputs, options);
  const SimReport measured = sim.Run();
  ASSERT_GT(measured.capacity_windows, 0u);

  Rng cap_rng = Rng::Salted(options.seed, CapacityPlan::kStreamSalt);
  const std::vector<PeerCapacity> caps = SampleNodeCapacities(
      options.capacity.distribution, cap_rng,
      inst.TotalPartners() + inst.TotalClients());
  const CapacityPlaneReport model = EvaluateCapacityPlane(
      analytic, caps, options.capacity.overload_utilization,
      ElectionPolicy::kBlind);

  EXPECT_NEAR(measured.capacity_mean_utilization, model.mean_utilization,
              0.15 * model.mean_utilization + 0.005);
  EXPECT_NEAR(measured.capacity_sp_mean_utilization,
              model.sp_mean_utilization, 0.15 * model.sp_mean_utilization);
  // Overload is a threshold crossing: nodes sitting near the line flip
  // between windows, so the fraction gets a small absolute epsilon on
  // top of the relative band.
  EXPECT_NEAR(measured.capacity_overloaded_fraction,
              model.overloaded_fraction,
              0.15 * model.overloaded_fraction + 0.02);
  EXPECT_NEAR(measured.capacity_sp_overloaded_fraction,
              model.sp_overloaded_fraction,
              0.15 * model.sp_overloaded_fraction + 0.02);
  // p99: the sim reports a bucket upper bound; the exact model value
  // must land in the same or an adjacent bucket of the same grid.
  const std::vector<double> bounds = SimUtilizationBounds();
  const std::size_t sim_bucket =
      BucketOf(measured.capacity_sp_p99_utilization, bounds);
  const std::size_t model_bucket =
      BucketOf(model.sp_p99_utilization, bounds);
  EXPECT_LE(sim_bucket > model_bucket ? sim_bucket - model_bucket
                                      : model_bucket - sim_bucket,
            1u)
      << "sim p99 " << measured.capacity_sp_p99_utilization << " vs model p99 "
      << model.sp_p99_utilization;
}

TEST(CapacityPlaneTest, AwareElectionDominatesBlindOnTheSpCut) {
  // The paper's Section 5.2 claim in plane form: handing the head role
  // to the most capable peers cannot make the super-peer cut worse.
  const ModelInputs inputs = ModelInputs::Default();
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 10.0;
  c.ttl = 4;
  c.avg_outdegree = 4.0;
  Rng rng(17);
  const NetworkInstance inst = GenerateInstance(c, inputs, rng);
  const InstanceLoads analytic = EvaluateInstance(inst, c, inputs);
  Rng cap_rng(29);
  const std::vector<PeerCapacity> caps =
      SampleNodeCapacities(CapacityDistribution::Default(), cap_rng,
                           inst.TotalPartners() + inst.TotalClients());
  const CapacityPlaneReport blind =
      EvaluateCapacityPlane(analytic, caps, 1.0, ElectionPolicy::kBlind);
  const CapacityPlaneReport aware =
      EvaluateCapacityPlane(analytic, caps, 1.0, ElectionPolicy::kAware);
  EXPECT_LE(aware.sp_overloaded_fraction, blind.sp_overloaded_fraction);
  EXPECT_LE(aware.sp_mean_utilization, blind.sp_mean_utilization);
  EXPECT_GE(aware.achievable_scale, blind.achievable_scale);
}

}  // namespace
}  // namespace sppnet
