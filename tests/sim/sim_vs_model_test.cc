// Model-validation integration test: the discrete-event simulator and
// the analytical mean-value engine must agree on per-class loads,
// result counts and path lengths (the sim_validation experiment in
// DESIGN.md). Agreement within ~15% over a few hundred simulated
// seconds validates both the closed-form accounting and the protocol
// implementation against each other.

#include <tuple>

#include <gtest/gtest.h>

#include "sppnet/model/evaluator.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

struct Scenario {
  std::size_t graph_size;
  double cluster_size;
  bool redundancy;
  int ttl;
  double outdegree;
};

class SimVsModelTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SimVsModelTest, LoadsAgree) {
  const Scenario s = GetParam();
  const ModelInputs inputs = ModelInputs::Default();
  Configuration c;
  c.graph_size = s.graph_size;
  c.cluster_size = s.cluster_size;
  c.redundancy = s.redundancy;
  c.ttl = s.ttl;
  c.avg_outdegree = s.outdegree;

  Rng rng(17);
  const NetworkInstance inst = GenerateInstance(c, inputs, rng);
  const InstanceLoads analytic = EvaluateInstance(inst, c, inputs);

  SimOptions options;
  options.duration_seconds = 500;
  options.warmup_seconds = 50;
  options.seed = 23;
  Simulator sim(inst, c, inputs, options);
  const SimReport measured = sim.Run();

  const LoadVector sp_model = InstanceLoads::MeanOf(analytic.partner_load);
  const LoadVector sp_sim = InstanceLoads::MeanOf(measured.partner_load);

  EXPECT_NEAR(sp_sim.in_bps, sp_model.in_bps, 0.15 * sp_model.in_bps);
  EXPECT_NEAR(sp_sim.out_bps, sp_model.out_bps, 0.15 * sp_model.out_bps);
  EXPECT_NEAR(sp_sim.proc_hz, sp_model.proc_hz, 0.15 * sp_model.proc_hz);
  EXPECT_NEAR(measured.aggregate.TotalBps(), analytic.aggregate.TotalBps(),
              0.15 * analytic.aggregate.TotalBps());
  EXPECT_NEAR(measured.mean_results_per_query, analytic.mean_results,
              0.2 * analytic.mean_results);
  EXPECT_NEAR(measured.mean_response_hops, analytic.mean_epl,
              0.2 * analytic.mean_epl + 0.1);

  if (!inst.client_files.empty()) {
    // Client outgoing traffic is dominated by join uploads, whose rate
    // is driven by the rare (large-library, short-session) tail — a few
    // hundred simulated seconds only see a handful of those events, so
    // the client-side tolerance is wider than the super-peer one.
    const LoadVector cl_model = InstanceLoads::MeanOf(analytic.client_load);
    const LoadVector cl_sim = InstanceLoads::MeanOf(measured.client_load);
    EXPECT_NEAR(cl_sim.out_bps, cl_model.out_bps, 0.30 * cl_model.out_bps);
    EXPECT_NEAR(cl_sim.in_bps, cl_model.in_bps, 0.25 * cl_model.in_bps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SimVsModelTest,
    ::testing::Values(
        Scenario{400, 10.0, false, 4, 4.0},   // Paper-like defaults, small.
        Scenario{400, 10.0, true, 4, 4.0},    // With 2-redundancy.
        Scenario{200, 1.0, false, 3, 3.1},    // Pure P2P degenerate case.
        Scenario{300, 20.0, false, 7, 3.1},   // Deep TTL, Gnutella degree.
        Scenario{400, 20.0, false, 2, 10.0}   // Short TTL, high degree.
        ));

}  // namespace
}  // namespace sppnet
