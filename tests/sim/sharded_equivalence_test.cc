// ctest-label: threaded
// Sharded-engine equivalence goldens: the conservative-window sharded
// discipline (sim/sharded_sim.h, DESIGN.md §12) must be *bitwise*
// indistinguishable from its own sequential reference — the S=1, T=1
// run of the same discipline — for every shard count, every thread
// count, both event-queue engines, and any partitioning of the run into
// RunUntil windows. Every scenario of the existing equivalence matrix
// (PLOD/complete x flood/ring/walk x churn x faults x adaptive) runs
// across S in {1,2,3,8} x T in {1,2,8}, asserts the SimReports
// bit-identical, asserts the shard-invariant obs instruments identical
// (the sim.shard.count/threads configuration gauges are the one
// deliberately configuration-dependent surface and are excluded), and
// pins the reference digest to a golden generated when the discipline
// was introduced. A digest change here means the sharded protocol
// semantics drifted, which they must never do.
//
// The suite is adversarial on purpose: the worst case for a
// (time, key)-ordered merge is many cross-shard events sharing one
// timestamp, where the total order is decided by the content keys
// alone — exercised below by injecting a burst of trace queries at a
// single instant from users spread over every cluster.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/export.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

// FNV-1a over the bit patterns of the SimReport fields, in declaration
// order — the same digest as engine_equivalence_test.cc so failures are
// comparable across suites. mean_index_memory_bytes is excluded
// (toolchain-dependent and sharded runs forbid concrete indexes
// anyway); the whole-run event totals are compared across the matrix
// directly.
std::uint64_t ReportDigest(const SimReport& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_d = [&](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  const auto mix_load = [&](const LoadVector& lv) {
    mix_d(lv.in_bps);
    mix_d(lv.out_bps);
    mix_d(lv.proc_hz);
  };
  mix_d(r.measured_seconds);
  for (const LoadVector& lv : r.partner_load) mix_load(lv);
  for (const LoadVector& lv : r.client_load) mix_load(lv);
  mix_load(r.aggregate);
  mix(r.queries_submitted);
  mix(r.responses_delivered);
  mix(r.duplicate_queries);
  mix_d(r.mean_results_per_query);
  mix_d(r.mean_response_hops);
  mix_d(r.mean_first_response_latency);
  mix_d(r.mean_rings_per_query);
  mix(r.cache_hits);
  mix(r.partner_failures);
  mix(r.partner_recoveries);
  mix(r.cluster_outages);
  mix_d(r.cluster_outage_fraction);
  mix_d(r.client_disconnected_fraction);
  mix(r.faults_crashes);
  mix(r.faults_messages_dropped);
  mix(r.faults_request_timeouts);
  mix(r.faults_retries);
  mix(r.faults_failover_episodes);
  mix(r.faults_client_rejoins);
  mix(r.queries_succeeded);
  mix(r.queries_failed);
  mix_d(r.query_success_rate);
  mix_d(r.mean_recovery_latency_seconds);
  return h;
}

// The deterministic registry sections minus everything legitimately
// allowed to vary across the (S, T) matrix: the engine-specific
// sim.queue.* / sim.state.* internals (the shard queues split the
// calendar bookkeeping differently) and the sim.shard.count/threads
// configuration gauges. Everything else — protocol counters, the depth
// high-water mark, the hop histogram, the cell count and the lookahead
// audit — must be byte-identical across the matrix.
std::string ShardInvariantMetricsJson(const MetricsRegistry& m) {
  const auto variant = [](std::string_view name) {
    return name.rfind("sim.queue.", 0) == 0 ||
           name.rfind("sim.state.", 0) == 0 || name == "sim.shard.count" ||
           name == "sim.shard.threads";
  };
  MetricsRegistry filtered;
  for (const auto& [name, counter] : m.counters()) {
    if (!variant(name)) filtered.GetCounter(name).Increment(counter.value());
  }
  for (const auto& [name, gauge] : m.gauges()) {
    if (!variant(name)) filtered.GetGauge(name).Set(gauge.value());
  }
  for (const auto& [name, histogram] : m.histograms()) {
    if (!variant(name)) {
      filtered.GetHistogram(name, histogram.upper_bounds()).Merge(histogram);
    }
  }
  std::ostringstream out;
  WriteDeterministicMetricsJson(out, filtered);
  return out.str();
}

struct Scenario {
  const char* name;
  std::uint64_t digest;  ///< Pinned S=1, T=1 sharded-discipline digest.
  Configuration config;
  std::uint64_t instance_seed;
  SimOptions options;
};

FaultPlan ActivePlan() {
  FaultPlan plan;
  plan.crash_rate_per_partner = 2e-3;
  plan.crash_recovery_seconds = 15.0;
  plan.message_drop_probability = 0.01;
  plan.max_delay_jitter_seconds = 0.05;
  plan.request_timeout_seconds = 2.0;
  plan.max_retries = 3;
  return plan;
}

// The scenario matrix mirrors engine_equivalence_test.cc minus the
// concrete-index/result-cache case (sharded runs forbid both). The
// digests pin the S=1, T=1 run of the sharded discipline itself — the
// discipline splits the RNG streams per domain, so its event stream is
// deliberately distinct from the legacy engine's.
std::vector<Scenario> Scenarios() {
  std::vector<Scenario> cases;
  {
    Scenario c{"flood_plod", 0x3c86827f7e6da807ull, {}, 101, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.seed = 11;
    cases.push_back(c);
  }
  {
    Scenario c{"flood_complete", 0x9db5e62b70b28a7bull, {}, 102, {}};
    c.config.graph_type = GraphType::kStronglyConnected;
    c.config.graph_size = 300;
    c.config.cluster_size = 10.0;
    c.config.ttl = 1;
    c.options.seed = 12;
    cases.push_back(c);
  }
  {
    Scenario c{"ring_plod", 0xeb320b68f1a588f5ull, {}, 103, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 5;
    c.config.avg_outdegree = 4.0;
    c.options.strategy = SearchStrategy::kExpandingRing;
    c.options.ring_satisfaction_results = 30;
    c.options.seed = 13;
    cases.push_back(c);
  }
  {
    Scenario c{"walk_plod", 0x05f06015b22be9a3ull, {}, 104, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.strategy = SearchStrategy::kRandomWalk;
    c.options.num_walkers = 8;
    c.options.walk_ttl = 32;
    c.options.seed = 14;
    cases.push_back(c);
  }
  {
    Scenario c{"churn_plod", 0x524d9c6b9ac2230full, {}, 105, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.churn.enable = true;
    c.options.churn.partner_recovery_seconds = 20.0;
    c.options.seed = 15;
    cases.push_back(c);
  }
  {
    Scenario c{"faults_active", 0xfb90e7b485c0b4fbull, {}, 106, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.redundancy = true;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.faults = ActivePlan();
    c.options.seed = 16;
    cases.push_back(c);
  }
  {
    Scenario c{"adaptive_plod", 0xf9f93d1665ca788bull, {}, 108, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 4.0;
    c.config.ttl = 5;
    c.config.avg_outdegree = 3.1;
    c.options.adaptive.probe_interval_seconds = 2.0;
    c.options.adaptive.decision_interval_seconds = 10.0;
    c.options.adaptive.policy.max_bandwidth_bps = 1.0e7;
    c.options.adaptive.policy.max_proc_hz = 2.0e6;
    c.options.seed = 18;
    cases.push_back(c);
  }
  for (Scenario& c : cases) {
    c.options.duration_seconds = 60.0;
    c.options.warmup_seconds = 12.0;
  }
  return cases;
}

struct ShardedRun {
  SimReport report;
  std::string metrics;
};

ShardedRun RunSharded(const Scenario& c, std::size_t num_shards,
                      std::size_t num_threads,
                      SimEngine engine = SimEngine::kCalendar) {
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(c.instance_seed);
  const NetworkInstance instance = GenerateInstance(c.config, inputs, rng);
  SimOptions options = c.options;
  options.engine = engine;
  options.shards.num_shards = num_shards;
  options.shards.num_threads = num_threads;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  Simulator sim(instance, c.config, inputs, options);
  return {sim.Run(), ShardInvariantMetricsJson(metrics)};
}

struct ShardCombo {
  std::size_t shards;
  std::size_t threads;
};

constexpr ShardCombo kMatrix[] = {
    {1, 1}, {1, 2}, {1, 8}, {2, 1}, {2, 2}, {2, 8},
    {3, 1}, {3, 2}, {3, 8}, {8, 1}, {8, 2}, {8, 8},
};

class ShardedEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedEquivalenceTest, MatrixBitIdenticalAndPinnedToGolden) {
  const Scenario c = Scenarios()[GetParam()];

  // The sequential reference of the sharded discipline: one shard, one
  // thread. Everything else must reproduce it bit for bit.
  const ShardedRun reference = RunSharded(c, 1, 1);
  const std::uint64_t reference_digest = ReportDigest(reference.report);
  EXPECT_EQ(reference_digest, c.digest) << c.name;

  for (const ShardCombo combo : kMatrix) {
    const ShardedRun run = RunSharded(c, combo.shards, combo.threads);
    SCOPED_TRACE(std::string(c.name) + " S=" +
                 std::to_string(combo.shards) + " T=" +
                 std::to_string(combo.threads));
    EXPECT_EQ(ReportDigest(run.report), reference_digest);
    EXPECT_EQ(run.report.events_scheduled, reference.report.events_scheduled);
    EXPECT_EQ(run.report.events_dispatched,
              reference.report.events_dispatched);
    EXPECT_EQ(run.report.queue_depth_hwm, reference.report.queue_depth_hwm);
    EXPECT_EQ(run.report.adapt_rounds, reference.report.adapt_rounds);
    EXPECT_EQ(run.report.adapt_splits, reference.report.adapt_splits);
    EXPECT_EQ(run.report.adapt_client_moves,
              reference.report.adapt_client_moves);
    EXPECT_EQ(run.report.final_clusters, reference.report.final_clusters);
    EXPECT_EQ(run.report.final_ttl, reference.report.final_ttl);
    EXPECT_EQ(run.metrics, reference.metrics);
  }

  // The discipline sits above the event-queue engine: the heap
  // reference queue must produce the identical run.
  const ShardedRun heap = RunSharded(c, 2, 2, SimEngine::kHeapReference);
  EXPECT_EQ(ReportDigest(heap.report), reference_digest) << c.name;
  EXPECT_EQ(heap.metrics, reference.metrics) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ShardedEquivalenceTest,
                         ::testing::Range<std::size_t>(0, 7),
                         [](const auto& info) {
                           return Scenarios()[info.param].name;
                         });

// Adversarial worst case for the deterministic merge: a burst of trace
// queries injected at ONE timestamp from users spread over every
// cluster. The resulting cross-shard arrivals share their timestamps
// exactly (injection instant + identical hop multiples), so the merge
// and the intra-cell drains must order them by the content keys alone —
// any dependence on shard count, thread interleaving or merge arrival
// order shows up as a digest mismatch here.
TEST(ShardedEquivalenceTest, SameTimestampBurstOrdersByKeyAlone) {
  Configuration config;
  config.graph_size = 300;
  config.cluster_size = 10.0;
  config.ttl = 4;
  config.avg_outdegree = 4.0;
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(109);
  const NetworkInstance instance = GenerateInstance(config, inputs, rng);
  const std::uint32_t total_nodes = static_cast<std::uint32_t>(
      instance.TotalPartners() + instance.TotalClients());

  const auto run = [&](std::size_t num_shards, std::size_t num_threads) {
    SimOptions options;
    options.duration_seconds = 30.0;
    options.warmup_seconds = 5.0;
    options.seed = 19;
    options.shards.num_shards = num_shards;
    options.shards.num_threads = num_threads;
    MetricsRegistry metrics;
    options.metrics = &metrics;
    Simulator sim(instance, config, inputs, options);
    sim.Start();
    // Every third node fires a trace query at exactly t = 10.0 — and
    // again at exactly t = 10.05 (= one hop), colliding with the first
    // burst's arrivals.
    for (std::uint32_t u = 0; u < total_nodes; u += 3) {
      sim.InjectQueryAt(10.0, u);
    }
    for (std::uint32_t u = 1; u < total_nodes; u += 3) {
      sim.InjectQueryAt(10.05, u);
    }
    sim.RunUntil(35.0);
    const SimReport report = sim.Finalize(35.0);
    return std::make_pair(ReportDigest(report),
                          ShardInvariantMetricsJson(metrics));
  };

  const auto reference = run(1, 1);
  for (const ShardCombo combo : kMatrix) {
    SCOPED_TRACE(std::string("S=") + std::to_string(combo.shards) + " T=" +
                 std::to_string(combo.threads));
    EXPECT_EQ(run(combo.shards, combo.threads), reference);
  }
}

// Window-partitioning invariance: slicing the run into ragged RunUntil
// windows (including cuts inside open cells and windows landing exactly
// on cell boundaries) must execute the identical event sequence as one
// batch call, for a sharded multi-thread configuration.
TEST(ShardedEquivalenceTest, RaggedWindowsMatchBatchRun) {
  Configuration config;
  config.graph_size = 300;
  config.cluster_size = 10.0;
  config.ttl = 4;
  config.avg_outdegree = 4.0;
  config.redundancy = true;
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(110);
  const NetworkInstance instance = GenerateInstance(config, inputs, rng);

  const auto run = [&](bool ragged) {
    SimOptions options;
    options.duration_seconds = 40.0;
    options.warmup_seconds = 8.0;
    options.seed = 20;
    options.churn.enable = true;
    options.churn.partner_recovery_seconds = 20.0;
    options.shards.num_shards = 3;
    options.shards.num_threads = 2;
    MetricsRegistry metrics;
    options.metrics = &metrics;
    Simulator sim(instance, config, inputs, options);
    sim.Start();
    const double horizon = 48.0;
    if (ragged) {
      // 0.37 is incommensurate with the 0.05 cell width; 12.0 and 24.0
      // land exactly on cell closes.
      double t = 0.0;
      const double cuts[] = {0.37, 11.63, 0.37, 0.05, 11.58, 0.37};
      for (const double step : cuts) {
        t += step;
        sim.RunUntil(t);
      }
      sim.RunUntil(horizon);
    } else {
      sim.RunUntil(horizon);
    }
    const SimReport report = sim.Finalize(horizon);
    return std::make_pair(ReportDigest(report),
                          ShardInvariantMetricsJson(metrics));
  };

  EXPECT_EQ(run(/*ragged=*/true), run(/*ragged=*/false));
}

}  // namespace
}  // namespace sppnet
