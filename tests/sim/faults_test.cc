// ctest-label: threaded
// Fault-injection layer: plan validation death tests, the
// pay-for-what-you-use zero-rate identity, bit-reproducibility across
// trial parallelism, and the sim-vs-model availability check holding
// the measured cluster-outage fraction to the analytical k-redundancy
// prediction u^k (Section 3.2 / Section 6).

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/export.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/sim_trials.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

std::string MetricsJson(const MetricsRegistry& metrics) {
  // Deterministic sections only: the simulator also publishes
  // wall-clock phase timers, which are the one part of the registry
  // that legitimately differs between bit-identical runs.
  std::ostringstream out;
  WriteDeterministicMetricsJson(out, metrics);
  return out.str();
}

TEST(FaultPlanDeathTest, RejectsInvalidConfigs) {
  {
    FaultPlan plan;
    plan.crash_rate_per_partner = -1.0e-3;
    EXPECT_DEATH(plan.Validate(), "crash rate");
  }
  {
    FaultPlan plan;
    plan.crash_recovery_seconds = 0.0;
    EXPECT_DEATH(plan.Validate(), "recovery time");
  }
  {
    FaultPlan plan;
    plan.message_drop_probability = 1.5;
    EXPECT_DEATH(plan.Validate(), "drop probability");
  }
  {
    FaultPlan plan;
    plan.max_delay_jitter_seconds = -0.1;
    EXPECT_DEATH(plan.Validate(), "delay jitter");
  }
  {
    // A retry budget of zero with timeouts enabled would turn every
    // transient fault into a permanent failure.
    FaultPlan plan;
    plan.request_timeout_seconds = 2.0;
    plan.max_retries = 0;
    EXPECT_DEATH(plan.Validate(), "retry budget");
  }
  {
    FaultPlan plan;
    plan.request_timeout_seconds = 2.0;
    plan.backoff_factor = 0.5;
    EXPECT_DEATH(plan.Validate(), "backoff factor");
  }
  {
    FaultPlan plan;
    plan.request_timeout_seconds = 2.0;
    plan.backoff_cap_seconds = 0.1;  // below the 0.5 s base
    EXPECT_DEATH(plan.Validate(), "backoff cap");
  }
  {
    FaultPlan plan;
    plan.max_retries = -1;  // invalid even with timeouts disabled
    EXPECT_DEATH(plan.Validate(), "retry budget");
  }
  {
    // The injector validates on construction, so an invalid plan can
    // never reach the simulator.
    FaultPlan plan;
    plan.message_drop_probability = -0.25;
    EXPECT_DEATH(FaultInjector(plan, 7), "drop probability");
  }
}

TEST(FaultPlanTest, DefaultPlanIsValidAndInactive) {
  FaultPlan plan;
  plan.Validate();
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.TimeoutsEnabled());
  plan.request_timeout_seconds = 1.0;
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.TimeoutsEnabled());
}

TEST(FaultInjectorTest, RetryBackoffIsBoundedExponential) {
  FaultPlan plan;
  plan.request_timeout_seconds = 1.0;
  plan.backoff_base_seconds = 0.5;
  plan.backoff_factor = 2.0;
  plan.backoff_cap_seconds = 3.0;
  FaultInjector injector(plan, 1);
  EXPECT_DOUBLE_EQ(injector.RetryBackoff(1), 0.5);
  EXPECT_DOUBLE_EQ(injector.RetryBackoff(2), 1.0);
  EXPECT_DOUBLE_EQ(injector.RetryBackoff(3), 2.0);
  EXPECT_DOUBLE_EQ(injector.RetryBackoff(4), 3.0);  // capped
  EXPECT_DOUBLE_EQ(injector.RetryBackoff(40), 3.0);
}

struct SimSetup {
  Configuration config;
  ModelInputs inputs = ModelInputs::Default();
  NetworkInstance instance;
};

SimSetup MakeSetup(std::uint64_t instance_seed, int k = 0) {
  SimSetup s;
  s.config.graph_size = 200;
  s.config.cluster_size = 10;
  if (k >= 1) s.config.redundancy_k = k;
  s.config.ttl = 4;
  s.config.avg_outdegree = 4.0;
  Rng rng(instance_seed);
  s.instance = GenerateInstance(s.config, s.inputs, rng);
  return s;
}

// The pay-for-what-you-use contract: a plan whose rates are all zero is
// never consulted, so the run — report and published metrics, down to
// the byte — is identical to a run without the fault layer, even when
// the plan's non-rate knobs differ from the defaults.
TEST(FaultSimTest, ZeroRatePlanIsBitIdenticalToNoFaultLayer) {
  const SimSetup s = MakeSetup(21);
  SimOptions base;
  base.duration_seconds = 200.0;
  base.warmup_seconds = 20.0;
  base.seed = 5;
  base.churn.enable = true;  // fault layer must coexist with churn

  MetricsRegistry base_metrics;
  base.metrics = &base_metrics;
  const SimReport baseline = Simulator(s.instance, s.config, s.inputs,
                                       base).Run();

  SimOptions zeroed = base;
  MetricsRegistry zeroed_metrics;
  zeroed.metrics = &zeroed_metrics;
  zeroed.faults.crash_recovery_seconds = 3.0;
  zeroed.faults.max_retries = 11;
  zeroed.faults.backoff_base_seconds = 0.125;
  zeroed.faults.backoff_cap_seconds = 64.0;
  ASSERT_FALSE(zeroed.faults.enabled());
  const SimReport control = Simulator(s.instance, s.config, s.inputs,
                                      zeroed).Run();

  EXPECT_EQ(baseline.queries_submitted, control.queries_submitted);
  EXPECT_EQ(baseline.responses_delivered, control.responses_delivered);
  EXPECT_EQ(baseline.duplicate_queries, control.duplicate_queries);
  EXPECT_EQ(baseline.partner_failures, control.partner_failures);
  EXPECT_EQ(baseline.cluster_outages, control.cluster_outages);
  EXPECT_EQ(baseline.client_disconnected_fraction,
            control.client_disconnected_fraction);
  EXPECT_EQ(baseline.aggregate.in_bps, control.aggregate.in_bps);
  EXPECT_EQ(baseline.aggregate.out_bps, control.aggregate.out_bps);
  EXPECT_EQ(baseline.mean_response_hops, control.mean_response_hops);
  // No sim.faults.* metrics may appear, and everything else must match
  // byte for byte.
  EXPECT_EQ(control.faults_crashes, 0u);
  EXPECT_EQ(zeroed_metrics.CounterValue("sim.faults.crashes"), 0u);
  EXPECT_EQ(zeroed_metrics.counters().count("sim.faults.crashes"), 0u);
  EXPECT_EQ(MetricsJson(base_metrics), MetricsJson(zeroed_metrics));
}

FaultPlan ActiveTestPlan() {
  FaultPlan plan;
  plan.crash_rate_per_partner = 5.0e-3;
  plan.crash_recovery_seconds = 20.0;
  plan.message_drop_probability = 0.01;
  plan.max_delay_jitter_seconds = 0.05;
  plan.request_timeout_seconds = 2.0;
  return plan;
}

// An active plan run twice from the same seed reproduces every fault
// counter and histogram bit for bit.
TEST(FaultSimTest, ActivePlanIsBitReproducibleFromSeed) {
  const SimSetup s = MakeSetup(22, /*k=*/2);
  SimOptions options;
  options.duration_seconds = 300.0;
  options.warmup_seconds = 20.0;
  options.seed = 9;
  options.faults = ActiveTestPlan();

  MetricsRegistry first, second;
  options.metrics = &first;
  const SimReport a = Simulator(s.instance, s.config, s.inputs,
                                options).Run();
  options.metrics = &second;
  const SimReport b = Simulator(s.instance, s.config, s.inputs,
                                options).Run();

  ASSERT_GT(a.faults_crashes, 0u);
  ASSERT_GT(a.faults_messages_dropped, 0u);
  EXPECT_EQ(a.faults_crashes, b.faults_crashes);
  EXPECT_EQ(a.faults_request_timeouts, b.faults_request_timeouts);
  EXPECT_EQ(a.faults_retries, b.faults_retries);
  EXPECT_EQ(a.queries_succeeded, b.queries_succeeded);
  EXPECT_EQ(a.queries_failed, b.queries_failed);
  EXPECT_EQ(a.cluster_outage_fraction, b.cluster_outage_fraction);
  EXPECT_EQ(MetricsJson(first), MetricsJson(second));
}

// Graceful degradation: under aggressive faults the run completes with
// partial results — queries succeed and fail, nothing aborts, and the
// success classification covers every counted query.
TEST(FaultSimTest, AggressiveFaultsDegradeGracefully) {
  const SimSetup s = MakeSetup(23, /*k=*/1);
  SimOptions options;
  options.duration_seconds = 400.0;
  options.warmup_seconds = 20.0;
  options.seed = 17;
  options.faults = ActiveTestPlan();
  options.faults.crash_rate_per_partner = 2.0e-2;  // u ~ 0.29
  options.faults.message_drop_probability = 0.05;

  const SimReport report = Simulator(s.instance, s.config, s.inputs,
                                     options).Run();
  EXPECT_GT(report.queries_succeeded, 0u);
  EXPECT_GT(report.faults_request_timeouts, 0u);
  EXPECT_GT(report.faults_retries, 0u);
  EXPECT_GT(report.faults_client_rejoins, 0u);
  EXPECT_GT(report.query_success_rate, 0.5);
  EXPECT_LE(report.query_success_rate, 1.0);
  EXPECT_GT(report.cluster_outage_fraction, 0.0);
  // Succeeded + failed covers every query that reached a verdict; the
  // tail still in flight at the horizon is the only gap.
  EXPECT_LE(report.queries_succeeded + report.queries_failed,
            report.queries_submitted);
  EXPECT_GE(report.queries_succeeded + report.queries_failed,
            report.queries_submitted * 9 / 10);
}

// The acceptance gate for deterministic parallelism: every sim.faults.*
// counter and histogram — the whole merged registry — is bit-identical
// across trial parallelism 1, 2 and 8.
TEST(FaultSimTest, FaultMetricsBitIdenticalAcrossParallelism) {
  Configuration config;
  config.graph_size = 200;
  config.cluster_size = 10;
  config.redundancy_k = 2;
  config.ttl = 4;
  config.avg_outdegree = 4.0;
  const ModelInputs inputs = ModelInputs::Default();

  std::vector<std::string> exports;
  std::vector<SimTrialReport> reports;
  for (const std::size_t parallelism : {1u, 2u, 8u}) {
    SimTrialOptions options;
    options.num_trials = 5;
    options.seed = 77;
    options.parallelism = parallelism;
    options.sim.duration_seconds = 150.0;
    options.sim.warmup_seconds = 15.0;
    options.sim.faults = ActiveTestPlan();
    MetricsRegistry m;
    options.metrics = &m;
    reports.push_back(RunTrials(config, inputs, options));
    EXPECT_EQ(m.CounterValue("sim_trials.completed"), 5u);
    exports.push_back(MetricsJson(m));
  }
  ASSERT_GT(reports[0].faults_crashes, 0u);
  ASSERT_GT(reports[0].faults_messages_dropped, 0u);
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[0].faults_crashes, reports[i].faults_crashes);
    EXPECT_EQ(reports[0].faults_retries, reports[i].faults_retries);
    EXPECT_EQ(reports[0].queries_succeeded, reports[i].queries_succeeded);
    EXPECT_EQ(reports[0].queries_failed, reports[i].queries_failed);
    EXPECT_EQ(reports[0].cluster_outage_fraction.Mean(),
              reports[i].cluster_outage_fraction.Mean());
    EXPECT_EQ(reports[0].query_success_rate.Mean(),
              reports[i].query_success_rate.Mean());
  }
}

// Sim-vs-model: with per-partner crash rate lambda and recovery time r,
// one partner is down u = lambda*r / (1 + lambda*r) of the time
// (crashes on a down partner are no-ops, so up-times are memoryless),
// and independent partners make a k-redundant cluster fully dark a
// fraction u^k of the time. The measured cluster-outage fraction must
// track that prediction at k in {1, 2, 3}.
TEST(FaultSimVsModelTest, AvailabilityMatchesKRedundancyPrediction) {
  const double rate = 1.0e-2;
  const double recovery = 20.0;
  const double u = rate * recovery / (1.0 + rate * recovery);
  const ModelInputs inputs = ModelInputs::Default();

  for (const int k : {1, 2, 3}) {
    Configuration config;
    config.graph_size = 200;
    config.cluster_size = 10;
    config.redundancy_k = k;
    config.ttl = 4;
    config.avg_outdegree = 4.0;

    SimTrialOptions options;
    options.num_trials = 4;
    options.seed = 101;
    options.parallelism = 2;
    options.sim.duration_seconds = 800.0;
    options.sim.warmup_seconds = 40.0;
    options.sim.faults.crash_rate_per_partner = rate;
    options.sim.faults.crash_recovery_seconds = recovery;
    options.sim.faults.request_timeout_seconds = 2.0;
    const SimTrialReport report = RunTrials(config, inputs, options);

    const double predicted = std::pow(u, k);
    const double measured = report.cluster_outage_fraction.Mean();
    ASSERT_GT(measured, 0.0) << "k=" << k;
    // Tolerance documented in EXPERIMENTS.md: the k = 3 event (all
    // three partners down at once) is rare at this horizon, so its
    // estimate is noisier than k = 1.
    const double tolerance = k < 3 ? 0.25 : 0.45;
    EXPECT_NEAR(measured / predicted, 1.0, tolerance)
        << "k=" << k << " predicted=" << predicted
        << " measured=" << measured;

    // Redundancy must also keep queries succeeding: at k >= 2 the
    // recovery protocol turns almost every crash into a non-event.
    if (k >= 2) {
      EXPECT_GT(report.query_success_rate.Mean(), 0.99);
    }
  }
}

}  // namespace
}  // namespace sppnet
