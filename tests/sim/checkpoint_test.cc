// ctest-label: threaded
// Resume-equivalence matrix for the streaming serving layer: a run
// checkpointed at window k and restored — into the same engine/backend
// combo or a DIFFERENT one — must continue bit-identically to the
// uninterrupted run for every protocol-relevant observable: the final
// report digest, the filtered per-window counter deltas, the
// events-dispatched deltas and the running snapshot digest.
// Engine-internal instruments (sim.queue.*, sim.state.*) legitimately
// differ after a restore (the fresh engine's statistics restart) and
// are excluded, mirroring the engine-equivalence contract.
//
// Cut points deliberately include a mid-adaptation-round window
// boundary (probe reports recorded, decision round still pending) and
// a mid-fault-recovery boundary (crashed partners still down, orphaned
// clients waiting, retries backed off) — the states with the most
// serialized machinery in flight.

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/simulator.h"
#include "sppnet/sim/stream.h"

namespace sppnet {
namespace {

// Same field set and order as the engine-equivalence goldens — a
// restored run must reproduce the uninterrupted report bit for bit.
std::uint64_t ReportDigest(const SimReport& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_d = [&](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  const auto mix_load = [&](const LoadVector& lv) {
    mix_d(lv.in_bps);
    mix_d(lv.out_bps);
    mix_d(lv.proc_hz);
  };
  mix_d(r.measured_seconds);
  for (const LoadVector& lv : r.partner_load) mix_load(lv);
  for (const LoadVector& lv : r.client_load) mix_load(lv);
  mix_load(r.aggregate);
  mix(r.queries_submitted);
  mix(r.responses_delivered);
  mix(r.duplicate_queries);
  mix_d(r.mean_results_per_query);
  mix_d(r.mean_response_hops);
  mix_d(r.mean_first_response_latency);
  mix_d(r.mean_rings_per_query);
  mix(r.cache_hits);
  mix(r.partner_failures);
  mix(r.partner_recoveries);
  mix(r.cluster_outages);
  mix_d(r.cluster_outage_fraction);
  mix_d(r.client_disconnected_fraction);
  mix(r.faults_crashes);
  mix(r.faults_messages_dropped);
  mix(r.faults_request_timeouts);
  mix(r.faults_retries);
  mix(r.faults_failover_episodes);
  mix(r.faults_client_rejoins);
  mix(r.queries_succeeded);
  mix(r.queries_failed);
  mix_d(r.query_success_rate);
  mix_d(r.mean_recovery_latency_seconds);
  mix(r.events_scheduled);
  mix(r.events_dispatched);
  mix(r.queue_depth_hwm);
  mix(r.adapt_rounds);
  mix(r.adapt_splits);
  mix(r.adapt_coalesces);
  mix(r.adapt_edges_added);
  mix(r.adapt_ttl_decreases);
  mix(r.adapt_probes_sent);
  mix(r.adapt_reports_received);
  mix(r.adapt_client_moves);
  mix(r.adapt_converged ? 1 : 0);
  mix(r.adapt_converged_round);
  mix(r.final_clusters);
  mix(static_cast<std::uint64_t>(r.final_ttl));
  mix_d(r.final_avg_outdegree);
  return h;
}

bool EngineInternal(const std::string& name) {
  return name.rfind("sim.queue.", 0) == 0 || name.rfind("sim.state.", 0) == 0;
}

/// Protocol-relevant content of one snapshot, as a comparable value.
std::vector<std::pair<std::string, std::uint64_t>> FilteredDeltas(
    const StreamSnapshot& snap) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, delta] : snap.counter_deltas) {
    if (!EngineInternal(name)) out.emplace_back(name, delta);
  }
  return out;
}

struct Scenario {
  const char* name;
  Configuration config;
  std::uint64_t instance_seed = 0;
  SimOptions sim;
  StreamOptions stream;
  std::size_t num_windows = 0;
};

// 8 windows x 6 s = 48 s of simulated time per run; warmup 12 s.
Scenario ChurnScenario() {
  Scenario s;
  s.name = "churn";
  s.config.graph_size = 400;
  s.config.cluster_size = 10.0;
  s.config.ttl = 4;
  s.config.avg_outdegree = 4.0;
  s.instance_seed = 105;
  s.sim.seed = 15;
  s.sim.duration_seconds = 36.0;
  s.sim.warmup_seconds = 12.0;
  s.sim.churn.enable = true;
  s.sim.churn.partner_recovery_seconds = 20.0;
  s.stream.window_seconds = 6.0;
  s.num_windows = 8;
  return s;
}

// Active fault plan with 15 s crash recovery and 2 s request timeouts:
// every interior window boundary has crashed partners mid-recovery,
// orphaned clients accruing disconnected time and retries backed off.
Scenario FaultScenario() {
  Scenario s;
  s.name = "faults";
  s.config.graph_size = 400;
  s.config.cluster_size = 10.0;
  s.config.redundancy = true;
  s.config.ttl = 4;
  s.config.avg_outdegree = 4.0;
  s.instance_seed = 106;
  s.sim.seed = 16;
  s.sim.duration_seconds = 36.0;
  s.sim.warmup_seconds = 12.0;
  s.sim.faults.crash_rate_per_partner = 2e-3;
  s.sim.faults.crash_recovery_seconds = 15.0;
  s.sim.faults.message_drop_probability = 0.01;
  s.sim.faults.max_delay_jitter_seconds = 0.05;
  s.sim.faults.request_timeout_seconds = 2.0;
  s.sim.faults.max_retries = 3;
  s.stream.window_seconds = 6.0;
  s.num_windows = 8;
  return s;
}

// Probe interval 2 s, decision interval 10 s, window 4 s: boundaries at
// 4, 8, 12, ... alternate between mid-round states (probe reports
// recorded, the next decision round pending) and post-round states —
// the checkpoint always carries fresh NeighborReports, streaks,
// cooldowns and the live membership mid-adaptation.
Scenario AdaptiveScenario() {
  Scenario s;
  s.name = "adaptive";
  s.config.graph_size = 400;
  s.config.cluster_size = 4.0;
  s.config.ttl = 5;
  s.config.avg_outdegree = 3.1;
  s.instance_seed = 108;
  s.sim.seed = 18;
  s.sim.duration_seconds = 28.0;
  s.sim.warmup_seconds = 12.0;
  s.sim.adaptive.probe_interval_seconds = 2.0;
  s.sim.adaptive.decision_interval_seconds = 10.0;
  s.sim.adaptive.policy.max_bandwidth_bps = 1.0e7;
  s.sim.adaptive.policy.max_proc_hz = 2.0e6;
  s.stream.window_seconds = 4.0;
  s.num_windows = 10;
  return s;
}

// Pull-with-TTR consistency against 6 s windows, a 5.8 s TTR and a
// 0.3 s hop: the first poll tick fires at t = 5.8, before the window
// boundary at 6.0, but its batched RefreshReply only lands at 6.4 —
// every cut after window 1 checkpoints MID-POLL, with the per-cluster
// pending-change FIFOs non-empty and the in-flight reply event carried
// through the restore. Replication keeps the replica tallies and the
// per-cluster replica counts in the serialized state too.
Scenario ConsistencyScenario() {
  Scenario s;
  s.name = "consistency";
  s.config.graph_size = 400;
  s.config.cluster_size = 10.0;
  s.config.ttl = 4;
  s.config.avg_outdegree = 4.0;
  s.instance_seed = 105;
  s.sim.seed = 19;
  s.sim.duration_seconds = 36.0;
  s.sim.warmup_seconds = 12.0;
  s.sim.hop_latency_seconds = 0.3;
  s.sim.consistency.change_rate_per_client = 0.08;
  s.sim.consistency.scheme = ConsistencyScheme::kPullTtr;
  s.sim.consistency.ttr_seconds = 5.8;
  s.sim.consistency.replication.owner_replication = true;
  s.sim.consistency.replication.path_replication = true;
  s.stream.window_seconds = 6.0;
  s.num_windows = 8;
  return s;
}

struct Combo {
  SimEngine engine;
  SimStateBackend backend;
  const char* label;
};

constexpr Combo kMatrix[] = {
    {SimEngine::kCalendar, SimStateBackend::kDense, "calendar+dense"},
    {SimEngine::kCalendar, SimStateBackend::kMapReference, "calendar+map"},
    {SimEngine::kHeapReference, SimStateBackend::kDense, "heap+dense"},
    {SimEngine::kHeapReference, SimStateBackend::kMapReference, "heap+map"},
};

struct StreamedRun {
  std::vector<StreamSnapshot> snapshots;
  SimReport report;
  std::uint64_t snapshot_digest = 0;
};

NetworkInstance MakeInstance(const Scenario& s, const ModelInputs& inputs) {
  Rng rng(s.instance_seed);
  return GenerateInstance(s.config, inputs, rng);
}

SimOptions ComboOptions(const Scenario& s, const Combo& combo) {
  SimOptions options = s.sim;
  options.engine = combo.engine;
  options.state_backend = combo.backend;
  return options;
}

/// Sharded-discipline options: the scenario's protocol under the
/// conservative-window engine with `num_shards` shards drained by
/// `num_threads` worker threads.
SimOptions ShardedOptions(const Scenario& s, std::size_t num_shards,
                          std::size_t num_threads) {
  SimOptions options = s.sim;
  options.shards.num_shards = num_shards;
  options.shards.num_threads = num_threads;
  return options;
}

/// Streams the scenario start to finish with no interruption.
StreamedRun RunUninterrupted(const Scenario& s, const SimOptions& options) {
  const ModelInputs inputs = ModelInputs::Default();
  const NetworkInstance instance = MakeInstance(s, inputs);
  StreamDriver driver(instance, s.config, inputs, options, s.stream);
  StreamedRun run;
  for (std::size_t w = 0; w < s.num_windows; ++w) {
    run.snapshots.push_back(driver.AdvanceWindow());
  }
  run.report = driver.Finish();
  run.snapshot_digest = driver.snapshot_digest();
  return run;
}

StreamedRun RunUninterrupted(const Scenario& s, const Combo& combo) {
  return RunUninterrupted(s, ComboOptions(s, combo));
}

/// Streams `cut` windows under `save_options`, checkpoints, restores
/// into a fresh driver under `resume_options`, and streams the rest
/// there.
StreamedRun RunWithRestore(const Scenario& s, const SimOptions& save_options,
                           const SimOptions& resume_options, std::size_t cut) {
  const ModelInputs inputs = ModelInputs::Default();
  const NetworkInstance instance = MakeInstance(s, inputs);
  StreamedRun run;
  std::vector<std::uint8_t> bytes;
  {
    StreamDriver saver(instance, s.config, inputs, save_options, s.stream);
    for (std::size_t w = 0; w < cut; ++w) {
      run.snapshots.push_back(saver.AdvanceWindow());
    }
    bytes = saver.Checkpoint();
    // The saving driver is destroyed here: the restored run cannot
    // lean on any of its in-memory state.
  }
  StreamDriver resumer(instance, s.config, inputs, resume_options, s.stream);
  EXPECT_TRUE(resumer.Restore(bytes));
  EXPECT_EQ(resumer.windows_emitted(), cut);
  for (std::size_t w = cut; w < s.num_windows; ++w) {
    run.snapshots.push_back(resumer.AdvanceWindow());
  }
  run.report = resumer.Finish();
  run.snapshot_digest = resumer.snapshot_digest();
  return run;
}

StreamedRun RunWithRestore(const Scenario& s, const Combo& save_combo,
                           const Combo& resume_combo, std::size_t cut) {
  return RunWithRestore(s, ComboOptions(s, save_combo),
                        ComboOptions(s, resume_combo), cut);
}

void ExpectEquivalent(const StreamedRun& expected, const StreamedRun& actual) {
  EXPECT_EQ(ReportDigest(actual.report), ReportDigest(expected.report));
  EXPECT_EQ(actual.snapshot_digest, expected.snapshot_digest);
  ASSERT_EQ(actual.snapshots.size(), expected.snapshots.size());
  for (std::size_t w = 0; w < expected.snapshots.size(); ++w) {
    SCOPED_TRACE(std::string("window ") + std::to_string(w));
    EXPECT_EQ(actual.snapshots[w].window_end, expected.snapshots[w].window_end);
    EXPECT_EQ(actual.snapshots[w].events_dispatched_delta,
              expected.snapshots[w].events_dispatched_delta);
    EXPECT_EQ(FilteredDeltas(actual.snapshots[w]),
              FilteredDeltas(expected.snapshots[w]));
  }
}

class CheckpointMatrixTest : public ::testing::TestWithParam<std::size_t> {};

Scenario ScenarioByIndex(std::size_t index) {
  switch (index) {
    case 0:
      return ChurnScenario();
    case 1:
      return FaultScenario();
    case 2:
      return AdaptiveScenario();
    default:
      return ConsistencyScenario();
  }
}

TEST_P(CheckpointMatrixTest, RestoreAtEveryTestedCutMatchesUninterrupted) {
  const Scenario s = ScenarioByIndex(GetParam());
  for (const Combo& combo : kMatrix) {
    SCOPED_TRACE(std::string(s.name) + " / " + combo.label);
    const StreamedRun uninterrupted = RunUninterrupted(s, combo);
    // Early, middle and late cuts. For the adaptive scenario window 3
    // ends at 12 s (mid-round: probes from t=12 recorded, round at 20 s
    // pending); for the fault scenario every cut has recoveries in
    // flight.
    for (const std::size_t cut :
         {std::size_t{1}, std::size_t{3}, s.num_windows - 1}) {
      SCOPED_TRACE(std::string("cut after window ") + std::to_string(cut));
      ExpectEquivalent(uninterrupted, RunWithRestore(s, combo, combo, cut));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, CheckpointMatrixTest,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           return std::string(
                               ScenarioByIndex(info.param).name);
                         });

TEST(CheckpointCrossEngineTest, CheckpointsArePortableAcrossTheMatrix) {
  // Save on one corner of the matrix, resume on another: the canonical
  // serialized form carries no engine or backend internals, so every
  // pairing continues identically.
  const Scenario s = FaultScenario();
  const StreamedRun uninterrupted = RunUninterrupted(s, kMatrix[0]);
  const std::size_t cut = 4;
  const std::pair<std::size_t, std::size_t> pairings[] = {
      {0, 3},  // calendar+dense -> heap+map
      {3, 0},  // heap+map -> calendar+dense
      {1, 2},  // calendar+map -> heap+dense
  };
  for (const auto& [save, resume] : pairings) {
    SCOPED_TRACE(std::string(kMatrix[save].label) + " -> " +
                 kMatrix[resume].label);
    ExpectEquivalent(
        uninterrupted,
        RunWithRestore(s, kMatrix[save], kMatrix[resume], cut));
  }
}

TEST(CheckpointRejectionTest, ForeignFingerprintIsRejected) {
  const Scenario s = ChurnScenario();
  const ModelInputs inputs = ModelInputs::Default();
  const NetworkInstance instance = MakeInstance(s, inputs);
  StreamDriver saver(instance, s.config, inputs, ComboOptions(s, kMatrix[0]),
                     s.stream);
  saver.AdvanceWindow();
  const std::vector<std::uint8_t> bytes = saver.Checkpoint();

  // A driver with a different protocol seed must refuse the restore.
  SimOptions other = ComboOptions(s, kMatrix[0]);
  other.seed = s.sim.seed + 1;
  StreamDriver wrong_seed(instance, s.config, inputs, other, s.stream);
  EXPECT_FALSE(wrong_seed.Restore(bytes));
  EXPECT_EQ(wrong_seed.windows_emitted(), 0u);

  // A different window grid changes the snapshot semantics: refused.
  StreamOptions other_stream = s.stream;
  other_stream.window_seconds = 3.0;
  StreamDriver wrong_grid(instance, s.config, inputs,
                          ComboOptions(s, kMatrix[0]), other_stream);
  EXPECT_FALSE(wrong_grid.Restore(bytes));

  // Corruption is caught by the envelope before any field is decoded.
  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  StreamDriver pristine(instance, s.config, inputs,
                        ComboOptions(s, kMatrix[0]), s.stream);
  EXPECT_FALSE(pristine.Restore(flipped));
  EXPECT_EQ(pristine.windows_emitted(), 0u);
}

// ---- Sharded-discipline checkpoints --------------------------------
//
// DiscSaveState writes a canonical payload — folded per-shard tallies,
// pending events merged in (time, seq) order, per-domain RNG streams
// and containers sorted by key — so the serialized bytes depend only
// on the simulated history, never on the (S, T) configuration that
// produced them. The tests below hold that to the strongest form:
// byte-identical checkpoints across writers, and restores portable
// across every shard/thread pairing.

struct ShardPair {
  std::size_t shards;
  std::size_t threads;
};

std::string PairLabel(const ShardPair& save, const ShardPair& resume) {
  std::string label = "S";
  label += std::to_string(save.shards);
  label += "T";
  label += std::to_string(save.threads);
  label += " -> S";
  label += std::to_string(resume.shards);
  label += "T";
  label += std::to_string(resume.threads);
  return label;
}

TEST(ShardedCheckpointTest, RestorePortableAcrossShardAndThreadCounts) {
  const Scenario s = FaultScenario();
  const StreamedRun uninterrupted =
      RunUninterrupted(s, ShardedOptions(s, 1, 1));
  const struct {
    ShardPair save;
    ShardPair resume;
  } pairings[] = {
      {{3, 2}, {1, 1}},  // parallel writer -> sequential reader
      {{1, 1}, {8, 8}},  // sequential writer -> wide parallel reader
      {{3, 2}, {8, 2}},  // parallel -> differently parallel
  };
  for (const auto& p : pairings) {
    SCOPED_TRACE(PairLabel(p.save, p.resume));
    ExpectEquivalent(
        uninterrupted,
        RunWithRestore(s, ShardedOptions(s, p.save.shards, p.save.threads),
                       ShardedOptions(s, p.resume.shards, p.resume.threads),
                       4));
  }
}

TEST(ShardedCheckpointTest, CheckpointBytesAreWriterInvariant) {
  // Not merely equivalent-after-restore: the serialized bytes
  // themselves, envelope included, must be identical no matter which
  // (S, T) writer produced them.
  const Scenario s = ChurnScenario();
  const std::size_t cut = 4;
  const auto bytes_for = [&](std::size_t shards, std::size_t threads) {
    const ModelInputs inputs = ModelInputs::Default();
    const NetworkInstance instance = MakeInstance(s, inputs);
    StreamDriver driver(instance, s.config, inputs,
                        ShardedOptions(s, shards, threads), s.stream);
    for (std::size_t w = 0; w < cut; ++w) driver.AdvanceWindow();
    return driver.Checkpoint();
  };
  const std::vector<std::uint8_t> reference = bytes_for(1, 1);
  // The SPCK envelope is unchanged by the sharded discipline: magic,
  // then the u16 version.
  ASSERT_GE(reference.size(), 6u);
  EXPECT_EQ(reference[0], 'S');
  EXPECT_EQ(reference[1], 'P');
  EXPECT_EQ(reference[2], 'C');
  EXPECT_EQ(reference[3], 'K');
  EXPECT_EQ(reference[4], 1);
  EXPECT_EQ(reference[5], 0);
  const ShardPair writers[] = {{2, 1}, {3, 2}, {8, 8}};
  for (const ShardPair& w : writers) {
    SCOPED_TRACE(PairLabel({1, 1}, w));
    const std::vector<std::uint8_t> actual = bytes_for(w.shards, w.threads);
    ASSERT_EQ(actual.size(), reference.size());
    std::size_t first_diff = reference.size();
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (actual[i] != reference[i]) {
        first_diff = i;
        break;
      }
    }
    EXPECT_EQ(first_diff, reference.size())
        << "first differing byte at offset " << first_diff << ": "
        << static_cast<int>(actual[first_diff]) << " vs "
        << static_cast<int>(reference[first_diff]);
  }
}

TEST(ShardedCheckpointTest, MidCellCutRestoresBitIdentically) {
  // A 0.07 s lookahead makes every 6 s window boundary land inside an
  // open conservative cell (6 / 0.07 is not integral), so the
  // checkpoint is cut after a partial-cell drain: events below the
  // horizon executed and the outboxes merged, but the cell not yet
  // closed and its control drain still pending. The saved cell index
  // and pending events must reconstruct that exact mid-cell state.
  Scenario s = FaultScenario();
  s.sim.hop_latency_seconds = 0.07;
  const StreamedRun uninterrupted =
      RunUninterrupted(s, ShardedOptions(s, 1, 1));
  const struct {
    ShardPair save;
    ShardPair resume;
  } pairings[] = {
      {{3, 2}, {3, 2}},
      {{3, 2}, {1, 1}},
      {{1, 1}, {8, 2}},
  };
  for (const std::size_t cut : {std::size_t{1}, std::size_t{5}}) {
    for (const auto& p : pairings) {
      SCOPED_TRACE(PairLabel(p.save, p.resume) + " cut after window " +
                   std::to_string(cut));
      ExpectEquivalent(
          uninterrupted,
          RunWithRestore(s, ShardedOptions(s, p.save.shards, p.save.threads),
                         ShardedOptions(s, p.resume.shards, p.resume.threads),
                         cut));
    }
  }
}

TEST(ShardedCheckpointTest, EngineDisciplineMarkerRejectsCrossRestores) {
  // The sharded discipline threads its RNGs per domain, so its event
  // stream is deliberately distinct from the legacy engine's. The
  // stream fingerprint carries the discipline marker: a sharded
  // checkpoint never restores into a legacy driver, nor vice versa.
  const Scenario s = ChurnScenario();
  const ModelInputs inputs = ModelInputs::Default();
  const NetworkInstance instance = MakeInstance(s, inputs);

  StreamDriver sharded(instance, s.config, inputs, ShardedOptions(s, 2, 2),
                       s.stream);
  sharded.AdvanceWindow();
  const std::vector<std::uint8_t> sharded_bytes = sharded.Checkpoint();
  StreamDriver legacy(instance, s.config, inputs, ComboOptions(s, kMatrix[0]),
                      s.stream);
  EXPECT_FALSE(legacy.Restore(sharded_bytes));
  EXPECT_EQ(legacy.windows_emitted(), 0u);

  legacy.AdvanceWindow();
  const std::vector<std::uint8_t> legacy_bytes = legacy.Checkpoint();
  StreamDriver sharded_reader(instance, s.config, inputs,
                              ShardedOptions(s, 2, 2), s.stream);
  EXPECT_FALSE(sharded_reader.Restore(legacy_bytes));
  EXPECT_EQ(sharded_reader.windows_emitted(), 0u);
}

TEST(CheckpointParallelismTest, StreamTrialsBitIdenticalAcrossParallelism) {
  // The windowed trial runner folds window-major in trial order: per-
  // window totals, per-trial digests and the merged registry must be
  // bit-identical across parallelism 1, 2 and 8 — and across engines.
  Configuration config;
  config.graph_size = 300;
  config.cluster_size = 10.0;
  config.redundancy = true;
  config.ttl = 4;
  config.avg_outdegree = 4.0;
  const ModelInputs inputs = ModelInputs::Default();

  const auto run = [&](SimEngine engine, SimStateBackend backend,
                       std::size_t parallelism) {
    StreamTrialOptions options;
    options.num_trials = 4;
    options.seed = 77;
    options.parallelism = parallelism;
    options.num_windows = 6;
    options.sim.duration_seconds = 24.0;
    options.sim.warmup_seconds = 12.0;
    options.sim.churn.enable = true;
    options.sim.engine = engine;
    options.sim.state_backend = backend;
    options.stream.window_seconds = 6.0;
    return RunStreamTrials(config, inputs, options);
  };

  const StreamTrialReport reference =
      run(SimEngine::kCalendar, SimStateBackend::kDense, 1);
  ASSERT_EQ(reference.snapshot_digests.size(), 4u);
  for (const std::size_t parallelism : {2u, 8u}) {
    for (const Combo& combo : kMatrix) {
      SCOPED_TRACE(std::string(combo.label) + " x" +
                   std::to_string(parallelism));
      const StreamTrialReport report =
          run(combo.engine, combo.backend, parallelism);
      EXPECT_EQ(report.snapshot_digests, reference.snapshot_digests);
      EXPECT_EQ(report.window_events, reference.window_events);
      EXPECT_EQ(report.window_queries, reference.window_queries);
      EXPECT_EQ(report.queries_submitted, reference.queries_submitted);
      EXPECT_EQ(report.responses_delivered, reference.responses_delivered);
    }
  }
}

}  // namespace
}  // namespace sppnet
