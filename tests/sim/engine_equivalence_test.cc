// ctest-label: threaded
// Engine-equivalence goldens: the calendar event queue and the dense
// per-query state backend must be *bitwise* indistinguishable from the
// reference heap / hash-map implementations — and from the pre-overhaul
// simulator. Every case runs the full 2x2 {SimEngine} x
// {SimStateBackend} matrix, asserts the four SimReports bit-identical,
// asserts the protocol-level obs instruments identical (engine-specific
// sim.queue.* / sim.state.* instruments are allowed to differ), and
// pins the report digest to a golden generated from the simulator
// BEFORE the calendar queue and dense state existed. A digest change
// here means the overhaul changed protocol behaviour, which it must
// never do.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/export.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/sim_trials.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

// FNV-1a over the bit patterns of every report field that existed
// before the overhaul, in declaration order. Excluded by design:
// mean_index_memory_bytes (estimated from stdlib container capacities,
// so its exact value is toolchain-dependent) and the three whole-run
// event totals added by this change (they did not exist when the
// goldens were generated; they are compared across the matrix
// separately below). Must match the generator that produced the pinned
// digests byte for byte.
std::uint64_t ReportDigest(const SimReport& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_d = [&](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  const auto mix_load = [&](const LoadVector& lv) {
    mix_d(lv.in_bps);
    mix_d(lv.out_bps);
    mix_d(lv.proc_hz);
  };
  mix_d(r.measured_seconds);
  for (const LoadVector& lv : r.partner_load) mix_load(lv);
  for (const LoadVector& lv : r.client_load) mix_load(lv);
  mix_load(r.aggregate);
  mix(r.queries_submitted);
  mix(r.responses_delivered);
  mix(r.duplicate_queries);
  mix_d(r.mean_results_per_query);
  mix_d(r.mean_response_hops);
  mix_d(r.mean_first_response_latency);
  mix_d(r.mean_rings_per_query);
  mix(r.cache_hits);
  mix(r.partner_failures);
  mix(r.partner_recoveries);
  mix(r.cluster_outages);
  mix_d(r.cluster_outage_fraction);
  mix_d(r.client_disconnected_fraction);
  mix(r.faults_crashes);
  mix(r.faults_messages_dropped);
  mix(r.faults_request_timeouts);
  mix(r.faults_retries);
  mix(r.faults_failover_episodes);
  mix(r.faults_client_rejoins);
  mix(r.queries_succeeded);
  mix(r.queries_failed);
  mix_d(r.query_success_rate);
  mix_d(r.mean_recovery_latency_seconds);
  return h;
}

// The deterministic registry sections minus the engine-specific
// instruments: sim.queue.* and sim.state.* describe queue buckets,
// resizes and scratch bytes, which legitimately differ between engines.
// Everything else — protocol counters, the depth high-water mark, the
// hop histogram — must be byte-identical across the matrix.
std::string ProtocolMetricsJson(const MetricsRegistry& m) {
  const auto engine_specific = [](std::string_view name) {
    return name.rfind("sim.queue.", 0) == 0 ||
           name.rfind("sim.state.", 0) == 0;
  };
  MetricsRegistry filtered;
  for (const auto& [name, counter] : m.counters()) {
    if (!engine_specific(name)) {
      filtered.GetCounter(name).Increment(counter.value());
    }
  }
  for (const auto& [name, gauge] : m.gauges()) {
    if (!engine_specific(name)) filtered.GetGauge(name).Set(gauge.value());
  }
  for (const auto& [name, histogram] : m.histograms()) {
    if (!engine_specific(name)) {
      filtered.GetHistogram(name, histogram.upper_bounds()).Merge(histogram);
    }
  }
  std::ostringstream out;
  WriteDeterministicMetricsJson(out, filtered);
  return out.str();
}

struct GoldenCase {
  const char* name;
  std::uint64_t digest;
  Configuration config;
  std::uint64_t instance_seed;
  SimOptions options;
};

FaultPlan ActivePlan() {
  FaultPlan plan;
  plan.crash_rate_per_partner = 2e-3;
  plan.crash_recovery_seconds = 15.0;
  plan.message_drop_probability = 0.01;
  plan.max_delay_jitter_seconds = 0.05;
  plan.request_timeout_seconds = 2.0;
  plan.max_retries = 3;
  return plan;
}

FaultPlan ZeroRatePlan() {
  FaultPlan plan;
  plan.crash_rate_per_partner = 0.0;
  plan.message_drop_probability = 0.0;
  plan.max_delay_jitter_seconds = 0.0;
  plan.request_timeout_seconds = 0.0;
  return plan;
}

// All golden digests were generated against the pre-overhaul simulator
// (std::priority_queue + unordered_map state, the only implementation
// at the time). Do not regenerate them to make a failure pass.
std::vector<GoldenCase> GoldenCases() {
  std::vector<GoldenCase> cases;
  {
    GoldenCase c{"flood_plod", 0xa9c5873452eb3e5full, {}, 101, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.seed = 11;
    cases.push_back(c);
  }
  {
    GoldenCase c{"flood_complete", 0x0218d8a5be5cf245ull, {}, 102, {}};
    c.config.graph_type = GraphType::kStronglyConnected;
    c.config.graph_size = 300;
    c.config.cluster_size = 10.0;
    c.config.ttl = 1;
    c.options.seed = 12;
    cases.push_back(c);
  }
  {
    GoldenCase c{"ring_plod", 0xabc7450774b9487full, {}, 103, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 5;
    c.config.avg_outdegree = 4.0;
    c.options.strategy = SearchStrategy::kExpandingRing;
    c.options.ring_satisfaction_results = 30;
    c.options.seed = 13;
    cases.push_back(c);
  }
  {
    GoldenCase c{"walk_plod", 0xdb9e662bf82b6f46ull, {}, 104, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.strategy = SearchStrategy::kRandomWalk;
    c.options.num_walkers = 8;
    c.options.walk_ttl = 32;
    c.options.seed = 14;
    cases.push_back(c);
  }
  {
    GoldenCase c{"churn_plod", 0x69a0bd51b6db4f6aull, {}, 105, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.churn.enable = true;
    c.options.churn.partner_recovery_seconds = 20.0;
    c.options.seed = 15;
    cases.push_back(c);
  }
  {
    GoldenCase c{"faults_active", 0x72f19adb26bedf54ull, {}, 106, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.redundancy = true;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.faults = ActivePlan();
    c.options.seed = 16;
    cases.push_back(c);
  }
  {
    // Same configuration and seeds as churn_plod but with an explicitly
    // constructed zero-rate plan: pinned to the SAME digest — the
    // inactive-plan bit-identity contract of the fault layer, now also
    // holding across both engines and both state backends.
    GoldenCase c{"churn_plod_zero_rate_plan", 0x69a0bd51b6db4f6aull, {}, 105,
                 {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.churn.enable = true;
    c.options.churn.partner_recovery_seconds = 20.0;
    c.options.faults = ZeroRatePlan();
    c.options.seed = 15;
    cases.push_back(c);
  }
  {
    // Same configuration and seeds as churn_plod but with an explicitly
    // constructed INACTIVE adaptation plan (probe interval 0): pinned to
    // the SAME digest — the inactive-plan bit-identity contract of the
    // adaptation layer, the exact analogue of churn_plod_zero_rate_plan.
    GoldenCase c{"churn_plod_inactive_adaptive_plan", 0x69a0bd51b6db4f6aull,
                 {}, 105, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.churn.enable = true;
    c.options.churn.partner_recovery_seconds = 20.0;
    c.options.adaptive.probe_interval_seconds = 0.0;
    c.options.adaptive.decision_interval_seconds = 7.0;
    c.options.adaptive.policy.suggested_outdegree = 25.0;
    c.options.seed = 15;
    cases.push_back(c);
  }
  {
    // Same configuration and seeds as churn_plod but with an explicitly
    // constructed INACTIVE consistency plan (change rate 0, every other
    // knob non-default, replication flags set): pinned to the SAME
    // digest — the inactive-plan bit-identity contract of the
    // index-consistency layer, the exact analogue of
    // churn_plod_zero_rate_plan.
    GoldenCase c{"churn_plod_inactive_consistency_plan",
                 0x69a0bd51b6db4f6aull, {}, 105, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.churn.enable = true;
    c.options.churn.partner_recovery_seconds = 20.0;
    c.options.consistency.change_rate_per_client = 0.0;
    c.options.consistency.scheme = ConsistencyScheme::kPushInvalidate;
    c.options.consistency.ttr_seconds = 3.5;
    c.options.consistency.replication.owner_replication = true;
    c.options.consistency.replication.path_replication = true;
    c.options.consistency.replication.replication_factor = 3;
    c.options.seed = 15;
    cases.push_back(c);
  }
  {
    // Live adaptation on the Section 5.3 bad topology: splits,
    // coalesces, peering and the TTL broadcast all mutate the instance
    // mid-run, and the converged network must still be bit-identical
    // across engines and state backends. Digest generated at
    // introduction (no pre-overhaul implementation existed).
    GoldenCase c{"adaptive_plod", 0x006dd28398706a0cull, {}, 108, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 4.0;
    c.config.ttl = 5;
    c.config.avg_outdegree = 3.1;
    c.options.adaptive.probe_interval_seconds = 2.0;
    c.options.adaptive.decision_interval_seconds = 10.0;
    c.options.adaptive.policy.max_bandwidth_bps = 1.0e7;
    c.options.adaptive.policy.max_proc_hz = 2.0e6;
    c.options.seed = 18;
    cases.push_back(c);
  }
  {
    // Concrete-index + result cache: exercises the interned query
    // strings and the per-cluster cache tables, the two state pieces
    // with the subtlest dense-backend rewrites.
    GoldenCase c{"concrete_cache_plod", 0x803b5184d94f833bull, {}, 107, {}};
    c.config.graph_size = 200;
    c.config.cluster_size = 10.0;
    c.config.ttl = 3;
    c.config.avg_outdegree = 4.0;
    c.options.concrete_index = true;
    c.options.result_cache_ttl_seconds = 30.0;
    c.options.seed = 17;
    cases.push_back(c);
  }
  {
    // Same configuration and seeds as flood_plod but with an explicitly
    // constructed DISABLED routing layer (non-default digest geometry,
    // enabled = false): pinned to the SAME digest — the inactive-layer
    // bit-identity contract of the routing-index layer, the exact
    // analogue of churn_plod_zero_rate_plan.
    GoldenCase c{"flood_plod_inactive_routing", 0xa9c5873452eb3e5full, {}, 101,
                 {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.routing.enable = false;
    c.options.routing.digest_bits = 1024;
    c.options.routing.num_hashes = 5;
    c.options.routing.refresh_interval_seconds = 7.0;
    c.options.seed = 11;
    cases.push_back(c);
  }
  {
    // Content-pruned flood (ISSUE 8): digest-table build, periodic
    // DigestAnnounce refreshes and per-edge forward suppression all
    // inside the measured window. Digest generated at introduction.
    GoldenCase c{"routed_flood_plod", 0x19e7f12e23d2cb1eull, {}, 109, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.strategy = SearchStrategy::kRoutedFlood;
    c.options.routing.enable = true;
    c.options.seed = 19;
    cases.push_back(c);
  }
  {
    // Digest-biased k-walker (ISSUE 8): biased neighbor choice, first
    // visit dedup and direct responses. Digest generated at
    // introduction.
    GoldenCase c{"walker_plod", 0x94c679b1d5acf2b4ull, {}, 110, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.strategy = SearchStrategy::kWalker;
    c.options.num_walkers = 8;
    c.options.walk_ttl = 32;
    c.options.seed = 20;
    cases.push_back(c);
  }
  {
    // Routed expanding ring (ISSUE 8): routing.enable pruning each
    // iterative-deepening wave, on the complete best case so the
    // per-destination digest path is exercised too. Digest generated at
    // introduction.
    GoldenCase c{"routed_ring_complete", 0x91f02fb0b37e8009ull, {}, 111, {}};
    c.config.graph_type = GraphType::kStronglyConnected;
    c.config.graph_size = 300;
    c.config.cluster_size = 10.0;
    c.config.ttl = 2;
    c.options.strategy = SearchStrategy::kExpandingRing;
    c.options.ring_satisfaction_results = 10;
    c.options.routing.enable = true;
    c.options.seed = 21;
    cases.push_back(c);
  }
  {
    // Same configuration and seeds as churn_plod but with an explicitly
    // constructed INACTIVE capacity plan (every knob non-default,
    // enable = false): pinned to the SAME digest — the inactive-plan
    // bit-identity contract of the capacity layer, the exact analogue
    // of churn_plod_zero_rate_plan. An inactive plan must never touch
    // the capacity stream, schedule a window event or perturb a single
    // protocol draw.
    GoldenCase c{"churn_plod_inactive_capacity_plan", 0x69a0bd51b6db4f6aull,
                 {}, 105, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.churn.enable = true;
    c.options.churn.partner_recovery_seconds = 20.0;
    c.options.capacity.enable = false;
    c.options.capacity.window_seconds = 3.5;
    c.options.capacity.overload_utilization = 0.4;
    c.options.capacity.capacity_aware_election = false;
    c.options.capacity.demote_overloaded = false;
    c.options.seed = 15;
    cases.push_back(c);
  }
  {
    // Live capacity plan over the Section 5.3 adaptation scenario
    // (ISSUE 10): utilization windows, capacity-aware election on
    // splits and sustained-overload head demotions all active. Digest
    // generated at introduction.
    GoldenCase c{"capacity_adaptive_plod", 0x7d01dfeabe2c4b53ull, {}, 112, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 4.0;
    c.config.ttl = 5;
    c.config.avg_outdegree = 3.1;
    c.options.adaptive.probe_interval_seconds = 2.0;
    c.options.adaptive.decision_interval_seconds = 10.0;
    c.options.adaptive.policy.max_bandwidth_bps = 1.0e7;
    c.options.adaptive.policy.max_proc_hz = 2.0e6;
    c.options.capacity.enable = true;
    c.options.capacity.window_seconds = 10.0;
    c.options.seed = 22;
    cases.push_back(c);
  }
  for (GoldenCase& c : cases) {
    c.options.duration_seconds = 120.0;
    c.options.warmup_seconds = 12.0;
  }
  return cases;
}

struct MatrixRun {
  SimReport report;
  std::string protocol_metrics;
};

MatrixRun RunCombo(const GoldenCase& c, SimEngine engine,
                   SimStateBackend backend) {
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(c.instance_seed);
  const NetworkInstance instance = GenerateInstance(c.config, inputs, rng);
  SimOptions options = c.options;
  options.engine = engine;
  options.state_backend = backend;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  Simulator sim(instance, c.config, inputs, options);
  return {sim.Run(), ProtocolMetricsJson(metrics)};
}

class EngineEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineEquivalenceTest, MatrixBitIdenticalAndPinnedToPreOverhaulGolden) {
  const GoldenCase c = GoldenCases()[GetParam()];

  const MatrixRun baseline =
      RunCombo(c, SimEngine::kHeapReference, SimStateBackend::kMapReference);
  const std::uint64_t baseline_digest = ReportDigest(baseline.report);

  // The reference-engine run reproduces the pre-overhaul simulator
  // exactly.
  EXPECT_EQ(baseline_digest, c.digest) << c.name;

  const struct {
    SimEngine engine;
    SimStateBackend backend;
    const char* label;
  } combos[] = {
      {SimEngine::kHeapReference, SimStateBackend::kDense, "heap+dense"},
      {SimEngine::kCalendar, SimStateBackend::kMapReference, "calendar+map"},
      {SimEngine::kCalendar, SimStateBackend::kDense, "calendar+dense"},
  };
  for (const auto& combo : combos) {
    const MatrixRun run = RunCombo(c, combo.engine, combo.backend);
    SCOPED_TRACE(std::string(c.name) + " / " + combo.label);
    EXPECT_EQ(ReportDigest(run.report), baseline_digest);
    // The whole-run event totals postdate the goldens; hold them equal
    // across the matrix directly (scheduling the identical event stream
    // must count identically).
    EXPECT_EQ(run.report.events_scheduled, baseline.report.events_scheduled);
    EXPECT_EQ(run.report.events_dispatched,
              baseline.report.events_dispatched);
    EXPECT_EQ(run.report.queue_depth_hwm, baseline.report.queue_depth_hwm);
    // Index memory is excluded from the digest (toolchain-dependent),
    // but within one build it cannot depend on the engine.
    EXPECT_EQ(run.report.mean_index_memory_bytes,
              baseline.report.mean_index_memory_bytes);
    // The adaptation tallies and converged-network fields postdate the
    // goldens; the identical event stream must adapt identically.
    EXPECT_EQ(run.report.adapt_rounds, baseline.report.adapt_rounds);
    EXPECT_EQ(run.report.adapt_splits, baseline.report.adapt_splits);
    EXPECT_EQ(run.report.adapt_coalesces, baseline.report.adapt_coalesces);
    EXPECT_EQ(run.report.adapt_edges_added,
              baseline.report.adapt_edges_added);
    EXPECT_EQ(run.report.adapt_ttl_decreases,
              baseline.report.adapt_ttl_decreases);
    EXPECT_EQ(run.report.adapt_probes_sent,
              baseline.report.adapt_probes_sent);
    EXPECT_EQ(run.report.adapt_reports_received,
              baseline.report.adapt_reports_received);
    EXPECT_EQ(run.report.adapt_client_moves,
              baseline.report.adapt_client_moves);
    EXPECT_EQ(run.report.adapt_converged, baseline.report.adapt_converged);
    EXPECT_EQ(run.report.adapt_converged_round,
              baseline.report.adapt_converged_round);
    // The capacity-plane tallies also postdate the goldens; hold them
    // equal across the matrix directly.
    EXPECT_EQ(run.report.adapt_demotions, baseline.report.adapt_demotions);
    EXPECT_EQ(run.report.capacity_windows, baseline.report.capacity_windows);
    EXPECT_EQ(run.report.capacity_overload_episodes,
              baseline.report.capacity_overload_episodes);
    EXPECT_EQ(run.report.capacity_mean_utilization,
              baseline.report.capacity_mean_utilization);
    EXPECT_EQ(run.report.capacity_overloaded_fraction,
              baseline.report.capacity_overloaded_fraction);
    EXPECT_EQ(run.report.capacity_sp_mean_utilization,
              baseline.report.capacity_sp_mean_utilization);
    EXPECT_EQ(run.report.capacity_sp_overloaded_fraction,
              baseline.report.capacity_sp_overloaded_fraction);
    EXPECT_EQ(run.report.capacity_sp_p99_utilization,
              baseline.report.capacity_sp_p99_utilization);
    EXPECT_EQ(run.report.final_clusters, baseline.report.final_clusters);
    EXPECT_EQ(run.report.final_ttl, baseline.report.final_ttl);
    EXPECT_EQ(run.report.final_avg_outdegree,
              baseline.report.final_avg_outdegree);
    EXPECT_EQ(run.protocol_metrics, baseline.protocol_metrics);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGoldenCases, EngineEquivalenceTest,
                         // Derived from the case table so a new golden can
                         // never be silently skipped by a stale bound.
                         ::testing::Range<std::size_t>(0, GoldenCases().size()),
                         [](const auto& info) {
                           return GoldenCases()[info.param].name;
                         });

TEST(EngineEquivalenceTrialsTest, BitIdenticalAcrossParallelismAndEngines) {
  Configuration config;
  config.graph_size = 300;
  config.cluster_size = 10.0;
  config.redundancy = true;
  config.ttl = 4;
  config.avg_outdegree = 4.0;
  const ModelInputs inputs = ModelInputs::Default();

  const auto run = [&](SimEngine engine, SimStateBackend backend,
                       std::size_t parallelism) {
    SimTrialOptions options;
    options.num_trials = 4;
    options.seed = 77;
    options.parallelism = parallelism;
    options.sim.duration_seconds = 60.0;
    options.sim.warmup_seconds = 10.0;
    options.sim.churn.enable = true;
    options.sim.faults = ActivePlan();
    options.sim.engine = engine;
    options.sim.state_backend = backend;
    MetricsRegistry metrics;
    options.metrics = &metrics;
    const SimTrialReport report = RunTrials(config, inputs, options);
    // Fold the cross-trial surface into one comparable string: the
    // protocol-level metrics (identical across engines AND parallelism)
    // plus the trial report's counter totals and per-trial means.
    std::ostringstream out;
    out << ProtocolMetricsJson(metrics) << report.trials << ','
        << report.queries_submitted << ',' << report.responses_delivered
        << ',' << report.partner_failures << ',' << report.partner_recoveries
        << ',' << report.cluster_outages << ',' << report.faults_crashes
        << ',' << report.faults_messages_dropped << ','
        << report.faults_retries << ',' << report.queries_succeeded << ','
        << report.queries_failed << ','
        << report.cluster_outage_fraction.Mean() << ','
        << report.query_success_rate.Mean() << ','
        << report.mean_recovery_latency_seconds.Mean();
    return out.str();
  };

  const std::string reference =
      run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 1);
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2},
                                        std::size_t{8}}) {
    EXPECT_EQ(run(SimEngine::kCalendar, SimStateBackend::kDense, parallelism),
              reference)
        << "parallelism=" << parallelism;
  }
  EXPECT_EQ(run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 8),
            reference);
}

TEST(EngineEquivalenceTrialsTest,
     AdaptiveBitIdenticalAcrossParallelismAndEngines) {
  Configuration config;
  config.graph_size = 400;
  config.cluster_size = 4.0;
  config.ttl = 5;
  config.avg_outdegree = 3.1;
  const ModelInputs inputs = ModelInputs::Default();

  const auto run = [&](SimEngine engine, SimStateBackend backend,
                       std::size_t parallelism) {
    SimTrialOptions options;
    options.num_trials = 3;
    options.seed = 78;
    options.parallelism = parallelism;
    options.sim.duration_seconds = 60.0;
    options.sim.warmup_seconds = 10.0;
    options.sim.adaptive.probe_interval_seconds = 2.0;
    options.sim.adaptive.decision_interval_seconds = 10.0;
    options.sim.adaptive.policy.max_bandwidth_bps = 1.0e7;
    options.sim.adaptive.policy.max_proc_hz = 2.0e6;
    options.sim.engine = engine;
    options.sim.state_backend = backend;
    MetricsRegistry metrics;
    options.metrics = &metrics;
    const SimTrialReport report = RunTrials(config, inputs, options);
    // The sim.adaptive.* counters and sim.msg.{probe,report,control}
    // instruments ride inside ProtocolMetricsJson, so one folded string
    // holds the whole adaptation surface identical across the matrix.
    std::ostringstream out;
    out << ProtocolMetricsJson(metrics) << report.trials << ','
        << report.queries_submitted << ',' << report.responses_delivered
        << ',' << report.query_success_rate.Mean();
    return out.str();
  };

  const std::string reference =
      run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 1);
  ASSERT_NE(reference.find("sim.adaptive.rounds"), std::string::npos);
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2},
                                        std::size_t{8}}) {
    EXPECT_EQ(run(SimEngine::kCalendar, SimStateBackend::kDense, parallelism),
              reference)
        << "parallelism=" << parallelism;
  }
  EXPECT_EQ(run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 8),
            reference);
}

TEST(EngineEquivalenceTrialsTest,
     CapacityBitIdenticalAcrossParallelismAndEngines) {
  Configuration config;
  config.graph_size = 400;
  config.cluster_size = 4.0;
  config.ttl = 5;
  config.avg_outdegree = 3.1;
  const ModelInputs inputs = ModelInputs::Default();

  const auto run = [&](SimEngine engine, SimStateBackend backend,
                       std::size_t parallelism) {
    SimTrialOptions options;
    options.num_trials = 3;
    options.seed = 80;
    options.parallelism = parallelism;
    options.sim.duration_seconds = 60.0;
    options.sim.warmup_seconds = 10.0;
    options.sim.adaptive.probe_interval_seconds = 2.0;
    options.sim.adaptive.decision_interval_seconds = 10.0;
    options.sim.adaptive.policy.max_bandwidth_bps = 1.0e7;
    options.sim.adaptive.policy.max_proc_hz = 2.0e6;
    options.sim.capacity.enable = true;
    options.sim.capacity.window_seconds = 5.0;
    options.sim.engine = engine;
    options.sim.state_backend = backend;
    MetricsRegistry metrics;
    options.metrics = &metrics;
    const SimTrialReport report = RunTrials(config, inputs, options);
    // The sim.capacity.* instruments (including the utilization
    // histogram) and sim.adaptive.demotions ride inside
    // ProtocolMetricsJson: each per-trial capacity stream must land on
    // identical windows regardless of engine, backend or how trials are
    // spread over worker threads.
    std::ostringstream out;
    out << ProtocolMetricsJson(metrics) << report.trials << ','
        << report.queries_submitted << ',' << report.responses_delivered
        << ',' << report.query_success_rate.Mean();
    return out.str();
  };

  const std::string reference =
      run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 1);
  ASSERT_NE(reference.find("sim.capacity."), std::string::npos);
  ASSERT_NE(reference.find("sim.adaptive.demotions"), std::string::npos);
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2},
                                        std::size_t{8}}) {
    EXPECT_EQ(run(SimEngine::kCalendar, SimStateBackend::kDense, parallelism),
              reference)
        << "parallelism=" << parallelism;
  }
  EXPECT_EQ(run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 8),
            reference);
}

TEST(EngineEquivalenceTrialsTest,
     RoutedFloodBitIdenticalAcrossParallelismAndEngines) {
  Configuration config;
  config.graph_size = 300;
  config.cluster_size = 10.0;
  config.ttl = 4;
  config.avg_outdegree = 4.0;
  const ModelInputs inputs = ModelInputs::Default();

  const auto run = [&](SimEngine engine, SimStateBackend backend,
                       std::size_t parallelism) {
    SimTrialOptions options;
    options.num_trials = 3;
    options.seed = 79;
    options.parallelism = parallelism;
    options.sim.duration_seconds = 60.0;
    options.sim.warmup_seconds = 10.0;
    options.sim.strategy = SearchStrategy::kRoutedFlood;
    options.sim.routing.enable = true;
    options.sim.engine = engine;
    options.sim.state_backend = backend;
    MetricsRegistry metrics;
    options.metrics = &metrics;
    const SimTrialReport report = RunTrials(config, inputs, options);
    // The sim.msg.digest.* and sim.routing.* instruments ride inside
    // ProtocolMetricsJson; trial-level parallelism (independent sims on
    // threads) composes with the routing layer even though in-sim
    // sharding does not.
    std::ostringstream out;
    out << ProtocolMetricsJson(metrics) << report.trials << ','
        << report.queries_submitted << ',' << report.responses_delivered
        << ',' << report.query_success_rate.Mean();
    return out.str();
  };

  const std::string reference =
      run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 1);
  ASSERT_NE(reference.find("sim.msg.digest.sent"), std::string::npos);
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2},
                                        std::size_t{8}}) {
    EXPECT_EQ(run(SimEngine::kCalendar, SimStateBackend::kDense, parallelism),
              reference)
        << "parallelism=" << parallelism;
  }
  EXPECT_EQ(run(SimEngine::kHeapReference, SimStateBackend::kMapReference, 8),
            reference);
}

}  // namespace
}  // namespace sppnet
