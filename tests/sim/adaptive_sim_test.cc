// The in-simulation adaptation layer (sim/adaptive_sim.*): validated
// options abort on bad plans at every entry point, an inactive plan
// leaves runs bit-identical to a build without the layer, active
// adaptation is seed-reproducible, converges on the Section 5.3 bad
// topology, and composes with the fault layer (the network re-converges
// around crash episodes).

#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/export.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/adaptive_sim.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

// The deliberately bad starting topology of Section 5.3, scaled down
// for test runtime: tiny clusters, sparse overlay, oversized TTL.
Configuration BadTopology() {
  Configuration config;
  config.graph_size = 400;
  config.cluster_size = 4;
  config.avg_outdegree = 3.1;
  config.ttl = 5;
  return config;
}

AdaptivePlan ActivePlan() {
  AdaptivePlan plan;
  plan.probe_interval_seconds = 2.0;
  plan.decision_interval_seconds = 10.0;
  return plan;
}

struct AdaptiveRun {
  SimReport report;
  std::string metrics_json;
};

AdaptiveRun RunSim(const Configuration& config, std::uint64_t instance_seed,
                const SimOptions& base_options) {
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(instance_seed);
  const NetworkInstance instance = GenerateInstance(config, inputs, rng);
  SimOptions options = base_options;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  Simulator sim(instance, config, inputs, options);
  AdaptiveRun out;
  out.report = sim.Run();
  std::ostringstream json;
  WriteDeterministicMetricsJson(json, metrics);
  out.metrics_json = json.str();
  return out;
}

// --- Validated options ------------------------------------------------------

using AdaptiveSimDeathTest = ::testing::Test;

TEST(AdaptiveSimDeathTest, PlanValidateRejectsBadIntervals) {
  {
    AdaptivePlan plan;
    plan.probe_interval_seconds = -1.0;
    EXPECT_DEATH(plan.Validate(), "probe interval");
  }
  {
    AdaptivePlan plan;
    plan.decision_interval_seconds = 0.0;
    EXPECT_DEATH(plan.Validate(), "decision interval");
  }
  {
    AdaptivePlan plan;
    plan.probe_interval_seconds = 60.0;
    plan.decision_interval_seconds = 10.0;
    EXPECT_DEATH(plan.Validate(), "must not exceed");
  }
  {
    // An active plan validates its policy too.
    AdaptivePlan plan = ActivePlan();
    plan.policy.max_bandwidth_bps = 0.0;
    EXPECT_DEATH(plan.Validate(), "bandwidth limit");
  }
  // Inactive and active well-formed plans pass.
  AdaptivePlan{}.Validate();
  ActivePlan().Validate();
}

TEST(AdaptiveSimDeathTest, SimOptionsValidateRejectsBadValues) {
  {
    SimOptions options;
    options.duration_seconds = 0.0;
    EXPECT_DEATH(options.Validate(), "duration");
  }
  {
    SimOptions options;
    options.warmup_seconds = -1.0;
    EXPECT_DEATH(options.Validate(), "warmup");
  }
  {
    SimOptions options;
    options.hop_latency_seconds = -0.1;
    EXPECT_DEATH(options.Validate(), "hop latency");
  }
  {
    SimOptions options;
    options.faults.message_drop_probability = 2.0;
    EXPECT_DEATH(options.Validate(), "drop probability");
  }
  {
    SimOptions options;
    options.adaptive.decision_interval_seconds = -3.0;
    EXPECT_DEATH(options.Validate(), "decision interval");
  }
  SimOptions{}.Validate();
}

TEST(AdaptiveSimDeathTest, ActiveAdaptationRejectsIncompatibleFeatures) {
  {
    SimOptions options;
    options.adaptive = ActivePlan();
    options.strategy = SearchStrategy::kExpandingRing;
    EXPECT_DEATH(options.Validate(), "flood strategy");
  }
  {
    SimOptions options;
    options.adaptive = ActivePlan();
    options.concrete_index = true;
    EXPECT_DEATH(options.Validate(), "abstract indexes");
  }
  {
    SimOptions options;
    options.adaptive = ActivePlan();
    options.result_cache_ttl_seconds = 30.0;
    EXPECT_DEATH(options.Validate(), "result cache");
  }
  SimOptions options;
  options.adaptive = ActivePlan();
  options.Validate();
}

TEST(AdaptiveSimDeathTest, SimulatorConstructorValidates) {
  const Configuration config = BadTopology();
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(21);
  const NetworkInstance instance = GenerateInstance(config, inputs, rng);
  SimOptions options;
  options.adaptive = ActivePlan();
  options.result_cache_ttl_seconds = 30.0;
  EXPECT_DEATH(Simulator(instance, config, inputs, options), "result cache");
}

TEST(AdaptiveSimDeathTest, AdaptationRequiresNonRedundantClusters) {
  Configuration config = BadTopology();
  config.redundancy = true;  // k = 2.
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(22);
  const NetworkInstance instance = GenerateInstance(config, inputs, rng);
  SimOptions options;
  options.adaptive = ActivePlan();
  EXPECT_DEATH(Simulator(instance, config, inputs, options),
               "redundancy_k == 1");
}

// --- Inactive-plan bit-identity --------------------------------------------

TEST(AdaptiveSimTest, InactivePlanBitIdenticalToDefaultRun) {
  const Configuration config = BadTopology();
  SimOptions options;
  options.duration_seconds = 60.0;
  options.warmup_seconds = 10.0;
  options.seed = 31;
  options.churn.enable = true;
  const AdaptiveRun baseline = RunSim(config, 23, options);

  // An explicitly constructed inactive plan (interval 0, tweaked policy
  // fields) must not perturb anything: same metrics surface, same
  // report, zero adaptation tallies.
  SimOptions with_plan = options;
  with_plan.adaptive.probe_interval_seconds = 0.0;
  with_plan.adaptive.decision_interval_seconds = 7.0;
  with_plan.adaptive.policy.suggested_outdegree = 25.0;
  const AdaptiveRun run = RunSim(config, 23, with_plan);

  EXPECT_EQ(run.metrics_json, baseline.metrics_json);
  EXPECT_EQ(run.report.events_scheduled, baseline.report.events_scheduled);
  EXPECT_EQ(run.report.events_dispatched, baseline.report.events_dispatched);
  EXPECT_EQ(run.report.queries_submitted, baseline.report.queries_submitted);
  EXPECT_EQ(run.report.aggregate.in_bps, baseline.report.aggregate.in_bps);
  EXPECT_EQ(run.report.aggregate.out_bps, baseline.report.aggregate.out_bps);
  EXPECT_EQ(run.report.aggregate.proc_hz, baseline.report.aggregate.proc_hz);
  EXPECT_EQ(run.report.adapt_rounds, 0u);
  EXPECT_EQ(run.report.adapt_probes_sent, 0u);
  EXPECT_FALSE(run.report.adapt_converged);
  // An inactive run's final network is the input network.
  EXPECT_EQ(run.report.final_clusters, 100u);
  EXPECT_EQ(run.report.final_ttl, config.ttl);
  // And no adaptation instrument appears in the registry.
  EXPECT_EQ(run.metrics_json.find("sim.adaptive."), std::string::npos);
  EXPECT_EQ(run.metrics_json.find("sim.msg.probe"), std::string::npos);
}

// --- Active adaptation -------------------------------------------------------

TEST(AdaptiveSimTest, ActiveRunIsSeedReproducible) {
  const Configuration config = BadTopology();
  SimOptions options;
  options.duration_seconds = 80.0;
  options.warmup_seconds = 40.0;
  options.seed = 32;
  options.adaptive = ActivePlan();
  const AdaptiveRun a = RunSim(config, 24, options);
  const AdaptiveRun b = RunSim(config, 24, options);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.report.adapt_rounds, b.report.adapt_rounds);
  EXPECT_EQ(a.report.final_clusters, b.report.final_clusters);
  EXPECT_EQ(a.report.final_ttl, b.report.final_ttl);
  EXPECT_EQ(a.report.final_avg_outdegree, b.report.final_avg_outdegree);
  EXPECT_EQ(a.report.aggregate.in_bps, b.report.aggregate.in_bps);

  // A different simulation seed drives different adaptation decisions
  // (the salted stream is derived from it).
  SimOptions other = options;
  other.seed = 33;
  const AdaptiveRun c = RunSim(config, 24, other);
  EXPECT_NE(a.metrics_json, c.metrics_json);
}

// Policy scaled to the small test workload: processing is the binding
// resource (per-head bandwidth at this scale never reaches the paper's
// defaults), which gives the run an interior equilibrium with all
// three rules exercised.
LocalPolicy TestPolicy() {
  LocalPolicy policy;
  policy.max_bandwidth_bps = 1.0e7;
  policy.max_proc_hz = 2.0e6;
  return policy;
}

TEST(AdaptiveSimTest, ConvergesOnBadTopology) {
  const Configuration config = BadTopology();
  SimOptions options;
  options.duration_seconds = 500.0;
  options.warmup_seconds = 400.0;  // ~40 decision rounds to settle.
  options.seed = 34;
  options.adaptive = ActivePlan();
  options.adaptive.policy = TestPolicy();
  const AdaptiveRun run = RunSim(config, 25, options);
  const SimReport& r = run.report;

  // The protocol actually ran.
  ASSERT_GT(r.adapt_rounds, 10u);
  EXPECT_GT(r.adapt_probes_sent, 0u);
  EXPECT_GT(r.adapt_reports_received, 0u);

  // Section 5.3 direction of travel from the bad topology: tiny idle
  // clusters coalesce (fewer, bigger clusters), the overlay grows
  // toward the suggested outdegree, and the oversized TTL contracts.
  EXPECT_GT(r.adapt_coalesces, 0u);
  EXPECT_LT(r.final_clusters, 100u);
  EXPECT_GT(r.adapt_edges_added, 0u);
  EXPECT_GT(r.final_avg_outdegree, 3.1);
  EXPECT_GT(r.adapt_ttl_decreases, 0u);
  EXPECT_LT(r.final_ttl, config.ttl);
  EXPECT_GE(r.final_ttl, 1);

  // And the rules went quiescent: the trailing rounds changed nothing.
  EXPECT_TRUE(r.adapt_converged);
  ASSERT_GT(r.adapt_converged_round, 0u);
  EXPECT_LE(r.adapt_converged_round, r.adapt_rounds);

  // Clients moved through coalesces (re-upload joins flowed).
  EXPECT_GT(r.adapt_client_moves, 0u);
}

TEST(AdaptiveSimTest, ReconvergesUnderFaultInjection) {
  const Configuration config = BadTopology();
  SimOptions options;
  options.duration_seconds = 500.0;
  options.warmup_seconds = 400.0;
  options.seed = 35;
  options.adaptive = ActivePlan();
  options.adaptive.policy = TestPolicy();
  // A fault plan with real crash episodes: heads go down mid-run and
  // their clients re-join other clusters via discovery.
  options.faults.crash_rate_per_partner = 1.0e-3;
  options.faults.crash_recovery_seconds = 20.0;
  options.faults.request_timeout_seconds = 2.0;
  const AdaptiveRun run = RunSim(config, 26, options);
  const SimReport& r = run.report;

  // Faults actually happened, and adaptation kept going.
  ASSERT_GT(r.faults_crashes, 0u);
  ASSERT_GT(r.adapt_rounds, 10u);
  EXPECT_GT(r.adapt_coalesces, 0u);
  EXPECT_LT(r.final_clusters, 100u);

  // The network still settles: quiescent through the tail of the run
  // despite crash/recovery episodes.
  EXPECT_TRUE(r.adapt_converged);

  // Reproducible under the composed fault + adaptation layers.
  const AdaptiveRun again = RunSim(config, 26, options);
  EXPECT_EQ(run.metrics_json, again.metrics_json);
}

}  // namespace
}  // namespace sppnet
