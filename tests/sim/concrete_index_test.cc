// Tests for the simulator's concrete-index mode: every super-peer runs
// a real inverted index over corpus titles instead of the Appendix-B
// probabilistic query model.

#include <gtest/gtest.h>

#include "sppnet/index/corpus.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

class ConcreteIndexTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();

  Configuration MakeConfig() const {
    Configuration c;
    c.graph_size = 300;
    c.cluster_size = 10;
    c.ttl = 5;
    c.avg_outdegree = 4.0;
    return c;
  }

  SimReport Run(const Configuration& c, SimOptions options,
                std::uint64_t seed = 31) {
    Rng rng(seed);
    const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
    Simulator sim(inst, c, inputs_, options);
    return sim.Run();
  }
};

TEST_F(ConcreteIndexTest, ProducesRealResults) {
  SimOptions options;
  options.duration_seconds = 400;
  options.warmup_seconds = 40;
  options.concrete_index = true;
  const SimReport r = Run(MakeConfig(), options);
  EXPECT_GT(r.queries_submitted, 0u);
  EXPECT_GT(r.responses_delivered, 0u);
  EXPECT_GT(r.mean_results_per_query, 0.0);
  EXPECT_GT(r.mean_index_memory_bytes, 1000.0);
}

TEST_F(ConcreteIndexTest, DeterministicForSameSeed) {
  SimOptions options;
  options.duration_seconds = 150;
  options.warmup_seconds = 15;
  options.concrete_index = true;
  const SimReport a = Run(MakeConfig(), options);
  const SimReport b = Run(MakeConfig(), options);
  EXPECT_EQ(a.responses_delivered, b.responses_delivered);
  EXPECT_DOUBLE_EQ(a.mean_results_per_query, b.mean_results_per_query);
  EXPECT_DOUBLE_EQ(a.aggregate.TotalBps(), b.aggregate.TotalBps());
}

TEST_F(ConcreteIndexTest, ResultsTrackCorpusCalibratedPrediction) {
  // A corpus-calibrated analytical model should predict the concrete
  // simulation's mean results to within a factor of ~2 (the fit is a
  // two-parameter summary of the corpus).
  const Configuration c = MakeConfig();
  Rng rng(32);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);

  Rng calibration_rng(33);
  const TitleCorpus corpus = TitleCorpus::Default();
  const CorpusModelEstimate est =
      MeasureCorpusModel(corpus, 10000, 100, 2000, calibration_rng);

  double reachable_files = 0.0;
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    reachable_files += inst.indexed_files[i];  // TTL 5 reaches ~all 30.
  }
  const double predicted = est.match_probability * reachable_files;

  SimOptions options;
  options.duration_seconds = 600;
  options.warmup_seconds = 60;
  options.concrete_index = true;
  Simulator sim(inst, c, inputs_, options);
  const SimReport r = sim.Run();
  EXPECT_GT(r.mean_results_per_query, 0.4 * predicted);
  EXPECT_LT(r.mean_results_per_query, 2.5 * predicted);
}

TEST_F(ConcreteIndexTest, WorksWithRedundancy) {
  Configuration c = MakeConfig();
  c.redundancy = true;
  SimOptions options;
  options.duration_seconds = 200;
  options.warmup_seconds = 20;
  options.concrete_index = true;
  const SimReport r = Run(c, options);
  EXPECT_GT(r.mean_results_per_query, 0.0);
  EXPECT_GT(r.aggregate.TotalBps(), 0.0);
}

TEST_F(ConcreteIndexTest, WorksWithExpandingRing) {
  SimOptions options;
  options.duration_seconds = 250;
  options.warmup_seconds = 25;
  options.concrete_index = true;
  options.strategy = SearchStrategy::kExpandingRing;
  options.ring_satisfaction_results = 5;
  const SimReport r = Run(MakeConfig(), options);
  EXPECT_GT(r.queries_submitted, 0u);
  EXPECT_GE(r.mean_rings_per_query, 1.0);
}

TEST_F(ConcreteIndexTest, UpdatesKeepIndexSizeStable) {
  // Concrete updates replace files one for one, so the index memory
  // footprint stays in the same range over a long run with a high
  // update rate.
  Configuration c = MakeConfig();
  c.update_rate = 0.05;  // Aggressive churn of file metadata.
  c.query_rate = 1e-4;   // Keep the run cheap.
  SimOptions short_options;
  short_options.duration_seconds = 50;
  short_options.warmup_seconds = 5;
  short_options.concrete_index = true;
  SimOptions long_options = short_options;
  long_options.duration_seconds = 500;
  const SimReport early = Run(c, short_options);
  const SimReport late = Run(c, long_options);
  EXPECT_NEAR(late.mean_index_memory_bytes, early.mean_index_memory_bytes,
              0.15 * early.mean_index_memory_bytes);
}

TEST_F(ConcreteIndexTest, AbstractAndConcreteLoadsSameOrder) {
  // Byte accounting is cost-model driven in both modes; with the
  // default corpus the result counts differ (different workload), but
  // query-message traffic must be identical in structure, so total
  // load stays within the same order of magnitude.
  const Configuration c = MakeConfig();
  SimOptions options;
  options.duration_seconds = 300;
  options.warmup_seconds = 30;
  const SimReport abstract = Run(c, options);
  options.concrete_index = true;
  const SimReport concrete = Run(c, options);
  EXPECT_GT(concrete.aggregate.TotalBps(), 0.1 * abstract.aggregate.TotalBps());
  EXPECT_LT(concrete.aggregate.TotalBps(), 10.0 * abstract.aggregate.TotalBps());
}

}  // namespace
}  // namespace sppnet
