// Tests for the alternative search strategies (the paper treats routing
// protocols as orthogonal to super-peer design; the simulator offers
// expanding ring and random walks next to the baseline flood).

#include <gtest/gtest.h>

#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

class SearchStrategyTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();

  Configuration MakeConfig() const {
    Configuration c;
    c.graph_size = 600;
    c.cluster_size = 10;
    c.ttl = 6;
    c.avg_outdegree = 4.0;
    return c;
  }

  SimReport Run(const Configuration& c, SearchStrategy strategy,
                std::uint64_t seed = 21) {
    Rng rng(seed);
    const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
    SimOptions options;
    options.duration_seconds = 300;
    options.warmup_seconds = 30;
    options.strategy = strategy;
    options.seed = 5;
    Simulator sim(inst, c, inputs_, options);
    return sim.Run();
  }
};

TEST_F(SearchStrategyTest, ExpandingRingDeliversResults) {
  const SimReport r = Run(MakeConfig(), SearchStrategy::kExpandingRing);
  EXPECT_GT(r.queries_submitted, 0u);
  EXPECT_GT(r.responses_delivered, 0u);
  EXPECT_GT(r.mean_results_per_query, 0.0);
  EXPECT_GE(r.mean_rings_per_query, 1.0);
  EXPECT_LE(r.mean_rings_per_query, 6.0);
}

TEST_F(SearchStrategyTest, ExpandingRingStopsEarlyWhenSatisfied) {
  // With a tiny satisfaction threshold the first ring usually suffices;
  // with a huge one the ring must grow to the TTL budget.
  Configuration c = MakeConfig();
  Rng rng(22);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions easy;
  easy.duration_seconds = 200;
  easy.warmup_seconds = 20;
  easy.strategy = SearchStrategy::kExpandingRing;
  easy.ring_satisfaction_results = 1;
  SimOptions greedy = easy;
  greedy.ring_satisfaction_results = 100000;

  Simulator sim_easy(inst, c, inputs_, easy);
  Simulator sim_greedy(inst, c, inputs_, greedy);
  const SimReport r_easy = sim_easy.Run();
  const SimReport r_greedy = sim_greedy.Run();
  EXPECT_LT(r_easy.mean_rings_per_query, r_greedy.mean_rings_per_query);
  // An insatiable ring always runs to the full TTL.
  EXPECT_NEAR(r_greedy.mean_rings_per_query, 6.0, 0.2);
}

TEST_F(SearchStrategyTest, ExpandingRingCheaperThanFloodWhenEasilySatisfied) {
  Configuration c = MakeConfig();
  Rng rng(23);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions flood;
  flood.duration_seconds = 250;
  flood.warmup_seconds = 25;
  SimOptions ring = flood;
  ring.strategy = SearchStrategy::kExpandingRing;
  ring.ring_satisfaction_results = 5;

  Simulator sim_flood(inst, c, inputs_, flood);
  Simulator sim_ring(inst, c, inputs_, ring);
  const SimReport r_flood = sim_flood.Run();
  const SimReport r_ring = sim_ring.Run();
  // Easily satisfied queries never leave the small rings: much less
  // total traffic, fewer results.
  EXPECT_LT(r_ring.aggregate.TotalBps(), 0.7 * r_flood.aggregate.TotalBps());
  EXPECT_LT(r_ring.mean_results_per_query, r_flood.mean_results_per_query);
  // But higher latency to the first response (rings take time).
  EXPECT_GE(r_ring.mean_first_response_latency,
            0.8 * r_flood.mean_first_response_latency);
}

TEST_F(SearchStrategyTest, RandomWalkDeliversResultsAtBoundedCost) {
  Configuration c = MakeConfig();
  Rng rng(24);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions flood;
  flood.duration_seconds = 250;
  flood.warmup_seconds = 25;
  SimOptions walk = flood;
  walk.strategy = SearchStrategy::kRandomWalk;
  walk.num_walkers = 4;
  walk.walk_ttl = 10;

  Simulator sim_flood(inst, c, inputs_, flood);
  Simulator sim_walk(inst, c, inputs_, walk);
  const SimReport r_flood = sim_flood.Run();
  const SimReport r_walk = sim_walk.Run();

  EXPECT_GT(r_walk.mean_results_per_query, 0.0);
  // 4 walkers x 10 hops cover at most ~40 of the 60 clusters (far fewer
  // after revisits), while the flood reaches nearly all of them: walks
  // trade results for much lower traffic.
  EXPECT_LT(r_walk.mean_results_per_query, r_flood.mean_results_per_query);
  EXPECT_LT(r_walk.aggregate.TotalBps(), 0.7 * r_flood.aggregate.TotalBps());
}

TEST_F(SearchStrategyTest, MoreWalkersFindMoreResults) {
  Configuration c = MakeConfig();
  Rng rng(25);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions few;
  few.duration_seconds = 250;
  few.warmup_seconds = 25;
  few.strategy = SearchStrategy::kRandomWalk;
  few.num_walkers = 2;
  few.walk_ttl = 20;
  SimOptions many = few;
  many.num_walkers = 16;

  Simulator sim_few(inst, c, inputs_, few);
  Simulator sim_many(inst, c, inputs_, many);
  const SimReport r_few = sim_few.Run();
  const SimReport r_many = sim_many.Run();
  EXPECT_GT(r_many.mean_results_per_query,
            1.5 * r_few.mean_results_per_query);
}

TEST_F(SearchStrategyTest, RoutedFloodSavesBandwidthAtComparableRecall) {
  Configuration c = MakeConfig();
  Rng rng(27);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions flood;
  flood.duration_seconds = 250;
  flood.warmup_seconds = 25;
  SimOptions routed = flood;
  routed.strategy = SearchStrategy::kRoutedFlood;

  Simulator sim_flood(inst, c, inputs_, flood);
  Simulator sim_routed(inst, c, inputs_, routed);
  const SimReport r_flood = sim_flood.Run();
  const SimReport r_routed = sim_routed.Run();

  // The digests prune forwards a flood would have made...
  EXPECT_GT(r_routed.routing_suppressed_forwards, 0u);
  EXPECT_GT(r_routed.routing_digest_refreshes, 0u);
  EXPECT_LT(r_routed.aggregate.TotalBps(), r_flood.aggregate.TotalBps());
  // ...without giving up recall: a pruned edge leads only to clusters
  // that advertise no matching content (up to digest staleness beyond
  // the radius), so results stay comparable to the full flood's.
  EXPECT_GT(r_routed.mean_results_per_query,
            0.6 * r_flood.mean_results_per_query);
}

TEST_F(SearchStrategyTest, WalkerBeatsUnbiasedRandomWalk) {
  Configuration c = MakeConfig();
  Rng rng(28);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions unbiased;
  unbiased.duration_seconds = 250;
  unbiased.warmup_seconds = 25;
  unbiased.strategy = SearchStrategy::kRandomWalk;
  unbiased.num_walkers = 4;
  unbiased.walk_ttl = 10;
  SimOptions biased = unbiased;
  biased.strategy = SearchStrategy::kWalker;

  Simulator sim_unbiased(inst, c, inputs_, unbiased);
  Simulator sim_biased(inst, c, inputs_, biased);
  const SimReport r_unbiased = sim_unbiased.Run();
  const SimReport r_biased = sim_biased.Run();

  // Digest-biased hops steer walkers toward advertising clusters: more
  // results from the same hop budget.
  EXPECT_GT(r_biased.routing_biased_hops, 0u);
  EXPECT_GT(r_biased.mean_results_per_query,
            r_unbiased.mean_results_per_query);
}

TEST_F(SearchStrategyTest, RoutingPrunesExpandingRingWaves) {
  Configuration c = MakeConfig();
  Rng rng(29);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions plain;
  plain.duration_seconds = 250;
  plain.warmup_seconds = 25;
  plain.strategy = SearchStrategy::kExpandingRing;
  plain.ring_satisfaction_results = 10;
  SimOptions routed = plain;
  routed.routing.enable = true;

  Simulator sim_plain(inst, c, inputs_, plain);
  Simulator sim_routed(inst, c, inputs_, routed);
  const SimReport r_plain = sim_plain.Run();
  const SimReport r_routed = sim_routed.Run();

  EXPECT_GT(r_routed.routing_suppressed_forwards, 0u);
  EXPECT_LT(r_routed.aggregate.TotalBps(), r_plain.aggregate.TotalBps());
  EXPECT_GT(r_routed.mean_results_per_query, 0.0);
}

TEST_F(SearchStrategyTest, FloodLatencyScalesWithHopDelay) {
  Configuration c = MakeConfig();
  Rng rng(26);
  const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
  SimOptions fast;
  fast.duration_seconds = 150;
  fast.warmup_seconds = 15;
  fast.hop_latency_seconds = 0.02;
  SimOptions slow = fast;
  slow.hop_latency_seconds = 0.2;
  Simulator sim_fast(inst, c, inputs_, fast);
  Simulator sim_slow(inst, c, inputs_, slow);
  const SimReport r_fast = sim_fast.Run();
  const SimReport r_slow = sim_slow.Run();
  EXPECT_GT(r_slow.mean_first_response_latency,
            5.0 * r_fast.mean_first_response_latency);
}

}  // namespace
}  // namespace sppnet
