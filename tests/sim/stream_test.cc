// The streaming serving layer against the pre-refactor batch
// simulator: a run streamed window by window and finalized at the batch
// horizon must land on the SAME pre-overhaul golden report digests as
// Simulator::Run() — the Run()/Start()/RunUntil()/Finalize() split and
// the windowed metric publishes change nothing protocol-visible. On top
// of that the snapshot SEQUENCE itself is pinned: a golden FNV-1a over
// every window's protocol-relevant deltas, so any change to window
// boundaries, counter surfaces or delta arithmetic trips loudly.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/export.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/simulator.h"
#include "sppnet/sim/stream.h"

namespace sppnet {
namespace {

// Byte-for-byte the golden generator of engine_equivalence_test.cc:
// the pre-overhaul report field set, in declaration order.
std::uint64_t ReportDigest(const SimReport& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_d = [&](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  const auto mix_load = [&](const LoadVector& lv) {
    mix_d(lv.in_bps);
    mix_d(lv.out_bps);
    mix_d(lv.proc_hz);
  };
  mix_d(r.measured_seconds);
  for (const LoadVector& lv : r.partner_load) mix_load(lv);
  for (const LoadVector& lv : r.client_load) mix_load(lv);
  mix_load(r.aggregate);
  mix(r.queries_submitted);
  mix(r.responses_delivered);
  mix(r.duplicate_queries);
  mix_d(r.mean_results_per_query);
  mix_d(r.mean_response_hops);
  mix_d(r.mean_first_response_latency);
  mix_d(r.mean_rings_per_query);
  mix(r.cache_hits);
  mix(r.partner_failures);
  mix(r.partner_recoveries);
  mix(r.cluster_outages);
  mix_d(r.cluster_outage_fraction);
  mix_d(r.client_disconnected_fraction);
  mix(r.faults_crashes);
  mix(r.faults_messages_dropped);
  mix(r.faults_request_timeouts);
  mix(r.faults_retries);
  mix(r.faults_failover_episodes);
  mix(r.faults_client_rejoins);
  mix(r.queries_succeeded);
  mix(r.queries_failed);
  mix_d(r.query_success_rate);
  mix_d(r.mean_recovery_latency_seconds);
  return h;
}

std::string ProtocolMetricsJson(const MetricsRegistry& m) {
  const auto engine_specific = [](std::string_view name) {
    return name.rfind("sim.queue.", 0) == 0 ||
           name.rfind("sim.state.", 0) == 0;
  };
  MetricsRegistry filtered;
  for (const auto& [name, counter] : m.counters()) {
    if (!engine_specific(name)) {
      filtered.GetCounter(name).Increment(counter.value());
    }
  }
  for (const auto& [name, gauge] : m.gauges()) {
    if (!engine_specific(name)) filtered.GetGauge(name).Set(gauge.value());
  }
  for (const auto& [name, histogram] : m.histograms()) {
    if (!engine_specific(name)) {
      filtered.GetHistogram(name, histogram.upper_bounds()).Merge(histogram);
    }
  }
  std::ostringstream out;
  WriteDeterministicMetricsJson(out, filtered);
  return out.str();
}

struct GoldenCase {
  const char* name;
  /// Pre-overhaul batch golden (engine_equivalence_test.cc). Never
  /// regenerate to make a failure pass.
  std::uint64_t report_digest;
  /// Snapshot-sequence golden: StreamDriver::snapshot_digest() after
  /// streaming the batch horizon in 12 s windows. Generated at the
  /// introduction of the streaming layer against the batch-equal
  /// reports above; pinned for the same reason.
  std::uint64_t sequence_digest;
  Configuration config;
  std::uint64_t instance_seed;
  SimOptions options;
};

// The three batch goldens with the most serving-layer machinery in
// play: the plain flood baseline, churn (lifespans + recoveries in
// flight across every window boundary) and live in-sim adaptation.
std::vector<GoldenCase> GoldenCases() {
  std::vector<GoldenCase> cases;
  {
    GoldenCase c{"flood_plod", 0xa9c5873452eb3e5full, 0x7d9e45eefebe5cecull,
                 {}, 101, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.seed = 11;
    cases.push_back(c);
  }
  {
    GoldenCase c{"churn_plod", 0x69a0bd51b6db4f6aull, 0xf4c4458ccd23cca6ull,
                 {}, 105, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 10.0;
    c.config.ttl = 4;
    c.config.avg_outdegree = 4.0;
    c.options.churn.enable = true;
    c.options.churn.partner_recovery_seconds = 20.0;
    c.options.seed = 15;
    cases.push_back(c);
  }
  {
    GoldenCase c{"adaptive_plod", 0x006dd28398706a0cull,
                 0x9cfd0bf68bf9032eull, {}, 108, {}};
    c.config.graph_size = 400;
    c.config.cluster_size = 4.0;
    c.config.ttl = 5;
    c.config.avg_outdegree = 3.1;
    c.options.adaptive.probe_interval_seconds = 2.0;
    c.options.adaptive.decision_interval_seconds = 10.0;
    c.options.adaptive.policy.max_bandwidth_bps = 1.0e7;
    c.options.adaptive.policy.max_proc_hz = 2.0e6;
    c.options.seed = 18;
    cases.push_back(c);
  }
  for (GoldenCase& c : cases) {
    c.options.duration_seconds = 120.0;
    c.options.warmup_seconds = 12.0;
  }
  return cases;
}

NetworkInstance MakeInstance(const GoldenCase& c, const ModelInputs& inputs) {
  Rng rng(c.instance_seed);
  return GenerateInstance(c.config, inputs, rng);
}

class StreamGoldenTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamGoldenTest, StreamedRunIsBitIdenticalToTheBatchGolden) {
  const GoldenCase c = GoldenCases()[GetParam()];
  const ModelInputs inputs = ModelInputs::Default();
  const NetworkInstance instance = MakeInstance(c, inputs);

  // 11 windows x 12 s cover warmup (12) + duration (120) exactly; the
  // last boundary 132.0 is the batch horizon, bit for bit.
  StreamOptions stream;
  stream.window_seconds = 12.0;
  SimOptions options = c.options;
  MetricsRegistry streamed_metrics;
  options.metrics = &streamed_metrics;
  StreamDriver driver(instance, c.config, inputs, options, stream);
  std::vector<StreamSnapshot> snapshots;
  for (int w = 0; w < 11; ++w) snapshots.push_back(driver.AdvanceWindow());
  const SimReport streamed = driver.Finish();

  // The streamed report lands on the pre-overhaul batch golden.
  EXPECT_EQ(ReportDigest(streamed), c.report_digest) << c.name;

  // And the batch path agrees field for field within this build,
  // including the post-golden instruments the digest skips.
  SimOptions batch_options = c.options;
  MetricsRegistry batch_metrics;
  batch_options.metrics = &batch_metrics;
  Simulator sim(instance, c.config, inputs, batch_options);
  const SimReport batch = sim.Run();
  EXPECT_EQ(ReportDigest(batch), c.report_digest);
  EXPECT_EQ(streamed.events_scheduled, batch.events_scheduled);
  EXPECT_EQ(streamed.events_dispatched, batch.events_dispatched);
  EXPECT_EQ(streamed.queue_depth_hwm, batch.queue_depth_hwm);
  EXPECT_EQ(streamed.adapt_rounds, batch.adapt_rounds);
  EXPECT_EQ(streamed.adapt_converged, batch.adapt_converged);
  EXPECT_EQ(streamed.final_clusters, batch.final_clusters);
  EXPECT_EQ(streamed.final_ttl, batch.final_ttl);
  EXPECT_EQ(streamed.final_avg_outdegree, batch.final_avg_outdegree);
  EXPECT_EQ(ProtocolMetricsJson(streamed_metrics),
            ProtocolMetricsJson(batch_metrics));

  // Window arithmetic: deltas are a partition of the run.
  std::uint64_t events = 0;
  for (const StreamSnapshot& snap : snapshots) {
    events += snap.events_dispatched_delta;
  }
  EXPECT_EQ(events, streamed.events_dispatched);

  // The snapshot sequence itself is pinned.
  EXPECT_EQ(driver.snapshot_digest(), c.sequence_digest) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllGoldens, StreamGoldenTest,
                         ::testing::Range<std::size_t>(0, 3),
                         [](const auto& info) {
                           return std::string(
                               GoldenCases()[info.param].name);
                         });

TEST(StreamRetirementTest, RetirementDoesNotChangeTheGolden) {
  // State retirement frees per-query slots behind the safe horizon; by
  // construction no live protocol state is touched, so the flood golden
  // must hold with retirement forced through an aggressive (but still
  // derived-safe) retention as well as with retirement disabled.
  const GoldenCase c = GoldenCases()[0];
  const ModelInputs inputs = ModelInputs::Default();
  const NetworkInstance instance = MakeInstance(c, inputs);
  for (const bool retire : {true, false}) {
    StreamOptions stream;
    stream.window_seconds = 12.0;
    stream.retire_state = retire;
    StreamDriver driver(instance, c.config, inputs, c.options, stream);
    EXPECT_GT(driver.effective_retention_seconds(), 0.0);
    for (int w = 0; w < 11; ++w) driver.AdvanceWindow();
    EXPECT_EQ(ReportDigest(driver.Finish()), c.report_digest)
        << "retire_state=" << retire;
  }
}

TEST(ParseQueryTraceTest, ParsesCommentsBlanksAndWhitespace) {
  const std::vector<TraceQuery> trace = ParseQueryTrace(
      "# submissions harvested from a live deployment\n"
      "\n"
      "  0.5 7\r\n"
      "\t12.25   42\n"
      "12.25 3\n"
      "99 0");
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].time, 0.5);
  EXPECT_EQ(trace[0].user, 7u);
  EXPECT_EQ(trace[1].time, 12.25);
  EXPECT_EQ(trace[1].user, 42u);
  EXPECT_EQ(trace[2].time, 12.25);  // Ties are allowed.
  EXPECT_EQ(trace[2].user, 3u);
  EXPECT_EQ(trace[3].time, 99.0);
  EXPECT_EQ(trace[3].user, 0u);
  EXPECT_TRUE(ParseQueryTrace("").empty());
  EXPECT_TRUE(ParseQueryTrace("# only comments\n\n").empty());
}

TEST(ParseQueryTraceDeathTest, MalformedTracesAbort) {
  EXPECT_DEATH(ParseQueryTrace("1.0"), "trace line is not \"time user\"");
  EXPECT_DEATH(ParseQueryTrace("1.0 2 3"), "trace line is not \"time user\"");
  EXPECT_DEATH(ParseQueryTrace("fast 2"), "trace line is not \"time user\"");
  EXPECT_DEATH(ParseQueryTrace("nan 2"),
               "trace time must be finite and >= 0");
  EXPECT_DEATH(ParseQueryTrace("-1.0 2"),
               "trace time must be finite and >= 0");
  EXPECT_DEATH(ParseQueryTrace("5.0 1\n4.0 1"),
               "trace times must be nondecreasing");
  EXPECT_DEATH(ParseQueryTrace("1.0 4294967296"),
               "trace user does not fit u32");
}

TEST(StreamTraceTest, TraceFedRunsAreDeterministicAndCheckpointable) {
  Configuration config;
  config.graph_size = 300;
  config.cluster_size = 10.0;
  config.ttl = 4;
  config.avg_outdegree = 4.0;
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(314);
  const NetworkInstance instance = GenerateInstance(config, inputs, rng);
  SimOptions options;
  options.seed = 21;
  options.duration_seconds = 24.0;
  options.warmup_seconds = 12.0;
  StreamOptions stream;
  stream.window_seconds = 6.0;

  // A dense post-warmup burst: 40 replayed submissions on top of the
  // generated workload.
  std::string trace_text;
  for (int i = 0; i < 40; ++i) {
    trace_text += std::to_string(13.0 + 0.4 * i);
    trace_text += ' ';
    trace_text += std::to_string((i * 37) % 300);
    trace_text += '\n';
  }
  const std::vector<TraceQuery> trace = ParseQueryTrace(trace_text);
  ASSERT_EQ(trace.size(), 40u);

  const auto stream_run = [&](bool feed) {
    StreamDriver driver(instance, config, inputs, options, stream);
    if (feed) driver.FeedTrace(trace);
    for (int w = 0; w < 6; ++w) driver.AdvanceWindow();
    SimReport report = driver.Finish();
    return std::pair(ReportDigest(report), report.queries_submitted);
  };

  const auto [fed_digest, fed_queries] = stream_run(true);
  const auto [replay_digest, replay_queries] = stream_run(true);
  const auto [bare_digest, bare_queries] = stream_run(false);

  // Same trace, same result — trace injection is part of the
  // deterministic event stream, not a side channel.
  EXPECT_EQ(fed_digest, replay_digest);
  EXPECT_EQ(fed_queries, replay_queries);
  // Injection draws from the shared protocol RNG, so the generated
  // Poisson workload shifts under it — the measured count is not
  // bare + 40 exactly, but a 40-query burst must dominate the drift.
  EXPECT_GT(fed_queries, bare_queries);
  EXPECT_NE(fed_digest, bare_digest);

  // Pending trace events live in the serialized event queue: a
  // checkpoint cut BEFORE the tail of the trace replays it faithfully.
  StreamDriver saver(instance, config, inputs, options, stream);
  saver.FeedTrace(trace);
  for (int w = 0; w < 2; ++w) saver.AdvanceWindow();  // Cut at t=12.
  const std::vector<std::uint8_t> bytes = saver.Checkpoint();
  StreamDriver resumer(instance, config, inputs, options, stream);
  ASSERT_TRUE(resumer.Restore(bytes));
  for (int w = 2; w < 6; ++w) resumer.AdvanceWindow();
  SimReport resumed = resumer.Finish();
  EXPECT_EQ(ReportDigest(resumed), fed_digest);
  EXPECT_EQ(resumed.queries_submitted, fed_queries);
}

TEST(StreamTraceDeathTest, LateTraceQueriesAbort) {
  Configuration config;
  config.graph_size = 200;
  config.cluster_size = 10.0;
  config.ttl = 3;
  config.avg_outdegree = 4.0;
  const ModelInputs inputs = ModelInputs::Default();
  Rng rng(314);
  const NetworkInstance instance = GenerateInstance(config, inputs, rng);
  SimOptions options;
  options.duration_seconds = 12.0;
  options.warmup_seconds = 6.0;
  StreamOptions stream;
  stream.window_seconds = 6.0;
  StreamDriver driver(instance, config, inputs, options, stream);
  driver.AdvanceWindow();
  const TraceQuery late{1.0, 0};  // Predates the emitted window.
  EXPECT_DEATH(driver.FeedTrace({&late, 1}),
               "trace query predates the current window");
  const TraceQuery out_of_range{7.0, 0xffffffffu};
  EXPECT_DEATH(driver.FeedTrace({&out_of_range, 1}),
               "trace user out of range");
}

}  // namespace
}  // namespace sppnet
