// Tests for source-side result caching in the simulator.

#include <gtest/gtest.h>

#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

class ResultCacheTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();

  Configuration MakeConfig() const {
    Configuration c;
    c.graph_size = 500;
    // Big clusters: many users share one cache, so popular queries
    // repeat within the TTL.
    c.cluster_size = 100;
    c.ttl = 3;
    c.avg_outdegree = 3.0;
    return c;
  }

  SimReport Run(double cache_ttl, double duration = 400) {
    const Configuration c = MakeConfig();
    Rng rng(41);
    const NetworkInstance inst = GenerateInstance(c, inputs_, rng);
    SimOptions options;
    options.duration_seconds = duration;
    options.warmup_seconds = 40;
    options.result_cache_ttl_seconds = cache_ttl;
    options.seed = 6;
    Simulator sim(inst, c, inputs_, options);
    return sim.Run();
  }
};

TEST_F(ResultCacheTest, DisabledByDefault) {
  const SimReport r = Run(0.0);
  EXPECT_EQ(r.cache_hits, 0u);
}

TEST_F(ResultCacheTest, PopularQueriesHitTheCache) {
  const SimReport r = Run(300.0);
  EXPECT_GT(r.cache_hits, 0u);
  // Hits are a meaningful fraction under Zipf popularity with ~1 query
  // per cluster-second.
  EXPECT_GT(static_cast<double>(r.cache_hits),
            0.02 * static_cast<double>(r.queries_submitted));
}

TEST_F(ResultCacheTest, CachingReducesTraffic) {
  const SimReport without = Run(0.0);
  const SimReport with = Run(300.0);
  EXPECT_LT(with.aggregate.TotalBps(), without.aggregate.TotalBps());
  // Cached answers still count as answered queries with results.
  EXPECT_GT(with.mean_results_per_query,
            0.5 * without.mean_results_per_query);
}

TEST_F(ResultCacheTest, LongerTtlMoreHits) {
  const SimReport short_ttl = Run(30.0);
  const SimReport long_ttl = Run(600.0);
  EXPECT_GT(long_ttl.cache_hits, short_ttl.cache_hits);
}

TEST_F(ResultCacheTest, CachedResultsApproximateFloodedOnes) {
  // The per-query mean with caching should stay in the neighborhood of
  // the uncached mean: the cache replays what a flood of the same
  // query collected moments earlier.
  const SimReport without = Run(0.0, 600);
  const SimReport with = Run(200.0, 600);
  EXPECT_NEAR(with.mean_results_per_query, without.mean_results_per_query,
              0.35 * without.mean_results_per_query);
}

TEST_F(ResultCacheTest, BytesStillConserve) {
  const SimReport r = Run(300.0);
  EXPECT_NEAR(r.aggregate.in_bps, r.aggregate.out_bps,
              0.03 * r.aggregate.out_bps);
}

}  // namespace
}  // namespace sppnet
