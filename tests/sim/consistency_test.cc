// ctest-label: threaded
// Index-consistency layer (DESIGN.md §14): plan-validation death
// tests, the SimOptions gating matrix, the pay-for-what-you-use
// inactive-plan identity, bit-reproducibility from the seed, and the
// scheme-semantics ordering (push fresher than pull fresher than
// none; replication trades bandwidth for recall).

#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"
#include "sppnet/model/config.h"
#include "sppnet/model/consistency.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/export.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

std::string MetricsJson(const MetricsRegistry& metrics) {
  // Deterministic sections only (the phase timers legitimately differ
  // between bit-identical runs).
  std::ostringstream out;
  WriteDeterministicMetricsJson(out, metrics);
  return out.str();
}

TEST(ConsistencyPlanDeathTest, RejectsInvalidConfigs) {
  {
    ConsistencyPlan plan;
    plan.change_rate_per_client = -0.01;
    EXPECT_DEATH(plan.Validate(), "change_rate_per_client");
  }
  {
    ConsistencyPlan plan;
    plan.ttr_seconds = 0.0;
    EXPECT_DEATH(plan.Validate(), "ttr_seconds");
  }
  {
    ConsistencyPlan plan;
    plan.ttr_seconds = -30.0;
    EXPECT_DEATH(plan.Validate(), "ttr_seconds");
  }
  {
    ConsistencyPlan plan;
    plan.replication.replication_factor = 0;
    EXPECT_DEATH(plan.Validate(), "replication_factor");
  }
  {
    ConsistencyPlan plan;
    plan.replication.max_records_per_push = 0;
    EXPECT_DEATH(plan.Validate(), "max_records_per_push");
  }
}

TEST(ConsistencyPlanTest, DefaultPlanIsValidAndInactive) {
  ConsistencyPlan plan;
  plan.Validate();
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.replication.enabled());
  plan.change_rate_per_client = 0.05;
  EXPECT_TRUE(plan.enabled());
  plan.replication.owner_replication = true;
  EXPECT_TRUE(plan.replication.enabled());
}

SimOptions ActiveConsistencyOptions(ConsistencyScheme scheme) {
  SimOptions options;
  options.duration_seconds = 200.0;
  options.warmup_seconds = 20.0;
  options.seed = 11;
  options.consistency.change_rate_per_client = 0.05;
  options.consistency.scheme = scheme;
  options.consistency.ttr_seconds = 30.0;
  return options;
}

// The consistency layer composes only with the plain flood protocol
// on the legacy engine — every incompatible layer must be rejected at
// Validate() time, not silently mis-accounted at run time.
TEST(ConsistencyGatingDeathTest, RejectsIncompatibleLayers) {
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPushInvalidate);
    o.strategy = SearchStrategy::kExpandingRing;
    EXPECT_DEATH(o.Validate(), "flood strategy");
  }
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPushInvalidate);
    o.shards.num_shards = 4;
    EXPECT_DEATH(o.Validate(), "legacy engine");
  }
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPullTtr);
    o.concrete_index = true;
    EXPECT_DEATH(o.Validate(), "abstract indexes");
  }
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPullTtr);
    o.result_cache_ttl_seconds = 30.0;
    EXPECT_DEATH(o.Validate(), "result cache");
  }
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kNone);
    o.adaptive.probe_interval_seconds = 30.0;
    EXPECT_DEATH(o.Validate(), "adaptation");
  }
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kNone);
    o.routing.enable = true;
    EXPECT_DEATH(o.Validate(), "content-aware routing");
  }
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPushInvalidate);
    o.churn.enable = true;
    EXPECT_DEATH(o.Validate(), "static membership");
  }
  {
    SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPushInvalidate);
    o.faults.crash_rate_per_partner = 1.0e-3;
    EXPECT_DEATH(o.Validate(), "fault");
  }
}

// Strategy knobs audited alongside the consistency gates: values that
// would walk nowhere or never satisfy must die in Validate() instead
// of producing silently degenerate runs.
TEST(SimOptionsAuditDeathTest, RejectsDegenerateStrategyKnobs) {
  {
    SimOptions o;
    o.strategy = SearchStrategy::kExpandingRing;
    o.ring_satisfaction_results = 0;
    EXPECT_DEATH(o.Validate(), "ring_satisfaction_results");
  }
  {
    SimOptions o;
    o.strategy = SearchStrategy::kRandomWalk;
    o.num_walkers = 0;
    EXPECT_DEATH(o.Validate(), "num_walkers");
  }
  {
    SimOptions o;
    o.strategy = SearchStrategy::kRandomWalk;
    o.walk_ttl = 0;
    EXPECT_DEATH(o.Validate(), "walk_ttl");
  }
  {
    SimOptions o;
    o.strategy = SearchStrategy::kWalker;
    o.num_walkers = 0;
    EXPECT_DEATH(o.Validate(), "num_walkers");
  }
}

struct SimSetup {
  Configuration config;
  ModelInputs inputs = ModelInputs::Default();
  NetworkInstance instance;
};

SimSetup MakeSetup(std::uint64_t instance_seed, std::size_t graph_size = 200,
                   double cluster_size = 10.0) {
  SimSetup s;
  s.config.graph_size = graph_size;
  s.config.cluster_size = cluster_size;
  s.config.ttl = 4;
  s.config.avg_outdegree = 4.0;
  Rng rng(instance_seed);
  s.instance = GenerateInstance(s.config, s.inputs, rng);
  return s;
}

// A replication factor exceeding the cluster count can never find
// enough distinct targets; the simulator rejects it on construction
// (the plan alone cannot know the instance size).
TEST(ConsistencySimDeathTest, RejectsReplicationFactorBeyondClusterCount) {
  const SimSetup s = MakeSetup(31, /*graph_size=*/40, /*cluster_size=*/10.0);
  SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPushInvalidate);
  o.consistency.replication.owner_replication = true;
  o.consistency.replication.replication_factor = 1000;  // > 4 clusters
  EXPECT_DEATH(Simulator(s.instance, s.config, s.inputs, o),
               "replication_factor");
}

// The pay-for-what-you-use contract (the FaultPlan pattern): a plan
// with a zero change rate is never consulted, so the run — report and
// published metrics, byte for byte — matches a run without the layer,
// even when the plan's other knobs are non-default.
TEST(ConsistencySimTest, InactivePlanIsBitIdenticalToNoConsistencyLayer) {
  const SimSetup s = MakeSetup(33);
  SimOptions base;
  base.duration_seconds = 200.0;
  base.warmup_seconds = 20.0;
  base.seed = 7;

  MetricsRegistry base_metrics;
  base.metrics = &base_metrics;
  const SimReport baseline =
      Simulator(s.instance, s.config, s.inputs, base).Run();

  SimOptions inactive = base;
  MetricsRegistry inactive_metrics;
  inactive.metrics = &inactive_metrics;
  inactive.consistency.scheme = ConsistencyScheme::kPullTtr;
  inactive.consistency.ttr_seconds = 5.0;
  inactive.consistency.replication.owner_replication = true;
  inactive.consistency.replication.path_replication = true;
  ASSERT_FALSE(inactive.consistency.enabled());
  const SimReport control =
      Simulator(s.instance, s.config, s.inputs, inactive).Run();

  EXPECT_EQ(baseline.queries_submitted, control.queries_submitted);
  EXPECT_EQ(baseline.responses_delivered, control.responses_delivered);
  EXPECT_EQ(baseline.mean_results_per_query, control.mean_results_per_query);
  EXPECT_EQ(baseline.aggregate.in_bps, control.aggregate.in_bps);
  EXPECT_EQ(baseline.aggregate.out_bps, control.aggregate.out_bps);
  EXPECT_EQ(baseline.aggregate.proc_hz, control.aggregate.proc_hz);
  EXPECT_EQ(control.consistency_changes, 0u);
  EXPECT_EQ(control.consistency_invalidations, 0u);
  EXPECT_EQ(control.consistency_stale_hit_rate, 0.0);
  // No sim.consistency.* metric may appear at all.
  EXPECT_EQ(inactive_metrics.counters().count("sim.consistency.changes"), 0u);
  EXPECT_EQ(MetricsJson(base_metrics), MetricsJson(inactive_metrics));
}

// An active plan run twice from the same seed reproduces every
// consistency tally bit for bit (all randomness flows through the
// salted consistency stream).
TEST(ConsistencySimTest, ActivePlanIsBitReproducibleFromSeed) {
  const SimSetup s = MakeSetup(34);
  SimOptions o = ActiveConsistencyOptions(ConsistencyScheme::kPullTtr);
  o.consistency.replication.owner_replication = true;
  o.consistency.replication.path_replication = true;

  MetricsRegistry first_metrics, second_metrics;
  SimOptions first = o, second = o;
  first.metrics = &first_metrics;
  second.metrics = &second_metrics;
  const SimReport a = Simulator(s.instance, s.config, s.inputs, first).Run();
  const SimReport b = Simulator(s.instance, s.config, s.inputs, second).Run();

  EXPECT_EQ(a.consistency_changes, b.consistency_changes);
  EXPECT_EQ(a.consistency_stale_results, b.consistency_stale_results);
  EXPECT_EQ(a.consistency_fresh_results, b.consistency_fresh_results);
  EXPECT_EQ(a.consistency_polls, b.consistency_polls);
  EXPECT_EQ(a.consistency_refresh_replies, b.consistency_refresh_replies);
  EXPECT_EQ(a.consistency_replica_pushes, b.consistency_replica_pushes);
  EXPECT_EQ(a.consistency_replica_records, b.consistency_replica_records);
  EXPECT_EQ(a.consistency_replica_served, b.consistency_replica_served);
  EXPECT_EQ(a.consistency_stale_hit_rate, b.consistency_stale_hit_rate);
  EXPECT_EQ(a.consistency_mean_freshness_seconds,
            b.consistency_mean_freshness_seconds);
  EXPECT_EQ(MetricsJson(first_metrics), MetricsJson(second_metrics));
}

// The consistency stream must not perturb the protocol stream: an
// active plan changes staleness bookkeeping and adds maintenance
// traffic, but the query plane (submissions, responses, raw result
// counts) is byte-identical to the baseline flood.
TEST(ConsistencySimTest, ActivePlanLeavesQueryPlaneUntouched) {
  const SimSetup s = MakeSetup(35);
  SimOptions base;
  base.duration_seconds = 200.0;
  base.warmup_seconds = 20.0;
  base.seed = 13;
  const SimReport baseline =
      Simulator(s.instance, s.config, s.inputs, base).Run();

  SimOptions push = base;
  push.consistency.change_rate_per_client = 0.05;
  push.consistency.scheme = ConsistencyScheme::kPushInvalidate;
  const SimReport measured =
      Simulator(s.instance, s.config, s.inputs, push).Run();

  EXPECT_EQ(baseline.queries_submitted, measured.queries_submitted);
  EXPECT_EQ(baseline.responses_delivered, measured.responses_delivered);
  EXPECT_EQ(baseline.mean_results_per_query, measured.mean_results_per_query);
  EXPECT_EQ(baseline.mean_response_hops, measured.mean_response_hops);
}

// Scheme semantics across the maintenance spectrum: push refreshes
// within a hop (near-zero staleness), pull within a TTR period, none
// accumulates forever. Stale-hit rate must order none > pull > push,
// and each scheme must emit exactly its own maintenance traffic.
TEST(ConsistencySimTest, SchemesOrderStalenessAndEmitOwnTraffic) {
  const SimSetup s = MakeSetup(36);

  SimOptions none = ActiveConsistencyOptions(ConsistencyScheme::kNone);
  SimOptions pull = ActiveConsistencyOptions(ConsistencyScheme::kPullTtr);
  SimOptions push = ActiveConsistencyOptions(ConsistencyScheme::kPushInvalidate);

  const SimReport r_none =
      Simulator(s.instance, s.config, s.inputs, none).Run();
  const SimReport r_pull =
      Simulator(s.instance, s.config, s.inputs, pull).Run();
  const SimReport r_push =
      Simulator(s.instance, s.config, s.inputs, push).Run();

  EXPECT_GT(r_none.consistency_changes, 0u);
  EXPECT_GT(r_none.consistency_stale_hit_rate,
            r_pull.consistency_stale_hit_rate);
  EXPECT_GT(r_pull.consistency_stale_hit_rate,
            r_push.consistency_stale_hit_rate);

  EXPECT_EQ(r_none.consistency_invalidations, 0u);
  EXPECT_EQ(r_none.consistency_polls, 0u);
  EXPECT_EQ(r_none.consistency_maintenance_bytes_per_sec, 0.0);

  EXPECT_GT(r_push.consistency_invalidations, 0u);
  EXPECT_EQ(r_push.consistency_polls, 0u);
  EXPECT_GT(r_push.consistency_maintenance_bytes_per_sec, 0.0);
  EXPECT_GT(r_push.consistency_fresh_results, 0u);

  EXPECT_EQ(r_pull.consistency_invalidations, 0u);
  EXPECT_GT(r_pull.consistency_polls, 0u);
  EXPECT_EQ(r_pull.consistency_polls, r_pull.consistency_refresh_replies);
  EXPECT_GT(r_pull.consistency_maintenance_bytes_per_sec, 0.0);

  // Freshness latency mirrors the staleness windows: a push refresh
  // lands one hop after the change, a pull refresh waits for the tick.
  EXPECT_GT(r_pull.consistency_mean_freshness_seconds,
            r_push.consistency_mean_freshness_seconds);
}

// Replication trades bandwidth for recall: with owner + path
// replication on, replica pushes move bytes and replica-served
// results raise the per-query mean above the unreplicated run.
TEST(ConsistencySimTest, ReplicationTradesBandwidthForRecall) {
  const SimSetup s = MakeSetup(37);
  SimOptions plain = ActiveConsistencyOptions(ConsistencyScheme::kPullTtr);
  const SimReport r_plain =
      Simulator(s.instance, s.config, s.inputs, plain).Run();

  SimOptions repl = plain;
  repl.consistency.replication.owner_replication = true;
  repl.consistency.replication.path_replication = true;
  repl.consistency.replication.replication_factor = 3;
  const SimReport r_repl =
      Simulator(s.instance, s.config, s.inputs, repl).Run();

  EXPECT_EQ(r_plain.consistency_replica_pushes, 0u);
  EXPECT_EQ(r_plain.consistency_replication_bytes_per_sec, 0.0);
  EXPECT_GT(r_repl.consistency_replica_pushes, 0u);
  EXPECT_GT(r_repl.consistency_replica_records, 0u);
  EXPECT_GT(r_repl.consistency_replication_bytes_per_sec, 0.0);
  EXPECT_GT(r_repl.consistency_replica_served, 0u);
  EXPECT_GT(r_repl.mean_results_per_query, r_plain.mean_results_per_query);
}

// The analytical plane rejects the same invalid inputs as the
// simulator and is inert for an inactive plan.
TEST(ConsistencyModelTest, EvaluatorValidatesAndInactiveIsZero) {
  const SimSetup s = MakeSetup(38);
  ConsistencyEvalOptions eval;
  {
    ConsistencyEvalOptions bad = eval;
    bad.plan.change_rate_per_client = -1.0;
    EXPECT_DEATH(
        EvaluateConsistencyPlane(s.instance, s.config, s.inputs, bad),
        "change_rate_per_client");
  }
  const ConsistencyModelReport r =
      EvaluateConsistencyPlane(s.instance, s.config, s.inputs, eval);
  EXPECT_EQ(r.stale_hit_rate, 0.0);
  EXPECT_EQ(r.maintenance_bytes_per_sec, 0.0);
  EXPECT_EQ(r.maintenance_plane.in_bps, 0.0);
}

}  // namespace
}  // namespace sppnet
