#include "sppnet/sim/simulator.h"

#include <gtest/gtest.h>

#include "sppnet/model/instance.h"

namespace sppnet {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  const ModelInputs inputs_ = ModelInputs::Default();

  NetworkInstance Make(const Configuration& c, std::uint64_t seed) {
    Rng rng(seed);
    return GenerateInstance(c, inputs_, rng);
  }
};

TEST_F(SimulatorTest, ProducesTrafficAndResults) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  c.ttl = 4;
  c.avg_outdegree = 4.0;
  const NetworkInstance inst = Make(c, 1);
  SimOptions options;
  options.duration_seconds = 120;
  options.warmup_seconds = 20;
  Simulator sim(inst, c, inputs_, options);
  const SimReport report = sim.Run();
  EXPECT_GT(report.queries_submitted, 0u);
  EXPECT_GT(report.responses_delivered, 0u);
  EXPECT_GT(report.mean_results_per_query, 0.0);
  EXPECT_GT(report.aggregate.TotalBps(), 0.0);
  EXPECT_EQ(report.partner_load.size(), inst.TotalPartners());
  EXPECT_EQ(report.client_load.size(), inst.TotalClients());
}

TEST_F(SimulatorTest, DeterministicForSameSeed) {
  Configuration c;
  c.graph_size = 150;
  c.cluster_size = 10;
  c.ttl = 3;
  const NetworkInstance inst = Make(c, 2);
  SimOptions options;
  options.duration_seconds = 60;
  options.warmup_seconds = 10;
  Simulator a(inst, c, inputs_, options);
  Simulator b(inst, c, inputs_, options);
  const SimReport ra = a.Run();
  const SimReport rb = b.Run();
  EXPECT_EQ(ra.queries_submitted, rb.queries_submitted);
  EXPECT_EQ(ra.responses_delivered, rb.responses_delivered);
  EXPECT_DOUBLE_EQ(ra.aggregate.TotalBps(), rb.aggregate.TotalBps());
}

TEST_F(SimulatorTest, BytesConserveAcrossSendersAndReceivers) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  c.ttl = 4;
  const NetworkInstance inst = Make(c, 3);
  SimOptions options;
  options.duration_seconds = 150;
  options.warmup_seconds = 20;
  Simulator sim(inst, c, inputs_, options);
  const SimReport report = sim.Run();
  // In-flight messages at the measurement boundaries introduce a small
  // mismatch; it must stay a tiny fraction of the traffic.
  EXPECT_NEAR(report.aggregate.in_bps, report.aggregate.out_bps,
              0.02 * report.aggregate.out_bps);
}

TEST_F(SimulatorTest, TtlLimitsResults) {
  Configuration c;
  c.graph_size = 400;
  c.cluster_size = 10;
  c.avg_outdegree = 3.1;
  const NetworkInstance inst = Make(c, 4);
  SimOptions options;
  options.duration_seconds = 120;
  options.warmup_seconds = 20;
  Configuration shallow = c;
  shallow.ttl = 1;
  Configuration deep = c;
  deep.ttl = 8;
  Simulator sim_shallow(inst, shallow, inputs_, options);
  Simulator sim_deep(inst, deep, inputs_, options);
  const SimReport a = sim_shallow.Run();
  const SimReport b = sim_deep.Run();
  EXPECT_LT(a.mean_results_per_query, b.mean_results_per_query);
}

TEST_F(SimulatorTest, DuplicatesAppearOnlyWithCycles) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  c.ttl = 1;  // One-hop floods cannot produce duplicates.
  const NetworkInstance inst = Make(c, 5);
  SimOptions options;
  options.duration_seconds = 100;
  options.warmup_seconds = 10;
  Simulator sim(inst, c, inputs_, options);
  const SimReport report = sim.Run();
  EXPECT_EQ(report.duplicate_queries, 0u);
}

TEST_F(SimulatorTest, RedundantPartnersShareQueryLoad) {
  Configuration c;
  c.graph_size = 300;
  c.cluster_size = 10;
  c.redundancy = true;
  c.ttl = 4;
  const NetworkInstance inst = Make(c, 6);
  SimOptions options;
  options.duration_seconds = 200;
  options.warmup_seconds = 20;
  Simulator sim(inst, c, inputs_, options);
  const SimReport report = sim.Run();
  // Round-robin: the two partners of a cluster see similar traffic.
  double ratio_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < inst.NumClusters(); ++i) {
    const double a = report.partner_load[i * 2].TotalBps();
    const double b = report.partner_load[i * 2 + 1].TotalBps();
    if (a + b <= 0.0) continue;
    ratio_sum += std::min(a, b) / std::max(a, b);
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(ratio_sum / static_cast<double>(counted), 0.5);
}

TEST_F(SimulatorTest, ChurnDisconnectsClientsWithoutRedundancy) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  c.ttl = 3;
  const NetworkInstance inst = Make(c, 7);
  SimOptions options;
  options.duration_seconds = 1500;
  options.warmup_seconds = 50;
  options.churn.enable = true;
  options.churn.partner_recovery_seconds = 60.0;
  Simulator sim(inst, c, inputs_, options);
  const SimReport report = sim.Run();
  EXPECT_GT(report.partner_failures, 0u);
  // With k = 1 every failure is an outage.
  EXPECT_EQ(report.cluster_outages, report.partner_failures);
  EXPECT_GT(report.client_disconnected_fraction, 0.0);
}

TEST_F(SimulatorTest, RedundancyImprovesAvailability) {
  Configuration c;
  c.graph_size = 200;
  c.cluster_size = 10;
  c.ttl = 3;
  SimOptions options;
  options.duration_seconds = 1500;
  options.warmup_seconds = 50;
  options.churn.enable = true;
  options.churn.partner_recovery_seconds = 60.0;

  const NetworkInstance plain = Make(c, 8);
  Simulator sim_plain(plain, c, inputs_, options);
  const SimReport a = sim_plain.Run();

  Configuration red = c;
  red.redundancy = true;
  const NetworkInstance redundant = Make(red, 8);
  Simulator sim_red(redundant, red, inputs_, options);
  const SimReport b = sim_red.Run();

  // Both partners must fail inside one recovery window for an outage:
  // availability improves by an order of magnitude (Section 3.2).
  EXPECT_LT(b.client_disconnected_fraction,
            0.5 * a.client_disconnected_fraction);
  EXPECT_LT(b.cluster_outages, a.cluster_outages);
}

TEST_F(SimulatorTest, WarmupExcludedFromMeasurement) {
  Configuration c;
  c.graph_size = 100;
  c.cluster_size = 10;
  c.ttl = 2;
  const NetworkInstance inst = Make(c, 9);
  SimOptions options;
  options.duration_seconds = 1.0;  // Measure almost nothing...
  options.warmup_seconds = 200.0;  // ...after a long warmup.
  Simulator sim(inst, c, inputs_, options);
  const SimReport report = sim.Run();
  // Per-second rates must stay bounded (no warmup traffic leaking in).
  EXPECT_LT(report.queries_submitted, 50u);
}

}  // namespace
}  // namespace sppnet
