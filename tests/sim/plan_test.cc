// The unified layer-plan contract (sim/plan.h, DESIGN.md §15): every
// plan models LayerPlan, every plan's Validate() dies on malformed
// knobs with its documented message, and the cross-layer compatibility
// matrix is the single authority consulted by SimOptions::Validate.

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "sppnet/index/routing_index.h"
#include "sppnet/model/consistency.h"
#include "sppnet/sim/adaptive_sim.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/plan.h"
#include "sppnet/sim/sharded_sim.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

// The contract itself is compile-time; re-asserting it here means a
// drifting plan breaks the test target even if plan.cc is stale.
static_assert(LayerPlan<ChurnPlan>);
static_assert(LayerPlan<CapacityPlan>);
static_assert(LayerPlan<FaultPlan>);
static_assert(LayerPlan<AdaptivePlan>);
static_assert(LayerPlan<RoutingOptions>);
static_assert(LayerPlan<ConsistencyPlan>);
static_assert(LayerPlan<ReplicationPlan>);
static_assert(LayerPlan<ShardPlan>);

TEST(LayerPlanTest, DefaultPlansAreInactiveAndValid) {
  // A default-constructed plan is inactive (never consulted by the
  // simulator) and passes its own Validate().
  EXPECT_FALSE(ChurnPlan{}.enabled());
  EXPECT_FALSE(CapacityPlan{}.enabled());
  EXPECT_FALSE(FaultPlan{}.enabled());
  EXPECT_FALSE(AdaptivePlan{}.enabled());
  EXPECT_FALSE(RoutingOptions{}.enabled());
  EXPECT_FALSE(ConsistencyPlan{}.enabled());
  EXPECT_FALSE(ReplicationPlan{}.enabled());
  EXPECT_FALSE(ShardPlan{}.enabled());
  ChurnPlan{}.Validate();
  CapacityPlan{}.Validate();
  FaultPlan{}.Validate();
  AdaptivePlan{}.Validate();
  RoutingOptions{}.Validate();
  ConsistencyPlan{}.Validate();
  ReplicationPlan{}.Validate();
  ShardPlan{}.Validate();
}

TEST(LayerPlanTest, EnabledTracksTheMasterKnob) {
  ChurnPlan churn;
  churn.enable = true;
  EXPECT_TRUE(churn.enabled());

  CapacityPlan capacity;
  capacity.enable = true;
  EXPECT_TRUE(capacity.enabled());

  RoutingOptions routing;
  routing.enable = true;
  EXPECT_TRUE(routing.enabled());

  AdaptivePlan adaptive;
  adaptive.probe_interval_seconds = 5.0;
  EXPECT_TRUE(adaptive.enabled());

  ConsistencyPlan consistency;
  consistency.change_rate_per_client = 0.01;
  EXPECT_TRUE(consistency.enabled());

  ShardPlan shards;
  shards.num_shards = 2;
  EXPECT_TRUE(shards.enabled());
}

TEST(LayerPlanTest, StreamSaltsArePairwiseDistinct) {
  const std::set<std::uint64_t> salts = {
      FaultPlan::kStreamSalt,          AdaptivePlan::kStreamSalt,
      RoutingOptions::kStreamSalt,     ConsistencyPlan::kStreamSalt,
      CapacityPlan::kStreamSalt,       ShardPlan::kProtoStreamSalt,
      ShardPlan::kFaultStreamSalt,     ShardPlan::kCtlStreamSalt,
  };
  EXPECT_EQ(salts.size(), 8u);
}

TEST(ChurnPlanDeathTest, RejectsInvalidConfigs) {
  ChurnPlan plan;
  plan.partner_recovery_seconds = 0.0;
  EXPECT_DEATH(plan.Validate(), "partner recovery time");
  plan.partner_recovery_seconds = -1.0;
  EXPECT_DEATH(plan.Validate(), "partner recovery time");
}

TEST(CapacityPlanDeathTest, RejectsInvalidConfigs) {
  {
    CapacityPlan plan;
    plan.window_seconds = 0.0;
    EXPECT_DEATH(plan.Validate(), "capacity window");
  }
  {
    CapacityPlan plan;
    plan.overload_utilization = 0.0;
    EXPECT_DEATH(plan.Validate(), "overload utilization");
  }
}

TEST(FeatureMatrixTest, ConflictsAreWellFormed) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const FeatureConflict& c : FeatureConflicts()) {
    EXPECT_NE(c.a, c.b) << c.reason;
    EXPECT_NE(c.reason, nullptr);
    EXPECT_FALSE(std::string(c.reason).empty());
    // Each unordered pair appears once.
    const auto a = static_cast<std::uint32_t>(c.a);
    const auto b = static_cast<std::uint32_t>(c.b);
    EXPECT_TRUE(seen.insert({std::min(a, b), std::max(a, b)}).second)
        << "duplicate conflict entry: " << c.reason;
  }
}

TEST(FeatureMatrixTest, EveryFeatureHasAName) {
  for (std::uint32_t f = 0;
       f < static_cast<std::uint32_t>(SimFeature::kNumFeatures); ++f) {
    EXPECT_STRNE(SimFeatureName(static_cast<SimFeature>(f)), "?");
  }
}

TEST(FeatureMatrixTest, CompatibleMasksPass) {
  CheckFeatureCompatibility(0);
  // Capacity + churn + faults + adaptation is the flagship combined
  // run of the capacity layer (DESIGN.md §15).
  CheckFeatureCompatibility(
      FeatureBit(SimFeature::kCapacity) | FeatureBit(SimFeature::kChurn) |
      FeatureBit(SimFeature::kFaults) | FeatureBit(SimFeature::kAdaptive));
  // Capacity alongside the result cache is allowed (only shards and
  // concrete indexes conflict).
  CheckFeatureCompatibility(FeatureBit(SimFeature::kCapacity) |
                            FeatureBit(SimFeature::kResultCache));
}

TEST(FeatureMatrixDeathTest, ConflictingMasksDieWithTheMatrixReason) {
  EXPECT_DEATH(
      CheckFeatureCompatibility(FeatureBit(SimFeature::kCapacity) |
                                FeatureBit(SimFeature::kShards)),
      "the capacity layer requires the legacy engine");
  EXPECT_DEATH(
      CheckFeatureCompatibility(FeatureBit(SimFeature::kCapacity) |
                                FeatureBit(SimFeature::kConcreteIndex)),
      "the capacity layer requires abstract indexes");
  EXPECT_DEATH(
      CheckFeatureCompatibility(FeatureBit(SimFeature::kConsistency) |
                                FeatureBit(SimFeature::kChurn)),
      "static membership");
  EXPECT_DEATH(
      CheckFeatureCompatibility(FeatureBit(SimFeature::kRouting) |
                                FeatureBit(SimFeature::kAdaptive)),
      "content-aware routing is incompatible with in-sim adaptation");
}

TEST(FeatureMatrixDeathTest, SimOptionsValidateConsultsTheMatrix) {
  // The simulator's Validate() must route layer pairings through the
  // one matrix — a capacity+shards SimOptions dies with the matrix
  // reason, not an ad-hoc message.
  SimOptions options;
  options.capacity.enable = true;
  options.shards.num_shards = 2;
  EXPECT_DEATH(options.Validate(),
               "the capacity layer requires the legacy engine");

  SimOptions concrete;
  concrete.capacity.enable = true;
  concrete.concrete_index = true;
  EXPECT_DEATH(concrete.Validate(),
               "the capacity layer requires abstract indexes");
}

}  // namespace
}  // namespace sppnet
