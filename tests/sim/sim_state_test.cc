// Unit coverage for the dense per-query state backend: the FlatMap64
// open-addressing table in isolation, and SimState's dense vs
// map-reference backends held to identical observable semantics op by
// op (the whole-simulator version of this contract lives in
// engine_equivalence_test.cc).

#include "sppnet/sim/sim_state.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"

namespace sppnet {
namespace {

TEST(FlatMap64Test, FindOnEmptyReturnsNull) {
  FlatMap64<std::uint32_t> m;
  EXPECT_EQ(m.Find(0), nullptr);
  EXPECT_EQ(m.Find(~std::uint64_t{0}), nullptr);
  EXPECT_EQ(m.size(), 0u);
}

TEST(FlatMap64Test, InsertFindRoundTrip) {
  FlatMap64<std::uint32_t> m;
  const auto [slot, inserted] = m.FindOrInsert(42);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*slot, 0u);  // Fresh slots are value-initialized.
  *slot = 7;
  const auto [again, inserted_again] = m.FindOrInsert(42);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 7u);
  ASSERT_NE(m.Find(42), nullptr);
  EXPECT_EQ(*m.Find(42), 7u);
  EXPECT_EQ(m.Find(43), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap64Test, GrowthPreservesEntries) {
  FlatMap64<std::uint64_t> m;
  constexpr std::uint64_t kNumKeys = 10000;
  for (std::uint64_t i = 0; i < kNumKeys; ++i) {
    // Sequential qid-like keys — the production access pattern the
    // splitmix64 scramble exists for.
    *m.FindOrInsert(i).first = i * 3 + 1;
  }
  EXPECT_EQ(m.size(), kNumKeys);
  EXPECT_GE(m.Capacity(), kNumKeys);
  EXPECT_GT(m.ApproxMemoryBytes(), 0u);
  for (std::uint64_t i = 0; i < kNumKeys; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    ASSERT_EQ(*m.Find(i), i * 3 + 1) << i;
  }
  EXPECT_EQ(m.Find(kNumKeys), nullptr);
}

TEST(FlatMap64Test, ClearIsGenerationBumpNotStorageWipe) {
  FlatMap64<std::uint32_t> m;
  for (std::uint64_t i = 0; i < 100; ++i) *m.FindOrInsert(i).first = 1;
  const std::size_t capacity = m.Capacity();
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Capacity(), capacity);  // O(1): storage untouched.
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(m.Find(i), nullptr) << i;
  }
  // Reinsertion after Clear starts from value-initialized slots again.
  const auto [slot, inserted] = m.FindOrInsert(5);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 0u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap64Test, AdversarialKeysCollideWithoutLoss) {
  // Keys differing only in high bits, plus wide-spread randoms: linear
  // probing must keep every entry reachable.
  FlatMap64<std::uint64_t> m;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 64; ++i) {
    keys.push_back(i << 56);
    keys.push_back((i << 32) | 0xabcdef);
  }
  Rng rng(31337);
  for (int i = 0; i < 500; ++i) keys.push_back(rng.NextUint64());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    *m.FindOrInsert(keys[i]).first = i;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(m.Find(keys[i]), nullptr) << i;
    // Duplicated random keys keep the last write; re-derive expected.
    std::size_t expected = i;
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      if (keys[j] == keys[i]) expected = j;
    }
    ASSERT_EQ(*m.Find(keys[i]), expected) << i;
  }
}

// --- SimState backend parity --------------------------------------------
//
// Drive both backends through the same operation sequence and assert
// every observable return value matches. The simulator relies on this
// parity for the bitwise engine-equivalence goldens; these tests localize
// a violation to the specific operation instead of a whole-run digest.

struct BackendPair {
  SimState dense{SimStateBackend::kDense, 8};
  SimState map{SimStateBackend::kMapReference, 8};
};

TEST(SimStateParityTest, MarkSeenAndUpstream) {
  BackendPair s;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t cluster = rng.NextBounded(8);
    const std::uint64_t qid = rng.NextBounded(300);
    const auto upstream = static_cast<std::uint32_t>(rng.NextBounded(50));
    ASSERT_EQ(s.dense.MarkSeen(cluster, qid, upstream),
              s.map.MarkSeen(cluster, qid, upstream));
    const std::uint32_t* du = s.dense.Upstream(cluster, qid);
    const std::uint32_t* mu = s.map.Upstream(cluster, qid);
    ASSERT_NE(du, nullptr);
    ASSERT_NE(mu, nullptr);
    ASSERT_EQ(*du, *mu);  // First writer wins in both backends.
  }
  EXPECT_EQ(s.dense.duplicate_entries(), s.map.duplicate_entries());
  EXPECT_EQ(s.dense.Upstream(0, 999999), nullptr);
  EXPECT_EQ(s.map.Upstream(0, 999999), nullptr);
}

TEST(SimStateParityTest, ClaimFindAndRootMapping) {
  BackendPair s;
  for (std::uint64_t qid = 0; qid < 200; qid += 2) {
    QueryState& d = s.dense.Claim(qid);
    QueryState& m = s.map.Claim(qid);
    d.user = m.user = static_cast<std::uint32_t>(qid);
    d.submit_time = m.submit_time = 0.5 * static_cast<double>(qid);
  }
  for (std::uint64_t qid = 0; qid < 220; ++qid) {
    QueryState* d = s.dense.Find(qid);
    QueryState* m = s.map.Find(qid);
    ASSERT_EQ(d == nullptr, m == nullptr) << qid;
    if (d != nullptr) {
      ASSERT_EQ(d->user, m->user);
      ASSERT_EQ(d->submit_time, m->submit_time);
    }
  }
  // Root mapping: unmapped qids resolve to themselves; the first
  // SetRoot binding wins (emplace semantics) in both backends.
  EXPECT_EQ(s.dense.RootOf(17), 17u);
  EXPECT_EQ(s.map.RootOf(17), 17u);
  s.dense.SetRoot(100, 4);
  s.map.SetRoot(100, 4);
  s.dense.SetRoot(100, 9);  // Must not overwrite.
  s.map.SetRoot(100, 9);
  EXPECT_EQ(s.dense.RootOf(100), 4u);
  EXPECT_EQ(s.map.RootOf(100), 4u);
}

TEST(SimStateParityTest, QueryStringInterningAndHashes) {
  BackendPair s;
  s.dense.SetQueryString(1, "alpha");
  s.map.SetQueryString(1, "alpha");
  s.dense.SetQueryString(2, "beta");
  s.map.SetQueryString(2, "beta");
  s.dense.SetQueryString(3, "alpha");  // Same text, distinct qid.
  s.map.SetQueryString(3, "alpha");
  s.dense.SetQueryString(1, "gamma");  // Emplace: must not overwrite.
  s.map.SetQueryString(1, "gamma");

  for (std::uint64_t qid : {1ull, 2ull, 3ull}) {
    const std::string* d = s.dense.QueryString(qid);
    const std::string* m = s.map.QueryString(qid);
    ASSERT_NE(d, nullptr);
    ASSERT_NE(m, nullptr);
    ASSERT_EQ(*d, *m);
    std::uint64_t dh = 0, mh = 0;
    ASSERT_TRUE(s.dense.QueryStringHash(qid, &dh));
    ASSERT_TRUE(s.map.QueryStringHash(qid, &mh));
    // The dense backend's precomputed hash equals hashing on demand.
    ASSERT_EQ(dh, mh);
    ASSERT_EQ(dh, std::hash<std::string>{}(*d));
  }
  EXPECT_EQ(*s.dense.QueryString(1), "alpha");
  EXPECT_EQ(s.dense.QueryString(7), nullptr);
  EXPECT_EQ(s.map.QueryString(7), nullptr);
  std::uint64_t unused = 0;
  EXPECT_FALSE(s.dense.QueryStringHash(7, &unused));
  EXPECT_FALSE(s.map.QueryStringHash(7, &unused));
  // interned_strings counts qid -> string bindings, not distinct texts.
  EXPECT_EQ(s.dense.interned_strings(), 3u);
  EXPECT_EQ(s.map.interned_strings(), 3u);

  // ShareQueryString: retry qids borrow the root's string; sharing from
  // a string-less root is a no-op; an existing binding is kept.
  s.dense.ShareQueryString(2, 10);
  s.map.ShareQueryString(2, 10);
  ASSERT_NE(s.dense.QueryString(10), nullptr);
  EXPECT_EQ(*s.dense.QueryString(10), "beta");
  EXPECT_EQ(*s.map.QueryString(10), "beta");
  s.dense.ShareQueryString(999, 11);  // Root has no string.
  s.map.ShareQueryString(999, 11);
  EXPECT_EQ(s.dense.QueryString(11), nullptr);
  EXPECT_EQ(s.map.QueryString(11), nullptr);
  s.dense.ShareQueryString(1, 10);  // 10 already bound to "beta".
  s.map.ShareQueryString(1, 10);
  EXPECT_EQ(*s.dense.QueryString(10), "beta");
  EXPECT_EQ(*s.map.QueryString(10), "beta");
  EXPECT_EQ(s.dense.interned_strings(), s.map.interned_strings());
}

TEST(SimStateParityTest, ResultCacheEntries) {
  BackendPair s;
  EXPECT_EQ(s.dense.FindCacheEntry(3, 77), nullptr);
  EXPECT_EQ(s.map.FindCacheEntry(3, 77), nullptr);
  QueryCacheEntry& d = s.dense.CacheEntrySlot(3, 77);
  QueryCacheEntry& m = s.map.CacheEntrySlot(3, 77);
  EXPECT_EQ(d.expires, 0.0);  // Fresh entries value-initialized.
  EXPECT_EQ(m.expires, 0.0);
  d.expires = m.expires = 12.5;
  d.results = m.results = 4.0;
  d.owner = m.owner = 9;
  ASSERT_NE(s.dense.FindCacheEntry(3, 77), nullptr);
  ASSERT_NE(s.map.FindCacheEntry(3, 77), nullptr);
  EXPECT_EQ(s.dense.FindCacheEntry(3, 77)->owner, 9u);
  EXPECT_EQ(s.map.FindCacheEntry(3, 77)->owner, 9u);
  // Same key in another cluster is independent.
  EXPECT_EQ(s.dense.FindCacheEntry(4, 77), nullptr);
  EXPECT_EQ(s.map.FindCacheEntry(4, 77), nullptr);
  // Slot access on an existing key returns the live entry.
  EXPECT_EQ(s.dense.CacheEntrySlot(3, 77).results, 4.0);
  EXPECT_EQ(s.map.CacheEntrySlot(3, 77).results, 4.0);
}

TEST(SimStateTest, ScratchBytesTrackPopulation) {
  BackendPair s;
  Rng rng(21);
  for (std::uint64_t qid = 0; qid < 5000; ++qid) {
    s.dense.Claim(qid);
    s.map.Claim(qid);
    s.dense.SetRoot(qid, qid);
    s.map.SetRoot(qid, qid);
    for (int c = 0; c < 3; ++c) {
      const std::size_t cluster = rng.NextBounded(8);
      const auto up = static_cast<std::uint32_t>(rng.NextBounded(40));
      s.dense.MarkSeen(cluster, qid, up);
      s.map.MarkSeen(cluster, qid, up);
    }
  }
  // Absolute bytes are layout-dependent; what must hold is that both
  // estimates are positive and grew with the population. (Whether dense
  // beats the maps is workload-dependent — the per-node figures for the
  // real simulator workload are measured in bench/sim_scale.)
  EXPECT_GT(s.dense.ApproxScratchBytes(), 100u * 1024u);
  EXPECT_GT(s.map.ApproxScratchBytes(), 100u * 1024u);
}

TEST(SimStateDeathTest, DenseClaimRejectsReclaim) {
  // Root qids are claimed exactly once per submission; a double claim is
  // a qid-allocation bug the dense backend traps.
  SimState dense(SimStateBackend::kDense, 2);
  dense.Claim(5);
  EXPECT_DEATH(dense.Claim(5), "state_live_");
}

}  // namespace
}  // namespace sppnet
