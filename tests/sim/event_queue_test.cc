#include "sppnet/sim/event_queue.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  for (const double t : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    SimEvent e;
    e.time = t;
    q.Schedule(e);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    EXPECT_GT(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) {
    SimEvent e;
    e.time = 1.0;
    e.node = i;
    q.Schedule(e);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.Pop().node, i);
  }
}

TEST(EventQueueTest, NextTimeReflectsEarliest) {
  EventQueue q;
  SimEvent a;
  a.time = 7.0;
  q.Schedule(a);
  EXPECT_DOUBLE_EQ(q.NextTime(), 7.0);
  SimEvent b;
  b.time = 2.0;
  q.Schedule(b);
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
}

TEST(EventQueueTest, PayloadRoundTrips) {
  EventQueue q;
  SimEvent e;
  e.time = 1.0;
  e.kind = 3;
  e.node = 42;
  e.a = 0xdeadbeefcafeULL;
  e.b = 77;
  e.x = 2.5;
  q.Schedule(e);
  const SimEvent out = q.Pop();
  EXPECT_EQ(out.kind, 3u);
  EXPECT_EQ(out.node, 42u);
  EXPECT_EQ(out.a, 0xdeadbeefcafeULL);
  EXPECT_EQ(out.b, 77u);
  EXPECT_DOUBLE_EQ(out.x, 2.5);
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue q;
  SimEvent e;
  e.time = 1.0;
  q.Schedule(e);
  EXPECT_DOUBLE_EQ(q.Pop().time, 1.0);
  e.time = 3.0;
  q.Schedule(e);
  e.time = 2.0;
  q.Schedule(e);
  EXPECT_DOUBLE_EQ(q.Pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace sppnet
