#include "sppnet/sim/event_queue.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"

namespace sppnet {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  for (const double t : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    SimEvent e;
    e.time = t;
    q.Schedule(e);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    EXPECT_GT(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) {
    SimEvent e;
    e.time = 1.0;
    e.node = i;
    q.Schedule(e);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.Pop().node, i);
  }
}

TEST(EventQueueTest, NextTimeReflectsEarliest) {
  EventQueue q;
  SimEvent a;
  a.time = 7.0;
  q.Schedule(a);
  EXPECT_DOUBLE_EQ(q.NextTime(), 7.0);
  SimEvent b;
  b.time = 2.0;
  q.Schedule(b);
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
}

TEST(EventQueueTest, PayloadRoundTrips) {
  EventQueue q;
  SimEvent e;
  e.time = 1.0;
  e.kind = 3;
  e.node = 42;
  e.a = 0xdeadbeefcafeULL;
  e.b = 77;
  e.x = 2.5;
  q.Schedule(e);
  const SimEvent out = q.Pop();
  EXPECT_EQ(out.kind, 3u);
  EXPECT_EQ(out.node, 42u);
  EXPECT_EQ(out.a, 0xdeadbeefcafeULL);
  EXPECT_EQ(out.b, 77u);
  EXPECT_DOUBLE_EQ(out.x, 2.5);
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue q;
  SimEvent e;
  e.time = 1.0;
  q.Schedule(e);
  EXPECT_DOUBLE_EQ(q.Pop().time, 1.0);
  e.time = 3.0;
  q.Schedule(e);
  e.time = 2.0;
  q.Schedule(e);
  EXPECT_DOUBLE_EQ(q.Pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

// --- Determinism stress ------------------------------------------------
//
// The simulator's bit-reproducibility hinges on one documented rule:
// equal-time events pop in Schedule() order (FIFO), implemented by the
// monotone sequence number attached at Schedule() time. These tests
// hammer that rule with thousands of colliding timestamps, because a
// heap without the tiebreaker passes small happy-path tests yet
// reorders under real load.

TEST(EventQueueStressTest, ThousandsOfCollidingTimestampsPopFifo) {
  // 5000 events over only 7 distinct timestamps: ~700 collisions per
  // timestamp. Tag each event with its global schedule index and check
  // the pop order is (time, schedule index) lexicographic.
  EventQueue q;
  Rng rng(2024);
  const double kTimes[] = {0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 10.0};
  constexpr std::uint64_t kNumEvents = 5000;
  for (std::uint64_t i = 0; i < kNumEvents; ++i) {
    SimEvent e;
    e.time = kTimes[rng.NextBounded(std::size(kTimes))];
    e.a = i;  // Global schedule order.
    q.Schedule(e);
  }
  ASSERT_EQ(q.size(), kNumEvents);

  double prev_time = -1.0;
  std::uint64_t prev_index = 0;
  bool first = true;
  std::uint64_t popped = 0;
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    if (!first && e.time == prev_time) {
      // Same timestamp: strictly increasing schedule order (FIFO).
      EXPECT_GT(e.a, prev_index);
    } else if (!first) {
      EXPECT_GT(e.time, prev_time);
    }
    prev_time = e.time;
    prev_index = e.a;
    first = false;
    ++popped;
  }
  EXPECT_EQ(popped, kNumEvents);
}

TEST(EventQueueStressTest, FifoSurvivesInterleavedPops) {
  // Schedule/pop interleaving must not disturb the FIFO rule: events
  // scheduled *after* some pops still sort behind earlier same-time
  // events that are still queued.
  EventQueue q;
  Rng rng(99);
  std::uint64_t next_index = 0;
  double prev_time = -1.0;
  std::uint64_t prev_index = 0;
  bool first = true;
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t burst = 1 + rng.NextBounded(25);
    for (std::uint64_t i = 0; i < burst; ++i) {
      SimEvent e;
      // Times never go below what was already popped (simulator
      // invariant: no scheduling in the past).
      e.time = (prev_time < 0.0 ? 0.0 : prev_time) +
               static_cast<double>(rng.NextBounded(3));
      e.a = next_index++;
      q.Schedule(e);
    }
    const std::uint64_t pops = 1 + rng.NextBounded(burst);
    for (std::uint64_t i = 0; i < pops && !q.empty(); ++i) {
      const SimEvent e = q.Pop();
      if (!first) {
        ASSERT_GE(e.time, prev_time);
        if (e.time == prev_time) {
          ASSERT_GT(e.a, prev_index);
        }
      }
      prev_time = e.time;
      prev_index = e.a;
      first = false;
    }
  }
  // Drain the rest under the same invariant.
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    ASSERT_GE(e.time, prev_time);
    if (e.time == prev_time) {
      ASSERT_GT(e.a, prev_index);
    }
    prev_time = e.time;
    prev_index = e.a;
  }
}

TEST(EventQueueStressTest, IdenticalScheduleSequenceDrainsIdentically) {
  // Two queues fed the same sequence drain byte-identically — the
  // property the whole-simulator determinism tests build on.
  const auto feed = [](EventQueue& q) {
    Rng rng(7);
    for (std::uint64_t i = 0; i < 3000; ++i) {
      SimEvent e;
      e.time = static_cast<double>(rng.NextBounded(50)) * 0.25;
      e.node = static_cast<std::uint32_t>(i);
      q.Schedule(e);
    }
  };
  EventQueue a, b;
  feed(a);
  feed(b);
  while (!a.empty()) {
    ASSERT_FALSE(b.empty());
    const SimEvent ea = a.Pop();
    const SimEvent eb = b.Pop();
    ASSERT_EQ(ea.time, eb.time);
    ASSERT_EQ(ea.node, eb.node);
  }
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace sppnet
