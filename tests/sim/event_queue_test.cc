#include "sppnet/sim/event_queue.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "sppnet/common/rng.h"

namespace sppnet {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  for (const double t : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    SimEvent e;
    e.time = t;
    q.Schedule(e);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    EXPECT_GT(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) {
    SimEvent e;
    e.time = 1.0;
    e.node = i;
    q.Schedule(e);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.Pop().node, i);
  }
}

TEST(EventQueueTest, NextTimeReflectsEarliest) {
  EventQueue q;
  SimEvent a;
  a.time = 7.0;
  q.Schedule(a);
  EXPECT_DOUBLE_EQ(q.NextTime(), 7.0);
  SimEvent b;
  b.time = 2.0;
  q.Schedule(b);
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
}

TEST(EventQueueTest, PayloadRoundTrips) {
  EventQueue q;
  SimEvent e;
  e.time = 1.0;
  e.kind = 3;
  e.node = 42;
  e.a = 0xdeadbeefcafeULL;
  e.b = 77;
  e.x = 2.5;
  q.Schedule(e);
  const SimEvent out = q.Pop();
  EXPECT_EQ(out.kind, 3u);
  EXPECT_EQ(out.node, 42u);
  EXPECT_EQ(out.a, 0xdeadbeefcafeULL);
  EXPECT_EQ(out.b, 77u);
  EXPECT_DOUBLE_EQ(out.x, 2.5);
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue q;
  SimEvent e;
  e.time = 1.0;
  q.Schedule(e);
  EXPECT_DOUBLE_EQ(q.Pop().time, 1.0);
  e.time = 3.0;
  q.Schedule(e);
  e.time = 2.0;
  q.Schedule(e);
  EXPECT_DOUBLE_EQ(q.Pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

// --- Determinism stress ------------------------------------------------
//
// The simulator's bit-reproducibility hinges on one documented rule:
// equal-time events pop in Schedule() order (FIFO), implemented by the
// monotone sequence number attached at Schedule() time. These tests
// hammer that rule with thousands of colliding timestamps, because a
// heap without the tiebreaker passes small happy-path tests yet
// reorders under real load.

TEST(EventQueueStressTest, ThousandsOfCollidingTimestampsPopFifo) {
  // 5000 events over only 7 distinct timestamps: ~700 collisions per
  // timestamp. Tag each event with its global schedule index and check
  // the pop order is (time, schedule index) lexicographic.
  EventQueue q;
  Rng rng(2024);
  const double kTimes[] = {0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 10.0};
  constexpr std::uint64_t kNumEvents = 5000;
  for (std::uint64_t i = 0; i < kNumEvents; ++i) {
    SimEvent e;
    e.time = kTimes[rng.NextBounded(std::size(kTimes))];
    e.a = i;  // Global schedule order.
    q.Schedule(e);
  }
  ASSERT_EQ(q.size(), kNumEvents);

  double prev_time = -1.0;
  std::uint64_t prev_index = 0;
  bool first = true;
  std::uint64_t popped = 0;
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    if (!first && e.time == prev_time) {
      // Same timestamp: strictly increasing schedule order (FIFO).
      EXPECT_GT(e.a, prev_index);
    } else if (!first) {
      EXPECT_GT(e.time, prev_time);
    }
    prev_time = e.time;
    prev_index = e.a;
    first = false;
    ++popped;
  }
  EXPECT_EQ(popped, kNumEvents);
}

TEST(EventQueueStressTest, FifoSurvivesInterleavedPops) {
  // Schedule/pop interleaving must not disturb the FIFO rule: events
  // scheduled *after* some pops still sort behind earlier same-time
  // events that are still queued.
  EventQueue q;
  Rng rng(99);
  std::uint64_t next_index = 0;
  double prev_time = -1.0;
  std::uint64_t prev_index = 0;
  bool first = true;
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t burst = 1 + rng.NextBounded(25);
    for (std::uint64_t i = 0; i < burst; ++i) {
      SimEvent e;
      // Times never go below what was already popped (simulator
      // invariant: no scheduling in the past).
      e.time = (prev_time < 0.0 ? 0.0 : prev_time) +
               static_cast<double>(rng.NextBounded(3));
      e.a = next_index++;
      q.Schedule(e);
    }
    const std::uint64_t pops = 1 + rng.NextBounded(burst);
    for (std::uint64_t i = 0; i < pops && !q.empty(); ++i) {
      const SimEvent e = q.Pop();
      if (!first) {
        ASSERT_GE(e.time, prev_time);
        if (e.time == prev_time) {
          ASSERT_GT(e.a, prev_index);
        }
      }
      prev_time = e.time;
      prev_index = e.a;
      first = false;
    }
  }
  // Drain the rest under the same invariant.
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    ASSERT_GE(e.time, prev_time);
    if (e.time == prev_time) {
      ASSERT_GT(e.a, prev_index);
    }
    prev_time = e.time;
    prev_index = e.a;
  }
}

TEST(EventQueueStressTest, IdenticalScheduleSequenceDrainsIdentically) {
  // Two queues fed the same sequence drain byte-identically — the
  // property the whole-simulator determinism tests build on.
  const auto feed = [](EventQueue& q) {
    Rng rng(7);
    for (std::uint64_t i = 0; i < 3000; ++i) {
      SimEvent e;
      e.time = static_cast<double>(rng.NextBounded(50)) * 0.25;
      e.node = static_cast<std::uint32_t>(i);
      q.Schedule(e);
    }
  };
  EventQueue a, b;
  feed(a);
  feed(b);
  while (!a.empty()) {
    ASSERT_FALSE(b.empty());
    const SimEvent ea = a.Pop();
    const SimEvent eb = b.Pop();
    ASSERT_EQ(ea.time, eb.time);
    ASSERT_EQ(ea.node, eb.node);
  }
  EXPECT_TRUE(b.empty());
}

// --- Engine matrix -----------------------------------------------------
//
// Every ordering rule above must hold for BOTH engines behind
// SimEventQueue: the reference heap and the production calendar queue.
// The differential tests below feed identical schedule sequences to
// both and assert the pop streams match event for event — the queue-level
// half of the whole-simulator equivalence goldens.

class EngineQueueTest : public ::testing::TestWithParam<SimEngine> {};

INSTANTIATE_TEST_SUITE_P(BothEngines, EngineQueueTest,
                         ::testing::Values(SimEngine::kCalendar,
                                           SimEngine::kHeapReference),
                         [](const auto& info) {
                           return info.param == SimEngine::kCalendar
                                      ? "Calendar"
                                      : "HeapReference";
                         });

TEST_P(EngineQueueTest, PopsInTimeOrderWithFifoTies) {
  SimEventQueue q(GetParam());
  Rng rng(4242);
  constexpr std::uint64_t kNumEvents = 20000;
  const double kTimes[] = {0.0, 0.5, 1.0, 1.25, 2.0, 7.5, 100.0};
  for (std::uint64_t i = 0; i < kNumEvents; ++i) {
    SimEvent e;
    e.time = kTimes[rng.NextBounded(std::size(kTimes))];
    e.a = i;
    q.Schedule(e);
  }
  ASSERT_EQ(q.size(), kNumEvents);
  double prev_time = -1.0;
  std::uint64_t prev_index = 0;
  bool first = true;
  while (!q.empty()) {
    EXPECT_DOUBLE_EQ(q.NextTime(), q.NextTime());  // Idempotent peek.
    const SimEvent e = q.Pop();
    if (!first && e.time == prev_time) {
      ASSERT_GT(e.a, prev_index);
    } else if (!first) {
      ASSERT_GT(e.time, prev_time);
    }
    prev_time = e.time;
    prev_index = e.a;
    first = false;
  }
}

TEST_P(EngineQueueTest, MassiveSingleTimestampFloodPopsFifo) {
  // Worst-case tie flood: every event in one calendar day. Selection
  // must fall back to pure seq order.
  SimEventQueue q(GetParam());
  constexpr std::uint32_t kNumEvents = 10000;
  for (std::uint32_t i = 0; i < kNumEvents; ++i) {
    SimEvent e;
    e.time = 3.25;
    e.node = i;
    q.Schedule(e);
  }
  for (std::uint32_t i = 0; i < kNumEvents; ++i) {
    ASSERT_EQ(q.Pop().node, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EngineDifferentialTest, EnginesDrainIdenticallyUnderRandomLoad) {
  // Interleaved schedule/pop with colliding timestamps, growth past
  // several resize thresholds, and drain back down through the shrink
  // path: the two engines must produce byte-identical pop streams.
  SimEventQueue calendar(SimEngine::kCalendar);
  SimEventQueue heap(SimEngine::kHeapReference);
  Rng rng(20240731);
  double now = 0.0;
  std::uint32_t next_node = 0;
  const auto schedule = [&](double time) {
    SimEvent e;
    e.time = time;
    e.node = next_node++;
    calendar.Schedule(e);
    heap.Schedule(e);
  };
  for (int round = 0; round < 400; ++round) {
    const std::uint64_t burst = 1 + rng.NextBounded(60);
    for (std::uint64_t i = 0; i < burst; ++i) {
      // Mix of near-now, clustered (tie-prone), and far-future times.
      const std::uint64_t shape = rng.NextBounded(10);
      double t;
      if (shape < 6) {
        t = now + static_cast<double>(rng.NextBounded(8)) * 0.25;
      } else if (shape < 9) {
        t = now + static_cast<double>(rng.NextBounded(1000)) * 0.01;
      } else {
        t = now + 1e6 + static_cast<double>(rng.NextBounded(100));
      }
      schedule(t);
    }
    const std::uint64_t pops = rng.NextBounded(burst + 8);
    for (std::uint64_t i = 0; i < pops && !calendar.empty(); ++i) {
      ASSERT_FALSE(heap.empty());
      ASSERT_DOUBLE_EQ(calendar.NextTime(), heap.NextTime());
      const SimEvent a = calendar.Pop();
      const SimEvent b = heap.Pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
      ASSERT_EQ(a.node, b.node);
      now = a.time;
    }
  }
  while (!calendar.empty()) {
    ASSERT_FALSE(heap.empty());
    const SimEvent a = calendar.Pop();
    const SimEvent b = heap.Pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
    ASSERT_EQ(a.node, b.node);
  }
  EXPECT_TRUE(heap.empty());
}

// --- Death tests: empty-queue access and invalid times -----------------
//
// NextTime()/Pop() on an empty queue and non-finite or negative
// Schedule() times are programming errors; both engines must abort
// loudly instead of silently corrupting delivery order (a NaN breaks
// the comparator's strict weak ordering; empty access was UB).

using EngineQueueDeathTest = EngineQueueTest;

INSTANTIATE_TEST_SUITE_P(BothEngines, EngineQueueDeathTest,
                         ::testing::Values(SimEngine::kCalendar,
                                           SimEngine::kHeapReference),
                         [](const auto& info) {
                           return info.param == SimEngine::kCalendar
                                      ? "Calendar"
                                      : "HeapReference";
                         });

TEST_P(EngineQueueDeathTest, PopOnEmptyAborts) {
  SimEventQueue q(GetParam());
  EXPECT_DEATH(q.Pop(), "SPPNET_CHECK failed");
  SimEvent e;
  e.time = 1.0;
  q.Schedule(e);
  q.Pop();
  EXPECT_DEATH(q.Pop(), "SPPNET_CHECK failed");  // Drained, not just new.
}

TEST_P(EngineQueueDeathTest, NextTimeOnEmptyAborts) {
  SimEventQueue q(GetParam());
  EXPECT_DEATH(q.NextTime(), "SPPNET_CHECK failed");
}

TEST_P(EngineQueueDeathTest, ScheduleRejectsNonFiniteAndNegativeTimes) {
  SimEventQueue q(GetParam());
  SimEvent e;
  e.time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(q.Schedule(e), "isfinite");
  e.time = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(q.Schedule(e), "isfinite");
  e.time = -std::numeric_limits<double>::infinity();
  EXPECT_DEATH(q.Schedule(e), "isfinite");
  e.time = -1e-9;
  EXPECT_DEATH(q.Schedule(e), "time >= 0");
  // The largest finite double is legal — clamped into the final
  // calendar day, not overflowed.
  e.time = std::numeric_limits<double>::max();
  q.Schedule(e);
  EXPECT_DOUBLE_EQ(q.Pop().time, std::numeric_limits<double>::max());
}

// --- Calendar-specific behaviour ---------------------------------------

TEST(CalendarQueueTest, ResizeChurnPreservesOrderAndCountsResizes) {
  // Grow through several doublings, then drain through the shrink path;
  // the resize schedule is deterministic and order never changes.
  CalendarQueue q;
  Rng rng(555);
  constexpr std::uint64_t kNumEvents = 50000;
  for (std::uint64_t i = 0; i < kNumEvents; ++i) {
    SimEvent e;
    e.time = static_cast<double>(rng.NextBounded(100000)) * 0.001;
    q.Schedule(e);
  }
  EXPECT_GT(q.resizes(), 0u);        // Growth resizes fired.
  EXPECT_GT(q.num_buckets(), 16u);   // And actually doubled.
  EXPECT_GT(q.ApproxMemoryBytes(), 0u);
  const std::uint64_t grow_resizes = q.resizes();
  double prev = -1.0;
  std::uint64_t prev_seq = 0;
  while (!q.empty()) {
    const SimEvent e = q.Pop();
    if (e.time == prev) {
      ASSERT_GT(e.seq, prev_seq);
    } else {
      ASSERT_GT(e.time, prev);
    }
    prev = e.time;
    prev_seq = e.seq;
  }
  EXPECT_GT(q.resizes(), grow_resizes);  // Shrink resizes fired too.
  EXPECT_EQ(q.num_buckets(), 16u);       // Back down to the floor.
}

TEST(CalendarQueueTest, SparseFarApartEventsUseGlobalScanFallback) {
  // Consecutive events more than a whole calendar year apart: the
  // day-walk finds nothing and the global-scan fallback must locate the
  // true minimum every time.
  CalendarQueue q;
  std::vector<double> times;
  for (int i = 0; i < 50; ++i) {
    times.push_back(static_cast<double>(i) * 1e7 + 0.5);
  }
  // Schedule in a scrambled but deterministic order.
  for (std::size_t i = 0; i < times.size(); ++i) {
    SimEvent e;
    e.time = times[(i * 37) % times.size()];
    q.Schedule(e);
  }
  for (const double expected : times) {
    ASSERT_DOUBLE_EQ(q.Pop().time, expected);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, FarFutureTimesClampIntoFinalDayInOrder) {
  // Times past the uint64 day range collapse into one final "day";
  // (time, seq) still resolves their relative order.
  CalendarQueue q;
  const double kHuge[] = {1e300, 1e250, 1e280, 1e250, 3.0};
  for (const double t : kHuge) {
    SimEvent e;
    e.time = t;
    q.Schedule(e);
  }
  EXPECT_DOUBLE_EQ(q.Pop().time, 3.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 1e250);
  const SimEvent second_1e250 = q.Pop();
  EXPECT_DOUBLE_EQ(second_1e250.time, 1e250);
  EXPECT_EQ(second_1e250.seq, 3u);  // FIFO among the equal clamped times.
  EXPECT_DOUBLE_EQ(q.Pop().time, 1e280);
  EXPECT_DOUBLE_EQ(q.Pop().time, 1e300);
}

TEST(CalendarQueueTest, StationaryPopulationRecalibratesWidth) {
  // A stationary population never trips the size-based thresholds, so
  // the periodic recalibration is the only path to fix a badly seeded
  // width (default 0.25 s vs ~50 s observed gaps here). Mirror every
  // operation against the reference heap to show the recalibration
  // resize leaves the pop stream untouched.
  CalendarQueue q;
  EventQueue ref;
  Rng rng(808);
  double now = 0.0;
  const double initial_width = q.bucket_width_seconds();
  // Prime a stable population of ~64 events spaced ~50 s apart.
  const auto schedule_one = [&](double base) {
    SimEvent e;
    e.time = base + 25.0 + static_cast<double>(rng.NextBounded(50));
    q.Schedule(e);
    ref.Schedule(e);
  };
  for (int i = 0; i < 64; ++i) schedule_one(now + 50.0 * i);
  for (int round = 0; round < 20000; ++round) {
    const SimEvent a = q.Pop();
    const SimEvent b = ref.Pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
    now = a.time;
    schedule_one(now + 50.0 * 64);
  }
  EXPECT_NE(q.bucket_width_seconds(), initial_width);
  EXPECT_GT(q.bucket_width_seconds(), 1.0);  // Tracked the ~50 s gaps.
}

}  // namespace
}  // namespace sppnet
