// ctest-label: threaded
// Property sweep over the discrete-event simulator: conservation and
// sanity invariants across strategies, redundancy degrees and modes,
// plus the lookahead soundness audit of the sharded discipline.

#include <cstddef>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "sppnet/obs/metrics.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

struct SimGridPoint {
  SearchStrategy strategy;
  int redundancy_k;
  bool concrete;
  int ttl;
};

class SimPropertyTest : public ::testing::TestWithParam<SimGridPoint> {
 protected:
  static const ModelInputs& Inputs() {
    static const ModelInputs* inputs = new ModelInputs(ModelInputs::Default());
    return *inputs;
  }
};

TEST_P(SimPropertyTest, ConservationAndSanity) {
  const SimGridPoint point = GetParam();
  Configuration config;
  config.graph_size = 300;
  config.cluster_size = 10;
  config.redundancy_k = point.redundancy_k;
  config.ttl = point.ttl;
  config.avg_outdegree = 4.0;

  Rng rng(777);
  const NetworkInstance inst = GenerateInstance(config, Inputs(), rng);

  SimOptions options;
  options.duration_seconds = 200;
  options.warmup_seconds = 20;
  options.strategy = point.strategy;
  options.concrete_index = point.concrete;
  options.num_walkers = 6;
  options.walk_ttl = 15;
  options.ring_satisfaction_results = 20;
  Simulator sim(inst, config, Inputs(), options);
  const SimReport r = sim.Run();

  // Traffic flowed and every byte sent was received (up to boundary
  // effects of in-flight messages).
  ASSERT_GT(r.queries_submitted, 0u);
  ASSERT_GT(r.aggregate.TotalBps(), 0.0);
  EXPECT_NEAR(r.aggregate.in_bps, r.aggregate.out_bps,
              0.03 * r.aggregate.out_bps);

  // Per-node loads are non-negative and shaped like the instance.
  EXPECT_EQ(r.partner_load.size(), inst.TotalPartners());
  EXPECT_EQ(r.client_load.size(), inst.TotalClients());
  for (const auto& lv : r.partner_load) {
    ASSERT_GE(lv.in_bps, 0.0);
    ASSERT_GE(lv.out_bps, 0.0);
    ASSERT_GE(lv.proc_hz, 0.0);
  }

  // Latency is at least one hop for client-originated queries and
  // bounded by the ring budget.
  if (r.responses_delivered > 0) {
    EXPECT_GT(r.mean_first_response_latency, 0.0);
    EXPECT_LT(r.mean_first_response_latency, 60.0);
    EXPECT_GE(r.mean_response_hops, 0.0);
  }

  // No churn configured: nothing may fail or disconnect.
  EXPECT_EQ(r.partner_failures, 0u);
  EXPECT_EQ(r.cluster_outages, 0u);
  EXPECT_EQ(r.client_disconnected_fraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimPropertyTest,
    ::testing::Values(
        SimGridPoint{SearchStrategy::kFlood, 1, false, 4},
        SimGridPoint{SearchStrategy::kFlood, 2, false, 4},
        SimGridPoint{SearchStrategy::kFlood, 3, false, 3},
        SimGridPoint{SearchStrategy::kFlood, 1, true, 4},
        SimGridPoint{SearchStrategy::kFlood, 2, true, 3},
        SimGridPoint{SearchStrategy::kExpandingRing, 1, false, 5},
        SimGridPoint{SearchStrategy::kExpandingRing, 2, false, 4},
        SimGridPoint{SearchStrategy::kExpandingRing, 1, true, 4},
        SimGridPoint{SearchStrategy::kRandomWalk, 1, false, 4},
        SimGridPoint{SearchStrategy::kRandomWalk, 2, false, 4},
        SimGridPoint{SearchStrategy::kRandomWalk, 1, true, 4}));

// ---- Sharded-discipline lookahead soundness -------------------------

// The conservative discipline is only sound if every cross-shard event
// folded in at a cell barrier is scheduled at or after the close of the
// emitting cell — the lookahead guarantee the hop latency provides. The
// engine audits every merge: sim.shard.min_merge_margin records the
// worst observed slack (merged time minus cell close) and
// sim.shard.lookahead_violations counts merges below the -1e-9 FP
// tolerance. The property: across strategies, churn and shard shapes,
// the margin never dips below the tolerance and the violation count is
// exactly zero.
TEST(ShardedLookaheadPropertyTest, MergedEventsNeverLandBelowTheCellClose) {
  const struct {
    SearchStrategy strategy;
    bool churn;
    std::size_t shards;
    std::size_t threads;
  } grid[] = {
      {SearchStrategy::kFlood, false, 2, 2},
      {SearchStrategy::kFlood, true, 3, 2},
      {SearchStrategy::kExpandingRing, false, 8, 8},
      {SearchStrategy::kRandomWalk, true, 8, 2},
  };
  for (const auto& point : grid) {
    std::string trace = "S";
    trace += std::to_string(point.shards);
    trace += "T";
    trace += std::to_string(point.threads);
    SCOPED_TRACE(trace);
    Configuration config;
    config.graph_size = 300;
    config.cluster_size = 10;
    config.ttl = 4;
    config.avg_outdegree = 4.0;
    const ModelInputs inputs = ModelInputs::Default();
    Rng rng(901);
    const NetworkInstance inst = GenerateInstance(config, inputs, rng);

    SimOptions options;
    options.seed = 31;
    options.duration_seconds = 60;
    options.warmup_seconds = 10;
    options.strategy = point.strategy;
    options.churn.enable = point.churn;
    options.num_walkers = 6;
    options.walk_ttl = 15;
    options.ring_satisfaction_results = 20;
    options.shards.num_shards = point.shards;
    options.shards.num_threads = point.threads;
    MetricsRegistry metrics;
    options.metrics = &metrics;
    Simulator sim(inst, config, inputs, options);
    const SimReport r = sim.Run();

    ASSERT_GT(r.queries_submitted, 0u);
    EXPECT_GT(metrics.GetCounter("sim.shard.cells").value(), 0u);
    EXPECT_EQ(metrics.GetCounter("sim.shard.lookahead_violations").value(),
              0u);
    EXPECT_GE(metrics.GetGauge("sim.shard.min_merge_margin").value(), -1e-9);
  }
}

TEST(ShardedLookaheadDeathTest, ZeroLookaheadWithShardsAborts) {
  // Zero hop latency means zero lookahead: no window may legally run
  // in parallel, and the configuration must abort rather than fall
  // back to anything weaker than the bit-identity contract.
  SimOptions options;
  options.shards.num_shards = 2;
  options.hop_latency_seconds = 0.0;
  EXPECT_DEATH(options.Validate(), "positive lookahead");
}

}  // namespace
}  // namespace sppnet
