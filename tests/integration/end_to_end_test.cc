// End-to-end integration: the Figure 10 design procedure produces a
// configuration from resource constraints; the discrete-event
// simulator then *executes* that configuration and must confirm the
// promised behaviour — this closes the loop between the analytical
// design path and the protocol implementation.

#include <gtest/gtest.h>

#include "sppnet/design/procedure.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {
namespace {

TEST(EndToEndTest, DesignedNetworkHonorsConstraintsUnderSimulation) {
  const ModelInputs inputs = ModelInputs::Default();

  DesignGoals goals;
  goals.num_users = 3000;
  goals.desired_reach_peers = 800.0;
  DesignConstraints constraints;
  constraints.max_individual_in_bps = 150e3;
  constraints.max_individual_out_bps = 150e3;
  constraints.max_individual_proc_hz = 15e6;
  constraints.max_connections = 60.0;
  DesignOptions design_options;
  design_options.trials_per_candidate = 2;

  const DesignResult design =
      RunGlobalDesign(goals, constraints, inputs, design_options);
  ASSERT_TRUE(design.feasible) << design.note;

  Rng rng(404);
  const NetworkInstance inst = GenerateInstance(design.config, inputs, rng);
  SimOptions sim_options;
  sim_options.duration_seconds = 400;
  sim_options.warmup_seconds = 40;
  Simulator sim(inst, design.config, inputs, sim_options);
  const SimReport measured = sim.Run();

  // The simulated network must deliver the designed reach (in peers)
  // and keep measured super-peer loads within ~30% of the limits the
  // designer specified (simulation noise + expectation vs sample).
  const LoadVector sp = InstanceLoads::MeanOf(measured.partner_load);
  EXPECT_LE(sp.in_bps, 1.3 * constraints.max_individual_in_bps);
  EXPECT_LE(sp.out_bps, 1.3 * constraints.max_individual_out_bps);
  EXPECT_LE(sp.proc_hz, 1.3 * constraints.max_individual_proc_hz);
  EXPECT_GT(measured.mean_results_per_query, 0.0);

  // Results should be consistent with the analytical prediction.
  EXPECT_NEAR(measured.mean_results_per_query,
              design.report.results_per_query.Mean(),
              0.35 * design.report.results_per_query.Mean());
}

TEST(EndToEndTest, RedundantDesignSurvivesChurnBetterThanPlain) {
  // Design a network, then stress both its plain and 2-redundant
  // variants under churn: the redundant one must deliver better
  // availability at comparable per-partner load.
  const ModelInputs inputs = ModelInputs::Default();
  Configuration config;
  config.graph_size = 1000;
  config.cluster_size = 10;
  config.ttl = 4;
  config.avg_outdegree = 6.0;

  SimOptions churn;
  churn.duration_seconds = 1200;
  churn.warmup_seconds = 60;
  churn.churn.enable = true;
  churn.churn.partner_recovery_seconds = 45.0;

  Rng rng_plain(7);
  const NetworkInstance plain = GenerateInstance(config, inputs, rng_plain);
  Simulator sim_plain(plain, config, inputs, churn);
  const SimReport r_plain = sim_plain.Run();

  Configuration red_config = config;
  red_config.redundancy = true;
  Rng rng_red(7);
  const NetworkInstance red = GenerateInstance(red_config, inputs, rng_red);
  Simulator sim_red(red, red_config, inputs, churn);
  const SimReport r_red = sim_red.Run();

  EXPECT_LT(r_red.client_disconnected_fraction,
            0.6 * r_plain.client_disconnected_fraction);
  const double sp_plain = InstanceLoads::MeanOf(r_plain.partner_load).TotalBps();
  const double sp_red = InstanceLoads::MeanOf(r_red.partner_load).TotalBps();
  EXPECT_LT(sp_red, sp_plain);  // Redundancy also lightens each partner.
}

}  // namespace
}  // namespace sppnet
