// ctest-label: threaded
// Golden regression pins for the paper-facing bench tables: a scaled-
// down fig04 (aggregate bandwidth vs cluster size) and fig07 (SP out-
// bandwidth by #neighbors) built with the exact row-construction logic
// of the bench binaries, from a fixed seed. The expected strings are
// the tables' full printed output; if an engine or model change shifts
// a single formatted digit, the diff shows up here instead of silently
// in EXPERIMENTS.md. Goldens were generated with the batched engine,
// which the identity suite proves bit-equal to the scalar reference,
// so the pins hold for both engines.
//
// To regenerate after an *intentional* model change: run with
// --gtest_filter='GoldenTablesTest.*' and copy the "Actual" block from
// the failure message (both strings print in full on mismatch).

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sppnet/io/table.h"
#include "sppnet/model/trials.h"

namespace sppnet {
namespace {

std::string Render(const TableWriter& table) {
  std::ostringstream os;
  table.Print(os);
  return os.str();
}

// Mirrors bench/fig04_aggregate_bandwidth.cc at graph size 400 with a
// three-point cluster sweep over the two non-redundant systems.
TEST(GoldenTablesTest, Fig04AggregateBandwidthSmallConfig) {
  const ModelInputs inputs = ModelInputs::Default();
  TableWriter table({"ClusterSize", "System", "Aggregate bw (bps)",
                     "CI95 (in)", "Results/query"});
  struct System {
    const char* name;
    GraphType graph_type;
    double avg_outdegree;
    int ttl;
  };
  constexpr System kSystems[] = {
      {"strong", GraphType::kStronglyConnected, 0.0, 1},
      {"power3.1", GraphType::kPowerLaw, 3.1, 7},
  };
  for (const System& system : kSystems) {
    for (const double cs : {1.0, 10.0, 50.0}) {
      Configuration config;
      config.graph_type = system.graph_type;
      config.graph_size = 400;
      config.cluster_size = cs;
      config.ttl = system.ttl;
      if (system.avg_outdegree > 0.0) {
        config.avg_outdegree = system.avg_outdegree;
      }
      TrialOptions options;
      options.num_trials = 2;
      options.seed = 42;
      options.parallelism = 2;
      const ConfigurationReport report = RunTrials(config, inputs, options);
      table.AddRow({Format(static_cast<std::size_t>(cs)), system.name,
                    FormatSci(report.AggregateBandwidthMean()),
                    FormatSci(report.aggregate_in_bps.ConfidenceHalfWidth95()),
                    Format(report.results_per_query.Mean(), 3)});
    }
  }

  const std::string kGolden =
      "ClusterSize  System    Aggregate bw (bps)  CI95 (in)  Results/query\n"
      "-------------------------------------------------------------------\n"
      "1            strong    2.50e+06            4.02e+04   31\n"
      "10           strong    8.15e+05            5.66e+04   31\n"
      "50           strong    5.86e+05            7.56e+04   31.1\n"
      "1            power3.1  5.72e+06            7.37e+04   30.1\n"
      "10           power3.1  1.66e+06            1.51e+05   30.8\n"
      "50           power3.1  8.25e+05            1.28e+05   32.3\n";
  EXPECT_EQ(Render(table), kGolden);
}

// Mirrors bench/fig07_load_by_outdegree.cc at graph size 400, cluster
// size 5 (same TTL 7, same >=3-observation bucket filter).
TEST(GoldenTablesTest, Fig07LoadByOutdegreeSmallConfig) {
  const ModelInputs inputs = ModelInputs::Default();
  for (const double outdeg : {3.1, 10.0}) {
    Configuration config;
    config.graph_size = 400;
    config.cluster_size = 5;
    config.avg_outdegree = outdeg;
    config.ttl = 7;
    TrialOptions options;
    options.num_trials = 2;
    options.seed = 42;
    options.collect_outdegree_histograms = true;
    options.parallelism = 2;
    const ConfigurationReport report = RunTrials(config, inputs, options);
    TableWriter table({"#neighbors", "SPs", "Out bw (bps)", "StdDev"});
    for (int d = 1; d < report.sp_out_bps_by_outdegree.KeyUpperBound(); ++d) {
      const RunningStat& stat = report.sp_out_bps_by_outdegree.Group(d);
      if (stat.count() < 3) continue;
      table.AddRow({Format(d), Format(stat.count()), FormatSci(stat.Mean()),
                    FormatSci(stat.StdDev())});
    }
    SCOPED_TRACE(testing::Message() << "outdegree " << outdeg);
    if (outdeg == 3.1) {
      const std::string kGolden =
          "#neighbors  SPs  Out bw (bps)  StdDev\n"
          "---------------------------------------\n"
          "1           41   2.87e+03      1.51e+03\n"
          "2           62   7.78e+03      3.85e+03\n"
          "3           17   1.32e+04      5.51e+03\n"
          "4           17   1.50e+04      3.22e+03\n"
          "5           6    2.28e+04      5.13e+03\n"
          "6           5    2.60e+04      5.99e+03\n"
          "7           3    3.11e+04      3.90e+03\n";
      EXPECT_EQ(Render(table), kGolden);
    } else {
      const std::string kGolden =
          "#neighbors  SPs  Out bw (bps)  StdDev\n"
          "---------------------------------------\n"
          "4           22   1.13e+04      1.56e+03\n"
          "5           28   1.43e+04      1.38e+03\n"
          "6           22   1.71e+04      1.29e+03\n"
          "7           17   2.01e+04      1.14e+03\n"
          "8           11   2.27e+04      9.68e+02\n"
          "9           11   2.60e+04      1.70e+03\n"
          "10          5    2.81e+04      9.04e+02\n"
          "11          4    3.46e+04      7.73e+03\n"
          "12          5    3.49e+04      1.66e+03\n"
          "13          4    3.92e+04      7.95e+02\n"
          "14          6    4.50e+04      1.01e+04\n"
          "15          4    4.48e+04      1.11e+03\n"
          "18          3    5.54e+04      4.03e+03\n"
          "32          3    1.04e+05      6.25e+03\n";
      EXPECT_EQ(Render(table), kGolden);
    }
  }
}

}  // namespace
}  // namespace sppnet
