#include "sppnet/cost/cost_table.h"

#include <gtest/gtest.h>

namespace sppnet {
namespace {

TEST(CostTableTest, QueryMessageSizeMatchesGnutellaProtocol) {
  // 22-byte Gnutella header + 2 flag bytes + query string + Ethernet and
  // TCP/IP headers = 82 + len (Section 4.1).
  const CostTable costs;
  EXPECT_DOUBLE_EQ(costs.QueryBytes(12.0), 94.0);
  EXPECT_DOUBLE_EQ(costs.QueryBytes(0.0), 82.0);
}

TEST(CostTableTest, ResponseSizeLinearInAddrsAndResults) {
  const CostTable costs;
  EXPECT_DOUBLE_EQ(costs.ResponseBytes(0.0, 0.0), 80.0);
  EXPECT_DOUBLE_EQ(costs.ResponseBytes(2.0, 3.0), 80.0 + 56.0 + 228.0);
}

TEST(CostTableTest, JoinSizePerPaperExample) {
  // Section 4.1 worked example: a client with x files sends 80 + 72x
  // bytes of outgoing bandwidth to join.
  const CostTable costs;
  EXPECT_DOUBLE_EQ(costs.JoinBytes(10.0), 80.0 + 720.0);
}

TEST(CostTableTest, JoinProcessingPerPaperExample) {
  // Same example: client-side processing is .44 + .2x (+ .01 per open
  // connection, accounted separately as the multiplex term).
  const CostTable costs;
  EXPECT_DOUBLE_EQ(costs.SendJoinUnits(10.0), 0.44 + 2.0);
}

TEST(CostTableTest, MultiplexPerAppendixA) {
  // Appendix A: .01 units per open connection per message.
  const CostTable costs;
  EXPECT_DOUBLE_EQ(costs.MultiplexUnits(100.0), 1.0);
  EXPECT_DOUBLE_EQ(costs.MultiplexUnits(0.0), 0.0);
}

TEST(CostTableTest, UnitConversionUsesMeasuredCycleCount) {
  // 1 unit = 7200 cycles on the paper's P-III 930 MHz measurement box.
  const CostTable costs;
  EXPECT_DOUBLE_EQ(costs.UnitsToHz(1.0), 7200.0);
  EXPECT_DOUBLE_EQ(costs.UnitsToHz(1000.0), 7.2e6);
}

TEST(CostTableTest, BandwidthConversion) {
  EXPECT_DOUBLE_EQ(BytesPerSecToBps(1.0), 8.0);
  EXPECT_DOUBLE_EQ(BytesPerSecToBps(125000.0), 1e6);
}

TEST(CostTableTest, ProcessingCostsArePositiveAndOrdered) {
  const CostTable costs;
  // Receiving costs slightly more than sending (protocol parsing).
  EXPECT_GT(costs.RecvQueryUnits(12.0), costs.SendQueryUnits(12.0));
  EXPECT_GT(costs.RecvJoinUnits(5.0), costs.SendJoinUnits(5.0));
  EXPECT_GT(costs.recv_update_units, costs.send_update_units);
  // Index operations dominate per-message costs.
  EXPECT_GT(costs.ProcessQueryUnits(0.0), costs.RecvQueryUnits(12.0));
  EXPECT_GT(costs.ProcessJoinUnits(1.0), costs.RecvJoinUnits(1.0));
}

TEST(CostTableTest, UpdateMessageSize) {
  const CostTable costs;
  EXPECT_DOUBLE_EQ(costs.UpdateBytes(), 152.0);
}

TEST(CostTableTest, CustomTableFlowsThroughDerivedCosts) {
  CostTable costs;
  costs.response_per_result_bytes = 100.0;
  EXPECT_DOUBLE_EQ(costs.ResponseBytes(0.0, 2.0), 80.0 + 200.0);
}

}  // namespace
}  // namespace sppnet
