file(REMOVE_RECURSE
  "CMakeFiles/plod_test.dir/topology/plod_test.cc.o"
  "CMakeFiles/plod_test.dir/topology/plod_test.cc.o.d"
  "plod_test"
  "plod_test.pdb"
  "plod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
