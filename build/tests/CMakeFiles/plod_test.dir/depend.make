# Empty dependencies file for plod_test.
# This may be replaced when dependencies are built.
