file(REMOVE_RECURSE
  "CMakeFiles/trials_test.dir/model/trials_test.cc.o"
  "CMakeFiles/trials_test.dir/model/trials_test.cc.o.d"
  "trials_test"
  "trials_test.pdb"
  "trials_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trials_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
