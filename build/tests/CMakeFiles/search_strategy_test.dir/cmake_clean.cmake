file(REMOVE_RECURSE
  "CMakeFiles/search_strategy_test.dir/sim/search_strategy_test.cc.o"
  "CMakeFiles/search_strategy_test.dir/sim/search_strategy_test.cc.o.d"
  "search_strategy_test"
  "search_strategy_test.pdb"
  "search_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
