file(REMOVE_RECURSE
  "CMakeFiles/concrete_index_test.dir/sim/concrete_index_test.cc.o"
  "CMakeFiles/concrete_index_test.dir/sim/concrete_index_test.cc.o.d"
  "concrete_index_test"
  "concrete_index_test.pdb"
  "concrete_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concrete_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
