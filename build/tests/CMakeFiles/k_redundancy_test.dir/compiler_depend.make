# Empty compiler generated dependencies file for k_redundancy_test.
# This may be replaced when dependencies are built.
