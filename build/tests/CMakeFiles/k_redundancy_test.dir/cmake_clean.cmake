file(REMOVE_RECURSE
  "CMakeFiles/k_redundancy_test.dir/model/k_redundancy_test.cc.o"
  "CMakeFiles/k_redundancy_test.dir/model/k_redundancy_test.cc.o.d"
  "k_redundancy_test"
  "k_redundancy_test.pdb"
  "k_redundancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k_redundancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
