file(REMOVE_RECURSE
  "CMakeFiles/peer_profile_test.dir/workload/peer_profile_test.cc.o"
  "CMakeFiles/peer_profile_test.dir/workload/peer_profile_test.cc.o.d"
  "peer_profile_test"
  "peer_profile_test.pdb"
  "peer_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
