# Empty dependencies file for peer_profile_test.
# This may be replaced when dependencies are built.
