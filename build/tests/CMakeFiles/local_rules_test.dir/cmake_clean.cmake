file(REMOVE_RECURSE
  "CMakeFiles/local_rules_test.dir/adaptive/local_rules_test.cc.o"
  "CMakeFiles/local_rules_test.dir/adaptive/local_rules_test.cc.o.d"
  "local_rules_test"
  "local_rules_test.pdb"
  "local_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
