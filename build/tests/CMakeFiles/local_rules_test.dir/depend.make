# Empty dependencies file for local_rules_test.
# This may be replaced when dependencies are built.
