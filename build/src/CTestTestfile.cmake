# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sppnet/common")
subdirs("sppnet/topology")
subdirs("sppnet/workload")
subdirs("sppnet/cost")
subdirs("sppnet/index")
subdirs("sppnet/proto")
subdirs("sppnet/model")
subdirs("sppnet/bootstrap")
subdirs("sppnet/sim")
subdirs("sppnet/transfer")
subdirs("sppnet/design")
subdirs("sppnet/adaptive")
subdirs("sppnet/io")
