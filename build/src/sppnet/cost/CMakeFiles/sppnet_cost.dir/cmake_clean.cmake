file(REMOVE_RECURSE
  "CMakeFiles/sppnet_cost.dir/cost_table.cc.o"
  "CMakeFiles/sppnet_cost.dir/cost_table.cc.o.d"
  "libsppnet_cost.a"
  "libsppnet_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
