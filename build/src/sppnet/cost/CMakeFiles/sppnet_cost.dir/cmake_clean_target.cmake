file(REMOVE_RECURSE
  "libsppnet_cost.a"
)
