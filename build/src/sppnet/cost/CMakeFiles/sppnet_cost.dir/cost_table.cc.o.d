src/sppnet/cost/CMakeFiles/sppnet_cost.dir/cost_table.cc.o: \
 /root/repo/src/sppnet/cost/cost_table.cc /usr/include/stdc-predef.h \
 /root/repo/src/sppnet/cost/cost_table.h
