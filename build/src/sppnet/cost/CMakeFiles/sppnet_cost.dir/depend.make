# Empty dependencies file for sppnet_cost.
# This may be replaced when dependencies are built.
