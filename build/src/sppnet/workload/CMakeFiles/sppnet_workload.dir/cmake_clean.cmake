file(REMOVE_RECURSE
  "CMakeFiles/sppnet_workload.dir/capacity.cc.o"
  "CMakeFiles/sppnet_workload.dir/capacity.cc.o.d"
  "CMakeFiles/sppnet_workload.dir/peer_profile.cc.o"
  "CMakeFiles/sppnet_workload.dir/peer_profile.cc.o.d"
  "CMakeFiles/sppnet_workload.dir/query_model.cc.o"
  "CMakeFiles/sppnet_workload.dir/query_model.cc.o.d"
  "libsppnet_workload.a"
  "libsppnet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
