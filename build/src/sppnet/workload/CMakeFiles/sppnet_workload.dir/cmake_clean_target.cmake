file(REMOVE_RECURSE
  "libsppnet_workload.a"
)
