# Empty compiler generated dependencies file for sppnet_workload.
# This may be replaced when dependencies are built.
