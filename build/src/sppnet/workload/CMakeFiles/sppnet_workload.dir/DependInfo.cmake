
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sppnet/workload/capacity.cc" "src/sppnet/workload/CMakeFiles/sppnet_workload.dir/capacity.cc.o" "gcc" "src/sppnet/workload/CMakeFiles/sppnet_workload.dir/capacity.cc.o.d"
  "/root/repo/src/sppnet/workload/peer_profile.cc" "src/sppnet/workload/CMakeFiles/sppnet_workload.dir/peer_profile.cc.o" "gcc" "src/sppnet/workload/CMakeFiles/sppnet_workload.dir/peer_profile.cc.o.d"
  "/root/repo/src/sppnet/workload/query_model.cc" "src/sppnet/workload/CMakeFiles/sppnet_workload.dir/query_model.cc.o" "gcc" "src/sppnet/workload/CMakeFiles/sppnet_workload.dir/query_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sppnet/common/CMakeFiles/sppnet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
