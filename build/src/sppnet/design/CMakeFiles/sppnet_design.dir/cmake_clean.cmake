file(REMOVE_RECURSE
  "CMakeFiles/sppnet_design.dir/procedure.cc.o"
  "CMakeFiles/sppnet_design.dir/procedure.cc.o.d"
  "libsppnet_design.a"
  "libsppnet_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
