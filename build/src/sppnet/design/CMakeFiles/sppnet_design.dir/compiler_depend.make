# Empty compiler generated dependencies file for sppnet_design.
# This may be replaced when dependencies are built.
