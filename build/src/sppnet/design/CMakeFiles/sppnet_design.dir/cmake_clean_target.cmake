file(REMOVE_RECURSE
  "libsppnet_design.a"
)
