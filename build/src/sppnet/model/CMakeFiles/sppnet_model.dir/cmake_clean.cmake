file(REMOVE_RECURSE
  "CMakeFiles/sppnet_model.dir/breakdown.cc.o"
  "CMakeFiles/sppnet_model.dir/breakdown.cc.o.d"
  "CMakeFiles/sppnet_model.dir/config.cc.o"
  "CMakeFiles/sppnet_model.dir/config.cc.o.d"
  "CMakeFiles/sppnet_model.dir/evaluator.cc.o"
  "CMakeFiles/sppnet_model.dir/evaluator.cc.o.d"
  "CMakeFiles/sppnet_model.dir/instance.cc.o"
  "CMakeFiles/sppnet_model.dir/instance.cc.o.d"
  "CMakeFiles/sppnet_model.dir/trials.cc.o"
  "CMakeFiles/sppnet_model.dir/trials.cc.o.d"
  "libsppnet_model.a"
  "libsppnet_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
