# Empty compiler generated dependencies file for sppnet_model.
# This may be replaced when dependencies are built.
