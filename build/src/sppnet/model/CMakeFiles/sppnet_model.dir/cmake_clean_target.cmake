file(REMOVE_RECURSE
  "libsppnet_model.a"
)
