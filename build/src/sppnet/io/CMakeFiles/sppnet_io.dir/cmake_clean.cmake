file(REMOVE_RECURSE
  "CMakeFiles/sppnet_io.dir/table.cc.o"
  "CMakeFiles/sppnet_io.dir/table.cc.o.d"
  "libsppnet_io.a"
  "libsppnet_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
