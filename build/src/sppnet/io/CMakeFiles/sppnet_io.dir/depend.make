# Empty dependencies file for sppnet_io.
# This may be replaced when dependencies are built.
