file(REMOVE_RECURSE
  "libsppnet_io.a"
)
