# Empty dependencies file for sppnet_proto.
# This may be replaced when dependencies are built.
