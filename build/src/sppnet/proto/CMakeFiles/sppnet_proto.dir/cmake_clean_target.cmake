file(REMOVE_RECURSE
  "libsppnet_proto.a"
)
