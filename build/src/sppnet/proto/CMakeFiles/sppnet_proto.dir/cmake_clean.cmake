file(REMOVE_RECURSE
  "CMakeFiles/sppnet_proto.dir/messages.cc.o"
  "CMakeFiles/sppnet_proto.dir/messages.cc.o.d"
  "CMakeFiles/sppnet_proto.dir/wire.cc.o"
  "CMakeFiles/sppnet_proto.dir/wire.cc.o.d"
  "libsppnet_proto.a"
  "libsppnet_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
