
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sppnet/proto/messages.cc" "src/sppnet/proto/CMakeFiles/sppnet_proto.dir/messages.cc.o" "gcc" "src/sppnet/proto/CMakeFiles/sppnet_proto.dir/messages.cc.o.d"
  "/root/repo/src/sppnet/proto/wire.cc" "src/sppnet/proto/CMakeFiles/sppnet_proto.dir/wire.cc.o" "gcc" "src/sppnet/proto/CMakeFiles/sppnet_proto.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sppnet/common/CMakeFiles/sppnet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/cost/CMakeFiles/sppnet_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
