file(REMOVE_RECURSE
  "libsppnet_transfer.a"
)
