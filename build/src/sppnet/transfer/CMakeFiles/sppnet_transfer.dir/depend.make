# Empty dependencies file for sppnet_transfer.
# This may be replaced when dependencies are built.
