file(REMOVE_RECURSE
  "CMakeFiles/sppnet_transfer.dir/transfer.cc.o"
  "CMakeFiles/sppnet_transfer.dir/transfer.cc.o.d"
  "libsppnet_transfer.a"
  "libsppnet_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
