# CMake generated Testfile for 
# Source directory: /root/repo/src/sppnet/transfer
# Build directory: /root/repo/build/src/sppnet/transfer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
