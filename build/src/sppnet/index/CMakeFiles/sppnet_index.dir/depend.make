# Empty dependencies file for sppnet_index.
# This may be replaced when dependencies are built.
