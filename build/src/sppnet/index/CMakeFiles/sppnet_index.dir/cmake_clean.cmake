file(REMOVE_RECURSE
  "CMakeFiles/sppnet_index.dir/corpus.cc.o"
  "CMakeFiles/sppnet_index.dir/corpus.cc.o.d"
  "CMakeFiles/sppnet_index.dir/inverted_index.cc.o"
  "CMakeFiles/sppnet_index.dir/inverted_index.cc.o.d"
  "libsppnet_index.a"
  "libsppnet_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
