file(REMOVE_RECURSE
  "libsppnet_index.a"
)
