file(REMOVE_RECURSE
  "libsppnet_sim.a"
)
