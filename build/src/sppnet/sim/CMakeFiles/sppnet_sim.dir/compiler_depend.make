# Empty compiler generated dependencies file for sppnet_sim.
# This may be replaced when dependencies are built.
