file(REMOVE_RECURSE
  "CMakeFiles/sppnet_sim.dir/event_queue.cc.o"
  "CMakeFiles/sppnet_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/sppnet_sim.dir/simulator.cc.o"
  "CMakeFiles/sppnet_sim.dir/simulator.cc.o.d"
  "libsppnet_sim.a"
  "libsppnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
