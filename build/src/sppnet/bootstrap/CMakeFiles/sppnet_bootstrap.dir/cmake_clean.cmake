file(REMOVE_RECURSE
  "CMakeFiles/sppnet_bootstrap.dir/discovery.cc.o"
  "CMakeFiles/sppnet_bootstrap.dir/discovery.cc.o.d"
  "libsppnet_bootstrap.a"
  "libsppnet_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
