
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sppnet/bootstrap/discovery.cc" "src/sppnet/bootstrap/CMakeFiles/sppnet_bootstrap.dir/discovery.cc.o" "gcc" "src/sppnet/bootstrap/CMakeFiles/sppnet_bootstrap.dir/discovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sppnet/common/CMakeFiles/sppnet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/model/CMakeFiles/sppnet_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/topology/CMakeFiles/sppnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/workload/CMakeFiles/sppnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/cost/CMakeFiles/sppnet_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
