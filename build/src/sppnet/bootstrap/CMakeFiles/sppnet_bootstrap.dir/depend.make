# Empty dependencies file for sppnet_bootstrap.
# This may be replaced when dependencies are built.
