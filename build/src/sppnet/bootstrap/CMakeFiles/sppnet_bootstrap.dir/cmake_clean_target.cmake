file(REMOVE_RECURSE
  "libsppnet_bootstrap.a"
)
