file(REMOVE_RECURSE
  "CMakeFiles/sppnet_topology.dir/bfs.cc.o"
  "CMakeFiles/sppnet_topology.dir/bfs.cc.o.d"
  "CMakeFiles/sppnet_topology.dir/generators.cc.o"
  "CMakeFiles/sppnet_topology.dir/generators.cc.o.d"
  "CMakeFiles/sppnet_topology.dir/graph.cc.o"
  "CMakeFiles/sppnet_topology.dir/graph.cc.o.d"
  "CMakeFiles/sppnet_topology.dir/metrics.cc.o"
  "CMakeFiles/sppnet_topology.dir/metrics.cc.o.d"
  "CMakeFiles/sppnet_topology.dir/plod.cc.o"
  "CMakeFiles/sppnet_topology.dir/plod.cc.o.d"
  "CMakeFiles/sppnet_topology.dir/topology.cc.o"
  "CMakeFiles/sppnet_topology.dir/topology.cc.o.d"
  "libsppnet_topology.a"
  "libsppnet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
