file(REMOVE_RECURSE
  "libsppnet_topology.a"
)
