# Empty dependencies file for sppnet_topology.
# This may be replaced when dependencies are built.
