
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sppnet/topology/bfs.cc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/bfs.cc.o" "gcc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/bfs.cc.o.d"
  "/root/repo/src/sppnet/topology/generators.cc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/generators.cc.o" "gcc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/generators.cc.o.d"
  "/root/repo/src/sppnet/topology/graph.cc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/graph.cc.o" "gcc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/graph.cc.o.d"
  "/root/repo/src/sppnet/topology/metrics.cc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/metrics.cc.o" "gcc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/metrics.cc.o.d"
  "/root/repo/src/sppnet/topology/plod.cc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/plod.cc.o" "gcc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/plod.cc.o.d"
  "/root/repo/src/sppnet/topology/topology.cc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/topology.cc.o" "gcc" "src/sppnet/topology/CMakeFiles/sppnet_topology.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sppnet/common/CMakeFiles/sppnet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
