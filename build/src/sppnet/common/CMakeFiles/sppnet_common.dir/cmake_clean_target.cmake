file(REMOVE_RECURSE
  "libsppnet_common.a"
)
