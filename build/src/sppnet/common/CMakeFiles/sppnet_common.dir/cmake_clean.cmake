file(REMOVE_RECURSE
  "CMakeFiles/sppnet_common.dir/distributions.cc.o"
  "CMakeFiles/sppnet_common.dir/distributions.cc.o.d"
  "CMakeFiles/sppnet_common.dir/rng.cc.o"
  "CMakeFiles/sppnet_common.dir/rng.cc.o.d"
  "CMakeFiles/sppnet_common.dir/stats.cc.o"
  "CMakeFiles/sppnet_common.dir/stats.cc.o.d"
  "libsppnet_common.a"
  "libsppnet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
