# Empty compiler generated dependencies file for sppnet_common.
# This may be replaced when dependencies are built.
