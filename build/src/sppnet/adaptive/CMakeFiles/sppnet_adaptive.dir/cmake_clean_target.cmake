file(REMOVE_RECURSE
  "libsppnet_adaptive.a"
)
