# Empty compiler generated dependencies file for sppnet_adaptive.
# This may be replaced when dependencies are built.
