file(REMOVE_RECURSE
  "CMakeFiles/sppnet_adaptive.dir/local_rules.cc.o"
  "CMakeFiles/sppnet_adaptive.dir/local_rules.cc.o.d"
  "libsppnet_adaptive.a"
  "libsppnet_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppnet_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
