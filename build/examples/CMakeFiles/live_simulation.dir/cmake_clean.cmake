file(REMOVE_RECURSE
  "CMakeFiles/live_simulation.dir/live_simulation.cpp.o"
  "CMakeFiles/live_simulation.dir/live_simulation.cpp.o.d"
  "live_simulation"
  "live_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
