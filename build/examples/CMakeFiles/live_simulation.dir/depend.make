# Empty dependencies file for live_simulation.
# This may be replaced when dependencies are built.
