# Empty compiler generated dependencies file for design_your_network.
# This may be replaced when dependencies are built.
