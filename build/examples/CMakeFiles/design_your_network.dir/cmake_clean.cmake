file(REMOVE_RECURSE
  "CMakeFiles/design_your_network.dir/design_your_network.cpp.o"
  "CMakeFiles/design_your_network.dir/design_your_network.cpp.o.d"
  "design_your_network"
  "design_your_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_your_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
