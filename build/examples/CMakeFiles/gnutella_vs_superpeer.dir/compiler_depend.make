# Empty compiler generated dependencies file for gnutella_vs_superpeer.
# This may be replaced when dependencies are built.
