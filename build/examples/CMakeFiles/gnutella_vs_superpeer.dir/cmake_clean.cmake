file(REMOVE_RECURSE
  "CMakeFiles/gnutella_vs_superpeer.dir/gnutella_vs_superpeer.cpp.o"
  "CMakeFiles/gnutella_vs_superpeer.dir/gnutella_vs_superpeer.cpp.o.d"
  "gnutella_vs_superpeer"
  "gnutella_vs_superpeer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnutella_vs_superpeer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
