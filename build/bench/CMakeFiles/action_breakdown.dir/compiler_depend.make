# Empty compiler generated dependencies file for action_breakdown.
# This may be replaced when dependencies are built.
