file(REMOVE_RECURSE
  "CMakeFiles/action_breakdown.dir/action_breakdown.cc.o"
  "CMakeFiles/action_breakdown.dir/action_breakdown.cc.o.d"
  "action_breakdown"
  "action_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
