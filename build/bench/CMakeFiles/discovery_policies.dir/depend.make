# Empty dependencies file for discovery_policies.
# This may be replaced when dependencies are built.
