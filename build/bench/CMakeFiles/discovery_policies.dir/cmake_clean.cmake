file(REMOVE_RECURSE
  "CMakeFiles/discovery_policies.dir/discovery_policies.cc.o"
  "CMakeFiles/discovery_policies.dir/discovery_policies.cc.o.d"
  "discovery_policies"
  "discovery_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
