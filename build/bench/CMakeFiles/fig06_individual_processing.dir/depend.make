# Empty dependencies file for fig06_individual_processing.
# This may be replaced when dependencies are built.
