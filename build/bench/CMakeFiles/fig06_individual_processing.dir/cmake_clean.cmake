file(REMOVE_RECURSE
  "CMakeFiles/fig06_individual_processing.dir/fig06_individual_processing.cc.o"
  "CMakeFiles/fig06_individual_processing.dir/fig06_individual_processing.cc.o.d"
  "fig06_individual_processing"
  "fig06_individual_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_individual_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
