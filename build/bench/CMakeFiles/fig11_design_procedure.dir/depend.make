# Empty dependencies file for fig11_design_procedure.
# This may be replaced when dependencies are built.
