file(REMOVE_RECURSE
  "CMakeFiles/fig11_design_procedure.dir/fig11_design_procedure.cc.o"
  "CMakeFiles/fig11_design_procedure.dir/fig11_design_procedure.cc.o.d"
  "fig11_design_procedure"
  "fig11_design_procedure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_design_procedure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
