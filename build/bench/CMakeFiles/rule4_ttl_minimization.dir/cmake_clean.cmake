file(REMOVE_RECURSE
  "CMakeFiles/rule4_ttl_minimization.dir/rule4_ttl_minimization.cc.o"
  "CMakeFiles/rule4_ttl_minimization.dir/rule4_ttl_minimization.cc.o.d"
  "rule4_ttl_minimization"
  "rule4_ttl_minimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule4_ttl_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
