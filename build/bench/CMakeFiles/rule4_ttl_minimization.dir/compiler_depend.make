# Empty compiler generated dependencies file for rule4_ttl_minimization.
# This may be replaced when dependencies are built.
