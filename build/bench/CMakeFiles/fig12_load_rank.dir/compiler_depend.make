# Empty compiler generated dependencies file for fig12_load_rank.
# This may be replaced when dependencies are built.
