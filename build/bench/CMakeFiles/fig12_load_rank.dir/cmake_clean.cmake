file(REMOVE_RECURSE
  "CMakeFiles/fig12_load_rank.dir/fig12_load_rank.cc.o"
  "CMakeFiles/fig12_load_rank.dir/fig12_load_rank.cc.o.d"
  "fig12_load_rank"
  "fig12_load_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_load_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
