file(REMOVE_RECURSE
  "CMakeFiles/figA15_outdegree_caveat.dir/figA15_outdegree_caveat.cc.o"
  "CMakeFiles/figA15_outdegree_caveat.dir/figA15_outdegree_caveat.cc.o.d"
  "figA15_outdegree_caveat"
  "figA15_outdegree_caveat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figA15_outdegree_caveat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
