# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figA15_outdegree_caveat.
