# Empty dependencies file for figA15_outdegree_caveat.
# This may be replaced when dependencies are built.
