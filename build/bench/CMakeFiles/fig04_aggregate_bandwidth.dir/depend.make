# Empty dependencies file for fig04_aggregate_bandwidth.
# This may be replaced when dependencies are built.
