file(REMOVE_RECURSE
  "CMakeFiles/fig04_aggregate_bandwidth.dir/fig04_aggregate_bandwidth.cc.o"
  "CMakeFiles/fig04_aggregate_bandwidth.dir/fig04_aggregate_bandwidth.cc.o.d"
  "fig04_aggregate_bandwidth"
  "fig04_aggregate_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_aggregate_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
