# Empty dependencies file for ablation_multiplex.
# This may be replaced when dependencies are built.
