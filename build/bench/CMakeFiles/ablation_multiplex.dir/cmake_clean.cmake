file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiplex.dir/ablation_multiplex.cc.o"
  "CMakeFiles/ablation_multiplex.dir/ablation_multiplex.cc.o.d"
  "ablation_multiplex"
  "ablation_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
