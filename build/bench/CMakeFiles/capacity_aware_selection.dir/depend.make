# Empty dependencies file for capacity_aware_selection.
# This may be replaced when dependencies are built.
