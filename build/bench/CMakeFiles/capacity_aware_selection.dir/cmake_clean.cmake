file(REMOVE_RECURSE
  "CMakeFiles/capacity_aware_selection.dir/capacity_aware_selection.cc.o"
  "CMakeFiles/capacity_aware_selection.dir/capacity_aware_selection.cc.o.d"
  "capacity_aware_selection"
  "capacity_aware_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_aware_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
