# Empty compiler generated dependencies file for topology_families.
# This may be replaced when dependencies are built.
