file(REMOVE_RECURSE
  "CMakeFiles/topology_families.dir/topology_families.cc.o"
  "CMakeFiles/topology_families.dir/topology_families.cc.o.d"
  "topology_families"
  "topology_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
