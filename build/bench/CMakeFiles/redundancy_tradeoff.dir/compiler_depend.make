# Empty compiler generated dependencies file for redundancy_tradeoff.
# This may be replaced when dependencies are built.
