file(REMOVE_RECURSE
  "CMakeFiles/redundancy_tradeoff.dir/redundancy_tradeoff.cc.o"
  "CMakeFiles/redundancy_tradeoff.dir/redundancy_tradeoff.cc.o.d"
  "redundancy_tradeoff"
  "redundancy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundancy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
