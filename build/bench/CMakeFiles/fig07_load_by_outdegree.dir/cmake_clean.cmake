file(REMOVE_RECURSE
  "CMakeFiles/fig07_load_by_outdegree.dir/fig07_load_by_outdegree.cc.o"
  "CMakeFiles/fig07_load_by_outdegree.dir/fig07_load_by_outdegree.cc.o.d"
  "fig07_load_by_outdegree"
  "fig07_load_by_outdegree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_load_by_outdegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
