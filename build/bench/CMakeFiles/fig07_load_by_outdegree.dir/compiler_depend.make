# Empty compiler generated dependencies file for fig07_load_by_outdegree.
# This may be replaced when dependencies are built.
