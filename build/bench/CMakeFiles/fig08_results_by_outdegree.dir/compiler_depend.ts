# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_results_by_outdegree.
