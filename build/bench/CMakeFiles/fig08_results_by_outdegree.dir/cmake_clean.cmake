file(REMOVE_RECURSE
  "CMakeFiles/fig08_results_by_outdegree.dir/fig08_results_by_outdegree.cc.o"
  "CMakeFiles/fig08_results_by_outdegree.dir/fig08_results_by_outdegree.cc.o.d"
  "fig08_results_by_outdegree"
  "fig08_results_by_outdegree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_results_by_outdegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
