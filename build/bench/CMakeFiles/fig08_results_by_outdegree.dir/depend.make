# Empty dependencies file for fig08_results_by_outdegree.
# This may be replaced when dependencies are built.
