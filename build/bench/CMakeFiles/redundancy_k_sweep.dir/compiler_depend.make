# Empty compiler generated dependencies file for redundancy_k_sweep.
# This may be replaced when dependencies are built.
