file(REMOVE_RECURSE
  "CMakeFiles/redundancy_k_sweep.dir/redundancy_k_sweep.cc.o"
  "CMakeFiles/redundancy_k_sweep.dir/redundancy_k_sweep.cc.o.d"
  "redundancy_k_sweep"
  "redundancy_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundancy_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
