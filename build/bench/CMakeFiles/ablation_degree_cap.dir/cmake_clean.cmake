file(REMOVE_RECURSE
  "CMakeFiles/ablation_degree_cap.dir/ablation_degree_cap.cc.o"
  "CMakeFiles/ablation_degree_cap.dir/ablation_degree_cap.cc.o.d"
  "ablation_degree_cap"
  "ablation_degree_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_degree_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
