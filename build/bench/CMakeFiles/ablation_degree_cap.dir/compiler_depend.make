# Empty compiler generated dependencies file for ablation_degree_cap.
# This may be replaced when dependencies are built.
