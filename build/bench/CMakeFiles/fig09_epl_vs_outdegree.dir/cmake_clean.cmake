file(REMOVE_RECURSE
  "CMakeFiles/fig09_epl_vs_outdegree.dir/fig09_epl_vs_outdegree.cc.o"
  "CMakeFiles/fig09_epl_vs_outdegree.dir/fig09_epl_vs_outdegree.cc.o.d"
  "fig09_epl_vs_outdegree"
  "fig09_epl_vs_outdegree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_epl_vs_outdegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
