# Empty dependencies file for fig09_epl_vs_outdegree.
# This may be replaced when dependencies are built.
