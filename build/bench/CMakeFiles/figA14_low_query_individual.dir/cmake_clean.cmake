file(REMOVE_RECURSE
  "CMakeFiles/figA14_low_query_individual.dir/figA14_low_query_individual.cc.o"
  "CMakeFiles/figA14_low_query_individual.dir/figA14_low_query_individual.cc.o.d"
  "figA14_low_query_individual"
  "figA14_low_query_individual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figA14_low_query_individual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
