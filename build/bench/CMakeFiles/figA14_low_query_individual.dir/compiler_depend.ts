# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figA14_low_query_individual.
