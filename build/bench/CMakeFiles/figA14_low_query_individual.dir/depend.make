# Empty dependencies file for figA14_low_query_individual.
# This may be replaced when dependencies are built.
