# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figA13_low_query_aggregate.
