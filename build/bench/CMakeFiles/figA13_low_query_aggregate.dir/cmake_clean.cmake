file(REMOVE_RECURSE
  "CMakeFiles/figA13_low_query_aggregate.dir/figA13_low_query_aggregate.cc.o"
  "CMakeFiles/figA13_low_query_aggregate.dir/figA13_low_query_aggregate.cc.o.d"
  "figA13_low_query_aggregate"
  "figA13_low_query_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figA13_low_query_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
