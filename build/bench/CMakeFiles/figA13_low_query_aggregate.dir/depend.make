# Empty dependencies file for figA13_low_query_aggregate.
# This may be replaced when dependencies are built.
