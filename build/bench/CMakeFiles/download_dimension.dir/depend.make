# Empty dependencies file for download_dimension.
# This may be replaced when dependencies are built.
