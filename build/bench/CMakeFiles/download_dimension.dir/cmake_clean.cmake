file(REMOVE_RECURSE
  "CMakeFiles/download_dimension.dir/download_dimension.cc.o"
  "CMakeFiles/download_dimension.dir/download_dimension.cc.o.d"
  "download_dimension"
  "download_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/download_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
