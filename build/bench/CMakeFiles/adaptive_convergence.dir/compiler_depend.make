# Empty compiler generated dependencies file for adaptive_convergence.
# This may be replaced when dependencies are built.
