file(REMOVE_RECURSE
  "CMakeFiles/adaptive_convergence.dir/adaptive_convergence.cc.o"
  "CMakeFiles/adaptive_convergence.dir/adaptive_convergence.cc.o.d"
  "adaptive_convergence"
  "adaptive_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
