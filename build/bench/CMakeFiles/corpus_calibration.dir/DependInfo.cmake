
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/corpus_calibration.cc" "bench/CMakeFiles/corpus_calibration.dir/corpus_calibration.cc.o" "gcc" "bench/CMakeFiles/corpus_calibration.dir/corpus_calibration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sppnet/proto/CMakeFiles/sppnet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/bootstrap/CMakeFiles/sppnet_bootstrap.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/transfer/CMakeFiles/sppnet_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/design/CMakeFiles/sppnet_design.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/adaptive/CMakeFiles/sppnet_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/sim/CMakeFiles/sppnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/index/CMakeFiles/sppnet_index.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/model/CMakeFiles/sppnet_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/topology/CMakeFiles/sppnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/workload/CMakeFiles/sppnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/cost/CMakeFiles/sppnet_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/io/CMakeFiles/sppnet_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sppnet/common/CMakeFiles/sppnet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
