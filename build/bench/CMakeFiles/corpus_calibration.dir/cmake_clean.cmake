file(REMOVE_RECURSE
  "CMakeFiles/corpus_calibration.dir/corpus_calibration.cc.o"
  "CMakeFiles/corpus_calibration.dir/corpus_calibration.cc.o.d"
  "corpus_calibration"
  "corpus_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
