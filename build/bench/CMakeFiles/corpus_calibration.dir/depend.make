# Empty dependencies file for corpus_calibration.
# This may be replaced when dependencies are built.
