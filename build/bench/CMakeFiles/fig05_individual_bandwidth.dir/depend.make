# Empty dependencies file for fig05_individual_bandwidth.
# This may be replaced when dependencies are built.
