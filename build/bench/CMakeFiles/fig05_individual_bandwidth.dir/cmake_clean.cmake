file(REMOVE_RECURSE
  "CMakeFiles/fig05_individual_bandwidth.dir/fig05_individual_bandwidth.cc.o"
  "CMakeFiles/fig05_individual_bandwidth.dir/fig05_individual_bandwidth.cc.o.d"
  "fig05_individual_bandwidth"
  "fig05_individual_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_individual_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
