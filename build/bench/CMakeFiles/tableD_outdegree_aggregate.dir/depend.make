# Empty dependencies file for tableD_outdegree_aggregate.
# This may be replaced when dependencies are built.
