file(REMOVE_RECURSE
  "CMakeFiles/tableD_outdegree_aggregate.dir/tableD_outdegree_aggregate.cc.o"
  "CMakeFiles/tableD_outdegree_aggregate.dir/tableD_outdegree_aggregate.cc.o.d"
  "tableD_outdegree_aggregate"
  "tableD_outdegree_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableD_outdegree_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
