# Empty dependencies file for reliability_redundancy.
# This may be replaced when dependencies are built.
