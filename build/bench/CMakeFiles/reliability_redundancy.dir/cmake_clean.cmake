file(REMOVE_RECURSE
  "CMakeFiles/reliability_redundancy.dir/reliability_redundancy.cc.o"
  "CMakeFiles/reliability_redundancy.dir/reliability_redundancy.cc.o.d"
  "reliability_redundancy"
  "reliability_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
