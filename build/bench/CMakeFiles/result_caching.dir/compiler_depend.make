# Empty compiler generated dependencies file for result_caching.
# This may be replaced when dependencies are built.
