file(REMOVE_RECURSE
  "CMakeFiles/result_caching.dir/result_caching.cc.o"
  "CMakeFiles/result_caching.dir/result_caching.cc.o.d"
  "result_caching"
  "result_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
