#include "sppnet/sim/adaptive_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "sppnet/common/check.h"
#include "sppnet/workload/election.h"

namespace sppnet {
namespace {

/// Rule III accepts a shorter TTL when it preserves at least this
/// fraction of the mean reach — the same threshold the offline
/// controller applies to the evaluator's mean_reach.
constexpr double kReachRetention = 0.98;

/// Random peering attempts per under-degree super-peer per round
/// (mirrors the offline controller's budget).
constexpr int kPeeringAttempts = 8;

/// Decision rounds a slot sits out rule I after a split or coalesce
/// touched it: one round covers the measurement window that contains
/// the structural change's re-upload storm.
constexpr std::uint8_t kSettleRounds = 1;

/// Consecutive over/under-threshold windows before rule I acts. Window
/// loads are Poisson-noisy; requiring agreement across windows squares
/// away one-window spikes (p -> p^2) that would otherwise churn
/// membership at the thresholds indefinitely.
constexpr std::uint8_t kSustainRounds = 2;

}  // namespace

void AdaptivePlan::Validate() const {
  SPPNET_CHECK_MSG(
      std::isfinite(probe_interval_seconds) && probe_interval_seconds >= 0.0,
      "probe interval must be finite and >= 0");
  SPPNET_CHECK_MSG(std::isfinite(decision_interval_seconds) &&
                       decision_interval_seconds > 0.0,
                   "decision interval must be finite and > 0");
  if (!enabled()) return;
  SPPNET_CHECK_MSG(probe_interval_seconds <= decision_interval_seconds,
                   "probe interval must not exceed the decision interval");
  policy.Validate();
}

AdaptiveController::AdaptiveController(const NetworkInstance& instance,
                                       const LocalPolicy& policy,
                                       std::uint64_t sim_seed)
    : policy_(policy), rng_(sim_seed ^ AdaptivePlan::kStreamSalt) {
  policy_.Validate();
  SPPNET_CHECK_MSG(instance.redundancy_k == 1,
                   "in-sim adaptation models non-redundant clusters");
  const std::size_t n = instance.NumClusters();
  const std::size_t num_clients = instance.TotalClients();
  const std::size_t total = n + num_clients;

  node_cluster_.resize(total);
  is_head_.assign(total, 0);
  files_.resize(total);
  head_.resize(n);
  members_.resize(n);
  adj_.resize(n);
  dead_.assign(n, 0);
  cooldown_.assign(n, 0);
  over_streak_.assign(n, 0);
  under_streak_.assign(n, 0);
  cap_over_streak_.assign(n, 0);
  files_sum_.assign(n, 0.0);
  reports_.resize(n);
  live_clusters_ = n;

  for (std::size_t i = 0; i < n; ++i) {
    const auto h = static_cast<std::uint32_t>(i);  // k == 1: head id == i.
    head_[i] = h;
    node_cluster_[h] = h;
    is_head_[h] = 1;
    files_[h] = static_cast<double>(instance.partner_files[i]);
    files_sum_[i] = files_[h];
    members_[i].reserve(instance.client_offset[i + 1] -
                        instance.client_offset[i]);
    for (std::size_t c = instance.client_offset[i];
         c < instance.client_offset[i + 1]; ++c) {
      const auto node = static_cast<std::uint32_t>(n + c);
      members_[i].push_back(node);
      node_cluster_[node] = static_cast<std::uint32_t>(i);
      files_[node] = static_cast<double>(instance.client_files[c]);
      files_sum_[i] += files_[node];
    }
    if (instance.topology.is_complete()) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (v != i) adj_[i].insert(v);
      }
    } else {
      for (const NodeId v :
           instance.topology.graph().Neighbors(static_cast<NodeId>(i))) {
        adj_[i].insert(static_cast<std::uint32_t>(v));
      }
    }
  }
}

double AdaptiveController::AvgOutdegree() const {
  if (live_clusters_ == 0) return 0.0;
  std::size_t sum = 0;
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    if (!dead_[i]) sum += adj_[i].size();
  }
  return static_cast<double>(sum) / static_cast<double>(live_clusters_);
}

void AdaptiveController::MoveClient(std::uint32_t node,
                                    std::size_t to_cluster) {
  SPPNET_CHECK(!is_head_[node]);
  SPPNET_CHECK(!dead_[to_cluster]);
  const std::size_t from = node_cluster_[node];
  auto& src = members_[from];
  src.erase(std::find(src.begin(), src.end(), node));
  files_sum_[from] -= files_[node];
  members_[to_cluster].push_back(node);
  files_sum_[to_cluster] += files_[node];
  node_cluster_[node] = static_cast<std::uint32_t>(to_cluster);
}

void AdaptiveController::SetCapacityView(std::vector<PeerCapacity> capacities,
                                         double overload_utilization,
                                         bool aware_election,
                                         bool demote_overloaded) {
  SPPNET_CHECK_MSG(capacities.size() == files_.size(),
                   "capacity view must cover every node id");
  SPPNET_CHECK_MSG(overload_utilization > 0.0,
                   "overload utilization threshold must be > 0");
  capacities_ = std::move(capacities);
  cap_overload_util_ = overload_utilization;
  cap_aware_election_ = aware_election;
  cap_demote_ = demote_overloaded;
}

void AdaptiveController::RecordReport(std::size_t observer,
                                      std::size_t reporter, double total_bps,
                                      double proc_hz) {
  if (dead_[observer]) return;
  auto& slot = reports_[observer];
  for (NeighborReport& r : slot) {
    if (r.reporter == reporter) {
      r.total_bps = total_bps;
      r.proc_hz = proc_hz;
      r.round = rounds_completed_;
      return;
    }
  }
  NeighborReport fresh;
  fresh.reporter = static_cast<std::uint32_t>(reporter);
  fresh.total_bps = total_bps;
  fresh.proc_hz = proc_hz;
  fresh.round = rounds_completed_;
  slot.push_back(fresh);
}

const AdaptiveController::NeighborReport* AdaptiveController::FreshReport(
    std::size_t observer, std::uint32_t reporter) const {
  for (const NeighborReport& r : reports_[observer]) {
    if (r.reporter == reporter && r.round == rounds_completed_) return &r;
  }
  return nullptr;
}

void AdaptiveController::SplitCluster(std::size_t i, RoundActions& actions) {
  SPPNET_CHECK(members_[i].size() >= 2);

  // Promote the most capable member. With a capacity-aware view the
  // election ranks by the sampled capacities (workload/election.h);
  // the blind path keeps the historical largest-collection proxy. Both
  // are strictly-greater scans keeping the first maximum, matching the
  // offline controller. NOTE: no reference into members_ may be held
  // across the emplace_back growth below — it reallocates.
  std::size_t best = 0;
  if (cap_aware_election_) {
    best = BestCandidate(members_[i], capacities_);
  } else {
    for (std::size_t c = 1; c < members_[i].size(); ++c) {
      if (files_[members_[i][c]] > files_[members_[i][best]]) best = c;
    }
  }
  const std::uint32_t promoted = members_[i][best];
  members_[i].erase(members_[i].begin() + static_cast<std::ptrdiff_t>(best));
  files_sum_[i] -= files_[promoted];

  const auto fresh_id = static_cast<std::uint32_t>(head_.size());
  const auto self_id = static_cast<std::uint32_t>(i);
  head_.push_back(promoted);
  members_.emplace_back();
  adj_.emplace_back();
  dead_.push_back(0);
  cooldown_.push_back(kSettleRounds);
  over_streak_.push_back(0);
  under_streak_.push_back(0);
  cap_over_streak_.push_back(0);
  files_sum_.push_back(files_[promoted]);
  reports_.emplace_back();
  ++live_clusters_;
  cooldown_[i] = kSettleRounds;
  over_streak_[i] = 0;
  under_streak_[i] = 0;
  cap_over_streak_[i] = 0;
  is_head_[promoted] = 1;
  node_cluster_[promoted] = fresh_id;

  SplitAction action;
  action.cluster = self_id;
  action.new_cluster = fresh_id;
  action.promoted = promoted;

  // Move every second member (index parity over the post-promotion
  // list, like the offline controller's client split).
  std::vector<std::uint32_t> stay;
  stay.reserve(members_[i].size() / 2 + 1);
  for (std::size_t c = 0; c < members_[i].size(); ++c) {
    const std::uint32_t node = members_[i][c];
    if (c % 2 == 0) {
      stay.push_back(node);
    } else {
      members_[fresh_id].push_back(node);
      node_cluster_[node] = fresh_id;
      files_sum_[i] -= files_[node];
      files_sum_[fresh_id] += files_[node];
      action.moved.push_back(node);
    }
  }
  members_[i] = std::move(stay);

  // Move every second neighbor edge to the new cluster and link the
  // halves so the overlay stays connected.
  std::set<std::uint32_t> keep;
  std::size_t idx = 0;
  for (const std::uint32_t nb : adj_[i]) {
    if (idx++ % 2 == 0) {
      keep.insert(nb);
    } else {
      adj_[fresh_id].insert(nb);
      adj_[nb].erase(self_id);
      adj_[nb].insert(fresh_id);
    }
  }
  keep.insert(fresh_id);
  adj_[fresh_id].insert(self_id);
  adj_[i] = std::move(keep);

  actions.splits.push_back(std::move(action));
}

void AdaptiveController::CoalesceClusters(std::size_t into, std::size_t from,
                                          RoundActions& actions) {
  SPPNET_CHECK(into != from);
  CoalesceAction action;
  action.into = static_cast<std::uint32_t>(into);
  action.from = static_cast<std::uint32_t>(from);
  action.resigned_head = head_[from];

  // The resigning head becomes an ordinary member of the survivor.
  const std::uint32_t resigned = head_[from];
  is_head_[resigned] = 0;
  node_cluster_[resigned] = static_cast<std::uint32_t>(into);
  members_[into].push_back(resigned);
  files_sum_[into] += files_[resigned];

  for (const std::uint32_t node : members_[from]) {
    node_cluster_[node] = static_cast<std::uint32_t>(into);
    members_[into].push_back(node);
    files_sum_[into] += files_[node];
    action.moved.push_back(node);
  }
  members_[from].clear();

  const auto into_id = static_cast<std::uint32_t>(into);
  const auto from_id = static_cast<std::uint32_t>(from);
  for (const std::uint32_t nb : adj_[from]) {
    if (nb == into_id) continue;
    adj_[nb].erase(from_id);
    adj_[nb].insert(into_id);
    adj_[into].insert(nb);
  }
  adj_[into].erase(from_id);
  adj_[from].clear();
  head_[from] = kNoHead;
  files_sum_[from] = 0.0;
  reports_[from].clear();
  dead_[from] = 1;
  cooldown_[from] = 0;
  cooldown_[into] = kSettleRounds;
  over_streak_[from] = under_streak_[from] = 0;
  over_streak_[into] = under_streak_[into] = 0;
  cap_over_streak_[from] = cap_over_streak_[into] = 0;
  --live_clusters_;

  actions.coalesces.push_back(std::move(action));
}

bool AdaptiveController::DemoteHead(std::size_t i, RoundActions& actions) {
  if (members_[i].empty()) return false;
  const std::uint32_t old_head = head_[i];
  const std::size_t best = BestCandidate(members_[i], capacities_);
  const std::uint32_t new_head = members_[i][best];
  // Only a strictly more capable member may take over: an overloaded
  // cluster of uniformly weak peers gains nothing from reshuffling,
  // and the strictness keeps the rule from oscillating between peers
  // of equal rank.
  if (!CapacityRankHigher(capacities_[new_head], capacities_[old_head])) {
    return false;
  }
  members_[i].erase(members_[i].begin() + static_cast<std::ptrdiff_t>(best));
  members_[i].push_back(old_head);
  is_head_[old_head] = 0;
  is_head_[new_head] = 1;
  head_[i] = new_head;
  // Same node set, so files_sum_ and node_cluster_ are unchanged; the
  // re-upload storm still makes the next window unrepresentative.
  cooldown_[i] = kSettleRounds;
  over_streak_[i] = under_streak_[i] = cap_over_streak_[i] = 0;

  DemoteAction action;
  action.cluster = static_cast<std::uint32_t>(i);
  action.old_head = old_head;
  action.new_head = new_head;
  actions.demotes.push_back(action);
  return true;
}

double AdaptiveController::MeanReach(int ttl) const {
  // Files-weighted BFS reach over the live overlay: from each live
  // cluster, the total shared files within `ttl` hops (self included).
  // A deterministic stand-in for the evaluator's mean_reach — the two
  // agree on whether dropping one hop loses coverage, which is all
  // rule III asks.
  if (live_clusters_ == 0 || ttl < 0) return 0.0;
  const std::size_t slots = head_.size();
  double total = 0.0;
  std::vector<int> depth(slots);
  std::deque<std::uint32_t> frontier;
  for (std::size_t src = 0; src < slots; ++src) {
    if (dead_[src]) continue;
    std::fill(depth.begin(), depth.end(), -1);
    frontier.clear();
    depth[src] = 0;
    frontier.push_back(static_cast<std::uint32_t>(src));
    double reach = files_sum_[src];
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop_front();
      if (depth[u] >= ttl) continue;
      for (const std::uint32_t v : adj_[u]) {
        if (dead_[v] || depth[v] >= 0) continue;
        depth[v] = depth[u] + 1;
        reach += files_sum_[v];
        frontier.push_back(v);
      }
    }
    total += reach;
  }
  return total / static_cast<double>(live_clusters_);
}

AdaptiveController::RoundActions AdaptiveController::RunRound(
    const std::vector<LoadSample>& own_loads, int current_ttl) {
  SPPNET_CHECK(own_loads.size() == head_.size());
  RoundActions actions;
  actions.new_ttl = current_ttl;
  const std::size_t n_before = head_.size();

  // --- Rule I: classify live clusters on their own window loads ----------
  // The capacity rule classifies in the same pass: a head sustained
  // above its own overload-utilization threshold becomes a demotion
  // candidate (applied after the structural rules below).
  std::vector<std::size_t> overloaded;
  std::vector<std::size_t> underloaded;
  std::vector<std::size_t> cap_overloaded;
  for (std::size_t i = 0; i < n_before; ++i) {
    if (dead_[i]) continue;
    if (!own_loads[i].valid) {
      // Head down this round: no evidence either way.
      over_streak_[i] = under_streak_[i] = cap_over_streak_[i] = 0;
      continue;
    }
    if (cooldown_[i] > 0) {
      // Settling after a structural change: this window still carries
      // the re-upload storm, so the sample is not steady-state.
      --cooldown_[i];
      over_streak_[i] = under_streak_[i] = cap_over_streak_[i] = 0;
      continue;
    }
    const LoadSample& s = own_loads[i];
    const bool over = policy_.Overloaded(s.total_bps, s.proc_hz);
    const bool under = policy_.Underloaded(s.total_bps, s.proc_hz);
    over_streak_[i] =
        over ? static_cast<std::uint8_t>(
                   std::min<int>(over_streak_[i] + 1, kSustainRounds))
             : std::uint8_t{0};
    under_streak_[i] =
        under ? static_cast<std::uint8_t>(
                    std::min<int>(under_streak_[i] + 1, kSustainRounds))
              : std::uint8_t{0};
    if (cap_demote_) {
      const bool cap_over =
          UtilizationOf(capacities_[head_[i]], s.in_bps, s.out_bps,
                        s.proc_hz) > cap_overload_util_;
      cap_over_streak_[i] =
          cap_over ? static_cast<std::uint8_t>(
                         std::min<int>(cap_over_streak_[i] + 1, kSustainRounds))
                   : std::uint8_t{0};
      if (cap_over_streak_[i] >= kSustainRounds) cap_overloaded.push_back(i);
    }
    if (over_streak_[i] >= kSustainRounds && members_[i].size() >= 2) {
      overloaded.push_back(i);
    } else if (under_streak_[i] >= kSustainRounds) {
      underloaded.push_back(i);
    }
  }
  for (const std::size_t i : overloaded) SplitCluster(i, actions);

  // Greedy coalescing of adjacent underloaded pairs: a merge needs a
  // fresh load report from the neighbor (no acting on stale numbers)
  // and must fit the survivor's bandwidth limit.
  std::vector<bool> consumed(head_.size(), false);
  for (const std::size_t i : underloaded) {
    if (consumed[i] || dead_[i]) continue;
    for (const std::uint32_t nb : adj_[i]) {
      if (nb >= n_before || consumed[nb] || dead_[nb]) continue;
      if (cooldown_[nb] > 0) continue;  // Partner is still settling.
      // A merge needs a live counterpart: no sample means the
      // neighbor's head is down this round.
      if (!own_loads[nb].valid) continue;
      const NeighborReport* report = FreshReport(i, nb);
      if (report == nullptr) continue;
      if (!policy_.Underloaded(report->total_bps, report->proc_hz)) continue;
      if (!policy_.CoalesceFits(own_loads[i].total_bps + report->total_bps)) {
        continue;
      }
      CoalesceClusters(i, nb, actions);
      consumed[i] = consumed[nb] = true;
      break;
    }
  }

  // --- Capacity rule: replace sustained-overloaded heads -----------------
  // Runs after the structural rules so a cluster split or merged this
  // round (cooldown just set) settles before any leadership change.
  for (const std::size_t i : cap_overloaded) {
    if (dead_[i] || cooldown_[i] > 0) continue;
    DemoteHead(i, actions);
  }

  // --- Rule II: grow outdegree toward the suggested value ----------------
  if (live_clusters_ > 2) {
    std::vector<std::uint32_t> live;
    live.reserve(live_clusters_);
    for (std::size_t i = 0; i < head_.size(); ++i) {
      if (!dead_[i]) live.push_back(static_cast<std::uint32_t>(i));
    }
    for (const std::uint32_t i : live) {
      if (!policy_.WantsMoreNeighbors(adj_[i].size())) continue;
      for (int attempt = 0; attempt < kPeeringAttempts; ++attempt) {
        const std::uint32_t j = live[rng_.NextBounded(live.size())];
        if (j == i || adj_[i].count(j) != 0) continue;
        if (!policy_.WantsMoreNeighbors(adj_[j].size())) continue;
        adj_[i].insert(j);
        adj_[j].insert(i);
        actions.edges.push_back({i, j});
        break;
      }
    }
  }

  // --- Rule III: shrink TTL while reach is preserved ---------------------
  if (current_ttl > 1) {
    const double with_current = MeanReach(current_ttl);
    const double with_shorter = MeanReach(current_ttl - 1);
    if (with_shorter >= kReachRetention * with_current) {
      actions.new_ttl = current_ttl - 1;
      actions.ttl_decreased = true;
    }
  }

  actions.quiescent = policy_.RoundQuiescent(
                          actions.splits.size(), actions.coalesces.size(),
                          actions.edges.size(), actions.ttl_decreased,
                          live_clusters_) &&
                      actions.demotes.empty();
  ++rounds_completed_;
  return actions;
}

namespace {

// Section tag bracketing the controller payload ("adpt").
constexpr std::uint32_t kAdaptiveTag = 0x74706461u;

void PutRng(CheckpointWriter& w, const Rng& rng) {
  const Rng::State st = rng.SaveState();
  for (const std::uint64_t s : st.s) w.PutU64(s);
  w.PutDouble(st.gauss_spare);
  w.PutBool(st.has_gauss_spare);
}

void GetRng(CheckpointReader& r, Rng& rng) {
  Rng::State st;
  for (std::uint64_t& s : st.s) s = r.GetU64();
  st.gauss_spare = r.GetDouble();
  st.has_gauss_spare = r.GetBool();
  if (r.ok()) rng.RestoreState(st);
}

}  // namespace

void AdaptiveController::SaveTo(CheckpointWriter& w) const {
  w.BeginSection(kAdaptiveTag);
  PutRng(w, rng_);
  w.PutU32Vector(node_cluster_);
  w.PutU8Vector(is_head_);
  w.PutU32Vector(head_);
  w.PutU64(members_.size());
  for (const auto& members : members_) w.PutU32Vector(members);
  w.PutU64(adj_.size());
  for (const auto& neighbors : adj_) {
    // std::set iterates ascending, so these bytes are canonical.
    w.PutU32Vector(
        std::vector<std::uint32_t>(neighbors.begin(), neighbors.end()));
  }
  w.PutU8Vector(dead_);
  w.PutU8Vector(cooldown_);
  w.PutU8Vector(over_streak_);
  w.PutU8Vector(under_streak_);
  w.PutU8Vector(cap_over_streak_);
  w.PutDoubleVector(files_sum_);
  w.PutU64(reports_.size());
  for (const auto& slot : reports_) {
    w.PutU64(slot.size());
    for (const NeighborReport& report : slot) {
      w.PutU32(report.reporter);
      w.PutDouble(report.total_bps);
      w.PutDouble(report.proc_hz);
      w.PutU64(report.round);
    }
  }
  w.PutU64(live_clusters_);
  w.PutU64(rounds_completed_);
}

bool AdaptiveController::LoadFrom(CheckpointReader& r) {
  if (!r.BeginSection(kAdaptiveTag)) return false;
  GetRng(r, rng_);
  node_cluster_ = r.GetU32Vector();
  is_head_ = r.GetU8Vector();
  head_ = r.GetU32Vector();
  const std::uint64_t num_member_slots = r.GetU64();
  members_.clear();
  for (std::uint64_t i = 0; i < num_member_slots && r.ok(); ++i) {
    members_.push_back(r.GetU32Vector());
  }
  const std::uint64_t num_adj_slots = r.GetU64();
  adj_.clear();
  for (std::uint64_t i = 0; i < num_adj_slots && r.ok(); ++i) {
    const std::vector<std::uint32_t> neighbors = r.GetU32Vector();
    adj_.emplace_back(neighbors.begin(), neighbors.end());
  }
  dead_ = r.GetU8Vector();
  cooldown_ = r.GetU8Vector();
  over_streak_ = r.GetU8Vector();
  under_streak_ = r.GetU8Vector();
  cap_over_streak_ = r.GetU8Vector();
  files_sum_ = r.GetDoubleVector();
  const std::uint64_t num_report_slots = r.GetU64();
  reports_.clear();
  for (std::uint64_t i = 0; i < num_report_slots && r.ok(); ++i) {
    const std::uint64_t count = r.GetU64();
    std::vector<NeighborReport> slot;
    for (std::uint64_t j = 0; j < count && r.ok(); ++j) {
      NeighborReport report;
      report.reporter = r.GetU32();
      report.total_bps = r.GetDouble();
      report.proc_hz = r.GetDouble();
      report.round = r.GetU64();
      slot.push_back(report);
    }
    reports_.push_back(std::move(slot));
  }
  live_clusters_ = static_cast<std::size_t>(r.GetU64());
  rounds_completed_ = r.GetU64();
  return r.ok() && node_cluster_.size() == files_.size() &&
         is_head_.size() == files_.size() && head_.size() == dead_.size() &&
         members_.size() == head_.size() && adj_.size() == head_.size() &&
         cooldown_.size() == head_.size() &&
         over_streak_.size() == head_.size() &&
         under_streak_.size() == head_.size() &&
         cap_over_streak_.size() == head_.size() &&
         files_sum_.size() == head_.size() &&
         reports_.size() == head_.size();
}

}  // namespace sppnet
