#include "sppnet/sim/plan.h"

#include <cmath>

#include "sppnet/common/check.h"
#include "sppnet/index/routing_index.h"
#include "sppnet/model/consistency.h"
#include "sppnet/sim/adaptive_sim.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/sharded_sim.h"

namespace sppnet {

// Every plan struct in the system models the contract; a plan that
// drifts from it fails this translation unit, not a review.
static_assert(LayerPlan<ChurnPlan>);
static_assert(LayerPlan<CapacityPlan>);
static_assert(LayerPlan<FaultPlan>);
static_assert(LayerPlan<AdaptivePlan>);
static_assert(LayerPlan<RoutingOptions>);
static_assert(LayerPlan<ConsistencyPlan>);
static_assert(LayerPlan<ReplicationPlan>);
static_assert(LayerPlan<ShardPlan>);

// Stream salts must be pairwise distinct (the whole point of declaring
// them on the plans). The sharded salts use the (tag << 32) space and
// the routing content tag is XOR-folded; listed for the audit anyway.
static_assert(CapacityPlan::kStreamSalt != FaultPlan::kStreamSalt);
static_assert(CapacityPlan::kStreamSalt != AdaptivePlan::kStreamSalt);
static_assert(CapacityPlan::kStreamSalt != ConsistencyPlan::kStreamSalt);
static_assert(CapacityPlan::kStreamSalt != RoutingOptions::kStreamSalt);
static_assert(FaultPlan::kStreamSalt != AdaptivePlan::kStreamSalt);
static_assert(FaultPlan::kStreamSalt != ConsistencyPlan::kStreamSalt);
static_assert(AdaptivePlan::kStreamSalt != ConsistencyPlan::kStreamSalt);

void ChurnPlan::Validate() const {
  SPPNET_CHECK_MSG(
      std::isfinite(partner_recovery_seconds) && partner_recovery_seconds > 0.0,
      "partner recovery time must be > 0");
}

void CapacityPlan::Validate() const {
  SPPNET_CHECK_MSG(std::isfinite(window_seconds) && window_seconds > 0.0,
                   "capacity window must be > 0");
  SPPNET_CHECK_MSG(
      std::isfinite(overload_utilization) && overload_utilization > 0.0,
      "overload utilization threshold must be > 0");
  // The distribution's own invariant (fractions sum to 1) is enforced
  // by its constructor; nothing to re-check here.
}

const char* SimFeatureName(SimFeature f) {
  switch (f) {
    case SimFeature::kShards:
      return "sharded parallelism";
    case SimFeature::kChurn:
      return "churn";
    case SimFeature::kFaults:
      return "fault injection";
    case SimFeature::kAdaptive:
      return "in-sim adaptation";
    case SimFeature::kRouting:
      return "content-aware routing";
    case SimFeature::kConsistency:
      return "index consistency";
    case SimFeature::kCapacity:
      return "heterogeneous capacities";
    case SimFeature::kConcreteIndex:
      return "concrete indexes";
    case SimFeature::kResultCache:
      return "result cache";
    case SimFeature::kNumFeatures:
      break;
  }
  return "?";
}

namespace {

using F = SimFeature;

/// Reasons keep the wording of the historical SimOptions::Validate
/// checks (tests assert on these substrings).
constexpr FeatureConflict kConflicts[] = {
    // The sharded discipline: concrete indexes and the result cache
    // hold cross-cluster state the shards cannot own.
    {F::kShards, F::kConcreteIndex, "sharded runs require abstract indexes"},
    {F::kShards, F::kResultCache,
     "sharded runs require the result cache disabled"},
    // Adaptation reroutes membership, matching and topology through
    // its controller; these hold per-cluster state it cannot migrate.
    {F::kAdaptive, F::kConcreteIndex,
     "in-sim adaptation requires abstract indexes"},
    {F::kAdaptive, F::kResultCache,
     "in-sim adaptation requires the result cache disabled"},
    // The digest table describes the static instance overlay and
    // realizes the probabilistic content model; features that mutate
    // either, or replay results outside MatchQuery, are incompatible,
    // and the layer's tallies are single-threaded.
    {F::kRouting, F::kShards,
     "content-aware routing requires the legacy engine "
     "(no in-trial sharding)"},
    {F::kRouting, F::kAdaptive,
     "content-aware routing is incompatible with in-sim adaptation"},
    {F::kRouting, F::kConcreteIndex,
     "content-aware routing requires abstract indexes"},
    {F::kRouting, F::kResultCache,
     "content-aware routing requires the result cache disabled"},
    // The consistency layer tracks per-cluster staleness against the
    // abstract probabilistic index and pins clients to their home
    // cluster for the whole run.
    {F::kConsistency, F::kShards,
     "the consistency layer requires the legacy engine "
     "(no in-trial sharding)"},
    {F::kConsistency, F::kConcreteIndex,
     "the consistency layer requires abstract indexes"},
    {F::kConsistency, F::kResultCache,
     "the consistency layer requires the result cache disabled"},
    {F::kConsistency, F::kAdaptive,
     "the consistency layer is incompatible with in-sim adaptation"},
    {F::kConsistency, F::kRouting,
     "the consistency layer is incompatible with content-aware routing"},
    {F::kConsistency, F::kChurn,
     "the consistency layer requires static membership (no churn)"},
    {F::kConsistency, F::kFaults,
     "the consistency layer requires an inactive fault plan"},
    // The capacity layer's windowed utilization tallies are
    // single-threaded, and the concrete-index mode prices message
    // loads outside CostTable (utilization would be meaningless).
    {F::kCapacity, F::kShards,
     "the capacity layer requires the legacy engine "
     "(no in-trial sharding)"},
    {F::kCapacity, F::kConcreteIndex,
     "the capacity layer requires abstract indexes"},
};

}  // namespace

std::span<const FeatureConflict> FeatureConflicts() { return kConflicts; }

void CheckFeatureCompatibility(std::uint32_t active_mask) {
  for (const FeatureConflict& c : kConflicts) {
    const std::uint32_t pair = FeatureBit(c.a) | FeatureBit(c.b);
    SPPNET_CHECK_MSG((active_mask & pair) != pair, c.reason);
  }
}

}  // namespace sppnet
