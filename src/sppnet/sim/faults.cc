#include "sppnet/sim/faults.h"

#include <algorithm>
#include <cmath>

#include "sppnet/common/check.h"

namespace sppnet {

void FaultPlan::Validate() const {
  SPPNET_CHECK_MSG(crash_rate_per_partner >= 0.0 &&
                       std::isfinite(crash_rate_per_partner),
                   "crash rate must be finite and >= 0");
  SPPNET_CHECK_MSG(crash_recovery_seconds > 0.0,
                   "crash recovery time must be > 0");
  SPPNET_CHECK_MSG(message_drop_probability >= 0.0 &&
                       message_drop_probability <= 1.0,
                   "drop probability must be in [0, 1]");
  SPPNET_CHECK_MSG(max_delay_jitter_seconds >= 0.0 &&
                       std::isfinite(max_delay_jitter_seconds),
                   "delay jitter must be finite and >= 0");
  SPPNET_CHECK_MSG(request_timeout_seconds >= 0.0 &&
                       std::isfinite(request_timeout_seconds),
                   "request timeout must be finite and >= 0");
  if (TimeoutsEnabled()) {
    SPPNET_CHECK_MSG(max_retries >= 1,
                     "retry budget must be >= 1 when timeouts are enabled");
    SPPNET_CHECK_MSG(backoff_base_seconds > 0.0, "backoff base must be > 0");
    SPPNET_CHECK_MSG(backoff_factor >= 1.0, "backoff factor must be >= 1");
    SPPNET_CHECK_MSG(backoff_cap_seconds >= backoff_base_seconds,
                     "backoff cap must be >= the base");
  }
  SPPNET_CHECK_MSG(max_retries >= 0, "retry budget must be >= 0");
}

// The salt (FaultPlan::kStreamSalt, an arbitrary odd constant)
// separates the fault-decision stream from the protocol stream seeded
// with the same 64-bit simulation seed; SplitMix64 seeding mixes it
// thoroughly.
FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t sim_seed)
    : plan_(plan), rng_(sim_seed ^ FaultPlan::kStreamSalt) {
  plan_.Validate();
}

bool FaultInjector::ShouldDropDelivery() {
  if (plan_.message_drop_probability <= 0.0) return false;
  return rng_.NextBernoulli(plan_.message_drop_probability);
}

bool FaultInjector::ShouldDropDelivery(Rng& stream) const {
  if (plan_.message_drop_probability <= 0.0) return false;
  return stream.NextBernoulli(plan_.message_drop_probability);
}

double FaultInjector::DeliveryJitter() {
  if (plan_.max_delay_jitter_seconds <= 0.0) return 0.0;
  return rng_.NextDouble() * plan_.max_delay_jitter_seconds;
}

double FaultInjector::DeliveryJitter(Rng& stream) const {
  if (plan_.max_delay_jitter_seconds <= 0.0) return 0.0;
  return stream.NextDouble() * plan_.max_delay_jitter_seconds;
}

double FaultInjector::NextCrashDelay() {
  SPPNET_CHECK(plan_.crash_rate_per_partner > 0.0);
  // Inverse-CDF exponential; NextDouble() < 1 so the log is finite.
  return -std::log(1.0 - rng_.NextDouble()) / plan_.crash_rate_per_partner;
}

double FaultInjector::RetryBackoff(int retry) const {
  SPPNET_CHECK(retry >= 1);
  double delay = plan_.backoff_base_seconds;
  for (int i = 1; i < retry; ++i) {
    delay *= plan_.backoff_factor;
    if (delay >= plan_.backoff_cap_seconds) break;
  }
  return std::min(delay, plan_.backoff_cap_seconds);
}

}  // namespace sppnet
