#ifndef SPPNET_SIM_STREAM_H_
#define SPPNET_SIM_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sppnet/io/checkpoint.h"
#include "sppnet/model/config.h"
#include "sppnet/model/instance.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {

class MetricsRegistry;

/// Envelope identity of a stream checkpoint ("SPCK"); rejected by
/// CheckpointReader::Open on any mismatch.
inline constexpr std::uint32_t kStreamCheckpointMagic = 0x4b435053u;
inline constexpr std::uint16_t kStreamCheckpointVersion = 1;

/// Options of the streaming serving layer on top of the simulator.
struct StreamOptions {
  /// Simulated seconds per metric window (one snapshot per window).
  double window_seconds = 30.0;
  /// How far behind the clock retired per-query state may reach. 0
  /// derives a conservative bound from the simulation options (hop
  /// latency + jitter across the deepest flood/walk/ring schedule plus
  /// the full retry tail, doubled — DESIGN.md §11).
  double state_retention_seconds = 0.0;
  /// Retire per-query state at window boundaries so resident memory
  /// stays flat on an unbounded run. Forced off in concrete-index mode
  /// (interned query text is not retirable).
  bool retire_state = true;

  /// Aborts (SPPNET_CHECK) on invalid configurations: a non-positive
  /// or non-finite window, a negative or non-finite retention.
  void Validate() const;
};

/// One windowed metric snapshot: the delta of every published counter
/// over [window_start, window_end), plus the cumulative gauges at the
/// window boundary. Counter deltas are name-ordered; engine-internal
/// instruments (sim.queue.*, sim.state.*) are included in the export
/// but excluded from the equivalence digest, mirroring the
/// ProtocolMetricsJson contract.
struct StreamSnapshot {
  std::uint64_t window_index = 0;
  double window_start = 0.0;
  double window_end = 0.0;
  /// Events dispatched within the window (whole-run instrument: counts
  /// warmup activity too, unlike the sim.* counters).
  std::uint64_t events_dispatched_delta = 0;
  /// Name-ordered per-window counter increments.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  /// Name-ordered cumulative gauge values at window_end. Footprint
  /// gauges (scratch bytes, bucket counts) are engine- and
  /// toolchain-dependent; never digested.
  std::vector<std::pair<std::string, double>> gauges;
};

/// One externally fed query submission (trace replay).
struct TraceQuery {
  double time = 0.0;
  std::uint32_t user = 0;
};

/// Parses a textual query trace: one "time user" pair per line,
/// whitespace-separated; blank lines and lines starting with '#' are
/// skipped. Aborts (SPPNET_CHECK) on malformed lines, non-finite or
/// descending times — a trace is an experiment input, and inputs are
/// validated loudly.
std::vector<TraceQuery> ParseQueryTrace(std::string_view text);

/// Streaming serving layer over one simulator run: ingests an unbounded
/// generated (and/or trace-fed) event stream window by window, emits a
/// StreamSnapshot per window, retires per-query state behind a safe
/// horizon, and checkpoints/restores the full simulator state in the
/// proto/ length-framed discipline.
///
/// Determinism contract: the snapshot sequence, the running snapshot
/// digest and the final report are bit-identical to the batch Run()
/// path for every protocol-relevant observable — restoring a checkpoint
/// taken after window k and streaming on yields byte-identical
/// snapshots k+1, k+2, ... across engines, state backends and
/// parallelism (tests/sim/checkpoint_test.cc pins this).
class StreamDriver {
 public:
  /// Builds and Start()s the underlying simulator. The instance,
  /// config and inputs are copied: Restore() rebuilds the simulator
  /// from them. `sim_options.metrics`, when set, receives the final
  /// cumulative publish at Finish(), exactly like batch Run().
  StreamDriver(const NetworkInstance& instance, const Configuration& config,
               const ModelInputs& inputs, const SimOptions& sim_options,
               const StreamOptions& stream_options);
  ~StreamDriver();

  StreamDriver(const StreamDriver&) = delete;
  StreamDriver& operator=(const StreamDriver&) = delete;

  /// Schedules trace queries for future injection. Times must be >= the
  /// current window boundary (aborts otherwise); queries run the normal
  /// submission path when their time arrives.
  void FeedTrace(std::span<const TraceQuery> queries);

  /// Dispatches all events of the next window and returns its snapshot.
  /// Folds the snapshot into the running digest and retires state
  /// behind the safe horizon (when enabled).
  StreamSnapshot AdvanceWindow();

  /// Finalizes the run at the last emitted window boundary and returns
  /// the report. When that boundary equals warmup + duration the report
  /// is bit-identical to batch Run(). At most once; no windows may be
  /// advanced afterwards. Requires >= 1 emitted window.
  SimReport Finish();

  /// Serializes the driver + full simulator state into a checksummed
  /// "SPCK" envelope. Callable between windows of a started, unfinished
  /// run; requires abstract-index mode.
  std::vector<std::uint8_t> Checkpoint() const;

  /// Restores from a Checkpoint() buffer into this driver, replacing
  /// the current simulator with one resumed at the checkpointed window.
  /// The checkpoint must come from a scenario with the same protocol
  /// fingerprint (instance shape, seed, plans, window grid); the engine
  /// and state backend of the saving driver may differ from this one.
  /// Returns false (driver unchanged) on any mismatch or corruption.
  bool Restore(std::span<const std::uint8_t> bytes);

  std::uint64_t windows_emitted() const { return windows_emitted_; }
  /// FNV-1a digest over every emitted snapshot's protocol-relevant
  /// content (window index/boundary, events delta, filtered counter
  /// deltas). The resume-equivalence tests compare this across
  /// checkpoint cuts, engines and backends.
  std::uint64_t snapshot_digest() const { return snapshot_digest_; }
  /// Simulation clock of the underlying simulator (last dispatch time).
  double Now() const;
  std::uint64_t events_dispatched() const;
  /// The retention bound actually in force (resolved from the options).
  double effective_retention_seconds() const { return retention_seconds_; }

 private:
  std::uint64_t Fingerprint() const;
  void RebuildSimulator();

  NetworkInstance instance_;
  Configuration config_;
  ModelInputs inputs_;
  SimOptions sim_options_;
  StreamOptions stream_options_;
  double retention_seconds_ = 0.0;
  bool retire_enabled_ = false;

  std::unique_ptr<Simulator> sim_;
  std::uint64_t windows_emitted_ = 0;
  std::uint64_t last_events_dispatched_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> prev_counters_;
  std::uint64_t snapshot_digest_ = kFnv1aOffset;
  bool finished_ = false;
};

/// Options for repeated streamed runs over fresh instances of one
/// configuration — the streaming mirror of SimTrialOptions. Each trial
/// advances exactly `num_windows` windows and finalizes at the last
/// boundary.
struct StreamTrialOptions {
  std::size_t num_trials = 4;
  std::uint64_t seed = 42;
  /// Worker threads; the folded report (per-window totals, per-trial
  /// digests, merged metrics) is bit-identical to the serial run
  /// regardless of the value (common/trial_runner.h contract).
  std::size_t parallelism = 1;
  std::size_t num_windows = 4;
  /// Per-trial simulation options; `sim.seed` and `sim.metrics` are
  /// overwritten per trial like SimTrialOptions.
  SimOptions sim;
  StreamOptions stream;
  /// Optional sink for the folded per-trial cumulative instruments.
  /// Not owned.
  MetricsRegistry* metrics = nullptr;
};

/// Cross-trial summary of a windowed streaming experiment.
struct StreamTrialReport {
  std::size_t trials = 0;
  std::size_t windows = 0;
  /// Events dispatched per window, summed across trials (folded
  /// window-major via FoldWindows).
  std::vector<std::uint64_t> window_events;
  /// sim.queries.submitted per window, summed across trials.
  std::vector<std::uint64_t> window_queries;
  /// Per-trial snapshot digests, in trial order.
  std::vector<std::uint64_t> snapshot_digests;
  std::uint64_t queries_submitted = 0;
  std::uint64_t responses_delivered = 0;
};

/// Runs `options.num_trials` generate-and-stream rounds and folds the
/// windowed snapshots window-major (trial-minor). Deterministic in
/// (config, inputs, options): bit-identical across parallelism.
StreamTrialReport RunStreamTrials(const Configuration& config,
                                  const ModelInputs& inputs,
                                  const StreamTrialOptions& options);

}  // namespace sppnet

#endif  // SPPNET_SIM_STREAM_H_
