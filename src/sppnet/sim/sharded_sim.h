#ifndef SPPNET_SIM_SHARDED_SIM_H_
#define SPPNET_SIM_SHARDED_SIM_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sppnet {

/// In-trial sharding plan for the discrete-event simulator (DESIGN.md
/// §12). A sharded run partitions the network by cluster across
/// `num_shards` conservatively synchronized event loops and executes
/// them on `num_threads` worker threads, advancing in lockstep
/// time-windows of one lookahead (the hop latency — the minimum
/// cross-shard message delay). Results are bit-identical across every
/// (num_shards, num_threads) choice, including (1, 1): the discipline
/// derives every event key and every random draw from message content
/// and per-domain streams, never from global execution order.
///
/// The default (num_shards == 0) selects the legacy single-loop
/// engine, whose semantics and goldens are untouched; a sharded run is
/// a deliberately distinct discipline with its own pinned goldens
/// (tests/sim/sharded_equivalence_test.cc).
struct ShardPlan {
  /// 0 = legacy single-loop engine. >= 1 enables the sharded
  /// discipline with this many shards (1 is the sequential reference
  /// every other configuration is held bit-identical to).
  std::size_t num_shards = 0;
  /// Worker threads draining shards (shard s runs on thread s %
  /// num_threads). Clamped to num_shards; 1 runs inline.
  std::size_t num_threads = 1;

  /// Per-domain stream salts (Rng::Salted(seed, salt | domain)) and
  /// the control-stream salt, in the (tag << 32) space no other layer
  /// uses (audited in sim/plan.cc).
  static constexpr std::uint64_t kProtoStreamSalt = std::uint64_t{1} << 32;
  static constexpr std::uint64_t kFaultStreamSalt = std::uint64_t{2} << 32;
  static constexpr std::uint64_t kCtlStreamSalt = std::uint64_t{3} << 32;

  bool enabled() const { return num_shards > 0; }

  /// Aborts (SPPNET_CHECK) when enabled with num_threads == 0.
  /// Feature-compatibility constraints (abstract indexes, no result
  /// cache) live in the sim/plan.h conflict matrix; the positive-
  /// lookahead requirement stays in SimOptions::Validate, which sees
  /// the whole option set.
  void Validate() const;
};

/// Content-derived event keys for the sharded discipline. The (time,
/// key) pair totally orders every event of a run; the key packs
///
///   bit 63        class: 0 = control (barrier-executed), 1 = data
///   bits 62..38   emitting domain (cluster), or kShardCtlDomain
///   bits 37..0    per-domain emission counter
///
/// so control events sort before data events at equal times (they
/// execute at window barriers, data at exactly a grid time executes in
/// the following window) and two events never tie: the (class, domain,
/// counter) triple is unique and each domain's counter advances in a
/// fixed order regardless of shard or thread count.
inline constexpr std::uint32_t kShardCtlDomain = (1u << 25) - 1;

inline constexpr std::uint64_t MakeShardEventKey(bool data,
                                                 std::uint32_t domain,
                                                 std::uint64_t counter) {
  return (static_cast<std::uint64_t>(data) << 63) |
         (static_cast<std::uint64_t>(domain) << 38) |
         (counter & ((std::uint64_t{1} << 38) - 1));
}

/// Smallest multiple of `width` that is >= `time`, computed by
/// multiplication (never by accumulating additions) so every engine
/// configuration lands on bit-identical grid points. `width` > 0.
inline double GridCeil(double time, double width) {
  auto m = static_cast<std::uint64_t>(time / width);
  while (static_cast<double>(m) * width < time) ++m;
  return static_cast<double>(m) * width;
}

/// Persistent worker pool executing one callback per shard with a full
/// barrier per invocation — the parallel section of the sharded main
/// loop. Thread w owns shards w, w + T, w + 2T, ...: the assignment is
/// static, so any per-shard state a callback touches is only ever
/// touched from one thread. With num_threads == 1 (or num_shards == 1)
/// no threads are spawned and RunOnShards executes inline, making the
/// sequential reference configuration exactly "the same code, no
/// pool". Determinism never depends on the pool: callbacks share no
/// mutable state across shards by construction (checked by TSan in
/// CI), so the pool only provides wall-clock overlap.
class ShardPool {
 public:
  ShardPool(std::size_t num_shards, std::size_t num_threads);
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;
  ~ShardPool();

  /// Invokes fn(shard) for every shard and returns when all are done.
  void RunOnShards(const std::function<void(std::size_t)>& fn);

  std::size_t num_shards() const { return num_shards_; }
  std::size_t num_threads() const { return num_threads_; }

 private:
  void WorkerLoop(std::size_t worker);

  const std::size_t num_shards_;
  const std::size_t num_threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // Guarded by mu_.
  std::uint64_t generation_ = 0;                          // Guarded by mu_.
  std::size_t pending_workers_ = 0;                       // Guarded by mu_.
  bool shutdown_ = false;                                 // Guarded by mu_.
  std::vector<std::thread> workers_;
};

}  // namespace sppnet

#endif  // SPPNET_SIM_SHARDED_SIM_H_
