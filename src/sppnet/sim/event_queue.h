#ifndef SPPNET_SIM_EVENT_QUEUE_H_
#define SPPNET_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

namespace sppnet {

/// One scheduled simulator event. Payload interpretation depends on
/// `kind`; the simulator defines the kinds. Events at equal timestamps
/// are delivered in schedule order (FIFO via the sequence number), which
/// keeps runs bit-for-bit deterministic.
struct SimEvent {
  double time = 0.0;
  std::uint64_t seq = 0;   ///< Assigned by the queue; breaks time ties.
  std::uint32_t kind = 0;
  std::uint32_t node = 0;  ///< Destination / acting node.
  std::uint64_t a = 0;     ///< Kind-specific payload.
  std::uint64_t b = 0;
  double x = 0.0;
};

/// Min-heap of SimEvents ordered by (time, seq).
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `event` at event.time; assigns the tie-breaking sequence
  /// number. Times must be finite and >= 0.
  void Schedule(SimEvent event);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Undefined when empty.
  double NextTime() const { return heap_.top().time; }

  /// Removes and returns the earliest event.
  SimEvent Pop();

 private:
  struct Later {
    bool operator()(const SimEvent& lhs, const SimEvent& rhs) const {
      if (lhs.time != rhs.time) return lhs.time > rhs.time;
      return lhs.seq > rhs.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sppnet

#endif  // SPPNET_SIM_EVENT_QUEUE_H_
