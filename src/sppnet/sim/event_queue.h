#ifndef SPPNET_SIM_EVENT_QUEUE_H_
#define SPPNET_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

namespace sppnet {

/// One scheduled simulator event. Payload interpretation depends on
/// `kind`; the simulator defines the kinds. Events at equal timestamps
/// are delivered in schedule order (FIFO via the sequence number), which
/// keeps runs bit-for-bit deterministic.
struct SimEvent {
  double time = 0.0;
  std::uint64_t seq = 0;   ///< Assigned by the queue; breaks time ties.
  std::uint32_t kind = 0;
  std::uint32_t node = 0;  ///< Destination / acting node.
  std::uint64_t a = 0;     ///< Kind-specific payload.
  std::uint64_t b = 0;
  double x = 0.0;
};

/// Pending-event structure driving the simulator main loop. The
/// calendar queue is the O(1)-amortized production engine; the binary
/// heap is the reference implementation both engines are held
/// bit-identical against (tests/sim/engine_equivalence_test.cc) —
/// the same pattern as EvalEngine in model/evaluator.h.
enum class SimEngine {
  /// Deterministic bucketed calendar queue (R. Brown, CACM 1988).
  kCalendar,
  /// std::priority_queue min-heap; O(log n) per operation.
  kHeapReference,
};

/// Min-heap of SimEvents ordered by (time, seq).
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `event` at event.time; assigns the tie-breaking sequence
  /// number. Times must be finite and >= 0 (checked).
  void Schedule(SimEvent event);

  /// Schedules an event whose tie-breaking key the CALLER already
  /// assigned (event.seq is taken verbatim; the internal counter is
  /// untouched). The sharded discipline derives keys from message
  /// content — (class, domain, counter) — so an event's position in the
  /// (time, seq) order is independent of which queue it lands in;
  /// mixing caller-keyed and queue-keyed events in one queue is the
  /// caller's responsibility to keep collision-free.
  void SchedulePreKeyed(const SimEvent& event);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Aborts when empty.
  double NextTime() const;

  /// Removes and returns the earliest event. Aborts when empty.
  SimEvent Pop();

  /// Every pending event in (time, seq) order; the queue is unchanged.
  std::vector<SimEvent> SnapshotEvents() const;
  /// Re-inserts checkpointed events preserving their original sequence
  /// numbers and resumes the sequence counter at `next_seq`. The queue
  /// must be empty (checked).
  void RestorePending(const std::vector<SimEvent>& events,
                      std::uint64_t next_seq);
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  struct Later {
    bool operator()(const SimEvent& lhs, const SimEvent& rhs) const {
      if (lhs.time != rhs.time) return lhs.time > rhs.time;
      return lhs.seq > rhs.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Deterministic calendar queue (R. Brown, "Calendar Queues", CACM
/// 1988): a power-of-two array of unsorted buckets, each holding the
/// events whose time falls in one `width`-second slice ("day") of the
/// calendar; a day maps to bucket `day & (nbuckets-1)`, so the array
/// wraps around once per `nbuckets * width` seconds ("year").
///
/// Delivery order is (time, seq). When the front day of the calendar
/// is reached, its events are extracted from the bucket in one pass
/// and sorted by (time, seq) into a staged "today" run served in
/// order — one O(k log k) sort per k-event day instead of a bucket
/// rescan per pop. The simulator's flood waves make this essential:
/// one wave schedules hundreds of deliveries with identical
/// timestamps (one day), and per-pop rescans would be O(k^2) per
/// wave. Selection is by (time, seq) everywhere — never by storage
/// position — so the swap-erase removal, the staging extraction and
/// the resize-time redistribution below can never affect order, and
/// the pop sequence is bit-identical to the binary heap's by
/// construction. The bucket count adapts to the live event count and
/// the bucket width to the observed mean inter-dequeue gap; both
/// inputs are functions of the popped event sequence alone, so the
/// resize schedule (and everything downstream) is deterministic too.
///
/// Complexity: O(1) amortized per operation while the event population
/// is reasonably stationary (the simulator's is: per-user Poisson
/// clocks dominate), degrading gracefully to a global scan when the
/// calendar empties out far from the next event.
class CalendarQueue {
 public:
  CalendarQueue();

  /// Schedules `event` at event.time; assigns the tie-breaking sequence
  /// number. Times must be finite and >= 0 (checked).
  void Schedule(SimEvent event);

  /// Caller-keyed counterpart of Schedule (see EventQueue): event.seq
  /// is taken verbatim, the internal counter is untouched.
  void SchedulePreKeyed(const SimEvent& event) { Insert(event); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Aborts when empty.
  double NextTime() const;

  /// Removes and returns the earliest event. Aborts when empty.
  SimEvent Pop();

  /// Every pending event in (time, seq) order; the queue is unchanged
  /// (a scratch copy of the calendar is drained, so the scan counters
  /// of this queue are untouched too).
  std::vector<SimEvent> SnapshotEvents() const;
  /// Re-inserts checkpointed events preserving their original sequence
  /// numbers and resumes the sequence counter at `next_seq`. The queue
  /// must be empty (checked). Width calibration and scan counters start
  /// fresh: they are engine-internal and excluded from the determinism
  /// surface (see sim.queue.* docs), while delivery order — (time, seq)
  /// selection — is exactly preserved.
  void RestorePending(const std::vector<SimEvent>& events,
                      std::uint64_t next_seq);
  std::uint64_t next_seq() const { return next_seq_; }

  /// Engine introspection for the obs layer (sim.queue.*). Counts are
  /// deterministic: the resize schedule depends only on the event
  /// sequence.
  std::uint64_t resizes() const { return resizes_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  double bucket_width_seconds() const { return width_; }
  /// Scan-effort counters (deterministic): empty-day probes, slot
  /// visits during day scans, and whole-calendar fallback scans.
  std::uint64_t day_steps() const { return day_steps_; }
  std::uint64_t slot_visits() const { return slot_visits_; }
  std::uint64_t global_scans() const { return global_scans_; }
  /// Approximate resident bytes of the bucket array (capacity-based).
  std::size_t ApproxMemoryBytes() const;

 private:
  std::uint64_t DayOf(double time) const {
    // Multiplication by the cached reciprocal, not division — this
    // runs once per Schedule and once per scanned slot. Any monotone
    // time -> day mapping is correct (the day bands stay ordered), so
    // the reciprocal's rounding is harmless; all slots of a given
    // width derive their day through this same function. Far-future
    // times collapse into one final "day" instead of overflowing the
    // cast; order among them is still resolved by (time, seq) when
    // that day is scanned.
    const double day = time * inv_width_;
    return day >= 9.0e18 ? static_cast<std::uint64_t>(9.0e18)
                         : static_cast<std::uint64_t>(day);
  }
  std::size_t BucketSideSize() const {
    return size_ - (today_.size() - today_pos_);
  }
  /// Locates the earliest (time, seq) bucket-side slot and caches its
  /// position; advances cur_day_ to that event's day. Requires
  /// BucketSideSize() > 0. Never touches the staged day.
  void FindMin() const;
  /// True when the staged run's front beats the bucket-side minimum
  /// (resolving min_valid_ via FindMin as needed). Requires size_ > 0.
  bool TodayWins() const;
  /// Extracts every slot of `day` from its bucket, sorts them by
  /// (time, seq) and makes them the staged run.
  void StageDay(std::uint64_t day);
  /// Doubles / halves the bucket array and re-derives the bucket width
  /// from the mean inter-dequeue gap observed since the last resize.
  /// Flushes the staged run back into the buckets (day values change
  /// with the width).
  void Resize(std::size_t new_buckets);
  /// Schedule minus the sequence-number assignment: places an event
  /// whose seq is already set (restore path shares it with Schedule).
  void Insert(const SimEvent& event);

  /// A bucket holds bare events; a slot's day is re-derived on scan via
  /// DayOf (every resident slot was inserted under the current width,
  /// since Resize re-buckets everything).
  mutable std::vector<std::vector<SimEvent>> buckets_;
  double width_;
  double inv_width_;  ///< Always 1.0 / width_.
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  /// The day the next bucket-side scan starts from (only days >=
  /// cur_day_ can hold the bucket-side minimum: pops advance it, and a
  /// Schedule into an earlier day rewinds it).
  mutable std::uint64_t cur_day_ = 0;

  // Staged front day: its events live here (removed from the buckets),
  // sorted ascending by (time, seq), served from today_pos_.
  std::vector<SimEvent> today_;
  std::size_t today_pos_ = 0;
  std::uint64_t today_day_ = 0;
  bool today_active_ = false;

  // Cached bucket-side minimum (valid between FindMin and the next
  // bucket-side mutation): location, plus a (time, seq) copy so the
  // Schedule / TodayWins hot paths compare against it without loading
  // the bucket (a near-guaranteed cache miss).
  mutable bool min_valid_ = false;
  mutable std::size_t min_bucket_ = 0;
  mutable std::size_t min_slot_ = 0;
  mutable double min_time_ = 0.0;
  mutable std::uint64_t min_seq_ = 0;

  // Width adaptation: mean gap between consecutively popped event times
  // since the last resize.
  double last_pop_time_ = 0.0;
  bool have_last_pop_ = false;
  double gap_sum_ = 0.0;
  std::uint64_t gap_count_ = 0;
  std::uint64_t pops_since_resize_ = 0;

  std::uint64_t resizes_ = 0;
  mutable std::uint64_t day_steps_ = 0;
  mutable std::uint64_t slot_visits_ = 0;
  mutable std::uint64_t global_scans_ = 0;
};

/// The queue the simulator actually talks to: dispatches every call to
/// the engine selected at construction. Both engines deliver the same
/// (time, seq) order, so a run's event stream is engine-independent.
class SimEventQueue {
 public:
  explicit SimEventQueue(SimEngine engine) : engine_(engine) {}

  void Schedule(const SimEvent& event) {
    if (engine_ == SimEngine::kCalendar) {
      calendar_.Schedule(event);
    } else {
      heap_.Schedule(event);
    }
  }
  /// Caller-keyed scheduling (sharded discipline); see EventQueue.
  void SchedulePreKeyed(const SimEvent& event) {
    if (engine_ == SimEngine::kCalendar) {
      calendar_.SchedulePreKeyed(event);
    } else {
      heap_.SchedulePreKeyed(event);
    }
  }
  bool empty() const {
    return engine_ == SimEngine::kCalendar ? calendar_.empty() : heap_.empty();
  }
  std::size_t size() const {
    return engine_ == SimEngine::kCalendar ? calendar_.size() : heap_.size();
  }
  double NextTime() const {
    return engine_ == SimEngine::kCalendar ? calendar_.NextTime()
                                           : heap_.NextTime();
  }
  SimEvent Pop() {
    return engine_ == SimEngine::kCalendar ? calendar_.Pop() : heap_.Pop();
  }

  /// Checkpoint support; see the engine members for semantics.
  std::vector<SimEvent> SnapshotEvents() const {
    return engine_ == SimEngine::kCalendar ? calendar_.SnapshotEvents()
                                           : heap_.SnapshotEvents();
  }
  void RestorePending(const std::vector<SimEvent>& events,
                      std::uint64_t next_seq) {
    if (engine_ == SimEngine::kCalendar) {
      calendar_.RestorePending(events, next_seq);
    } else {
      heap_.RestorePending(events, next_seq);
    }
  }
  std::uint64_t next_seq() const {
    return engine_ == SimEngine::kCalendar ? calendar_.next_seq()
                                           : heap_.next_seq();
  }

  SimEngine engine() const { return engine_; }
  /// Null for the heap engine (it has no engine-specific stats).
  const CalendarQueue* calendar() const {
    return engine_ == SimEngine::kCalendar ? &calendar_ : nullptr;
  }

 private:
  SimEngine engine_;
  EventQueue heap_;
  CalendarQueue calendar_;
};

}  // namespace sppnet

#endif  // SPPNET_SIM_EVENT_QUEUE_H_
