#ifndef SPPNET_SIM_ADAPTIVE_SIM_H_
#define SPPNET_SIM_ADAPTIVE_SIM_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include "sppnet/adaptive/local_rules.h"
#include "sppnet/common/rng.h"
#include "sppnet/io/checkpoint.h"
#include "sppnet/model/instance.h"
#include "sppnet/workload/capacity.h"

namespace sppnet {

/// In-simulation adaptation plan: executes the Section 5.3 local rules
/// (split / coalesce clusters, grow outdegree toward the suggested
/// value, shrink the TTL) as scheduled protocol events *inside* the
/// discrete-event simulator, mutating the live network incrementally —
/// no regeneration. Super-peers probe their neighbors' loads
/// periodically (LoadProbe / LoadReport control messages, costed
/// through the CostTable like every other wire message), and every
/// decision interval each super-peer applies the shared LocalPolicy
/// predicates to its measured window loads.
///
/// Determinism mirrors FaultPlan's contract: an inactive plan (the
/// default) is never consulted, leaving the run bit-identical to a
/// build without the adaptation layer; an active plan draws every
/// stochastic decision (rule II peering attempts) from a dedicated RNG
/// stream salted from the simulation seed, so enabling adaptation
/// never perturbs the protocol stream.
struct AdaptivePlan {
  /// Seconds between load-probe sweeps (every super-peer probes every
  /// overlay neighbor). 0 disables the adaptation layer entirely.
  double probe_interval_seconds = 0.0;
  /// Seconds between decision rounds (each round applies rules I-III
  /// to the loads measured since the previous round).
  double decision_interval_seconds = 30.0;
  /// The Section 5.3 policy; its rule predicates are shared verbatim
  /// with the offline controller (adaptive/local_rules.h).
  LocalPolicy policy;

  /// The adaptation stream: Rng(sim_seed ^ kStreamSalt). Distinct from
  /// every other layer salt (audited in sim/plan.cc).
  static constexpr std::uint64_t kStreamSalt = 0xd1b54a32d192ed03ull;

  /// True when the plan schedules any adaptation activity. An inactive
  /// plan leaves the simulator's event stream, RNG consumption, report
  /// and published metrics bit-identical to a run without the layer.
  bool enabled() const { return probe_interval_seconds > 0.0; }

  /// Aborts (SPPNET_CHECK) on invalid configurations: negative or
  /// non-finite intervals, a probe interval exceeding the decision
  /// interval, or an invalid policy. Called at every entry point that
  /// consumes a plan, matching FaultPlan's contract.
  void Validate() const;
};

/// Dynamic cluster membership and overlay topology while the simulator
/// adapts a live network, plus the rule engine that mutates it.
///
/// Cluster ids are stable slot indices: a split appends a new slot, a
/// coalesce marks the consumed slot dead — there is no compaction, so
/// in-flight messages addressed by cluster id stay meaningful. Node
/// ids never change either: a promoted client keeps its node id as the
/// new cluster's head, and a resigned head keeps its node id as an
/// ordinary member. All iteration orders (insertion-ordered member
/// lists, ascending std::set neighbor sets) are deterministic, and the
/// only randomness (rule II peering attempts) comes from a stream
/// salted from the simulation seed — so runs are bit-reproducible.
class AdaptiveController {
 public:
  static constexpr std::uint32_t kNoHead = 0xffffffffu;

  /// One super-peer's measured window load, as handed to a round.
  /// `valid` is false for dead clusters and clusters whose head is
  /// currently down — the rules skip those.
  struct LoadSample {
    bool valid = false;
    double total_bps = 0.0;
    double proc_hz = 0.0;
    /// Directional split of total_bps, filled only when the capacity
    /// layer is active (the rules read total_bps; the capacity
    /// overload check compares each direction against its own budget).
    double in_bps = 0.0;
    double out_bps = 0.0;
  };

  /// Rule I overload: `promoted` (the largest-collection member of
  /// `cluster`) became the head of the appended slot `new_cluster`;
  /// `moved` lists the members that migrated to it.
  struct SplitAction {
    std::uint32_t cluster = 0;
    std::uint32_t new_cluster = 0;
    std::uint32_t promoted = 0;
    std::vector<std::uint32_t> moved;
  };
  /// Rule I underload: cluster `from` merged into `into`; its head
  /// `resigned_head` became an ordinary member of `into`, along with
  /// every member in `moved`.
  struct CoalesceAction {
    std::uint32_t into = 0;
    std::uint32_t from = 0;
    std::uint32_t resigned_head = 0;
    std::vector<std::uint32_t> moved;
  };
  /// Rule II: clusters `a` and `b` peered up.
  struct EdgeAction {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
  };
  /// Capacity rule (active capacity view with demote_overloaded only):
  /// `old_head` of `cluster` was sustained-overloaded against its own
  /// capacity and a strictly more capable member existed, so the head
  /// role moved to `new_head`. Membership is unchanged — the simulator
  /// executes the re-upload storm to the new head.
  struct DemoteAction {
    std::uint32_t cluster = 0;
    std::uint32_t old_head = 0;
    std::uint32_t new_head = 0;
  };
  /// Everything one decision round changed. The controller has already
  /// applied the mutations to its own state; the simulator executes
  /// the matching protocol traffic (joins for moved members, the
  /// peering handshake, the TTL broadcast).
  struct RoundActions {
    std::vector<SplitAction> splits;
    std::vector<CoalesceAction> coalesces;
    std::vector<EdgeAction> edges;
    std::vector<DemoteAction> demotes;
    bool ttl_decreased = false;
    int new_ttl = 0;
    /// LocalPolicy::RoundQuiescent over this round's counts, and no
    /// capacity demotion fired.
    bool quiescent = false;
  };

  /// Seeds the dynamic state from the instance layout (requires
  /// redundancy_k == 1, like the offline controller) and derives the
  /// rule II stream from `sim_seed` with a dedicated salt.
  AdaptiveController(const NetworkInstance& instance,
                     const LocalPolicy& policy, std::uint64_t sim_seed);

  // --- Topology / membership queries (all O(1) or O(members)) -------------
  bool IsHead(std::uint32_t node) const { return is_head_[node]; }
  std::uint32_t HeadOf(std::size_t cluster) const { return head_[cluster]; }
  std::size_t ClusterOfNode(std::uint32_t node) const {
    return node_cluster_[node];
  }
  const std::vector<std::uint32_t>& MembersOf(std::size_t cluster) const {
    return members_[cluster];
  }
  const std::set<std::uint32_t>& NeighborsOf(std::size_t cluster) const {
    return adj_[cluster];
  }
  bool Dead(std::size_t cluster) const { return dead_[cluster]; }
  /// Total slots ever created (live + dead); cluster ids are < this.
  std::size_t NumClusterSlots() const { return head_.size(); }
  std::size_t LiveClusters() const { return live_clusters_; }
  /// Sum of shared files over the cluster's head and members (the
  /// dynamic counterpart of NetworkInstance::indexed_files).
  double FilesSum(std::size_t cluster) const { return files_sum_[cluster]; }
  double FilesOfNode(std::uint32_t node) const { return files_[node]; }
  /// Mean overlay degree over live clusters.
  double AvgOutdegree() const;

  // --- Mutation from the simulator -----------------------------------------
  /// Moves a member node to another (live) cluster — the discovery
  /// re-join path of the fault layer, kept in one membership store.
  void MoveClient(std::uint32_t node, std::size_t to_cluster);

  /// Installs the capacity layer's view (CapacityPlan): per-node
  /// sampled capacities plus the two decision-axis switches. With
  /// `aware_election`, SplitCluster promotes the most capable member
  /// (workload/election.h) instead of the largest collection; with
  /// `demote_overloaded`, RunRound swaps out heads whose window load
  /// exceeds `overload_utilization` of their own capacity for
  /// kSustainRounds consecutive rounds. Not checkpointed: the view is
  /// a pure function of (instance, seed, plan) the restoring simulator
  /// re-installs identically — only cap_over_streak_ is run state.
  void SetCapacityView(std::vector<PeerCapacity> capacities,
                       double overload_utilization, bool aware_election,
                       bool demote_overloaded);

  /// Stores `reporter`'s load as observed by `observer` (a LoadReport
  /// arriving). Reports are stamped with the current round; a report is
  /// "fresh" for exactly one decision round, so coalesce decisions
  /// never act on stale numbers.
  void RecordReport(std::size_t observer, std::size_t reporter,
                    double total_bps, double proc_hz);

  /// One decision round: applies rules I-III to `own_loads` (indexed by
  /// cluster slot) and the recorded neighbor reports, mutates the
  /// dynamic state, and returns what changed so the simulator can
  /// account the protocol traffic. `current_ttl` feeds rule III; the
  /// returned `new_ttl` is `current_ttl` or `current_ttl - 1`.
  RoundActions RunRound(const std::vector<LoadSample>& own_loads,
                        int current_ttl);

  // --- Checkpoint (streaming mode) ------------------------------------------
  /// Serializes every mutable member — membership, overlay, streaks,
  /// fresh reports, the rule II stream position. The per-node file
  /// volumes are not written: they are a static copy of the instance
  /// the restoring constructor rebuilds identically.
  void SaveTo(CheckpointWriter& w) const;
  /// Overwrites the state of a controller freshly constructed from the
  /// same instance/policy/seed. Returns false on a malformed payload.
  bool LoadFrom(CheckpointReader& r);

 private:
  struct NeighborReport {
    std::uint32_t reporter = 0;
    double total_bps = 0.0;
    double proc_hz = 0.0;
    std::uint64_t round = 0;
  };

  void SplitCluster(std::size_t i, RoundActions& actions);
  void CoalesceClusters(std::size_t into, std::size_t from,
                        RoundActions& actions);
  /// Capacity rule: hands cluster `i`'s head role to its most capable
  /// member if that member strictly outranks the current head; no-op
  /// (returns false) otherwise.
  bool DemoteHead(std::size_t i, RoundActions& actions);
  /// Files-weighted mean BFS reach at `ttl` hops over the live overlay
  /// (the in-sim stand-in for the evaluator's mean_reach in rule III;
  /// deterministic, no RNG).
  double MeanReach(int ttl) const;
  const NeighborReport* FreshReport(std::size_t observer,
                                    std::uint32_t reporter) const;

  LocalPolicy policy_;
  Rng rng_;  ///< Rule II peering stream (salted from the sim seed).

  std::vector<std::uint32_t> node_cluster_;  // Per node id.
  std::vector<std::uint8_t> is_head_;        // Per node id.
  std::vector<double> files_;                // Per node id (static copy).
  std::vector<std::uint32_t> head_;          // Per cluster slot; kNoHead.
  std::vector<std::vector<std::uint32_t>> members_;  // Insertion order.
  std::vector<std::set<std::uint32_t>> adj_;         // Ascending.
  std::vector<std::uint8_t> dead_;
  /// Rule-I settle timer: slots touched by a split or coalesce sit out
  /// classification (and partner selection) while > 0, so the re-upload
  /// storm of the structural change never feeds the next decision —
  /// without it the loop limit-cycles (merge -> storm -> "overloaded"
  /// -> split -> "underloaded" -> merge ...).
  std::vector<std::uint8_t> cooldown_;
  /// Sustained-load filters: consecutive windows a slot has measured
  /// over / under the thresholds. Rule I acts only after
  /// kSustainRounds consecutive windows agree — measured window loads
  /// are Poisson-noisy, and acting on a single spike keeps the
  /// membership churning forever at the thresholds.
  std::vector<std::uint8_t> over_streak_;
  std::vector<std::uint8_t> under_streak_;
  /// Capacity rule's sustained filter: consecutive rounds the slot's
  /// head measured above its own overload-utilization threshold. Same
  /// kSustainRounds agreement requirement as rule I, for the same
  /// reason (Poisson-noisy windows).
  std::vector<std::uint8_t> cap_over_streak_;
  std::vector<double> files_sum_;
  std::vector<std::vector<NeighborReport>> reports_;  // Per observer slot.
  std::size_t live_clusters_ = 0;
  std::uint64_t rounds_completed_ = 0;

  // Capacity view (SetCapacityView; empty/false without the capacity
  // layer — the blind paths below are then bit-identical to a build
  // without it).
  std::vector<PeerCapacity> capacities_;  // Per node id.
  double cap_overload_util_ = 0.0;
  bool cap_aware_election_ = false;
  bool cap_demote_ = false;
};

}  // namespace sppnet

#endif  // SPPNET_SIM_ADAPTIVE_SIM_H_
