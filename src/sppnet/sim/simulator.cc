#include "sppnet/sim/simulator.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sppnet/bootstrap/discovery.h"
#include "sppnet/common/check.h"
#include "sppnet/common/rng.h"
#include "sppnet/index/corpus.h"
#include "sppnet/index/inverted_index.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/obs/shard_merge.h"
#include "sppnet/sim/event_queue.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/sharded_sim.h"
#include "sppnet/sim/sim_state.h"
#include "sppnet/workload/capacity.h"

namespace sppnet {
namespace {

// Event kinds.
enum : std::uint32_t {
  kQuerySubmit = 0,
  kQueryArrive,
  kResponseArrive,
  kJoinSubmit,
  kJoinArrive,
  kUpdateSubmit,
  kUpdateArrive,
  kPartnerFail,
  kPartnerRecover,
  kWalkArrive,     // Random-walk query hop.
  kRingCheck,      // Expanding-ring satisfaction probe.
  kPartnerCrash,   // Injected mid-session crash clock (fault layer).
  kRequestCheck,   // Per-request timeout probe (recovery protocol).
  kRetrySubmit,    // Backed-off query retry (recovery protocol).
  kAdaptProbeTick,     // Periodic load-probe sweep (adaptation layer).
  kAdaptProbeArrive,   // LoadProbe delivery to a super-peer.
  kAdaptReportArrive,  // LoadReport delivery back to the prober.
  kAdaptRound,         // Decision round: rules I-III on window loads.
  kAdaptTtlArrive,     // TtlUpdate broadcast delivery.
  kTraceQuerySubmit,   // Externally fed (trace-replay) query submission:
                       // same submission path as kQuerySubmit, but does
                       // not reschedule a Poisson clock.
  // Sharded-discipline kinds (DESIGN.md §12), appended so every legacy
  // value — and therefore every legacy checkpoint payload — is
  // unchanged. A sharded run addresses query traffic to the receiving
  // CLUSTER (e.node is a cluster id) and resolves the round-robin
  // partner on the receiver's shard, which owns that cluster's rr_
  // cursor; the legacy engine never schedules these.
  kClusterQueryArrive,  // Flood/ring query hop addressed to a cluster.
  kClusterWalkLaunch,   // Walk submission hop: resolve source, launch
                        // the walkers from the receiving cluster.
  kClusterWalkArrive,   // Random-walk hop addressed to a cluster.
  kRejoinRequest,       // Control-time client rejoin: a data-phase
                        // submission found its cluster dark and defers
                        // the membership mutation to the barrier.
  kDigestRefresh,       // Periodic routing-digest re-announcement round
                        // (content-aware routing; legacy engine only —
                        // Validate() rejects routing + sharding).
  // Index-consistency kinds (DESIGN.md §14; legacy engine only —
  // Validate() rejects consistency + sharding). Appended so every
  // pre-consistency value, and therefore every legacy checkpoint
  // payload, is unchanged.
  kMetadataChange,      // Per-client Poisson metadata-change clock.
  kInvalidateArrive,    // InvalidateMessage delivery (push scheme).
  kRefreshPollTick,     // Per-cluster TTR poll round (pull scheme).
  kRefreshReplyArrive,  // Batched RefreshReply delivery (pull scheme).
  // Capacity kind (DESIGN.md §15; legacy engine only — Validate()
  // rejects capacity + sharding). Appended last for the same
  // checkpoint-compatibility reason as the consistency kinds.
  kCapacityWindow,  // Periodic utilization-window close (capacity plan).
};

// Wire message classes for the observability counters. Every
// accounted send/receive names its class so the per-type counters
// reconcile with the byte accounting by construction.
enum class Msg : std::size_t {
  kQuery = 0,
  kResponse,
  kJoin,
  kUpdate,
  kProbe,    // Adaptation: LoadProbe control message.
  kReport,   // Adaptation: LoadReport control message.
  kControl,  // Adaptation: TtlUpdate control message.
  kDigest,   // Routing: DigestAnnounce control message.
  kInvalidate,  // Consistency: InvalidateMessage (push scheme).
  kPoll,        // Consistency: RefreshPollMessage (pull scheme).
  kRefresh,     // Consistency: RefreshReplyMessage (pull scheme).
  kReplica,     // Consistency: ReplicaPushMessage (replication).
};
/// Message classes of the base protocol; their counters are always
/// published. The adaptation, routing and consistency classes above
/// are published only for active plans, keeping the inactive registry
/// surface unchanged.
inline constexpr std::size_t kNumBaseMsgTypes = 4;
inline constexpr std::size_t kNumAdaptMsgTypes = 7;
inline constexpr std::size_t kNumMsgTypes = 12;
inline constexpr const char* kMsgNames[kNumMsgTypes] = {
    "query",  "response", "join",    "update",
    "probe",  "report",   "control", "digest",
    "invalidate", "poll", "refresh", "replica"};

// Sentinel "upstream" marking a query submitted by the super-peer's own
// user: results are consumed locally and no submission hop exists.
constexpr std::uint32_t kSelfUpstream = 0xffffffffu;

// The routing-index layer is active when a routed strategy demands it
// or when the options enable it explicitly (digest pruning on top of
// flood / expanding-ring refinement).
bool RoutingActive(const SimOptions& options) {
  return options.routing.enabled() ||
         options.strategy == SearchStrategy::kRoutedFlood ||
         options.strategy == SearchStrategy::kWalker;
}

// Query payload packing: b = upstream(32) | class(24) | ttl(8).
std::uint64_t PackQuery(std::uint32_t upstream, std::uint32_t query_class,
                        std::uint32_t ttl) {
  return (static_cast<std::uint64_t>(upstream) << 32) |
         (static_cast<std::uint64_t>(query_class & 0xffffffu) << 8) |
         static_cast<std::uint64_t>(ttl & 0xffu);
}

// Response payload packing: b = results(32) | addrs(16) | hops(16).
std::uint64_t PackResponse(std::uint32_t results, std::uint32_t addrs,
                           std::uint32_t hops) {
  return (static_cast<std::uint64_t>(results) << 32) |
         (static_cast<std::uint64_t>(addrs & 0xffffu) << 16) |
         static_cast<std::uint64_t>(hops & 0xffffu);
}

std::uint32_t SampleBinomialApprox(double n, double p, Rng& rng) {
  const double lambda = n * p;
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's Poisson sampler; an accurate stand-in for Binomial(n, p)
    // when p is tiny (selection powers are ~1e-4).
    const double limit = std::exp(-lambda);
    double prod = 1.0;
    std::uint32_t k = 0;
    do {
      ++k;
      prod *= rng.NextDouble();
    } while (prod > limit);
    return k - 1;
  }
  const double sigma = std::sqrt(lambda * (1.0 - p));
  const double x = std::llround(lambda + sigma * rng.NextGaussian());
  return x <= 0.0 ? 0u : static_cast<std::uint32_t>(x);
}

// Buckets of the per-response overlay-hop histogram: one bucket per
// hop count 0..15 plus overflow (TTLs in every experiment are <= 8).
std::vector<double> HopHistogramBounds() {
  std::vector<double> bounds(16);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    bounds[i] = static_cast<double>(i);
  }
  return bounds;
}

// Buckets for the client recovery-latency histogram (seconds from an
// orphaning outage to re-connection): roughly geometric, spanning
// sub-recovery-time episodes up to long multi-outage waits.
std::vector<double> RecoveryLatencyBounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0};
}

// Buckets for the orphaned-clients-per-outage histogram (cluster sizes
// in the experiments range from a handful to a few hundred clients).
std::vector<double> OrphanCountBounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0};
}

// Buckets for the consistency freshness-latency histogram (seconds from
// a metadata change to the refresh clearing it): push refreshes within
// one hop latency, pull within up to a TTR period, so the buckets span
// sub-hop delays through multi-minute TTRs.
std::vector<double> FreshnessLatencyBounds() {
  return {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0};
}

// Buckets for the super-peer utilization histogram (dimensionless
// fraction of the node's tightest capacity axis): geometric around the
// default overload point of 1.0, spanning idle modems through nodes
// driven an order of magnitude past their budget. The report's p99 is
// read off these bucket upper bounds.
std::vector<double> CapacityUtilizationBounds() {
  return {0.0625, 0.125, 0.25, 0.5, 0.75, 1.0,  1.25, 1.5,
          2.0,    3.0,   4.0,  6.0, 8.0,  12.0, 16.0};
}

// Event payloads are integers (SimEvent::a); the consistency events
// carry the change / poll-tick timestamp through its bit pattern.
std::uint64_t TimeBits(double t) { return std::bit_cast<std::uint64_t>(t); }
double BitsTime(std::uint64_t bits) { return std::bit_cast<double>(bits); }

// --- Checkpoint helpers (streaming mode; DESIGN.md §11) ---------------------

// Section tag of the simulator's own checkpoint section ("simu").
constexpr std::uint32_t kSimTag = 0x756d6973u;

void PutRng(CheckpointWriter& w, const Rng& rng) {
  const Rng::State st = rng.SaveState();
  for (const std::uint64_t word : st.s) w.PutU64(word);
  w.PutDouble(st.gauss_spare);
  w.PutBool(st.has_gauss_spare);
}

void GetRng(CheckpointReader& r, Rng& rng) {
  Rng::State st;
  for (std::uint64_t& word : st.s) word = r.GetU64();
  st.gauss_spare = r.GetDouble();
  st.has_gauss_spare = r.GetBool();
  if (r.ok()) rng.RestoreState(st);
}

void PutHistogram(CheckpointWriter& w, const Histogram& h) {
  w.PutU64Vector(h.bucket_counts());
  w.PutDouble(h.sum());
}

// False when the serialized bucket shape does not match `h` (the
// caller rejects the payload; RestoreContents aborts on shape drift).
bool GetHistogram(CheckpointReader& r, Histogram& h) {
  const std::vector<std::uint64_t> counts = r.GetU64Vector();
  const double sum = r.GetDouble();
  if (!r.ok() || counts.size() != h.bucket_counts().size()) return false;
  h.RestoreContents(counts, sum);
  return true;
}

}  // namespace

class Simulator::Impl {
 public:
  Impl(const NetworkInstance& instance, const Configuration& config,
       const ModelInputs& inputs, const SimOptions& options)
      : inst_(instance),
        config_(config),
        inputs_(inputs),
        options_(options),
        rng_(options.seed),
        n_(instance.NumClusters()),
        k_(static_cast<std::size_t>(instance.redundancy_k)),
        num_partners_(instance.TotalPartners()),
        num_clients_(instance.TotalClients()),
        queue_(options.engine),
        state_(options.state_backend, instance.NumClusters()),
        injector_(options.faults, options.seed),
        fault_active_(options.faults.enabled()),
        recovery_enabled_(fault_active_ && options.faults.TimeoutsEnabled()),
        adaptive_(options.adaptive.enabled()),
        ttl_(config.ttl),
        routing_active_(RoutingActive(options)),
        consistency_active_(options.consistency.enabled()),
        capacity_active_(options.capacity.enabled()) {
    options_.Validate();
    const auto init_start = std::chrono::steady_clock::now();
    qbytes_ = inputs.costs.QueryBytes(inputs.stats.query_length_bytes);
    sendq_ = inputs.costs.SendQueryUnits(inputs.stats.query_length_bytes);
    recvq_ = inputs.costs.RecvQueryUnits(inputs.stats.query_length_bytes);

    in_bytes_.assign(num_partners_ + num_clients_, 0.0);
    out_bytes_.assign(num_partners_ + num_clients_, 0.0);
    units_.assign(num_partners_ + num_clients_, 0.0);

    client_cluster_.resize(num_clients_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t c = inst_.client_offset[i];
           c < inst_.client_offset[i + 1]; ++c) {
        client_cluster_[c] = static_cast<std::uint32_t>(i);
      }
    }
    conn_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) conn_[i] = inst_.PartnerConnections(i);
    client_conn_ = inst_.ClientConnections();

    partner_alive_.assign(num_partners_, true);
    alive_partners_.assign(n_, static_cast<std::uint32_t>(k_));
    outage_start_.assign(n_, -1.0);
    rr_.assign(n_, 0);

    if (options_.shards.enabled()) {
      disc_ = true;
      num_shards_ = std::min(options_.shards.num_shards, n_);
      num_threads_ = options_.shards.num_threads;
      cell_width_ = options_.hop_latency_seconds;
      lanes_ = std::vector<Lane>(num_shards_);
      shard_queues_.reserve(num_shards_);
      for (std::size_t s = 0; s < num_shards_; ++s) {
        shard_queues_.emplace_back(options_.engine);
      }
      ctl_queue_ = std::make_unique<SimEventQueue>(options_.engine);
      // Per-domain protocol and fault streams plus one control stream,
      // all salted from the run seed. The salt spaces are disjoint by
      // construction (tag in the high 32 bits).
      proto_rngs_.reserve(n_);
      fault_rngs_.reserve(n_);
      for (std::size_t d = 0; d < n_; ++d) {
        proto_rngs_.push_back(
            Rng::Salted(options_.seed, ShardPlan::kProtoStreamSalt | d));
        fault_rngs_.push_back(
            Rng::Salted(options_.seed, ShardPlan::kFaultStreamSalt | d));
      }
      ctl_rng_ = Rng::Salted(options_.seed, ShardPlan::kCtlStreamSalt);
      ctr_dom_.assign(n_, 0);
      user_qid_ctr_.assign(num_partners_ + num_clients_, 0);
      disc_dup_.resize(n_);
      disc_state_.resize(n_);
      disc_root_.resize(n_);
      latency_by_dom_.assign(n_, 0.0);
      pool_ = std::make_unique<ShardPool>(num_shards_, num_threads_);
    }

    if (fault_active_) {
      // Mutable membership: clients can re-join other clusters via
      // discovery, so cluster composition diverges from the instance
      // layout. Member lists keep insertion order — iteration (and
      // therefore the event stream) is deterministic.
      client_current_cluster_ = client_cluster_;
      cluster_members_.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        cluster_members_[i].reserve(inst_.client_offset[i + 1] -
                                    inst_.client_offset[i]);
        for (std::size_t c = inst_.client_offset[i];
             c < inst_.client_offset[i + 1]; ++c) {
          cluster_members_[i].push_back(static_cast<std::uint32_t>(c));
        }
      }
      orphaned_since_.assign(num_clients_, -1.0);
    }

    if (adaptive_) {
      SPPNET_CHECK_MSG(k_ == 1,
                       "in-sim adaptation requires redundancy_k == 1");
      adaptive_ctrl_ = std::make_unique<AdaptiveController>(
          inst_, options_.adaptive.policy, options_.seed);
      adapt_in_bytes_.assign(num_partners_ + num_clients_, 0.0);
      adapt_out_bytes_.assign(num_partners_ + num_clients_, 0.0);
      adapt_units_.assign(num_partners_ + num_clients_, 0.0);
      probe_bytes_ = inputs.costs.LoadProbeBytes();
      report_bytes_ = inputs.costs.LoadReportBytes();
      ttl_update_bytes_ = inputs.costs.TtlUpdateBytes();
      send_ctl_ = inputs.costs.SendControlUnits();
      recv_ctl_ = inputs.costs.RecvControlUnits();
    }

    if (routing_active_) {
      // The realized digest table is a pure function of (instance,
      // seed, routing options): the restoring constructor rebuilds it
      // identically, so it never enters a checkpoint, and the
      // analytical routing model builds the same table.
      routing_ = std::make_unique<RoutingTable>(BuildRoutingTable(
          inst_.topology, inst_.indexed_files, inputs_.query_model,
          options_.routing, options_.seed));
      digest_bytes_ = inputs.costs.DigestAnnounceBytes(
          static_cast<double>(options_.routing.DigestPayloadBytes()));
      send_ctl_ = inputs.costs.SendControlUnits();
      recv_ctl_ = inputs.costs.RecvControlUnits();
    }

    if (consistency_active_) {
      // The plan itself was validated by options_.Validate(); the
      // replication factor bound depends on the instance, so it is
      // checked here (a factor above the cluster count cannot name
      // enough distinct replica targets).
      SPPNET_CHECK_MSG(
          options_.consistency.replication.replication_factor <= n_,
          "replication_factor must not exceed the cluster count");
      cons_rng_ = Rng::Salted(options_.seed, ConsistencyPlan::kStreamSalt);
      invalidate_bytes_ = inputs.costs.InvalidateBytes();
      refresh_poll_bytes_ = inputs.costs.RefreshPollBytes();
      refresh_reply_bytes_ = inputs.costs.RefreshReplyBytes();
      send_ctl_ = inputs.costs.SendControlUnits();
      recv_ctl_ = inputs.costs.RecvControlUnits();
      cons_stale_.assign(n_, 0.0);
      cons_replicas_.assign(n_, 0.0);
      if (options_.consistency.scheme == ConsistencyScheme::kPullTtr) {
        cons_pending_.resize(n_);
        cons_head_.assign(n_, 0);
      }
    }

    if (capacity_active_) {
      // Per-node capacities come from a dedicated salted stream, so an
      // inactive plan never perturbs the protocol draws and an active
      // one samples the same peers for every engine/backend pairing.
      Rng cap_rng = Rng::Salted(options_.seed, CapacityPlan::kStreamSalt);
      node_capacity_ = SampleNodeCapacities(options_.capacity.distribution,
                                            cap_rng, TotalNodes());
      cap_in_bytes_.assign(TotalNodes(), 0.0);
      cap_out_bytes_.assign(TotalNodes(), 0.0);
      cap_units_.assign(TotalNodes(), 0.0);
      cap_overloaded_.assign(TotalNodes(), 0);
      if (adaptive_) {
        adaptive_ctrl_->SetCapacityView(
            node_capacity_, options_.capacity.overload_utilization,
            options_.capacity.capacity_aware_election,
            options_.capacity.demote_overloaded);
      }
    }

    if (options_.concrete_index) InitConcreteIndexes();
    init_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - init_start)
                        .count();
  }

  /// Concrete-index mode: build one real inverted index per cluster
  /// from corpus-sampled collections (owners are node ids).
  void InitConcreteIndexes() {
    corpus_ = std::make_unique<TitleCorpus>(CorpusParams{});
    indexes_.resize(n_);
    node_collections_.resize(TotalNodes());
    const auto add_node = [&](std::uint32_t node, std::size_t cluster) {
      const auto files = static_cast<std::size_t>(FilesOf(node));
      node_collections_[node] =
          corpus_->SampleCollection(node, files, &next_file_id_, ProtoRng());
      indexes_[cluster].InsertCollection(node_collections_[node]);
    };
    for (std::uint32_t p = 0; p < num_partners_; ++p) {
      add_node(p, ClusterOf(p));
    }
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      const auto node = static_cast<std::uint32_t>(num_partners_ + c);
      add_node(node, ClusterOf(node));
    }
  }

  SimReport Run() {
    Start();
    const double end_time =
        options_.warmup_seconds + options_.duration_seconds;
    RunUntil(end_time);
    return FinalizeAt(end_time);
  }

  /// Streaming mode, step 1 of 3: seeds the recurring activity clocks.
  /// `Run()` is exactly `Start(); RunUntil(warmup + duration);
  /// FinalizeAt(warmup + duration);` — the split introduces no
  /// behavioural change (the engine-equivalence goldens pin this).
  void Start() {
    SPPNET_CHECK_MSG(!started_, "Start()/Run() called twice");
    started_ = true;
    tls_lane_ = &lanes_[0];
    // Seed per-user recurring activity. Under the sharded discipline
    // each node's clocks are drawn from its home domain's stream, in
    // fixed node order, so the draws are shard-count-invariant.
    for (std::uint32_t u = 0; u < TotalNodes(); ++u) {
      if (disc_) lanes_[0].cur_domain = HomeDomainOf(u);
      ScheduleIn(ExpDelay(config_.query_rate), kQuerySubmit, u);
      ScheduleIn(ExpDelay(config_.update_rate), kUpdateSubmit, u);
      ScheduleIn(ExpDelay(1.0 / LifespanOf(u)), kJoinSubmit, u);
    }
    if (disc_) lanes_[0].cur_domain = kShardCtlDomain;
    if (options_.churn.enable) {
      for (std::uint32_t p = 0; p < num_partners_; ++p) {
        ScheduleIn(ExpDelay(1.0 / inst_.partner_lifespan[p]), kPartnerFail, p);
      }
    }
    if (fault_active_ && injector_.plan().crash_rate_per_partner > 0.0) {
      // Independent Poisson crash clock per partner slot; crashes on a
      // dead partner are no-ops, so up-times stay memoryless (the
      // analytical availability model relies on this — DESIGN.md §8).
      for (std::uint32_t p = 0; p < num_partners_; ++p) {
        ScheduleIn(injector_.NextCrashDelay(), kPartnerCrash, p);
      }
    }
    if (adaptive_) {
      window_start_ = 0.0;
      ScheduleIn(options_.adaptive.probe_interval_seconds, kAdaptProbeTick, 0);
      ScheduleIn(options_.adaptive.decision_interval_seconds, kAdaptRound, 0);
    }
    if (routing_active_) {
      // The initial dissemination ships with construction (before the
      // clock starts); the first re-announcement round fires one
      // refresh interval in.
      ScheduleIn(options_.routing.refresh_interval_seconds, kDigestRefresh, 0);
    }
    if (consistency_active_) {
      // Per-client metadata-change clocks, drawn from the dedicated
      // consistency stream in fixed client order; an inactive plan
      // never touches the stream (pay-for-what-you-use determinism).
      for (std::uint32_t c = 0; c < num_clients_; ++c) {
        ScheduleIn(ConsExpDelay(), kMetadataChange,
                   static_cast<std::uint32_t>(num_partners_) + c);
      }
      if (options_.consistency.scheme == ConsistencyScheme::kPullTtr) {
        for (std::size_t i = 0; i < n_; ++i) {
          ScheduleIn(options_.consistency.ttr_seconds, kRefreshPollTick,
                     static_cast<std::uint32_t>(i));
        }
      }
    }
    if (capacity_active_) {
      cap_window_start_ = 0.0;
      ScheduleIn(options_.capacity.window_seconds, kCapacityWindow, 0);
    }
  }

  /// Streaming mode, step 2 of 3: dispatches every pending event with
  /// time <= `sim_time`. Idempotent for a quiet horizon; callable any
  /// number of times with nondecreasing horizons. Does NOT advance
  /// `lane().now` to `sim_time` — only FinalizeAt does, so a checkpoint cut
  /// between windows lands on the last dispatched event's timestamp
  /// regardless of the window grid.
  void RunUntil(double sim_time) {
    SPPNET_CHECK_MSG(started_, "RunUntil() before Start()");
    SPPNET_CHECK(!finalized_);
    const auto run_start = std::chrono::steady_clock::now();
    tls_lane_ = &lanes_[0];
    if (disc_) {
      DiscRunUntil(sim_time);
    } else {
      while (!queue_.empty() && queue_.NextTime() <= sim_time) {
        const SimEvent e = queue_.Pop();
        ++lane().events_dispatched;
        lane().now = e.time;
        lane().measuring = lane().now >= options_.warmup_seconds;
        Dispatch(e);
      }
    }
    run_seconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - run_start)
                        .count();
  }

  /// Streaming mode, step 3 of 3: advances the clock to `end_time` and
  /// builds the report. When `end_time` equals warmup + duration (the
  /// batch horizon, compared as the identical FP expression) the
  /// measured window is exactly `duration_seconds`, keeping Run()
  /// bit-identical to the pre-split code; any other horizon measures
  /// max(0, end_time - warmup) seconds.
  SimReport FinalizeAt(double end_time) {
    SPPNET_CHECK_MSG(started_, "FinalizeAt() before Start()");
    SPPNET_CHECK_MSG(!finalized_, "FinalizeAt() called twice");
    tls_lane_ = &lanes_[0];
    SPPNET_CHECK(std::isfinite(end_time) && end_time >= lane().now);
    finalized_ = true;
    lane().now = end_time;
    if (disc_) {
      // The finalization sweeps (outage closing, orphan accrual) run in
      // control context; pin the lane flags to the horizon's own values
      // rather than whatever shard 0's last data event left behind, so
      // the sweeps are shard- and thread-count-invariant.
      lane().measuring = end_time >= options_.warmup_seconds;
      lane().cur_domain = kShardCtlDomain;
    }
    const double batch_horizon =
        options_.warmup_seconds + options_.duration_seconds;
    const double measured =
        end_time == batch_horizon
            ? options_.duration_seconds
            : std::max(0.0, end_time - options_.warmup_seconds);
    return Finalize(measured);
  }

  double Now() const { return lanes_[0].now; }
  /// Total dispatched events, folded over the lanes in index order (the
  /// streaming layer reads this between windows; the fold keeps the
  /// value shard-count-invariant).
  std::uint64_t events_dispatched() const {
    std::uint64_t total = 0;
    ForEachShardLane(lanes_, [&](const Lane& ln, std::size_t) {
      total += ln.events_dispatched;
    });
    return total;
  }

  /// Schedules one externally fed query submission at absolute sim time
  /// `time` (>= the current clock). Trace-replay entry point: the event
  /// runs the normal submission path without touching the Poisson
  /// clocks, so a trace can be layered over (or replace) the generated
  /// workload deterministically.
  void InjectQueryAt(double time, std::uint32_t user) {
    tls_lane_ = &lanes_[0];
    SPPNET_CHECK_MSG(user < TotalNodes(), "trace user out of range");
    SPPNET_CHECK_MSG(std::isfinite(time) && time >= lane().now,
                     "trace events must not be scheduled in the past");
    if (disc_) lanes_[0].cur_domain = HomeDomainOf(user);
    ScheduleIn(time - lane().now, kTraceQuerySubmit, user);
    if (disc_) lanes_[0].cur_domain = kShardCtlDomain;
  }

  /// Publishes the CUMULATIVE run-so-far tallies into `m` — the same
  /// instrument surface as the end-of-run publish. The streaming layer
  /// diffs successive publishes into per-window deltas, which therefore
  /// reconcile with the final totals by construction.
  void PublishCumulativeMetrics(MetricsRegistry& m) const {
    PublishMetrics(m);
  }

  /// Retires per-query bookkeeping for roots submitted before
  /// `cutoff_seconds` of sim time: advances the retirement floor past
  /// every root claimed strictly earlier, then drops the underlying
  /// storage prefix (SimState::RetireBelow). Root qids are claimed in
  /// submission order, so the first live root at or past the cutoff
  /// bounds the scan; qids never claimed (cache hits, retries, ring
  /// waves) retire with their neighborhood. The caller must pick a
  /// cutoff at least one in-flight horizon behind the clock — touching
  /// a retired qid aborts through the SimState floor checks rather
  /// than corrupting the run (stream.cc derives a conservative horizon
  /// from the latency, retry and ring-wave bounds).
  void RetireStateBefore(double cutoff_seconds) {
    SPPNET_CHECK_MSG(!options_.concrete_index,
                     "state retirement requires abstract indexes");
    if (disc_) {
      DiscRetireStateBefore(cutoff_seconds);
      return;
    }
    while (retire_scan_qid_ < next_qid_) {
      const QueryState* s = state_.Find(retire_scan_qid_);
      if (s != nullptr && s->submit_time >= cutoff_seconds) break;
      ++retire_scan_qid_;
    }
    state_.RetireBelow(retire_scan_qid_);
  }

  /// Serializes the complete mutable simulator state (DESIGN.md §11).
  /// Static and derived members — the instance, cost caches, the
  /// connection layout — are rebuilt identically by the restoring
  /// constructor and are not written. The serialized form is engine-
  /// and backend-portable: pending events carry their original
  /// (time, seq) keys and per-query state is written as canonically
  /// ordered logical entries, so a calendar/dense run can restore into
  /// a heap/map simulator and vice versa.
  void SaveState(CheckpointWriter& w) const {
    SPPNET_CHECK_MSG(!options_.concrete_index,
                     "checkpoint requires abstract indexes");
    SPPNET_CHECK_MSG(started_ && !finalized_,
                     "checkpoint requires a started, unfinalized run");
    tls_lane_ = &lanes_[0];
    w.BeginSection(kSimTag);
    // Engine-discipline marker. A legacy payload restores only into a
    // legacy simulator and a sharded payload only into a sharded one
    // (any shard/thread count: the payload is canonical — see
    // DiscSaveState); the stream fingerprint rejects the mismatch
    // before this marker is ever compared.
    w.PutBool(disc_);
    if (disc_) {
      DiscSaveState(w);
      return;
    }
    w.PutDouble(lane().now);
    PutRng(w, rng_);
    PutRng(w, injector_.stream());
    const std::vector<SimEvent> events = queue_.SnapshotEvents();
    w.PutU64(events.size());
    for (const SimEvent& e : events) {
      w.PutDouble(e.time);
      w.PutU64(e.seq);
      w.PutU32(e.kind);
      w.PutU32(e.node);
      w.PutU64(e.a);
      w.PutU64(e.b);
      w.PutDouble(e.x);
    }
    w.PutU64(queue_.next_seq());
    state_.SaveTo(w);
    w.PutU64(retire_scan_qid_);
    // Load accounting and churn state.
    w.PutDoubleVector(in_bytes_);
    w.PutDoubleVector(out_bytes_);
    w.PutDoubleVector(units_);
    w.PutU8Vector(partner_alive_);
    w.PutU32Vector(alive_partners_);
    w.PutDoubleVector(outage_start_);
    w.PutU32Vector(rr_);
    // Tallies.
    w.PutU64(next_qid_);
    w.PutU64(lane().queries_submitted);
    w.PutU64(lane().responses_delivered);
    w.PutU64(lane().duplicate_queries);
    w.PutU64(partner_failures_);
    w.PutU64(cluster_outages_);
    w.PutDouble(lane().results_sum);
    w.PutDouble(lane().hops_sum);
    w.PutDouble(disconnected_client_seconds_);
    w.PutDouble(latency_sum_);
    w.PutU64(lane().first_responses);
    w.PutDouble(lane().rings_sum);
    w.PutU64(lane().ring_queries_finished);
    w.PutU64(cache_hits_);
    w.PutU64(cache_misses_);
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) w.PutU64(lane().msg_sent[t]);
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) w.PutU64(lane().msg_recv[t]);
    w.PutU64(partner_recoveries_);
    w.PutU64(static_cast<std::uint64_t>(queue_depth_hwm_));
    w.PutU64(lane().events_dispatched);
    w.PutU64(lane().events_scheduled);
    PutHistogram(w, lane().hop_histogram);
    // Fault layer. Tallies and histograms are written unconditionally
    // (outage time accrues under plain churn too); the membership
    // vectors exist only for active plans.
    w.PutDouble(outage_seconds_);
    w.PutU64(crashes_);
    w.PutU64(lane().messages_dropped);
    w.PutU64(request_timeouts_);
    w.PutU64(retries_);
    w.PutU64(lane().failover_episodes);
    w.PutU64(client_rejoins_);
    w.PutU64(queries_succeeded_);
    w.PutU64(lane().queries_failed);
  PutHistogram(w, recovery_latency_hist_);
    PutHistogram(w, orphaned_clients_hist_);
    w.PutBool(fault_active_);
    if (fault_active_) {
      w.PutU32Vector(client_current_cluster_);
      w.PutU64(cluster_members_.size());
      for (const std::vector<std::uint32_t>& members : cluster_members_) {
        w.PutU32Vector(members);
      }
      w.PutDoubleVector(orphaned_since_);
    }
    // Adaptation layer.
    w.PutU32(static_cast<std::uint32_t>(ttl_));
    w.PutBool(adaptive_);
    if (adaptive_) {
      adaptive_ctrl_->SaveTo(w);
      w.PutDoubleVector(adapt_in_bytes_);
      w.PutDoubleVector(adapt_out_bytes_);
      w.PutDoubleVector(adapt_units_);
      w.PutDouble(window_start_);
      w.PutU64(adapt_rounds_);
      w.PutU64(adapt_splits_);
      w.PutU64(adapt_coalesces_);
      w.PutU64(adapt_edges_added_);
      w.PutU64(adapt_ttl_decreases_);
      w.PutU64(adapt_probes_sent_);
      w.PutU64(adapt_reports_received_);
      w.PutU64(adapt_client_moves_);
      w.PutU64(adapt_demotions_);
      w.PutBool(adapt_converged_);
      w.PutU64(adapt_converged_round_);
    }
    // Routing layer. The digest table is rebuilt identically at
    // construction (a pure function of instance + seed + options), so
    // only the tallies are run state.
    w.PutBool(routing_active_);
    if (routing_active_) {
      w.PutU64(routing_digest_refreshes_);
      w.PutU64(routing_suppressed_forwards_);
      w.PutU64(routing_biased_hops_);
    }
    // Consistency layer. The pull FIFOs are serialized as their
    // unpopped suffix — the canonical form — so a compacted and an
    // uncompacted simulator write identical payloads.
    w.PutBool(consistency_active_);
    if (consistency_active_) {
      PutRng(w, cons_rng_);
      w.PutDoubleVector(cons_stale_);
      w.PutDoubleVector(cons_replicas_);
      if (options_.consistency.scheme == ConsistencyScheme::kPullTtr) {
        for (std::size_t i = 0; i < n_; ++i) {
          const std::vector<double> suffix(
              cons_pending_[i].begin() +
                  static_cast<std::ptrdiff_t>(cons_head_[i]),
              cons_pending_[i].end());
          w.PutDoubleVector(suffix);
        }
      }
      w.PutU64(consistency_changes_);
      w.PutU64(consistency_stale_results_);
      w.PutU64(consistency_fresh_results_);
      w.PutU64(consistency_replica_records_);
      w.PutU64(consistency_replica_served_);
      w.PutDouble(consistency_replication_bytes_);
      PutHistogram(w, freshness_hist_);
    }
    // Capacity layer: window accumulators, per-node overload flags and
    // folded tallies. The sampled capacities themselves are rebuilt
    // identically at construction (a pure function of seed + plan), so
    // they never enter a checkpoint.
    w.PutBool(capacity_active_);
    if (capacity_active_) {
      w.PutDoubleVector(cap_in_bytes_);
      w.PutDoubleVector(cap_out_bytes_);
      w.PutDoubleVector(cap_units_);
      w.PutDouble(cap_window_start_);
      w.PutU8Vector(cap_overloaded_);
      w.PutU64(cap_windows_);
      w.PutU64(cap_node_samples_);
      w.PutU64(cap_over_samples_);
      w.PutU64(cap_overload_episodes_);
      w.PutU64(cap_sp_samples_);
      w.PutU64(cap_sp_over_samples_);
      w.PutDouble(cap_util_sum_);
      w.PutDouble(cap_sp_util_sum_);
      PutHistogram(w, cap_sp_util_hist_);
    }
  }

  /// Counterpart of SaveState on a freshly constructed simulator with
  /// the same instance, configuration and protocol options (the engine
  /// and state backend may differ). Replaces Start(). Returns false —
  /// leaving the simulator unusable — on any malformed payload; the
  /// envelope checksum in CheckpointReader::Open has already rejected
  /// truncation and corruption, so failures here mean writer/reader
  /// drift or a checkpoint from a mismatched scenario.
  bool LoadState(CheckpointReader& r) {
    SPPNET_CHECK_MSG(!options_.concrete_index,
                     "checkpoint requires abstract indexes");
    SPPNET_CHECK_MSG(!started_, "LoadState() requires a fresh simulator");
    tls_lane_ = &lanes_[0];
    if (!r.BeginSection(kSimTag)) return false;
    started_ = true;
    if (r.GetBool() != disc_) return false;  // Engine-discipline marker.
    if (disc_) return DiscLoadState(r);
    lane().now = r.GetDouble();
    GetRng(r, rng_);
    GetRng(r, injector_.stream());
    const std::uint64_t num_events = r.GetU64();
    std::vector<SimEvent> events;
    for (std::uint64_t i = 0; i < num_events && r.ok(); ++i) {
      SimEvent e;
      e.time = r.GetDouble();
      e.seq = r.GetU64();
      e.kind = r.GetU32();
      e.node = r.GetU32();
      e.a = r.GetU64();
      e.b = r.GetU64();
      e.x = r.GetDouble();
      events.push_back(e);
    }
    const std::uint64_t next_seq = r.GetU64();
    if (!r.ok()) return false;
    // Validate before handing to the queue: RestorePending aborts on
    // violated invariants, but a foreign payload should fail cleanly.
    // Legacy runs schedule the pre-sharding kinds plus kDigestRefresh
    // (routing is confined to the legacy engine) and, when the
    // consistency layer is on, the four consistency kinds (and the
    // capacity window clock for an active capacity plan); the
    // sharded-only cluster kinds in between stay rejected.
    for (const SimEvent& e : events) {
      const bool consistency_kind = consistency_active_ &&
                                    e.kind >= kMetadataChange &&
                                    e.kind <= kRefreshReplyArrive;
      const bool capacity_kind =
          capacity_active_ && e.kind == kCapacityWindow;
      if (!std::isfinite(e.time) ||
          (e.kind > kTraceQuerySubmit && e.kind != kDigestRefresh &&
           !consistency_kind && !capacity_kind) ||
          e.seq >= next_seq) {
        return false;
      }
    }
    queue_.RestorePending(events, next_seq);
    if (!state_.LoadFrom(r)) return false;
    retire_scan_qid_ = r.GetU64();
    in_bytes_ = r.GetDoubleVector();
    out_bytes_ = r.GetDoubleVector();
    units_ = r.GetDoubleVector();
    partner_alive_ = r.GetU8Vector();
    alive_partners_ = r.GetU32Vector();
    outage_start_ = r.GetDoubleVector();
    rr_ = r.GetU32Vector();
    next_qid_ = r.GetU64();
    lane().queries_submitted = r.GetU64();
    lane().responses_delivered = r.GetU64();
    lane().duplicate_queries = r.GetU64();
    partner_failures_ = r.GetU64();
    cluster_outages_ = r.GetU64();
    lane().results_sum = r.GetDouble();
    lane().hops_sum = r.GetDouble();
    disconnected_client_seconds_ = r.GetDouble();
    latency_sum_ = r.GetDouble();
    lane().first_responses = r.GetU64();
    lane().rings_sum = r.GetDouble();
    lane().ring_queries_finished = r.GetU64();
    cache_hits_ = r.GetU64();
    cache_misses_ = r.GetU64();
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) lane().msg_sent[t] = r.GetU64();
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) lane().msg_recv[t] = r.GetU64();
    partner_recoveries_ = r.GetU64();
    queue_depth_hwm_ = static_cast<std::size_t>(r.GetU64());
    lane().events_dispatched = r.GetU64();
    lane().events_scheduled = r.GetU64();
    if (!GetHistogram(r, lane().hop_histogram)) return false;
    outage_seconds_ = r.GetDouble();
    crashes_ = r.GetU64();
    lane().messages_dropped = r.GetU64();
    request_timeouts_ = r.GetU64();
    retries_ = r.GetU64();
    lane().failover_episodes = r.GetU64();
    client_rejoins_ = r.GetU64();
    queries_succeeded_ = r.GetU64();
    lane().queries_failed = r.GetU64();
    if (!GetHistogram(r, recovery_latency_hist_)) return false;
    if (!GetHistogram(r, orphaned_clients_hist_)) return false;
    const bool saved_fault_active = r.GetBool();
    if (fault_active_) {
      client_current_cluster_ = r.GetU32Vector();
      const std::uint64_t num_lists = r.GetU64();
      std::vector<std::vector<std::uint32_t>> members;
      for (std::uint64_t i = 0; i < num_lists && r.ok(); ++i) {
        members.push_back(r.GetU32Vector());
      }
      cluster_members_ = std::move(members);
      orphaned_since_ = r.GetDoubleVector();
    }
    ttl_ = static_cast<int>(r.GetU32());
    const bool saved_adaptive = r.GetBool();
    if (adaptive_) {
      if (!adaptive_ctrl_->LoadFrom(r)) return false;
      adapt_in_bytes_ = r.GetDoubleVector();
      adapt_out_bytes_ = r.GetDoubleVector();
      adapt_units_ = r.GetDoubleVector();
      window_start_ = r.GetDouble();
      adapt_rounds_ = r.GetU64();
      adapt_splits_ = r.GetU64();
      adapt_coalesces_ = r.GetU64();
      adapt_edges_added_ = r.GetU64();
      adapt_ttl_decreases_ = r.GetU64();
      adapt_probes_sent_ = r.GetU64();
      adapt_reports_received_ = r.GetU64();
      adapt_client_moves_ = r.GetU64();
      adapt_demotions_ = r.GetU64();
      adapt_converged_ = r.GetBool();
      adapt_converged_round_ = r.GetU64();
    }
    const bool saved_routing = r.GetBool();
    if (routing_active_) {
      routing_digest_refreshes_ = r.GetU64();
      routing_suppressed_forwards_ = r.GetU64();
      routing_biased_hops_ = r.GetU64();
    }
    const bool saved_consistency = r.GetBool();
    if (consistency_active_) {
      GetRng(r, cons_rng_);
      cons_stale_ = r.GetDoubleVector();
      cons_replicas_ = r.GetDoubleVector();
      if (options_.consistency.scheme == ConsistencyScheme::kPullTtr) {
        for (std::size_t i = 0; i < n_ && r.ok(); ++i) {
          cons_pending_[i] = r.GetDoubleVector();
          cons_head_[i] = 0;
        }
      }
      consistency_changes_ = r.GetU64();
      consistency_stale_results_ = r.GetU64();
      consistency_fresh_results_ = r.GetU64();
      consistency_replica_records_ = r.GetU64();
      consistency_replica_served_ = r.GetU64();
      consistency_replication_bytes_ = r.GetDouble();
      if (!GetHistogram(r, freshness_hist_)) return false;
    }
    const bool saved_capacity = r.GetBool();
    if (capacity_active_) {
      cap_in_bytes_ = r.GetDoubleVector();
      cap_out_bytes_ = r.GetDoubleVector();
      cap_units_ = r.GetDoubleVector();
      cap_window_start_ = r.GetDouble();
      cap_overloaded_ = r.GetU8Vector();
      cap_windows_ = r.GetU64();
      cap_node_samples_ = r.GetU64();
      cap_over_samples_ = r.GetU64();
      cap_overload_episodes_ = r.GetU64();
      cap_sp_samples_ = r.GetU64();
      cap_sp_over_samples_ = r.GetU64();
      cap_util_sum_ = r.GetDouble();
      cap_sp_util_sum_ = r.GetDouble();
      if (!GetHistogram(r, cap_sp_util_hist_)) return false;
    }
    lane().measuring = lane().now >= options_.warmup_seconds;
    // A checkpoint from a scenario with a different fault/adaptation
    // layer, or vectors inconsistent with the reconstructed layout,
    // is rejected wholesale.
    const std::size_t total = num_partners_ + num_clients_;
    bool consistent = saved_fault_active == fault_active_ &&
                      saved_adaptive == adaptive_ &&
                      saved_routing == routing_active_ &&
                      saved_consistency == consistency_active_ &&
                      std::isfinite(lane().now) && lane().now >= 0.0 && ttl_ >= 0 &&
                      in_bytes_.size() == total &&
                      out_bytes_.size() == total && units_.size() == total &&
                      partner_alive_.size() == num_partners_ &&
                      alive_partners_.size() >= n_ && rr_.size() >= n_ &&
                      outage_start_.size() >= n_;
    if (fault_active_) {
      consistent = consistent &&
                   client_current_cluster_.size() == num_clients_ &&
                   orphaned_since_.size() == num_clients_ &&
                   cluster_members_.size() >= n_;
    }
    if (adaptive_) {
      consistent = consistent && adapt_in_bytes_.size() == total &&
                   adapt_out_bytes_.size() == total &&
                   adapt_units_.size() == total;
    }
    if (consistency_active_) {
      consistent = consistent && cons_stale_.size() == n_ &&
                   cons_replicas_.size() == n_;
    }
    consistent = consistent && saved_capacity == capacity_active_;
    if (capacity_active_) {
      consistent = consistent && cap_in_bytes_.size() == total &&
                   cap_out_bytes_.size() == total &&
                   cap_units_.size() == total &&
                   cap_overloaded_.size() == total &&
                   std::isfinite(cap_window_start_) && cap_window_start_ >= 0.0;
    }
    return r.ok() && consistent;
  }

 private:
  // --- Small helpers -------------------------------------------------------
  std::uint32_t TotalNodes() const {
    return static_cast<std::uint32_t>(num_partners_ + num_clients_);
  }
  bool IsPartner(std::uint32_t node) const { return node < num_partners_; }
  /// Role check under adaptation: a split promotes a client-range node
  /// to head and a coalesce resigns an original partner to an ordinary
  /// member, so role and node-id range diverge. Without adaptation the
  /// head role coincides with the partner range (bit-identical path).
  bool IsHeadRole(std::uint32_t node) const {
    return adaptive_ ? adaptive_ctrl_->IsHead(node) : IsPartner(node);
  }
  /// Liveness of a head node. Only original partner slots carry
  /// churn/crash state; promoted heads (client-range node ids) never
  /// fail — the fault clocks only tick for partner slots.
  bool HeadAlive(std::uint32_t node) const {
    return node < num_partners_ ? partner_alive_[node] != 0 : true;
  }
  std::size_t ClusterOf(std::uint32_t node) const {
    if (adaptive_) return adaptive_ctrl_->ClusterOfNode(node);
    if (IsPartner(node)) return node / k_;
    const std::uint32_t c = node - num_partners_;
    return fault_active_ ? client_current_cluster_[c] : client_cluster_[c];
  }
  /// The live head of `cluster` under adaptation; kSelfUpstream when
  /// the cluster is dead, headless, or its head is down.
  std::uint32_t LiveHeadOf(std::size_t cluster) const {
    const std::uint32_t head = adaptive_ctrl_->HeadOf(cluster);
    if (head == AdaptiveController::kNoHead || !HeadAlive(head)) {
      return kSelfUpstream;
    }
    return head;
  }
  /// True when a client of `cluster` has no live head to submit
  /// through (the discovery re-join trigger in SubmitWithFailover).
  bool ClusterUnreachable(std::size_t cluster) const {
    if (adaptive_) return LiveHeadOf(cluster) == kSelfUpstream;
    return alive_partners_[cluster] == 0;
  }
  double LifespanOf(std::uint32_t node) const {
    return IsPartner(node) ? inst_.partner_lifespan[node]
                           : inst_.client_lifespan[node - num_partners_];
  }
  double FilesOf(std::uint32_t node) const {
    return IsPartner(node)
               ? static_cast<double>(inst_.partner_files[node])
               : static_cast<double>(inst_.client_files[node - num_partners_]);
  }
  double MuxOf(std::uint32_t node) const {
    if (adaptive_) {
      // Open connections follow the live topology: a head multiplexes
      // its members plus its overlay neighbors; everyone else keeps
      // the single upstream connection.
      if (adaptive_ctrl_->IsHead(node)) {
        const std::size_t cluster = adaptive_ctrl_->ClusterOfNode(node);
        return inputs_.costs.MultiplexUnits(static_cast<double>(
            adaptive_ctrl_->MembersOf(cluster).size() +
            adaptive_ctrl_->NeighborsOf(cluster).size()));
      }
      return inputs_.costs.MultiplexUnits(client_conn_);
    }
    return inputs_.costs.MultiplexUnits(
        IsPartner(node) ? conn_[ClusterOf(node)] : client_conn_);
  }
  double ExpDelay(double rate) const {
    SPPNET_CHECK(rate > 0.0);
    // Inverse-CDF exponential; NextDouble() < 1 so log is finite.
    return -std::log(1.0 - ProtoRng().NextDouble()) / rate;
  }
  void ScheduleIn(double delay, std::uint32_t kind, std::uint32_t node,
                  std::uint64_t a = 0, std::uint64_t b = 0) {
    SimEvent e;
    e.time = lane().now + delay;
    e.kind = kind;
    e.node = node;
    e.a = a;
    e.b = b;
    if (disc_) {
      DiscSchedule(e);
      return;
    }
    queue_.Schedule(e);
    ++lane().events_scheduled;
    if (queue_.size() > queue_depth_hwm_) queue_depth_hwm_ = queue_.size();
  }

  /// Control kinds execute single-threaded at window barriers; data
  /// kinds run in the parallel phase on the shard owning their domain.
  static bool IsCtlKind(std::uint32_t kind) {
    switch (kind) {
      case kPartnerFail:
      case kPartnerRecover:
      case kPartnerCrash:
      case kRequestCheck:
      case kRetrySubmit:
      case kRejoinRequest:
      case kAdaptProbeTick:
      case kAdaptProbeArrive:
      case kAdaptReportArrive:
      case kAdaptRound:
      case kAdaptTtlArrive:
        return true;
      default:
        return false;
    }
  }

  /// Domain an event executes in: the addressed cluster for
  /// cluster-addressed kinds, the node's home domain otherwise.
  std::uint32_t DomainOfEvent(const SimEvent& e) const {
    switch (e.kind) {
      case kClusterQueryArrive:
      case kClusterWalkLaunch:
      case kClusterWalkArrive:
        return e.node;
      default:
        return HomeDomainOf(e.node);
    }
  }

  std::uint64_t NextCtr(std::uint32_t domain) {
    return domain == kShardCtlDomain ? ctl_ctr_++ : ctr_dom_[domain]++;
  }

  /// Sharded-discipline scheduling. The event key is derived from
  /// content (class, emitting domain, that domain's emission counter),
  /// never from global dispatch order, so the (time, key) total order
  /// is identical for every shard/thread count. Routing is
  /// domain-uniform: during the parallel phase a cross-DOMAIN data send
  /// always goes through the emitter's outbox and the barrier merge —
  /// even when both domains happen to live on the same shard — because
  /// `send_time + hop` can round an ulp below the multiplication-
  /// derived cell close, and whether that ulp is observable must not
  /// depend on the shard map. Same-domain sends insert directly into
  /// the emitter's own queue (the same shard in every configuration).
  void DiscSchedule(SimEvent e) {
    ++lane().events_scheduled;
    const std::uint32_t src = lane().cur_domain;
    if (IsCtlKind(e.kind)) {
      // Control executes at barriers: quantize UP to the grid so the
      // handler sees every data event before its cell close. Emission
      // counters keep barrier-mates in a deterministic order.
      e.time = GridCeil(e.time, cell_width_);
      e.seq = MakeShardEventKey(false, src, NextCtr(src));
      if (in_parallel_) {
        lane().ctl_outbox.push_back(e);
      } else {
        ctl_queue_->SchedulePreKeyed(e);
      }
      return;
    }
    e.seq = MakeShardEventKey(true, src, NextCtr(src));
    const std::uint32_t dom = DomainOfEvent(e);
    if (in_parallel_ && dom != src) {
      lane().outbox.push_back(e);
      return;
    }
    shard_queues_[dom % num_shards_].SchedulePreKeyed(e);
  }
  /// Delivery of an overlay message, through the fault layer: the
  /// message may be silently dropped or arrive late by a jittered
  /// amount. The sender's cost was already accounted — the bytes left
  /// its link either way. Control events (timers, checks) bypass this
  /// and use ScheduleIn directly; they are local, not messages.
  void Deliver(double delay, std::uint32_t kind, std::uint32_t node,
               std::uint64_t a = 0, std::uint64_t b = 0) {
    if (fault_active_) {
      if (injector_.ShouldDropDelivery(FaultRng())) {
        if (lane().measuring) ++lane().messages_dropped;
        return;
      }
      delay += injector_.DeliveryJitter(FaultRng());
    }
    ScheduleIn(delay, kind, node, a, b);
  }
  // The adapt_* window accumulators feed the next decision round's
  // measured loads; they accrue during warmup too — the adaptation
  // protocol observes all traffic, unlike the report accounting. The
  // cap_* accumulators behave the same way (utilization windows are
  // folded into the report only once fully past warmup).
  void AcctSend(std::uint32_t node, Msg msg, double bytes, double units) {
    if (adaptive_) {
      adapt_out_bytes_[node] += bytes;
      adapt_units_[node] += units;
    }
    if (capacity_active_) {
      cap_out_bytes_[node] += bytes;
      cap_units_[node] += units;
    }
    if (!lane().measuring) return;
    out_bytes_[node] += bytes;
    units_[node] += units;
    ++lane().msg_sent[static_cast<std::size_t>(msg)];
  }
  void AcctRecv(std::uint32_t node, Msg msg, double bytes, double units) {
    if (adaptive_) {
      adapt_in_bytes_[node] += bytes;
      adapt_units_[node] += units;
    }
    if (capacity_active_) {
      cap_in_bytes_[node] += bytes;
      cap_units_[node] += units;
    }
    if (!lane().measuring) return;
    in_bytes_[node] += bytes;
    units_[node] += units;
    ++lane().msg_recv[static_cast<std::size_t>(msg)];
  }
  void AcctProc(std::uint32_t node, double units) {
    if (adaptive_) adapt_units_[node] += units;
    if (capacity_active_) cap_units_[node] += units;
    if (!lane().measuring) return;
    units_[node] += units;
  }

  /// Round-robin choice of a live partner of `cluster`; returns
  /// kSelfUpstream if none is alive (message lost). Skipping a dead
  /// preferred slot is the k-redundancy failover in action; the fault
  /// layer counts those episodes.
  std::uint32_t PickPartner(std::size_t cluster) {
    if (adaptive_) return LiveHeadOf(cluster);  // Non-redundant clusters.
    bool preferred_dead = false;
    for (std::size_t attempt = 0; attempt < k_; ++attempt) {
      const std::size_t slot = (rr_[cluster]++) % k_;
      const auto node = static_cast<std::uint32_t>(cluster * k_ + slot);
      if (partner_alive_[node]) {
        if (preferred_dead && fault_active_ && lane().measuring) {
          ++lane().failover_episodes;
        }
        return node;
      }
      preferred_dead = true;
    }
    return kSelfUpstream;
  }

  // --- Query-state access, discipline-aware ---------------------------------
  // A sharded run cannot use SimState: the dense backend is keyed by
  // globally sequential qids (its retirement floor and slot growth
  // assume them) while disc qids are per-user. The wrappers below
  // route to per-domain FlatMap64 containers instead, each touched
  // only by the shard owning the domain (or by the single-threaded
  // control phase).

  /// Mints a query id: globally sequential in legacy runs, per-user
  /// (user << 32 | counter) under the discipline so every shard mints
  /// ids without coordination and ids are shard-count-invariant.
  std::uint64_t MakeQid(std::uint32_t user) {
    if (!disc_) return next_qid_++;
    return (static_cast<std::uint64_t>(user) << 32) |
           static_cast<std::uint64_t>(user_qid_ctr_[user]++);
  }
  /// Home domain of a disc qid's owner (disc qids embed the user).
  std::uint32_t DomainOfQid(std::uint64_t qid) const {
    return HomeDomainOf(static_cast<std::uint32_t>(qid >> 32));
  }

  bool MarkSeenW(std::size_t cluster, std::uint64_t qid,
                 std::uint32_t upstream) {
    if (!disc_) return state_.MarkSeen(cluster, qid, upstream);
    const auto [slot, inserted] = disc_dup_[cluster].FindOrInsert(qid);
    if (inserted) *slot = upstream;
    return inserted;
  }
  const std::uint32_t* UpstreamW(std::size_t cluster,
                                 std::uint64_t qid) const {
    if (!disc_) return state_.Upstream(cluster, qid);
    return disc_dup_[cluster].Find(qid);
  }
  QueryState& ClaimW(std::uint64_t qid) {
    if (!disc_) return state_.Claim(qid);
    const auto [slot, inserted] = disc_state_[DomainOfQid(qid)].FindOrInsert(qid);
    SPPNET_CHECK_MSG(inserted, "duplicate disc qid claim");
    *slot = QueryState{};
    return *slot;
  }
  QueryState* FindW(std::uint64_t qid) {
    if (!disc_) return state_.Find(qid);
    return disc_state_[DomainOfQid(qid)].Find(qid);
  }
  void SetRootW(std::uint64_t qid, std::uint64_t root) {
    if (!disc_) {
      state_.SetRoot(qid, root);
      return;
    }
    if (qid == root) return;  // RootOfW defaults to identity.
    *disc_root_[DomainOfQid(qid)].FindOrInsert(qid).first = root;
  }
  std::uint64_t RootOfW(std::uint64_t qid) const {
    if (!disc_) return state_.RootOf(qid);
    const std::uint64_t* root = disc_root_[DomainOfQid(qid)].Find(qid);
    return root == nullptr ? qid : *root;
  }

  // --- Dispatch -------------------------------------------------------------
  void Dispatch(const SimEvent& e) {
    switch (e.kind) {
      case kQuerySubmit:
        OnQuerySubmit(e.node);
        break;
      case kQueryArrive:
        OnQueryArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                      static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                      static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kResponseArrive:
        OnResponseArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                         static_cast<std::uint32_t>((e.b >> 16) & 0xffffu),
                         static_cast<std::uint32_t>(e.b & 0xffffu));
        break;
      case kJoinSubmit:
        OnJoinSubmit(e.node);
        break;
      case kJoinArrive:
        OnJoinArrive(e.node, static_cast<std::uint32_t>(e.a), e.x);
        break;
      case kUpdateSubmit:
        OnUpdateSubmit(e.node);
        break;
      case kUpdateArrive:
        OnUpdateArrive(e.node, static_cast<std::uint32_t>(e.a));
        break;
      case kPartnerFail:
        OnPartnerFail(e.node);
        break;
      case kPartnerRecover:
        OnPartnerRecover(e.node, /*churn_origin=*/e.a != 0);
        break;
      case kPartnerCrash:
        OnPartnerCrash(e.node);
        break;
      case kRequestCheck:
        OnRequestCheck(e.node, e.a, static_cast<std::uint32_t>(e.b));
        break;
      case kRetrySubmit:
        OnRetrySubmit(e.node, e.a, static_cast<std::uint32_t>(e.b));
        break;
      case kWalkArrive:
        OnWalkArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                     static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                     static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kRingCheck:
        OnRingCheck(e.a);
        break;
      case kAdaptProbeTick:
        OnAdaptProbeTick();
        break;
      case kAdaptProbeArrive:
        OnAdaptProbeArrive(e.node, static_cast<std::uint32_t>(e.a));
        break;
      case kAdaptReportArrive:
        OnAdaptReportArrive(e.node, static_cast<std::uint32_t>(e.a), e.b);
        break;
      case kAdaptRound:
        OnAdaptRound();
        break;
      case kAdaptTtlArrive:
        OnAdaptTtlArrive(e.node);
        break;
      case kTraceQuerySubmit:
        SubmitQueryNow(e.node);
        break;
      case kClusterQueryArrive:
        OnClusterQueryArrive(e.node, e.a,
                             static_cast<std::uint32_t>(e.b >> 32),
                             static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                             static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kClusterWalkLaunch:
        OnClusterWalkLaunch(e.node, e.a,
                            static_cast<std::uint32_t>(e.b >> 32),
                            static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu));
        break;
      case kClusterWalkArrive:
        OnClusterWalkArrive(e.node, e.a,
                            static_cast<std::uint32_t>(e.b >> 32),
                            static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                            static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kRejoinRequest:
        OnRejoinRequest(e.node);
        break;
      case kDigestRefresh:
        OnDigestRefresh();
        break;
      case kMetadataChange:
        OnMetadataChange(e.node);
        break;
      case kInvalidateArrive:
        OnInvalidateArrive(e.node, BitsTime(e.a));
        break;
      case kRefreshPollTick:
        OnRefreshPollTick(e.node);
        break;
      case kRefreshReplyArrive:
        OnRefreshReplyArrive(e.node, BitsTime(e.a));
        break;
      case kCapacityWindow:
        OnCapacityWindow();
        break;
      default:
        SPPNET_CHECK_MSG(false, "unknown event kind");
    }
  }

  // --- Queries ---------------------------------------------------------------
  // Per-user-query bookkeeping (QueryState, keyed by root qid) lives in
  // SimState (sim/sim_state.h); expanding-ring / retry qids map back to
  // their root through it.

  void OnQuerySubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(config_.query_rate), kQuerySubmit, user);
    SubmitQueryNow(user);
  }

  /// The submission body shared by the Poisson clock (kQuerySubmit) and
  /// trace replay (kTraceQuerySubmit): everything OnQuerySubmit did
  /// except rescheduling the clock.
  void SubmitQueryNow(std::uint32_t user) {
    if (IsHeadRole(user) && !HeadAlive(user)) return;
    const auto query_class =
        static_cast<std::uint32_t>(inputs_.query_model.SampleQueryClass(ProtoRng()));
    if (options_.concrete_index) {
      // Reserve the qid now so the sampled keyword string is in place
      // before any cluster matches it (the switch below consumes ids in
      // order).
      state_.SetQueryString(next_qid_, corpus_->SampleQuery(ProtoRng()));
    }

    switch (options_.strategy) {
      // Routed flood shares the flood submission path: the digest
      // pruning lives entirely in the forward loop (OnQueryArrive),
      // and Validate() rejects the result cache for routed runs.
      case SearchStrategy::kFlood:
      case SearchStrategy::kRoutedFlood: {
        const std::uint64_t qid = MakeQid(user);
        if (options_.result_cache_ttl_seconds > 0.0) {
          if (TryAnswerFromCache(user, qid, query_class)) {
            // A cache-served query trivially succeeded.
            if (recovery_enabled_ && lane().measuring) ++queries_succeeded_;
            return;
          }
          if (lane().measuring) ++cache_misses_;
        }
        if (!SubmitWithFailover(user, qid, query_class,
                                static_cast<std::uint32_t>(ttl_ + 1))) {
          // No live partner anywhere: the query cannot be routed.
          if (recovery_enabled_ && lane().measuring) ++lane().queries_failed;
          return;
        }
        RecordSubmission(qid, user, query_class, 0);
        if (recovery_enabled_) {
          ScheduleIn(injector_.plan().request_timeout_seconds, kRequestCheck,
                     user, qid, /*retries_used=*/0);
        }
        break;
      }
      case SearchStrategy::kExpandingRing: {
        const std::uint64_t qid = MakeQid(user);
        if (!SubmitToOwnCluster(user, qid, query_class, 2)) return;  // Ring 1.
        RecordSubmission(qid, user, query_class, 1);
        ScheduleRingCheck(qid, 1, user);
        break;
      }
      // The digest-biased walker shares the walk submission path: the
      // bias lives entirely in the next-hop choice (NextWalkPartner).
      case SearchStrategy::kRandomWalk:
      case SearchStrategy::kWalker: {
        const std::uint64_t qid = MakeQid(user);
        if (!LaunchWalks(user, qid, query_class)) return;
        RecordSubmission(qid, user, query_class, 0);
        break;
      }
    }
  }

  void RecordSubmission(std::uint64_t qid, std::uint32_t user,
                        std::uint32_t query_class, std::uint32_t ring_ttl) {
    if (lane().measuring) ++lane().queries_submitted;
    QueryState& state = ClaimW(qid);
    state.user = user;
    state.query_class = query_class;
    state.ring_ttl = ring_ttl;
    state.submit_time = lane().now;
    state.cache_key = CacheKey(qid, query_class);
    SetRootW(qid, qid);
  }

  // --- Source-side result cache (flood strategy) -----------------------------

  /// Identity of a query for caching: its class in abstract mode, the
  /// hash of its keyword string in concrete mode.
  std::uint64_t CacheKey(std::uint64_t qid, std::uint32_t query_class) const {
    if (options_.concrete_index) {
      std::uint64_t hash = 0;
      if (state_.QueryStringHash(qid, &hash)) return hash;
    }
    return query_class;
  }

  /// If this cluster flooded the same query recently, answer from the
  /// cached aggregate result set: one submission hop and one response —
  /// no flood, no remote work. Returns true when the query was served.
  bool TryAnswerFromCache(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class) {
    const std::size_t cluster = ClusterOf(user);
    const std::uint64_t key = CacheKey(qid, query_class);
    const QueryCacheEntry* found = state_.FindCacheEntry(cluster, key);
    if (found == nullptr || found->expires < lane().now || found->results <= 0.0) {
      return false;
    }
    const QueryCacheEntry& entry = *found;
    if (lane().measuring) {
      ++lane().queries_submitted;
      ++cache_hits_;
      ++lane().responses_delivered;
      lane().results_sum += entry.results;
      ++lane().first_responses;
    }
    const auto results = static_cast<std::uint32_t>(entry.results);
    const auto addrs = static_cast<std::uint32_t>(entry.addrs);
    const double response_bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    if (IsPartner(user)) {
      // The partner answers its own user locally: no messages.
      return true;
    }
    const std::uint32_t partner = PickPartner(cluster);
    if (partner == kSelfUpstream) return true;  // Disconnected anyway.
    // Submission hop + cached response back to the client.
    AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
    AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    AcctSend(partner, Msg::kResponse, response_bytes,
             inputs_.costs.SendResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(partner));
    AcctRecv(user, Msg::kResponse, response_bytes,
             inputs_.costs.RecvResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(user));
    if (lane().measuring) {
      latency_sum_ += 2.0 * options_.hop_latency_seconds;
    }
    return true;
  }

  /// Accumulates a delivered response into the source cluster's cache.
  void PopulateCache(const QueryState& state, std::uint64_t root,
                     std::uint32_t results, std::uint32_t addrs) {
    if (options_.result_cache_ttl_seconds <= 0.0 ||
        options_.strategy != SearchStrategy::kFlood) {
      return;
    }
    QueryCacheEntry& entry =
        state_.CacheEntrySlot(ClusterOf(state.user), state.cache_key);
    if (entry.expires < lane().now) {
      // Fresh (or expired) entry: restart accumulation for this query.
      entry.results = 0.0;
      entry.addrs = 0.0;
      entry.expires = lane().now + options_.result_cache_ttl_seconds;
      entry.owner = root;
    }
    if (entry.owner != root) return;  // A concurrent flood already owns it.
    entry.results += static_cast<double>(results);
    entry.addrs += static_cast<double>(addrs);
  }

  /// Routes a query (with the given hop budget) into the submitting
  /// user's own cluster: directly for a partner-user, via the
  /// round-robin submission hop for a client. Returns false if the
  /// cluster is unreachable (churn).
  bool SubmitToOwnCluster(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class, std::uint32_t ttl) {
    // The source super-peer floods with the full TTL, so the submission
    // hop carries TTL+1: every OnQueryArrive forwards with ttl-1, and a
    // node at depth d therefore holds TTL+1-d, forwarding while d < TTL —
    // exactly the paper's semantics (nodes at depth == TTL do not
    // forward).
    if (IsHeadRole(user)) {
      OnQueryArrive(user, qid, kSelfUpstream, query_class, ttl);
      return true;
    }
    if (disc_ && !adaptive_) {
      // The round-robin pick mutates the target cluster's rr_ slot, so
      // it must run on the shard owning that cluster: address the
      // message to the cluster and resolve the partner at the receiver.
      // (Adaptive stays node-addressed: its pick is LiveHeadOf, a pure
      // read of controller state frozen for the window.)
      const std::size_t cluster = ClusterOf(user);
      if (ClusterUnreachable(cluster)) return false;  // Disconnected.
      AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kClusterQueryArrive,
              static_cast<std::uint32_t>(cluster), qid,
              PackQuery(user, query_class, ttl));
      return true;
    }
    const std::uint32_t target = PickPartner(ClusterOf(user));
    if (target == kSelfUpstream) return false;  // Disconnected.
    AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
    Deliver(options_.hop_latency_seconds, kQueryArrive, target, qid,
            PackQuery(user, query_class, ttl));
    return true;
  }

  /// SubmitToOwnCluster with fault-mode recovery: a client whose whole
  /// cluster is down first re-joins a surviving cluster via the
  /// bootstrap discovery service; only when no cluster in the network
  /// has a live partner does the submission fail.
  bool SubmitWithFailover(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class, std::uint32_t ttl) {
    if (fault_active_ && !IsHeadRole(user) &&
        ClusterUnreachable(ClusterOf(user))) {
      if (disc_ && in_parallel_) {
        // The re-join mutates global membership (current-cluster map,
        // discovery stream) — control work. Defer it to the barrier;
        // this query is lost, as in any all-partners-down episode.
        ScheduleIn(options_.hop_latency_seconds, kRejoinRequest, user);
        return false;
      }
      if (!RejoinViaDiscovery(user)) return false;
    }
    return SubmitToOwnCluster(user, qid, query_class, ttl);
  }

  // --- Expanding ring ---------------------------------------------------------
  void ScheduleRingCheck(std::uint64_t root, std::uint32_t ring_ttl,
                         std::uint32_t user) {
    // Allow one round trip across the ring plus slack before judging.
    const double wait =
        (2.0 * static_cast<double>(ring_ttl) + 3.0) *
        options_.hop_latency_seconds;
    // kRingCheck is a data event: under the discipline it carries the
    // submitting user so it executes on the shard owning the query
    // state. Legacy keeps node 0 for checkpoint byte-identity.
    ScheduleIn(wait, kRingCheck, disc_ ? user : 0, root);
  }

  void OnRingCheck(std::uint64_t root) {
    QueryState* found = FindW(root);
    if (found == nullptr) return;
    QueryState& state = *found;
    const bool satisfied =
        state.ring_results >=
        static_cast<double>(options_.ring_satisfaction_results);
    const bool exhausted =
        state.ring_ttl >= static_cast<std::uint32_t>(config_.ttl);
    if (satisfied || exhausted) {
      FinishRingQuery(state);
      return;
    }
    // Grow the ring: a fresh flood with a larger TTL (naive iterative
    // deepening re-queries the inner rings; that cost is intrinsic to
    // the technique and shows up in the measurements).
    if (IsPartner(state.user) && !partner_alive_[state.user]) {
      FinishRingQuery(state);
      return;
    }
    const std::uint64_t retry_qid = MakeQid(state.user);
    if (options_.concrete_index) {
      // The retry re-issues the same keyword string under a fresh qid.
      state_.ShareQueryString(root, retry_qid);
    }
    state.ring_ttl += 1;
    state.ring_results = 0.0;
    SetRootW(retry_qid, root);
    if (!SubmitToOwnCluster(state.user, retry_qid, state.query_class,
                            state.ring_ttl + 1)) {
      FinishRingQuery(state);
      return;
    }
    ScheduleRingCheck(root, state.ring_ttl, state.user);
  }

  void FinishRingQuery(const QueryState& state) {
    if (lane().measuring) {
      lane().results_sum += state.ring_results;
      lane().rings_sum += static_cast<double>(state.ring_ttl);
      ++lane().ring_queries_finished;
    }
  }

  // --- Random walks -------------------------------------------------------------
  bool LaunchWalks(std::uint32_t user, std::uint64_t qid,
                   std::uint32_t query_class) {
    const std::size_t cluster = ClusterOf(user);
    if (disc_ && !adaptive_) {
      if (IsPartner(user)) {
        OnQueryArrive(user, qid, kSelfUpstream, query_class, 1);
        LaunchWalkersFrom(user, cluster, qid, query_class);
        return true;
      }
      if (ClusterUnreachable(cluster)) return false;
      AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
      // The walkers launch at the receiving cluster once the submission
      // hop resolves a live source partner there (kClusterWalkLaunch).
      Deliver(options_.hop_latency_seconds, kClusterWalkLaunch,
              static_cast<std::uint32_t>(cluster), qid,
              PackQuery(user, query_class, 1));
      return true;
    }
    // The source cluster always processes the query itself.
    std::uint32_t source_partner;
    if (IsPartner(user)) {
      source_partner = user;
      OnQueryArrive(user, qid, kSelfUpstream, query_class, 1);
    } else {
      source_partner = PickPartner(cluster);
      if (source_partner == kSelfUpstream) return false;
      AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kQueryArrive, source_partner,
              qid, PackQuery(user, query_class, 1));
    }
    // Launch the walkers from the source partner.
    for (std::uint32_t w = 0; w < options_.num_walkers; ++w) {
      const std::uint32_t target = NextWalkPartner(cluster, query_class);
      if (target == kSelfUpstream) break;
      AcctSend(source_partner, Msg::kQuery, qbytes_,
               sendq_ + MuxOf(source_partner));
      Deliver(options_.hop_latency_seconds, kWalkArrive, target, qid,
              PackQuery(source_partner, query_class,
                        options_.walk_ttl & 0xffu));
    }
    return true;
  }

  /// Disc walk forwarding: the neighbor-cluster draw happens in the
  /// emitting domain's stream; the partner pick inside the neighbor is
  /// resolved on the neighbor's own shard (kClusterWalkArrive).
  /// kNoCluster when `cluster` has no neighbors.
  static constexpr std::size_t kNoCluster = static_cast<std::size_t>(-1);
  std::size_t RandomNeighborCluster(std::size_t cluster) {
    if (inst_.topology.is_complete()) {
      if (n_ <= 1) return kNoCluster;
      std::size_t neighbor;
      do {
        neighbor = ProtoRng().NextBounded(n_);
      } while (neighbor == cluster);
      return neighbor;
    }
    const auto nbrs =
        inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster));
    if (nbrs.empty()) return kNoCluster;
    return nbrs[ProtoRng().NextBounded(nbrs.size())];
  }

  void LaunchWalkersFrom(std::uint32_t source_partner, std::size_t cluster,
                         std::uint64_t qid, std::uint32_t query_class) {
    for (std::uint32_t w = 0; w < options_.num_walkers; ++w) {
      const std::size_t target = RandomNeighborCluster(cluster);
      if (target == kNoCluster) break;
      AcctSend(source_partner, Msg::kQuery, qbytes_,
               sendq_ + MuxOf(source_partner));
      Deliver(options_.hop_latency_seconds, kClusterWalkArrive,
              static_cast<std::uint32_t>(target), qid,
              PackQuery(source_partner, query_class,
                        options_.walk_ttl & 0xffu));
    }
  }

  /// A uniformly random live partner of a random neighbor of `cluster`;
  /// kSelfUpstream if the cluster has no neighbors.
  std::uint32_t RandomNeighborPartner(std::size_t cluster) {
    std::size_t neighbor;
    if (inst_.topology.is_complete()) {
      if (n_ <= 1) return kSelfUpstream;
      do {
        neighbor = ProtoRng().NextBounded(n_);
      } while (neighbor == cluster);
    } else {
      const auto nbrs =
          inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster));
      if (nbrs.empty()) return kSelfUpstream;
      neighbor = nbrs[ProtoRng().NextBounded(nbrs.size())];
    }
    return PickPartner(neighbor);
  }

  void OnWalkArrive(std::uint32_t partner, std::uint64_t qid,
                    std::uint32_t source_partner, std::uint32_t query_class,
                    std::uint32_t ttl) {
    if (!partner_alive_[partner]) return;
    AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    const std::size_t cluster = ClusterOf(partner);
    // Process only on the cluster's first visit; revisit hops keep
    // walking but do not re-query the index.
    const bool fresh = MarkSeenW(cluster, qid, source_partner);
    if (fresh) {
      const auto [results, addrs] = MatchQuery(cluster, qid, query_class);
      AcctProc(partner,
               inputs_.costs.ProcessQueryUnits(static_cast<double>(results)));
      if (results > 0) {
        // Walk responses return directly to the source partner (as in
        // Lv et al.'s random-walk systems) rather than retracing the
        // whole walk; hops=1 reflects the direct connection.
        const double bytes = inputs_.costs.ResponseBytes(
            static_cast<double>(addrs), static_cast<double>(results));
        AcctSend(partner, Msg::kResponse, bytes,
                 inputs_.costs.SendResponseUnits(
                     static_cast<double>(addrs),
                     static_cast<double>(results)) +
                     MuxOf(partner));
        Deliver(options_.hop_latency_seconds, kResponseArrive,
                source_partner, qid, PackResponse(results, addrs, 1));
      }
    } else if (lane().measuring) {
      ++lane().duplicate_queries;
    }
    if (ttl <= 1) return;
    if (disc_ && !adaptive_) {
      const std::size_t next = RandomNeighborCluster(cluster);
      if (next == kNoCluster) return;
      AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
      Deliver(options_.hop_latency_seconds, kClusterWalkArrive,
              static_cast<std::uint32_t>(next), qid,
              PackQuery(source_partner, query_class, ttl - 1));
      return;
    }
    const std::uint32_t next = NextWalkPartner(cluster, query_class);
    if (next == kSelfUpstream) return;
    AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
    Deliver(options_.hop_latency_seconds, kWalkArrive, next, qid,
            PackQuery(source_partner, query_class, ttl - 1));
  }

  /// Next-hop partner for a walk leaving `cluster`: uniform over the
  /// neighbors (kRandomWalk), or — under kWalker — uniform over the
  /// digest-positive neighbors, falling back to the uniform choice when
  /// no neighbor's digest reports the class (the walk keeps exploring
  /// rather than dying on a content-free horizon).
  std::uint32_t NextWalkPartner(std::size_t cluster,
                                std::uint32_t query_class) {
    if (options_.strategy != SearchStrategy::kWalker) {
      return RandomNeighborPartner(cluster);
    }
    walk_scratch_.clear();
    if (inst_.topology.is_complete()) {
      for (std::size_t w = 0; w < n_; ++w) {
        if (w != cluster && routing_->DestMayLead(
                                static_cast<std::uint32_t>(w), query_class)) {
          walk_scratch_.push_back(static_cast<std::uint32_t>(w));
        }
      }
    } else {
      const auto nbrs =
          inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster));
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (routing_->EdgeMayLead(static_cast<std::uint32_t>(cluster), i,
                                  query_class)) {
          walk_scratch_.push_back(nbrs[i]);
        }
      }
    }
    if (walk_scratch_.empty()) return RandomNeighborPartner(cluster);
    if (lane().measuring) ++routing_biased_hops_;
    const std::uint32_t next = walk_scratch_[ProtoRng().NextBounded(
        walk_scratch_.size())];
    return PickPartner(next);
  }

  void OnQueryArrive(std::uint32_t partner, std::uint64_t qid,
                     std::uint32_t upstream, std::uint32_t query_class,
                     std::uint32_t ttl) {
    // Messages in flight across a role change (the target resigned) or
    // to a dead head are lost.
    if (!IsHeadRole(partner) || !HeadAlive(partner)) return;
    if (upstream != kSelfUpstream) {
      AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    }
    const std::size_t cluster = ClusterOf(partner);
    const bool fresh = MarkSeenW(cluster, qid, upstream);
    if (!fresh) {
      if (lane().measuring) ++lane().duplicate_queries;
      return;  // Duplicate: received, then dropped.
    }

    // Process over the cluster index.
    const auto [results, addrs] = MatchQuery(cluster, qid, query_class);
    AcctProc(partner, inputs_.costs.ProcessQueryUnits(
                          static_cast<double>(results)));
    std::uint32_t total_results = results;
    if (consistency_active_) {
      // Stale/fresh classification of the index-matched results, plus
      // extra fresh results served from the replica store. Both draw
      // from the consistency stream only, so the flood itself is
      // untouched.
      if (results > 0) ClassifyStale(cluster, results);
      total_results += ReplicaServe(cluster, query_class);
    }
    if (total_results > 0) {
      SendResponse(partner, upstream, qid, total_results, addrs, /*hops=*/0);
    }
    if (consistency_active_ && results > 0 &&
        options_.consistency.replication.enabled()) {
      ReplicatePush(cluster, partner, qid, results);
    }

    // Forward with decremented TTL on every connection except the one
    // the query arrived on.
    if (ttl <= 1) return;
    const std::size_t exclude =
        (upstream != kSelfUpstream && IsHeadRole(upstream))
            ? ClusterOf(upstream)
            : static_cast<std::size_t>(-1);
    const auto forward = [&](std::size_t neighbor) {
      if (neighbor == exclude) return;
      if (disc_ && !adaptive_) {
        // An all-dead neighbor is skipped sender-side (legacy learns
        // the same from PickPartner); a live one gets the message with
        // the partner pick resolved on the neighbor's shard.
        if (alive_partners_[neighbor] == 0) return;
        AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
        Deliver(options_.hop_latency_seconds, kClusterQueryArrive,
                static_cast<std::uint32_t>(neighbor), qid,
                PackQuery(partner, query_class, ttl - 1));
        return;
      }
      const std::uint32_t target = PickPartner(neighbor);
      if (target == kSelfUpstream) return;
      AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
      Deliver(options_.hop_latency_seconds, kQueryArrive, target, qid,
              PackQuery(partner, query_class, ttl - 1));
    };
    if (adaptive_) {
      // The live overlay: rule II edges come and go, so neighbors are
      // the controller's, not the instance topology's.
      for (const std::uint32_t w : adaptive_ctrl_->NeighborsOf(cluster)) {
        forward(w);
      }
    } else if (inst_.topology.is_complete()) {
      for (std::size_t w = 0; w < n_; ++w) {
        if (w == cluster) continue;
        // Content-aware pruning: skip edges whose digest reports the
        // class unreachable. The suppressed tally excludes the arrival
        // edge — flood would not have forwarded there either.
        if (routing_active_ &&
            !routing_->DestMayLead(static_cast<std::uint32_t>(w),
                                   query_class)) {
          if (w != exclude && lane().measuring) {
            ++routing_suppressed_forwards_;
          }
          continue;
        }
        forward(w);
      }
    } else {
      const auto nbrs =
          inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster));
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (routing_active_ &&
            !routing_->EdgeMayLead(static_cast<std::uint32_t>(cluster), i,
                                   query_class)) {
          if (nbrs[i] != exclude && lane().measuring) {
            ++routing_suppressed_forwards_;
          }
          continue;
        }
        forward(nbrs[i]);
      }
    }
  }

  // --- Cluster-addressed deliveries (sharded discipline) ---------------------
  // A cluster-addressed message carries the cluster id and resolves the
  // round-robin partner pick on the shard owning that cluster, so every
  // rr_ slot stays single-writer. A cluster whose partners all died
  // while the message was in flight drops it, exactly as a
  // node-addressed message to a dead partner is dropped.

  void OnClusterQueryArrive(std::size_t cluster, std::uint64_t qid,
                            std::uint32_t upstream, std::uint32_t query_class,
                            std::uint32_t ttl) {
    const std::uint32_t target = PickPartner(cluster);
    if (target == kSelfUpstream) return;
    OnQueryArrive(target, qid, upstream, query_class, ttl);
  }

  void OnClusterWalkLaunch(std::size_t cluster, std::uint64_t qid,
                           std::uint32_t user, std::uint32_t query_class) {
    const std::uint32_t source = PickPartner(cluster);
    if (source == kSelfUpstream) return;
    OnQueryArrive(source, qid, user, query_class, 1);
    LaunchWalkersFrom(source, cluster, qid, query_class);
  }

  void OnClusterWalkArrive(std::size_t cluster, std::uint64_t qid,
                           std::uint32_t source_partner,
                           std::uint32_t query_class, std::uint32_t ttl) {
    const std::uint32_t target = PickPartner(cluster);
    if (target == kSelfUpstream) return;
    OnWalkArrive(target, qid, source_partner, query_class, ttl);
  }

  /// Control-phase completion of a parallel-phase failover: the re-join
  /// mutates global membership, so SubmitWithFailover deferred it to
  /// the barrier. Re-checks the trigger — the cluster may have
  /// recovered, or the client may already have been moved.
  void OnRejoinRequest(std::uint32_t user) {
    if (IsHeadRole(user)) return;
    if (!fault_active_ || !ClusterUnreachable(ClusterOf(user))) return;
    RejoinViaDiscovery(user);
  }

  /// Determines (results, addresses) for a query over a cluster's
  /// index: against the real inverted index in concrete mode, or by
  /// sampling from the Appendix-B query model otherwise.
  std::pair<std::uint32_t, std::uint32_t> MatchQuery(
      std::size_t cluster, std::uint64_t qid, std::uint32_t query_class) {
    if (options_.concrete_index) {
      const std::string* text = state_.QueryString(qid);
      if (text == nullptr) return {0, 0};
      const QueryResult qr = indexes_[cluster].Query(*text);
      return {static_cast<std::uint32_t>(qr.hits.size()),
              static_cast<std::uint32_t>(qr.distinct_owners)};
    }
    const double f = inputs_.query_model.SelectionPower(query_class);
    const double indexed = adaptive_ ? adaptive_ctrl_->FilesSum(cluster)
                                     : inst_.indexed_files[cluster];
    // Routed runs match against the persistent content realization —
    // the same pure function the digests were built from — so a pruned
    // edge provably led to zero results (modulo the digest's radius
    // horizon and Bloom false positives). Non-routed runs keep the
    // per-query resampling semantics.
    const std::uint32_t results =
        routing_active_
            ? RoutedMatchCount(inputs_.query_model, indexed, options_.seed,
                               static_cast<std::uint32_t>(cluster),
                               query_class)
            : SampleBinomialApprox(indexed, f, ProtoRng());
    if (results == 0) return {0, 0};
    return {results, SampleAddrs(cluster, f)};
  }

  // --- Content-aware routing (index/routing_index.h) -------------------------

  /// First live partner slot of `cluster`, without touching the
  /// round-robin cursor (digest announcements must not perturb query
  /// routing); kSelfUpstream when the cluster is dark.
  std::uint32_t FirstLivePartner(std::size_t cluster) const {
    for (std::size_t slot = 0; slot < k_; ++slot) {
      const auto node = static_cast<std::uint32_t>(cluster * k_ + slot);
      if (partner_alive_[node]) return node;
    }
    return kSelfUpstream;
  }

  /// Periodic digest re-announcement round: every super-peer re-sends
  /// its current digest to each overlay neighbor. The realized table is
  /// static (the content realization does not drift), so the round is
  /// pure control-plane cost — one DigestAnnounce per directed edge,
  /// priced through CostTable::DigestAnnounceBytes like the adaptation
  /// control messages.
  void OnDigestRefresh() {
    ScheduleIn(options_.routing.refresh_interval_seconds, kDigestRefresh, 0);
    if (lane().measuring) ++routing_digest_refreshes_;
    const auto announce = [&](std::size_t u, std::size_t w) {
      const std::uint32_t from = FirstLivePartner(u);
      const std::uint32_t to = FirstLivePartner(w);
      if (from == kSelfUpstream || to == kSelfUpstream) return;
      AcctSend(from, Msg::kDigest, digest_bytes_, send_ctl_ + MuxOf(from));
      AcctRecv(to, Msg::kDigest, digest_bytes_, recv_ctl_ + MuxOf(to));
    };
    if (inst_.topology.is_complete()) {
      for (std::size_t u = 0; u < n_; ++u) {
        for (std::size_t w = 0; w < n_; ++w) {
          if (w != u) announce(u, w);
        }
      }
      return;
    }
    for (std::size_t u = 0; u < n_; ++u) {
      for (const NodeId w :
           inst_.topology.graph().Neighbors(static_cast<NodeId>(u))) {
        announce(u, w);
      }
    }
  }

  // --- Index consistency & replication (model/consistency.h) -----------------
  // Only clients mutate metadata; the per-cluster stale tallies and the
  // pull-scheme pending-change FIFOs are the entire protocol state.
  // Every random decision (change clocks, stale classification, replica
  // serving) draws from the dedicated cons_rng_ stream, so the protocol
  // event stream of a consistency run with replication disabled is
  // identical to the plain flood run plus the maintenance plane.

  double ConsExpDelay() {
    return -std::log(1.0 - cons_rng_.NextDouble()) /
           options_.consistency.change_rate_per_client;
  }

  /// Current stale records of `cluster`: the pull FIFO's unpopped
  /// suffix, or the push/none counter.
  double StaleCount(std::size_t cluster) const {
    if (options_.consistency.scheme == ConsistencyScheme::kPullTtr) {
      return static_cast<double>(cons_pending_[cluster].size() -
                                 cons_head_[cluster]);
    }
    return cons_stale_[cluster];
  }

  /// Probability a result delivered from `cluster` is stale: the stale
  /// fraction of its index, capped at 1 (the kNone scheme accumulates
  /// staleness without bound).
  double StaleFraction(std::size_t cluster) const {
    const double files = inst_.indexed_files[cluster];
    if (files <= 0.0) return 0.0;
    return std::min(StaleCount(cluster), files) / files;
  }

  void OnMetadataChange(std::uint32_t client_node) {
    ScheduleIn(ConsExpDelay(), kMetadataChange, client_node);
    if (lane().measuring) ++consistency_changes_;
    const std::size_t cluster = ClusterOf(client_node);
    switch (options_.consistency.scheme) {
      case ConsistencyScheme::kPushInvalidate: {
        cons_stale_[cluster] += 1.0;
        const std::uint32_t target = FirstLivePartner(cluster);
        if (target == kSelfUpstream) break;  // Membership is static.
        AcctSend(client_node, Msg::kInvalidate, invalidate_bytes_,
                 send_ctl_ + MuxOf(client_node));
        Deliver(options_.hop_latency_seconds, kInvalidateArrive, target,
                TimeBits(lane().now));
        break;
      }
      case ConsistencyScheme::kPullTtr:
        cons_pending_[cluster].push_back(lane().now);
        break;
      case ConsistencyScheme::kNone:
        cons_stale_[cluster] += 1.0;
        break;
    }
  }

  void OnInvalidateArrive(std::uint32_t partner, double change_time) {
    AcctRecv(partner, Msg::kInvalidate, invalidate_bytes_,
             recv_ctl_ + MuxOf(partner));
    const std::size_t cluster = ClusterOf(partner);
    if (cons_stale_[cluster] > 0.0) cons_stale_[cluster] -= 1.0;
    if (lane().measuring) {
      freshness_hist_.Observe(lane().now - change_time);
    }
  }

  /// One pull poll round: the super-peer polls every client of its
  /// cluster; the batched replies arrive a poll + reply hop later and
  /// clear every change made strictly before this tick.
  void OnRefreshPollTick(std::size_t cluster) {
    ScheduleIn(options_.consistency.ttr_seconds, kRefreshPollTick,
               static_cast<std::uint32_t>(cluster));
    const std::uint32_t partner = FirstLivePartner(cluster);
    if (partner == kSelfUpstream) return;  // Membership is static.
    const std::size_t num = inst_.NumClients(cluster);
    for (std::size_t i = 0; i < num; ++i) {
      AcctSend(partner, Msg::kPoll, refresh_poll_bytes_,
               send_ctl_ + MuxOf(partner));
    }
    ScheduleIn(2.0 * options_.hop_latency_seconds, kRefreshReplyArrive,
               static_cast<std::uint32_t>(cluster), TimeBits(lane().now));
  }

  void OnRefreshReplyArrive(std::size_t cluster, double tick_time) {
    const std::uint32_t partner = FirstLivePartner(cluster);
    if (partner == kSelfUpstream) return;
    for (std::size_t c = inst_.client_offset[cluster];
         c < inst_.client_offset[cluster + 1]; ++c) {
      const auto client =
          static_cast<std::uint32_t>(num_partners_ + c);
      AcctRecv(client, Msg::kPoll, refresh_poll_bytes_,
               recv_ctl_ + MuxOf(client));
      AcctSend(client, Msg::kRefresh, refresh_reply_bytes_,
               send_ctl_ + MuxOf(client));
      AcctRecv(partner, Msg::kRefresh, refresh_reply_bytes_,
               recv_ctl_ + MuxOf(partner));
    }
    // Changes made before the poll tick are now refreshed from the
    // authoritative client copies; later ones wait for the next round.
    std::vector<double>& pending = cons_pending_[cluster];
    std::size_t& head = cons_head_[cluster];
    while (head < pending.size() && pending[head] < tick_time) {
      if (lane().measuring) {
        freshness_hist_.Observe(lane().now - pending[head]);
      }
      ++head;
    }
    if (head > 64 && head * 2 > pending.size()) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
  }

  /// Classifies `results` delivered from `cluster` as stale/fresh by
  /// independent Bernoulli draws at the cluster's stale index fraction.
  /// Classification is pure observation — it changes no message.
  void ClassifyStale(std::size_t cluster, std::uint32_t results) {
    const double p = StaleFraction(cluster);
    std::uint32_t stale = 0;
    for (std::uint32_t i = 0; i < results; ++i) {
      if (cons_rng_.NextBernoulli(p)) ++stale;
    }
    if (lane().measuring) {
      consistency_stale_results_ += stale;
      consistency_fresh_results_ += results - stale;
    }
  }

  /// Extra results served from `cluster`'s replica store (always
  /// fresh: replicas are shipped from just-matched records).
  std::uint32_t ReplicaServe(std::size_t cluster, std::uint32_t query_class) {
    const double replicas = cons_replicas_[cluster];
    if (replicas <= 0.0) return 0;
    const std::uint32_t extra = SampleBinomialApprox(
        replicas, inputs_.query_model.SelectionPower(query_class), cons_rng_);
    if (extra > 0 && lane().measuring) consistency_replica_served_ += extra;
    return extra;
  }

  /// Ships min(results, max_records_per_push) fresh records to the
  /// query owner's cluster (owner replication) and/or the clusters the
  /// response retraces (path replication), up to replication_factor
  /// distinct targets. Replicas piggyback on the response path, so each
  /// push is priced as one endpoint send + one receive.
  void ReplicatePush(std::size_t cluster, std::uint32_t partner,
                     std::uint64_t qid, std::uint32_t results) {
    const ReplicationPlan& rp = options_.consistency.replication;
    const auto records = static_cast<double>(
        std::min(results, rp.max_records_per_push));
    replica_targets_.clear();
    const auto add_target = [&](std::size_t target) {
      if (target == cluster) return;
      for (const std::size_t t : replica_targets_) {
        if (t == target) return;
      }
      if (replica_targets_.size() <
          static_cast<std::size_t>(rp.replication_factor)) {
        replica_targets_.push_back(target);
      }
    };
    if (rp.path_replication) {
      // Walk the stored upstream chain toward the query owner.
      std::size_t at = cluster;
      const std::uint32_t* up = UpstreamW(at, qid);
      while (up != nullptr && *up != kSelfUpstream && IsPartner(*up)) {
        at = ClusterOf(*up);
        add_target(at);
        up = UpstreamW(at, qid);
      }
    }
    if (rp.owner_replication) {
      const QueryState* state = FindW(RootOfW(qid));
      if (state != nullptr) add_target(ClusterOf(state->user));
    }
    const double bytes = inputs_.costs.ReplicaPushBytes(records);
    for (const std::size_t target : replica_targets_) {
      const std::uint32_t to = FirstLivePartner(target);
      if (to == kSelfUpstream) continue;
      AcctSend(partner, Msg::kReplica, bytes, send_ctl_ + MuxOf(partner));
      AcctRecv(to, Msg::kReplica, bytes, recv_ctl_ + MuxOf(to));
      cons_replicas_[target] += records;
      if (lane().measuring) {
        consistency_replica_records_ +=
            static_cast<std::uint64_t>(records);
        consistency_replication_bytes_ += bytes;
      }
    }
  }

  /// Expected-value-faithful sampling of the number of distinct cluster
  /// members whose collections match (the addresses in a Response).
  std::uint32_t SampleAddrs(std::size_t cluster, double f) {
    std::uint32_t addrs = 0;
    if (adaptive_) {
      const auto try_owner = [&](double x) {
        if (x <= 0.0) return;
        const double p = 1.0 - std::pow(1.0 - f, x);
        if (ProtoRng().NextBernoulli(p)) ++addrs;
      };
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        try_owner(adaptive_ctrl_->FilesOfNode(node));
      }
      const std::uint32_t head = adaptive_ctrl_->HeadOf(cluster);
      if (head != AdaptiveController::kNoHead) {
        try_owner(adaptive_ctrl_->FilesOfNode(head));
      }
      return addrs == 0 ? 1 : addrs;  // Results imply at least one owner.
    }
    for (const std::uint32_t x : inst_.ClientFiles(cluster)) {
      if (x == 0) continue;
      const double p = 1.0 - std::pow(1.0 - f, static_cast<double>(x));
      if (ProtoRng().NextBernoulli(p)) ++addrs;
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const std::uint32_t x = inst_.partner_files[cluster * k_ + p];
      if (x == 0) continue;
      const double q = 1.0 - std::pow(1.0 - f, static_cast<double>(x));
      if (ProtoRng().NextBernoulli(q)) ++addrs;
    }
    return addrs == 0 ? 1 : addrs;  // Results imply at least one owner.
  }

  void SendResponse(std::uint32_t from, std::uint32_t to, std::uint64_t qid,
                    std::uint32_t results, std::uint32_t addrs,
                    std::uint32_t hops) {
    const double bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    if (to == kSelfUpstream) {
      // The super-peer's own user consumes the results locally.
      DeliverResults(qid, results, addrs, hops);
      return;
    }
    AcctSend(from, Msg::kResponse, bytes,
             inputs_.costs.SendResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(from));
    // The hop counter mirrors the paper's EPL (hops across the super-peer
    // overlay); the final super-peer -> client delivery is not an overlay
    // hop and is excluded so the metric is comparable with the model.
    const std::uint32_t hop_delta = IsHeadRole(to) ? 1u : 0u;
    Deliver(options_.hop_latency_seconds, kResponseArrive, to, qid,
            PackResponse(results, addrs, hops + hop_delta));
  }

  void OnResponseArrive(std::uint32_t node, std::uint64_t qid,
                        std::uint32_t results, std::uint32_t addrs,
                        std::uint32_t hops) {
    const double bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    AcctRecv(node, Msg::kResponse, bytes,
             inputs_.costs.RecvResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(node));
    if (!IsHeadRole(node)) {
      DeliverResults(qid, results, addrs, hops);
      return;
    }
    if (!HeadAlive(node)) return;
    const std::size_t cluster = ClusterOf(node);
    const std::uint32_t* upstream = UpstreamW(cluster, qid);
    if (upstream == nullptr) return;  // State lost to churn.
    SendResponse(node, *upstream, qid, results, addrs, hops);
  }

  void DeliverResults(std::uint64_t qid, std::uint32_t results,
                      std::uint32_t addrs, std::uint32_t hops) {
    // Map expanding-ring retry qids back to the original query.
    const std::uint64_t root = RootOfW(qid);
    QueryState* found = FindW(root);
    if (found != nullptr) {
      QueryState& state = *found;
      PopulateCache(state, root, results, addrs);
      if (!state.first_response_seen) {
        state.first_response_seen = true;
        if (lane().measuring) {
          if (disc_) {
            // Per-domain accumulation keeps the FP addition order a
            // function of (time, key) within one domain; the fold in
            // domain order at Finalize is then shard-count-invariant.
            latency_by_dom_[HomeDomainOf(state.user)] +=
                lane().now - state.submit_time;
          } else {
            latency_sum_ += lane().now - state.submit_time;
          }
          ++lane().first_responses;
        }
      }
      if (options_.strategy == SearchStrategy::kExpandingRing) {
        state.ring_results += static_cast<double>(results);
      }
    }
    if (!lane().measuring) return;
    ++lane().responses_delivered;
    lane().hops_sum += static_cast<double>(hops);
    lane().hop_histogram.Observe(static_cast<double>(hops));
    if (options_.strategy != SearchStrategy::kExpandingRing) {
      // Ring queries account their results when the ring settles
      // (FinishRingQuery), so inner rings are not double counted.
      lane().results_sum += static_cast<double>(results);
    }
  }

  // --- Joins and updates ------------------------------------------------------
  void ScheduleJoinArrive(std::uint32_t target, std::uint32_t owner,
                          double files) {
    // Joins carry a float payload (e.x), so the fault layer is applied
    // inline instead of through Deliver.
    double delay = options_.hop_latency_seconds;
    if (fault_active_) {
      if (injector_.ShouldDropDelivery(FaultRng())) {
        if (lane().measuring) ++lane().messages_dropped;
        return;
      }
      delay += injector_.DeliveryJitter(FaultRng());
    }
    SimEvent e;
    e.time = lane().now + delay;
    e.kind = kJoinArrive;
    e.node = target;
    e.a = owner;
    e.x = files;
    if (disc_) {
      DiscSchedule(e);
      return;
    }
    queue_.Schedule(e);
    ++lane().events_scheduled;
    if (queue_.size() > queue_depth_hwm_) queue_depth_hwm_ = queue_.size();
  }

  void OnJoinSubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(1.0 / LifespanOf(user)), kJoinSubmit, user);
    const double files = FilesOf(user);
    const std::size_t cluster = ClusterOf(user);
    if (IsHeadRole(user)) {
      if (!HeadAlive(user)) return;
      // Rebuild the index over its own collection; mirror to every
      // live co-partner.
      AcctProc(user, inputs_.costs.ProcessJoinUnits(files));
      // Under adaptation clusters are non-redundant (k == 1): there is
      // no co-partner to mirror to.
      if (adaptive_) return;
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other == user || !partner_alive_[other]) continue;
        AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
                 inputs_.costs.SendJoinUnits(files) + MuxOf(user));
        ScheduleJoinArrive(other, user, files);
      }
      return;
    }
    if (adaptive_) {
      const std::uint32_t head = LiveHeadOf(cluster);
      if (head == kSelfUpstream) return;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(head, user, files);
      return;
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(partner, user, files);
    }
  }

  void OnJoinArrive(std::uint32_t partner, std::uint32_t owner,
                    double files) {
    if (!IsHeadRole(partner) || !HeadAlive(partner)) return;
    AcctRecv(partner, Msg::kJoin, inputs_.costs.JoinBytes(files),
             inputs_.costs.RecvJoinUnits(files) +
                 inputs_.costs.ProcessJoinUnits(files) + MuxOf(partner));
    if (options_.concrete_index) {
      // Re-index the joining peer's metadata for real. The k partners
      // of a cluster share one index object (their contents would be
      // identical), so the second partner's re-insert is a no-op.
      InvertedIndex& index = indexes_[ClusterOf(partner)];
      index.EraseOwner(owner);
      index.InsertCollection(node_collections_[owner]);
    }
  }

  /// Concrete mode: replaces one random file of `user`'s collection
  /// with a freshly sampled one, and queues the mutation for every
  /// partner message that will carry it. Returns false if the user
  /// shares nothing (the update message is still sent — its cost is
  /// workload-model territory — but no index change happens).
  bool PrepareConcreteUpdate(std::uint32_t user, std::size_t copies) {
    auto& collection = node_collections_[user];
    if (collection.empty()) return false;
    const std::size_t slot = ProtoRng().NextBounded(collection.size());
    const FileId old_id = collection[slot].id;
    FileRecord fresh;
    fresh.id = next_file_id_++;
    fresh.owner = user;
    fresh.title = corpus_->SampleTitle(ProtoRng());
    collection[slot] = fresh;
    for (std::size_t i = 0; i < copies; ++i) {
      pending_updates_[user].emplace_back(old_id, fresh);
    }
    return true;
  }

  void OnUpdateSubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(config_.update_rate), kUpdateSubmit, user);
    const std::size_t cluster = ClusterOf(user);
    if (IsHeadRole(user)) {
      if (!HeadAlive(user)) return;
      AcctProc(user, inputs_.costs.process_update_units);
      // Non-redundant clusters under adaptation: nothing to mirror.
      if (adaptive_) return;
      // Mirror the update to every live co-partner.
      std::size_t live_others = 0;
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other != user && partner_alive_[other]) ++live_others;
      }
      if (options_.concrete_index &&
          PrepareConcreteUpdate(user, live_others + 1)) {
        // Apply the partner-user's own update locally right away.
        ApplyConcreteUpdate(user, cluster);
      }
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other == user || !partner_alive_[other]) continue;
        AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
                 inputs_.costs.send_update_units + MuxOf(user));
        Deliver(options_.hop_latency_seconds, kUpdateArrive, other, user);
      }
      return;
    }
    if (adaptive_) {
      const std::uint32_t head = LiveHeadOf(cluster);
      if (head == kSelfUpstream) return;
      AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
               inputs_.costs.send_update_units + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kUpdateArrive, head, user);
      return;
    }
    std::size_t live_partners = 0;
    for (std::size_t p = 0; p < k_; ++p) {
      if (partner_alive_[cluster * k_ + p]) ++live_partners;
    }
    if (options_.concrete_index && live_partners > 0) {
      PrepareConcreteUpdate(user, live_partners);
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
               inputs_.costs.send_update_units + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kUpdateArrive, partner, user);
    }
  }

  /// Applies one queued concrete update of `owner` to its cluster
  /// index (erase the old file, insert the replacement). With shared
  /// per-cluster indexes the second partner's application is a no-op.
  void ApplyConcreteUpdate(std::uint32_t owner, std::size_t cluster) {
    const auto it = pending_updates_.find(owner);
    if (it == pending_updates_.end() || it->second.empty()) return;
    const auto [old_id, fresh] = it->second.front();
    it->second.pop_front();
    InvertedIndex& index = indexes_[cluster];
    index.Erase(old_id);
    index.Insert(fresh);
  }

  void OnUpdateArrive(std::uint32_t partner, std::uint32_t owner) {
    if (!IsHeadRole(partner) || !HeadAlive(partner)) return;
    AcctRecv(partner, Msg::kUpdate, inputs_.costs.UpdateBytes(),
             inputs_.costs.recv_update_units +
                 inputs_.costs.process_update_units + MuxOf(partner));
    if (options_.concrete_index) {
      ApplyConcreteUpdate(owner, ClusterOf(partner));
    }
  }

  // --- Churn / reliability -----------------------------------------------------

  /// Takes a live partner down for `recovery_seconds` and schedules the
  /// recovery. `churn_origin` tags end-of-lifespan failures: only those
  /// restart the lifespan clock on recovery (injected crashes have
  /// their own Poisson clock, which keeps ticking independently).
  void FailPartner(std::uint32_t partner, double recovery_seconds,
                   bool churn_origin) {
    partner_alive_[partner] = false;
    if (lane().measuring) ++partner_failures_;
    const std::size_t cluster = ClusterOf(partner);
    if (--alive_partners_[cluster] == 0) {
      outage_start_[cluster] = lane().now;
      if (lane().measuring) ++cluster_outages_;
      if (fault_active_) OrphanClusterClients(cluster);
    }
    ScheduleIn(recovery_seconds, kPartnerRecover, partner,
               churn_origin ? 1 : 0);
  }

  void OnPartnerFail(std::uint32_t partner) {
    // A head that resigned through a coalesce keeps its node id as an
    // ordinary member; its churn clock dies with the role (the member's
    // availability is the new head's problem).
    if (adaptive_ && !adaptive_ctrl_->IsHead(partner)) return;
    if (!partner_alive_[partner]) return;
    FailPartner(partner, options_.churn.partner_recovery_seconds,
                /*churn_origin=*/true);
  }

  void OnPartnerCrash(std::uint32_t partner) {
    // The crash clock keeps ticking whether or not the partner is up;
    // a crash hitting a dead partner is a no-op, which keeps up-times
    // memoryless (the analytical availability model in DESIGN.md §8
    // relies on exactly this renewal structure).
    ScheduleIn(injector_.NextCrashDelay(), kPartnerCrash, partner);
    // Crashes only hit nodes still holding the head role (see
    // OnPartnerFail); the clock keeps ticking either way.
    if (adaptive_ && !adaptive_ctrl_->IsHead(partner)) return;
    if (!partner_alive_[partner]) return;
    if (lane().measuring) ++crashes_;
    FailPartner(partner, injector_.plan().crash_recovery_seconds,
                /*churn_origin=*/false);
  }

  void OnPartnerRecover(std::uint32_t partner, bool churn_origin) {
    partner_alive_[partner] = true;
    if (lane().measuring) ++partner_recoveries_;
    const std::size_t cluster = ClusterOf(partner);
    if (alive_partners_[cluster]++ == 0 && outage_start_[cluster] >= 0.0) {
      AccumulateOutage(cluster, lane().now);
      outage_start_[cluster] = -1.0;
      if (fault_active_) ReconnectOrphans(cluster);
    }
    // The replacement partner starts with an empty index: every client
    // re-uploads its metadata (the join storm after a failure). With an
    // active fault plan membership is mutable, so the storm covers the
    // cluster's current members rather than the instance layout.
    if (adaptive_) {
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        SendMemberUpload(partner, node);
      }
    } else if (fault_active_) {
      for (const std::uint32_t c : cluster_members_[cluster]) {
        SendJoinStormUpload(partner, c);
      }
    } else {
      for (std::size_t c = inst_.client_offset[cluster];
           c < inst_.client_offset[cluster + 1]; ++c) {
        SendJoinStormUpload(partner, static_cast<std::uint32_t>(c));
      }
    }
    if (churn_origin && options_.churn.enable) {
      ScheduleIn(ExpDelay(1.0 / inst_.partner_lifespan[partner]), kPartnerFail,
                 partner);
    }
  }

  /// One client's metadata re-upload to a recovering partner (`c` is a
  /// client index, not a node id).
  void SendJoinStormUpload(std::uint32_t partner, std::uint32_t c) {
    SendMemberUpload(partner, static_cast<std::uint32_t>(num_partners_ + c));
  }

  /// One member's metadata re-upload to a (new or recovered) head.
  /// Takes a node id: under adaptation a cluster's members may include
  /// resigned heads from the partner range.
  void SendMemberUpload(std::uint32_t head, std::uint32_t member) {
    const double files = FilesOf(member);
    AcctSend(member, Msg::kJoin, inputs_.costs.JoinBytes(files),
             inputs_.costs.SendJoinUnits(files) + MuxOf(member));
    ScheduleJoinArrive(head, member, files);
  }

  void AccumulateOutage(std::size_t cluster, double end) {
    const double start = std::max(outage_start_[cluster],
                                  options_.warmup_seconds);
    if (end <= start) return;
    outage_seconds_ += end - start;
    // Whole-cluster client accounting only applies while membership is
    // static; with an active fault plan clients accrue individually
    // (AccrueOrphanTime), since re-joins end their episodes early.
    if (!fault_active_) {
      const double clients = static_cast<double>(
          adaptive_ ? adaptive_ctrl_->MembersOf(cluster).size()
                    : inst_.NumClients(cluster));
      disconnected_client_seconds_ += (end - start) * clients;
    }
  }

  // --- Fault recovery: orphans, re-join, timeouts & retries --------------------

  /// Marks every current member of `cluster` orphaned (its last live
  /// partner just went down).
  void OrphanClusterClients(std::size_t cluster) {
    if (adaptive_) {
      if (lane().measuring) {
        orphaned_clients_hist_.Observe(static_cast<double>(
            adaptive_ctrl_->MembersOf(cluster).size()));
      }
      // Resigned heads (partner-range node ids) carry no orphan slot;
      // their disconnection shows up in the outage accounting instead.
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        if (node < num_partners_) continue;
        const std::uint32_t c = node - num_partners_;
        if (orphaned_since_[c] < 0.0) orphaned_since_[c] = lane().now;
      }
      return;
    }
    if (lane().measuring) {
      orphaned_clients_hist_.Observe(
          static_cast<double>(cluster_members_[cluster].size()));
    }
    for (const std::uint32_t c : cluster_members_[cluster]) {
      if (orphaned_since_[c] < 0.0) orphaned_since_[c] = lane().now;
    }
  }

  /// Ends the orphan episodes of `cluster`'s members: a partner came
  /// back, so they are connected again.
  void ReconnectOrphans(std::size_t cluster) {
    if (adaptive_) {
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        if (node < num_partners_) continue;
        AccrueOrphanTime(node - num_partners_, /*observe_latency=*/true);
      }
      return;
    }
    for (const std::uint32_t c : cluster_members_[cluster]) {
      AccrueOrphanTime(c, /*observe_latency=*/true);
    }
  }

  /// Closes client `c`'s orphan episode at `lane().now`: adds its
  /// disconnected time (clipped to the measurement window) and, for
  /// real recoveries, observes the recovery-latency histogram.
  void AccrueOrphanTime(std::uint32_t c, bool observe_latency) {
    if (orphaned_since_[c] < 0.0) return;
    const double start = std::max(orphaned_since_[c], options_.warmup_seconds);
    if (lane().now > start) disconnected_client_seconds_ += lane().now - start;
    if (observe_latency && lane().measuring) {
      recovery_latency_hist_.Observe(lane().now - orphaned_since_[c]);
    }
    orphaned_since_[c] = -1.0;
  }

  /// Moves an orphaned client to a surviving cluster via the bootstrap
  /// discovery service (Section 4.1's pong-server role). Returns false
  /// when no cluster in the network has a live partner.
  bool RejoinViaDiscovery(std::uint32_t user) {
    if (adaptive_) return RejoinViaDiscoveryAdaptive(user);
    const std::uint32_t c = user - num_partners_;
    std::vector<std::uint32_t> eligible;
    std::vector<std::uint32_t> sizes;
    for (std::size_t i = 0; i < n_; ++i) {
      if (alive_partners_[i] > 0) {
        eligible.push_back(static_cast<std::uint32_t>(i));
        sizes.push_back(
            static_cast<std::uint32_t>(cluster_members_[i].size()));
      }
    }
    if (eligible.empty()) return false;
    const std::size_t pick =
        PickRejoinCluster(eligible, sizes, AssignmentPolicy::kUniformRandom,
                          injector_.stream());
    const std::uint32_t new_cluster = eligible[pick];
    auto& members = cluster_members_[client_current_cluster_[c]];
    members.erase(std::find(members.begin(), members.end(), c));
    cluster_members_[new_cluster].push_back(c);
    client_current_cluster_[c] = new_cluster;
    if (lane().measuring) ++client_rejoins_;
    AccrueOrphanTime(c, /*observe_latency=*/true);
    // The client uploads its metadata to the new cluster's live
    // partners — a fresh join.
    const auto files = static_cast<double>(inst_.client_files[c]);
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(new_cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(partner, user, files);
    }
    return true;
  }

  /// RejoinViaDiscovery with the adaptation layer owning membership:
  /// eligible clusters are live slots with a live head, and the move
  /// flows through the controller so rule decisions see it.
  bool RejoinViaDiscoveryAdaptive(std::uint32_t user) {
    std::vector<std::uint32_t> eligible;
    std::vector<std::uint32_t> sizes;
    for (std::size_t i = 0; i < adaptive_ctrl_->NumClusterSlots(); ++i) {
      if (adaptive_ctrl_->Dead(i) || LiveHeadOf(i) == kSelfUpstream) continue;
      eligible.push_back(static_cast<std::uint32_t>(i));
      sizes.push_back(
          static_cast<std::uint32_t>(adaptive_ctrl_->MembersOf(i).size()));
    }
    if (eligible.empty()) return false;
    const std::size_t pick =
        PickRejoinCluster(eligible, sizes, AssignmentPolicy::kUniformRandom,
                          injector_.stream());
    const auto new_cluster = static_cast<std::size_t>(eligible[pick]);
    adaptive_ctrl_->MoveClient(user, new_cluster);
    if (lane().measuring) ++client_rejoins_;
    if (user >= num_partners_) {
      AccrueOrphanTime(user - num_partners_, /*observe_latency=*/true);
    }
    SendMemberUpload(LiveHeadOf(new_cluster), user);
    return true;
  }

  /// Per-request timeout probe for a flood query. Success means at
  /// least one response arrived — graceful degradation: partial results
  /// from a degraded flood still count. Tallies cover queries submitted
  /// inside the measurement window whose checks fire before the run
  /// ends.
  void OnRequestCheck(std::uint32_t user, std::uint64_t root,
                      std::uint32_t retries_used) {
    const QueryState* found = FindW(root);
    if (found == nullptr) return;
    const QueryState& state = *found;
    const bool counted = state.submit_time >= options_.warmup_seconds;
    if (state.first_response_seen) {
      if (counted) ++queries_succeeded_;
      return;
    }
    if (counted) ++request_timeouts_;
    if (retries_used >=
        static_cast<std::uint32_t>(injector_.plan().max_retries)) {
      if (counted) ++lane().queries_failed;
      return;
    }
    ScheduleIn(injector_.RetryBackoff(static_cast<int>(retries_used) + 1),
               kRetrySubmit, user, root, retries_used + 1);
  }

  /// Backed-off retry of a timed-out flood query: a fresh qid re-floods
  /// the network (duplicate tables have marked the root qid), mapped
  /// back to the root via ring_root_ exactly like expanding-ring
  /// retries.
  void OnRetrySubmit(std::uint32_t user, std::uint64_t root,
                     std::uint32_t retry_number) {
    QueryState* found = FindW(root);
    if (found == nullptr) return;
    QueryState& state = *found;
    const bool counted = state.submit_time >= options_.warmup_seconds;
    if (state.first_response_seen) {
      // A response raced the backoff: the query succeeded after all.
      if (counted) ++queries_succeeded_;
      return;
    }
    if (IsHeadRole(user) && !HeadAlive(user)) {
      // The submitting partner-user died with its state.
      if (counted) ++lane().queries_failed;
      return;
    }
    const std::uint64_t retry_qid = MakeQid(user);
    if (options_.concrete_index) {
      // The retry re-issues the same keyword string under a fresh qid.
      state_.ShareQueryString(root, retry_qid);
    }
    SetRootW(retry_qid, root);
    if (counted) ++retries_;
    if (!SubmitWithFailover(user, retry_qid, state.query_class,
                            static_cast<std::uint32_t>(ttl_ + 1))) {
      if (counted) ++lane().queries_failed;
      return;
    }
    ScheduleIn(injector_.plan().request_timeout_seconds, kRequestCheck, user,
               root, retry_number);
  }

  // --- In-simulation adaptation (rules I-III as protocol events) ---------------

  /// The node's measured load over the current window, in the physical
  /// units the rule predicates use (bps / Hz). Invalid until any time
  /// has elapsed in the window.
  AdaptiveController::LoadSample WindowLoad(std::uint32_t node) const {
    AdaptiveController::LoadSample s;
    const double elapsed = lane().now - window_start_;
    if (elapsed <= 0.0) return s;
    const double inv = 1.0 / elapsed;
    s.valid = true;
    // total_bps keeps its historical single-rounding expression — the
    // directional fields are new and must not perturb it bitwise.
    s.total_bps = BytesPerSecToBps(
        (adapt_in_bytes_[node] + adapt_out_bytes_[node]) * inv);
    s.in_bps = BytesPerSecToBps(adapt_in_bytes_[node] * inv);
    s.out_bps = BytesPerSecToBps(adapt_out_bytes_[node] * inv);
    s.proc_hz = inputs_.costs.UnitsToHz(adapt_units_[node] * inv);
    return s;
  }

  /// Packs a LoadReport payload (two float32 fields, matching the wire
  /// message in proto/messages.h) into an event argument.
  static std::uint64_t PackLoad(const AdaptiveController::LoadSample& s) {
    const auto hi =
        std::bit_cast<std::uint32_t>(static_cast<float>(s.total_bps));
    const auto lo =
        std::bit_cast<std::uint32_t>(static_cast<float>(s.proc_hz));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
  }

  /// Every live head probes every overlay neighbor for its load.
  void OnAdaptProbeTick() {
    ScheduleIn(options_.adaptive.probe_interval_seconds, kAdaptProbeTick, 0);
    for (std::size_t c = 0; c < adaptive_ctrl_->NumClusterSlots(); ++c) {
      if (adaptive_ctrl_->Dead(c)) continue;
      const std::uint32_t prober = LiveHeadOf(c);
      if (prober == kSelfUpstream) continue;
      for (const std::uint32_t nb : adaptive_ctrl_->NeighborsOf(c)) {
        const std::uint32_t target = adaptive_ctrl_->HeadOf(nb);
        if (target == AdaptiveController::kNoHead) continue;
        AcctSend(prober, Msg::kProbe, probe_bytes_, send_ctl_ + MuxOf(prober));
        ++adapt_probes_sent_;
        Deliver(options_.hop_latency_seconds, kAdaptProbeArrive, target,
                /*a=*/c);
      }
    }
  }

  void OnAdaptProbeArrive(std::uint32_t node, std::uint32_t prober_cluster) {
    if (!IsHeadRole(node) || !HeadAlive(node)) return;
    AcctRecv(node, Msg::kProbe, probe_bytes_, recv_ctl_ + MuxOf(node));
    const std::uint32_t target = LiveHeadOf(prober_cluster);
    if (target == kSelfUpstream) return;  // The prober vanished meanwhile.
    AcctSend(node, Msg::kReport, report_bytes_, send_ctl_ + MuxOf(node));
    Deliver(options_.hop_latency_seconds, kAdaptReportArrive, target,
            /*a=*/adaptive_ctrl_->ClusterOfNode(node),
            /*b=*/PackLoad(WindowLoad(node)));
  }

  void OnAdaptReportArrive(std::uint32_t node, std::uint32_t reporter_cluster,
                           std::uint64_t packed) {
    if (!IsHeadRole(node) || !HeadAlive(node)) return;
    AcctRecv(node, Msg::kReport, report_bytes_, recv_ctl_ + MuxOf(node));
    ++adapt_reports_received_;
    const auto total =
        std::bit_cast<float>(static_cast<std::uint32_t>(packed >> 32));
    const auto proc =
        std::bit_cast<float>(static_cast<std::uint32_t>(packed & 0xffffffffu));
    adaptive_ctrl_->RecordReport(adaptive_ctrl_->ClusterOfNode(node),
                                 reporter_cluster, static_cast<double>(total),
                                 static_cast<double>(proc));
  }

  /// One decision round: feeds each live head's window load to the
  /// controller, then turns the returned actions into protocol traffic
  /// (re-upload joins, the peering handshake, the TTL broadcast).
  void OnAdaptRound() {
    ScheduleIn(options_.adaptive.decision_interval_seconds, kAdaptRound, 0);
    ++adapt_rounds_;
    std::vector<AdaptiveController::LoadSample> own_loads(
        adaptive_ctrl_->NumClusterSlots());
    for (std::size_t c = 0; c < own_loads.size(); ++c) {
      if (adaptive_ctrl_->Dead(c)) continue;
      const std::uint32_t head = LiveHeadOf(c);
      if (head == kSelfUpstream) continue;  // Down: no sample this round.
      own_loads[c] = WindowLoad(head);
    }
    const AdaptiveController::RoundActions actions =
        adaptive_ctrl_->RunRound(own_loads, ttl_);
    // Slots appended by splits need per-cluster state storage — and
    // per-cluster fault bookkeeping: a resigned partner-range head can
    // later be re-promoted into a fresh slot, where its still-ticking
    // crash clock indexes these vectors by the new cluster id.
    state_.EnsureClusters(adaptive_ctrl_->NumClusterSlots());
    if (disc_ && disc_dup_.size() < adaptive_ctrl_->NumClusterSlots()) {
      disc_dup_.resize(adaptive_ctrl_->NumClusterSlots());
    }
    alive_partners_.resize(adaptive_ctrl_->NumClusterSlots(), 1u);
    outage_start_.resize(adaptive_ctrl_->NumClusterSlots(), -1.0);

    for (const auto& split : actions.splits) {
      ++adapt_splits_;
      // The promoted head indexes its own collection, and every moved
      // member re-uploads its metadata to it (the split's join storm).
      AcctProc(split.promoted,
               inputs_.costs.ProcessJoinUnits(
                   adaptive_ctrl_->FilesOfNode(split.promoted)));
      for (const std::uint32_t member : split.moved) {
        ++adapt_client_moves_;
        SendMemberUpload(split.promoted, member);
      }
    }
    for (const auto& coalesce : actions.coalesces) {
      ++adapt_coalesces_;
      const std::uint32_t target = LiveHeadOf(coalesce.into);
      if (target == kSelfUpstream) continue;  // Uploads lost.
      ++adapt_client_moves_;  // The resigned head moves too.
      SendMemberUpload(target, coalesce.resigned_head);
      for (const std::uint32_t member : coalesce.moved) {
        ++adapt_client_moves_;
        SendMemberUpload(target, member);
      }
    }
    for (const auto& demote : actions.demotes) {
      ++adapt_demotions_;
      // Leadership handover: the elected head indexes its own
      // collection, and the whole remaining membership (including the
      // demoted head, now an ordinary client) re-uploads to it. These
      // uploads are part of the handover storm, not client migrations,
      // so adapt_client_moves_ stays untouched.
      AcctProc(demote.new_head,
               inputs_.costs.ProcessJoinUnits(
                   adaptive_ctrl_->FilesOfNode(demote.new_head)));
      for (const std::uint32_t member :
           adaptive_ctrl_->MembersOf(demote.cluster)) {
        SendMemberUpload(demote.new_head, member);
      }
    }
    for (const auto& edge : actions.edges) {
      ++adapt_edges_added_;
      // Peering handshake: one probe across the new edge primes the
      // neighbor-report exchange.
      const std::uint32_t a_head = LiveHeadOf(edge.a);
      const std::uint32_t b_head = adaptive_ctrl_->HeadOf(edge.b);
      if (a_head == kSelfUpstream || b_head == AdaptiveController::kNoHead) {
        continue;
      }
      AcctSend(a_head, Msg::kProbe, probe_bytes_, send_ctl_ + MuxOf(a_head));
      ++adapt_probes_sent_;
      Deliver(options_.hop_latency_seconds, kAdaptProbeArrive, b_head,
              /*a=*/edge.a);
    }
    if (actions.ttl_decreased) {
      ++adapt_ttl_decreases_;
      ttl_ = actions.new_ttl;
      // Broadcast the new TTL across the overlay: every live head
      // tells every neighbor.
      for (std::size_t c = 0; c < adaptive_ctrl_->NumClusterSlots(); ++c) {
        if (adaptive_ctrl_->Dead(c)) continue;
        const std::uint32_t head = LiveHeadOf(c);
        if (head == kSelfUpstream) continue;
        for (const std::uint32_t nb : adaptive_ctrl_->NeighborsOf(c)) {
          const std::uint32_t target = adaptive_ctrl_->HeadOf(nb);
          if (target == AdaptiveController::kNoHead) continue;
          AcctSend(head, Msg::kControl, ttl_update_bytes_,
                   send_ctl_ + MuxOf(head));
          Deliver(options_.hop_latency_seconds, kAdaptTtlArrive, target);
        }
      }
    }
    // Convergence = the trailing streak of quiescent rounds reaching
    // the end of the run; converged_round is the streak's first round.
    if (actions.quiescent) {
      if (!adapt_converged_) {
        adapt_converged_ = true;
        adapt_converged_round_ = adapt_rounds_;
      }
    } else {
      adapt_converged_ = false;
      adapt_converged_round_ = 0;
    }
    // Start the next measurement window.
    std::fill(adapt_in_bytes_.begin(), adapt_in_bytes_.end(), 0.0);
    std::fill(adapt_out_bytes_.begin(), adapt_out_bytes_.end(), 0.0);
    std::fill(adapt_units_.begin(), adapt_units_.end(), 0.0);
    window_start_ = lane().now;
  }

  void OnAdaptTtlArrive(std::uint32_t node) {
    if (!IsHeadRole(node) || !HeadAlive(node)) return;
    AcctRecv(node, Msg::kControl, ttl_update_bytes_, recv_ctl_ + MuxOf(node));
  }

  // --- Capacity observation windows (DESIGN.md §15) ----------------------------

  /// Closes one utilization window: every node's windowed load is
  /// mapped onto its sampled capacity via UtilizationOf. A window is
  /// folded into the report only when it lies entirely inside
  /// measurement (it opened at or after warmup); the per-node overload
  /// flag is tracked across every window regardless, so episode
  /// counting at the measurement boundary sees the true prior state.
  void OnCapacityWindow() {
    const double elapsed = lane().now - cap_window_start_;
    ScheduleIn(options_.capacity.window_seconds, kCapacityWindow, 0);
    if (elapsed > 0.0) {
      const bool fold = cap_window_start_ >= options_.warmup_seconds;
      const double inv = 1.0 / elapsed;
      for (std::uint32_t node = 0; node < TotalNodes(); ++node) {
        const double util = UtilizationOf(
            node_capacity_[node], BytesPerSecToBps(cap_in_bytes_[node] * inv),
            BytesPerSecToBps(cap_out_bytes_[node] * inv),
            inputs_.costs.UnitsToHz(cap_units_[node] * inv));
        const bool over = util > options_.capacity.overload_utilization;
        if (fold) {
          ++cap_node_samples_;
          cap_util_sum_ += util;
          if (over) {
            ++cap_over_samples_;
            if (cap_overloaded_[node] == 0) ++cap_overload_episodes_;
          }
          // Super-peer cut: the nodes currently carrying the head role
          // (live partners; under adaptation, the controller's heads).
          if (IsHeadRole(node) && HeadAlive(node)) {
            ++cap_sp_samples_;
            cap_sp_util_sum_ += util;
            if (over) ++cap_sp_over_samples_;
            cap_sp_util_hist_.Observe(util);
          }
        }
        cap_overloaded_[node] = over ? 1 : 0;
      }
      if (fold) ++cap_windows_;
    }
    std::fill(cap_in_bytes_.begin(), cap_in_bytes_.end(), 0.0);
    std::fill(cap_out_bytes_.begin(), cap_out_bytes_.end(), 0.0);
    std::fill(cap_units_.begin(), cap_units_.end(), 0.0);
    cap_window_start_ = lane().now;
  }

  /// p99 super-peer utilization, read conservatively off the histogram
  /// bucket upper bounds (the overflow bucket reports the last bound).
  double CapacitySpUtilP99() const {
    const std::uint64_t total = cap_sp_util_hist_.count();
    if (total == 0) return 0.0;
    const auto want = static_cast<std::uint64_t>(
        std::ceil(0.99 * static_cast<double>(total)));
    const std::vector<double>& bounds = cap_sp_util_hist_.upper_bounds();
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      seen += cap_sp_util_hist_.bucket_counts()[b];
      if (seen >= want) return bounds[b];
    }
    return bounds.back();
  }

  /// Mean overlay degree of the static topology (the "final" network
  /// of a non-adaptive run).
  double StaticAvgOutdegree() const {
    if (inst_.topology.is_complete()) return static_cast<double>(n_ - 1);
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      sum += static_cast<double>(
          inst_.topology.graph().Neighbors(static_cast<NodeId>(i)).size());
    }
    return sum / static_cast<double>(n_);
  }

  // --- Finalization --------------------------------------------------------------
  SimReport Finalize(double measured_seconds) {
    // Every user-visible tally reads the canonical index-order fold of
    // the lanes: a legacy run folds its single lane unchanged, and a
    // sharded run's fold is shard/thread-count-invariant (DESIGN.md
    // §12, obs/shard_merge.h).
    const Lane agg = FoldedLanes();
    // Close outages still open at the end of the run (adaptation can
    // have grown the slot count past the instance's n clusters).
    for (std::size_t i = 0; i < outage_start_.size(); ++i) {
      if (outage_start_[i] >= 0.0) AccumulateOutage(i, agg.now);
    }
    if (fault_active_) {
      // Clients still orphaned at the end accrue their disconnected
      // time but never recovered — no latency observation.
      for (std::uint32_t c = 0; c < num_clients_; ++c) {
        AccrueOrphanTime(c, /*observe_latency=*/false);
      }
    }

    SimReport report;
    report.measured_seconds = measured_seconds;
    report.events_scheduled = agg.events_scheduled;
    report.events_dispatched = agg.events_dispatched;
    report.queue_depth_hwm = queue_depth_hwm_;
    const double inv_t =
        measured_seconds > 0.0 ? 1.0 / measured_seconds : 0.0;
    const auto to_load = [&](std::uint32_t node) {
      LoadVector lv;
      lv.in_bps = BytesPerSecToBps(in_bytes_[node] * inv_t);
      lv.out_bps = BytesPerSecToBps(out_bytes_[node] * inv_t);
      lv.proc_hz = inputs_.costs.UnitsToHz(units_[node] * inv_t);
      return lv;
    };
    report.partner_load.resize(num_partners_);
    for (std::uint32_t p = 0; p < num_partners_; ++p) {
      report.partner_load[p] = to_load(p);
      report.aggregate += report.partner_load[p];
    }
    report.client_load.resize(num_clients_);
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      report.client_load[c] =
          to_load(static_cast<std::uint32_t>(num_partners_ + c));
      report.aggregate += report.client_load[c];
    }
    report.queries_submitted = agg.queries_submitted;
    report.responses_delivered = agg.responses_delivered;
    report.duplicate_queries = agg.duplicate_queries;
    const std::uint64_t result_queries =
        options_.strategy == SearchStrategy::kExpandingRing
            ? agg.ring_queries_finished
            : agg.queries_submitted;
    if (result_queries > 0) {
      report.mean_results_per_query =
          agg.results_sum / static_cast<double>(result_queries);
    }
    if (agg.responses_delivered > 0) {
      report.mean_response_hops =
          agg.hops_sum / static_cast<double>(agg.responses_delivered);
    }
    if (agg.first_responses > 0) {
      // Latency is the one genuinely fractional sum: a sharded run
      // accumulates it per home domain and folds in domain order so the
      // FP addition order is canonical.
      const double latency_sum =
          disc_ ? FoldShardSums(latency_by_dom_) : latency_sum_;
      report.mean_first_response_latency =
          latency_sum / static_cast<double>(agg.first_responses);
    }
    if (agg.ring_queries_finished > 0) {
      report.mean_rings_per_query =
          agg.rings_sum / static_cast<double>(agg.ring_queries_finished);
    }
    report.cache_hits = cache_hits_;
    if (options_.concrete_index && !indexes_.empty()) {
      double bytes = 0.0;
      for (const InvertedIndex& index : indexes_) {
        bytes += static_cast<double>(index.ApproximateMemoryBytes());
      }
      report.mean_index_memory_bytes =
          bytes / static_cast<double>(indexes_.size());
    }
    report.partner_failures = partner_failures_;
    report.partner_recoveries = partner_recoveries_;
    report.cluster_outages = cluster_outages_;
    const double cluster_seconds =
        measured_seconds * static_cast<double>(n_);
    if (cluster_seconds > 0.0) {
      report.cluster_outage_fraction = outage_seconds_ / cluster_seconds;
    }
    const double client_seconds =
        measured_seconds * static_cast<double>(num_clients_);
    if (client_seconds > 0.0) {
      report.client_disconnected_fraction =
          disconnected_client_seconds_ / client_seconds;
    }
    report.faults_crashes = crashes_;
    report.faults_messages_dropped = agg.messages_dropped;
    report.faults_request_timeouts = request_timeouts_;
    report.faults_retries = retries_;
    report.faults_failover_episodes = agg.failover_episodes;
    report.faults_client_rejoins = client_rejoins_;
    report.queries_succeeded = queries_succeeded_;
    report.queries_failed = agg.queries_failed;
    const std::uint64_t completed = queries_succeeded_ + agg.queries_failed;
    if (completed > 0) {
      report.query_success_rate = static_cast<double>(queries_succeeded_) /
                                  static_cast<double>(completed);
    }
    report.mean_recovery_latency_seconds = recovery_latency_hist_.Mean();
    report.adapt_rounds = adapt_rounds_;
    report.adapt_splits = adapt_splits_;
    report.adapt_coalesces = adapt_coalesces_;
    report.adapt_edges_added = adapt_edges_added_;
    report.adapt_ttl_decreases = adapt_ttl_decreases_;
    report.adapt_probes_sent = adapt_probes_sent_;
    report.adapt_reports_received = adapt_reports_received_;
    report.adapt_client_moves = adapt_client_moves_;
    report.adapt_converged = adapt_converged_;
    report.adapt_converged_round = adapt_converged_round_;
    if (adaptive_) {
      report.final_clusters =
          static_cast<std::uint64_t>(adaptive_ctrl_->LiveClusters());
      report.final_ttl = ttl_;
      report.final_avg_outdegree = adaptive_ctrl_->AvgOutdegree();
    } else {
      report.final_clusters = static_cast<std::uint64_t>(n_);
      report.final_ttl = config_.ttl;
      report.final_avg_outdegree = StaticAvgOutdegree();
    }
    report.routing_digest_refreshes = routing_digest_refreshes_;
    report.routing_digest_announces =
        agg.msg_sent[static_cast<std::size_t>(Msg::kDigest)];
    report.routing_suppressed_forwards = routing_suppressed_forwards_;
    report.routing_biased_hops = routing_biased_hops_;
    if (consistency_active_) {
      report.consistency_changes = consistency_changes_;
      report.consistency_stale_results = consistency_stale_results_;
      report.consistency_fresh_results = consistency_fresh_results_;
      const std::uint64_t classified =
          consistency_stale_results_ + consistency_fresh_results_;
      if (classified > 0) {
        report.consistency_stale_hit_rate =
            static_cast<double>(consistency_stale_results_) /
            static_cast<double>(classified);
      }
      report.consistency_invalidations =
          agg.msg_sent[static_cast<std::size_t>(Msg::kInvalidate)];
      report.consistency_polls =
          agg.msg_sent[static_cast<std::size_t>(Msg::kPoll)];
      report.consistency_refresh_replies =
          agg.msg_sent[static_cast<std::size_t>(Msg::kRefresh)];
      // Maintenance bandwidth reconciles with the message counters by
      // construction: every consistency message has a fixed size.
      const double maintenance_bytes =
          static_cast<double>(report.consistency_invalidations) *
              invalidate_bytes_ +
          static_cast<double>(report.consistency_polls) *
              refresh_poll_bytes_ +
          static_cast<double>(report.consistency_refresh_replies) *
              refresh_reply_bytes_;
      report.consistency_maintenance_bytes_per_sec =
          maintenance_bytes * inv_t;
      report.consistency_mean_freshness_seconds = freshness_hist_.Mean();
      report.consistency_replica_pushes =
          agg.msg_sent[static_cast<std::size_t>(Msg::kReplica)];
      report.consistency_replica_records = consistency_replica_records_;
      report.consistency_replica_served = consistency_replica_served_;
      report.consistency_replication_bytes_per_sec =
          consistency_replication_bytes_ * inv_t;
    }
    report.adapt_demotions = adapt_demotions_;
    if (capacity_active_) {
      report.capacity_windows = cap_windows_;
      report.capacity_overload_episodes = cap_overload_episodes_;
      if (cap_node_samples_ > 0) {
        report.capacity_mean_utilization =
            cap_util_sum_ / static_cast<double>(cap_node_samples_);
        report.capacity_overloaded_fraction =
            static_cast<double>(cap_over_samples_) /
            static_cast<double>(cap_node_samples_);
      }
      if (cap_sp_samples_ > 0) {
        report.capacity_sp_mean_utilization =
            cap_sp_util_sum_ / static_cast<double>(cap_sp_samples_);
        report.capacity_sp_overloaded_fraction =
            static_cast<double>(cap_sp_over_samples_) /
            static_cast<double>(cap_sp_samples_);
      }
      report.capacity_sp_p99_utilization = CapacitySpUtilP99();
    }
    if (options_.metrics != nullptr) PublishMetrics(*options_.metrics);
    return report;
  }

  /// Publishes the run's tallies into the attached registry. Counters
  /// and the hop histogram cover the measurement window (warmup
  /// excluded), matching the SimReport fields they reconcile with;
  /// the event-queue high-water mark and the scheduled/dispatched
  /// counts cover the whole run. Values accumulate, so several runs
  /// may share a registry.
  ///
  /// Instrument contract (mirrors eval.bfs.* in model/evaluator.h):
  /// protocol-level instruments are bit-identical across engines,
  /// state backends and parallelism; the engine-specific sim.queue.*
  /// internals (calendar only) and sim.state.* footprint gauges
  /// describe the chosen implementation, so they are identical across
  /// parallelism but naturally differ between engines/backends. The
  /// sim.time.* timers are wall-clock (report-only nondeterminism,
  /// excluded from deterministic-section comparisons).
  void PublishMetrics(MetricsRegistry& m) const {
    const Lane agg = FoldedLanes();
    // The adaptation message classes (probe/report/control) exist in
    // the registry only for active plans, and the routing class
    // (digest) only for active routing layers.
    const std::size_t published =
        adaptive_ ? kNumAdaptMsgTypes : kNumBaseMsgTypes;
    for (std::size_t t = 0; t < published; ++t) {
      const std::string type = kMsgNames[t];
      m.GetCounter("sim.msg." + type + ".sent").Increment(agg.msg_sent[t]);
      m.GetCounter("sim.msg." + type + ".received").Increment(agg.msg_recv[t]);
    }
    if (routing_active_) {
      const auto t = static_cast<std::size_t>(Msg::kDigest);
      m.GetCounter("sim.msg.digest.sent").Increment(agg.msg_sent[t]);
      m.GetCounter("sim.msg.digest.received").Increment(agg.msg_recv[t]);
    }
    if (consistency_active_) {
      for (const Msg msg :
           {Msg::kInvalidate, Msg::kPoll, Msg::kRefresh, Msg::kReplica}) {
        const auto t = static_cast<std::size_t>(msg);
        const std::string type = kMsgNames[t];
        m.GetCounter("sim.msg." + type + ".sent").Increment(agg.msg_sent[t]);
        m.GetCounter("sim.msg." + type + ".received")
            .Increment(agg.msg_recv[t]);
      }
    }
    m.GetCounter("sim.queries.submitted").Increment(agg.queries_submitted);
    m.GetCounter("sim.queries.duplicate").Increment(agg.duplicate_queries);
    m.GetCounter("sim.responses.delivered").Increment(agg.responses_delivered);
    m.GetCounter("sim.cache.hits").Increment(cache_hits_);
    m.GetCounter("sim.cache.misses").Increment(cache_misses_);
    m.GetCounter("sim.churn.partner_failures").Increment(partner_failures_);
    m.GetCounter("sim.churn.partner_recoveries")
        .Increment(partner_recoveries_);
    m.GetCounter("sim.churn.cluster_outages").Increment(cluster_outages_);
    m.GetCounter("sim.events.dispatched").Increment(agg.events_dispatched);
    m.GetCounter("sim.queue.scheduled").Increment(agg.events_scheduled);
    m.GetGauge("sim.event_queue.depth_hwm")
        .SetMax(static_cast<double>(queue_depth_hwm_));
    if (const CalendarQueue* cal = queue_.calendar(); cal != nullptr) {
      m.GetCounter("sim.queue.resizes").Increment(cal->resizes());
      m.GetCounter("sim.queue.day_steps").Increment(cal->day_steps());
      m.GetCounter("sim.queue.slot_visits").Increment(cal->slot_visits());
      m.GetCounter("sim.queue.global_scans").Increment(cal->global_scans());
      m.GetGauge("sim.queue.buckets")
          .SetMax(static_cast<double>(cal->num_buckets()));
      m.GetGauge("sim.queue.scratch_bytes")
          .SetMax(static_cast<double>(cal->ApproxMemoryBytes()));
    }
    m.GetCounter("sim.state.duplicate_entries")
        .Increment(state_.duplicate_entries());
    m.GetCounter("sim.state.query_strings")
        .Increment(state_.interned_strings());
    m.GetGauge("sim.state.scratch_bytes")
        .SetMax(static_cast<double>(state_.ApproxScratchBytes()));
    m.GetTimer("sim.time.init_seconds").Record(init_seconds_);
    m.GetTimer("sim.time.run_seconds").Record(run_seconds_);
    m.GetHistogram("sim.response.hops", HopHistogramBounds())
        .Merge(agg.hop_histogram);
    // Fault-layer instruments exist only for active plans, keeping the
    // inactive-plan registry surface bit-identical to a build without
    // the fault layer.
    if (fault_active_) {
      m.GetCounter("sim.faults.crashes").Increment(crashes_);
      m.GetCounter("sim.faults.messages_dropped").Increment(agg.messages_dropped);
      m.GetCounter("sim.faults.request_timeouts").Increment(request_timeouts_);
      m.GetCounter("sim.faults.retries").Increment(retries_);
      m.GetCounter("sim.faults.failover_episodes")
          .Increment(agg.failover_episodes);
      m.GetCounter("sim.faults.client_rejoins").Increment(client_rejoins_);
      m.GetCounter("sim.faults.queries.succeeded")
          .Increment(queries_succeeded_);
      m.GetCounter("sim.faults.queries.failed").Increment(agg.queries_failed);
      m.GetHistogram("sim.faults.recovery_latency_seconds",
                     RecoveryLatencyBounds())
          .Merge(recovery_latency_hist_);
      m.GetHistogram("sim.faults.orphaned_clients", OrphanCountBounds())
          .Merge(orphaned_clients_hist_);
    }
    // Adaptation instruments, reconciled 1:1 with the SimReport adapt_*
    // fields; like the fault layer they exist only for active plans.
    if (adaptive_) {
      m.GetCounter("sim.adaptive.rounds").Increment(adapt_rounds_);
      m.GetCounter("sim.adaptive.splits").Increment(adapt_splits_);
      m.GetCounter("sim.adaptive.coalesces").Increment(adapt_coalesces_);
      m.GetCounter("sim.adaptive.edges_added").Increment(adapt_edges_added_);
      m.GetCounter("sim.adaptive.ttl_decreases")
          .Increment(adapt_ttl_decreases_);
      m.GetCounter("sim.adaptive.probes_sent").Increment(adapt_probes_sent_);
      m.GetCounter("sim.adaptive.reports_received")
          .Increment(adapt_reports_received_);
      m.GetCounter("sim.adaptive.client_moves").Increment(adapt_client_moves_);
      m.GetGauge("sim.adaptive.converged")
          .SetMax(adapt_converged_ ? 1.0 : 0.0);
      m.GetGauge("sim.adaptive.converged_round")
          .SetMax(static_cast<double>(adapt_converged_round_));
      m.GetGauge("sim.adaptive.final_clusters")
          .SetMax(static_cast<double>(adaptive_ctrl_->LiveClusters()));
      m.GetGauge("sim.adaptive.final_ttl").SetMax(static_cast<double>(ttl_));
    }
    // Routing instruments, reconciled 1:1 with the SimReport routing_*
    // fields; like the fault and adaptation layers they exist only for
    // active routing layers.
    if (routing_active_) {
      m.GetCounter("sim.routing.digest_refreshes")
          .Increment(routing_digest_refreshes_);
      m.GetCounter("sim.routing.suppressed_forwards")
          .Increment(routing_suppressed_forwards_);
      m.GetCounter("sim.routing.biased_hops").Increment(routing_biased_hops_);
      m.GetGauge("sim.routing.digests")
          .SetMax(static_cast<double>(routing_->NumDigests()));
      m.GetGauge("sim.routing.mean_fill").Set(routing_->MeanFillFraction());
      m.GetGauge("sim.routing.est_fp_rate")
          .Set(routing_->MeanFalsePositiveRate());
    }
    // Consistency instruments, reconciled 1:1 with the SimReport
    // consistency_* fields; like the other layers they exist only for
    // active plans.
    if (consistency_active_) {
      m.GetCounter("sim.consistency.changes").Increment(consistency_changes_);
      m.GetCounter("sim.consistency.stale_results")
          .Increment(consistency_stale_results_);
      m.GetCounter("sim.consistency.fresh_results")
          .Increment(consistency_fresh_results_);
      m.GetCounter("sim.consistency.replica_records")
          .Increment(consistency_replica_records_);
      m.GetCounter("sim.consistency.replica_served")
          .Increment(consistency_replica_served_);
      m.GetHistogram("sim.consistency.freshness_latency_seconds",
                     FreshnessLatencyBounds())
          .Merge(freshness_hist_);
    }
    // Capacity instruments, reconciled 1:1 with the SimReport
    // capacity_* fields; like the other layers they exist only for
    // active plans. The demotion counter lives here (not in the
    // adaptation block) because demotions only fire under an active
    // capacity plan — an adaptation-only registry surface is unchanged.
    if (capacity_active_) {
      m.GetCounter("sim.capacity.windows").Increment(cap_windows_);
      m.GetCounter("sim.capacity.peer_samples").Increment(cap_node_samples_);
      m.GetCounter("sim.capacity.peer_overloaded_samples")
          .Increment(cap_over_samples_);
      m.GetCounter("sim.capacity.overload_episodes")
          .Increment(cap_overload_episodes_);
      m.GetCounter("sim.capacity.sp_samples").Increment(cap_sp_samples_);
      m.GetCounter("sim.capacity.sp_overloaded_samples")
          .Increment(cap_sp_over_samples_);
      m.GetGauge("sim.capacity.mean_utilization")
          .Set(cap_node_samples_ > 0
                   ? cap_util_sum_ / static_cast<double>(cap_node_samples_)
                   : 0.0);
      m.GetGauge("sim.capacity.sp_mean_utilization")
          .Set(cap_sp_samples_ > 0
                   ? cap_sp_util_sum_ / static_cast<double>(cap_sp_samples_)
                   : 0.0);
      m.GetGauge("sim.capacity.sp_p99_utilization").Set(CapacitySpUtilP99());
      m.GetHistogram("sim.capacity.sp_utilization",
                     CapacityUtilizationBounds())
          .Merge(cap_sp_util_hist_);
      if (adaptive_) {
        m.GetCounter("sim.adaptive.demotions").Increment(adapt_demotions_);
      }
    }
    // Sharded-discipline instruments (DESIGN.md §12). The configuration
    // gauges describe the chosen shard map — the one deliberately
    // configuration-dependent surface, excluded from the shard-
    // invariance digests; the cell count and the lookahead audit are
    // protocol-deterministic (tests/sim/sim_property_test.cc pins the
    // audit at zero violations).
    if (disc_) {
      m.GetGauge("sim.shard.count").SetMax(static_cast<double>(num_shards_));
      m.GetGauge("sim.shard.threads")
          .SetMax(static_cast<double>(pool_->num_threads()));
      m.GetCounter("sim.shard.cells").Increment(cell_index_);
      m.GetCounter("sim.shard.lookahead_violations")
          .Increment(lookahead_violations_);
      m.GetGauge("sim.shard.min_merge_margin")
          .Set(std::isfinite(min_merge_margin_) ? min_merge_margin_ : 0.0);
    }
  }

  // --- Sharded-discipline machinery (DESIGN.md §12) --------------------------

  /// Per-shard execution lane: the simulated clock, the measuring flag,
  /// every tally a data-phase handler may touch, and the cross-shard
  /// outboxes. The legacy engine runs entirely on lanes_[0]; a sharded
  /// run gives each shard its own lane, written only by the thread that
  /// owns the shard, and folds the lanes in index order
  /// (obs/shard_merge.h) for everything user-visible.
  struct Lane {
    double now = 0.0;
    bool measuring = false;
    /// Domain whose event is executing: a cluster id during the data
    /// phase, kShardCtlDomain in control or legacy context. Selects
    /// the protocol/fault RNG streams and the emission-counter domain
    /// for scheduled events.
    std::uint32_t cur_domain = kShardCtlDomain;

    std::uint64_t queries_submitted = 0;
    std::uint64_t responses_delivered = 0;
    std::uint64_t duplicate_queries = 0;
    std::uint64_t first_responses = 0;
    std::uint64_t ring_queries_finished = 0;
    std::uint64_t messages_dropped = 0;
    std::uint64_t failover_episodes = 0;
    std::uint64_t queries_failed = 0;
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_dispatched = 0;
    // Integer-valued double sums: folding is commutative-exact, so the
    // folded value is shard-count-invariant (obs/shard_merge.h).
    double results_sum = 0.0;
    double hops_sum = 0.0;
    double rings_sum = 0.0;
    std::array<std::uint64_t, kNumMsgTypes> msg_sent = {};
    std::array<std::uint64_t, kNumMsgTypes> msg_recv = {};
    Histogram hop_histogram{HopHistogramBounds()};

    std::vector<SimEvent> outbox;      // Cross-domain data sends this cell.
    std::vector<SimEvent> ctl_outbox;  // Control emissions this cell.
  };

  /// The lane of the currently executing context. Thread-local so the
  /// parallel phase resolves it without indirection through event
  /// plumbing; every public entry point pins it to lanes_[0] (the only
  /// lane of a legacy run) and the shard drains pin it per worker.
  Lane& lane() const { return *tls_lane_; }
  static thread_local Lane* tls_lane_;

  /// Protocol-decision stream: the single legacy stream, or the
  /// executing domain's stream under the sharded discipline (the
  /// control context draws from a dedicated control stream). Stream
  /// choice is a pure function of the executing event, never of shard
  /// or thread count.
  Rng& ProtoRng() const {
    if (!disc_) return rng_;
    const std::uint32_t d = lane().cur_domain;
    return d == kShardCtlDomain ? ctl_rng_ : proto_rngs_[d];
  }
  /// Fault-decision stream, split the same way (drop/jitter draws must
  /// happen on the emitting domain's stream to stay order-free).
  Rng& FaultRng() {
    if (!disc_) return injector_.stream();
    const std::uint32_t d = lane().cur_domain;
    return d == kShardCtlDomain ? injector_.stream() : fault_rngs_[d];
  }

  /// A node's home domain: its cluster in the static layout. Partners
  /// keep their slot's cluster; clients keep their configured home even
  /// when a fault-mode rejoin relocates them (domain ownership must
  /// never move between shards mid-run).
  std::uint32_t HomeDomainOf(std::uint32_t node) const {
    if (node < num_partners_) return static_cast<std::uint32_t>(node / k_);
    return client_cluster_[node - num_partners_];
  }

  void DiscRunUntil(double sim_time);
  void ParallelDrain(double bound);
  void DrainShardUntil(std::size_t shard, double bound);
  void DrainControlUntil(double bound);
  void MergeOutboxes(double cell_close);
  Lane FoldedLanes() const;
  void DiscRetireStateBefore(double cutoff_seconds);
  void DiscSaveState(CheckpointWriter& w) const;
  bool DiscLoadState(CheckpointReader& r);

  // --- State -----------------------------------------------------------------
  NetworkInstance inst_;
  Configuration config_;
  ModelInputs inputs_;
  SimOptions options_;
  mutable Rng rng_;

  const std::size_t n_;
  const std::size_t k_;
  const std::size_t num_partners_;
  const std::size_t num_clients_;

  double qbytes_ = 0.0, sendq_ = 0.0, recvq_ = 0.0;
  std::vector<double> conn_;
  double client_conn_ = 1.0;

  SimEventQueue queue_;
  /// Duplicate tables, per-root query state, retry-root mapping, query
  /// strings and result caches (engine-checked dense / map backends).
  SimState state_;
  /// Execution lanes: exactly one for the legacy engine, one per shard
  /// under the sharded discipline. The clock, measuring flag and
  /// data-phase tallies live here (see struct Lane above). Mutable so
  /// const entry points (SaveState) can pin the thread-local lane.
  mutable std::vector<Lane> lanes_ = std::vector<Lane>(1);
  // Streaming-mode lifecycle (Start / RunUntil* / FinalizeAt).
  bool started_ = false;
  bool finalized_ = false;
  /// First root qid not yet proven retirable; RetireStateBefore resumes
  /// its forward scan here so retirement stays O(retired) overall.
  std::uint64_t retire_scan_qid_ = 0;

  std::vector<double> in_bytes_, out_bytes_, units_;
  std::vector<std::uint32_t> client_cluster_;
  std::vector<std::uint8_t> partner_alive_;
  std::vector<std::uint32_t> alive_partners_;
  std::vector<double> outage_start_;
  std::vector<std::uint32_t> rr_;

  std::uint64_t next_qid_ = 0;
  std::uint64_t partner_failures_ = 0;
  std::uint64_t cluster_outages_ = 0;
  double disconnected_client_seconds_ = 0.0;

  // Per-query latency sum (legacy engine; a sharded run accumulates
  // per-domain into latency_by_dom_ so the fold order is canonical).
  double latency_sum_ = 0.0;

  // Concrete-index mode state (query strings live in state_).
  std::unique_ptr<TitleCorpus> corpus_;
  std::vector<InvertedIndex> indexes_;                 // One per cluster.
  std::vector<std::vector<FileRecord>> node_collections_;
  std::unordered_map<std::uint32_t,
                     std::deque<std::pair<FileId, FileRecord>>>
      pending_updates_;
  FileId next_file_id_ = 1;

  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  // Observability tallies (see PublishMetrics). All of these are
  // derived purely from protocol actions, so they are bit-identical
  // across runs with the same seed. Data-phase tallies live in the
  // lanes; the globals below are only written single-threaded (legacy
  // runs, control phase, or barrier bookkeeping).
  std::uint64_t partner_recoveries_ = 0;
  std::size_t queue_depth_hwm_ = 0;
  // Wall-clock phase timers (report-only; never feed back into the
  // simulation — see the WallTimer contract in obs/metrics.h).
  double init_seconds_ = 0.0;
  double run_seconds_ = 0.0;

  // Fault-injection & recovery state. The injector owns its own salted
  // RNG stream; everything below it is consulted only when
  // fault_active_ (pay-for-what-you-use determinism).
  FaultInjector injector_;
  const bool fault_active_;
  const bool recovery_enabled_;
  std::vector<std::uint32_t> client_current_cluster_;  // Per client index.
  std::vector<std::vector<std::uint32_t>> cluster_members_;
  std::vector<double> orphaned_since_;  // -1 when connected.
  double outage_seconds_ = 0.0;
  std::uint64_t crashes_ = 0;
  std::uint64_t request_timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t client_rejoins_ = 0;
  std::uint64_t queries_succeeded_ = 0;
  Histogram recovery_latency_hist_{RecoveryLatencyBounds()};
  Histogram orphaned_clients_hist_{OrphanCountBounds()};

  // In-simulation adaptation state. When active, the controller is the
  // single source of truth for membership, head roles and the overlay;
  // everything below is consulted only when adaptive_ (the same
  // pay-for-what-you-use determinism contract as the fault block).
  const bool adaptive_;
  std::unique_ptr<AdaptiveController> adaptive_ctrl_;
  /// The live flood TTL: config_.ttl until a rule III broadcast lowers
  /// it.
  int ttl_;
  // Control-message costs, cached from the CostTable at construction.
  double probe_bytes_ = 0.0, report_bytes_ = 0.0, ttl_update_bytes_ = 0.0;
  double send_ctl_ = 0.0, recv_ctl_ = 0.0;
  /// Per-node traffic accumulated since the last decision round — the
  /// measured window loads rules I-III act on. Unlike the report
  /// accounting these accrue during warmup too.
  std::vector<double> adapt_in_bytes_, adapt_out_bytes_, adapt_units_;
  double window_start_ = 0.0;
  std::uint64_t adapt_rounds_ = 0;
  std::uint64_t adapt_splits_ = 0;
  std::uint64_t adapt_coalesces_ = 0;
  std::uint64_t adapt_edges_added_ = 0;
  std::uint64_t adapt_ttl_decreases_ = 0;
  std::uint64_t adapt_probes_sent_ = 0;
  std::uint64_t adapt_reports_received_ = 0;
  std::uint64_t adapt_client_moves_ = 0;
  std::uint64_t adapt_demotions_ = 0;
  bool adapt_converged_ = false;
  std::uint64_t adapt_converged_round_ = 0;

  // Content-aware routing state (index/routing_index.h). Consulted
  // only when routing_active_ (the same pay-for-what-you-use
  // determinism contract as the fault and adaptation blocks).
  // Validate() confines the layer to the legacy engine, so every tally
  // below is single-threaded.
  const bool routing_active_;
  std::unique_ptr<RoutingTable> routing_;
  double digest_bytes_ = 0.0;  ///< Wire bytes of one DigestAnnounce.
  std::uint64_t routing_digest_refreshes_ = 0;
  std::uint64_t routing_suppressed_forwards_ = 0;
  std::uint64_t routing_biased_hops_ = 0;
  /// Scratch for the kWalker digest-positive neighbor subset.
  std::vector<std::uint32_t> walk_scratch_;

  // Index-consistency & replication state (model/consistency.h,
  // DESIGN.md §14). Consulted only when consistency_active_ (the same
  // pay-for-what-you-use determinism contract as the fault, adaptation
  // and routing blocks). Validate() confines the layer to the legacy
  // engine with static membership, so every tally below is
  // single-threaded and clusters never change composition.
  const bool consistency_active_;
  /// Dedicated decision stream (change clocks, stale classification,
  /// replica serving), salted from the run seed.
  Rng cons_rng_{0};
  // Consistency message costs, cached from the CostTable.
  double invalidate_bytes_ = 0.0;
  double refresh_poll_bytes_ = 0.0;
  double refresh_reply_bytes_ = 0.0;
  /// Per-cluster stale-record counters (push / none schemes).
  std::vector<double> cons_stale_;
  /// Pull scheme: per-cluster FIFO of change timestamps plus the index
  /// of the first unrefreshed entry (a poll round pops the prefix of
  /// changes made before its tick).
  std::vector<std::vector<double>> cons_pending_;
  std::vector<std::size_t> cons_head_;
  /// Per-cluster replica-record stores (active ReplicationPlan only).
  std::vector<double> cons_replicas_;
  /// Scratch for one push's distinct replica targets.
  std::vector<std::size_t> replica_targets_;
  std::uint64_t consistency_changes_ = 0;
  std::uint64_t consistency_stale_results_ = 0;
  std::uint64_t consistency_fresh_results_ = 0;
  std::uint64_t consistency_replica_records_ = 0;
  std::uint64_t consistency_replica_served_ = 0;
  double consistency_replication_bytes_ = 0.0;
  Histogram freshness_hist_{FreshnessLatencyBounds()};

  // Heterogeneous-capacity state (CapacityPlan; DESIGN.md §15).
  // Consulted only when capacity_active_ — the same
  // pay-for-what-you-use determinism contract as the other layers.
  // Validate() confines the layer to the legacy engine, so the window
  // bookkeeping below is single-threaded.
  const bool capacity_active_;
  /// Per-node sampled capacities, drawn from the plan's dedicated
  /// salted stream at construction (never from the protocol streams).
  std::vector<PeerCapacity> node_capacity_;
  /// Current utilization-window accumulators (bytes / cost units);
  /// reset when each window closes. Like the adapt_* accumulators they
  /// accrue during warmup too.
  std::vector<double> cap_in_bytes_;
  std::vector<double> cap_out_bytes_;
  std::vector<double> cap_units_;
  double cap_window_start_ = 0.0;
  /// Per-node overload flag as of the last closed window (0/1); the
  /// rising edge counts an overload episode.
  std::vector<std::uint8_t> cap_overloaded_;
  // Folded measurement-phase tallies (windows fully past warmup).
  std::uint64_t cap_windows_ = 0;
  std::uint64_t cap_node_samples_ = 0;
  std::uint64_t cap_over_samples_ = 0;
  std::uint64_t cap_overload_episodes_ = 0;
  std::uint64_t cap_sp_samples_ = 0;
  std::uint64_t cap_sp_over_samples_ = 0;
  double cap_util_sum_ = 0.0;
  double cap_sp_util_sum_ = 0.0;
  Histogram cap_sp_util_hist_{CapacityUtilizationBounds()};

  // Sharded-discipline state (DESIGN.md §12). Consulted only when
  // disc_; a legacy run never reads past this comment.
  bool disc_ = false;
  std::size_t num_shards_ = 1;   // S: shard s owns domains {d : d % S == s}.
  std::size_t num_threads_ = 1;  // T: worker threads draining the shards.
  double cell_width_ = 0.0;      // Lookahead window W = hop latency.
  std::uint64_t cell_index_ = 0; /// Completed synchronization cells.
  /// True while worker threads are draining shards; flips the
  /// cross-domain data send path from direct insert to outbox+merge.
  bool in_parallel_ = false;
  std::unique_ptr<ShardPool> pool_;
  /// One event queue per shard plus a dedicated control queue, all
  /// (time, key)-ordered via content-derived keys (SchedulePreKeyed).
  std::vector<SimEventQueue> shard_queues_;
  std::unique_ptr<SimEventQueue> ctl_queue_;
  /// Per-domain RNG streams (Rng::Salted from the run seed) and
  /// per-domain emission counters for event keys.
  mutable std::vector<Rng> proto_rngs_;
  std::vector<Rng> fault_rngs_;
  mutable Rng ctl_rng_{0};
  std::vector<std::uint64_t> ctr_dom_;
  std::uint64_t ctl_ctr_ = 0;
  /// Per-node query-id counters: disc qids are (user << 32 | counter)
  /// so every id is minted by its owner's shard without coordination.
  std::vector<std::uint32_t> user_qid_ctr_;
  /// Discipline-owned query state, sharded by home domain (the dense
  /// SimState backend is keyed by globally sequential qids and cannot
  /// host the per-user id space): duplicate tables per cluster slot,
  /// root-query state and retry-root mapping per home domain.
  std::vector<FlatMap64<std::uint32_t>> disc_dup_;
  std::vector<FlatMap64<QueryState>> disc_state_;
  std::vector<FlatMap64<std::uint64_t>> disc_root_;
  /// Per-home-domain first-response latency sums, folded in domain
  /// order (FP addition is not associative; a canonical order makes
  /// the fold shard-count-invariant).
  std::vector<double> latency_by_dom_;
  /// Lookahead audit: min (arrival - cell close) over merged
  /// cross-shard events, and how many landed before the close by more
  /// than 1e-9 (must stay 0; tests/sim/sim_property_test.cc).
  double min_merge_margin_ = std::numeric_limits<double>::infinity();
  std::uint64_t lookahead_violations_ = 0;
};

thread_local Simulator::Impl::Lane* Simulator::Impl::tls_lane_ = nullptr;

/// Sharded main loop (DESIGN.md §12): conservative synchronization
/// cells of width W = hop latency. Every full cell drains all shards in
/// parallel up to the cell close, merges the cross-shard outboxes, then
/// runs the control phase at the barrier. A horizon inside the open
/// cell (a streaming window cut) drains and merges without closing the
/// cell, so any partitioning of RunUntil calls executes the identical
/// event sequence as one batch call.
void Simulator::Impl::DiscRunUntil(double sim_time) {
  for (;;) {
    const double cell_close =
        static_cast<double>(cell_index_ + 1) * cell_width_;
    if (cell_close > sim_time) {
      ParallelDrain(sim_time);
      MergeOutboxes(cell_close);
      return;
    }
    ParallelDrain(cell_close);
    MergeOutboxes(cell_close);
    DrainControlUntil(cell_close);
    ++cell_index_;
    // The queue high-water mark samples once per completed cell — never
    // at a mid-cell window cut — so the sample sequence (and the gauge)
    // is invariant to the RunUntil partitioning.
    std::size_t depth = ctl_queue_->size();
    for (const SimEventQueue& q : shard_queues_) depth += q.size();
    if (depth > queue_depth_hwm_) queue_depth_hwm_ = depth;
  }
}

void Simulator::Impl::ParallelDrain(double bound) {
  in_parallel_ = true;
  pool_->RunOnShards(
      [this, bound](std::size_t shard) { DrainShardUntil(shard, bound); });
  in_parallel_ = false;
  tls_lane_ = &lanes_[0];
}

/// Drains one shard's data events with time strictly below `bound`.
/// The strict bound puts an event landing exactly on a grid point into
/// the FOLLOWING cell — the same side of the barrier in every
/// configuration, including the merged cross-shard arrivals whose
/// lookahead guarantees time >= the next cell's start.
void Simulator::Impl::DrainShardUntil(std::size_t shard, double bound) {
  Lane& ln = lanes_[shard];
  tls_lane_ = &ln;
  SimEventQueue& q = shard_queues_[shard];
  while (!q.empty() && q.NextTime() < bound) {
    const SimEvent e = q.Pop();
    ++ln.events_dispatched;
    ln.now = e.time;
    ln.measuring = e.time >= options_.warmup_seconds;
    ln.cur_domain = DomainOfEvent(e);
    Dispatch(e);
  }
}

/// Runs the barrier's control phase: every control event quantized onto
/// this cell close (inclusive bound — control executes AT the barrier),
/// single-threaded on lane 0, ordered by the content keys.
void Simulator::Impl::DrainControlUntil(double bound) {
  Lane& ln = lanes_[0];
  tls_lane_ = &ln;
  while (!ctl_queue_->empty() && ctl_queue_->NextTime() <= bound) {
    const SimEvent e = ctl_queue_->Pop();
    ++ln.events_dispatched;
    ln.now = e.time;
    ln.measuring = e.time >= options_.warmup_seconds;
    ln.cur_domain = kShardCtlDomain;
    Dispatch(e);
  }
  ln.cur_domain = kShardCtlDomain;
}

/// Folds every lane outbox into the destination queues, in lane index
/// order (obs/shard_merge.h). Runs single-threaded between phases. The
/// lookahead audit measures each data event against the EMITTING cell's
/// close — also when the emission happened in a partial tail drain — so
/// streamed and batch runs audit identically.
void Simulator::Impl::MergeOutboxes(double cell_close) {
  for (Lane& ln : lanes_) {
    for (const SimEvent& e : ln.outbox) {
      const double margin = e.time - cell_close;
      if (margin < min_merge_margin_) min_merge_margin_ = margin;
      if (margin < -1e-9) ++lookahead_violations_;
      shard_queues_[DomainOfEvent(e) % num_shards_].SchedulePreKeyed(e);
    }
    ln.outbox.clear();
    for (const SimEvent& e : ln.ctl_outbox) ctl_queue_->SchedulePreKeyed(e);
    ln.ctl_outbox.clear();
  }
}

/// The canonical index-order fold of the lanes. Integer counters and
/// integer-valued double sums are commutative-exact, so the folded
/// value is shard/thread-count-invariant; `now` folds as the maximum
/// (the globally last executed event — the canonical clock).
auto Simulator::Impl::FoldedLanes() const -> Lane {
  Lane agg = lanes_[0];
  for (std::size_t s = 1; s < lanes_.size(); ++s) {
    const Lane& ln = lanes_[s];
    if (ln.now > agg.now) agg.now = ln.now;
    agg.queries_submitted += ln.queries_submitted;
    agg.responses_delivered += ln.responses_delivered;
    agg.duplicate_queries += ln.duplicate_queries;
    agg.first_responses += ln.first_responses;
    agg.ring_queries_finished += ln.ring_queries_finished;
    agg.messages_dropped += ln.messages_dropped;
    agg.failover_episodes += ln.failover_episodes;
    agg.queries_failed += ln.queries_failed;
    agg.events_scheduled += ln.events_scheduled;
    agg.events_dispatched += ln.events_dispatched;
    agg.results_sum += ln.results_sum;
    agg.hops_sum += ln.hops_sum;
    agg.rings_sum += ln.rings_sum;
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
      agg.msg_sent[t] += ln.msg_sent[t];
      agg.msg_recv[t] += ln.msg_recv[t];
    }
    agg.hop_histogram.Merge(ln.hop_histogram);
  }
  return agg;
}

/// Sharded-discipline retirement. Entries are content-keyed (no
/// sequential floor to advance), so retirement rebuilds each container
/// without the retired set: first the duplicate tables and the
/// retry-root mapping — whose liveness resolves through the CURRENT
/// root state — then the root state itself. Runs single-threaded
/// between windows.
void Simulator::Impl::DiscRetireStateBefore(double cutoff_seconds) {
  const auto root_live = [this, cutoff_seconds](std::uint64_t qid) {
    const std::uint64_t root = RootOfW(qid);
    const QueryState* qs = disc_state_[DomainOfQid(root)].Find(root);
    return qs != nullptr && qs->submit_time >= cutoff_seconds;
  };
  for (FlatMap64<std::uint32_t>& dup : disc_dup_) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> keep;
    keep.reserve(dup.size());
    dup.ForEach([&](std::uint64_t qid, const std::uint32_t& upstream) {
      if (root_live(qid)) keep.emplace_back(qid, upstream);
    });
    if (keep.size() == dup.size()) continue;
    dup.Clear();
    for (const auto& [qid, upstream] : keep) {
      *dup.FindOrInsert(qid).first = upstream;
    }
  }
  for (FlatMap64<std::uint64_t>& roots : disc_root_) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> keep;
    keep.reserve(roots.size());
    roots.ForEach([&](std::uint64_t qid, const std::uint64_t& root) {
      if (root_live(root)) keep.emplace_back(qid, root);
    });
    if (keep.size() == roots.size()) continue;
    roots.Clear();
    for (const auto& [qid, root] : keep) {
      *roots.FindOrInsert(qid).first = root;
    }
  }
  for (FlatMap64<QueryState>& states : disc_state_) {
    std::vector<std::pair<std::uint64_t, QueryState>> keep;
    keep.reserve(states.size());
    states.ForEach([&](std::uint64_t qid, const QueryState& qs) {
      if (qs.submit_time >= cutoff_seconds) keep.emplace_back(qid, qs);
    });
    if (keep.size() == states.size()) continue;
    states.Clear();
    for (const auto& [qid, qs] : keep) {
      *states.FindOrInsert(qid).first = qs;
    }
  }
}

/// Sharded-discipline checkpoint payload: canonical and shard/thread-
/// count-invariant by construction. Per-lane tallies are folded,
/// pending events from every queue are merged into (time, key) order —
/// the one order independent of the domain-to-shard map — and the hash
/// containers are written sorted by key. The identical bytes are
/// produced by every (S, T), and restore into any (S, T).
void Simulator::Impl::DiscSaveState(CheckpointWriter& w) const {
  for (const Lane& ln : lanes_) {
    SPPNET_CHECK_MSG(ln.outbox.empty() && ln.ctl_outbox.empty(),
                     "checkpoint cut inside a parallel phase");
  }
  const Lane agg = FoldedLanes();
  w.PutDouble(agg.now);  // Canonical clock: the last executed event.
  w.PutU64(cell_index_);
  w.PutU64(ctl_ctr_);
  w.PutU64Vector(ctr_dom_);
  w.PutU32Vector(user_qid_ctr_);
  for (const Rng& rng : proto_rngs_) PutRng(w, rng);
  for (const Rng& rng : fault_rngs_) PutRng(w, rng);
  PutRng(w, ctl_rng_);
  PutRng(w, injector_.stream());
  std::vector<SimEvent> events = ctl_queue_->SnapshotEvents();
  for (const SimEventQueue& q : shard_queues_) {
    const std::vector<SimEvent> shard_events = q.SnapshotEvents();
    events.insert(events.end(), shard_events.begin(), shard_events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const SimEvent& a, const SimEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  w.PutU64(events.size());
  for (const SimEvent& e : events) {
    w.PutDouble(e.time);
    w.PutU64(e.seq);
    w.PutU32(e.kind);
    w.PutU32(e.node);
    w.PutU64(e.a);
    w.PutU64(e.b);
    w.PutDouble(e.x);
  }
  // Load accounting and churn state (legacy shapes).
  w.PutDoubleVector(in_bytes_);
  w.PutDoubleVector(out_bytes_);
  w.PutDoubleVector(units_);
  w.PutU8Vector(partner_alive_);
  w.PutU32Vector(alive_partners_);
  w.PutDoubleVector(outage_start_);
  w.PutU32Vector(rr_);
  // Folded lane tallies.
  w.PutU64(agg.queries_submitted);
  w.PutU64(agg.responses_delivered);
  w.PutU64(agg.duplicate_queries);
  w.PutU64(agg.first_responses);
  w.PutU64(agg.ring_queries_finished);
  w.PutU64(agg.messages_dropped);
  w.PutU64(agg.failover_episodes);
  w.PutU64(agg.queries_failed);
  w.PutU64(agg.events_scheduled);
  w.PutU64(agg.events_dispatched);
  w.PutDouble(agg.results_sum);
  w.PutDouble(agg.hops_sum);
  w.PutDouble(agg.rings_sum);
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) w.PutU64(agg.msg_sent[t]);
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) w.PutU64(agg.msg_recv[t]);
  PutHistogram(w, agg.hop_histogram);
  w.PutDoubleVector(latency_by_dom_);
  // Control-phase globals.
  w.PutU64(partner_failures_);
  w.PutU64(cluster_outages_);
  w.PutDouble(disconnected_client_seconds_);
  w.PutU64(partner_recoveries_);
  w.PutU64(static_cast<std::uint64_t>(queue_depth_hwm_));
  w.PutDouble(outage_seconds_);
  w.PutU64(crashes_);
  w.PutU64(request_timeouts_);
  w.PutU64(retries_);
  w.PutU64(client_rejoins_);
  w.PutU64(queries_succeeded_);
  PutHistogram(w, recovery_latency_hist_);
  PutHistogram(w, orphaned_clients_hist_);
  // Lookahead audit (a resumed run keeps reporting the whole run; the
  // no-merge-yet sentinel is +inf, encoded as a flag).
  w.PutBool(std::isfinite(min_merge_margin_));
  w.PutDouble(std::isfinite(min_merge_margin_) ? min_merge_margin_ : 0.0);
  w.PutU64(lookahead_violations_);
  // Fault membership (legacy shapes).
  w.PutBool(fault_active_);
  if (fault_active_) {
    w.PutU32Vector(client_current_cluster_);
    w.PutU64(cluster_members_.size());
    for (const std::vector<std::uint32_t>& members : cluster_members_) {
      w.PutU32Vector(members);
    }
    w.PutDoubleVector(orphaned_since_);
  }
  // Adaptation layer (legacy shapes).
  w.PutU32(static_cast<std::uint32_t>(ttl_));
  w.PutBool(adaptive_);
  if (adaptive_) {
    adaptive_ctrl_->SaveTo(w);
    w.PutDoubleVector(adapt_in_bytes_);
    w.PutDoubleVector(adapt_out_bytes_);
    w.PutDoubleVector(adapt_units_);
    w.PutDouble(window_start_);
    w.PutU64(adapt_rounds_);
    w.PutU64(adapt_splits_);
    w.PutU64(adapt_coalesces_);
    w.PutU64(adapt_edges_added_);
    w.PutU64(adapt_ttl_decreases_);
    w.PutU64(adapt_probes_sent_);
    w.PutU64(adapt_reports_received_);
    w.PutU64(adapt_client_moves_);
    w.PutU64(adapt_demotions_);
    w.PutBool(adapt_converged_);
    w.PutU64(adapt_converged_round_);
  }
  // Discipline query state, each container sorted by key (FlatMap64
  // iteration order is layout-dependent and must not leak into the
  // payload). The duplicate-table count is written explicitly because
  // adaptation grows the cluster-slot space past n.
  w.PutU64(disc_dup_.size());
  for (const FlatMap64<std::uint32_t>& dup : disc_dup_) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
    entries.reserve(dup.size());
    dup.ForEach([&](std::uint64_t qid, const std::uint32_t& upstream) {
      entries.emplace_back(qid, upstream);
    });
    std::sort(entries.begin(), entries.end());
    w.PutU64(entries.size());
    for (const auto& [qid, upstream] : entries) {
      w.PutU64(qid);
      w.PutU32(upstream);
    }
  }
  for (const FlatMap64<QueryState>& states : disc_state_) {
    std::vector<std::pair<std::uint64_t, QueryState>> entries;
    entries.reserve(states.size());
    states.ForEach([&](std::uint64_t qid, const QueryState& qs) {
      entries.emplace_back(qid, qs);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.PutU64(entries.size());
    for (const auto& [qid, qs] : entries) {
      w.PutU64(qid);
      w.PutU32(qs.user);
      w.PutU32(qs.query_class);
      w.PutU32(qs.ring_ttl);
      w.PutDouble(qs.ring_results);
      w.PutDouble(qs.submit_time);
      w.PutU64(qs.cache_key);
      w.PutBool(qs.first_response_seen);
    }
  }
  for (const FlatMap64<std::uint64_t>& roots : disc_root_) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    entries.reserve(roots.size());
    roots.ForEach([&](std::uint64_t qid, const std::uint64_t& root) {
      entries.emplace_back(qid, root);
    });
    std::sort(entries.begin(), entries.end());
    w.PutU64(entries.size());
    for (const auto& [qid, root] : entries) {
      w.PutU64(qid);
      w.PutU64(root);
    }
  }
}

/// Counterpart of DiscSaveState on a freshly constructed sharded
/// simulator — with ANY shard/thread plan: restored events re-enter the
/// queue owning their domain under THIS simulator's shard map via
/// SchedulePreKeyed (the payload carries content keys; there is no
/// sequence floor to restore).
bool Simulator::Impl::DiscLoadState(CheckpointReader& r) {
  const double clock = r.GetDouble();
  cell_index_ = r.GetU64();
  ctl_ctr_ = r.GetU64();
  ctr_dom_ = r.GetU64Vector();
  user_qid_ctr_ = r.GetU32Vector();
  for (Rng& rng : proto_rngs_) GetRng(r, rng);
  for (Rng& rng : fault_rngs_) GetRng(r, rng);
  GetRng(r, ctl_rng_);
  GetRng(r, injector_.stream());
  const std::uint64_t num_events = r.GetU64();
  std::vector<SimEvent> events;
  for (std::uint64_t i = 0; i < num_events && r.ok(); ++i) {
    SimEvent e;
    e.time = r.GetDouble();
    e.seq = r.GetU64();
    e.kind = r.GetU32();
    e.node = r.GetU32();
    e.a = r.GetU64();
    e.b = r.GetU64();
    e.x = r.GetDouble();
    events.push_back(e);
  }
  if (!r.ok() || ctr_dom_.size() != n_ ||
      user_qid_ctr_.size() != num_partners_ + num_clients_) {
    return false;
  }
  // Validate before routing (DomainOfEvent indexes by node/cluster):
  // a foreign payload must fail cleanly, not corrupt the queues.
  for (const SimEvent& e : events) {
    const bool cluster_kind = e.kind == kClusterQueryArrive ||
                              e.kind == kClusterWalkLaunch ||
                              e.kind == kClusterWalkArrive;
    if (!std::isfinite(e.time) || e.kind > kRejoinRequest) return false;
    if (cluster_kind ? (adaptive_ || e.node >= n_) : e.node >= TotalNodes()) {
      return false;
    }
  }
  for (const SimEvent& e : events) {
    if (IsCtlKind(e.kind)) {
      ctl_queue_->SchedulePreKeyed(e);
    } else {
      shard_queues_[DomainOfEvent(e) % num_shards_].SchedulePreKeyed(e);
    }
  }
  in_bytes_ = r.GetDoubleVector();
  out_bytes_ = r.GetDoubleVector();
  units_ = r.GetDoubleVector();
  partner_alive_ = r.GetU8Vector();
  alive_partners_ = r.GetU32Vector();
  outage_start_ = r.GetDoubleVector();
  rr_ = r.GetU32Vector();
  Lane& ln0 = lanes_[0];
  ln0.queries_submitted = r.GetU64();
  ln0.responses_delivered = r.GetU64();
  ln0.duplicate_queries = r.GetU64();
  ln0.first_responses = r.GetU64();
  ln0.ring_queries_finished = r.GetU64();
  ln0.messages_dropped = r.GetU64();
  ln0.failover_episodes = r.GetU64();
  ln0.queries_failed = r.GetU64();
  ln0.events_scheduled = r.GetU64();
  ln0.events_dispatched = r.GetU64();
  ln0.results_sum = r.GetDouble();
  ln0.hops_sum = r.GetDouble();
  ln0.rings_sum = r.GetDouble();
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) ln0.msg_sent[t] = r.GetU64();
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) ln0.msg_recv[t] = r.GetU64();
  if (!GetHistogram(r, ln0.hop_histogram)) return false;
  latency_by_dom_ = r.GetDoubleVector();
  partner_failures_ = r.GetU64();
  cluster_outages_ = r.GetU64();
  disconnected_client_seconds_ = r.GetDouble();
  partner_recoveries_ = r.GetU64();
  queue_depth_hwm_ = static_cast<std::size_t>(r.GetU64());
  outage_seconds_ = r.GetDouble();
  crashes_ = r.GetU64();
  request_timeouts_ = r.GetU64();
  retries_ = r.GetU64();
  client_rejoins_ = r.GetU64();
  queries_succeeded_ = r.GetU64();
  if (!GetHistogram(r, recovery_latency_hist_)) return false;
  if (!GetHistogram(r, orphaned_clients_hist_)) return false;
  const bool margin_finite = r.GetBool();
  const double margin = r.GetDouble();
  min_merge_margin_ =
      margin_finite ? margin : std::numeric_limits<double>::infinity();
  lookahead_violations_ = r.GetU64();
  const bool saved_fault_active = r.GetBool();
  if (fault_active_) {
    client_current_cluster_ = r.GetU32Vector();
    const std::uint64_t num_lists = r.GetU64();
    std::vector<std::vector<std::uint32_t>> members;
    for (std::uint64_t i = 0; i < num_lists && r.ok(); ++i) {
      members.push_back(r.GetU32Vector());
    }
    cluster_members_ = std::move(members);
    orphaned_since_ = r.GetDoubleVector();
  }
  ttl_ = static_cast<int>(r.GetU32());
  const bool saved_adaptive = r.GetBool();
  if (adaptive_) {
    if (!adaptive_ctrl_->LoadFrom(r)) return false;
    adapt_in_bytes_ = r.GetDoubleVector();
    adapt_out_bytes_ = r.GetDoubleVector();
    adapt_units_ = r.GetDoubleVector();
    window_start_ = r.GetDouble();
    adapt_rounds_ = r.GetU64();
    adapt_splits_ = r.GetU64();
    adapt_coalesces_ = r.GetU64();
    adapt_edges_added_ = r.GetU64();
    adapt_ttl_decreases_ = r.GetU64();
    adapt_probes_sent_ = r.GetU64();
    adapt_reports_received_ = r.GetU64();
    adapt_client_moves_ = r.GetU64();
    adapt_demotions_ = r.GetU64();
    adapt_converged_ = r.GetBool();
    adapt_converged_round_ = r.GetU64();
  }
  const std::uint64_t dup_count = r.GetU64();
  if (!r.ok() || dup_count < n_ || dup_count > (std::uint64_t{1} << 24)) {
    return false;
  }
  disc_dup_.clear();
  disc_dup_.resize(static_cast<std::size_t>(dup_count));
  for (FlatMap64<std::uint32_t>& dup : disc_dup_) {
    const std::uint64_t count = r.GetU64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const std::uint64_t qid = r.GetU64();
      *dup.FindOrInsert(qid).first = r.GetU32();
    }
  }
  for (FlatMap64<QueryState>& states : disc_state_) {
    const std::uint64_t count = r.GetU64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const std::uint64_t qid = r.GetU64();
      QueryState qs;
      qs.user = r.GetU32();
      qs.query_class = r.GetU32();
      qs.ring_ttl = r.GetU32();
      qs.ring_results = r.GetDouble();
      qs.submit_time = r.GetDouble();
      qs.cache_key = r.GetU64();
      qs.first_response_seen = r.GetBool();
      *states.FindOrInsert(qid).first = qs;
    }
  }
  for (FlatMap64<std::uint64_t>& roots : disc_root_) {
    const std::uint64_t count = r.GetU64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const std::uint64_t qid = r.GetU64();
      *roots.FindOrInsert(qid).first = r.GetU64();
    }
  }
  // Every lane resumes from the canonical clock; the next drain stamps
  // per-event times before any handler reads them.
  for (Lane& ln : lanes_) {
    ln.now = clock;
    ln.measuring = clock >= options_.warmup_seconds;
    ln.cur_domain = kShardCtlDomain;
  }
  const std::size_t total = num_partners_ + num_clients_;
  bool consistent =
      saved_fault_active == fault_active_ && saved_adaptive == adaptive_ &&
      std::isfinite(clock) && clock >= 0.0 && ttl_ >= 0 &&
      latency_by_dom_.size() == n_ && in_bytes_.size() == total &&
      out_bytes_.size() == total && units_.size() == total &&
      partner_alive_.size() == num_partners_ &&
      alive_partners_.size() >= n_ && rr_.size() >= n_ &&
      outage_start_.size() >= n_;
  if (fault_active_) {
    consistent = consistent &&
                 client_current_cluster_.size() == num_clients_ &&
                 orphaned_since_.size() == num_clients_ &&
                 cluster_members_.size() >= n_;
  }
  if (adaptive_) {
    consistent = consistent && adapt_in_bytes_.size() == total &&
                 adapt_out_bytes_.size() == total &&
                 adapt_units_.size() == total;
  }
  return r.ok() && consistent;
}

void SimOptions::Validate() const {
  SPPNET_CHECK_MSG(std::isfinite(duration_seconds) && duration_seconds > 0.0,
                   "duration must be finite and > 0");
  SPPNET_CHECK_MSG(std::isfinite(warmup_seconds) && warmup_seconds >= 0.0,
                   "warmup must be finite and >= 0");
  SPPNET_CHECK_MSG(
      std::isfinite(hop_latency_seconds) && hop_latency_seconds >= 0.0,
      "hop latency must be finite and >= 0");
  SPPNET_CHECK_MSG(result_cache_ttl_seconds >= 0.0,
                   "result-cache TTL must be >= 0");
  // Every plan validates its own knobs unconditionally (the LayerPlan
  // contract, sim/plan.h).
  churn.Validate();
  faults.Validate();
  adaptive.Validate();
  shards.Validate();
  routing.Validate();
  consistency.Validate();
  capacity.Validate();
  // Per-layer requirements that are not pairwise layer conflicts.
  if (shards.enabled()) {
    // The sharded discipline's conservative windows are bounded by the
    // minimum cross-shard message delay; a zero hop latency means zero
    // lookahead and no legal window.
    SPPNET_CHECK_MSG(hop_latency_seconds > 0.0,
                     "a sharded run needs a positive lookahead "
                     "(hop_latency_seconds > 0)");
  }
  if (adaptive.enabled()) {
    SPPNET_CHECK_MSG(strategy == SearchStrategy::kFlood,
                     "in-sim adaptation requires the flood strategy");
  }
  if (RoutingActive(*this)) {
    SPPNET_CHECK_MSG(strategy != SearchStrategy::kRandomWalk,
                     "routing with random walks: use kWalker");
  }
  if (consistency.enabled()) {
    SPPNET_CHECK_MSG(strategy == SearchStrategy::kFlood,
                     "the consistency layer requires the flood strategy");
  }
  // Strategy knobs that would silently divide by zero or walk nowhere
  // if left unvalidated. Checked only for the strategies that read
  // them (pay-for-what-you-use, like the layer gates above).
  if (strategy == SearchStrategy::kExpandingRing) {
    SPPNET_CHECK_MSG(ring_satisfaction_results >= 1,
                     "expanding ring needs ring_satisfaction_results >= 1");
  }
  if (strategy == SearchStrategy::kRandomWalk ||
      strategy == SearchStrategy::kWalker) {
    SPPNET_CHECK_MSG(num_walkers >= 1, "walks need num_walkers >= 1");
    SPPNET_CHECK_MSG(walk_ttl >= 1, "walks need walk_ttl >= 1");
  }
  // Cross-layer compatibility: ONE matrix (sim/plan.cc), consulted with
  // the active-feature mask. Adding a layer means adding its conflicts
  // there, not another ad-hoc block here.
  std::uint32_t active = 0;
  if (shards.enabled()) active |= FeatureBit(SimFeature::kShards);
  if (churn.enabled()) active |= FeatureBit(SimFeature::kChurn);
  if (faults.enabled()) active |= FeatureBit(SimFeature::kFaults);
  if (adaptive.enabled()) active |= FeatureBit(SimFeature::kAdaptive);
  if (RoutingActive(*this)) active |= FeatureBit(SimFeature::kRouting);
  if (consistency.enabled()) active |= FeatureBit(SimFeature::kConsistency);
  if (capacity.enabled()) active |= FeatureBit(SimFeature::kCapacity);
  if (concrete_index) active |= FeatureBit(SimFeature::kConcreteIndex);
  if (result_cache_ttl_seconds > 0.0) {
    active |= FeatureBit(SimFeature::kResultCache);
  }
  CheckFeatureCompatibility(active);
}

Simulator::Simulator(const NetworkInstance& instance,
                     const Configuration& config, const ModelInputs& inputs,
                     const SimOptions& options)
    : impl_(new Impl(instance, config, inputs, options)) {}

Simulator::~Simulator() { delete impl_; }

SimReport Simulator::Run() { return impl_->Run(); }

void Simulator::Start() { impl_->Start(); }

void Simulator::RunUntil(double sim_time) { impl_->RunUntil(sim_time); }

double Simulator::Now() const { return impl_->Now(); }

std::uint64_t Simulator::events_dispatched() const {
  return impl_->events_dispatched();
}

SimReport Simulator::Finalize(double end_time) {
  return impl_->FinalizeAt(end_time);
}

void Simulator::PublishCumulativeMetrics(MetricsRegistry& registry) const {
  impl_->PublishCumulativeMetrics(registry);
}

void Simulator::InjectQueryAt(double time, std::uint32_t user) {
  impl_->InjectQueryAt(time, user);
}

void Simulator::RetireStateBefore(double cutoff_seconds) {
  impl_->RetireStateBefore(cutoff_seconds);
}

void Simulator::SaveState(CheckpointWriter& w) const { impl_->SaveState(w); }

bool Simulator::LoadState(CheckpointReader& r) { return impl_->LoadState(r); }

}  // namespace sppnet
