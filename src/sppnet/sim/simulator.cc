#include "sppnet/sim/simulator.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sppnet/bootstrap/discovery.h"
#include "sppnet/common/check.h"
#include "sppnet/common/rng.h"
#include "sppnet/index/corpus.h"
#include "sppnet/index/inverted_index.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/event_queue.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/sim_state.h"

namespace sppnet {
namespace {

// Event kinds.
enum : std::uint32_t {
  kQuerySubmit = 0,
  kQueryArrive,
  kResponseArrive,
  kJoinSubmit,
  kJoinArrive,
  kUpdateSubmit,
  kUpdateArrive,
  kPartnerFail,
  kPartnerRecover,
  kWalkArrive,     // Random-walk query hop.
  kRingCheck,      // Expanding-ring satisfaction probe.
  kPartnerCrash,   // Injected mid-session crash clock (fault layer).
  kRequestCheck,   // Per-request timeout probe (recovery protocol).
  kRetrySubmit,    // Backed-off query retry (recovery protocol).
};

// Wire message classes for the observability counters. Every
// accounted send/receive names its class so the per-type counters
// reconcile with the byte accounting by construction.
enum class Msg : std::size_t { kQuery = 0, kResponse, kJoin, kUpdate };
inline constexpr std::size_t kNumMsgTypes = 4;
inline constexpr const char* kMsgNames[kNumMsgTypes] = {"query", "response",
                                                        "join", "update"};

// Sentinel "upstream" marking a query submitted by the super-peer's own
// user: results are consumed locally and no submission hop exists.
constexpr std::uint32_t kSelfUpstream = 0xffffffffu;

// Query payload packing: b = upstream(32) | class(24) | ttl(8).
std::uint64_t PackQuery(std::uint32_t upstream, std::uint32_t query_class,
                        std::uint32_t ttl) {
  return (static_cast<std::uint64_t>(upstream) << 32) |
         (static_cast<std::uint64_t>(query_class & 0xffffffu) << 8) |
         static_cast<std::uint64_t>(ttl & 0xffu);
}

// Response payload packing: b = results(32) | addrs(16) | hops(16).
std::uint64_t PackResponse(std::uint32_t results, std::uint32_t addrs,
                           std::uint32_t hops) {
  return (static_cast<std::uint64_t>(results) << 32) |
         (static_cast<std::uint64_t>(addrs & 0xffffu) << 16) |
         static_cast<std::uint64_t>(hops & 0xffffu);
}

std::uint32_t SampleBinomialApprox(double n, double p, Rng& rng) {
  const double lambda = n * p;
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's Poisson sampler; an accurate stand-in for Binomial(n, p)
    // when p is tiny (selection powers are ~1e-4).
    const double limit = std::exp(-lambda);
    double prod = 1.0;
    std::uint32_t k = 0;
    do {
      ++k;
      prod *= rng.NextDouble();
    } while (prod > limit);
    return k - 1;
  }
  const double sigma = std::sqrt(lambda * (1.0 - p));
  const double x = std::llround(lambda + sigma * rng.NextGaussian());
  return x <= 0.0 ? 0u : static_cast<std::uint32_t>(x);
}

// Buckets of the per-response overlay-hop histogram: one bucket per
// hop count 0..15 plus overflow (TTLs in every experiment are <= 8).
std::vector<double> HopHistogramBounds() {
  std::vector<double> bounds(16);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    bounds[i] = static_cast<double>(i);
  }
  return bounds;
}

// Buckets for the client recovery-latency histogram (seconds from an
// orphaning outage to re-connection): roughly geometric, spanning
// sub-recovery-time episodes up to long multi-outage waits.
std::vector<double> RecoveryLatencyBounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0};
}

// Buckets for the orphaned-clients-per-outage histogram (cluster sizes
// in the experiments range from a handful to a few hundred clients).
std::vector<double> OrphanCountBounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0};
}

}  // namespace

class Simulator::Impl {
 public:
  Impl(const NetworkInstance& instance, const Configuration& config,
       const ModelInputs& inputs, const SimOptions& options)
      : inst_(instance),
        config_(config),
        inputs_(inputs),
        options_(options),
        rng_(options.seed),
        n_(instance.NumClusters()),
        k_(static_cast<std::size_t>(instance.redundancy_k)),
        num_partners_(instance.TotalPartners()),
        num_clients_(instance.TotalClients()),
        queue_(options.engine),
        state_(options.state_backend, instance.NumClusters()),
        injector_(options.faults, options.seed),
        fault_active_(options.faults.Active()),
        recovery_enabled_(fault_active_ && options.faults.TimeoutsEnabled()) {
    const auto init_start = std::chrono::steady_clock::now();
    qbytes_ = inputs.costs.QueryBytes(inputs.stats.query_length_bytes);
    sendq_ = inputs.costs.SendQueryUnits(inputs.stats.query_length_bytes);
    recvq_ = inputs.costs.RecvQueryUnits(inputs.stats.query_length_bytes);

    in_bytes_.assign(num_partners_ + num_clients_, 0.0);
    out_bytes_.assign(num_partners_ + num_clients_, 0.0);
    units_.assign(num_partners_ + num_clients_, 0.0);

    client_cluster_.resize(num_clients_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t c = inst_.client_offset[i];
           c < inst_.client_offset[i + 1]; ++c) {
        client_cluster_[c] = static_cast<std::uint32_t>(i);
      }
    }
    conn_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) conn_[i] = inst_.PartnerConnections(i);
    client_conn_ = inst_.ClientConnections();

    partner_alive_.assign(num_partners_, true);
    alive_partners_.assign(n_, static_cast<std::uint32_t>(k_));
    outage_start_.assign(n_, -1.0);
    rr_.assign(n_, 0);

    if (fault_active_) {
      // Mutable membership: clients can re-join other clusters via
      // discovery, so cluster composition diverges from the instance
      // layout. Member lists keep insertion order — iteration (and
      // therefore the event stream) is deterministic.
      client_current_cluster_ = client_cluster_;
      cluster_members_.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        cluster_members_[i].reserve(inst_.client_offset[i + 1] -
                                    inst_.client_offset[i]);
        for (std::size_t c = inst_.client_offset[i];
             c < inst_.client_offset[i + 1]; ++c) {
          cluster_members_[i].push_back(static_cast<std::uint32_t>(c));
        }
      }
      orphaned_since_.assign(num_clients_, -1.0);
    }

    if (options_.concrete_index) InitConcreteIndexes();
    init_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - init_start)
                        .count();
  }

  /// Concrete-index mode: build one real inverted index per cluster
  /// from corpus-sampled collections (owners are node ids).
  void InitConcreteIndexes() {
    corpus_ = std::make_unique<TitleCorpus>(CorpusParams{});
    indexes_.resize(n_);
    node_collections_.resize(TotalNodes());
    const auto add_node = [&](std::uint32_t node, std::size_t cluster) {
      const auto files = static_cast<std::size_t>(FilesOf(node));
      node_collections_[node] =
          corpus_->SampleCollection(node, files, &next_file_id_, rng_);
      indexes_[cluster].InsertCollection(node_collections_[node]);
    };
    for (std::uint32_t p = 0; p < num_partners_; ++p) {
      add_node(p, ClusterOf(p));
    }
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      const auto node = static_cast<std::uint32_t>(num_partners_ + c);
      add_node(node, ClusterOf(node));
    }
  }

  SimReport Run() {
    const auto run_start = std::chrono::steady_clock::now();
    const double end_time =
        options_.warmup_seconds + options_.duration_seconds;

    // Seed per-user recurring activity.
    for (std::uint32_t u = 0; u < TotalNodes(); ++u) {
      ScheduleIn(ExpDelay(config_.query_rate), kQuerySubmit, u);
      ScheduleIn(ExpDelay(config_.update_rate), kUpdateSubmit, u);
      ScheduleIn(ExpDelay(1.0 / LifespanOf(u)), kJoinSubmit, u);
    }
    if (options_.enable_churn) {
      for (std::uint32_t p = 0; p < num_partners_; ++p) {
        ScheduleIn(ExpDelay(1.0 / inst_.partner_lifespan[p]), kPartnerFail, p);
      }
    }
    if (fault_active_ && injector_.plan().crash_rate_per_partner > 0.0) {
      // Independent Poisson crash clock per partner slot; crashes on a
      // dead partner are no-ops, so up-times stay memoryless (the
      // analytical availability model relies on this — DESIGN.md §8).
      for (std::uint32_t p = 0; p < num_partners_; ++p) {
        ScheduleIn(injector_.NextCrashDelay(), kPartnerCrash, p);
      }
    }

    while (!queue_.empty() && queue_.NextTime() <= end_time) {
      const SimEvent e = queue_.Pop();
      ++events_dispatched_;
      now_ = e.time;
      measuring_ = now_ >= options_.warmup_seconds;
      Dispatch(e);
    }
    now_ = end_time;
    run_seconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - run_start)
                       .count();
    return Finalize();
  }

 private:
  // --- Small helpers -------------------------------------------------------
  std::uint32_t TotalNodes() const {
    return static_cast<std::uint32_t>(num_partners_ + num_clients_);
  }
  bool IsPartner(std::uint32_t node) const { return node < num_partners_; }
  std::size_t ClusterOf(std::uint32_t node) const {
    if (IsPartner(node)) return node / k_;
    const std::uint32_t c = node - num_partners_;
    return fault_active_ ? client_current_cluster_[c] : client_cluster_[c];
  }
  double LifespanOf(std::uint32_t node) const {
    return IsPartner(node) ? inst_.partner_lifespan[node]
                           : inst_.client_lifespan[node - num_partners_];
  }
  double FilesOf(std::uint32_t node) const {
    return IsPartner(node)
               ? static_cast<double>(inst_.partner_files[node])
               : static_cast<double>(inst_.client_files[node - num_partners_]);
  }
  double MuxOf(std::uint32_t node) const {
    return inputs_.costs.MultiplexUnits(
        IsPartner(node) ? conn_[ClusterOf(node)] : client_conn_);
  }
  double ExpDelay(double rate) const {
    SPPNET_CHECK(rate > 0.0);
    // Inverse-CDF exponential; NextDouble() < 1 so log is finite.
    return -std::log(1.0 - rng_.NextDouble()) / rate;
  }
  void ScheduleIn(double delay, std::uint32_t kind, std::uint32_t node,
                  std::uint64_t a = 0, std::uint64_t b = 0) {
    SimEvent e;
    e.time = now_ + delay;
    e.kind = kind;
    e.node = node;
    e.a = a;
    e.b = b;
    queue_.Schedule(e);
    ++events_scheduled_;
    if (queue_.size() > queue_depth_hwm_) queue_depth_hwm_ = queue_.size();
  }
  /// Delivery of an overlay message, through the fault layer: the
  /// message may be silently dropped or arrive late by a jittered
  /// amount. The sender's cost was already accounted — the bytes left
  /// its link either way. Control events (timers, checks) bypass this
  /// and use ScheduleIn directly; they are local, not messages.
  void Deliver(double delay, std::uint32_t kind, std::uint32_t node,
               std::uint64_t a = 0, std::uint64_t b = 0) {
    if (fault_active_) {
      if (injector_.ShouldDropDelivery()) {
        if (measuring_) ++messages_dropped_;
        return;
      }
      delay += injector_.DeliveryJitter();
    }
    ScheduleIn(delay, kind, node, a, b);
  }
  void AcctSend(std::uint32_t node, Msg msg, double bytes, double units) {
    if (!measuring_) return;
    out_bytes_[node] += bytes;
    units_[node] += units;
    ++msg_sent_[static_cast<std::size_t>(msg)];
  }
  void AcctRecv(std::uint32_t node, Msg msg, double bytes, double units) {
    if (!measuring_) return;
    in_bytes_[node] += bytes;
    units_[node] += units;
    ++msg_recv_[static_cast<std::size_t>(msg)];
  }
  void AcctProc(std::uint32_t node, double units) {
    if (!measuring_) return;
    units_[node] += units;
  }

  /// Round-robin choice of a live partner of `cluster`; returns
  /// kSelfUpstream if none is alive (message lost). Skipping a dead
  /// preferred slot is the k-redundancy failover in action; the fault
  /// layer counts those episodes.
  std::uint32_t PickPartner(std::size_t cluster) {
    bool preferred_dead = false;
    for (std::size_t attempt = 0; attempt < k_; ++attempt) {
      const std::size_t slot = (rr_[cluster]++) % k_;
      const auto node = static_cast<std::uint32_t>(cluster * k_ + slot);
      if (partner_alive_[node]) {
        if (preferred_dead && fault_active_ && measuring_) {
          ++failover_episodes_;
        }
        return node;
      }
      preferred_dead = true;
    }
    return kSelfUpstream;
  }

  // --- Dispatch -------------------------------------------------------------
  void Dispatch(const SimEvent& e) {
    switch (e.kind) {
      case kQuerySubmit:
        OnQuerySubmit(e.node);
        break;
      case kQueryArrive:
        OnQueryArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                      static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                      static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kResponseArrive:
        OnResponseArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                         static_cast<std::uint32_t>((e.b >> 16) & 0xffffu),
                         static_cast<std::uint32_t>(e.b & 0xffffu));
        break;
      case kJoinSubmit:
        OnJoinSubmit(e.node);
        break;
      case kJoinArrive:
        OnJoinArrive(e.node, static_cast<std::uint32_t>(e.a), e.x);
        break;
      case kUpdateSubmit:
        OnUpdateSubmit(e.node);
        break;
      case kUpdateArrive:
        OnUpdateArrive(e.node, static_cast<std::uint32_t>(e.a));
        break;
      case kPartnerFail:
        OnPartnerFail(e.node);
        break;
      case kPartnerRecover:
        OnPartnerRecover(e.node, /*churn_origin=*/e.a != 0);
        break;
      case kPartnerCrash:
        OnPartnerCrash(e.node);
        break;
      case kRequestCheck:
        OnRequestCheck(e.node, e.a, static_cast<std::uint32_t>(e.b));
        break;
      case kRetrySubmit:
        OnRetrySubmit(e.node, e.a, static_cast<std::uint32_t>(e.b));
        break;
      case kWalkArrive:
        OnWalkArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                     static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                     static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kRingCheck:
        OnRingCheck(e.a);
        break;
      default:
        SPPNET_CHECK_MSG(false, "unknown event kind");
    }
  }

  // --- Queries ---------------------------------------------------------------
  // Per-user-query bookkeeping (QueryState, keyed by root qid) lives in
  // SimState (sim/sim_state.h); expanding-ring / retry qids map back to
  // their root through it.

  void OnQuerySubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(config_.query_rate), kQuerySubmit, user);
    if (IsPartner(user) && !partner_alive_[user]) return;
    const auto query_class =
        static_cast<std::uint32_t>(inputs_.query_model.SampleQueryClass(rng_));
    if (options_.concrete_index) {
      // Reserve the qid now so the sampled keyword string is in place
      // before any cluster matches it (the switch below consumes ids in
      // order).
      state_.SetQueryString(next_qid_, corpus_->SampleQuery(rng_));
    }

    switch (options_.strategy) {
      case SearchStrategy::kFlood: {
        const std::uint64_t qid = next_qid_++;
        if (options_.result_cache_ttl_seconds > 0.0) {
          if (TryAnswerFromCache(user, qid, query_class)) {
            // A cache-served query trivially succeeded.
            if (recovery_enabled_ && measuring_) ++queries_succeeded_;
            return;
          }
          if (measuring_) ++cache_misses_;
        }
        if (!SubmitWithFailover(user, qid, query_class,
                                static_cast<std::uint32_t>(config_.ttl + 1))) {
          // No live partner anywhere: the query cannot be routed.
          if (recovery_enabled_ && measuring_) ++queries_failed_;
          return;
        }
        RecordSubmission(qid, user, query_class, 0);
        if (recovery_enabled_) {
          ScheduleIn(injector_.plan().request_timeout_seconds, kRequestCheck,
                     user, qid, /*retries_used=*/0);
        }
        break;
      }
      case SearchStrategy::kExpandingRing: {
        const std::uint64_t qid = next_qid_++;
        if (!SubmitToOwnCluster(user, qid, query_class, 2)) return;  // Ring 1.
        RecordSubmission(qid, user, query_class, 1);
        ScheduleRingCheck(qid, 1);
        break;
      }
      case SearchStrategy::kRandomWalk: {
        const std::uint64_t qid = next_qid_++;
        if (!LaunchWalks(user, qid, query_class)) return;
        RecordSubmission(qid, user, query_class, 0);
        break;
      }
    }
  }

  void RecordSubmission(std::uint64_t qid, std::uint32_t user,
                        std::uint32_t query_class, std::uint32_t ring_ttl) {
    if (measuring_) ++queries_submitted_;
    QueryState& state = state_.Claim(qid);
    state.user = user;
    state.query_class = query_class;
    state.ring_ttl = ring_ttl;
    state.submit_time = now_;
    state.cache_key = CacheKey(qid, query_class);
    state_.SetRoot(qid, qid);
  }

  // --- Source-side result cache (flood strategy) -----------------------------

  /// Identity of a query for caching: its class in abstract mode, the
  /// hash of its keyword string in concrete mode.
  std::uint64_t CacheKey(std::uint64_t qid, std::uint32_t query_class) const {
    if (options_.concrete_index) {
      std::uint64_t hash = 0;
      if (state_.QueryStringHash(qid, &hash)) return hash;
    }
    return query_class;
  }

  /// If this cluster flooded the same query recently, answer from the
  /// cached aggregate result set: one submission hop and one response —
  /// no flood, no remote work. Returns true when the query was served.
  bool TryAnswerFromCache(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class) {
    const std::size_t cluster = ClusterOf(user);
    const std::uint64_t key = CacheKey(qid, query_class);
    const QueryCacheEntry* found = state_.FindCacheEntry(cluster, key);
    if (found == nullptr || found->expires < now_ || found->results <= 0.0) {
      return false;
    }
    const QueryCacheEntry& entry = *found;
    if (measuring_) {
      ++queries_submitted_;
      ++cache_hits_;
      ++responses_delivered_;
      results_sum_ += entry.results;
      ++first_responses_;
    }
    const auto results = static_cast<std::uint32_t>(entry.results);
    const auto addrs = static_cast<std::uint32_t>(entry.addrs);
    const double response_bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    if (IsPartner(user)) {
      // The partner answers its own user locally: no messages.
      return true;
    }
    const std::uint32_t partner = PickPartner(cluster);
    if (partner == kSelfUpstream) return true;  // Disconnected anyway.
    // Submission hop + cached response back to the client.
    AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
    AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    AcctSend(partner, Msg::kResponse, response_bytes,
             inputs_.costs.SendResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(partner));
    AcctRecv(user, Msg::kResponse, response_bytes,
             inputs_.costs.RecvResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(user));
    if (measuring_) {
      latency_sum_ += 2.0 * options_.hop_latency_seconds;
    }
    return true;
  }

  /// Accumulates a delivered response into the source cluster's cache.
  void PopulateCache(const QueryState& state, std::uint64_t root,
                     std::uint32_t results, std::uint32_t addrs) {
    if (options_.result_cache_ttl_seconds <= 0.0 ||
        options_.strategy != SearchStrategy::kFlood) {
      return;
    }
    QueryCacheEntry& entry =
        state_.CacheEntrySlot(ClusterOf(state.user), state.cache_key);
    if (entry.expires < now_) {
      // Fresh (or expired) entry: restart accumulation for this query.
      entry.results = 0.0;
      entry.addrs = 0.0;
      entry.expires = now_ + options_.result_cache_ttl_seconds;
      entry.owner = root;
    }
    if (entry.owner != root) return;  // A concurrent flood already owns it.
    entry.results += static_cast<double>(results);
    entry.addrs += static_cast<double>(addrs);
  }

  /// Routes a query (with the given hop budget) into the submitting
  /// user's own cluster: directly for a partner-user, via the
  /// round-robin submission hop for a client. Returns false if the
  /// cluster is unreachable (churn).
  bool SubmitToOwnCluster(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class, std::uint32_t ttl) {
    // The source super-peer floods with the full TTL, so the submission
    // hop carries TTL+1: every OnQueryArrive forwards with ttl-1, and a
    // node at depth d therefore holds TTL+1-d, forwarding while d < TTL —
    // exactly the paper's semantics (nodes at depth == TTL do not
    // forward).
    if (IsPartner(user)) {
      OnQueryArrive(user, qid, kSelfUpstream, query_class, ttl);
      return true;
    }
    const std::uint32_t target = PickPartner(ClusterOf(user));
    if (target == kSelfUpstream) return false;  // Disconnected.
    AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
    Deliver(options_.hop_latency_seconds, kQueryArrive, target, qid,
            PackQuery(user, query_class, ttl));
    return true;
  }

  /// SubmitToOwnCluster with fault-mode recovery: a client whose whole
  /// cluster is down first re-joins a surviving cluster via the
  /// bootstrap discovery service; only when no cluster in the network
  /// has a live partner does the submission fail.
  bool SubmitWithFailover(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class, std::uint32_t ttl) {
    if (fault_active_ && !IsPartner(user) &&
        alive_partners_[ClusterOf(user)] == 0) {
      if (!RejoinViaDiscovery(user)) return false;
    }
    return SubmitToOwnCluster(user, qid, query_class, ttl);
  }

  // --- Expanding ring ---------------------------------------------------------
  void ScheduleRingCheck(std::uint64_t root, std::uint32_t ring_ttl) {
    // Allow one round trip across the ring plus slack before judging.
    const double wait =
        (2.0 * static_cast<double>(ring_ttl) + 3.0) *
        options_.hop_latency_seconds;
    ScheduleIn(wait, kRingCheck, 0, root);
  }

  void OnRingCheck(std::uint64_t root) {
    QueryState* found = state_.Find(root);
    if (found == nullptr) return;
    QueryState& state = *found;
    const bool satisfied =
        state.ring_results >=
        static_cast<double>(options_.ring_satisfaction_results);
    const bool exhausted =
        state.ring_ttl >= static_cast<std::uint32_t>(config_.ttl);
    if (satisfied || exhausted) {
      FinishRingQuery(state);
      return;
    }
    // Grow the ring: a fresh flood with a larger TTL (naive iterative
    // deepening re-queries the inner rings; that cost is intrinsic to
    // the technique and shows up in the measurements).
    if (IsPartner(state.user) && !partner_alive_[state.user]) {
      FinishRingQuery(state);
      return;
    }
    const std::uint64_t retry_qid = next_qid_++;
    if (options_.concrete_index) {
      // The retry re-issues the same keyword string under a fresh qid.
      state_.ShareQueryString(root, retry_qid);
    }
    state.ring_ttl += 1;
    state.ring_results = 0.0;
    state_.SetRoot(retry_qid, root);
    if (!SubmitToOwnCluster(state.user, retry_qid, state.query_class,
                            state.ring_ttl + 1)) {
      FinishRingQuery(state);
      return;
    }
    ScheduleRingCheck(root, state.ring_ttl);
  }

  void FinishRingQuery(const QueryState& state) {
    if (measuring_) {
      results_sum_ += state.ring_results;
      rings_sum_ += static_cast<double>(state.ring_ttl);
      ++ring_queries_finished_;
    }
  }

  // --- Random walks -------------------------------------------------------------
  bool LaunchWalks(std::uint32_t user, std::uint64_t qid,
                   std::uint32_t query_class) {
    const std::size_t cluster = ClusterOf(user);
    // The source cluster always processes the query itself.
    std::uint32_t source_partner;
    if (IsPartner(user)) {
      source_partner = user;
      OnQueryArrive(user, qid, kSelfUpstream, query_class, 1);
    } else {
      source_partner = PickPartner(cluster);
      if (source_partner == kSelfUpstream) return false;
      AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kQueryArrive, source_partner,
              qid, PackQuery(user, query_class, 1));
    }
    // Launch the walkers from the source partner.
    for (std::uint32_t w = 0; w < options_.num_walkers; ++w) {
      const std::uint32_t target = RandomNeighborPartner(cluster);
      if (target == kSelfUpstream) break;
      AcctSend(source_partner, Msg::kQuery, qbytes_,
               sendq_ + MuxOf(source_partner));
      Deliver(options_.hop_latency_seconds, kWalkArrive, target, qid,
              PackQuery(source_partner, query_class,
                        options_.walk_ttl & 0xffu));
    }
    return true;
  }

  /// A uniformly random live partner of a random neighbor of `cluster`;
  /// kSelfUpstream if the cluster has no neighbors.
  std::uint32_t RandomNeighborPartner(std::size_t cluster) {
    std::size_t neighbor;
    if (inst_.topology.is_complete()) {
      if (n_ <= 1) return kSelfUpstream;
      do {
        neighbor = rng_.NextBounded(n_);
      } while (neighbor == cluster);
    } else {
      const auto nbrs =
          inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster));
      if (nbrs.empty()) return kSelfUpstream;
      neighbor = nbrs[rng_.NextBounded(nbrs.size())];
    }
    return PickPartner(neighbor);
  }

  void OnWalkArrive(std::uint32_t partner, std::uint64_t qid,
                    std::uint32_t source_partner, std::uint32_t query_class,
                    std::uint32_t ttl) {
    if (!partner_alive_[partner]) return;
    AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    const std::size_t cluster = ClusterOf(partner);
    // Process only on the cluster's first visit; revisit hops keep
    // walking but do not re-query the index.
    const bool fresh = state_.MarkSeen(cluster, qid, source_partner);
    if (fresh) {
      const auto [results, addrs] = MatchQuery(cluster, qid, query_class);
      AcctProc(partner,
               inputs_.costs.ProcessQueryUnits(static_cast<double>(results)));
      if (results > 0) {
        // Walk responses return directly to the source partner (as in
        // Lv et al.'s random-walk systems) rather than retracing the
        // whole walk; hops=1 reflects the direct connection.
        const double bytes = inputs_.costs.ResponseBytes(
            static_cast<double>(addrs), static_cast<double>(results));
        AcctSend(partner, Msg::kResponse, bytes,
                 inputs_.costs.SendResponseUnits(
                     static_cast<double>(addrs),
                     static_cast<double>(results)) +
                     MuxOf(partner));
        Deliver(options_.hop_latency_seconds, kResponseArrive,
                source_partner, qid, PackResponse(results, addrs, 1));
      }
    } else if (measuring_) {
      ++duplicate_queries_;
    }
    if (ttl <= 1) return;
    const std::uint32_t next = RandomNeighborPartner(cluster);
    if (next == kSelfUpstream) return;
    AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
    Deliver(options_.hop_latency_seconds, kWalkArrive, next, qid,
            PackQuery(source_partner, query_class, ttl - 1));
  }

  void OnQueryArrive(std::uint32_t partner, std::uint64_t qid,
                     std::uint32_t upstream, std::uint32_t query_class,
                     std::uint32_t ttl) {
    if (!partner_alive_[partner]) return;  // Message lost.
    if (upstream != kSelfUpstream) {
      AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    }
    const std::size_t cluster = ClusterOf(partner);
    const bool fresh = state_.MarkSeen(cluster, qid, upstream);
    if (!fresh) {
      if (measuring_) ++duplicate_queries_;
      return;  // Duplicate: received, then dropped.
    }

    // Process over the cluster index.
    const auto [results, addrs] = MatchQuery(cluster, qid, query_class);
    AcctProc(partner, inputs_.costs.ProcessQueryUnits(
                          static_cast<double>(results)));
    if (results > 0) {
      SendResponse(partner, upstream, qid, results, addrs, /*hops=*/0);
    }

    // Forward with decremented TTL on every connection except the one
    // the query arrived on.
    if (ttl <= 1) return;
    const std::size_t exclude =
        (upstream != kSelfUpstream && IsPartner(upstream))
            ? ClusterOf(upstream)
            : static_cast<std::size_t>(-1);
    const auto forward = [&](std::size_t neighbor) {
      if (neighbor == exclude) return;
      const std::uint32_t target = PickPartner(neighbor);
      if (target == kSelfUpstream) return;
      AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
      Deliver(options_.hop_latency_seconds, kQueryArrive, target, qid,
              PackQuery(partner, query_class, ttl - 1));
    };
    if (inst_.topology.is_complete()) {
      for (std::size_t w = 0; w < n_; ++w) {
        if (w != cluster) forward(w);
      }
    } else {
      for (const NodeId w :
           inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster))) {
        forward(w);
      }
    }
  }

  /// Determines (results, addresses) for a query over a cluster's
  /// index: against the real inverted index in concrete mode, or by
  /// sampling from the Appendix-B query model otherwise.
  std::pair<std::uint32_t, std::uint32_t> MatchQuery(
      std::size_t cluster, std::uint64_t qid, std::uint32_t query_class) {
    if (options_.concrete_index) {
      const std::string* text = state_.QueryString(qid);
      if (text == nullptr) return {0, 0};
      const QueryResult qr = indexes_[cluster].Query(*text);
      return {static_cast<std::uint32_t>(qr.hits.size()),
              static_cast<std::uint32_t>(qr.distinct_owners)};
    }
    const double f = inputs_.query_model.SelectionPower(query_class);
    const std::uint32_t results =
        SampleBinomialApprox(inst_.indexed_files[cluster], f, rng_);
    if (results == 0) return {0, 0};
    return {results, SampleAddrs(cluster, f)};
  }

  /// Expected-value-faithful sampling of the number of distinct cluster
  /// members whose collections match (the addresses in a Response).
  std::uint32_t SampleAddrs(std::size_t cluster, double f) {
    std::uint32_t addrs = 0;
    for (const std::uint32_t x : inst_.ClientFiles(cluster)) {
      if (x == 0) continue;
      const double p = 1.0 - std::pow(1.0 - f, static_cast<double>(x));
      if (rng_.NextBernoulli(p)) ++addrs;
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const std::uint32_t x = inst_.partner_files[cluster * k_ + p];
      if (x == 0) continue;
      const double q = 1.0 - std::pow(1.0 - f, static_cast<double>(x));
      if (rng_.NextBernoulli(q)) ++addrs;
    }
    return addrs == 0 ? 1 : addrs;  // Results imply at least one owner.
  }

  void SendResponse(std::uint32_t from, std::uint32_t to, std::uint64_t qid,
                    std::uint32_t results, std::uint32_t addrs,
                    std::uint32_t hops) {
    const double bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    if (to == kSelfUpstream) {
      // The super-peer's own user consumes the results locally.
      DeliverResults(qid, results, addrs, hops);
      return;
    }
    AcctSend(from, Msg::kResponse, bytes,
             inputs_.costs.SendResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(from));
    // The hop counter mirrors the paper's EPL (hops across the super-peer
    // overlay); the final super-peer -> client delivery is not an overlay
    // hop and is excluded so the metric is comparable with the model.
    const std::uint32_t hop_delta = IsPartner(to) ? 1u : 0u;
    Deliver(options_.hop_latency_seconds, kResponseArrive, to, qid,
            PackResponse(results, addrs, hops + hop_delta));
  }

  void OnResponseArrive(std::uint32_t node, std::uint64_t qid,
                        std::uint32_t results, std::uint32_t addrs,
                        std::uint32_t hops) {
    const double bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    AcctRecv(node, Msg::kResponse, bytes,
             inputs_.costs.RecvResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(node));
    if (!IsPartner(node)) {
      DeliverResults(qid, results, addrs, hops);
      return;
    }
    if (!partner_alive_[node]) return;
    const std::size_t cluster = ClusterOf(node);
    const std::uint32_t* upstream = state_.Upstream(cluster, qid);
    if (upstream == nullptr) return;  // State lost to churn.
    SendResponse(node, *upstream, qid, results, addrs, hops);
  }

  void DeliverResults(std::uint64_t qid, std::uint32_t results,
                      std::uint32_t addrs, std::uint32_t hops) {
    // Map expanding-ring retry qids back to the original query.
    const std::uint64_t root = state_.RootOf(qid);
    QueryState* found = state_.Find(root);
    if (found != nullptr) {
      QueryState& state = *found;
      PopulateCache(state, root, results, addrs);
      if (!state.first_response_seen) {
        state.first_response_seen = true;
        if (measuring_) {
          latency_sum_ += now_ - state.submit_time;
          ++first_responses_;
        }
      }
      if (options_.strategy == SearchStrategy::kExpandingRing) {
        state.ring_results += static_cast<double>(results);
      }
    }
    if (!measuring_) return;
    ++responses_delivered_;
    hops_sum_ += static_cast<double>(hops);
    hop_histogram_.Observe(static_cast<double>(hops));
    if (options_.strategy != SearchStrategy::kExpandingRing) {
      // Ring queries account their results when the ring settles
      // (FinishRingQuery), so inner rings are not double counted.
      results_sum_ += static_cast<double>(results);
    }
  }

  // --- Joins and updates ------------------------------------------------------
  void ScheduleJoinArrive(std::uint32_t target, std::uint32_t owner,
                          double files) {
    // Joins carry a float payload (e.x), so the fault layer is applied
    // inline instead of through Deliver.
    double delay = options_.hop_latency_seconds;
    if (fault_active_) {
      if (injector_.ShouldDropDelivery()) {
        if (measuring_) ++messages_dropped_;
        return;
      }
      delay += injector_.DeliveryJitter();
    }
    SimEvent e;
    e.time = now_ + delay;
    e.kind = kJoinArrive;
    e.node = target;
    e.a = owner;
    e.x = files;
    queue_.Schedule(e);
    ++events_scheduled_;
    if (queue_.size() > queue_depth_hwm_) queue_depth_hwm_ = queue_.size();
  }

  void OnJoinSubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(1.0 / LifespanOf(user)), kJoinSubmit, user);
    const double files = FilesOf(user);
    const std::size_t cluster = ClusterOf(user);
    if (IsPartner(user)) {
      if (!partner_alive_[user]) return;
      // Rebuild the index over its own collection; mirror to every
      // live co-partner.
      AcctProc(user, inputs_.costs.ProcessJoinUnits(files));
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other == user || !partner_alive_[other]) continue;
        AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
                 inputs_.costs.SendJoinUnits(files) + MuxOf(user));
        ScheduleJoinArrive(other, user, files);
      }
      return;
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(partner, user, files);
    }
  }

  void OnJoinArrive(std::uint32_t partner, std::uint32_t owner,
                    double files) {
    if (!partner_alive_[partner]) return;
    AcctRecv(partner, Msg::kJoin, inputs_.costs.JoinBytes(files),
             inputs_.costs.RecvJoinUnits(files) +
                 inputs_.costs.ProcessJoinUnits(files) + MuxOf(partner));
    if (options_.concrete_index) {
      // Re-index the joining peer's metadata for real. The k partners
      // of a cluster share one index object (their contents would be
      // identical), so the second partner's re-insert is a no-op.
      InvertedIndex& index = indexes_[ClusterOf(partner)];
      index.EraseOwner(owner);
      index.InsertCollection(node_collections_[owner]);
    }
  }

  /// Concrete mode: replaces one random file of `user`'s collection
  /// with a freshly sampled one, and queues the mutation for every
  /// partner message that will carry it. Returns false if the user
  /// shares nothing (the update message is still sent — its cost is
  /// workload-model territory — but no index change happens).
  bool PrepareConcreteUpdate(std::uint32_t user, std::size_t copies) {
    auto& collection = node_collections_[user];
    if (collection.empty()) return false;
    const std::size_t slot = rng_.NextBounded(collection.size());
    const FileId old_id = collection[slot].id;
    FileRecord fresh;
    fresh.id = next_file_id_++;
    fresh.owner = user;
    fresh.title = corpus_->SampleTitle(rng_);
    collection[slot] = fresh;
    for (std::size_t i = 0; i < copies; ++i) {
      pending_updates_[user].emplace_back(old_id, fresh);
    }
    return true;
  }

  void OnUpdateSubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(config_.update_rate), kUpdateSubmit, user);
    const std::size_t cluster = ClusterOf(user);
    if (IsPartner(user)) {
      if (!partner_alive_[user]) return;
      AcctProc(user, inputs_.costs.process_update_units);
      // Mirror the update to every live co-partner.
      std::size_t live_others = 0;
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other != user && partner_alive_[other]) ++live_others;
      }
      if (options_.concrete_index &&
          PrepareConcreteUpdate(user, live_others + 1)) {
        // Apply the partner-user's own update locally right away.
        ApplyConcreteUpdate(user, cluster);
      }
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other == user || !partner_alive_[other]) continue;
        AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
                 inputs_.costs.send_update_units + MuxOf(user));
        Deliver(options_.hop_latency_seconds, kUpdateArrive, other, user);
      }
      return;
    }
    std::size_t live_partners = 0;
    for (std::size_t p = 0; p < k_; ++p) {
      if (partner_alive_[cluster * k_ + p]) ++live_partners;
    }
    if (options_.concrete_index && live_partners > 0) {
      PrepareConcreteUpdate(user, live_partners);
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
               inputs_.costs.send_update_units + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kUpdateArrive, partner, user);
    }
  }

  /// Applies one queued concrete update of `owner` to its cluster
  /// index (erase the old file, insert the replacement). With shared
  /// per-cluster indexes the second partner's application is a no-op.
  void ApplyConcreteUpdate(std::uint32_t owner, std::size_t cluster) {
    const auto it = pending_updates_.find(owner);
    if (it == pending_updates_.end() || it->second.empty()) return;
    const auto [old_id, fresh] = it->second.front();
    it->second.pop_front();
    InvertedIndex& index = indexes_[cluster];
    index.Erase(old_id);
    index.Insert(fresh);
  }

  void OnUpdateArrive(std::uint32_t partner, std::uint32_t owner) {
    if (!partner_alive_[partner]) return;
    AcctRecv(partner, Msg::kUpdate, inputs_.costs.UpdateBytes(),
             inputs_.costs.recv_update_units +
                 inputs_.costs.process_update_units + MuxOf(partner));
    if (options_.concrete_index) {
      ApplyConcreteUpdate(owner, ClusterOf(partner));
    }
  }

  // --- Churn / reliability -----------------------------------------------------

  /// Takes a live partner down for `recovery_seconds` and schedules the
  /// recovery. `churn_origin` tags end-of-lifespan failures: only those
  /// restart the lifespan clock on recovery (injected crashes have
  /// their own Poisson clock, which keeps ticking independently).
  void FailPartner(std::uint32_t partner, double recovery_seconds,
                   bool churn_origin) {
    partner_alive_[partner] = false;
    if (measuring_) ++partner_failures_;
    const std::size_t cluster = ClusterOf(partner);
    if (--alive_partners_[cluster] == 0) {
      outage_start_[cluster] = now_;
      if (measuring_) ++cluster_outages_;
      if (fault_active_) OrphanClusterClients(cluster);
    }
    ScheduleIn(recovery_seconds, kPartnerRecover, partner,
               churn_origin ? 1 : 0);
  }

  void OnPartnerFail(std::uint32_t partner) {
    if (!partner_alive_[partner]) return;
    FailPartner(partner, options_.partner_recovery_seconds,
                /*churn_origin=*/true);
  }

  void OnPartnerCrash(std::uint32_t partner) {
    // The crash clock keeps ticking whether or not the partner is up;
    // a crash hitting a dead partner is a no-op, which keeps up-times
    // memoryless (the analytical availability model in DESIGN.md §8
    // relies on exactly this renewal structure).
    ScheduleIn(injector_.NextCrashDelay(), kPartnerCrash, partner);
    if (!partner_alive_[partner]) return;
    if (measuring_) ++crashes_;
    FailPartner(partner, injector_.plan().crash_recovery_seconds,
                /*churn_origin=*/false);
  }

  void OnPartnerRecover(std::uint32_t partner, bool churn_origin) {
    partner_alive_[partner] = true;
    if (measuring_) ++partner_recoveries_;
    const std::size_t cluster = ClusterOf(partner);
    if (alive_partners_[cluster]++ == 0 && outage_start_[cluster] >= 0.0) {
      AccumulateOutage(cluster, now_);
      outage_start_[cluster] = -1.0;
      if (fault_active_) ReconnectOrphans(cluster);
    }
    // The replacement partner starts with an empty index: every client
    // re-uploads its metadata (the join storm after a failure). With an
    // active fault plan membership is mutable, so the storm covers the
    // cluster's current members rather than the instance layout.
    if (fault_active_) {
      for (const std::uint32_t c : cluster_members_[cluster]) {
        SendJoinStormUpload(partner, c);
      }
    } else {
      for (std::size_t c = inst_.client_offset[cluster];
           c < inst_.client_offset[cluster + 1]; ++c) {
        SendJoinStormUpload(partner, static_cast<std::uint32_t>(c));
      }
    }
    if (churn_origin && options_.enable_churn) {
      ScheduleIn(ExpDelay(1.0 / inst_.partner_lifespan[partner]), kPartnerFail,
                 partner);
    }
  }

  /// One client's metadata re-upload to a recovering partner (`c` is a
  /// client index, not a node id).
  void SendJoinStormUpload(std::uint32_t partner, std::uint32_t c) {
    const auto client = static_cast<std::uint32_t>(num_partners_ + c);
    const auto files = static_cast<double>(inst_.client_files[c]);
    AcctSend(client, Msg::kJoin, inputs_.costs.JoinBytes(files),
             inputs_.costs.SendJoinUnits(files) + MuxOf(client));
    ScheduleJoinArrive(partner, client, files);
  }

  void AccumulateOutage(std::size_t cluster, double end) {
    const double start = std::max(outage_start_[cluster],
                                  options_.warmup_seconds);
    if (end <= start) return;
    outage_seconds_ += end - start;
    // Whole-cluster client accounting only applies while membership is
    // static; with an active fault plan clients accrue individually
    // (AccrueOrphanTime), since re-joins end their episodes early.
    if (!fault_active_) {
      disconnected_client_seconds_ +=
          (end - start) * static_cast<double>(inst_.NumClients(cluster));
    }
  }

  // --- Fault recovery: orphans, re-join, timeouts & retries --------------------

  /// Marks every current member of `cluster` orphaned (its last live
  /// partner just went down).
  void OrphanClusterClients(std::size_t cluster) {
    if (measuring_) {
      orphaned_clients_hist_.Observe(
          static_cast<double>(cluster_members_[cluster].size()));
    }
    for (const std::uint32_t c : cluster_members_[cluster]) {
      if (orphaned_since_[c] < 0.0) orphaned_since_[c] = now_;
    }
  }

  /// Ends the orphan episodes of `cluster`'s members: a partner came
  /// back, so they are connected again.
  void ReconnectOrphans(std::size_t cluster) {
    for (const std::uint32_t c : cluster_members_[cluster]) {
      AccrueOrphanTime(c, /*observe_latency=*/true);
    }
  }

  /// Closes client `c`'s orphan episode at `now_`: adds its
  /// disconnected time (clipped to the measurement window) and, for
  /// real recoveries, observes the recovery-latency histogram.
  void AccrueOrphanTime(std::uint32_t c, bool observe_latency) {
    if (orphaned_since_[c] < 0.0) return;
    const double start = std::max(orphaned_since_[c], options_.warmup_seconds);
    if (now_ > start) disconnected_client_seconds_ += now_ - start;
    if (observe_latency && measuring_) {
      recovery_latency_hist_.Observe(now_ - orphaned_since_[c]);
    }
    orphaned_since_[c] = -1.0;
  }

  /// Moves an orphaned client to a surviving cluster via the bootstrap
  /// discovery service (Section 4.1's pong-server role). Returns false
  /// when no cluster in the network has a live partner.
  bool RejoinViaDiscovery(std::uint32_t user) {
    const std::uint32_t c = user - num_partners_;
    std::vector<std::uint32_t> eligible;
    std::vector<std::uint32_t> sizes;
    for (std::size_t i = 0; i < n_; ++i) {
      if (alive_partners_[i] > 0) {
        eligible.push_back(static_cast<std::uint32_t>(i));
        sizes.push_back(
            static_cast<std::uint32_t>(cluster_members_[i].size()));
      }
    }
    if (eligible.empty()) return false;
    const std::size_t pick =
        PickRejoinCluster(eligible, sizes, AssignmentPolicy::kUniformRandom,
                          injector_.stream());
    const std::uint32_t new_cluster = eligible[pick];
    auto& members = cluster_members_[client_current_cluster_[c]];
    members.erase(std::find(members.begin(), members.end(), c));
    cluster_members_[new_cluster].push_back(c);
    client_current_cluster_[c] = new_cluster;
    if (measuring_) ++client_rejoins_;
    AccrueOrphanTime(c, /*observe_latency=*/true);
    // The client uploads its metadata to the new cluster's live
    // partners — a fresh join.
    const auto files = static_cast<double>(inst_.client_files[c]);
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(new_cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(partner, user, files);
    }
    return true;
  }

  /// Per-request timeout probe for a flood query. Success means at
  /// least one response arrived — graceful degradation: partial results
  /// from a degraded flood still count. Tallies cover queries submitted
  /// inside the measurement window whose checks fire before the run
  /// ends.
  void OnRequestCheck(std::uint32_t user, std::uint64_t root,
                      std::uint32_t retries_used) {
    const QueryState* found = state_.Find(root);
    if (found == nullptr) return;
    const QueryState& state = *found;
    const bool counted = state.submit_time >= options_.warmup_seconds;
    if (state.first_response_seen) {
      if (counted) ++queries_succeeded_;
      return;
    }
    if (counted) ++request_timeouts_;
    if (retries_used >=
        static_cast<std::uint32_t>(injector_.plan().max_retries)) {
      if (counted) ++queries_failed_;
      return;
    }
    ScheduleIn(injector_.RetryBackoff(static_cast<int>(retries_used) + 1),
               kRetrySubmit, user, root, retries_used + 1);
  }

  /// Backed-off retry of a timed-out flood query: a fresh qid re-floods
  /// the network (duplicate tables have marked the root qid), mapped
  /// back to the root via ring_root_ exactly like expanding-ring
  /// retries.
  void OnRetrySubmit(std::uint32_t user, std::uint64_t root,
                     std::uint32_t retry_number) {
    QueryState* found = state_.Find(root);
    if (found == nullptr) return;
    QueryState& state = *found;
    const bool counted = state.submit_time >= options_.warmup_seconds;
    if (state.first_response_seen) {
      // A response raced the backoff: the query succeeded after all.
      if (counted) ++queries_succeeded_;
      return;
    }
    if (IsPartner(user) && !partner_alive_[user]) {
      // The submitting partner-user died with its state.
      if (counted) ++queries_failed_;
      return;
    }
    const std::uint64_t retry_qid = next_qid_++;
    if (options_.concrete_index) {
      // The retry re-issues the same keyword string under a fresh qid.
      state_.ShareQueryString(root, retry_qid);
    }
    state_.SetRoot(retry_qid, root);
    if (counted) ++retries_;
    if (!SubmitWithFailover(user, retry_qid, state.query_class,
                            static_cast<std::uint32_t>(config_.ttl + 1))) {
      if (counted) ++queries_failed_;
      return;
    }
    ScheduleIn(injector_.plan().request_timeout_seconds, kRequestCheck, user,
               root, retry_number);
  }

  // --- Finalization --------------------------------------------------------------
  SimReport Finalize() {
    // Close outages still open at the end of the run.
    for (std::size_t i = 0; i < n_; ++i) {
      if (outage_start_[i] >= 0.0) AccumulateOutage(i, now_);
    }
    if (fault_active_) {
      // Clients still orphaned at the end accrue their disconnected
      // time but never recovered — no latency observation.
      for (std::uint32_t c = 0; c < num_clients_; ++c) {
        AccrueOrphanTime(c, /*observe_latency=*/false);
      }
    }

    SimReport report;
    report.measured_seconds = options_.duration_seconds;
    report.events_scheduled = events_scheduled_;
    report.events_dispatched = events_dispatched_;
    report.queue_depth_hwm = queue_depth_hwm_;
    const double inv_t = 1.0 / options_.duration_seconds;
    const auto to_load = [&](std::uint32_t node) {
      LoadVector lv;
      lv.in_bps = BytesPerSecToBps(in_bytes_[node] * inv_t);
      lv.out_bps = BytesPerSecToBps(out_bytes_[node] * inv_t);
      lv.proc_hz = inputs_.costs.UnitsToHz(units_[node] * inv_t);
      return lv;
    };
    report.partner_load.resize(num_partners_);
    for (std::uint32_t p = 0; p < num_partners_; ++p) {
      report.partner_load[p] = to_load(p);
      report.aggregate += report.partner_load[p];
    }
    report.client_load.resize(num_clients_);
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      report.client_load[c] =
          to_load(static_cast<std::uint32_t>(num_partners_ + c));
      report.aggregate += report.client_load[c];
    }
    report.queries_submitted = queries_submitted_;
    report.responses_delivered = responses_delivered_;
    report.duplicate_queries = duplicate_queries_;
    const std::uint64_t result_queries =
        options_.strategy == SearchStrategy::kExpandingRing
            ? ring_queries_finished_
            : queries_submitted_;
    if (result_queries > 0) {
      report.mean_results_per_query =
          results_sum_ / static_cast<double>(result_queries);
    }
    if (responses_delivered_ > 0) {
      report.mean_response_hops =
          hops_sum_ / static_cast<double>(responses_delivered_);
    }
    if (first_responses_ > 0) {
      report.mean_first_response_latency =
          latency_sum_ / static_cast<double>(first_responses_);
    }
    if (ring_queries_finished_ > 0) {
      report.mean_rings_per_query =
          rings_sum_ / static_cast<double>(ring_queries_finished_);
    }
    report.cache_hits = cache_hits_;
    if (options_.concrete_index && !indexes_.empty()) {
      double bytes = 0.0;
      for (const InvertedIndex& index : indexes_) {
        bytes += static_cast<double>(index.ApproximateMemoryBytes());
      }
      report.mean_index_memory_bytes =
          bytes / static_cast<double>(indexes_.size());
    }
    report.partner_failures = partner_failures_;
    report.partner_recoveries = partner_recoveries_;
    report.cluster_outages = cluster_outages_;
    const double cluster_seconds =
        options_.duration_seconds * static_cast<double>(n_);
    if (cluster_seconds > 0.0) {
      report.cluster_outage_fraction = outage_seconds_ / cluster_seconds;
    }
    const double client_seconds =
        options_.duration_seconds * static_cast<double>(num_clients_);
    if (client_seconds > 0.0) {
      report.client_disconnected_fraction =
          disconnected_client_seconds_ / client_seconds;
    }
    report.faults_crashes = crashes_;
    report.faults_messages_dropped = messages_dropped_;
    report.faults_request_timeouts = request_timeouts_;
    report.faults_retries = retries_;
    report.faults_failover_episodes = failover_episodes_;
    report.faults_client_rejoins = client_rejoins_;
    report.queries_succeeded = queries_succeeded_;
    report.queries_failed = queries_failed_;
    const std::uint64_t completed = queries_succeeded_ + queries_failed_;
    if (completed > 0) {
      report.query_success_rate = static_cast<double>(queries_succeeded_) /
                                  static_cast<double>(completed);
    }
    report.mean_recovery_latency_seconds = recovery_latency_hist_.Mean();
    if (options_.metrics != nullptr) PublishMetrics(*options_.metrics);
    return report;
  }

  /// Publishes the run's tallies into the attached registry. Counters
  /// and the hop histogram cover the measurement window (warmup
  /// excluded), matching the SimReport fields they reconcile with;
  /// the event-queue high-water mark and the scheduled/dispatched
  /// counts cover the whole run. Values accumulate, so several runs
  /// may share a registry.
  ///
  /// Instrument contract (mirrors eval.bfs.* in model/evaluator.h):
  /// protocol-level instruments are bit-identical across engines,
  /// state backends and parallelism; the engine-specific sim.queue.*
  /// internals (calendar only) and sim.state.* footprint gauges
  /// describe the chosen implementation, so they are identical across
  /// parallelism but naturally differ between engines/backends. The
  /// sim.time.* timers are wall-clock (report-only nondeterminism,
  /// excluded from deterministic-section comparisons).
  void PublishMetrics(MetricsRegistry& m) {
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
      const std::string type = kMsgNames[t];
      m.GetCounter("sim.msg." + type + ".sent").Increment(msg_sent_[t]);
      m.GetCounter("sim.msg." + type + ".received").Increment(msg_recv_[t]);
    }
    m.GetCounter("sim.queries.submitted").Increment(queries_submitted_);
    m.GetCounter("sim.queries.duplicate").Increment(duplicate_queries_);
    m.GetCounter("sim.responses.delivered").Increment(responses_delivered_);
    m.GetCounter("sim.cache.hits").Increment(cache_hits_);
    m.GetCounter("sim.cache.misses").Increment(cache_misses_);
    m.GetCounter("sim.churn.partner_failures").Increment(partner_failures_);
    m.GetCounter("sim.churn.partner_recoveries")
        .Increment(partner_recoveries_);
    m.GetCounter("sim.churn.cluster_outages").Increment(cluster_outages_);
    m.GetCounter("sim.events.dispatched").Increment(events_dispatched_);
    m.GetCounter("sim.queue.scheduled").Increment(events_scheduled_);
    m.GetGauge("sim.event_queue.depth_hwm")
        .SetMax(static_cast<double>(queue_depth_hwm_));
    if (const CalendarQueue* cal = queue_.calendar(); cal != nullptr) {
      m.GetCounter("sim.queue.resizes").Increment(cal->resizes());
      m.GetCounter("sim.queue.day_steps").Increment(cal->day_steps());
      m.GetCounter("sim.queue.slot_visits").Increment(cal->slot_visits());
      m.GetCounter("sim.queue.global_scans").Increment(cal->global_scans());
      m.GetGauge("sim.queue.buckets")
          .SetMax(static_cast<double>(cal->num_buckets()));
      m.GetGauge("sim.queue.scratch_bytes")
          .SetMax(static_cast<double>(cal->ApproxMemoryBytes()));
    }
    m.GetCounter("sim.state.duplicate_entries")
        .Increment(state_.duplicate_entries());
    m.GetCounter("sim.state.query_strings")
        .Increment(state_.interned_strings());
    m.GetGauge("sim.state.scratch_bytes")
        .SetMax(static_cast<double>(state_.ApproxScratchBytes()));
    m.GetTimer("sim.time.init_seconds").Record(init_seconds_);
    m.GetTimer("sim.time.run_seconds").Record(run_seconds_);
    m.GetHistogram("sim.response.hops", HopHistogramBounds())
        .Merge(hop_histogram_);
    // Fault-layer instruments exist only for active plans, keeping the
    // inactive-plan registry surface bit-identical to a build without
    // the fault layer.
    if (fault_active_) {
      m.GetCounter("sim.faults.crashes").Increment(crashes_);
      m.GetCounter("sim.faults.messages_dropped").Increment(messages_dropped_);
      m.GetCounter("sim.faults.request_timeouts").Increment(request_timeouts_);
      m.GetCounter("sim.faults.retries").Increment(retries_);
      m.GetCounter("sim.faults.failover_episodes")
          .Increment(failover_episodes_);
      m.GetCounter("sim.faults.client_rejoins").Increment(client_rejoins_);
      m.GetCounter("sim.faults.queries.succeeded")
          .Increment(queries_succeeded_);
      m.GetCounter("sim.faults.queries.failed").Increment(queries_failed_);
      m.GetHistogram("sim.faults.recovery_latency_seconds",
                     RecoveryLatencyBounds())
          .Merge(recovery_latency_hist_);
      m.GetHistogram("sim.faults.orphaned_clients", OrphanCountBounds())
          .Merge(orphaned_clients_hist_);
    }
  }

  // --- State -----------------------------------------------------------------
  NetworkInstance inst_;
  Configuration config_;
  ModelInputs inputs_;
  SimOptions options_;
  mutable Rng rng_;

  const std::size_t n_;
  const std::size_t k_;
  const std::size_t num_partners_;
  const std::size_t num_clients_;

  double qbytes_ = 0.0, sendq_ = 0.0, recvq_ = 0.0;
  std::vector<double> conn_;
  double client_conn_ = 1.0;

  SimEventQueue queue_;
  /// Duplicate tables, per-root query state, retry-root mapping, query
  /// strings and result caches (engine-checked dense / map backends).
  SimState state_;
  double now_ = 0.0;
  bool measuring_ = false;

  std::vector<double> in_bytes_, out_bytes_, units_;
  std::vector<std::uint32_t> client_cluster_;
  std::vector<std::uint8_t> partner_alive_;
  std::vector<std::uint32_t> alive_partners_;
  std::vector<double> outage_start_;
  std::vector<std::uint32_t> rr_;

  std::uint64_t next_qid_ = 0;
  std::uint64_t queries_submitted_ = 0;
  std::uint64_t responses_delivered_ = 0;
  std::uint64_t duplicate_queries_ = 0;
  std::uint64_t partner_failures_ = 0;
  std::uint64_t cluster_outages_ = 0;
  double results_sum_ = 0.0;
  double hops_sum_ = 0.0;
  double disconnected_client_seconds_ = 0.0;

  // Per-query strategy tallies (latency, expanding-ring progress); the
  // state itself lives in state_.
  double latency_sum_ = 0.0;
  std::uint64_t first_responses_ = 0;
  double rings_sum_ = 0.0;
  std::uint64_t ring_queries_finished_ = 0;

  // Concrete-index mode state (query strings live in state_).
  std::unique_ptr<TitleCorpus> corpus_;
  std::vector<InvertedIndex> indexes_;                 // One per cluster.
  std::vector<std::vector<FileRecord>> node_collections_;
  std::unordered_map<std::uint32_t,
                     std::deque<std::pair<FileId, FileRecord>>>
      pending_updates_;
  FileId next_file_id_ = 1;

  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  // Observability tallies (see PublishMetrics). All of these are
  // derived purely from protocol actions, so they are bit-identical
  // across runs with the same seed.
  std::array<std::uint64_t, kNumMsgTypes> msg_sent_ = {};
  std::array<std::uint64_t, kNumMsgTypes> msg_recv_ = {};
  std::uint64_t partner_recoveries_ = 0;
  std::size_t queue_depth_hwm_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t events_scheduled_ = 0;
  Histogram hop_histogram_{HopHistogramBounds()};
  // Wall-clock phase timers (report-only; never feed back into the
  // simulation — see the WallTimer contract in obs/metrics.h).
  double init_seconds_ = 0.0;
  double run_seconds_ = 0.0;

  // Fault-injection & recovery state. The injector owns its own salted
  // RNG stream; everything below it is consulted only when
  // fault_active_ (pay-for-what-you-use determinism).
  FaultInjector injector_;
  const bool fault_active_;
  const bool recovery_enabled_;
  std::vector<std::uint32_t> client_current_cluster_;  // Per client index.
  std::vector<std::vector<std::uint32_t>> cluster_members_;
  std::vector<double> orphaned_since_;  // -1 when connected.
  double outage_seconds_ = 0.0;
  std::uint64_t crashes_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t request_timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failover_episodes_ = 0;
  std::uint64_t client_rejoins_ = 0;
  std::uint64_t queries_succeeded_ = 0;
  std::uint64_t queries_failed_ = 0;
  Histogram recovery_latency_hist_{RecoveryLatencyBounds()};
  Histogram orphaned_clients_hist_{OrphanCountBounds()};
};

Simulator::Simulator(const NetworkInstance& instance,
                     const Configuration& config, const ModelInputs& inputs,
                     const SimOptions& options)
    : impl_(new Impl(instance, config, inputs, options)) {}

Simulator::~Simulator() { delete impl_; }

SimReport Simulator::Run() { return impl_->Run(); }

}  // namespace sppnet
