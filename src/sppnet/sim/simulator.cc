#include "sppnet/sim/simulator.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sppnet/bootstrap/discovery.h"
#include "sppnet/common/check.h"
#include "sppnet/common/rng.h"
#include "sppnet/index/corpus.h"
#include "sppnet/index/inverted_index.h"
#include "sppnet/obs/metrics.h"
#include "sppnet/sim/event_queue.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/sim_state.h"

namespace sppnet {
namespace {

// Event kinds.
enum : std::uint32_t {
  kQuerySubmit = 0,
  kQueryArrive,
  kResponseArrive,
  kJoinSubmit,
  kJoinArrive,
  kUpdateSubmit,
  kUpdateArrive,
  kPartnerFail,
  kPartnerRecover,
  kWalkArrive,     // Random-walk query hop.
  kRingCheck,      // Expanding-ring satisfaction probe.
  kPartnerCrash,   // Injected mid-session crash clock (fault layer).
  kRequestCheck,   // Per-request timeout probe (recovery protocol).
  kRetrySubmit,    // Backed-off query retry (recovery protocol).
  kAdaptProbeTick,     // Periodic load-probe sweep (adaptation layer).
  kAdaptProbeArrive,   // LoadProbe delivery to a super-peer.
  kAdaptReportArrive,  // LoadReport delivery back to the prober.
  kAdaptRound,         // Decision round: rules I-III on window loads.
  kAdaptTtlArrive,     // TtlUpdate broadcast delivery.
  kTraceQuerySubmit,   // Externally fed (trace-replay) query submission:
                       // same submission path as kQuerySubmit, but does
                       // not reschedule a Poisson clock.
};

// Wire message classes for the observability counters. Every
// accounted send/receive names its class so the per-type counters
// reconcile with the byte accounting by construction.
enum class Msg : std::size_t {
  kQuery = 0,
  kResponse,
  kJoin,
  kUpdate,
  kProbe,    // Adaptation: LoadProbe control message.
  kReport,   // Adaptation: LoadReport control message.
  kControl,  // Adaptation: TtlUpdate control message.
};
/// Message classes of the base protocol; their counters are always
/// published. The adaptation classes above are published only for
/// active plans, keeping the inactive registry surface unchanged.
inline constexpr std::size_t kNumBaseMsgTypes = 4;
inline constexpr std::size_t kNumMsgTypes = 7;
inline constexpr const char* kMsgNames[kNumMsgTypes] = {
    "query", "response", "join", "update", "probe", "report", "control"};

// Sentinel "upstream" marking a query submitted by the super-peer's own
// user: results are consumed locally and no submission hop exists.
constexpr std::uint32_t kSelfUpstream = 0xffffffffu;

// Query payload packing: b = upstream(32) | class(24) | ttl(8).
std::uint64_t PackQuery(std::uint32_t upstream, std::uint32_t query_class,
                        std::uint32_t ttl) {
  return (static_cast<std::uint64_t>(upstream) << 32) |
         (static_cast<std::uint64_t>(query_class & 0xffffffu) << 8) |
         static_cast<std::uint64_t>(ttl & 0xffu);
}

// Response payload packing: b = results(32) | addrs(16) | hops(16).
std::uint64_t PackResponse(std::uint32_t results, std::uint32_t addrs,
                           std::uint32_t hops) {
  return (static_cast<std::uint64_t>(results) << 32) |
         (static_cast<std::uint64_t>(addrs & 0xffffu) << 16) |
         static_cast<std::uint64_t>(hops & 0xffffu);
}

std::uint32_t SampleBinomialApprox(double n, double p, Rng& rng) {
  const double lambda = n * p;
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's Poisson sampler; an accurate stand-in for Binomial(n, p)
    // when p is tiny (selection powers are ~1e-4).
    const double limit = std::exp(-lambda);
    double prod = 1.0;
    std::uint32_t k = 0;
    do {
      ++k;
      prod *= rng.NextDouble();
    } while (prod > limit);
    return k - 1;
  }
  const double sigma = std::sqrt(lambda * (1.0 - p));
  const double x = std::llround(lambda + sigma * rng.NextGaussian());
  return x <= 0.0 ? 0u : static_cast<std::uint32_t>(x);
}

// Buckets of the per-response overlay-hop histogram: one bucket per
// hop count 0..15 plus overflow (TTLs in every experiment are <= 8).
std::vector<double> HopHistogramBounds() {
  std::vector<double> bounds(16);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    bounds[i] = static_cast<double>(i);
  }
  return bounds;
}

// Buckets for the client recovery-latency histogram (seconds from an
// orphaning outage to re-connection): roughly geometric, spanning
// sub-recovery-time episodes up to long multi-outage waits.
std::vector<double> RecoveryLatencyBounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0};
}

// Buckets for the orphaned-clients-per-outage histogram (cluster sizes
// in the experiments range from a handful to a few hundred clients).
std::vector<double> OrphanCountBounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0};
}

// --- Checkpoint helpers (streaming mode; DESIGN.md §11) ---------------------

// Section tag of the simulator's own checkpoint section ("simu").
constexpr std::uint32_t kSimTag = 0x756d6973u;

void PutRng(CheckpointWriter& w, const Rng& rng) {
  const Rng::State st = rng.SaveState();
  for (const std::uint64_t word : st.s) w.PutU64(word);
  w.PutDouble(st.gauss_spare);
  w.PutBool(st.has_gauss_spare);
}

void GetRng(CheckpointReader& r, Rng& rng) {
  Rng::State st;
  for (std::uint64_t& word : st.s) word = r.GetU64();
  st.gauss_spare = r.GetDouble();
  st.has_gauss_spare = r.GetBool();
  if (r.ok()) rng.RestoreState(st);
}

void PutHistogram(CheckpointWriter& w, const Histogram& h) {
  w.PutU64Vector(h.bucket_counts());
  w.PutDouble(h.sum());
}

// False when the serialized bucket shape does not match `h` (the
// caller rejects the payload; RestoreContents aborts on shape drift).
bool GetHistogram(CheckpointReader& r, Histogram& h) {
  const std::vector<std::uint64_t> counts = r.GetU64Vector();
  const double sum = r.GetDouble();
  if (!r.ok() || counts.size() != h.bucket_counts().size()) return false;
  h.RestoreContents(counts, sum);
  return true;
}

}  // namespace

class Simulator::Impl {
 public:
  Impl(const NetworkInstance& instance, const Configuration& config,
       const ModelInputs& inputs, const SimOptions& options)
      : inst_(instance),
        config_(config),
        inputs_(inputs),
        options_(options),
        rng_(options.seed),
        n_(instance.NumClusters()),
        k_(static_cast<std::size_t>(instance.redundancy_k)),
        num_partners_(instance.TotalPartners()),
        num_clients_(instance.TotalClients()),
        queue_(options.engine),
        state_(options.state_backend, instance.NumClusters()),
        injector_(options.faults, options.seed),
        fault_active_(options.faults.Active()),
        recovery_enabled_(fault_active_ && options.faults.TimeoutsEnabled()),
        adaptive_(options.adaptive.Active()),
        ttl_(config.ttl) {
    options_.Validate();
    const auto init_start = std::chrono::steady_clock::now();
    qbytes_ = inputs.costs.QueryBytes(inputs.stats.query_length_bytes);
    sendq_ = inputs.costs.SendQueryUnits(inputs.stats.query_length_bytes);
    recvq_ = inputs.costs.RecvQueryUnits(inputs.stats.query_length_bytes);

    in_bytes_.assign(num_partners_ + num_clients_, 0.0);
    out_bytes_.assign(num_partners_ + num_clients_, 0.0);
    units_.assign(num_partners_ + num_clients_, 0.0);

    client_cluster_.resize(num_clients_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t c = inst_.client_offset[i];
           c < inst_.client_offset[i + 1]; ++c) {
        client_cluster_[c] = static_cast<std::uint32_t>(i);
      }
    }
    conn_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) conn_[i] = inst_.PartnerConnections(i);
    client_conn_ = inst_.ClientConnections();

    partner_alive_.assign(num_partners_, true);
    alive_partners_.assign(n_, static_cast<std::uint32_t>(k_));
    outage_start_.assign(n_, -1.0);
    rr_.assign(n_, 0);

    if (fault_active_) {
      // Mutable membership: clients can re-join other clusters via
      // discovery, so cluster composition diverges from the instance
      // layout. Member lists keep insertion order — iteration (and
      // therefore the event stream) is deterministic.
      client_current_cluster_ = client_cluster_;
      cluster_members_.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        cluster_members_[i].reserve(inst_.client_offset[i + 1] -
                                    inst_.client_offset[i]);
        for (std::size_t c = inst_.client_offset[i];
             c < inst_.client_offset[i + 1]; ++c) {
          cluster_members_[i].push_back(static_cast<std::uint32_t>(c));
        }
      }
      orphaned_since_.assign(num_clients_, -1.0);
    }

    if (adaptive_) {
      SPPNET_CHECK_MSG(k_ == 1,
                       "in-sim adaptation requires redundancy_k == 1");
      adaptive_ctrl_ = std::make_unique<AdaptiveController>(
          inst_, options_.adaptive.policy, options_.seed);
      adapt_in_bytes_.assign(num_partners_ + num_clients_, 0.0);
      adapt_out_bytes_.assign(num_partners_ + num_clients_, 0.0);
      adapt_units_.assign(num_partners_ + num_clients_, 0.0);
      probe_bytes_ = inputs.costs.LoadProbeBytes();
      report_bytes_ = inputs.costs.LoadReportBytes();
      ttl_update_bytes_ = inputs.costs.TtlUpdateBytes();
      send_ctl_ = inputs.costs.SendControlUnits();
      recv_ctl_ = inputs.costs.RecvControlUnits();
    }

    if (options_.concrete_index) InitConcreteIndexes();
    init_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - init_start)
                        .count();
  }

  /// Concrete-index mode: build one real inverted index per cluster
  /// from corpus-sampled collections (owners are node ids).
  void InitConcreteIndexes() {
    corpus_ = std::make_unique<TitleCorpus>(CorpusParams{});
    indexes_.resize(n_);
    node_collections_.resize(TotalNodes());
    const auto add_node = [&](std::uint32_t node, std::size_t cluster) {
      const auto files = static_cast<std::size_t>(FilesOf(node));
      node_collections_[node] =
          corpus_->SampleCollection(node, files, &next_file_id_, rng_);
      indexes_[cluster].InsertCollection(node_collections_[node]);
    };
    for (std::uint32_t p = 0; p < num_partners_; ++p) {
      add_node(p, ClusterOf(p));
    }
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      const auto node = static_cast<std::uint32_t>(num_partners_ + c);
      add_node(node, ClusterOf(node));
    }
  }

  SimReport Run() {
    Start();
    const double end_time =
        options_.warmup_seconds + options_.duration_seconds;
    RunUntil(end_time);
    return FinalizeAt(end_time);
  }

  /// Streaming mode, step 1 of 3: seeds the recurring activity clocks.
  /// `Run()` is exactly `Start(); RunUntil(warmup + duration);
  /// FinalizeAt(warmup + duration);` — the split introduces no
  /// behavioural change (the engine-equivalence goldens pin this).
  void Start() {
    SPPNET_CHECK_MSG(!started_, "Start()/Run() called twice");
    started_ = true;
    // Seed per-user recurring activity.
    for (std::uint32_t u = 0; u < TotalNodes(); ++u) {
      ScheduleIn(ExpDelay(config_.query_rate), kQuerySubmit, u);
      ScheduleIn(ExpDelay(config_.update_rate), kUpdateSubmit, u);
      ScheduleIn(ExpDelay(1.0 / LifespanOf(u)), kJoinSubmit, u);
    }
    if (options_.enable_churn) {
      for (std::uint32_t p = 0; p < num_partners_; ++p) {
        ScheduleIn(ExpDelay(1.0 / inst_.partner_lifespan[p]), kPartnerFail, p);
      }
    }
    if (fault_active_ && injector_.plan().crash_rate_per_partner > 0.0) {
      // Independent Poisson crash clock per partner slot; crashes on a
      // dead partner are no-ops, so up-times stay memoryless (the
      // analytical availability model relies on this — DESIGN.md §8).
      for (std::uint32_t p = 0; p < num_partners_; ++p) {
        ScheduleIn(injector_.NextCrashDelay(), kPartnerCrash, p);
      }
    }
    if (adaptive_) {
      window_start_ = 0.0;
      ScheduleIn(options_.adaptive.probe_interval_seconds, kAdaptProbeTick, 0);
      ScheduleIn(options_.adaptive.decision_interval_seconds, kAdaptRound, 0);
    }
  }

  /// Streaming mode, step 2 of 3: dispatches every pending event with
  /// time <= `sim_time`. Idempotent for a quiet horizon; callable any
  /// number of times with nondecreasing horizons. Does NOT advance
  /// `now_` to `sim_time` — only FinalizeAt does, so a checkpoint cut
  /// between windows lands on the last dispatched event's timestamp
  /// regardless of the window grid.
  void RunUntil(double sim_time) {
    SPPNET_CHECK_MSG(started_, "RunUntil() before Start()");
    SPPNET_CHECK(!finalized_);
    const auto run_start = std::chrono::steady_clock::now();
    while (!queue_.empty() && queue_.NextTime() <= sim_time) {
      const SimEvent e = queue_.Pop();
      ++events_dispatched_;
      now_ = e.time;
      measuring_ = now_ >= options_.warmup_seconds;
      Dispatch(e);
    }
    run_seconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - run_start)
                        .count();
  }

  /// Streaming mode, step 3 of 3: advances the clock to `end_time` and
  /// builds the report. When `end_time` equals warmup + duration (the
  /// batch horizon, compared as the identical FP expression) the
  /// measured window is exactly `duration_seconds`, keeping Run()
  /// bit-identical to the pre-split code; any other horizon measures
  /// max(0, end_time - warmup) seconds.
  SimReport FinalizeAt(double end_time) {
    SPPNET_CHECK_MSG(started_, "FinalizeAt() before Start()");
    SPPNET_CHECK_MSG(!finalized_, "FinalizeAt() called twice");
    SPPNET_CHECK(std::isfinite(end_time) && end_time >= now_);
    finalized_ = true;
    now_ = end_time;
    const double batch_horizon =
        options_.warmup_seconds + options_.duration_seconds;
    const double measured =
        end_time == batch_horizon
            ? options_.duration_seconds
            : std::max(0.0, end_time - options_.warmup_seconds);
    return Finalize(measured);
  }

  double Now() const { return now_; }
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  /// Schedules one externally fed query submission at absolute sim time
  /// `time` (>= the current clock). Trace-replay entry point: the event
  /// runs the normal submission path without touching the Poisson
  /// clocks, so a trace can be layered over (or replace) the generated
  /// workload deterministically.
  void InjectQueryAt(double time, std::uint32_t user) {
    SPPNET_CHECK_MSG(user < TotalNodes(), "trace user out of range");
    SPPNET_CHECK_MSG(std::isfinite(time) && time >= now_,
                     "trace events must not be scheduled in the past");
    ScheduleIn(time - now_, kTraceQuerySubmit, user);
  }

  /// Publishes the CUMULATIVE run-so-far tallies into `m` — the same
  /// instrument surface as the end-of-run publish. The streaming layer
  /// diffs successive publishes into per-window deltas, which therefore
  /// reconcile with the final totals by construction.
  void PublishCumulativeMetrics(MetricsRegistry& m) const {
    PublishMetrics(m);
  }

  /// Retires per-query bookkeeping for roots submitted before
  /// `cutoff_seconds` of sim time: advances the retirement floor past
  /// every root claimed strictly earlier, then drops the underlying
  /// storage prefix (SimState::RetireBelow). Root qids are claimed in
  /// submission order, so the first live root at or past the cutoff
  /// bounds the scan; qids never claimed (cache hits, retries, ring
  /// waves) retire with their neighborhood. The caller must pick a
  /// cutoff at least one in-flight horizon behind the clock — touching
  /// a retired qid aborts through the SimState floor checks rather
  /// than corrupting the run (stream.cc derives a conservative horizon
  /// from the latency, retry and ring-wave bounds).
  void RetireStateBefore(double cutoff_seconds) {
    SPPNET_CHECK_MSG(!options_.concrete_index,
                     "state retirement requires abstract indexes");
    while (retire_scan_qid_ < next_qid_) {
      const QueryState* s = state_.Find(retire_scan_qid_);
      if (s != nullptr && s->submit_time >= cutoff_seconds) break;
      ++retire_scan_qid_;
    }
    state_.RetireBelow(retire_scan_qid_);
  }

  /// Serializes the complete mutable simulator state (DESIGN.md §11).
  /// Static and derived members — the instance, cost caches, the
  /// connection layout — are rebuilt identically by the restoring
  /// constructor and are not written. The serialized form is engine-
  /// and backend-portable: pending events carry their original
  /// (time, seq) keys and per-query state is written as canonically
  /// ordered logical entries, so a calendar/dense run can restore into
  /// a heap/map simulator and vice versa.
  void SaveState(CheckpointWriter& w) const {
    SPPNET_CHECK_MSG(!options_.concrete_index,
                     "checkpoint requires abstract indexes");
    SPPNET_CHECK_MSG(started_ && !finalized_,
                     "checkpoint requires a started, unfinalized run");
    w.BeginSection(kSimTag);
    w.PutDouble(now_);
    PutRng(w, rng_);
    PutRng(w, injector_.stream());
    const std::vector<SimEvent> events = queue_.SnapshotEvents();
    w.PutU64(events.size());
    for (const SimEvent& e : events) {
      w.PutDouble(e.time);
      w.PutU64(e.seq);
      w.PutU32(e.kind);
      w.PutU32(e.node);
      w.PutU64(e.a);
      w.PutU64(e.b);
      w.PutDouble(e.x);
    }
    w.PutU64(queue_.next_seq());
    state_.SaveTo(w);
    w.PutU64(retire_scan_qid_);
    // Load accounting and churn state.
    w.PutDoubleVector(in_bytes_);
    w.PutDoubleVector(out_bytes_);
    w.PutDoubleVector(units_);
    w.PutU8Vector(partner_alive_);
    w.PutU32Vector(alive_partners_);
    w.PutDoubleVector(outage_start_);
    w.PutU32Vector(rr_);
    // Tallies.
    w.PutU64(next_qid_);
    w.PutU64(queries_submitted_);
    w.PutU64(responses_delivered_);
    w.PutU64(duplicate_queries_);
    w.PutU64(partner_failures_);
    w.PutU64(cluster_outages_);
    w.PutDouble(results_sum_);
    w.PutDouble(hops_sum_);
    w.PutDouble(disconnected_client_seconds_);
    w.PutDouble(latency_sum_);
    w.PutU64(first_responses_);
    w.PutDouble(rings_sum_);
    w.PutU64(ring_queries_finished_);
    w.PutU64(cache_hits_);
    w.PutU64(cache_misses_);
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) w.PutU64(msg_sent_[t]);
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) w.PutU64(msg_recv_[t]);
    w.PutU64(partner_recoveries_);
    w.PutU64(static_cast<std::uint64_t>(queue_depth_hwm_));
    w.PutU64(events_dispatched_);
    w.PutU64(events_scheduled_);
    PutHistogram(w, hop_histogram_);
    // Fault layer. Tallies and histograms are written unconditionally
    // (outage time accrues under plain churn too); the membership
    // vectors exist only for active plans.
    w.PutDouble(outage_seconds_);
    w.PutU64(crashes_);
    w.PutU64(messages_dropped_);
    w.PutU64(request_timeouts_);
    w.PutU64(retries_);
    w.PutU64(failover_episodes_);
    w.PutU64(client_rejoins_);
    w.PutU64(queries_succeeded_);
    w.PutU64(queries_failed_);
    PutHistogram(w, recovery_latency_hist_);
    PutHistogram(w, orphaned_clients_hist_);
    w.PutBool(fault_active_);
    if (fault_active_) {
      w.PutU32Vector(client_current_cluster_);
      w.PutU64(cluster_members_.size());
      for (const std::vector<std::uint32_t>& members : cluster_members_) {
        w.PutU32Vector(members);
      }
      w.PutDoubleVector(orphaned_since_);
    }
    // Adaptation layer.
    w.PutU32(static_cast<std::uint32_t>(ttl_));
    w.PutBool(adaptive_);
    if (adaptive_) {
      adaptive_ctrl_->SaveTo(w);
      w.PutDoubleVector(adapt_in_bytes_);
      w.PutDoubleVector(adapt_out_bytes_);
      w.PutDoubleVector(adapt_units_);
      w.PutDouble(window_start_);
      w.PutU64(adapt_rounds_);
      w.PutU64(adapt_splits_);
      w.PutU64(adapt_coalesces_);
      w.PutU64(adapt_edges_added_);
      w.PutU64(adapt_ttl_decreases_);
      w.PutU64(adapt_probes_sent_);
      w.PutU64(adapt_reports_received_);
      w.PutU64(adapt_client_moves_);
      w.PutBool(adapt_converged_);
      w.PutU64(adapt_converged_round_);
    }
  }

  /// Counterpart of SaveState on a freshly constructed simulator with
  /// the same instance, configuration and protocol options (the engine
  /// and state backend may differ). Replaces Start(). Returns false —
  /// leaving the simulator unusable — on any malformed payload; the
  /// envelope checksum in CheckpointReader::Open has already rejected
  /// truncation and corruption, so failures here mean writer/reader
  /// drift or a checkpoint from a mismatched scenario.
  bool LoadState(CheckpointReader& r) {
    SPPNET_CHECK_MSG(!options_.concrete_index,
                     "checkpoint requires abstract indexes");
    SPPNET_CHECK_MSG(!started_, "LoadState() requires a fresh simulator");
    if (!r.BeginSection(kSimTag)) return false;
    started_ = true;
    now_ = r.GetDouble();
    GetRng(r, rng_);
    GetRng(r, injector_.stream());
    const std::uint64_t num_events = r.GetU64();
    std::vector<SimEvent> events;
    for (std::uint64_t i = 0; i < num_events && r.ok(); ++i) {
      SimEvent e;
      e.time = r.GetDouble();
      e.seq = r.GetU64();
      e.kind = r.GetU32();
      e.node = r.GetU32();
      e.a = r.GetU64();
      e.b = r.GetU64();
      e.x = r.GetDouble();
      events.push_back(e);
    }
    const std::uint64_t next_seq = r.GetU64();
    if (!r.ok()) return false;
    // Validate before handing to the queue: RestorePending aborts on
    // violated invariants, but a foreign payload should fail cleanly.
    for (const SimEvent& e : events) {
      if (!std::isfinite(e.time) || e.kind > kTraceQuerySubmit ||
          e.seq >= next_seq) {
        return false;
      }
    }
    queue_.RestorePending(events, next_seq);
    if (!state_.LoadFrom(r)) return false;
    retire_scan_qid_ = r.GetU64();
    in_bytes_ = r.GetDoubleVector();
    out_bytes_ = r.GetDoubleVector();
    units_ = r.GetDoubleVector();
    partner_alive_ = r.GetU8Vector();
    alive_partners_ = r.GetU32Vector();
    outage_start_ = r.GetDoubleVector();
    rr_ = r.GetU32Vector();
    next_qid_ = r.GetU64();
    queries_submitted_ = r.GetU64();
    responses_delivered_ = r.GetU64();
    duplicate_queries_ = r.GetU64();
    partner_failures_ = r.GetU64();
    cluster_outages_ = r.GetU64();
    results_sum_ = r.GetDouble();
    hops_sum_ = r.GetDouble();
    disconnected_client_seconds_ = r.GetDouble();
    latency_sum_ = r.GetDouble();
    first_responses_ = r.GetU64();
    rings_sum_ = r.GetDouble();
    ring_queries_finished_ = r.GetU64();
    cache_hits_ = r.GetU64();
    cache_misses_ = r.GetU64();
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) msg_sent_[t] = r.GetU64();
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) msg_recv_[t] = r.GetU64();
    partner_recoveries_ = r.GetU64();
    queue_depth_hwm_ = static_cast<std::size_t>(r.GetU64());
    events_dispatched_ = r.GetU64();
    events_scheduled_ = r.GetU64();
    if (!GetHistogram(r, hop_histogram_)) return false;
    outage_seconds_ = r.GetDouble();
    crashes_ = r.GetU64();
    messages_dropped_ = r.GetU64();
    request_timeouts_ = r.GetU64();
    retries_ = r.GetU64();
    failover_episodes_ = r.GetU64();
    client_rejoins_ = r.GetU64();
    queries_succeeded_ = r.GetU64();
    queries_failed_ = r.GetU64();
    if (!GetHistogram(r, recovery_latency_hist_)) return false;
    if (!GetHistogram(r, orphaned_clients_hist_)) return false;
    const bool saved_fault_active = r.GetBool();
    if (fault_active_) {
      client_current_cluster_ = r.GetU32Vector();
      const std::uint64_t num_lists = r.GetU64();
      std::vector<std::vector<std::uint32_t>> members;
      for (std::uint64_t i = 0; i < num_lists && r.ok(); ++i) {
        members.push_back(r.GetU32Vector());
      }
      cluster_members_ = std::move(members);
      orphaned_since_ = r.GetDoubleVector();
    }
    ttl_ = static_cast<int>(r.GetU32());
    const bool saved_adaptive = r.GetBool();
    if (adaptive_) {
      if (!adaptive_ctrl_->LoadFrom(r)) return false;
      adapt_in_bytes_ = r.GetDoubleVector();
      adapt_out_bytes_ = r.GetDoubleVector();
      adapt_units_ = r.GetDoubleVector();
      window_start_ = r.GetDouble();
      adapt_rounds_ = r.GetU64();
      adapt_splits_ = r.GetU64();
      adapt_coalesces_ = r.GetU64();
      adapt_edges_added_ = r.GetU64();
      adapt_ttl_decreases_ = r.GetU64();
      adapt_probes_sent_ = r.GetU64();
      adapt_reports_received_ = r.GetU64();
      adapt_client_moves_ = r.GetU64();
      adapt_converged_ = r.GetBool();
      adapt_converged_round_ = r.GetU64();
    }
    measuring_ = now_ >= options_.warmup_seconds;
    // A checkpoint from a scenario with a different fault/adaptation
    // layer, or vectors inconsistent with the reconstructed layout,
    // is rejected wholesale.
    const std::size_t total = num_partners_ + num_clients_;
    bool consistent = saved_fault_active == fault_active_ &&
                      saved_adaptive == adaptive_ &&
                      std::isfinite(now_) && now_ >= 0.0 && ttl_ >= 0 &&
                      in_bytes_.size() == total &&
                      out_bytes_.size() == total && units_.size() == total &&
                      partner_alive_.size() == num_partners_ &&
                      alive_partners_.size() >= n_ && rr_.size() >= n_ &&
                      outage_start_.size() >= n_;
    if (fault_active_) {
      consistent = consistent &&
                   client_current_cluster_.size() == num_clients_ &&
                   orphaned_since_.size() == num_clients_ &&
                   cluster_members_.size() >= n_;
    }
    if (adaptive_) {
      consistent = consistent && adapt_in_bytes_.size() == total &&
                   adapt_out_bytes_.size() == total &&
                   adapt_units_.size() == total;
    }
    return r.ok() && consistent;
  }

 private:
  // --- Small helpers -------------------------------------------------------
  std::uint32_t TotalNodes() const {
    return static_cast<std::uint32_t>(num_partners_ + num_clients_);
  }
  bool IsPartner(std::uint32_t node) const { return node < num_partners_; }
  /// Role check under adaptation: a split promotes a client-range node
  /// to head and a coalesce resigns an original partner to an ordinary
  /// member, so role and node-id range diverge. Without adaptation the
  /// head role coincides with the partner range (bit-identical path).
  bool IsHeadRole(std::uint32_t node) const {
    return adaptive_ ? adaptive_ctrl_->IsHead(node) : IsPartner(node);
  }
  /// Liveness of a head node. Only original partner slots carry
  /// churn/crash state; promoted heads (client-range node ids) never
  /// fail — the fault clocks only tick for partner slots.
  bool HeadAlive(std::uint32_t node) const {
    return node < num_partners_ ? partner_alive_[node] != 0 : true;
  }
  std::size_t ClusterOf(std::uint32_t node) const {
    if (adaptive_) return adaptive_ctrl_->ClusterOfNode(node);
    if (IsPartner(node)) return node / k_;
    const std::uint32_t c = node - num_partners_;
    return fault_active_ ? client_current_cluster_[c] : client_cluster_[c];
  }
  /// The live head of `cluster` under adaptation; kSelfUpstream when
  /// the cluster is dead, headless, or its head is down.
  std::uint32_t LiveHeadOf(std::size_t cluster) const {
    const std::uint32_t head = adaptive_ctrl_->HeadOf(cluster);
    if (head == AdaptiveController::kNoHead || !HeadAlive(head)) {
      return kSelfUpstream;
    }
    return head;
  }
  /// True when a client of `cluster` has no live head to submit
  /// through (the discovery re-join trigger in SubmitWithFailover).
  bool ClusterUnreachable(std::size_t cluster) const {
    if (adaptive_) return LiveHeadOf(cluster) == kSelfUpstream;
    return alive_partners_[cluster] == 0;
  }
  double LifespanOf(std::uint32_t node) const {
    return IsPartner(node) ? inst_.partner_lifespan[node]
                           : inst_.client_lifespan[node - num_partners_];
  }
  double FilesOf(std::uint32_t node) const {
    return IsPartner(node)
               ? static_cast<double>(inst_.partner_files[node])
               : static_cast<double>(inst_.client_files[node - num_partners_]);
  }
  double MuxOf(std::uint32_t node) const {
    if (adaptive_) {
      // Open connections follow the live topology: a head multiplexes
      // its members plus its overlay neighbors; everyone else keeps
      // the single upstream connection.
      if (adaptive_ctrl_->IsHead(node)) {
        const std::size_t cluster = adaptive_ctrl_->ClusterOfNode(node);
        return inputs_.costs.MultiplexUnits(static_cast<double>(
            adaptive_ctrl_->MembersOf(cluster).size() +
            adaptive_ctrl_->NeighborsOf(cluster).size()));
      }
      return inputs_.costs.MultiplexUnits(client_conn_);
    }
    return inputs_.costs.MultiplexUnits(
        IsPartner(node) ? conn_[ClusterOf(node)] : client_conn_);
  }
  double ExpDelay(double rate) const {
    SPPNET_CHECK(rate > 0.0);
    // Inverse-CDF exponential; NextDouble() < 1 so log is finite.
    return -std::log(1.0 - rng_.NextDouble()) / rate;
  }
  void ScheduleIn(double delay, std::uint32_t kind, std::uint32_t node,
                  std::uint64_t a = 0, std::uint64_t b = 0) {
    SimEvent e;
    e.time = now_ + delay;
    e.kind = kind;
    e.node = node;
    e.a = a;
    e.b = b;
    queue_.Schedule(e);
    ++events_scheduled_;
    if (queue_.size() > queue_depth_hwm_) queue_depth_hwm_ = queue_.size();
  }
  /// Delivery of an overlay message, through the fault layer: the
  /// message may be silently dropped or arrive late by a jittered
  /// amount. The sender's cost was already accounted — the bytes left
  /// its link either way. Control events (timers, checks) bypass this
  /// and use ScheduleIn directly; they are local, not messages.
  void Deliver(double delay, std::uint32_t kind, std::uint32_t node,
               std::uint64_t a = 0, std::uint64_t b = 0) {
    if (fault_active_) {
      if (injector_.ShouldDropDelivery()) {
        if (measuring_) ++messages_dropped_;
        return;
      }
      delay += injector_.DeliveryJitter();
    }
    ScheduleIn(delay, kind, node, a, b);
  }
  // The adapt_* window accumulators feed the next decision round's
  // measured loads; they accrue during warmup too — the adaptation
  // protocol observes all traffic, unlike the report accounting.
  void AcctSend(std::uint32_t node, Msg msg, double bytes, double units) {
    if (adaptive_) {
      adapt_out_bytes_[node] += bytes;
      adapt_units_[node] += units;
    }
    if (!measuring_) return;
    out_bytes_[node] += bytes;
    units_[node] += units;
    ++msg_sent_[static_cast<std::size_t>(msg)];
  }
  void AcctRecv(std::uint32_t node, Msg msg, double bytes, double units) {
    if (adaptive_) {
      adapt_in_bytes_[node] += bytes;
      adapt_units_[node] += units;
    }
    if (!measuring_) return;
    in_bytes_[node] += bytes;
    units_[node] += units;
    ++msg_recv_[static_cast<std::size_t>(msg)];
  }
  void AcctProc(std::uint32_t node, double units) {
    if (adaptive_) adapt_units_[node] += units;
    if (!measuring_) return;
    units_[node] += units;
  }

  /// Round-robin choice of a live partner of `cluster`; returns
  /// kSelfUpstream if none is alive (message lost). Skipping a dead
  /// preferred slot is the k-redundancy failover in action; the fault
  /// layer counts those episodes.
  std::uint32_t PickPartner(std::size_t cluster) {
    if (adaptive_) return LiveHeadOf(cluster);  // Non-redundant clusters.
    bool preferred_dead = false;
    for (std::size_t attempt = 0; attempt < k_; ++attempt) {
      const std::size_t slot = (rr_[cluster]++) % k_;
      const auto node = static_cast<std::uint32_t>(cluster * k_ + slot);
      if (partner_alive_[node]) {
        if (preferred_dead && fault_active_ && measuring_) {
          ++failover_episodes_;
        }
        return node;
      }
      preferred_dead = true;
    }
    return kSelfUpstream;
  }

  // --- Dispatch -------------------------------------------------------------
  void Dispatch(const SimEvent& e) {
    switch (e.kind) {
      case kQuerySubmit:
        OnQuerySubmit(e.node);
        break;
      case kQueryArrive:
        OnQueryArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                      static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                      static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kResponseArrive:
        OnResponseArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                         static_cast<std::uint32_t>((e.b >> 16) & 0xffffu),
                         static_cast<std::uint32_t>(e.b & 0xffffu));
        break;
      case kJoinSubmit:
        OnJoinSubmit(e.node);
        break;
      case kJoinArrive:
        OnJoinArrive(e.node, static_cast<std::uint32_t>(e.a), e.x);
        break;
      case kUpdateSubmit:
        OnUpdateSubmit(e.node);
        break;
      case kUpdateArrive:
        OnUpdateArrive(e.node, static_cast<std::uint32_t>(e.a));
        break;
      case kPartnerFail:
        OnPartnerFail(e.node);
        break;
      case kPartnerRecover:
        OnPartnerRecover(e.node, /*churn_origin=*/e.a != 0);
        break;
      case kPartnerCrash:
        OnPartnerCrash(e.node);
        break;
      case kRequestCheck:
        OnRequestCheck(e.node, e.a, static_cast<std::uint32_t>(e.b));
        break;
      case kRetrySubmit:
        OnRetrySubmit(e.node, e.a, static_cast<std::uint32_t>(e.b));
        break;
      case kWalkArrive:
        OnWalkArrive(e.node, e.a, static_cast<std::uint32_t>(e.b >> 32),
                     static_cast<std::uint32_t>((e.b >> 8) & 0xffffffu),
                     static_cast<std::uint32_t>(e.b & 0xffu));
        break;
      case kRingCheck:
        OnRingCheck(e.a);
        break;
      case kAdaptProbeTick:
        OnAdaptProbeTick();
        break;
      case kAdaptProbeArrive:
        OnAdaptProbeArrive(e.node, static_cast<std::uint32_t>(e.a));
        break;
      case kAdaptReportArrive:
        OnAdaptReportArrive(e.node, static_cast<std::uint32_t>(e.a), e.b);
        break;
      case kAdaptRound:
        OnAdaptRound();
        break;
      case kAdaptTtlArrive:
        OnAdaptTtlArrive(e.node);
        break;
      case kTraceQuerySubmit:
        SubmitQueryNow(e.node);
        break;
      default:
        SPPNET_CHECK_MSG(false, "unknown event kind");
    }
  }

  // --- Queries ---------------------------------------------------------------
  // Per-user-query bookkeeping (QueryState, keyed by root qid) lives in
  // SimState (sim/sim_state.h); expanding-ring / retry qids map back to
  // their root through it.

  void OnQuerySubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(config_.query_rate), kQuerySubmit, user);
    SubmitQueryNow(user);
  }

  /// The submission body shared by the Poisson clock (kQuerySubmit) and
  /// trace replay (kTraceQuerySubmit): everything OnQuerySubmit did
  /// except rescheduling the clock.
  void SubmitQueryNow(std::uint32_t user) {
    if (IsHeadRole(user) && !HeadAlive(user)) return;
    const auto query_class =
        static_cast<std::uint32_t>(inputs_.query_model.SampleQueryClass(rng_));
    if (options_.concrete_index) {
      // Reserve the qid now so the sampled keyword string is in place
      // before any cluster matches it (the switch below consumes ids in
      // order).
      state_.SetQueryString(next_qid_, corpus_->SampleQuery(rng_));
    }

    switch (options_.strategy) {
      case SearchStrategy::kFlood: {
        const std::uint64_t qid = next_qid_++;
        if (options_.result_cache_ttl_seconds > 0.0) {
          if (TryAnswerFromCache(user, qid, query_class)) {
            // A cache-served query trivially succeeded.
            if (recovery_enabled_ && measuring_) ++queries_succeeded_;
            return;
          }
          if (measuring_) ++cache_misses_;
        }
        if (!SubmitWithFailover(user, qid, query_class,
                                static_cast<std::uint32_t>(ttl_ + 1))) {
          // No live partner anywhere: the query cannot be routed.
          if (recovery_enabled_ && measuring_) ++queries_failed_;
          return;
        }
        RecordSubmission(qid, user, query_class, 0);
        if (recovery_enabled_) {
          ScheduleIn(injector_.plan().request_timeout_seconds, kRequestCheck,
                     user, qid, /*retries_used=*/0);
        }
        break;
      }
      case SearchStrategy::kExpandingRing: {
        const std::uint64_t qid = next_qid_++;
        if (!SubmitToOwnCluster(user, qid, query_class, 2)) return;  // Ring 1.
        RecordSubmission(qid, user, query_class, 1);
        ScheduleRingCheck(qid, 1);
        break;
      }
      case SearchStrategy::kRandomWalk: {
        const std::uint64_t qid = next_qid_++;
        if (!LaunchWalks(user, qid, query_class)) return;
        RecordSubmission(qid, user, query_class, 0);
        break;
      }
    }
  }

  void RecordSubmission(std::uint64_t qid, std::uint32_t user,
                        std::uint32_t query_class, std::uint32_t ring_ttl) {
    if (measuring_) ++queries_submitted_;
    QueryState& state = state_.Claim(qid);
    state.user = user;
    state.query_class = query_class;
    state.ring_ttl = ring_ttl;
    state.submit_time = now_;
    state.cache_key = CacheKey(qid, query_class);
    state_.SetRoot(qid, qid);
  }

  // --- Source-side result cache (flood strategy) -----------------------------

  /// Identity of a query for caching: its class in abstract mode, the
  /// hash of its keyword string in concrete mode.
  std::uint64_t CacheKey(std::uint64_t qid, std::uint32_t query_class) const {
    if (options_.concrete_index) {
      std::uint64_t hash = 0;
      if (state_.QueryStringHash(qid, &hash)) return hash;
    }
    return query_class;
  }

  /// If this cluster flooded the same query recently, answer from the
  /// cached aggregate result set: one submission hop and one response —
  /// no flood, no remote work. Returns true when the query was served.
  bool TryAnswerFromCache(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class) {
    const std::size_t cluster = ClusterOf(user);
    const std::uint64_t key = CacheKey(qid, query_class);
    const QueryCacheEntry* found = state_.FindCacheEntry(cluster, key);
    if (found == nullptr || found->expires < now_ || found->results <= 0.0) {
      return false;
    }
    const QueryCacheEntry& entry = *found;
    if (measuring_) {
      ++queries_submitted_;
      ++cache_hits_;
      ++responses_delivered_;
      results_sum_ += entry.results;
      ++first_responses_;
    }
    const auto results = static_cast<std::uint32_t>(entry.results);
    const auto addrs = static_cast<std::uint32_t>(entry.addrs);
    const double response_bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    if (IsPartner(user)) {
      // The partner answers its own user locally: no messages.
      return true;
    }
    const std::uint32_t partner = PickPartner(cluster);
    if (partner == kSelfUpstream) return true;  // Disconnected anyway.
    // Submission hop + cached response back to the client.
    AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
    AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    AcctSend(partner, Msg::kResponse, response_bytes,
             inputs_.costs.SendResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(partner));
    AcctRecv(user, Msg::kResponse, response_bytes,
             inputs_.costs.RecvResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(user));
    if (measuring_) {
      latency_sum_ += 2.0 * options_.hop_latency_seconds;
    }
    return true;
  }

  /// Accumulates a delivered response into the source cluster's cache.
  void PopulateCache(const QueryState& state, std::uint64_t root,
                     std::uint32_t results, std::uint32_t addrs) {
    if (options_.result_cache_ttl_seconds <= 0.0 ||
        options_.strategy != SearchStrategy::kFlood) {
      return;
    }
    QueryCacheEntry& entry =
        state_.CacheEntrySlot(ClusterOf(state.user), state.cache_key);
    if (entry.expires < now_) {
      // Fresh (or expired) entry: restart accumulation for this query.
      entry.results = 0.0;
      entry.addrs = 0.0;
      entry.expires = now_ + options_.result_cache_ttl_seconds;
      entry.owner = root;
    }
    if (entry.owner != root) return;  // A concurrent flood already owns it.
    entry.results += static_cast<double>(results);
    entry.addrs += static_cast<double>(addrs);
  }

  /// Routes a query (with the given hop budget) into the submitting
  /// user's own cluster: directly for a partner-user, via the
  /// round-robin submission hop for a client. Returns false if the
  /// cluster is unreachable (churn).
  bool SubmitToOwnCluster(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class, std::uint32_t ttl) {
    // The source super-peer floods with the full TTL, so the submission
    // hop carries TTL+1: every OnQueryArrive forwards with ttl-1, and a
    // node at depth d therefore holds TTL+1-d, forwarding while d < TTL —
    // exactly the paper's semantics (nodes at depth == TTL do not
    // forward).
    if (IsHeadRole(user)) {
      OnQueryArrive(user, qid, kSelfUpstream, query_class, ttl);
      return true;
    }
    const std::uint32_t target = PickPartner(ClusterOf(user));
    if (target == kSelfUpstream) return false;  // Disconnected.
    AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
    Deliver(options_.hop_latency_seconds, kQueryArrive, target, qid,
            PackQuery(user, query_class, ttl));
    return true;
  }

  /// SubmitToOwnCluster with fault-mode recovery: a client whose whole
  /// cluster is down first re-joins a surviving cluster via the
  /// bootstrap discovery service; only when no cluster in the network
  /// has a live partner does the submission fail.
  bool SubmitWithFailover(std::uint32_t user, std::uint64_t qid,
                          std::uint32_t query_class, std::uint32_t ttl) {
    if (fault_active_ && !IsHeadRole(user) &&
        ClusterUnreachable(ClusterOf(user))) {
      if (!RejoinViaDiscovery(user)) return false;
    }
    return SubmitToOwnCluster(user, qid, query_class, ttl);
  }

  // --- Expanding ring ---------------------------------------------------------
  void ScheduleRingCheck(std::uint64_t root, std::uint32_t ring_ttl) {
    // Allow one round trip across the ring plus slack before judging.
    const double wait =
        (2.0 * static_cast<double>(ring_ttl) + 3.0) *
        options_.hop_latency_seconds;
    ScheduleIn(wait, kRingCheck, 0, root);
  }

  void OnRingCheck(std::uint64_t root) {
    QueryState* found = state_.Find(root);
    if (found == nullptr) return;
    QueryState& state = *found;
    const bool satisfied =
        state.ring_results >=
        static_cast<double>(options_.ring_satisfaction_results);
    const bool exhausted =
        state.ring_ttl >= static_cast<std::uint32_t>(config_.ttl);
    if (satisfied || exhausted) {
      FinishRingQuery(state);
      return;
    }
    // Grow the ring: a fresh flood with a larger TTL (naive iterative
    // deepening re-queries the inner rings; that cost is intrinsic to
    // the technique and shows up in the measurements).
    if (IsPartner(state.user) && !partner_alive_[state.user]) {
      FinishRingQuery(state);
      return;
    }
    const std::uint64_t retry_qid = next_qid_++;
    if (options_.concrete_index) {
      // The retry re-issues the same keyword string under a fresh qid.
      state_.ShareQueryString(root, retry_qid);
    }
    state.ring_ttl += 1;
    state.ring_results = 0.0;
    state_.SetRoot(retry_qid, root);
    if (!SubmitToOwnCluster(state.user, retry_qid, state.query_class,
                            state.ring_ttl + 1)) {
      FinishRingQuery(state);
      return;
    }
    ScheduleRingCheck(root, state.ring_ttl);
  }

  void FinishRingQuery(const QueryState& state) {
    if (measuring_) {
      results_sum_ += state.ring_results;
      rings_sum_ += static_cast<double>(state.ring_ttl);
      ++ring_queries_finished_;
    }
  }

  // --- Random walks -------------------------------------------------------------
  bool LaunchWalks(std::uint32_t user, std::uint64_t qid,
                   std::uint32_t query_class) {
    const std::size_t cluster = ClusterOf(user);
    // The source cluster always processes the query itself.
    std::uint32_t source_partner;
    if (IsPartner(user)) {
      source_partner = user;
      OnQueryArrive(user, qid, kSelfUpstream, query_class, 1);
    } else {
      source_partner = PickPartner(cluster);
      if (source_partner == kSelfUpstream) return false;
      AcctSend(user, Msg::kQuery, qbytes_, sendq_ + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kQueryArrive, source_partner,
              qid, PackQuery(user, query_class, 1));
    }
    // Launch the walkers from the source partner.
    for (std::uint32_t w = 0; w < options_.num_walkers; ++w) {
      const std::uint32_t target = RandomNeighborPartner(cluster);
      if (target == kSelfUpstream) break;
      AcctSend(source_partner, Msg::kQuery, qbytes_,
               sendq_ + MuxOf(source_partner));
      Deliver(options_.hop_latency_seconds, kWalkArrive, target, qid,
              PackQuery(source_partner, query_class,
                        options_.walk_ttl & 0xffu));
    }
    return true;
  }

  /// A uniformly random live partner of a random neighbor of `cluster`;
  /// kSelfUpstream if the cluster has no neighbors.
  std::uint32_t RandomNeighborPartner(std::size_t cluster) {
    std::size_t neighbor;
    if (inst_.topology.is_complete()) {
      if (n_ <= 1) return kSelfUpstream;
      do {
        neighbor = rng_.NextBounded(n_);
      } while (neighbor == cluster);
    } else {
      const auto nbrs =
          inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster));
      if (nbrs.empty()) return kSelfUpstream;
      neighbor = nbrs[rng_.NextBounded(nbrs.size())];
    }
    return PickPartner(neighbor);
  }

  void OnWalkArrive(std::uint32_t partner, std::uint64_t qid,
                    std::uint32_t source_partner, std::uint32_t query_class,
                    std::uint32_t ttl) {
    if (!partner_alive_[partner]) return;
    AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    const std::size_t cluster = ClusterOf(partner);
    // Process only on the cluster's first visit; revisit hops keep
    // walking but do not re-query the index.
    const bool fresh = state_.MarkSeen(cluster, qid, source_partner);
    if (fresh) {
      const auto [results, addrs] = MatchQuery(cluster, qid, query_class);
      AcctProc(partner,
               inputs_.costs.ProcessQueryUnits(static_cast<double>(results)));
      if (results > 0) {
        // Walk responses return directly to the source partner (as in
        // Lv et al.'s random-walk systems) rather than retracing the
        // whole walk; hops=1 reflects the direct connection.
        const double bytes = inputs_.costs.ResponseBytes(
            static_cast<double>(addrs), static_cast<double>(results));
        AcctSend(partner, Msg::kResponse, bytes,
                 inputs_.costs.SendResponseUnits(
                     static_cast<double>(addrs),
                     static_cast<double>(results)) +
                     MuxOf(partner));
        Deliver(options_.hop_latency_seconds, kResponseArrive,
                source_partner, qid, PackResponse(results, addrs, 1));
      }
    } else if (measuring_) {
      ++duplicate_queries_;
    }
    if (ttl <= 1) return;
    const std::uint32_t next = RandomNeighborPartner(cluster);
    if (next == kSelfUpstream) return;
    AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
    Deliver(options_.hop_latency_seconds, kWalkArrive, next, qid,
            PackQuery(source_partner, query_class, ttl - 1));
  }

  void OnQueryArrive(std::uint32_t partner, std::uint64_t qid,
                     std::uint32_t upstream, std::uint32_t query_class,
                     std::uint32_t ttl) {
    // Messages in flight across a role change (the target resigned) or
    // to a dead head are lost.
    if (!IsHeadRole(partner) || !HeadAlive(partner)) return;
    if (upstream != kSelfUpstream) {
      AcctRecv(partner, Msg::kQuery, qbytes_, recvq_ + MuxOf(partner));
    }
    const std::size_t cluster = ClusterOf(partner);
    const bool fresh = state_.MarkSeen(cluster, qid, upstream);
    if (!fresh) {
      if (measuring_) ++duplicate_queries_;
      return;  // Duplicate: received, then dropped.
    }

    // Process over the cluster index.
    const auto [results, addrs] = MatchQuery(cluster, qid, query_class);
    AcctProc(partner, inputs_.costs.ProcessQueryUnits(
                          static_cast<double>(results)));
    if (results > 0) {
      SendResponse(partner, upstream, qid, results, addrs, /*hops=*/0);
    }

    // Forward with decremented TTL on every connection except the one
    // the query arrived on.
    if (ttl <= 1) return;
    const std::size_t exclude =
        (upstream != kSelfUpstream && IsHeadRole(upstream))
            ? ClusterOf(upstream)
            : static_cast<std::size_t>(-1);
    const auto forward = [&](std::size_t neighbor) {
      if (neighbor == exclude) return;
      const std::uint32_t target = PickPartner(neighbor);
      if (target == kSelfUpstream) return;
      AcctSend(partner, Msg::kQuery, qbytes_, sendq_ + MuxOf(partner));
      Deliver(options_.hop_latency_seconds, kQueryArrive, target, qid,
              PackQuery(partner, query_class, ttl - 1));
    };
    if (adaptive_) {
      // The live overlay: rule II edges come and go, so neighbors are
      // the controller's, not the instance topology's.
      for (const std::uint32_t w : adaptive_ctrl_->NeighborsOf(cluster)) {
        forward(w);
      }
    } else if (inst_.topology.is_complete()) {
      for (std::size_t w = 0; w < n_; ++w) {
        if (w != cluster) forward(w);
      }
    } else {
      for (const NodeId w :
           inst_.topology.graph().Neighbors(static_cast<NodeId>(cluster))) {
        forward(w);
      }
    }
  }

  /// Determines (results, addresses) for a query over a cluster's
  /// index: against the real inverted index in concrete mode, or by
  /// sampling from the Appendix-B query model otherwise.
  std::pair<std::uint32_t, std::uint32_t> MatchQuery(
      std::size_t cluster, std::uint64_t qid, std::uint32_t query_class) {
    if (options_.concrete_index) {
      const std::string* text = state_.QueryString(qid);
      if (text == nullptr) return {0, 0};
      const QueryResult qr = indexes_[cluster].Query(*text);
      return {static_cast<std::uint32_t>(qr.hits.size()),
              static_cast<std::uint32_t>(qr.distinct_owners)};
    }
    const double f = inputs_.query_model.SelectionPower(query_class);
    const double indexed = adaptive_ ? adaptive_ctrl_->FilesSum(cluster)
                                     : inst_.indexed_files[cluster];
    const std::uint32_t results = SampleBinomialApprox(indexed, f, rng_);
    if (results == 0) return {0, 0};
    return {results, SampleAddrs(cluster, f)};
  }

  /// Expected-value-faithful sampling of the number of distinct cluster
  /// members whose collections match (the addresses in a Response).
  std::uint32_t SampleAddrs(std::size_t cluster, double f) {
    std::uint32_t addrs = 0;
    if (adaptive_) {
      const auto try_owner = [&](double x) {
        if (x <= 0.0) return;
        const double p = 1.0 - std::pow(1.0 - f, x);
        if (rng_.NextBernoulli(p)) ++addrs;
      };
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        try_owner(adaptive_ctrl_->FilesOfNode(node));
      }
      const std::uint32_t head = adaptive_ctrl_->HeadOf(cluster);
      if (head != AdaptiveController::kNoHead) {
        try_owner(adaptive_ctrl_->FilesOfNode(head));
      }
      return addrs == 0 ? 1 : addrs;  // Results imply at least one owner.
    }
    for (const std::uint32_t x : inst_.ClientFiles(cluster)) {
      if (x == 0) continue;
      const double p = 1.0 - std::pow(1.0 - f, static_cast<double>(x));
      if (rng_.NextBernoulli(p)) ++addrs;
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const std::uint32_t x = inst_.partner_files[cluster * k_ + p];
      if (x == 0) continue;
      const double q = 1.0 - std::pow(1.0 - f, static_cast<double>(x));
      if (rng_.NextBernoulli(q)) ++addrs;
    }
    return addrs == 0 ? 1 : addrs;  // Results imply at least one owner.
  }

  void SendResponse(std::uint32_t from, std::uint32_t to, std::uint64_t qid,
                    std::uint32_t results, std::uint32_t addrs,
                    std::uint32_t hops) {
    const double bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    if (to == kSelfUpstream) {
      // The super-peer's own user consumes the results locally.
      DeliverResults(qid, results, addrs, hops);
      return;
    }
    AcctSend(from, Msg::kResponse, bytes,
             inputs_.costs.SendResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(from));
    // The hop counter mirrors the paper's EPL (hops across the super-peer
    // overlay); the final super-peer -> client delivery is not an overlay
    // hop and is excluded so the metric is comparable with the model.
    const std::uint32_t hop_delta = IsHeadRole(to) ? 1u : 0u;
    Deliver(options_.hop_latency_seconds, kResponseArrive, to, qid,
            PackResponse(results, addrs, hops + hop_delta));
  }

  void OnResponseArrive(std::uint32_t node, std::uint64_t qid,
                        std::uint32_t results, std::uint32_t addrs,
                        std::uint32_t hops) {
    const double bytes = inputs_.costs.ResponseBytes(
        static_cast<double>(addrs), static_cast<double>(results));
    AcctRecv(node, Msg::kResponse, bytes,
             inputs_.costs.RecvResponseUnits(static_cast<double>(addrs),
                                             static_cast<double>(results)) +
                 MuxOf(node));
    if (!IsHeadRole(node)) {
      DeliverResults(qid, results, addrs, hops);
      return;
    }
    if (!HeadAlive(node)) return;
    const std::size_t cluster = ClusterOf(node);
    const std::uint32_t* upstream = state_.Upstream(cluster, qid);
    if (upstream == nullptr) return;  // State lost to churn.
    SendResponse(node, *upstream, qid, results, addrs, hops);
  }

  void DeliverResults(std::uint64_t qid, std::uint32_t results,
                      std::uint32_t addrs, std::uint32_t hops) {
    // Map expanding-ring retry qids back to the original query.
    const std::uint64_t root = state_.RootOf(qid);
    QueryState* found = state_.Find(root);
    if (found != nullptr) {
      QueryState& state = *found;
      PopulateCache(state, root, results, addrs);
      if (!state.first_response_seen) {
        state.first_response_seen = true;
        if (measuring_) {
          latency_sum_ += now_ - state.submit_time;
          ++first_responses_;
        }
      }
      if (options_.strategy == SearchStrategy::kExpandingRing) {
        state.ring_results += static_cast<double>(results);
      }
    }
    if (!measuring_) return;
    ++responses_delivered_;
    hops_sum_ += static_cast<double>(hops);
    hop_histogram_.Observe(static_cast<double>(hops));
    if (options_.strategy != SearchStrategy::kExpandingRing) {
      // Ring queries account their results when the ring settles
      // (FinishRingQuery), so inner rings are not double counted.
      results_sum_ += static_cast<double>(results);
    }
  }

  // --- Joins and updates ------------------------------------------------------
  void ScheduleJoinArrive(std::uint32_t target, std::uint32_t owner,
                          double files) {
    // Joins carry a float payload (e.x), so the fault layer is applied
    // inline instead of through Deliver.
    double delay = options_.hop_latency_seconds;
    if (fault_active_) {
      if (injector_.ShouldDropDelivery()) {
        if (measuring_) ++messages_dropped_;
        return;
      }
      delay += injector_.DeliveryJitter();
    }
    SimEvent e;
    e.time = now_ + delay;
    e.kind = kJoinArrive;
    e.node = target;
    e.a = owner;
    e.x = files;
    queue_.Schedule(e);
    ++events_scheduled_;
    if (queue_.size() > queue_depth_hwm_) queue_depth_hwm_ = queue_.size();
  }

  void OnJoinSubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(1.0 / LifespanOf(user)), kJoinSubmit, user);
    const double files = FilesOf(user);
    const std::size_t cluster = ClusterOf(user);
    if (IsHeadRole(user)) {
      if (!HeadAlive(user)) return;
      // Rebuild the index over its own collection; mirror to every
      // live co-partner.
      AcctProc(user, inputs_.costs.ProcessJoinUnits(files));
      // Under adaptation clusters are non-redundant (k == 1): there is
      // no co-partner to mirror to.
      if (adaptive_) return;
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other == user || !partner_alive_[other]) continue;
        AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
                 inputs_.costs.SendJoinUnits(files) + MuxOf(user));
        ScheduleJoinArrive(other, user, files);
      }
      return;
    }
    if (adaptive_) {
      const std::uint32_t head = LiveHeadOf(cluster);
      if (head == kSelfUpstream) return;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(head, user, files);
      return;
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(partner, user, files);
    }
  }

  void OnJoinArrive(std::uint32_t partner, std::uint32_t owner,
                    double files) {
    if (!IsHeadRole(partner) || !HeadAlive(partner)) return;
    AcctRecv(partner, Msg::kJoin, inputs_.costs.JoinBytes(files),
             inputs_.costs.RecvJoinUnits(files) +
                 inputs_.costs.ProcessJoinUnits(files) + MuxOf(partner));
    if (options_.concrete_index) {
      // Re-index the joining peer's metadata for real. The k partners
      // of a cluster share one index object (their contents would be
      // identical), so the second partner's re-insert is a no-op.
      InvertedIndex& index = indexes_[ClusterOf(partner)];
      index.EraseOwner(owner);
      index.InsertCollection(node_collections_[owner]);
    }
  }

  /// Concrete mode: replaces one random file of `user`'s collection
  /// with a freshly sampled one, and queues the mutation for every
  /// partner message that will carry it. Returns false if the user
  /// shares nothing (the update message is still sent — its cost is
  /// workload-model territory — but no index change happens).
  bool PrepareConcreteUpdate(std::uint32_t user, std::size_t copies) {
    auto& collection = node_collections_[user];
    if (collection.empty()) return false;
    const std::size_t slot = rng_.NextBounded(collection.size());
    const FileId old_id = collection[slot].id;
    FileRecord fresh;
    fresh.id = next_file_id_++;
    fresh.owner = user;
    fresh.title = corpus_->SampleTitle(rng_);
    collection[slot] = fresh;
    for (std::size_t i = 0; i < copies; ++i) {
      pending_updates_[user].emplace_back(old_id, fresh);
    }
    return true;
  }

  void OnUpdateSubmit(std::uint32_t user) {
    ScheduleIn(ExpDelay(config_.update_rate), kUpdateSubmit, user);
    const std::size_t cluster = ClusterOf(user);
    if (IsHeadRole(user)) {
      if (!HeadAlive(user)) return;
      AcctProc(user, inputs_.costs.process_update_units);
      // Non-redundant clusters under adaptation: nothing to mirror.
      if (adaptive_) return;
      // Mirror the update to every live co-partner.
      std::size_t live_others = 0;
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other != user && partner_alive_[other]) ++live_others;
      }
      if (options_.concrete_index &&
          PrepareConcreteUpdate(user, live_others + 1)) {
        // Apply the partner-user's own update locally right away.
        ApplyConcreteUpdate(user, cluster);
      }
      for (std::size_t p = 0; p < k_; ++p) {
        const auto other = static_cast<std::uint32_t>(cluster * k_ + p);
        if (other == user || !partner_alive_[other]) continue;
        AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
                 inputs_.costs.send_update_units + MuxOf(user));
        Deliver(options_.hop_latency_seconds, kUpdateArrive, other, user);
      }
      return;
    }
    if (adaptive_) {
      const std::uint32_t head = LiveHeadOf(cluster);
      if (head == kSelfUpstream) return;
      AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
               inputs_.costs.send_update_units + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kUpdateArrive, head, user);
      return;
    }
    std::size_t live_partners = 0;
    for (std::size_t p = 0; p < k_; ++p) {
      if (partner_alive_[cluster * k_ + p]) ++live_partners;
    }
    if (options_.concrete_index && live_partners > 0) {
      PrepareConcreteUpdate(user, live_partners);
    }
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kUpdate, inputs_.costs.UpdateBytes(),
               inputs_.costs.send_update_units + MuxOf(user));
      Deliver(options_.hop_latency_seconds, kUpdateArrive, partner, user);
    }
  }

  /// Applies one queued concrete update of `owner` to its cluster
  /// index (erase the old file, insert the replacement). With shared
  /// per-cluster indexes the second partner's application is a no-op.
  void ApplyConcreteUpdate(std::uint32_t owner, std::size_t cluster) {
    const auto it = pending_updates_.find(owner);
    if (it == pending_updates_.end() || it->second.empty()) return;
    const auto [old_id, fresh] = it->second.front();
    it->second.pop_front();
    InvertedIndex& index = indexes_[cluster];
    index.Erase(old_id);
    index.Insert(fresh);
  }

  void OnUpdateArrive(std::uint32_t partner, std::uint32_t owner) {
    if (!IsHeadRole(partner) || !HeadAlive(partner)) return;
    AcctRecv(partner, Msg::kUpdate, inputs_.costs.UpdateBytes(),
             inputs_.costs.recv_update_units +
                 inputs_.costs.process_update_units + MuxOf(partner));
    if (options_.concrete_index) {
      ApplyConcreteUpdate(owner, ClusterOf(partner));
    }
  }

  // --- Churn / reliability -----------------------------------------------------

  /// Takes a live partner down for `recovery_seconds` and schedules the
  /// recovery. `churn_origin` tags end-of-lifespan failures: only those
  /// restart the lifespan clock on recovery (injected crashes have
  /// their own Poisson clock, which keeps ticking independently).
  void FailPartner(std::uint32_t partner, double recovery_seconds,
                   bool churn_origin) {
    partner_alive_[partner] = false;
    if (measuring_) ++partner_failures_;
    const std::size_t cluster = ClusterOf(partner);
    if (--alive_partners_[cluster] == 0) {
      outage_start_[cluster] = now_;
      if (measuring_) ++cluster_outages_;
      if (fault_active_) OrphanClusterClients(cluster);
    }
    ScheduleIn(recovery_seconds, kPartnerRecover, partner,
               churn_origin ? 1 : 0);
  }

  void OnPartnerFail(std::uint32_t partner) {
    // A head that resigned through a coalesce keeps its node id as an
    // ordinary member; its churn clock dies with the role (the member's
    // availability is the new head's problem).
    if (adaptive_ && !adaptive_ctrl_->IsHead(partner)) return;
    if (!partner_alive_[partner]) return;
    FailPartner(partner, options_.partner_recovery_seconds,
                /*churn_origin=*/true);
  }

  void OnPartnerCrash(std::uint32_t partner) {
    // The crash clock keeps ticking whether or not the partner is up;
    // a crash hitting a dead partner is a no-op, which keeps up-times
    // memoryless (the analytical availability model in DESIGN.md §8
    // relies on exactly this renewal structure).
    ScheduleIn(injector_.NextCrashDelay(), kPartnerCrash, partner);
    // Crashes only hit nodes still holding the head role (see
    // OnPartnerFail); the clock keeps ticking either way.
    if (adaptive_ && !adaptive_ctrl_->IsHead(partner)) return;
    if (!partner_alive_[partner]) return;
    if (measuring_) ++crashes_;
    FailPartner(partner, injector_.plan().crash_recovery_seconds,
                /*churn_origin=*/false);
  }

  void OnPartnerRecover(std::uint32_t partner, bool churn_origin) {
    partner_alive_[partner] = true;
    if (measuring_) ++partner_recoveries_;
    const std::size_t cluster = ClusterOf(partner);
    if (alive_partners_[cluster]++ == 0 && outage_start_[cluster] >= 0.0) {
      AccumulateOutage(cluster, now_);
      outage_start_[cluster] = -1.0;
      if (fault_active_) ReconnectOrphans(cluster);
    }
    // The replacement partner starts with an empty index: every client
    // re-uploads its metadata (the join storm after a failure). With an
    // active fault plan membership is mutable, so the storm covers the
    // cluster's current members rather than the instance layout.
    if (adaptive_) {
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        SendMemberUpload(partner, node);
      }
    } else if (fault_active_) {
      for (const std::uint32_t c : cluster_members_[cluster]) {
        SendJoinStormUpload(partner, c);
      }
    } else {
      for (std::size_t c = inst_.client_offset[cluster];
           c < inst_.client_offset[cluster + 1]; ++c) {
        SendJoinStormUpload(partner, static_cast<std::uint32_t>(c));
      }
    }
    if (churn_origin && options_.enable_churn) {
      ScheduleIn(ExpDelay(1.0 / inst_.partner_lifespan[partner]), kPartnerFail,
                 partner);
    }
  }

  /// One client's metadata re-upload to a recovering partner (`c` is a
  /// client index, not a node id).
  void SendJoinStormUpload(std::uint32_t partner, std::uint32_t c) {
    SendMemberUpload(partner, static_cast<std::uint32_t>(num_partners_ + c));
  }

  /// One member's metadata re-upload to a (new or recovered) head.
  /// Takes a node id: under adaptation a cluster's members may include
  /// resigned heads from the partner range.
  void SendMemberUpload(std::uint32_t head, std::uint32_t member) {
    const double files = FilesOf(member);
    AcctSend(member, Msg::kJoin, inputs_.costs.JoinBytes(files),
             inputs_.costs.SendJoinUnits(files) + MuxOf(member));
    ScheduleJoinArrive(head, member, files);
  }

  void AccumulateOutage(std::size_t cluster, double end) {
    const double start = std::max(outage_start_[cluster],
                                  options_.warmup_seconds);
    if (end <= start) return;
    outage_seconds_ += end - start;
    // Whole-cluster client accounting only applies while membership is
    // static; with an active fault plan clients accrue individually
    // (AccrueOrphanTime), since re-joins end their episodes early.
    if (!fault_active_) {
      const double clients = static_cast<double>(
          adaptive_ ? adaptive_ctrl_->MembersOf(cluster).size()
                    : inst_.NumClients(cluster));
      disconnected_client_seconds_ += (end - start) * clients;
    }
  }

  // --- Fault recovery: orphans, re-join, timeouts & retries --------------------

  /// Marks every current member of `cluster` orphaned (its last live
  /// partner just went down).
  void OrphanClusterClients(std::size_t cluster) {
    if (adaptive_) {
      if (measuring_) {
        orphaned_clients_hist_.Observe(static_cast<double>(
            adaptive_ctrl_->MembersOf(cluster).size()));
      }
      // Resigned heads (partner-range node ids) carry no orphan slot;
      // their disconnection shows up in the outage accounting instead.
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        if (node < num_partners_) continue;
        const std::uint32_t c = node - num_partners_;
        if (orphaned_since_[c] < 0.0) orphaned_since_[c] = now_;
      }
      return;
    }
    if (measuring_) {
      orphaned_clients_hist_.Observe(
          static_cast<double>(cluster_members_[cluster].size()));
    }
    for (const std::uint32_t c : cluster_members_[cluster]) {
      if (orphaned_since_[c] < 0.0) orphaned_since_[c] = now_;
    }
  }

  /// Ends the orphan episodes of `cluster`'s members: a partner came
  /// back, so they are connected again.
  void ReconnectOrphans(std::size_t cluster) {
    if (adaptive_) {
      for (const std::uint32_t node : adaptive_ctrl_->MembersOf(cluster)) {
        if (node < num_partners_) continue;
        AccrueOrphanTime(node - num_partners_, /*observe_latency=*/true);
      }
      return;
    }
    for (const std::uint32_t c : cluster_members_[cluster]) {
      AccrueOrphanTime(c, /*observe_latency=*/true);
    }
  }

  /// Closes client `c`'s orphan episode at `now_`: adds its
  /// disconnected time (clipped to the measurement window) and, for
  /// real recoveries, observes the recovery-latency histogram.
  void AccrueOrphanTime(std::uint32_t c, bool observe_latency) {
    if (orphaned_since_[c] < 0.0) return;
    const double start = std::max(orphaned_since_[c], options_.warmup_seconds);
    if (now_ > start) disconnected_client_seconds_ += now_ - start;
    if (observe_latency && measuring_) {
      recovery_latency_hist_.Observe(now_ - orphaned_since_[c]);
    }
    orphaned_since_[c] = -1.0;
  }

  /// Moves an orphaned client to a surviving cluster via the bootstrap
  /// discovery service (Section 4.1's pong-server role). Returns false
  /// when no cluster in the network has a live partner.
  bool RejoinViaDiscovery(std::uint32_t user) {
    if (adaptive_) return RejoinViaDiscoveryAdaptive(user);
    const std::uint32_t c = user - num_partners_;
    std::vector<std::uint32_t> eligible;
    std::vector<std::uint32_t> sizes;
    for (std::size_t i = 0; i < n_; ++i) {
      if (alive_partners_[i] > 0) {
        eligible.push_back(static_cast<std::uint32_t>(i));
        sizes.push_back(
            static_cast<std::uint32_t>(cluster_members_[i].size()));
      }
    }
    if (eligible.empty()) return false;
    const std::size_t pick =
        PickRejoinCluster(eligible, sizes, AssignmentPolicy::kUniformRandom,
                          injector_.stream());
    const std::uint32_t new_cluster = eligible[pick];
    auto& members = cluster_members_[client_current_cluster_[c]];
    members.erase(std::find(members.begin(), members.end(), c));
    cluster_members_[new_cluster].push_back(c);
    client_current_cluster_[c] = new_cluster;
    if (measuring_) ++client_rejoins_;
    AccrueOrphanTime(c, /*observe_latency=*/true);
    // The client uploads its metadata to the new cluster's live
    // partners — a fresh join.
    const auto files = static_cast<double>(inst_.client_files[c]);
    for (std::size_t p = 0; p < k_; ++p) {
      const auto partner = static_cast<std::uint32_t>(new_cluster * k_ + p);
      if (!partner_alive_[partner]) continue;
      AcctSend(user, Msg::kJoin, inputs_.costs.JoinBytes(files),
               inputs_.costs.SendJoinUnits(files) + MuxOf(user));
      ScheduleJoinArrive(partner, user, files);
    }
    return true;
  }

  /// RejoinViaDiscovery with the adaptation layer owning membership:
  /// eligible clusters are live slots with a live head, and the move
  /// flows through the controller so rule decisions see it.
  bool RejoinViaDiscoveryAdaptive(std::uint32_t user) {
    std::vector<std::uint32_t> eligible;
    std::vector<std::uint32_t> sizes;
    for (std::size_t i = 0; i < adaptive_ctrl_->NumClusterSlots(); ++i) {
      if (adaptive_ctrl_->Dead(i) || LiveHeadOf(i) == kSelfUpstream) continue;
      eligible.push_back(static_cast<std::uint32_t>(i));
      sizes.push_back(
          static_cast<std::uint32_t>(adaptive_ctrl_->MembersOf(i).size()));
    }
    if (eligible.empty()) return false;
    const std::size_t pick =
        PickRejoinCluster(eligible, sizes, AssignmentPolicy::kUniformRandom,
                          injector_.stream());
    const auto new_cluster = static_cast<std::size_t>(eligible[pick]);
    adaptive_ctrl_->MoveClient(user, new_cluster);
    if (measuring_) ++client_rejoins_;
    if (user >= num_partners_) {
      AccrueOrphanTime(user - num_partners_, /*observe_latency=*/true);
    }
    SendMemberUpload(LiveHeadOf(new_cluster), user);
    return true;
  }

  /// Per-request timeout probe for a flood query. Success means at
  /// least one response arrived — graceful degradation: partial results
  /// from a degraded flood still count. Tallies cover queries submitted
  /// inside the measurement window whose checks fire before the run
  /// ends.
  void OnRequestCheck(std::uint32_t user, std::uint64_t root,
                      std::uint32_t retries_used) {
    const QueryState* found = state_.Find(root);
    if (found == nullptr) return;
    const QueryState& state = *found;
    const bool counted = state.submit_time >= options_.warmup_seconds;
    if (state.first_response_seen) {
      if (counted) ++queries_succeeded_;
      return;
    }
    if (counted) ++request_timeouts_;
    if (retries_used >=
        static_cast<std::uint32_t>(injector_.plan().max_retries)) {
      if (counted) ++queries_failed_;
      return;
    }
    ScheduleIn(injector_.RetryBackoff(static_cast<int>(retries_used) + 1),
               kRetrySubmit, user, root, retries_used + 1);
  }

  /// Backed-off retry of a timed-out flood query: a fresh qid re-floods
  /// the network (duplicate tables have marked the root qid), mapped
  /// back to the root via ring_root_ exactly like expanding-ring
  /// retries.
  void OnRetrySubmit(std::uint32_t user, std::uint64_t root,
                     std::uint32_t retry_number) {
    QueryState* found = state_.Find(root);
    if (found == nullptr) return;
    QueryState& state = *found;
    const bool counted = state.submit_time >= options_.warmup_seconds;
    if (state.first_response_seen) {
      // A response raced the backoff: the query succeeded after all.
      if (counted) ++queries_succeeded_;
      return;
    }
    if (IsHeadRole(user) && !HeadAlive(user)) {
      // The submitting partner-user died with its state.
      if (counted) ++queries_failed_;
      return;
    }
    const std::uint64_t retry_qid = next_qid_++;
    if (options_.concrete_index) {
      // The retry re-issues the same keyword string under a fresh qid.
      state_.ShareQueryString(root, retry_qid);
    }
    state_.SetRoot(retry_qid, root);
    if (counted) ++retries_;
    if (!SubmitWithFailover(user, retry_qid, state.query_class,
                            static_cast<std::uint32_t>(ttl_ + 1))) {
      if (counted) ++queries_failed_;
      return;
    }
    ScheduleIn(injector_.plan().request_timeout_seconds, kRequestCheck, user,
               root, retry_number);
  }

  // --- In-simulation adaptation (rules I-III as protocol events) ---------------

  /// The node's measured load over the current window, in the physical
  /// units the rule predicates use (bps / Hz). Invalid until any time
  /// has elapsed in the window.
  AdaptiveController::LoadSample WindowLoad(std::uint32_t node) const {
    AdaptiveController::LoadSample s;
    const double elapsed = now_ - window_start_;
    if (elapsed <= 0.0) return s;
    const double inv = 1.0 / elapsed;
    s.valid = true;
    s.total_bps = BytesPerSecToBps(
        (adapt_in_bytes_[node] + adapt_out_bytes_[node]) * inv);
    s.proc_hz = inputs_.costs.UnitsToHz(adapt_units_[node] * inv);
    return s;
  }

  /// Packs a LoadReport payload (two float32 fields, matching the wire
  /// message in proto/messages.h) into an event argument.
  static std::uint64_t PackLoad(const AdaptiveController::LoadSample& s) {
    const auto hi =
        std::bit_cast<std::uint32_t>(static_cast<float>(s.total_bps));
    const auto lo =
        std::bit_cast<std::uint32_t>(static_cast<float>(s.proc_hz));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
  }

  /// Every live head probes every overlay neighbor for its load.
  void OnAdaptProbeTick() {
    ScheduleIn(options_.adaptive.probe_interval_seconds, kAdaptProbeTick, 0);
    for (std::size_t c = 0; c < adaptive_ctrl_->NumClusterSlots(); ++c) {
      if (adaptive_ctrl_->Dead(c)) continue;
      const std::uint32_t prober = LiveHeadOf(c);
      if (prober == kSelfUpstream) continue;
      for (const std::uint32_t nb : adaptive_ctrl_->NeighborsOf(c)) {
        const std::uint32_t target = adaptive_ctrl_->HeadOf(nb);
        if (target == AdaptiveController::kNoHead) continue;
        AcctSend(prober, Msg::kProbe, probe_bytes_, send_ctl_ + MuxOf(prober));
        ++adapt_probes_sent_;
        Deliver(options_.hop_latency_seconds, kAdaptProbeArrive, target,
                /*a=*/c);
      }
    }
  }

  void OnAdaptProbeArrive(std::uint32_t node, std::uint32_t prober_cluster) {
    if (!IsHeadRole(node) || !HeadAlive(node)) return;
    AcctRecv(node, Msg::kProbe, probe_bytes_, recv_ctl_ + MuxOf(node));
    const std::uint32_t target = LiveHeadOf(prober_cluster);
    if (target == kSelfUpstream) return;  // The prober vanished meanwhile.
    AcctSend(node, Msg::kReport, report_bytes_, send_ctl_ + MuxOf(node));
    Deliver(options_.hop_latency_seconds, kAdaptReportArrive, target,
            /*a=*/adaptive_ctrl_->ClusterOfNode(node),
            /*b=*/PackLoad(WindowLoad(node)));
  }

  void OnAdaptReportArrive(std::uint32_t node, std::uint32_t reporter_cluster,
                           std::uint64_t packed) {
    if (!IsHeadRole(node) || !HeadAlive(node)) return;
    AcctRecv(node, Msg::kReport, report_bytes_, recv_ctl_ + MuxOf(node));
    ++adapt_reports_received_;
    const auto total =
        std::bit_cast<float>(static_cast<std::uint32_t>(packed >> 32));
    const auto proc =
        std::bit_cast<float>(static_cast<std::uint32_t>(packed & 0xffffffffu));
    adaptive_ctrl_->RecordReport(adaptive_ctrl_->ClusterOfNode(node),
                                 reporter_cluster, static_cast<double>(total),
                                 static_cast<double>(proc));
  }

  /// One decision round: feeds each live head's window load to the
  /// controller, then turns the returned actions into protocol traffic
  /// (re-upload joins, the peering handshake, the TTL broadcast).
  void OnAdaptRound() {
    ScheduleIn(options_.adaptive.decision_interval_seconds, kAdaptRound, 0);
    ++adapt_rounds_;
    std::vector<AdaptiveController::LoadSample> own_loads(
        adaptive_ctrl_->NumClusterSlots());
    for (std::size_t c = 0; c < own_loads.size(); ++c) {
      if (adaptive_ctrl_->Dead(c)) continue;
      const std::uint32_t head = LiveHeadOf(c);
      if (head == kSelfUpstream) continue;  // Down: no sample this round.
      own_loads[c] = WindowLoad(head);
    }
    const AdaptiveController::RoundActions actions =
        adaptive_ctrl_->RunRound(own_loads, ttl_);
    // Slots appended by splits need per-cluster state storage — and
    // per-cluster fault bookkeeping: a resigned partner-range head can
    // later be re-promoted into a fresh slot, where its still-ticking
    // crash clock indexes these vectors by the new cluster id.
    state_.EnsureClusters(adaptive_ctrl_->NumClusterSlots());
    alive_partners_.resize(adaptive_ctrl_->NumClusterSlots(), 1u);
    outage_start_.resize(adaptive_ctrl_->NumClusterSlots(), -1.0);

    for (const auto& split : actions.splits) {
      ++adapt_splits_;
      // The promoted head indexes its own collection, and every moved
      // member re-uploads its metadata to it (the split's join storm).
      AcctProc(split.promoted,
               inputs_.costs.ProcessJoinUnits(
                   adaptive_ctrl_->FilesOfNode(split.promoted)));
      for (const std::uint32_t member : split.moved) {
        ++adapt_client_moves_;
        SendMemberUpload(split.promoted, member);
      }
    }
    for (const auto& coalesce : actions.coalesces) {
      ++adapt_coalesces_;
      const std::uint32_t target = LiveHeadOf(coalesce.into);
      if (target == kSelfUpstream) continue;  // Uploads lost.
      ++adapt_client_moves_;  // The resigned head moves too.
      SendMemberUpload(target, coalesce.resigned_head);
      for (const std::uint32_t member : coalesce.moved) {
        ++adapt_client_moves_;
        SendMemberUpload(target, member);
      }
    }
    for (const auto& edge : actions.edges) {
      ++adapt_edges_added_;
      // Peering handshake: one probe across the new edge primes the
      // neighbor-report exchange.
      const std::uint32_t a_head = LiveHeadOf(edge.a);
      const std::uint32_t b_head = adaptive_ctrl_->HeadOf(edge.b);
      if (a_head == kSelfUpstream || b_head == AdaptiveController::kNoHead) {
        continue;
      }
      AcctSend(a_head, Msg::kProbe, probe_bytes_, send_ctl_ + MuxOf(a_head));
      ++adapt_probes_sent_;
      Deliver(options_.hop_latency_seconds, kAdaptProbeArrive, b_head,
              /*a=*/edge.a);
    }
    if (actions.ttl_decreased) {
      ++adapt_ttl_decreases_;
      ttl_ = actions.new_ttl;
      // Broadcast the new TTL across the overlay: every live head
      // tells every neighbor.
      for (std::size_t c = 0; c < adaptive_ctrl_->NumClusterSlots(); ++c) {
        if (adaptive_ctrl_->Dead(c)) continue;
        const std::uint32_t head = LiveHeadOf(c);
        if (head == kSelfUpstream) continue;
        for (const std::uint32_t nb : adaptive_ctrl_->NeighborsOf(c)) {
          const std::uint32_t target = adaptive_ctrl_->HeadOf(nb);
          if (target == AdaptiveController::kNoHead) continue;
          AcctSend(head, Msg::kControl, ttl_update_bytes_,
                   send_ctl_ + MuxOf(head));
          Deliver(options_.hop_latency_seconds, kAdaptTtlArrive, target);
        }
      }
    }
    // Convergence = the trailing streak of quiescent rounds reaching
    // the end of the run; converged_round is the streak's first round.
    if (actions.quiescent) {
      if (!adapt_converged_) {
        adapt_converged_ = true;
        adapt_converged_round_ = adapt_rounds_;
      }
    } else {
      adapt_converged_ = false;
      adapt_converged_round_ = 0;
    }
    // Start the next measurement window.
    std::fill(adapt_in_bytes_.begin(), adapt_in_bytes_.end(), 0.0);
    std::fill(adapt_out_bytes_.begin(), adapt_out_bytes_.end(), 0.0);
    std::fill(adapt_units_.begin(), adapt_units_.end(), 0.0);
    window_start_ = now_;
  }

  void OnAdaptTtlArrive(std::uint32_t node) {
    if (!IsHeadRole(node) || !HeadAlive(node)) return;
    AcctRecv(node, Msg::kControl, ttl_update_bytes_, recv_ctl_ + MuxOf(node));
  }

  /// Mean overlay degree of the static topology (the "final" network
  /// of a non-adaptive run).
  double StaticAvgOutdegree() const {
    if (inst_.topology.is_complete()) return static_cast<double>(n_ - 1);
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      sum += static_cast<double>(
          inst_.topology.graph().Neighbors(static_cast<NodeId>(i)).size());
    }
    return sum / static_cast<double>(n_);
  }

  // --- Finalization --------------------------------------------------------------
  SimReport Finalize(double measured_seconds) {
    // Close outages still open at the end of the run (adaptation can
    // have grown the slot count past the instance's n clusters).
    for (std::size_t i = 0; i < outage_start_.size(); ++i) {
      if (outage_start_[i] >= 0.0) AccumulateOutage(i, now_);
    }
    if (fault_active_) {
      // Clients still orphaned at the end accrue their disconnected
      // time but never recovered — no latency observation.
      for (std::uint32_t c = 0; c < num_clients_; ++c) {
        AccrueOrphanTime(c, /*observe_latency=*/false);
      }
    }

    SimReport report;
    report.measured_seconds = measured_seconds;
    report.events_scheduled = events_scheduled_;
    report.events_dispatched = events_dispatched_;
    report.queue_depth_hwm = queue_depth_hwm_;
    const double inv_t =
        measured_seconds > 0.0 ? 1.0 / measured_seconds : 0.0;
    const auto to_load = [&](std::uint32_t node) {
      LoadVector lv;
      lv.in_bps = BytesPerSecToBps(in_bytes_[node] * inv_t);
      lv.out_bps = BytesPerSecToBps(out_bytes_[node] * inv_t);
      lv.proc_hz = inputs_.costs.UnitsToHz(units_[node] * inv_t);
      return lv;
    };
    report.partner_load.resize(num_partners_);
    for (std::uint32_t p = 0; p < num_partners_; ++p) {
      report.partner_load[p] = to_load(p);
      report.aggregate += report.partner_load[p];
    }
    report.client_load.resize(num_clients_);
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      report.client_load[c] =
          to_load(static_cast<std::uint32_t>(num_partners_ + c));
      report.aggregate += report.client_load[c];
    }
    report.queries_submitted = queries_submitted_;
    report.responses_delivered = responses_delivered_;
    report.duplicate_queries = duplicate_queries_;
    const std::uint64_t result_queries =
        options_.strategy == SearchStrategy::kExpandingRing
            ? ring_queries_finished_
            : queries_submitted_;
    if (result_queries > 0) {
      report.mean_results_per_query =
          results_sum_ / static_cast<double>(result_queries);
    }
    if (responses_delivered_ > 0) {
      report.mean_response_hops =
          hops_sum_ / static_cast<double>(responses_delivered_);
    }
    if (first_responses_ > 0) {
      report.mean_first_response_latency =
          latency_sum_ / static_cast<double>(first_responses_);
    }
    if (ring_queries_finished_ > 0) {
      report.mean_rings_per_query =
          rings_sum_ / static_cast<double>(ring_queries_finished_);
    }
    report.cache_hits = cache_hits_;
    if (options_.concrete_index && !indexes_.empty()) {
      double bytes = 0.0;
      for (const InvertedIndex& index : indexes_) {
        bytes += static_cast<double>(index.ApproximateMemoryBytes());
      }
      report.mean_index_memory_bytes =
          bytes / static_cast<double>(indexes_.size());
    }
    report.partner_failures = partner_failures_;
    report.partner_recoveries = partner_recoveries_;
    report.cluster_outages = cluster_outages_;
    const double cluster_seconds =
        measured_seconds * static_cast<double>(n_);
    if (cluster_seconds > 0.0) {
      report.cluster_outage_fraction = outage_seconds_ / cluster_seconds;
    }
    const double client_seconds =
        measured_seconds * static_cast<double>(num_clients_);
    if (client_seconds > 0.0) {
      report.client_disconnected_fraction =
          disconnected_client_seconds_ / client_seconds;
    }
    report.faults_crashes = crashes_;
    report.faults_messages_dropped = messages_dropped_;
    report.faults_request_timeouts = request_timeouts_;
    report.faults_retries = retries_;
    report.faults_failover_episodes = failover_episodes_;
    report.faults_client_rejoins = client_rejoins_;
    report.queries_succeeded = queries_succeeded_;
    report.queries_failed = queries_failed_;
    const std::uint64_t completed = queries_succeeded_ + queries_failed_;
    if (completed > 0) {
      report.query_success_rate = static_cast<double>(queries_succeeded_) /
                                  static_cast<double>(completed);
    }
    report.mean_recovery_latency_seconds = recovery_latency_hist_.Mean();
    report.adapt_rounds = adapt_rounds_;
    report.adapt_splits = adapt_splits_;
    report.adapt_coalesces = adapt_coalesces_;
    report.adapt_edges_added = adapt_edges_added_;
    report.adapt_ttl_decreases = adapt_ttl_decreases_;
    report.adapt_probes_sent = adapt_probes_sent_;
    report.adapt_reports_received = adapt_reports_received_;
    report.adapt_client_moves = adapt_client_moves_;
    report.adapt_converged = adapt_converged_;
    report.adapt_converged_round = adapt_converged_round_;
    if (adaptive_) {
      report.final_clusters =
          static_cast<std::uint64_t>(adaptive_ctrl_->LiveClusters());
      report.final_ttl = ttl_;
      report.final_avg_outdegree = adaptive_ctrl_->AvgOutdegree();
    } else {
      report.final_clusters = static_cast<std::uint64_t>(n_);
      report.final_ttl = config_.ttl;
      report.final_avg_outdegree = StaticAvgOutdegree();
    }
    if (options_.metrics != nullptr) PublishMetrics(*options_.metrics);
    return report;
  }

  /// Publishes the run's tallies into the attached registry. Counters
  /// and the hop histogram cover the measurement window (warmup
  /// excluded), matching the SimReport fields they reconcile with;
  /// the event-queue high-water mark and the scheduled/dispatched
  /// counts cover the whole run. Values accumulate, so several runs
  /// may share a registry.
  ///
  /// Instrument contract (mirrors eval.bfs.* in model/evaluator.h):
  /// protocol-level instruments are bit-identical across engines,
  /// state backends and parallelism; the engine-specific sim.queue.*
  /// internals (calendar only) and sim.state.* footprint gauges
  /// describe the chosen implementation, so they are identical across
  /// parallelism but naturally differ between engines/backends. The
  /// sim.time.* timers are wall-clock (report-only nondeterminism,
  /// excluded from deterministic-section comparisons).
  void PublishMetrics(MetricsRegistry& m) const {
    // The adaptation message classes (probe/report/control) exist in
    // the registry only for active plans.
    const std::size_t published = adaptive_ ? kNumMsgTypes : kNumBaseMsgTypes;
    for (std::size_t t = 0; t < published; ++t) {
      const std::string type = kMsgNames[t];
      m.GetCounter("sim.msg." + type + ".sent").Increment(msg_sent_[t]);
      m.GetCounter("sim.msg." + type + ".received").Increment(msg_recv_[t]);
    }
    m.GetCounter("sim.queries.submitted").Increment(queries_submitted_);
    m.GetCounter("sim.queries.duplicate").Increment(duplicate_queries_);
    m.GetCounter("sim.responses.delivered").Increment(responses_delivered_);
    m.GetCounter("sim.cache.hits").Increment(cache_hits_);
    m.GetCounter("sim.cache.misses").Increment(cache_misses_);
    m.GetCounter("sim.churn.partner_failures").Increment(partner_failures_);
    m.GetCounter("sim.churn.partner_recoveries")
        .Increment(partner_recoveries_);
    m.GetCounter("sim.churn.cluster_outages").Increment(cluster_outages_);
    m.GetCounter("sim.events.dispatched").Increment(events_dispatched_);
    m.GetCounter("sim.queue.scheduled").Increment(events_scheduled_);
    m.GetGauge("sim.event_queue.depth_hwm")
        .SetMax(static_cast<double>(queue_depth_hwm_));
    if (const CalendarQueue* cal = queue_.calendar(); cal != nullptr) {
      m.GetCounter("sim.queue.resizes").Increment(cal->resizes());
      m.GetCounter("sim.queue.day_steps").Increment(cal->day_steps());
      m.GetCounter("sim.queue.slot_visits").Increment(cal->slot_visits());
      m.GetCounter("sim.queue.global_scans").Increment(cal->global_scans());
      m.GetGauge("sim.queue.buckets")
          .SetMax(static_cast<double>(cal->num_buckets()));
      m.GetGauge("sim.queue.scratch_bytes")
          .SetMax(static_cast<double>(cal->ApproxMemoryBytes()));
    }
    m.GetCounter("sim.state.duplicate_entries")
        .Increment(state_.duplicate_entries());
    m.GetCounter("sim.state.query_strings")
        .Increment(state_.interned_strings());
    m.GetGauge("sim.state.scratch_bytes")
        .SetMax(static_cast<double>(state_.ApproxScratchBytes()));
    m.GetTimer("sim.time.init_seconds").Record(init_seconds_);
    m.GetTimer("sim.time.run_seconds").Record(run_seconds_);
    m.GetHistogram("sim.response.hops", HopHistogramBounds())
        .Merge(hop_histogram_);
    // Fault-layer instruments exist only for active plans, keeping the
    // inactive-plan registry surface bit-identical to a build without
    // the fault layer.
    if (fault_active_) {
      m.GetCounter("sim.faults.crashes").Increment(crashes_);
      m.GetCounter("sim.faults.messages_dropped").Increment(messages_dropped_);
      m.GetCounter("sim.faults.request_timeouts").Increment(request_timeouts_);
      m.GetCounter("sim.faults.retries").Increment(retries_);
      m.GetCounter("sim.faults.failover_episodes")
          .Increment(failover_episodes_);
      m.GetCounter("sim.faults.client_rejoins").Increment(client_rejoins_);
      m.GetCounter("sim.faults.queries.succeeded")
          .Increment(queries_succeeded_);
      m.GetCounter("sim.faults.queries.failed").Increment(queries_failed_);
      m.GetHistogram("sim.faults.recovery_latency_seconds",
                     RecoveryLatencyBounds())
          .Merge(recovery_latency_hist_);
      m.GetHistogram("sim.faults.orphaned_clients", OrphanCountBounds())
          .Merge(orphaned_clients_hist_);
    }
    // Adaptation instruments, reconciled 1:1 with the SimReport adapt_*
    // fields; like the fault layer they exist only for active plans.
    if (adaptive_) {
      m.GetCounter("sim.adaptive.rounds").Increment(adapt_rounds_);
      m.GetCounter("sim.adaptive.splits").Increment(adapt_splits_);
      m.GetCounter("sim.adaptive.coalesces").Increment(adapt_coalesces_);
      m.GetCounter("sim.adaptive.edges_added").Increment(adapt_edges_added_);
      m.GetCounter("sim.adaptive.ttl_decreases")
          .Increment(adapt_ttl_decreases_);
      m.GetCounter("sim.adaptive.probes_sent").Increment(adapt_probes_sent_);
      m.GetCounter("sim.adaptive.reports_received")
          .Increment(adapt_reports_received_);
      m.GetCounter("sim.adaptive.client_moves").Increment(adapt_client_moves_);
      m.GetGauge("sim.adaptive.converged")
          .SetMax(adapt_converged_ ? 1.0 : 0.0);
      m.GetGauge("sim.adaptive.converged_round")
          .SetMax(static_cast<double>(adapt_converged_round_));
      m.GetGauge("sim.adaptive.final_clusters")
          .SetMax(static_cast<double>(adaptive_ctrl_->LiveClusters()));
      m.GetGauge("sim.adaptive.final_ttl").SetMax(static_cast<double>(ttl_));
    }
  }

  // --- State -----------------------------------------------------------------
  NetworkInstance inst_;
  Configuration config_;
  ModelInputs inputs_;
  SimOptions options_;
  mutable Rng rng_;

  const std::size_t n_;
  const std::size_t k_;
  const std::size_t num_partners_;
  const std::size_t num_clients_;

  double qbytes_ = 0.0, sendq_ = 0.0, recvq_ = 0.0;
  std::vector<double> conn_;
  double client_conn_ = 1.0;

  SimEventQueue queue_;
  /// Duplicate tables, per-root query state, retry-root mapping, query
  /// strings and result caches (engine-checked dense / map backends).
  SimState state_;
  double now_ = 0.0;
  bool measuring_ = false;
  // Streaming-mode lifecycle (Start / RunUntil* / FinalizeAt).
  bool started_ = false;
  bool finalized_ = false;
  /// First root qid not yet proven retirable; RetireStateBefore resumes
  /// its forward scan here so retirement stays O(retired) overall.
  std::uint64_t retire_scan_qid_ = 0;

  std::vector<double> in_bytes_, out_bytes_, units_;
  std::vector<std::uint32_t> client_cluster_;
  std::vector<std::uint8_t> partner_alive_;
  std::vector<std::uint32_t> alive_partners_;
  std::vector<double> outage_start_;
  std::vector<std::uint32_t> rr_;

  std::uint64_t next_qid_ = 0;
  std::uint64_t queries_submitted_ = 0;
  std::uint64_t responses_delivered_ = 0;
  std::uint64_t duplicate_queries_ = 0;
  std::uint64_t partner_failures_ = 0;
  std::uint64_t cluster_outages_ = 0;
  double results_sum_ = 0.0;
  double hops_sum_ = 0.0;
  double disconnected_client_seconds_ = 0.0;

  // Per-query strategy tallies (latency, expanding-ring progress); the
  // state itself lives in state_.
  double latency_sum_ = 0.0;
  std::uint64_t first_responses_ = 0;
  double rings_sum_ = 0.0;
  std::uint64_t ring_queries_finished_ = 0;

  // Concrete-index mode state (query strings live in state_).
  std::unique_ptr<TitleCorpus> corpus_;
  std::vector<InvertedIndex> indexes_;                 // One per cluster.
  std::vector<std::vector<FileRecord>> node_collections_;
  std::unordered_map<std::uint32_t,
                     std::deque<std::pair<FileId, FileRecord>>>
      pending_updates_;
  FileId next_file_id_ = 1;

  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  // Observability tallies (see PublishMetrics). All of these are
  // derived purely from protocol actions, so they are bit-identical
  // across runs with the same seed.
  std::array<std::uint64_t, kNumMsgTypes> msg_sent_ = {};
  std::array<std::uint64_t, kNumMsgTypes> msg_recv_ = {};
  std::uint64_t partner_recoveries_ = 0;
  std::size_t queue_depth_hwm_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t events_scheduled_ = 0;
  Histogram hop_histogram_{HopHistogramBounds()};
  // Wall-clock phase timers (report-only; never feed back into the
  // simulation — see the WallTimer contract in obs/metrics.h).
  double init_seconds_ = 0.0;
  double run_seconds_ = 0.0;

  // Fault-injection & recovery state. The injector owns its own salted
  // RNG stream; everything below it is consulted only when
  // fault_active_ (pay-for-what-you-use determinism).
  FaultInjector injector_;
  const bool fault_active_;
  const bool recovery_enabled_;
  std::vector<std::uint32_t> client_current_cluster_;  // Per client index.
  std::vector<std::vector<std::uint32_t>> cluster_members_;
  std::vector<double> orphaned_since_;  // -1 when connected.
  double outage_seconds_ = 0.0;
  std::uint64_t crashes_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t request_timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failover_episodes_ = 0;
  std::uint64_t client_rejoins_ = 0;
  std::uint64_t queries_succeeded_ = 0;
  std::uint64_t queries_failed_ = 0;
  Histogram recovery_latency_hist_{RecoveryLatencyBounds()};
  Histogram orphaned_clients_hist_{OrphanCountBounds()};

  // In-simulation adaptation state. When active, the controller is the
  // single source of truth for membership, head roles and the overlay;
  // everything below is consulted only when adaptive_ (the same
  // pay-for-what-you-use determinism contract as the fault block).
  const bool adaptive_;
  std::unique_ptr<AdaptiveController> adaptive_ctrl_;
  /// The live flood TTL: config_.ttl until a rule III broadcast lowers
  /// it.
  int ttl_;
  // Control-message costs, cached from the CostTable at construction.
  double probe_bytes_ = 0.0, report_bytes_ = 0.0, ttl_update_bytes_ = 0.0;
  double send_ctl_ = 0.0, recv_ctl_ = 0.0;
  /// Per-node traffic accumulated since the last decision round — the
  /// measured window loads rules I-III act on. Unlike the report
  /// accounting these accrue during warmup too.
  std::vector<double> adapt_in_bytes_, adapt_out_bytes_, adapt_units_;
  double window_start_ = 0.0;
  std::uint64_t adapt_rounds_ = 0;
  std::uint64_t adapt_splits_ = 0;
  std::uint64_t adapt_coalesces_ = 0;
  std::uint64_t adapt_edges_added_ = 0;
  std::uint64_t adapt_ttl_decreases_ = 0;
  std::uint64_t adapt_probes_sent_ = 0;
  std::uint64_t adapt_reports_received_ = 0;
  std::uint64_t adapt_client_moves_ = 0;
  bool adapt_converged_ = false;
  std::uint64_t adapt_converged_round_ = 0;
};

void SimOptions::Validate() const {
  SPPNET_CHECK_MSG(std::isfinite(duration_seconds) && duration_seconds > 0.0,
                   "duration must be finite and > 0");
  SPPNET_CHECK_MSG(std::isfinite(warmup_seconds) && warmup_seconds >= 0.0,
                   "warmup must be finite and >= 0");
  SPPNET_CHECK_MSG(
      std::isfinite(hop_latency_seconds) && hop_latency_seconds >= 0.0,
      "hop latency must be finite and >= 0");
  SPPNET_CHECK_MSG(partner_recovery_seconds > 0.0,
                   "partner recovery time must be > 0");
  SPPNET_CHECK_MSG(result_cache_ttl_seconds >= 0.0,
                   "result-cache TTL must be >= 0");
  faults.Validate();
  adaptive.Validate();
  if (adaptive.Active()) {
    // The adaptation layer reroutes membership, matching and topology
    // through its controller; the features below hold per-cluster
    // state the controller cannot migrate, so they are incompatible.
    SPPNET_CHECK_MSG(strategy == SearchStrategy::kFlood,
                     "in-sim adaptation requires the flood strategy");
    SPPNET_CHECK_MSG(!concrete_index,
                     "in-sim adaptation requires abstract indexes");
    SPPNET_CHECK_MSG(result_cache_ttl_seconds == 0.0,
                     "in-sim adaptation requires the result cache disabled");
  }
}

Simulator::Simulator(const NetworkInstance& instance,
                     const Configuration& config, const ModelInputs& inputs,
                     const SimOptions& options)
    : impl_(new Impl(instance, config, inputs, options)) {}

Simulator::~Simulator() { delete impl_; }

SimReport Simulator::Run() { return impl_->Run(); }

void Simulator::Start() { impl_->Start(); }

void Simulator::RunUntil(double sim_time) { impl_->RunUntil(sim_time); }

double Simulator::Now() const { return impl_->Now(); }

std::uint64_t Simulator::events_dispatched() const {
  return impl_->events_dispatched();
}

SimReport Simulator::Finalize(double end_time) {
  return impl_->FinalizeAt(end_time);
}

void Simulator::PublishCumulativeMetrics(MetricsRegistry& registry) const {
  impl_->PublishCumulativeMetrics(registry);
}

void Simulator::InjectQueryAt(double time, std::uint32_t user) {
  impl_->InjectQueryAt(time, user);
}

void Simulator::RetireStateBefore(double cutoff_seconds) {
  impl_->RetireStateBefore(cutoff_seconds);
}

void Simulator::SaveState(CheckpointWriter& w) const { impl_->SaveState(w); }

bool Simulator::LoadState(CheckpointReader& r) { return impl_->LoadState(r); }

}  // namespace sppnet
