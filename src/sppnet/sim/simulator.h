#ifndef SPPNET_SIM_SIMULATOR_H_
#define SPPNET_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sppnet/index/routing_index.h"
#include "sppnet/io/checkpoint.h"
#include "sppnet/model/config.h"
#include "sppnet/model/consistency.h"
#include "sppnet/model/instance.h"
#include "sppnet/model/load.h"
#include "sppnet/sim/adaptive_sim.h"
#include "sppnet/sim/event_queue.h"
#include "sppnet/sim/faults.h"
#include "sppnet/sim/plan.h"
#include "sppnet/sim/sharded_sim.h"
#include "sppnet/sim/sim_state.h"

namespace sppnet {

class MetricsRegistry;

/// How queries travel across the super-peer overlay. The paper's
/// analysis uses the baseline Gnutella flood and notes that better
/// search protocols (e.g. Yang & Garcia-Molina, ICDCS'02) are
/// orthogonal to the super-peer design; the simulator implements two
/// such alternatives so the tradeoffs can be measured on top of the
/// same clusters.
enum class SearchStrategy {
  /// Baseline: forward to every neighbor except the arrival edge while
  /// TTL remains (Section 3.1).
  kFlood,
  /// Iterative deepening: try TTL 1, then grow the ring until enough
  /// results arrived or the TTL budget is exhausted. Saves cost on
  /// popular content at the price of latency.
  kExpandingRing,
  /// k independent random walks; each walker forwards to one random
  /// neighbor per hop for up to walk_ttl hops.
  kRandomWalk,
  /// Content-aware flood: the flood of kFlood, but a super-peer
  /// forwards only along edges whose Bloom routing digest
  /// (index/routing_index.h) reports the query class reachable.
  /// Implies an active routing layer (SimOptions::routing).
  kRoutedFlood,
  /// Content-aware k-walker: num_walkers concurrent walks with per-walk
  /// TTL and duplicate suppression, each hop biased toward
  /// digest-positive neighbors (uniform fallback when none test
  /// positive). Implies an active routing layer.
  kWalker,
};

/// Options for a discrete-event run.
struct SimOptions {
  /// Simulated seconds of measured traffic (after warmup).
  double duration_seconds = 300.0;
  /// Initial seconds excluded from the measurements.
  double warmup_seconds = 30.0;
  /// One-way delivery latency per overlay hop (seconds).
  double hop_latency_seconds = 0.05;
  std::uint64_t seed = 7;

  /// Event-queue engine. Both deliver the identical (time, seq) event
  /// stream — the reference heap exists to prove it (the engine
  /// equivalence suite) and to measure against (bench/sim_scale).
  SimEngine engine = SimEngine::kCalendar;
  /// Per-query state storage. Both backends are semantically identical;
  /// kMapReference preserves the original hash-map containers for the
  /// same two purposes.
  SimStateBackend state_backend = SimStateBackend::kDense;

  /// In-trial sharding plan (see sim/sharded_sim.h and DESIGN.md §12):
  /// partitions clusters across parallel event loops advanced in
  /// conservative lookahead windows of one hop latency. Defaults to the
  /// legacy single-loop engine. An enabled plan produces reports,
  /// metric digests and checkpoints bit-identical across every
  /// (num_shards, num_threads) choice; it requires a positive hop
  /// latency (the lookahead), abstract indexes and a disabled result
  /// cache (enforced by Validate()).
  ShardPlan shards;

  /// Churn plan (sim/plan.h): super-peer partners fail at the end of
  /// their sampled lifespans and are replaced after
  /// `churn.partner_recovery_seconds` (a capable client is promoted /
  /// a new partner is found). While a cluster has no live partner its
  /// clients are disconnected. Client joins re-upload metadata to
  /// recovering partners.
  ChurnPlan churn;

  /// Fault-injection & recovery plan (see sim/faults.h): mid-session
  /// super-peer crashes, message drops and delivery jitter, answered by
  /// per-request timeouts with bounded-backoff retries, failover to
  /// surviving partners and re-join via bootstrap discovery. The
  /// default plan is inactive, and an inactive plan leaves the run
  /// bit-identical to a build without the fault layer (it is never
  /// consulted); an active plan draws all of its decisions from a
  /// dedicated RNG stream salted from `seed`.
  FaultPlan faults;

  /// In-simulation adaptation plan (see sim/adaptive_sim.h): the
  /// Section 5.3 local rules executed as scheduled protocol events —
  /// periodic load probes, live cluster splits and coalesces with
  /// client re-upload, incremental edge addition toward the suggested
  /// outdegree, TTL-decrease broadcasts. The default plan is inactive
  /// and is never consulted, leaving runs bit-identical to a build
  /// without the layer; an active plan draws its decisions from a
  /// dedicated RNG stream salted from `seed`. Requires the flood
  /// strategy, abstract (non-concrete) indexes, no result cache and a
  /// non-redundant configuration (redundancy_k == 1).
  AdaptivePlan adaptive;

  /// Concrete-index mode: instead of sampling result counts from the
  /// Appendix-B probabilistic query model, every (virtual) super-peer
  /// maintains a real InvertedIndex over titles drawn from a
  /// TitleCorpus, queries are sampled keyword strings matched
  /// conjunctively, joins re-upload and re-index actual metadata, and
  /// updates mutate the index. Slower, but exercises the index
  /// substrate the paper prescribes ("the super-peer may keep inverted
  /// lists over the titles", Section 3.2) end to end.
  bool concrete_index = false;

  /// Source-side result caching (flood strategy only): a super-peer
  /// remembers the aggregate result set of each query it recently
  /// flooded for this many seconds; a repeat submission of the same
  /// query by any of its users is answered from the cache instantly —
  /// no flood, no remote processing. 0 disables caching. A classic
  /// efficiency extension on top of the paper's design (cf. Yang &
  /// Garcia-Molina, ICDCS'02); Zipf query popularity makes repeats
  /// common at busy super-peers.
  double result_cache_ttl_seconds = 0.0;

  /// Optional observability sink (see obs/metrics.h). When set, the
  /// run publishes protocol counters ("sim.msg.query.sent", cache
  /// hits/misses, failover episodes, ...), the event-queue high-water
  /// mark gauge and the per-response hop histogram into the registry at
  /// the end of Run(). Purely observational: attaching a registry never
  /// changes simulated behaviour, and every published counter /
  /// histogram value is bit-identical across runs with the same seed.
  /// Values are accumulated (Increment/Merge), so several runs may
  /// share one registry. Not owned; must outlive the simulator.
  MetricsRegistry* metrics = nullptr;

  /// Content-aware routing-index layer (index/routing_index.h): built
  /// deterministically from the instance + seed at Start, re-announced
  /// as DigestAnnounce control traffic every refresh interval, and
  /// consulted by the routed strategies to prune forwarding. Activated
  /// implicitly by kRoutedFlood / kWalker, or explicitly via
  /// routing.enable to add digest pruning to kFlood / kExpandingRing
  /// refinement waves. Inactive (the default) means never consulted:
  /// runs stay bit-identical to a build without the layer. Requires
  /// the legacy engine (no sharding), abstract indexes, no result
  /// cache and no in-sim adaptation (enforced by Validate()).
  RoutingOptions routing;

  /// Index-consistency & replication plan (model/consistency.h,
  /// DESIGN.md §14): clients mutate their metadata mid-session on a
  /// Poisson clock, super-peer index entries go stale until refreshed
  /// by push-invalidation or pull-with-TTR, and delivered results are
  /// classified stale/fresh accordingly; owner/path replication can
  /// serve extra fresh results from replicas. The default plan is
  /// inactive and is never consulted, leaving runs bit-identical to a
  /// build without the layer; an active plan draws all of its
  /// decisions from a dedicated RNG stream salted from `seed`.
  /// Requires the flood strategy on the legacy engine with abstract
  /// indexes, no result cache, no adaptation, no routing layer and
  /// static membership — no churn, no fault plan (enforced by
  /// Validate()).
  ConsistencyPlan consistency;

  /// Heterogeneous peer-capacity plan (sim/plan.h, DESIGN.md §15):
  /// every node draws a PeerCapacity from the plan's mixture on a
  /// dedicated salted stream, CostTable message loads accumulate into
  /// windowed per-node utilization (`sim.capacity.*` counters, the
  /// super-peer utilization histogram, overload episodes), and — when
  /// the adaptation layer is also active — split/promotion elects the
  /// highest-capacity eligible member and sustained-overloaded
  /// super-peers are demoted. The default plan is inactive and is
  /// never consulted, leaving runs bit-identical to a build without
  /// the layer. Requires the legacy engine (no sharding) and abstract
  /// indexes (conflict matrix in sim/plan.cc).
  CapacityPlan capacity;

  // --- Search strategy (kFlood reproduces the paper's baseline) ---
  SearchStrategy strategy = SearchStrategy::kFlood;
  /// kExpandingRing: stop growing the ring once this many results have
  /// come back.
  std::uint32_t ring_satisfaction_results = 50;
  /// kRandomWalk: number of parallel walkers per query.
  std::uint32_t num_walkers = 16;
  /// kRandomWalk: hops each walker may take (independent of the
  /// configuration TTL, which bounds ring/flood depth).
  std::uint32_t walk_ttl = 64;

  /// Aborts (SPPNET_CHECK) on invalid configurations: non-positive
  /// duration, negative warmup or latency, an invalid plan (every
  /// plan's Validate() runs unconditionally), a strategy requirement
  /// violated by an active layer, or a forbidden layer pairing — the
  /// single cross-layer compatibility matrix in sim/plan.cc. Called
  /// at every entry point that consumes options (the Simulator
  /// constructor, RunTrials), matching the LayerPlan contract.
  void Validate() const;
};

/// Measured outcome of a simulation run. Every field is
/// engine-independent: reports are bit-identical across SimEngine and
/// SimStateBackend choices (engine-specific internals — bucket counts,
/// scratch bytes — are published through the obs registry only).
struct SimReport {
  double measured_seconds = 0.0;

  /// Whole-run event totals (warmup included), reconciled 1:1 with the
  /// sim.queue.scheduled / sim.events.dispatched counters and the
  /// sim.event_queue.depth_hwm gauge.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t queue_depth_hwm = 0;

  /// Mean measured load per partner slot / client, aligned with the
  /// NetworkInstance layout (bits per second / Hz, like the analysis).
  std::vector<LoadVector> partner_load;
  std::vector<LoadVector> client_load;
  LoadVector aggregate;

  std::uint64_t queries_submitted = 0;
  std::uint64_t responses_delivered = 0;
  std::uint64_t duplicate_queries = 0;
  double mean_results_per_query = 0.0;
  /// Mean hops traveled by response messages (the empirical EPL).
  double mean_response_hops = 0.0;
  /// Mean seconds from query submission to the first response.
  double mean_first_response_latency = 0.0;
  /// Mean final ring TTL per query (kExpandingRing only).
  double mean_rings_per_query = 0.0;
  /// Mean resident bytes of a cluster's inverted index
  /// (concrete_index mode only).
  double mean_index_memory_bytes = 0.0;
  /// Queries answered from a super-peer's result cache without
  /// flooding (result_cache_ttl_seconds > 0 only).
  std::uint64_t cache_hits = 0;

  // --- Reliability metrics (churn.enable and/or active FaultPlan) ---
  /// Partner-down events from any cause: end-of-lifespan churn plus
  /// injected mid-session crashes (the crash subset is
  /// `faults_crashes`).
  std::uint64_t partner_failures = 0;
  /// Partners brought back up (each failure recovers after its delay;
  /// at most the tail failures are still pending at the end of a run).
  std::uint64_t partner_recoveries = 0;
  /// Episodes during which a cluster had no live partner.
  std::uint64_t cluster_outages = 0;
  /// Fraction of cluster-time spent with no live partner — the measured
  /// availability complement that the analytical k-redundancy model
  /// predicts as (lambda*r / (1 + lambda*r))^k (DESIGN.md §8).
  double cluster_outage_fraction = 0.0;
  /// Fraction of client-time spent with no reachable super-peer. With
  /// an active fault plan this is per-client (a client stops accruing
  /// when it re-joins another cluster); churn-only runs account whole
  /// clusters, as before.
  double client_disconnected_fraction = 0.0;

  // --- Fault-injection & recovery metrics (active FaultPlan only) ---
  /// Injected mid-session crashes that took a live partner down.
  std::uint64_t faults_crashes = 0;
  /// Deliveries silently lost by the fault layer.
  std::uint64_t faults_messages_dropped = 0;
  /// Per-request timeouts that fired with no response seen.
  std::uint64_t faults_request_timeouts = 0;
  /// Query retries submitted after a timeout.
  std::uint64_t faults_retries = 0;
  /// Messages routed around a dead preferred partner to a surviving
  /// co-partner (the k-redundancy failover actually happening).
  std::uint64_t faults_failover_episodes = 0;
  /// Orphaned clients that re-joined another cluster via discovery.
  std::uint64_t faults_client_rejoins = 0;
  /// Queries with >= 1 response by their final timeout check (partial
  /// results count: degraded floods still succeed).
  std::uint64_t queries_succeeded = 0;
  /// Queries that exhausted the retry budget with no response, or could
  /// not be routed to any live partner.
  std::uint64_t queries_failed = 0;
  /// queries_succeeded / (queries_succeeded + queries_failed); 0 when
  /// no query completed a timeout check.
  double query_success_rate = 0.0;
  /// Mean seconds from a client losing its last partner to re-joining a
  /// cluster (via discovery) or its own cluster recovering.
  double mean_recovery_latency_seconds = 0.0;

  // --- In-sim adaptation metrics (active AdaptivePlan only) ---
  // Whole-run tallies (adaptation typically converges during warmup),
  // reconciled 1:1 with the sim.adaptive.* counters. With an inactive
  // plan the final_* fields describe the unchanged input network and
  // every tally is zero.
  /// Decision rounds executed.
  std::uint64_t adapt_rounds = 0;
  /// Rule I cluster splits (a member promoted to super-peer).
  std::uint64_t adapt_splits = 0;
  /// Rule I cluster coalesces (a super-peer resigned).
  std::uint64_t adapt_coalesces = 0;
  /// Rule II overlay edges added.
  std::uint64_t adapt_edges_added = 0;
  /// Rule III TTL decrements broadcast.
  std::uint64_t adapt_ttl_decreases = 0;
  /// LoadProbe messages sent by the periodic probe sweeps.
  std::uint64_t adapt_probes_sent = 0;
  /// LoadReport messages received by probing super-peers.
  std::uint64_t adapt_reports_received = 0;
  /// Clients that changed cluster through splits and coalesces
  /// (resigned super-peers included).
  std::uint64_t adapt_client_moves = 0;
  /// True when the most recent decision round was quiescent
  /// (LocalPolicy::RoundQuiescent) — the live network has converged.
  bool adapt_converged = false;
  /// First round (1-based) of the final quiescent streak; 0 when the
  /// network never went quiescent.
  std::uint64_t adapt_converged_round = 0;
  /// Live clusters at the end of the run.
  std::uint64_t final_clusters = 0;
  /// Effective flood TTL at the end of the run.
  int final_ttl = 0;
  /// Mean overlay outdegree over live clusters at the end of the run.
  double final_avg_outdegree = 0.0;

  // --- Content-aware routing metrics (active routing layer only) ---
  /// Periodic digest re-announcement rounds inside the measured window.
  std::uint64_t routing_digest_refreshes = 0;
  /// DigestAnnounce messages accounted inside the measured window
  /// (reconciles with the sim.msg.digest.sent counter).
  std::uint64_t routing_digest_announces = 0;
  /// Forwardings skipped because the edge digest reported the query
  /// class unreachable (the routed strategies' bandwidth saving).
  std::uint64_t routing_suppressed_forwards = 0;
  /// kWalker hops chosen from a non-empty digest-positive neighbor
  /// subset (the remainder fell back to a uniform choice).
  std::uint64_t routing_biased_hops = 0;

  // --- Index-consistency metrics (active ConsistencyPlan only) ---
  // Reconciled 1:1 with the sim.consistency.* counters and the
  // sim.msg.{invalidate,poll,refresh,replica}.* message classes.
  /// Client metadata changes inside the measured window.
  std::uint64_t consistency_changes = 0;
  /// Delivered results classified stale (the index entry had changed
  /// and was not yet refreshed when the query matched it).
  std::uint64_t consistency_stale_results = 0;
  /// Delivered results classified fresh.
  std::uint64_t consistency_fresh_results = 0;
  /// stale / (stale + fresh); 0 when no result was classified.
  double consistency_stale_hit_rate = 0.0;
  /// InvalidateMessages sent (push-invalidation scheme).
  std::uint64_t consistency_invalidations = 0;
  /// RefreshPoll messages sent (pull-with-TTR scheme).
  std::uint64_t consistency_polls = 0;
  /// RefreshReply messages sent back by polled clients.
  std::uint64_t consistency_refresh_replies = 0;
  /// Maintenance bandwidth: invalidation + poll + reply bytes per
  /// measured second, network-wide (replication traffic excluded).
  double consistency_maintenance_bytes_per_sec = 0.0;
  /// Mean seconds between a metadata change and the index refresh that
  /// cleared it (mean of the freshness-latency histogram; kNone never
  /// refreshes, so no observation is ever recorded there).
  double consistency_mean_freshness_seconds = 0.0;
  /// ReplicaPush messages sent (active ReplicationPlan only).
  std::uint64_t consistency_replica_pushes = 0;
  /// Replica records shipped inside those pushes.
  std::uint64_t consistency_replica_records = 0;
  /// Extra (always fresh) results served from replica stores.
  std::uint64_t consistency_replica_served = 0;
  /// Replication bandwidth in bytes per measured second, network-wide.
  double consistency_replication_bytes_per_sec = 0.0;

  // --- Heterogeneous-capacity metrics (active CapacityPlan only) ---
  // Reconciled 1:1 with the sim.capacity.* instruments. Samples are
  // (node, window) pairs over the utilization windows folded into the
  // measurement phase; the super-peer cut covers the nodes carrying
  // the head role when each window closed.
  /// Capacity-rule head demotions executed by the live controller
  /// (capacity plan with demote_overloaded, under adaptation).
  std::uint64_t adapt_demotions = 0;
  /// Utilization windows folded into the measurement phase.
  std::uint64_t capacity_windows = 0;
  /// Rising-edge transitions of a node into overload across folded
  /// windows (an episode spanning several windows counts once).
  std::uint64_t capacity_overload_episodes = 0;
  /// Mean utilization over all (node, window) samples.
  double capacity_mean_utilization = 0.0;
  /// Fraction of (node, window) samples above the overload threshold.
  double capacity_overloaded_fraction = 0.0;
  /// Mean utilization over the super-peer samples.
  double capacity_sp_mean_utilization = 0.0;
  /// Fraction of super-peer samples above the overload threshold.
  double capacity_sp_overloaded_fraction = 0.0;
  /// p99 super-peer utilization, read off the histogram bucket bounds.
  double capacity_sp_p99_utilization = 0.0;
};

/// Discrete-event simulator that executes the super-peer protocol of
/// Section 3.2 message by message: clients submit queries round-robin to
/// their partners, super-peers flood queries with TTL and duplicate
/// dropping, Response messages retrace the query path, and joins/updates
/// maintain the cluster indexes. Per-node byte and processing-unit
/// accounting uses the same CostTable as the analytical model, so the
/// two can be compared directly (the model-validation experiment in
/// DESIGN.md).
class Simulator {
 public:
  /// The instance is copied; the simulator owns its mutable state.
  Simulator(const NetworkInstance& instance, const Configuration& config,
            const ModelInputs& inputs, const SimOptions& options);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Runs warmup + measurement and returns the report. Equivalent to
  /// Start() + RunUntil(warmup + duration) + Finalize() — the streaming
  /// layer drives those pieces directly.
  SimReport Run();

  // --- Streaming interface (sim/stream.h drives these) ----------------------
  /// Seeds the per-node Poisson clocks and the churn/fault/adaptation
  /// schedules. Must be called exactly once, before RunUntil.
  void Start();
  /// Dispatches every pending event with time <= `sim_time` (seconds).
  /// Call repeatedly with nondecreasing times to stream the run.
  void RunUntil(double sim_time);
  /// Simulation clock: the time of the last dispatched event (0 before
  /// any dispatch), NOT the RunUntil horizon — idle stretches advance
  /// the clock only when the next event fires.
  double Now() const;
  std::uint64_t events_dispatched() const;
  /// Closes the run at simulated time `end_time` (>= the last dispatch;
  /// pending later events are abandoned) and builds the report over
  /// [warmup, end_time]. When `end_time` equals warmup + duration this
  /// is bit-identical to what Run() returns. At most one of Run() /
  /// Finalize() per simulator.
  SimReport Finalize(double end_time);

  /// Publishes the cumulative counter/gauge/histogram surface (the same
  /// one Finalize publishes to options.metrics) into `registry`, without
  /// touching simulation state — callable mid-run at window boundaries.
  void PublishCumulativeMetrics(MetricsRegistry& registry) const;

  /// Injects one externally fed (trace-replay) query submission by
  /// `user` at absolute simulated time `time` (>= Now(), checked when
  /// dispatched). Unlike the Poisson clocks, an injected submission
  /// does not reschedule itself.
  void InjectQueryAt(double time, std::uint32_t user);

  /// Retires per-query state for every query submitted before
  /// `cutoff_seconds`, keeping resident state flat on an unbounded run.
  /// The caller guarantees `cutoff_seconds` trails Now() by at least the
  /// maximum query lifetime (DESIGN.md §11 derives the bound); retired
  /// queries must have no in-flight events (checked on access).
  void RetireStateBefore(double cutoff_seconds);

  // --- Checkpoint (sim/stream.h wraps these in an envelope) ------------------
  /// Serializes the complete mutable state: event queue, RNG streams,
  /// per-query state, accounting tallies, fault and adaptation state.
  /// Requires abstract-index mode (concrete_index aborts: the live
  /// inverted indexes are out of checkpoint scope). The simulator must
  /// be Start()ed and not finalized.
  void SaveState(CheckpointWriter& w) const;
  /// Restores into a freshly constructed simulator built from the SAME
  /// instance, config, inputs and options (the stream envelope's
  /// fingerprint enforces this). Replaces Start(); returns false on a
  /// malformed payload. Dispatch after a restore is bit-identical to
  /// the uninterrupted run for every protocol-relevant observable —
  /// engine-internal instruments (sim.queue.*, sim.state.scratch_bytes)
  /// legitimately differ (DESIGN.md §11).
  bool LoadState(CheckpointReader& r);

 private:
  class Impl;
  Impl* impl_;
};

}  // namespace sppnet

#endif  // SPPNET_SIM_SIMULATOR_H_
