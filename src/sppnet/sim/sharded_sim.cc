#include "sppnet/sim/sharded_sim.h"

#include <algorithm>

#include "sppnet/common/check.h"

namespace sppnet {

void ShardPlan::Validate() const {
  if (!enabled()) return;
  SPPNET_CHECK_MSG(num_threads >= 1,
                   "a sharded plan needs at least one worker thread");
  SPPNET_CHECK_MSG(num_shards <= kShardCtlDomain,
                   "shard count exceeds the event-key domain space");
}

ShardPool::ShardPool(std::size_t num_shards, std::size_t num_threads)
    : num_shards_(num_shards),
      num_threads_(std::max<std::size_t>(
          1, std::min(num_threads, num_shards))) {
  SPPNET_CHECK(num_shards_ >= 1);
  if (num_threads_ <= 1) return;
  workers_.reserve(num_threads_);
  for (std::size_t w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardPool::~ShardPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardPool::RunOnShards(const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    for (std::size_t s = 0; s < num_shards_; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    pending_workers_ = num_threads_;
    ++generation_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
  fn_ = nullptr;
}

void ShardPool::WorkerLoop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = fn_;
    }
    for (std::size_t s = worker; s < num_shards_; s += num_threads_) {
      (*fn)(s);
    }
    bool last;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --pending_workers_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace sppnet
