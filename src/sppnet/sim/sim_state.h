#ifndef SPPNET_SIM_SIM_STATE_H_
#define SPPNET_SIM_SIM_STATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sppnet/common/check.h"
#include "sppnet/io/checkpoint.h"

namespace sppnet {

/// Storage backing for the simulator's per-query state. The dense
/// backend exploits the fact that query ids are handed out sequentially
/// from 0 (slot arrays) and that the per-cluster tables only ever see
/// point lookups (open addressing, no iteration); the hash-map backend
/// is the reference implementation both are held bit-identical against
/// (tests/sim/engine_equivalence_test.cc).
enum class SimStateBackend {
  /// Generation-stamped slot arrays keyed by qid + open-addressing
  /// tables; no per-entry allocation.
  kDense,
  /// The original std::unordered_map containers.
  kMapReference,
};

/// Per-user-query bookkeeping shared by all strategies, keyed by the
/// root query id (expanding-ring / retry qids map back to it).
struct QueryState {
  std::uint32_t user = 0;      ///< Submitting user.
  std::uint32_t query_class = 0;
  std::uint32_t ring_ttl = 0;  ///< Current ring (expanding ring only).
  double ring_results = 0.0;   ///< Results from the current ring.
  double submit_time = 0.0;
  std::uint64_t cache_key = 0;
  bool first_response_seen = false;
};

/// One source-side result-cache entry (flood strategy).
struct QueryCacheEntry {
  double expires = 0.0;
  double results = 0.0;
  double addrs = 0.0;
  /// Root qid whose responses currently fill this entry; concurrent
  /// floods of the same query must not double-accumulate.
  std::uint64_t owner = 0;
};

/// Open-addressing uint64 -> V table: power-of-two capacity, linear
/// probing, generation-stamped occupancy (Clear() is O(1) — bump the
/// generation). Point lookups only; nothing is ever erased, and the
/// only iteration (ForEach) serves the checkpoint path, which sorts
/// what it collects — exactly the simulator's access pattern
/// (duplicate tables, result caches) and what makes the layout safely
/// deterministic: probe order can never leak into results.
template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  /// Null when absent.
  V* Find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = Mix(key) & mask_;
    while (slots_[i].stamp == generation_) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* Find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  /// Returns (slot, inserted). A fresh slot holds a value-initialized V.
  std::pair<V*, bool> FindOrInsert(std::uint64_t key) {
    if (size_ + 1 > (Capacity() * 7) / 10) Grow();
    std::size_t i = Mix(key) & mask_;
    while (slots_[i].stamp == generation_) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask_;
    }
    slots_[i].stamp = generation_;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return {&slots_[i].value, true};
  }

  /// Drops every entry without touching the slot storage.
  void Clear() {
    ++generation_;
    size_ = 0;
  }

  /// Invokes fn(key, value) for every live entry, in unspecified slot
  /// order. Checkpoint-path only: callers sort what they collect, so
  /// the probe layout still cannot leak into results.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.stamp == generation_) fn(slot.key, slot.value);
    }
  }

  std::size_t size() const { return size_; }
  std::size_t Capacity() const { return slots_.size(); }
  std::size_t ApproxMemoryBytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  /// The occupancy stamp lives inside the slot so a probe touches one
  /// cache line, not two — the tables are far larger than LLC under
  /// real workloads and every avoided line is a DRAM miss saved.
  struct Slot {
    std::uint64_t key = 0;
    V value{};
    std::uint32_t stamp = 0;  ///< Occupied iff == generation_.
  };

  // splitmix64 finalizer: cheap, and scrambles the low bits the
  // sequential qids concentrate in.
  static std::size_t Mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  void Grow() {
    const std::size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old_slots = std::move(slots_);
    const std::uint32_t old_gen = generation_;
    slots_.assign(new_cap, Slot{});
    generation_ = 1;
    mask_ = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_slots[i].stamp != old_gen) continue;
      std::size_t j = Mix(old_slots[i].key) & mask_;
      while (slots_[j].stamp == generation_) j = (j + 1) & mask_;
      slots_[j] = std::move(old_slots[i]);
      slots_[j].stamp = generation_;
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t generation_ = 1;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// All per-query simulator state behind one facade: the duplicate
/// tables (per-cluster qid -> upstream), the per-root QueryState, the
/// retry-qid -> root mapping, the interned query strings of concrete
/// mode, and the per-cluster result caches. Both backends implement
/// identical semantics; the simulator never observes which one it is
/// running on (see DESIGN.md §9 for the determinism argument).
class SimState {
 public:
  SimState(SimStateBackend backend, std::size_t num_clusters);

  /// Grows the per-cluster containers to cover cluster ids below
  /// `num_clusters` (no-op when already large enough). The in-sim
  /// adaptation layer appends cluster slots when a split promotes a new
  /// super-peer; existing entries are untouched, so growth never
  /// perturbs prior state.
  void EnsureClusters(std::size_t num_clusters);

  // --- Duplicate tables (per-cluster qid -> upstream) ---------------------
  /// Records that `cluster` saw `qid` arriving from `upstream`; returns
  /// true on the first visit (false: duplicate, upstream unchanged).
  /// Defined inline below: this is the hottest call in the simulator
  /// (once per query arrival).
  bool MarkSeen(std::size_t cluster, std::uint64_t qid,
                std::uint32_t upstream);
  /// Upstream recorded by MarkSeen; null when the cluster never saw qid.
  const std::uint32_t* Upstream(std::size_t cluster, std::uint64_t qid) const;

  // --- Per-root query state ----------------------------------------------
  /// Creates (value-initialized) state for a fresh root qid.
  QueryState& Claim(std::uint64_t qid);
  /// Null when qid was never claimed.
  QueryState* Find(std::uint64_t qid);

  // --- Retry-qid -> root mapping ------------------------------------------
  void SetRoot(std::uint64_t qid, std::uint64_t root);
  /// Root of `qid`; identity when unmapped.
  std::uint64_t RootOf(std::uint64_t qid) const;

  // --- Query strings (concrete-index mode) --------------------------------
  /// Interns `text` as the query string of `qid`.
  void SetQueryString(std::uint64_t qid, const std::string& text);
  /// Points `retry_qid` at `root`'s string (no-op when root has none).
  void ShareQueryString(std::uint64_t root, std::uint64_t retry_qid);
  /// Null when qid has no string.
  const std::string* QueryString(std::uint64_t qid) const;
  /// std::hash of qid's string; false when qid has no string. The dense
  /// backend pre-computes the hash once per distinct interned string —
  /// the value is identical to hashing on demand.
  bool QueryStringHash(std::uint64_t qid, std::uint64_t* out) const;

  // --- Per-cluster result caches ------------------------------------------
  /// Null when `cluster` has no live entry for `key`.
  QueryCacheEntry* FindCacheEntry(std::size_t cluster, std::uint64_t key);
  /// Find-or-insert (fresh entries value-initialized), mirroring the
  /// reference operator[] semantics.
  QueryCacheEntry& CacheEntrySlot(std::size_t cluster, std::uint64_t key);

  // --- Retirement (streaming mode) -----------------------------------------
  /// Drops every qid-keyed entry (duplicate tables, query states, root
  /// mappings, per-qid string slots) for qids below `floor` and makes
  /// those qids unaddressable, bounding resident state on an unbounded
  /// run. The caller guarantees no in-flight event references a retired
  /// qid (the streaming layer's retention horizon, DESIGN.md §11); the
  /// floor is monotone — a lower `floor` is a no-op. Interned string
  /// *texts* and the result caches are kept: both are bounded by the
  /// workload (distinct strings / cache keys), not by the qid sequence.
  void RetireBelow(std::uint64_t floor);
  std::uint64_t retire_floor() const { return qid_base_; }

  // --- Checkpoint (streaming mode) ------------------------------------------
  /// Serializes the logical contents in a backend-portable, canonically
  /// sorted form: both backends holding the same entries produce the
  /// same bytes, so a checkpoint written under one backend restores
  /// under the other.
  void SaveTo(CheckpointWriter& w) const;
  /// Populates this freshly constructed, still-empty state (checked)
  /// from a checkpoint. Returns false when the payload is malformed.
  bool LoadFrom(CheckpointReader& r);

  // --- Introspection (sim.state.* gauges) ----------------------------------
  /// Approximate resident bytes of every container above. Derived from
  /// element counts and capacities: deterministic for the dense backend,
  /// estimated per-node costs for the reference maps.
  std::size_t ApproxScratchBytes() const;
  std::uint64_t duplicate_entries() const { return duplicate_entries_; }
  std::uint64_t interned_strings() const { return interned_count_; }

  SimStateBackend backend() const { return backend_; }

 private:
  static constexpr std::uint64_t kNoRoot = ~std::uint64_t{0};
  static constexpr std::uint32_t kNoSymbol = ~std::uint32_t{0};

  /// Amortized growth of a qid-indexed slot array to cover `qid`.
  template <typename T>
  static void EnsureSlot(std::vector<T>& v, std::uint64_t qid, const T& fill) {
    if (qid < v.size()) return;
    std::size_t target = std::max<std::size_t>(v.size() * 2, 64);
    target = std::max<std::size_t>(target, static_cast<std::size_t>(qid) + 1);
    v.resize(target, fill);
  }

  /// Dense slot of `qid`. Slot arrays are indexed relative to the
  /// retirement floor; a retired qid wraps to a huge index and reads as
  /// absent (writes grow-check against it and abort).
  std::size_t SlotOf(std::uint64_t qid) const {
    return static_cast<std::size_t>(qid - qid_base_);
  }

  const SimStateBackend backend_;
  const std::size_t num_clusters_;
  /// Qids below this are retired (RetireBelow); 0 in batch runs.
  std::uint64_t qid_base_ = 0;
  std::uint64_t duplicate_entries_ = 0;
  std::uint64_t interned_count_ = 0;

  // --- Dense backend -------------------------------------------------------
  /// Duplicate tables indexed by qid, keyed by cluster — the inverse of
  /// the reference layout. Qids are touched in tight bursts (one flood),
  /// so the hot table is small and cache-resident; per-cluster tables
  /// would spread the same probes over the whole table population.
  std::vector<FlatMap64<std::uint32_t>> dense_table_;
  std::vector<QueryState> state_slots_;                 // Indexed by qid.
  std::vector<std::uint8_t> state_live_;
  std::vector<std::uint64_t> root_slots_;               // kNoRoot = unset.
  std::vector<std::uint32_t> symbol_slots_;             // kNoSymbol = unset.
  std::vector<std::string> symbol_texts_;
  std::vector<std::uint64_t> symbol_hashes_;
  std::unordered_map<std::string, std::uint32_t> symbol_lookup_;
  std::vector<FlatMap64<QueryCacheEntry>> dense_cache_;  // Lazy-sized.

  // --- Reference backend ---------------------------------------------------
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> map_table_;
  std::unordered_map<std::uint64_t, QueryState> map_state_;
  std::unordered_map<std::uint64_t, std::uint64_t> map_root_;
  std::unordered_map<std::uint64_t, std::string> map_strings_;
  std::vector<std::unordered_map<std::uint64_t, QueryCacheEntry>> map_cache_;
};

inline bool SimState::MarkSeen(std::size_t cluster, std::uint64_t qid,
                               std::uint32_t upstream) {
  // A visit for a retired qid means the retention horizon was violated
  // (the map backend would silently re-insert and diverge from dense);
  // one predictable compare buys a loud failure instead.
  SPPNET_CHECK(qid >= qid_base_);
  bool fresh;
  if (backend_ == SimStateBackend::kDense) {
    // Keyed per qid (not per cluster): a flood's visits all land in one
    // small table that stays cache-resident while the flood is live,
    // instead of scattering point probes across every cluster's table.
    EnsureSlot(dense_table_, SlotOf(qid), {});
    const auto [slot, inserted] =
        dense_table_[SlotOf(qid)].FindOrInsert(cluster);
    if (inserted) *slot = upstream;
    fresh = inserted;
  } else {
    fresh = map_table_[cluster].try_emplace(qid, upstream).second;
  }
  if (fresh) ++duplicate_entries_;
  return fresh;
}

inline const std::uint32_t* SimState::Upstream(std::size_t cluster,
                                               std::uint64_t qid) const {
  if (backend_ == SimStateBackend::kDense) {
    if (SlotOf(qid) >= dense_table_.size()) return nullptr;
    return dense_table_[SlotOf(qid)].Find(cluster);
  }
  if (qid < qid_base_) return nullptr;
  const auto it = map_table_[cluster].find(qid);
  return it == map_table_[cluster].end() ? nullptr : &it->second;
}

}  // namespace sppnet

#endif  // SPPNET_SIM_SIM_STATE_H_
