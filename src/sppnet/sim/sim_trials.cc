#include "sppnet/sim/sim_trials.h"

#include <memory>
#include <utility>

#include "sppnet/common/rng.h"
#include "sppnet/common/trial_runner.h"
#include "sppnet/model/instance.h"
#include "sppnet/obs/metrics.h"

namespace sppnet {
namespace {

/// Everything one trial contributes, extracted on the worker so the
/// fold stays cheap and deterministic.
struct SimTrialObservation {
  SimReport report;
  double partner_total_bps = 0.0;
  double partner_proc_hz = 0.0;
  std::unique_ptr<MetricsRegistry> metrics;
};

SimTrialObservation RunOneSimTrial(const Configuration& config,
                                   const ModelInputs& inputs, Rng trial_rng,
                                   const SimTrialOptions& options) {
  // The instance stream and the simulation seed both derive from the
  // pre-split trial stream, so a trial's outcome is independent of
  // which worker runs it.
  const std::uint64_t sim_seed = trial_rng.NextUint64();
  const NetworkInstance instance = GenerateInstance(config, inputs, trial_rng);

  SimTrialObservation obs;
  obs.metrics = std::make_unique<MetricsRegistry>();
  SimOptions sim_options = options.sim;
  sim_options.seed = sim_seed;
  sim_options.metrics = obs.metrics.get();
  Simulator simulator(instance, config, inputs, sim_options);
  obs.report = simulator.Run();

  double total_bps = 0.0;
  double proc_hz = 0.0;
  for (const LoadVector& lv : obs.report.partner_load) {
    total_bps += lv.TotalBps();
    proc_hz += lv.proc_hz;
  }
  if (!obs.report.partner_load.empty()) {
    const auto count = static_cast<double>(obs.report.partner_load.size());
    obs.partner_total_bps = total_bps / count;
    obs.partner_proc_hz = proc_hz / count;
  }
  return obs;
}

}  // namespace

SimTrialReport RunTrials(const Configuration& config,
                         const ModelInputs& inputs,
                         const SimTrialOptions& options) {
  // Per-trial options get a derived seed and a local registry; validate
  // everything else once, up front, at the entry point.
  options.sim.Validate();

  // Scheduling (pre-split streams, strided workers, fold in trial
  // order) is the shared RunTrialLoop contract; this function only
  // supplies the per-trial work and the fold (which merges each trial's
  // local registry via MetricsRegistry::MergeFrom).
  TrialRunnerOptions runner;
  runner.num_trials = options.num_trials;
  runner.seed = options.seed;
  runner.parallelism = options.parallelism;

  SimTrialReport report;
  report.trials = options.num_trials;
  const auto fold = [&](SimTrialObservation obs, std::size_t) {
    if (options.metrics != nullptr) {
      options.metrics->GetCounter("sim_trials.completed").Increment();
      options.metrics->MergeFrom(*obs.metrics);
    }
    const SimReport& r = obs.report;
    report.cluster_outage_fraction.Add(r.cluster_outage_fraction);
    report.client_disconnected_fraction.Add(r.client_disconnected_fraction);
    report.query_success_rate.Add(r.query_success_rate);
    report.mean_recovery_latency_seconds.Add(r.mean_recovery_latency_seconds);
    report.partner_total_bps.Add(obs.partner_total_bps);
    report.partner_proc_hz.Add(obs.partner_proc_hz);
    report.queries_submitted += r.queries_submitted;
    report.responses_delivered += r.responses_delivered;
    report.partner_failures += r.partner_failures;
    report.partner_recoveries += r.partner_recoveries;
    report.cluster_outages += r.cluster_outages;
    report.faults_crashes += r.faults_crashes;
    report.faults_messages_dropped += r.faults_messages_dropped;
    report.faults_request_timeouts += r.faults_request_timeouts;
    report.faults_retries += r.faults_retries;
    report.faults_failover_episodes += r.faults_failover_episodes;
    report.faults_client_rejoins += r.faults_client_rejoins;
    report.queries_succeeded += r.queries_succeeded;
    report.queries_failed += r.queries_failed;
  };
  RunTrialLoop(
      runner,
      [&](Rng trial_rng, std::size_t) {
        return RunOneSimTrial(config, inputs, trial_rng, options);
      },
      fold);
  return report;
}

}  // namespace sppnet
