#ifndef SPPNET_SIM_SIM_TRIALS_H_
#define SPPNET_SIM_SIM_TRIALS_H_

#include <cstdint>

#include "sppnet/common/stats.h"
#include "sppnet/model/config.h"
#include "sppnet/sim/simulator.h"

namespace sppnet {

class MetricsRegistry;

/// Options for repeated simulator trials over fresh instances of one
/// configuration — the discrete-event mirror of model/trials.h.
struct SimTrialOptions {
  std::size_t num_trials = 4;
  std::uint64_t seed = 42;
  /// Worker threads for the trials. Results — the report and every
  /// merged metric — are bit-identical to the serial run regardless of
  /// the value: per-trial RNG streams are pre-split, each trial
  /// publishes into its own local registry, and everything is folded
  /// into `metrics` on one thread in trial order.
  std::size_t parallelism = 1;
  /// Per-trial simulation options. `sim.seed` is overwritten with a
  /// per-trial derived seed and `sim.metrics` with the trial's local
  /// registry; every other field applies to each trial as-is.
  SimOptions sim;
  /// Optional observability sink: receives every per-trial sim.*
  /// instrument (folded in trial order) plus "sim_trials.completed".
  /// Not owned.
  MetricsRegistry* metrics = nullptr;
};

/// Cross-trial summary of the reliability surface of one configuration.
/// RunningStats carry per-trial observations (mean + CI); the counter
/// totals accumulate across all trials.
struct SimTrialReport {
  std::size_t trials = 0;

  /// Fraction of cluster-time with no live partner, per trial — the
  /// measured counterpart of the analytical k-redundancy prediction
  /// (lambda*r / (1 + lambda*r))^k.
  RunningStat cluster_outage_fraction;
  RunningStat client_disconnected_fraction;
  RunningStat query_success_rate;
  RunningStat mean_recovery_latency_seconds;
  /// Mean per-partner load, per trial (the availability price tag).
  RunningStat partner_total_bps;
  RunningStat partner_proc_hz;

  std::uint64_t queries_submitted = 0;
  std::uint64_t responses_delivered = 0;
  std::uint64_t partner_failures = 0;
  std::uint64_t partner_recoveries = 0;
  std::uint64_t cluster_outages = 0;
  std::uint64_t faults_crashes = 0;
  std::uint64_t faults_messages_dropped = 0;
  std::uint64_t faults_request_timeouts = 0;
  std::uint64_t faults_retries = 0;
  std::uint64_t faults_failover_episodes = 0;
  std::uint64_t faults_client_rejoins = 0;
  std::uint64_t queries_succeeded = 0;
  std::uint64_t queries_failed = 0;
};

/// Runs `options.num_trials` generate-and-simulate rounds for `config`
/// and folds the results. Deterministic in (config, inputs, options):
/// bit-identical across parallelism settings. Overloads the mean-value
/// RunTrials of model/trials.h — the two runners share one entry-point
/// name and one scheduling engine (common/trial_runner.h), selected by
/// the options type. Validates `options.sim` on entry.
SimTrialReport RunTrials(const Configuration& config,
                         const ModelInputs& inputs,
                         const SimTrialOptions& options);

}  // namespace sppnet

#endif  // SPPNET_SIM_SIM_TRIALS_H_
